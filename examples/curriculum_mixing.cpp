// Curriculum learning with dynamic data mixing (Sec. 2.1 / Sec. 5): a staged
// schedule shifts the mixture from "easy" to "hard" sources during training;
// the mixture-driven AutoScaler reallocates loader actors as demand moves.
#include <cstdio>

#include "src/api/session.h"

int main() {
  // Sources 0-2 are "easy" (short text), 3-5 "hard" (long multimodal).
  msd::CorpusSpec corpus = msd::MakeNavitData(/*seed=*/17, /*num_sources=*/6);
  auto schedule = std::make_shared<msd::StagedMix>(std::vector<msd::StagedMix::Stage>{
      {0, {4, 4, 4, 1, 1, 1}},   // warmup: mostly easy
      {3, {2, 2, 2, 2, 2, 2}},   // mid: uniform
      {6, {1, 1, 1, 6, 6, 6}},   // late: mostly hard
  });

  msd::Session::Options options;
  options.corpus = corpus;
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.samples_per_step = 12;
  options.schedule = schedule;
  options.rows_per_file_override = 64;
  auto session = msd::Session::Create(options);
  MSD_CHECK(session.ok());

  // The online scaler watches the same schedule the Planner samples from.
  msd::ScalerOptions scaler_options;
  scaler_options.consecutive = 2;
  scaler_options.actor_budget = 12;
  msd::MixtureDrivenScaler scaler(std::vector<int32_t>(6, 2), scaler_options);

  for (int64_t step = 0; step < 14; ++step) {
    MSD_CHECK((*session)->AdvanceStep().ok());
    std::vector<double> weights = schedule->WeightsAt(step);
    std::vector<msd::ScalingDecision> decisions = scaler.Observe(weights);
    std::printf("step %lld: served %zu samples; weights [", static_cast<long long>(step),
                (*session)->last_stats().samples);
    for (size_t s = 0; s < weights.size(); ++s) {
      std::printf("%s%.0f", s ? " " : "", weights[s]);
    }
    std::printf("]");
    for (const msd::ScalingDecision& d : decisions) {
      std::printf("  [autoscaler: source %d %+d actors]", d.source_id, d.delta_actors);
    }
    std::printf("\n");
  }
  std::printf("\nfinal actor allocation per source: ");
  for (int32_t a : scaler.actor_counts()) {
    std::printf("%d ", a);
  }
  std::printf("\ntotal rescale events: %lld\n",
              static_cast<long long>(scaler.total_rescales()));
  return 0;
}
