// Curriculum learning with dynamic data mixing (Sec. 2.1 / Sec. 5): a staged
// schedule shifts the mixture from "easy" to "hard" sources during training;
// the mixture-driven AutoScaler reallocates loader actors as demand moves.
// Batches are consumed through streaming DataClients — the prefetch pipeline
// plans ahead with the stage weights of each future step.
#include <cstdio>
#include <vector>

#include "src/api/session.h"

int main() {
  // Sources 0-2 are "easy" (short text), 3-5 "hard" (long multimodal).
  msd::CorpusSpec corpus = msd::MakeNavitData(/*seed=*/17, /*num_sources=*/6);
  auto schedule = std::make_shared<msd::StagedMix>(std::vector<msd::StagedMix::Stage>{
      {0, {4, 4, 4, 1, 1, 1}},   // warmup: mostly easy
      {3, {2, 2, 2, 2, 2, 2}},   // mid: uniform
      {6, {1, 1, 1, 6, 6, 6}},   // late: mostly hard
  });

  auto session = msd::SessionBuilder()
                     .WithCorpus(corpus)
                     .WithMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1})
                     .WithSamplesPerStep(12)
                     .WithSchedule(schedule)
                     .WithRowsPerFile(64)
                     .WithPrefetchDepth(2)
                     .Build();
  MSD_CHECK(session.ok());

  // The online scaler watches the same schedule the Planner samples from.
  msd::ScalerOptions scaler_options;
  scaler_options.consecutive = 2;
  scaler_options.actor_budget = 12;
  msd::MixtureDrivenScaler scaler(std::vector<int32_t>(6, 2), scaler_options);

  const int32_t world = (*session)->tree().spec().WorldSize();
  for (int64_t step = 0; step < 14; ++step) {
    // Stats for the upcoming step (blocks until the pipeline produced it —
    // with depth 2 it usually already has).
    msd::Result<msd::Session::StepStats> stats = (*session)->StepStatsFor(step);
    MSD_CHECK(stats.ok());
    size_t samples = 0;
    for (int32_t rank = 0; rank < world; ++rank) {
      msd::Result<msd::RankBatch> batch = (*session)->client(rank).value()->NextBatch();
      MSD_CHECK(batch.ok());
      if (rank == 0) {
        samples = stats->samples;
      }
    }
    std::vector<double> weights = schedule->WeightsAt(step);
    std::vector<msd::ScalingDecision> decisions = scaler.Observe(weights);
    std::printf("step %lld: served %zu samples (build-ahead %.2f ms); weights [",
                static_cast<long long>(step), samples, stats->build_ahead_ms);
    for (size_t s = 0; s < weights.size(); ++s) {
      std::printf("%s%.0f", s ? " " : "", weights[s]);
    }
    std::printf("]");
    for (const msd::ScalingDecision& d : decisions) {
      std::printf("  [autoscaler: source %d %+d actors]", d.source_id, d.delta_actors);
    }
    std::printf("\n");
  }
  std::printf("\nfinal actor allocation per source: ");
  for (int32_t a : scaler.actor_counts()) {
    std::printf("%d ", a);
  }
  std::printf("\ntotal rescale events: %lld\n",
              static_cast<long long>(scaler.total_rescales()));
  msd::PrefetchPipeline::Stats pipeline = (*session)->pipeline_stats();
  std::printf("pipeline: %lld hits / %lld stalls over 14 streamed steps\n",
              static_cast<long long>(pipeline.prefetch_hits),
              static_cast<long long>(pipeline.prefetch_stalls));
  return 0;
}
