// VLM pre-training with hybrid parallelism: the Fig. 9 (right) strategy on a
// DP=2 CP=2 TP=2 mesh. Shows CP sequence slicing, TP broadcast exclusion,
// the encoder subplan, and the load-balance win over the vanilla baseline.
#include <cstdio>

#include "src/api/session.h"

namespace {

double RunSteps(msd::Session& session, int steps) {
  double imbalance_sum = 0.0;
  for (int s = 0; s < steps; ++s) {
    msd::Status advanced = session.AdvanceStep();
    MSD_CHECK(advanced.ok());
    imbalance_sum += session.last_stats().dp_imbalance;
  }
  return imbalance_sum / steps;
}

}  // namespace

int main() {
  msd::Session::Options options;
  options.corpus = msd::MakeNavitData(/*seed=*/11, /*num_sources=*/24);
  options.spec = {.dp = 2, .pp = 1, .cp = 2, .tp = 2};
  options.num_microbatches = 2;
  options.samples_per_step = 24;
  options.max_seq_len = 4096;
  options.backbone = msd::Llama12B();
  options.encoder = msd::ViT2B();
  options.strategy = msd::Session::StrategyKind::kHybridBalance;
  options.rows_per_file_override = 48;

  auto session = msd::Session::Create(options);
  MSD_CHECK(session.ok());
  std::printf("VLM session: %s, %zu loaders (auto-partitioned)\n",
              (*session)->tree().spec().ToString().c_str(), (*session)->num_loaders());

  double hybrid_imbalance = RunSteps(**session, 4);

  // The same sequence is sliced across CP ranks and excluded on tp>0 ranks.
  msd::RankBatch cp0 = (*session)->GetBatch(0).value();  // dp0 cp0 tp0
  msd::RankBatch cp1 = (*session)->GetBatch(2).value();  // dp0 cp1 tp0
  const msd::PackedSequence& s0 = cp0.microbatches[0].sequences[0];
  const msd::PackedSequence& s1 = cp1.microbatches[0].sequences[0];
  std::printf("\nCP slicing: sequence of %d padded tokens -> rank slices of %zu + %zu\n",
              s0.padded_to, s0.tokens.size(), s1.tokens.size());
  std::printf("hybrid-balance mean DP imbalance over 4 steps: %.3f\n", hybrid_imbalance);

  // Vanilla comparison on an identical corpus.
  msd::Session::Options vanilla = options;
  vanilla.strategy = msd::Session::StrategyKind::kVanilla;
  auto vanilla_session = msd::Session::Create(vanilla);
  MSD_CHECK(vanilla_session.ok());
  RunSteps(**vanilla_session, 4);
  std::printf("(vanilla runs but reports no cost model — see bench_fig13 for the\n"
              " simulated end-to-end throughput comparison)\n");
  return 0;
}
