// VLM pre-training with hybrid parallelism: the Fig. 9 (right) strategy on a
// DP=2 CP=2 TP=2 mesh, consumed through streaming DataClients. Shows CP
// sequence slicing, TP broadcast exclusion, the encoder subplan, and the
// load-balance win over the vanilla baseline.
#include <cstdio>
#include <thread>
#include <vector>

#include "src/api/session.h"

namespace {

// Streams `steps` batches for every rank (one thread per rank) and returns
// the mean DP imbalance the pipeline observed over those steps.
double StreamSteps(msd::Session& session, int steps,
                   std::vector<msd::RankBatch>* last_batches) {
  const int32_t world = session.tree().spec().WorldSize();
  last_batches->assign(static_cast<size_t>(world), msd::RankBatch{});
  double imbalance_sum = 0.0;
  for (int s = 0; s < steps; ++s) {
    // Per-step stats must be read before the step is fully consumed (the
    // pipeline retires it once every rank has fetched its view).
    int64_t step = session.client(0).value()->next_step();
    msd::Result<msd::Session::StepStats> stats = session.StepStatsFor(step);
    MSD_CHECK(stats.ok());
    imbalance_sum += stats->dp_imbalance;
    std::vector<std::thread> ranks;
    for (int32_t rank = 0; rank < world; ++rank) {
      msd::DataClient* client = session.client(rank).value();
      ranks.emplace_back([client, rank, last_batches] {
        msd::Result<msd::RankBatch> batch = client->NextBatch();
        MSD_CHECK(batch.ok());
        (*last_batches)[static_cast<size_t>(rank)] = std::move(batch.value());
      });
    }
    for (std::thread& t : ranks) {
      t.join();
    }
  }
  return imbalance_sum / steps;
}

}  // namespace

int main() {
  auto session = msd::SessionBuilder()
                     .WithCorpus(msd::MakeNavitData(/*seed=*/11, /*num_sources=*/24))
                     .WithMesh({.dp = 2, .pp = 1, .cp = 2, .tp = 2})
                     .WithMicrobatches(2)
                     .WithSamplesPerStep(24)
                     .WithMaxSeqLen(4096)
                     .WithBackbone(msd::Llama12B())
                     .WithEncoder(msd::ViT2B())
                     .WithStrategy(msd::Session::StrategyKind::kHybridBalance)
                     .WithRowsPerFile(48)
                     .WithPrefetchDepth(2)
                     .Build();
  MSD_CHECK(session.ok());
  std::printf("VLM session: %s, %zu loaders (auto-partitioned), streaming clients\n",
              (*session)->tree().spec().ToString().c_str(), (*session)->num_loaders());

  std::vector<msd::RankBatch> batches;
  double hybrid_imbalance = StreamSteps(**session, 4, &batches);

  // The same sequence is sliced across CP ranks and excluded on tp>0 ranks.
  const msd::RankBatch& cp0 = batches[0];  // dp0 cp0 tp0
  const msd::RankBatch& cp1 = batches[2];  // dp0 cp1 tp0
  const msd::PackedSequence& s0 = cp0.microbatches[0].sequences[0];
  const msd::PackedSequence& s1 = cp1.microbatches[0].sequences[0];
  std::printf("\nCP slicing: sequence of %d padded tokens -> rank slices of %zu + %zu\n",
              s0.padded_to, s0.tokens.size(), s1.tokens.size());

  // Multimodal payload plane: pixels ride whole with the sequence at every
  // CP coordinate, as views aliasing ONE loader-frozen buffer — no copies.
  auto first_pixels = [](const msd::RankBatch& batch) -> const msd::PixelView* {
    for (const msd::Microbatch& mb : batch.microbatches) {
      for (const msd::PackedSequence& seq : mb.sequences) {
        for (const msd::PixelView& v : seq.pixel_segments) {
          if (!v.empty()) {
            return &v;
          }
        }
      }
    }
    return nullptr;
  };
  const msd::PixelView* px0 = first_pixels(cp0);
  const msd::PixelView* px1 = first_pixels(cp1);
  if (px0 != nullptr && px1 != nullptr) {
    int64_t pixels = 0;
    for (const msd::Microbatch& mb : cp0.microbatches) {
      for (const msd::PackedSequence& seq : mb.sequences) {
        pixels += seq.PixelCount();
      }
    }
    std::printf("pixel plane: %lld patch-embedding floats on cp0; cp0/cp1 alias one "
                "frozen buffer: %s\n",
                static_cast<long long>(pixels),
                px0->AliasesStorageOf(*px1) ? "yes" : "NO (bug!)");
  }
  std::printf("hybrid-balance mean DP imbalance over 4 steps: %.3f\n", hybrid_imbalance);
  msd::PrefetchPipeline::Stats pipeline = (*session)->pipeline_stats();
  std::printf("pipeline: %lld hits / %lld stalls, %lld steps retired by rank refcount\n",
              static_cast<long long>(pipeline.prefetch_hits),
              static_cast<long long>(pipeline.prefetch_stalls),
              static_cast<long long>(pipeline.steps_retired));

  // Vanilla comparison on an identical corpus.
  auto vanilla_session = msd::SessionBuilder()
                             .WithCorpus(msd::MakeNavitData(11, 24))
                             .WithMesh({.dp = 2, .pp = 1, .cp = 2, .tp = 2})
                             .WithMicrobatches(2)
                             .WithSamplesPerStep(24)
                             .WithMaxSeqLen(4096)
                             .WithStrategy(msd::Session::StrategyKind::kVanilla)
                             .WithRowsPerFile(48)
                             .Build();
  MSD_CHECK(vanilla_session.ok());
  std::vector<msd::RankBatch> vanilla_batches;
  StreamSteps(**vanilla_session, 4, &vanilla_batches);
  std::printf("(vanilla runs but reports no cost model — see bench_fig13 for the\n"
              " simulated end-to-end throughput comparison)\n");
  return 0;
}
