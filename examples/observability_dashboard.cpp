// Observability walkthrough (src/telemetry/): what an operator dashboard
// would consume from a running DataService, produced by a self-contained
// two-tenant run.
//
// The flow mirrors a production scrape loop:
//   1. Register two tenants — one healthy, one whose backing storage fails
//      every range's first Get (the retry layer absorbs it).
//   2. Install the periodic scrape hook: every 50 ms a background thread
//      receives a consistent ServiceSnapshot — per-tenant cache/scheduler
//      slices that sum EXACTLY to the plane aggregates — and prints the
//      dashboard line a real deployment would push to its metrics backend.
//   3. Stream a few steps per tenant while the scrape runs.
//   4. Print the final Prometheus exposition (what `GET /metrics` would
//      serve) and dump the span ring as Chrome trace-event JSON: load
//      observability_trace.json in chrome://tracing or ui.perfetto.dev and
//      the flaky tenant's io.retry spans sit in its own pid lane.
//
// docs/OBSERVABILITY.md is the companion reference (metric catalog, span
// glossary); tools/msd_metrics_dump.cc is the CLI twin of this walkthrough.
#include <cstdio>
#include <string>

#include "src/api/session.h"
#include "src/service/data_service.h"

namespace {

msd::Session::Options JobOptions(msd::CorpusSpec corpus) {
  msd::Session::Options options;
  options.corpus = std::move(corpus);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * msd::kKiB;
  return options;
}

void StreamSteps(msd::DataService& service, const std::string& tenant, int steps) {
  msd::Session* session = service.session(tenant);
  MSD_CHECK(session != nullptr);
  const int32_t world = session->tree().spec().WorldSize();
  for (int step = 0; step < steps; ++step) {
    for (int32_t rank = 0; rank < world; ++rank) {
      msd::Result<msd::RankBatch> batch = session->client(rank).value()->NextBatch();
      MSD_CHECK(batch.ok());
    }
  }
}

}  // namespace

int main() {
  // 1. One shared plane, two tenants. The flaky tenant's chaos is scoped to
  // its private scheduler route — the healthy neighbour never sees a failure.
  msd::SharedIoPlaneConfig plane;
  plane.cache_bytes = 64 * msd::kMiB;
  plane.storage_get_latency = 200;  // 0.2 ms per backing Get
  plane.retry.max_attempts = 3;
  msd::DataService service(plane);

  msd::DataService::TenantConfig healthy;
  healthy.session = JobOptions(msd::MakeCoyo700m());
  msd::DataService::TenantConfig flaky;
  flaky.session = JobOptions(msd::MakeTextCorpus(13, 4));
  flaky.storage_faults.fail_first_n = 1;
  MSD_CHECK(service.RegisterTenant("vlm-main", healthy).ok());
  MSD_CHECK(service.RegisterTenant("text-flaky", flaky).ok());

  // 2. The scrape hook: what a deployment wires to Prometheus/StatsD. Every
  // snapshot is one consistent cut — slices sum to the aggregate even while
  // both tenants stream full tilt.
  MSD_CHECK(service
                .StartScrape(50,
                             [](const msd::DataService::ServiceSnapshot& snap) {
                               std::printf("scrape |");
                               for (const auto& [name, slice] : snap.tenants) {
                                 std::printf(
                                     " %s: req=%lld hit=%lld retry=%lld cached=%.1fMiB |",
                                     name.c_str(),
                                     static_cast<long long>(slice.scheduler.requests),
                                     static_cast<long long>(slice.scheduler.cache_hits),
                                     static_cast<long long>(slice.scheduler.retries),
                                     static_cast<double>(slice.cache.resident_bytes) /
                                         (1024.0 * 1024.0));
                               }
                               std::printf(" backing_gets=%lld\n",
                                           static_cast<long long>(snap.backing_gets));
                             })
                .ok());

  // 3. The workload: both tenants stream while the scrape thread reports.
  for (int round = 0; round < 2; ++round) {
    StreamSteps(service, "vlm-main", 1);
    StreamSteps(service, "text-flaky", 1);
  }
  service.StopScrape();

  // 4a. The Prometheus exposition — per-tenant labelled series next to the
  // unlabelled aggregates, histograms with cumulative le-buckets.
  std::printf("\n--- GET /metrics (Prometheus text exposition) ---\n%s",
              service.RenderPrometheus().c_str());

  // 4b. The trace: every tenant's spans on one timeline, pid = tenant, so a
  // slow step decomposes into which phase / which tenant / which backing Get.
  const std::string trace_path = "observability_trace.json";
  MSD_CHECK(service.DumpTrace(trace_path).ok());
  std::printf("\ntrace written to %s — open in chrome://tracing; the\n"
              "'tenant 2' lane carries the io.retry spans the fail-first-1\n"
              "schedule forced, the 'tenant 1' lane has none.\n",
              trace_path.c_str());

  // The struct-typed snapshot backs programmatic consumers (autoscalers,
  // admission control) without parsing text.
  msd::DataService::ServiceSnapshot snap = service.MetricsSnapshot();
  std::printf("\nfinal cut: %lld backing Gets, %zu tenants, %zu exported series\n",
              static_cast<long long>(snap.backing_gets), snap.tenants.size(),
              snap.telemetry.points.size());
  return 0;
}
