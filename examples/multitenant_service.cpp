// Multi-tenant dataloader service (src/service/): one shared I/O plane —
// block cache, fair-share Get scheduler, remote store — hosting several
// independent training jobs.
//
// Three tenants co-habit one DataService here:
//   - "vlm-main" and "vlm-ablation": two jobs over the SAME multimodal
//     corpus. Their hot row groups are fetched from remote storage once and
//     served to both out of the shared cache (watch cross-tenant hits climb
//     while backing Gets stay near a single job's cost).
//   - "text-scan": a scan-heavy side job over a disjoint text corpus,
//     registered with weight 0.5, a 1-Get in-flight cap, and a small private
//     cache budget — it gets its work done without denting the others.
//
// Each tenant's stream is byte-identical to what the same Session::Options
// would serve alone: co-hosting is invisible in the data.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/service/data_service.h"
#include "src/service/shared_plane.h"

namespace {

msd::Session::Options JobOptions(msd::CorpusSpec corpus, int64_t samples_per_step) {
  msd::Session::Options options;
  options.corpus = std::move(corpus);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = samples_per_step;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * msd::kKiB;
  return options;
}

void StreamSteps(msd::DataService& service, const std::string& tenant, int steps) {
  msd::Session* session = service.session(tenant);
  MSD_CHECK(session != nullptr);
  const int32_t world = session->tree().spec().WorldSize();
  for (int step = 0; step < steps; ++step) {
    int64_t tokens = 0;
    for (int32_t rank = 0; rank < world; ++rank) {
      msd::Result<msd::RankBatch> batch = session->client(rank).value()->NextBatch();
      MSD_CHECK(batch.ok());
      for (const msd::Microbatch& mb : batch->microbatches) {
        for (const msd::PackedSequence& seq : mb.sequences) {
          tokens += static_cast<int64_t>(seq.tokens.size());
        }
      }
    }
    std::printf("  [%s] step %d: %lld tokens\n", tenant.c_str(), step,
                static_cast<long long>(tokens));
  }
}

}  // namespace

int main() {
  // The shared plane: ONE cache and ONE scheduler for every tenant. A
  // 200 us/Get latency injector stands in for remote blob storage.
  msd::SharedIoPlaneConfig plane;
  plane.cache_bytes = 128 * msd::kMiB;
  plane.storage_get_latency = 200;
  msd::DataService service(plane);

  // Two jobs over the same corpus: the service dedups their backing reads.
  msd::DataService::TenantConfig main_job;
  main_job.session = JobOptions(msd::MakeCoyo700m(), /*samples_per_step=*/16);
  MSD_CHECK(service.RegisterTenant("vlm-main", main_job).ok());

  msd::DataService::TenantConfig ablation;
  ablation.session = JobOptions(msd::MakeCoyo700m(), /*samples_per_step=*/16);
  MSD_CHECK(service.RegisterTenant("vlm-ablation", ablation).ok());

  // The scan job: demoted weight, capped in-flight Gets, tiny cache budget.
  msd::DataService::TenantConfig scan;
  scan.session = JobOptions(msd::MakeTextCorpus(/*seed=*/13, /*num_sources=*/4),
                            /*samples_per_step=*/32);
  scan.session.read_ahead_groups = 8;
  scan.quota.weight = 0.5;
  scan.quota.max_inflight_gets = 1;
  scan.quota.cache_bytes = 4 * msd::kMiB;
  MSD_CHECK(service.RegisterTenant("text-scan", scan).ok());

  // All three stream concurrently against the one plane.
  std::vector<std::thread> jobs;
  for (const std::string& tenant : service.tenant_names()) {
    jobs.emplace_back([&service, tenant] { StreamSteps(service, tenant, /*steps=*/3); });
  }
  for (std::thread& t : jobs) {
    t.join();
  }

  // The ablation finished: tear it down. Its in-flight reads are drained,
  // its cache bytes released — the survivors never notice.
  MSD_CHECK(service.RemoveTenant("vlm-ablation").ok());

  std::printf("\nshared-plane accounting after 3 steps/tenant:\n");
  std::printf("  backing Gets (all tenants):   %lld\n",
              static_cast<long long>(service.backing_gets()));
  msd::BlockCache::Stats cache = service.plane()->cache_stats();
  std::printf("  cross-tenant cache hits:      %lld\n",
              static_cast<long long>(cache.cross_tenant_hits));
  std::printf("  cache resident:               %lld MiB\n",
              static_cast<long long>(cache.resident_bytes / msd::kMiB));
  for (const std::string& tenant : service.tenant_names()) {
    msd::DataService::TenantStats stats = service.tenant_stats(tenant).value();
    std::printf("  [%s] requests=%lld cache-hits=%lld issued-gets=%lld\n", tenant.c_str(),
                static_cast<long long>(stats.scheduler.requests),
                static_cast<long long>(stats.scheduler.cache_hits),
                static_cast<long long>(stats.scheduler.issued_gets));
  }
  return 0;
}
