// Fault tolerance demo (Sec. 6.1), in two acts.
//
// Act 1 — in-process recovery: a Source Loader is abruptly killed
// mid-training; its hot-standby shadow is promoted instantly and the batch
// streams keep flowing. KillAndRecoverLoader drains the prefetch pipeline
// first, so the kill can never race an in-flight pop — prefetched steps
// survive the failover untouched.
//
// Act 2 — durable recovery (src/checkpoint/): the whole process dies. A
// checkpoint written earlier to disk carries the planner RNG + plan journal,
// every loader's read cursor + consumed-id set, and the per-rank stream
// positions; SessionBuilder::ResumeFrom() rebuilds a brand-new Session that
// continues the exact byte stream — here even on a *different* mesh
// (cp 1 -> 2), the elastic-resume path.
#include <cstdio>
#include <filesystem>
#include <string>

#include "src/api/session.h"

namespace {

// Pulls one step's batches for every rank and returns rank 0's payload bytes.
int64_t StreamOneStep(msd::Session& session) {
  int64_t rank0_payload = 0;
  for (int32_t rank = 0; rank < session.tree().spec().WorldSize(); ++rank) {
    msd::Result<msd::RankBatch> batch = session.client(rank).value()->NextBatch();
    MSD_CHECK(batch.ok());
    if (rank == 0) {
      rank0_payload = batch->payload_bytes;
    }
  }
  return rank0_payload;
}

msd::SessionBuilder ConfiguredBuilder(const msd::ParallelismSpec& mesh,
                                      const std::string& gcs_dir) {
  return std::move(msd::SessionBuilder()
                       .WithCorpus(msd::MakeCoyo700m())
                       .WithMesh(mesh)
                       .WithSamplesPerStep(12)
                       .WithRowsPerFile(96)
                       .WithFaultTolerance()
                       .WithSnapshotInterval(2)
                       .WithDurableGcs(gcs_dir)  // journal survives the process
                       .WithPrefetchDepth(2));
}

}  // namespace

int main() {
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "msd_example_checkpoint").string();
  const std::string gcs_dir = ckpt_dir + "-gcs";
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::remove_all(gcs_dir);

  {
    auto session = ConfiguredBuilder({.dp = 2, .pp = 1, .cp = 1, .tp = 1}, gcs_dir).Build();
    MSD_CHECK(session.ok());
    std::printf("running with %zu primaries + hot shadows (snapshot every 2 steps), "
                "prefetch depth 2\n",
                (*session)->num_loaders());

    for (int step = 0; step < 3; ++step) {
      StreamOneStep(**session);
      std::printf("step %d streamed ok\n", step);
    }

    std::printf("\n!! killing source loader #0 (abrupt: mailbox dropped, GCS marked dead)\n");
    msd::Result<std::string> promoted = (*session)->KillAndRecoverLoader(0);
    MSD_CHECK(promoted.ok());
    std::printf("=> drained pipeline, promoted %s\n", promoted->c_str());

    for (int step = 3; step < 6; ++step) {
      int64_t payload = StreamOneStep(**session);
      std::printf("step %d ok after failover (rank0 payload %lld bytes)\n", step,
                  static_cast<long long>(payload));
    }
    msd::PrefetchPipeline::Stats stats = (*session)->pipeline_stats();
    std::printf("\npipeline across the failure: %lld steps produced, %lld hits / %lld stalls\n",
                static_cast<long long>(stats.steps_produced),
                static_cast<long long>(stats.prefetch_hits),
                static_cast<long long>(stats.prefetch_stalls));

    // Act 2 setup: commit the stream position durably, then let the whole
    // process die (the Session — loaders, shadows, planner, GCS — is
    // destroyed with this scope; only the on-disk checkpoint survives).
    msd::Result<std::string> ckpt = (*session)->Checkpoint(ckpt_dir);
    MSD_CHECK(ckpt.ok());
    std::printf("\n== checkpointed as %s under %s\n", ckpt->c_str(), ckpt_dir.c_str());
    std::printf("!! killing the entire process (session destroyed, shadows included)\n");
  }

  // "Process restart": a brand-new Session resumes the stream from disk —
  // on a different mesh (cp 1 -> 2 doubles the world) and a deeper pipeline.
  auto resumed = ConfiguredBuilder({.dp = 2, .pp = 1, .cp = 2, .tp = 1}, gcs_dir)
                     .WithPrefetchDepth(3)
                     .ResumeFrom(ckpt_dir)
                     .Build();
  MSD_CHECK(resumed.ok());
  std::printf("=> resumed on a resharded mesh (cp 2, world %d) at the committed step; "
              "journaled in-flight plans replay against the new topology\n",
              (*resumed)->tree().spec().WorldSize());
  for (int step = 6; step < 9; ++step) {
    int64_t payload = StreamOneStep(**resumed);
    std::printf("step %d ok after process restart (rank0 payload %lld bytes)\n", step,
                static_cast<long long>(payload));
  }
  std::printf("\nno delivery gap across either failure — loader kill and full process "
              "death both preserve the exact training byte stream\n");
  std::filesystem::remove_all(ckpt_dir);
  std::filesystem::remove_all(gcs_dir);
  return 0;
}
