// Fault tolerance demo (Sec. 6.1): a Source Loader is abruptly killed
// mid-training; its hot-standby shadow is promoted instantly and data
// delivery continues without a gap.
#include <cstdio>

#include "src/api/session.h"

int main() {
  msd::Session::Options options;
  options.corpus = msd::MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.samples_per_step = 12;
  options.rows_per_file_override = 96;
  options.enable_fault_tolerance = true;
  options.loader_snapshot_interval = 2;

  auto session = msd::Session::Create(options);
  MSD_CHECK(session.ok());
  std::printf("running with %zu primaries + hot shadows (snapshot every %lld steps)\n",
              (*session)->num_loaders(),
              static_cast<long long>(options.loader_snapshot_interval));

  for (int step = 0; step < 3; ++step) {
    MSD_CHECK((*session)->AdvanceStep().ok());
    std::printf("step %d ok (%zu samples)\n", step, (*session)->last_stats().samples);
  }

  std::printf("\n!! killing source loader #0 (abrupt: mailbox dropped, GCS marked dead)\n");
  msd::Result<std::string> promoted = (*session)->KillAndRecoverLoader(0);
  MSD_CHECK(promoted.ok());
  std::printf("=> promoted %s\n", promoted->c_str());

  for (int step = 3; step < 6; ++step) {
    msd::Status advanced = (*session)->AdvanceStep();
    MSD_CHECK(advanced.ok());
    msd::RankBatch batch = (*session)->GetBatch(0).value();
    std::printf("step %d ok after failover (%zu samples, rank0 payload %lld bytes)\n", step,
                (*session)->last_stats().samples,
                static_cast<long long>(batch.payload_bytes));
  }
  std::printf("\nno delivery gap across the failure — effective training time preserved\n");
  return 0;
}
