// Fault tolerance demo (Sec. 6.1): a Source Loader is abruptly killed
// mid-training; its hot-standby shadow is promoted instantly and the batch
// streams keep flowing. KillAndRecoverLoader drains the prefetch pipeline
// first, so the kill can never race an in-flight pop — prefetched steps
// survive the failover untouched.
#include <cstdio>

#include "src/api/session.h"

namespace {

// Pulls one step's batches for both ranks and returns rank 0's payload bytes.
int64_t StreamOneStep(msd::Session& session) {
  int64_t rank0_payload = 0;
  for (int32_t rank = 0; rank < session.tree().spec().WorldSize(); ++rank) {
    msd::Result<msd::RankBatch> batch = session.client(rank).value()->NextBatch();
    MSD_CHECK(batch.ok());
    if (rank == 0) {
      rank0_payload = batch->payload_bytes;
    }
  }
  return rank0_payload;
}

}  // namespace

int main() {
  auto session = msd::SessionBuilder()
                     .WithCorpus(msd::MakeCoyo700m())
                     .WithMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1})
                     .WithSamplesPerStep(12)
                     .WithRowsPerFile(96)
                     .WithFaultTolerance()
                     .WithSnapshotInterval(2)
                     .WithPrefetchDepth(2)
                     .Build();
  MSD_CHECK(session.ok());
  std::printf("running with %zu primaries + hot shadows (snapshot every 2 steps), "
              "prefetch depth 2\n",
              (*session)->num_loaders());

  for (int step = 0; step < 3; ++step) {
    StreamOneStep(**session);
    std::printf("step %d streamed ok\n", step);
  }

  std::printf("\n!! killing source loader #0 (abrupt: mailbox dropped, GCS marked dead)\n");
  msd::Result<std::string> promoted = (*session)->KillAndRecoverLoader(0);
  MSD_CHECK(promoted.ok());
  std::printf("=> drained pipeline, promoted %s\n", promoted->c_str());

  for (int step = 3; step < 6; ++step) {
    int64_t payload = StreamOneStep(**session);
    std::printf("step %d ok after failover (rank0 payload %lld bytes)\n", step,
                static_cast<long long>(payload));
  }
  msd::PrefetchPipeline::Stats stats = (*session)->pipeline_stats();
  std::printf("\npipeline across the failure: %lld steps produced, %lld hits / %lld stalls\n",
              static_cast<long long>(stats.steps_produced),
              static_cast<long long>(stats.prefetch_hits),
              static_cast<long long>(stats.prefetch_stalls));
  std::printf("no delivery gap across the failure — effective training time preserved\n");
  return 0;
}
