// Quickstart: build a small multisource VLM corpus, start a MegaScale-Data
// session (source loaders + data constructors + planner as in-process
// actors), and pull real, packed, parallelism-transformed batches.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/api/session.h"

int main() {
  msd::Session::Options options;
  options.corpus = msd::MakeCoyo700m();       // 5 image-text sources (Fig. 2 fit)
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 2048;
  options.strategy = msd::Session::StrategyKind::kBackboneBalance;
  options.rows_per_file_override = 64;

  auto session = msd::Session::Create(std::move(options));
  if (!session.ok()) {
    std::fprintf(stderr, "session creation failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::printf("session up: %zu source loaders, mesh %s\n", (*session)->num_loaders(),
              (*session)->tree().spec().ToString().c_str());

  for (int step = 0; step < 3; ++step) {
    msd::Status advanced = (*session)->AdvanceStep();
    if (!advanced.ok()) {
      std::fprintf(stderr, "step failed: %s\n", advanced.ToString().c_str());
      return 1;
    }
    const msd::Session::StepStats& stats = (*session)->last_stats();
    std::printf("\nstep %lld: %zu samples, DP imbalance %.3f, plan %.2f ms\n",
                static_cast<long long>(stats.step), stats.samples, stats.dp_imbalance,
                stats.plan_compute_ms);
    for (int32_t rank = 0; rank < 2; ++rank) {
      msd::Result<msd::RankBatch> batch = (*session)->GetBatch(rank);
      if (!batch.ok()) {
        std::fprintf(stderr, "fetch failed: %s\n", batch.status().ToString().c_str());
        return 1;
      }
      int64_t tokens = 0;
      size_t sequences = 0;
      for (const msd::Microbatch& mb : batch->microbatches) {
        sequences += mb.sequences.size();
        tokens += mb.TotalTokens();
      }
      std::printf("  rank %d: %zu microbatches, %zu packed sequences, %lld tokens, "
                  "%lld payload bytes\n",
                  rank, batch->microbatches.size(), sequences,
                  static_cast<long long>(tokens),
                  static_cast<long long>(batch->payload_bytes));
    }
  }
  std::printf("\n%s", (*session)->memory().Report().c_str());
  return 0;
}
