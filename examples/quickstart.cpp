// Quickstart: build a small multisource VLM corpus, start a MegaScale-Data
// session (source loaders + data constructors + planner as in-process
// actors), and stream real, packed, parallelism-transformed batches through
// per-rank DataClient handles while the prefetch pipeline builds ahead.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "src/api/session.h"

namespace {

// One trainer rank: pull `steps` batches off this rank's stream. On the hot
// path the pull is a prefetch hit — the pipeline built the step while the
// previous one was being consumed.
void RunRank(msd::DataClient* client, int steps, int64_t* tokens_out) {
  int64_t tokens = 0;
  for (int step = 0; step < steps; ++step) {
    msd::Result<msd::RankBatch> batch = client->NextBatch();
    MSD_CHECK(batch.ok());
    for (const msd::Microbatch& mb : batch->microbatches) {
      tokens += mb.TotalTokens();
    }
  }
  *tokens_out = tokens;
}

}  // namespace

int main() {
  auto session = msd::SessionBuilder()
                     .WithCorpus(msd::MakeCoyo700m())  // 5 image-text sources
                     .WithMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1})
                     .WithMicrobatches(2)
                     .WithSamplesPerStep(16)
                     .WithMaxSeqLen(2048)
                     .WithStrategy(msd::Session::StrategyKind::kBackboneBalance)
                     .WithRowsPerFile(64)
                     .WithPrefetchDepth(2)
                     .Build();
  if (!session.ok()) {
    std::fprintf(stderr, "session creation failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::printf("session up: %zu source loaders, mesh %s, prefetch depth 2\n",
              (*session)->num_loaders(), (*session)->tree().spec().ToString().c_str());

  // Streaming consumption: one thread per rank, each pulling its own stream.
  constexpr int kSteps = 3;
  const int32_t world = (*session)->tree().spec().WorldSize();
  std::vector<int64_t> tokens(static_cast<size_t>(world), 0);
  std::vector<std::thread> ranks;
  for (int32_t rank = 0; rank < world; ++rank) {
    msd::DataClient* client = (*session)->client(rank).value();
    ranks.emplace_back(RunRank, client, kSteps, &tokens[static_cast<size_t>(rank)]);
  }
  for (std::thread& t : ranks) {
    t.join();
  }
  for (int32_t rank = 0; rank < world; ++rank) {
    std::printf("  rank %d streamed %d steps, %lld tokens\n", rank, kSteps,
                static_cast<long long>(tokens[static_cast<size_t>(rank)]));
  }
  msd::PrefetchPipeline::Stats stats = (*session)->pipeline_stats();
  std::printf("pipeline: %lld steps produced, %lld retired, %lld hits / %lld stalls\n",
              static_cast<long long>(stats.steps_produced),
              static_cast<long long>(stats.steps_retired),
              static_cast<long long>(stats.prefetch_hits),
              static_cast<long long>(stats.prefetch_stalls));

  // The async variant overlaps the fetch with caller compute.
  msd::DataClient* client0 = (*session)->client(0).value();
  std::future<msd::Result<msd::RankBatch>> pending = client0->NextBatchAsync();
  //   ... training compute for the previous step would run here ...
  msd::Result<msd::RankBatch> async_batch = pending.get();
  MSD_CHECK(async_batch.ok());
  std::printf("async pull served step %lld for rank 0\n",
              static_cast<long long>(async_batch->step));

  // ------------------------------------------------------------------
  // Deprecated lockstep loop (AdvanceStep/GetBatch), kept as a migration
  // reference. It is a shim over the same pipeline and serves byte-identical
  // batches; new code should stream through client(rank) instead.
  // ------------------------------------------------------------------
  auto legacy = msd::SessionBuilder()
                    .WithCorpus(msd::MakeCoyo700m())
                    .WithMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1})
                    .WithMicrobatches(2)
                    .WithSamplesPerStep(16)
                    .WithMaxSeqLen(2048)
                    .WithRowsPerFile(64)
                    .Build();
  MSD_CHECK(legacy.ok());
  for (int step = 0; step < 2; ++step) {
    msd::Status advanced = (*legacy)->AdvanceStep();  // deprecated shim
    MSD_CHECK(advanced.ok());
    const msd::Session::StepStats& stats2 = (*legacy)->last_stats();
    std::printf("\n[legacy] step %lld: %zu samples, DP imbalance %.3f, plan %.2f ms, "
                "build-ahead %.2f ms\n",
                static_cast<long long>(stats2.step), stats2.samples, stats2.dp_imbalance,
                stats2.plan_compute_ms, stats2.build_ahead_ms);
    for (int32_t rank = 0; rank < 2; ++rank) {
      msd::Result<msd::RankBatch> batch = (*legacy)->GetBatch(rank);  // deprecated shim
      MSD_CHECK(batch.ok());
      std::printf("[legacy]   rank %d: %zu microbatches, %lld payload bytes\n", rank,
                  batch->microbatches.size(),
                  static_cast<long long>(batch->payload_bytes));
    }
  }
  std::printf("\n%s", (*session)->memory().Report().c_str());
  return 0;
}
