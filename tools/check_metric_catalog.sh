#!/bin/sh
# Cross-checks the metric catalog in docs/OBSERVABILITY.md against the series
# the code actually registers, in BOTH directions:
#
#   - every `"msd_*"` series literal in src/ must have a catalog row in
#     docs/OBSERVABILITY.md (no undocumented series), and
#   - every msd_* token the doc mentions must exist as a literal in src/
#     (no rows for series that were renamed or removed).
#
# Binary/tool names that share the msd_ prefix (msd_diagnose, msd_tests, ...)
# are excluded below. Wired into ctest as `metric_catalog_check` next to
# `bench_json_check`, so the catalog fails CI instead of rotting silently.
set -u

root="${1:-.}"
doc="$root/docs/OBSERVABILITY.md"

if [ ! -f "$doc" ]; then
  echo "INVALID: $doc does not exist"
  exit 1
fi

# msd_-prefixed tokens that are NOT metric series names.
exclude='^(msd_metrics_dump|msd_diagnose|msd_tests|msd_warn)'

code_series=$(grep -rhoE '"msd_[a-z0-9_]+"' "$root/src" 2>/dev/null \
  | tr -d '"' | grep -Ev "$exclude" | sort -u)
doc_series=$(grep -ohE 'msd_[a-z0-9_]+' "$doc" 2>/dev/null \
  | grep -Ev "$exclude" | sort -u)

if [ -z "$code_series" ]; then
  echo "INVALID: no msd_* series literals found under $root/src"
  exit 1
fi

fail=0

undocumented=$(printf '%s\n' "$code_series" | grep -Fvx "$doc_series" || true)
if [ -n "$undocumented" ]; then
  for name in $undocumented; do
    echo "INVALID: $name is registered in src/ but missing from docs/OBSERVABILITY.md"
  done
  fail=1
fi

stale=$(printf '%s\n' "$doc_series" | grep -Fvx "$code_series" || true)
if [ -n "$stale" ]; then
  for name in $stale; do
    echo "INVALID: $name is documented in docs/OBSERVABILITY.md but no src/ literal registers it"
  done
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  count=$(printf '%s\n' "$code_series" | wc -l | tr -d ' ')
  echo "metric catalog consistent: $count series documented and registered"
fi
exit $fail
