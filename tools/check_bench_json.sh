#!/bin/sh
# Validates every BENCH_*.json ledger at the repo root against the shared
# schema:
#   top level: bench (string), source (string, must exist), date (YYYY-MM-DD),
#              pr (number), scenarios (non-empty array)
#   scenario:  label (string), results (object), gates (object), pass == true
# A ledger that fails to parse, misses a key, points at a nonexistent bench
# source, or records pass != true fails the check — wired into ctest as
# `bench_json_check` next to `docs_check`, so malformed or red entries fail
# CI instead of rotting silently. Prefers python3; falls back to jq; skips
# (exit 0, with a notice) if neither exists.
set -u

root="${1:-.}"

ledgers=$(ls "$root"/BENCH_*.json 2>/dev/null || true)
if [ -z "$ledgers" ]; then
  echo "no BENCH_*.json ledgers found under $root (nothing to validate)"
  exit 0
fi

if command -v python3 >/dev/null 2>&1; then
  python3 - "$root" $ledgers <<'EOF'
import json
import os
import re
import sys

root = sys.argv[1]
failures = []

def fail(path, msg):
    failures.append(f"{os.path.basename(path)}: {msg}")

for path in sys.argv[2:]:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"invalid JSON: {e}")
        continue
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
        continue
    for key, kind in (("bench", str), ("source", str), ("date", str),
                      ("pr", (int, float)), ("scenarios", list)):
        if not isinstance(doc.get(key), kind):
            fail(path, f"missing or mistyped top-level key '{key}'")
    if isinstance(doc.get("date"), str) and not re.fullmatch(
            r"\d{4}-\d{2}-\d{2}", doc["date"]):
        fail(path, f"date '{doc['date']}' is not YYYY-MM-DD")
    source = doc.get("source")
    if isinstance(source, str) and not os.path.exists(os.path.join(root, source)):
        fail(path, f"source '{source}' does not exist in the repo")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        fail(path, "scenarios must be a non-empty array")
        continue
    for i, sc in enumerate(scenarios):
        if not isinstance(sc, dict):
            fail(path, f"scenario {i} is not an object")
            continue
        if not isinstance(sc.get("label"), str) or not sc["label"]:
            fail(path, f"scenario {i} is missing a label")
        for key in ("results", "gates"):
            if not isinstance(sc.get(key), dict) or not sc[key]:
                fail(path, f"scenario '{sc.get('label', i)}' is missing '{key}'")
        if sc.get("pass") is not True:
            fail(path, f"scenario '{sc.get('label', i)}' does not record pass=true")

if failures:
    for f in failures:
        print(f"INVALID: {f}")
    print(f"{len(failures)} bench-ledger violation(s)")
    sys.exit(1)
print(f"all {len(sys.argv) - 2} BENCH_*.json ledgers valid")
EOF
  exit $?
fi

if command -v jq >/dev/null 2>&1; then
  fail=0
  count=0
  for ledger in $ledgers; do
    count=$((count + 1))
    if ! jq -e '
        (.bench | type == "string") and
        (.source | type == "string") and
        (.date | test("^[0-9]{4}-[0-9]{2}-[0-9]{2}$")) and
        (.pr | type == "number") and
        (.scenarios | type == "array" and length > 0) and
        (.scenarios | all(
          (.label | type == "string" and length > 0) and
          (.results | type == "object") and
          (.gates | type == "object") and
          (.pass == true)))' "$ledger" >/dev/null 2>&1; then
      echo "INVALID: $(basename "$ledger") fails the ledger schema"
      fail=1
    fi
    source=$(jq -r '.source // empty' "$ledger" 2>/dev/null)
    if [ -n "$source" ] && [ ! -e "$root/$source" ]; then
      echo "INVALID: $(basename "$ledger") source '$source' does not exist"
      fail=1
    fi
  done
  [ "$fail" -eq 0 ] && echo "all $count BENCH_*.json ledgers valid"
  exit $fail
fi

echo "neither python3 nor jq available; skipping bench-ledger validation"
exit 0
