// msd_diagnose: pretty-prints a flight-recorder bundle from a shell.
//
// The health monitor (src/telemetry/health.h) dumps self-contained diagnostic
// bundles on anomaly triggers and hard events:
//
//   <recorder_dir>/bundle-<seq>/
//     MANIFEST.json  trace.json  metrics.json  attribution.json
//     verdict.json   log_tail.txt
//
// This tool renders one bundle for a human: the triggering reason, the
// bottleneck verdict, the per-step stall breakdown table, the alarmed SLO
// signals, and the tail of the captured log ring. Point it at a bundle
// directory, or at the recorder directory itself to get the newest bundle
// (--list enumerates them instead).
//
// Usage:
//   msd_diagnose <bundle-dir | recorder-dir> [--list] [--log-lines N]
//
// No JSON library: the bundle files are written by our own renderers with a
// fixed shape, so flat key extraction is sufficient and keeps the tool
// dependency-free.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool ReadFileToString(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Extracts the value of `"key":"..."` from flat JSON our renderers emit.
std::string JsonString(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) {
    return "";
  }
  const size_t start = at + needle.size();
  std::string out;
  for (size_t i = start; i < json.size(); ++i) {
    if (json[i] == '\\' && i + 1 < json.size()) {
      out += json[++i];
    } else if (json[i] == '"') {
      break;
    } else {
      out += json[i];
    }
  }
  return out;
}

// Extracts the value of `"key":<number>`; `fallback` when absent.
double JsonNumber(const std::string& json, const std::string& key, double fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) {
    return fallback;
  }
  return std::atof(json.c_str() + at + needle.size());
}

int64_t BundleSeq(const fs::path& path) {
  const std::string name = path.filename().string();
  if (name.rfind("bundle-", 0) != 0) {
    return -1;
  }
  const std::string digits = name.substr(std::strlen("bundle-"));
  if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::strtoll(digits.c_str(), nullptr, 10);
}

std::vector<fs::path> ListBundles(const fs::path& dir) {
  std::vector<std::pair<int64_t, fs::path>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const int64_t seq = BundleSeq(entry.path());
    if (seq >= 0 && fs::exists(entry.path() / "MANIFEST.json", ec)) {
      found.emplace_back(seq, entry.path());
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<fs::path> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) {
    paths.push_back(std::move(path));
  }
  return paths;
}

// Splits the top-level objects out of `"steps":[{...},{...}]`.
std::vector<std::string> StepObjects(const std::string& attribution) {
  std::vector<std::string> steps;
  const size_t at = attribution.find("\"steps\":[");
  if (at == std::string::npos) {
    return steps;
  }
  int depth = 0;
  size_t start = 0;
  for (size_t i = at + std::strlen("\"steps\":["); i < attribution.size(); ++i) {
    const char c = attribution[i];
    if (c == '{') {
      if (depth++ == 0) {
        start = i;
      }
    } else if (c == '}') {
      if (--depth == 0) {
        steps.push_back(attribution.substr(start, i - start + 1));
      }
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return steps;
}

void PrintBreakdownTable(const std::string& attribution) {
  const std::vector<std::string> steps = StepObjects(attribution);
  if (steps.empty()) {
    std::printf("  (no finalized steps in the attribution window)\n");
    return;
  }
  std::printf("  %6s %8s %8s %8s %8s %8s %8s %8s %8s %6s\n", "step", "wall_ms",
              "consumer", "plan", "pop_wait", "io_back", "io_retry", "build", "other",
              "src");
  for (const std::string& s : steps) {
    const int64_t src = static_cast<int64_t>(JsonNumber(s, "dominant_source", -1));
    std::printf("  %6lld %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %6s\n",
                static_cast<long long>(JsonNumber(s, "step", -1)),
                JsonNumber(s, "wall_ms", 0), JsonNumber(s, "consumer_stall_ms", 0),
                JsonNumber(s, "plan_ms", 0), JsonNumber(s, "pop_wait_ms", 0),
                JsonNumber(s, "io_backing_ms", 0), JsonNumber(s, "io_retry_ms", 0),
                JsonNumber(s, "build_ms", 0), JsonNumber(s, "other_ms", 0),
                src >= 0 ? std::to_string(src).c_str() : "-");
  }
}

// Splits the objects out of `"signals":[{...}]` in the detector JSON.
void PrintAnomalies(const std::string& verdict_json) {
  const size_t at = verdict_json.find("\"signals\":[");
  if (at == std::string::npos) {
    return;
  }
  int depth = 0;
  size_t start = 0;
  for (size_t i = at + std::strlen("\"signals\":["); i < verdict_json.size(); ++i) {
    const char c = verdict_json[i];
    if (c == '{') {
      if (depth++ == 0) {
        start = i;
      }
    } else if (c == '}') {
      if (--depth == 0) {
        const std::string s = verdict_json.substr(start, i - start + 1);
        std::printf("  %-16s %-8s baseline=%.3f last=%.3f fires=%lld\n",
                    JsonString(s, "signal").c_str(),
                    s.find("\"alarmed\":true") != std::string::npos ? "ALARMED" : "ok",
                    JsonNumber(s, "baseline", 0), JsonNumber(s, "last", 0),
                    static_cast<long long>(JsonNumber(s, "fires", 0)));
      }
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
}

int PrintBundle(const fs::path& bundle, int log_lines) {
  std::string manifest;
  if (!ReadFileToString(bundle / "MANIFEST.json", &manifest)) {
    std::fprintf(stderr, "error: %s has no MANIFEST.json (not a bundle?)\n",
                 bundle.string().c_str());
    return 1;
  }
  std::printf("bundle:  %s\n", bundle.string().c_str());
  std::printf("seq:     %lld\n", static_cast<long long>(JsonNumber(manifest, "seq", -1)));
  std::printf("reason:  %s\n", JsonString(manifest, "reason").c_str());
  std::printf("created: %lld (unix ms)\n",
              static_cast<long long>(JsonNumber(manifest, "created_unix_ms", 0)));

  std::string verdict;
  if (ReadFileToString(bundle / "verdict.json", &verdict)) {
    std::printf("\nverdict: %s (confidence %.2f", JsonString(verdict, "verdict").c_str(),
                JsonNumber(verdict, "confidence", 0));
    const int64_t dominant = static_cast<int64_t>(JsonNumber(verdict, "dominant_source", -1));
    if (dominant >= 0) {
      std::printf(", dominant source %lld", static_cast<long long>(dominant));
    }
    std::printf(")\n");
    std::printf("\nSLO signals:\n");
    PrintAnomalies(verdict);
  }

  std::string attribution;
  if (ReadFileToString(bundle / "attribution.json", &attribution)) {
    std::printf("\nstall breakdown (exclusive ms per produced step):\n");
    PrintBreakdownTable(attribution);
  }

  std::string trace;
  if (ReadFileToString(bundle / "trace.json", &trace)) {
    const size_t spans = static_cast<size_t>(
        std::count(trace.begin(), trace.end(), '{')) - 1;  // minus the root object
    std::printf("\ntrace.json: %zu spans (open in chrome://tracing or ui.perfetto.dev)\n",
                spans);
  }

  std::string log_tail;
  if (log_lines > 0 && ReadFileToString(bundle / "log_tail.txt", &log_tail)) {
    std::vector<std::string> lines;
    std::istringstream in(log_tail);
    for (std::string line; std::getline(in, line);) {
      lines.push_back(std::move(line));
    }
    const size_t from = lines.size() > static_cast<size_t>(log_lines)
                            ? lines.size() - static_cast<size_t>(log_lines)
                            : 0;
    std::printf("\nlog tail (last %zu of %zu lines):\n", lines.size() - from, lines.size());
    for (size_t i = from; i < lines.size(); ++i) {
      std::printf("  %s\n", lines[i].c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  bool list = false;
  int log_lines = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--log-lines") == 0 && i + 1 < argc) {
      log_lines = std::atoi(argv[++i]);
    } else if (target.empty() && argv[i][0] != '-') {
      target = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: msd_diagnose <bundle-dir | recorder-dir> [--list] "
                   "[--log-lines N]\n");
      return 2;
    }
  }
  if (target.empty()) {
    std::fprintf(stderr,
                 "usage: msd_diagnose <bundle-dir | recorder-dir> [--list] "
                 "[--log-lines N]\n");
    return 2;
  }
  const fs::path path(target);
  std::error_code ec;
  if (!fs::is_directory(path, ec)) {
    std::fprintf(stderr, "error: %s is not a directory\n", target.c_str());
    return 1;
  }
  if (fs::exists(path / "MANIFEST.json", ec)) {
    return PrintBundle(path, log_lines);
  }
  const std::vector<fs::path> bundles = ListBundles(path);
  if (bundles.empty()) {
    std::fprintf(stderr, "error: no bundles under %s\n", target.c_str());
    return 1;
  }
  if (list) {
    for (const fs::path& bundle : bundles) {
      std::string manifest;
      ReadFileToString(bundle / "MANIFEST.json", &manifest);
      std::printf("%s  reason: %s\n", bundle.string().c_str(),
                  JsonString(manifest, "reason").c_str());
    }
    return 0;
  }
  return PrintBundle(bundles.back(), log_lines);
}
