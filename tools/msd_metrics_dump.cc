// msd_metrics_dump: the operator export surface, end to end, from a shell.
//
// Boots a small two-tenant DataService (one healthy tenant, one with
// fail-first-1 storage faults so the retry counters and spans are non-trivial),
// streams a few steps per tenant, and prints the service's metrics snapshot —
// Prometheus text exposition by default, JSON with --json. With --trace PATH
// it also dumps the plane's span ring as Chrome trace-event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev).
//
// Usage:
//   msd_metrics_dump [--json] [--steps N] [--trace PATH] [--scrape-ms N]
//
// --scrape-ms N demos the pluggable scrape hook: a background thread prints a
// one-line per-tenant digest every N ms while the tenants stream.
// docs/OBSERVABILITY.md walks through the output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/api/session.h"
#include "src/service/data_service.h"

namespace msd {
namespace {

Session::Options DemoSessionOptions(CorpusSpec corpus) {
  Session::Options options;
  options.corpus = std::move(corpus);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;
  return options;
}

void StreamSteps(Session* session, int64_t steps) {
  const int32_t world = session->tree().spec().WorldSize();
  for (int64_t s = 0; s < steps; ++s) {
    for (int32_t rank = 0; rank < world; ++rank) {
      Result<RankBatch> batch = session->client(rank).value()->NextBatch();
      if (!batch.ok()) {
        std::fprintf(stderr, "stream failed: %s\n", batch.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
}

int Run(bool json, int64_t steps, const std::string& trace_path, int64_t scrape_ms) {
  SharedIoPlaneConfig plane;
  plane.cache_bytes = 64 * kMiB;
  plane.storage_get_latency = 200;
  plane.retry.max_attempts = 3;
  DataService service(plane);

  DataService::TenantConfig healthy;
  healthy.session = DemoSessionOptions(MakeCoyo700m());
  DataService::TenantConfig flaky;
  flaky.session = DemoSessionOptions(MakeTextCorpus(13, 4));
  flaky.storage_faults.fail_first_n = 1;  // every range fails once, retry wins
  Status s = service.RegisterTenant("healthy", healthy);
  if (s.ok()) {
    s = service.RegisterTenant("flaky", flaky);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "tenant registration failed: %s\n", s.ToString().c_str());
    return 1;
  }

  if (scrape_ms > 0) {
    Status started = service.StartScrape(scrape_ms, [](const DataService::ServiceSnapshot& snap) {
      std::fprintf(stderr, "# scrape:");
      for (const auto& [name, slice] : snap.tenants) {
        std::fprintf(stderr, " %s{req=%lld hit=%lld retry=%lld}", name.c_str(),
                     static_cast<long long>(slice.scheduler.requests),
                     static_cast<long long>(slice.scheduler.cache_hits),
                     static_cast<long long>(slice.scheduler.retries));
      }
      std::fprintf(stderr, " backing_gets=%lld\n", static_cast<long long>(snap.backing_gets));
    });
    if (!started.ok()) {
      std::fprintf(stderr, "scrape hook failed: %s\n", started.ToString().c_str());
      return 1;
    }
  }

  StreamSteps(service.session("healthy"), steps);
  StreamSteps(service.session("flaky"), steps);
  service.StopScrape();

  std::fputs(json ? service.RenderJson().c_str() : service.RenderPrometheus().c_str(), stdout);
  if (json) {
    std::fputc('\n', stdout);
  }

  if (!trace_path.empty()) {
    Status dumped = service.DumpTrace(trace_path);
    if (!dumped.ok()) {
      std::fprintf(stderr, "trace dump failed: %s\n", dumped.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# trace written to %s (open in chrome://tracing)\n",
                 trace_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  bool json = false;
  int64_t steps = 2;
  int64_t scrape_ms = 0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scrape-ms") == 0 && i + 1 < argc) {
      scrape_ms = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: msd_metrics_dump [--json] [--steps N] [--trace PATH] "
                   "[--scrape-ms N]\n");
      return 2;
    }
  }
  return msd::Run(json, steps, trace_path, scrape_ms);
}
