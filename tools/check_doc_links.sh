#!/bin/sh
# Checks every relative markdown link in README.md and docs/*.md: each
# `](path)` target (anchors stripped) must exist relative to the file that
# links it. External (scheme://) and pure-anchor links are skipped. Exits
# nonzero listing every broken link — wired into ctest as `docs_check` and
# available as the `docs-check` build target.
set -u

root="${1:-.}"
fail=0
checked=0

check_file() {
  md="$1"
  dir=$(dirname "$md")
  # Pull out every inline link target: ](...) up to the closing paren.
  grep -o ']([^)]*)' "$md" 2>/dev/null | sed 's/^](//; s/)$//' |
  while IFS= read -r target; do
    case "$target" in
      *://*|mailto:*|'#'*|'') continue ;;  # external or in-page anchor
    esac
    path="${target%%#*}"                   # strip anchor
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $md -> $target"
    fi
  done
}

tmp="${TMPDIR:-/tmp}/docs_check_$$"
: > "$tmp"
for md in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$md" ] || continue
  checked=$((checked + 1))
  check_file "$md" >> "$tmp"
done

if [ -s "$tmp" ]; then
  cat "$tmp"
  count=$(wc -l < "$tmp")
  rm -f "$tmp"
  echo "docs-check: $count broken link(s) across $checked file(s)"
  exit 1
fi
rm -f "$tmp"
echo "docs-check: all relative links resolve across $checked file(s)"
exit 0
