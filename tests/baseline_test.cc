#include <gtest/gtest.h>

#include "src/baseline/loader_models.h"

namespace msd {
namespace {

LoaderWorkloadConfig Config288() {
  LoaderWorkloadConfig config;
  config.num_sources = 306;
  config.spec = {.dp = 9, .pp = 8, .cp = 1, .tp = 4};  // 288 GPUs
  config.cluster.num_gpus = config.spec.WorldSize();
  return config;
}

LoaderWorkloadConfig Config576() {
  LoaderWorkloadConfig config;
  config.num_sources = 306;
  config.spec = {.dp = 9, .pp = 4, .cp = 4, .tp = 4};  // 576 GPUs
  config.cluster.num_gpus = config.spec.WorldSize();
  return config;
}

TEST(LoaderModelsTest, AllArchsProduceSaneNumbers) {
  for (LoaderArch arch : AllLoaderArchs()) {
    LoaderSimResult r = SimulateLoaderArch(arch, Config288(), /*train_iteration_s=*/20.0);
    EXPECT_GT(r.memory_per_node, 0) << LoaderArchName(arch);
    EXPECT_GT(r.fetch_latency_s, 0.0) << LoaderArchName(arch);
    EXPECT_GT(r.cpu_cores_per_node, 0.0) << LoaderArchName(arch);
  }
}

TEST(LoaderModelsTest, MegaScaleUsesLeastMemory) {
  LoaderSimResult msd =
      SimulateLoaderArch(LoaderArch::kMegaScaleData, Config288(), 20.0);
  for (LoaderArch arch : AllLoaderArchs()) {
    if (arch == LoaderArch::kMegaScaleData) {
      continue;
    }
    LoaderSimResult other = SimulateLoaderArch(arch, Config288(), 20.0);
    EXPECT_GT(other.memory_per_node, 2 * msd.memory_per_node) << LoaderArchName(arch);
  }
}

TEST(LoaderModelsTest, MemoryAdvantageGrowsWithCpPp) {
  // Fig. 12: the reduction factor grows from the 288-GPU (PP8) to the
  // 576-GPU (PP4 CP4) configuration because baselines replicate loaders
  // per CP/PP rank while MegaScale-Data shares them.
  auto ratio = [](const LoaderWorkloadConfig& config) {
    double torch = static_cast<double>(
        SimulateLoaderArch(LoaderArch::kTorch, config, 20.0).memory_per_node);
    double msd = static_cast<double>(
        SimulateLoaderArch(LoaderArch::kMegaScaleData, config, 20.0).memory_per_node);
    return torch / msd;
  };
  double r288 = ratio(Config288());
  double r576 = ratio(Config576());
  EXPECT_GT(r288, 2.0);
  EXPECT_GT(r576, r288);
  EXPECT_GT(r576, 8.0);
}

TEST(LoaderModelsTest, MemoryScalesWithSources) {
  LoaderWorkloadConfig few = Config288();
  few.num_sources = 10;
  LoaderWorkloadConfig many = Config288();
  many.num_sources = 500;
  for (LoaderArch arch : AllLoaderArchs()) {
    int64_t m_few = SimulateLoaderArch(arch, few, 20.0).memory_per_node;
    int64_t m_many = SimulateLoaderArch(arch, many, 20.0).memory_per_node;
    EXPECT_GT(m_many, m_few) << LoaderArchName(arch);
  }
}

TEST(LoaderModelsTest, SourceScalingHurtsBaselinesMore) {
  // Adding sources multiplies baseline memory once per loader instance, but
  // MegaScale-Data only once globally.
  auto growth = [](LoaderArch arch) {
    LoaderWorkloadConfig few = Config288();
    few.num_sources = 50;
    LoaderWorkloadConfig many = Config288();
    many.num_sources = 500;
    return static_cast<double>(SimulateLoaderArch(arch, many, 20.0).memory_per_node) -
           static_cast<double>(SimulateLoaderArch(arch, few, 20.0).memory_per_node);
  };
  EXPECT_GT(growth(LoaderArch::kTorch), 10.0 * growth(LoaderArch::kMegaScaleData));
}

TEST(LoaderModelsTest, PecanUsesFewerCoresThanTfData) {
  LoaderSimResult pecan = SimulateLoaderArch(LoaderArch::kPecan, Config288(), 20.0);
  LoaderSimResult tfdata = SimulateLoaderArch(LoaderArch::kTfData, Config288(), 20.0);
  EXPECT_LT(pecan.cpu_cores_per_node, tfdata.cpu_cores_per_node);
  EXPECT_LT(pecan.fetch_latency_s, tfdata.fetch_latency_s);
}

TEST(LoaderModelsTest, InputBoundFlagAgainstShortIterations) {
  LoaderSimResult r = SimulateLoaderArch(LoaderArch::kTorch, Config288(), 0.001);
  EXPECT_TRUE(r.input_bound);
  LoaderSimResult r2 = SimulateLoaderArch(LoaderArch::kTorch, Config288(), 1000.0);
  EXPECT_FALSE(r2.input_bound);
}

TEST(LoaderModelsTest, ArchNamesUnique) {
  std::set<std::string> names;
  for (LoaderArch arch : AllLoaderArchs()) {
    EXPECT_TRUE(names.insert(LoaderArchName(arch)).second);
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(ClusterSpecTest, NodeMath) {
  ClusterSpec cluster;
  cluster.num_gpus = 288;
  EXPECT_EQ(cluster.NumNodes(), 18);
  EXPECT_EQ(cluster.NodeOfRank(0), 0);
  EXPECT_EQ(cluster.NodeOfRank(17), 1);
  EXPECT_GT(cluster.node.SidecarMemoryBytes(), 0);
  EXPECT_GT(cluster.node.SidecarCores(), 0);
}

}  // namespace
}  // namespace msd
