#include <gtest/gtest.h>

#include <atomic>

#include "src/actor/actor_system.h"

namespace msd {
namespace {

class Counter : public Actor {
 public:
  explicit Counter(std::string name) : Actor(std::move(name)) {}
  void Increment() { ++count_; }
  int count() const { return count_; }

 private:
  int count_ = 0;  // touched only on the actor's thread
};

TEST(ActorSystemTest, SpawnRegistersWithGcs) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("c1");
  EXPECT_TRUE(counter->alive());
  EXPECT_TRUE(system.gcs().IsAlive("c1"));
  EXPECT_EQ(system.live_actor_count(), 1u);
}

TEST(ActorSystemTest, PostAndAskRunOnActorThread) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("c");
  for (int i = 0; i < 100; ++i) {
    system.Post(*counter, [c = counter.get()] { c->Increment(); });
  }
  int count = system.Ask<int>(*counter, [c = counter.get()] { return c->count(); });
  EXPECT_EQ(count, 100);  // Ask serializes behind the posts
}

TEST(ActorSystemTest, AskReturnsValue) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("c");
  EXPECT_EQ(system.Ask<std::string>(*counter, [] { return std::string("pong"); }), "pong");
}

TEST(ActorSystemTest, AskWithTimeoutAnswersInTime) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("c");
  Result<int> r = system.AskWithTimeout<int>(*counter, [] { return 5; }, 1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
}

TEST(ActorSystemTest, AskWithTimeoutDetectsSlowActor) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("c");
  // Block the actor's thread so the subsequent ask cannot be served.
  std::atomic<bool> release{false};
  system.Post(*counter, [&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  Result<int> r = system.AskWithTimeout<int>(*counter, [] { return 1; }, 50);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  release.store(true);
}

// The abandoned-future contract (see AskWithTimeout in actor_system.h): a
// closure whose deadline fired still runs later on the actor's thread, into a
// promise nobody reads. It must be a pure no-op for the caller — its side
// effects confined to actor-owned state — and must not touch freed caller
// state. ASan/TSan runs of this test lock the contract in: the caller's stack
// frame (and its captured locals) are gone before the closure executes.
TEST(ActorSystemTest, AbandonedAskCompletionIsANoOpForTheCaller) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("c");
  std::atomic<bool> release{false};
  std::atomic<bool> late_ran{false};
  {
    // Scope models the caller unwinding: everything the closure may touch
    // after the timeout must be actor-owned or shared, never stack-captured.
    system.Post(*counter, [&release] {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    Result<int> r = system.AskWithTimeout<int>(
        *counter,
        [c = counter.get(), &late_ran] {
          c->Increment();  // actor-owned state: safe after the caller is gone
          late_ran.store(true);
          return c->count();
        },
        10);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_FALSE(late_ran.load());  // still parked behind the blocker
  }
  release.store(true);
  // Drain the mailbox: the abandoned closure runs now, long after its caller
  // acted on the timeout, and lands its result in an unread promise.
  int count = system.Ask<int>(*counter, [c = counter.get()] { return c->count(); });
  EXPECT_TRUE(late_ran.load());
  EXPECT_EQ(count, 1);  // the late Increment landed exactly once, harmlessly
}

// A second abandoned ask against an actor that dies before draining: the
// closure never runs (Kill drops pending messages) and nothing dangles.
TEST(ActorSystemTest, AbandonedAskCompletionOnKilledActorNeverRuns) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("c");
  std::atomic<bool> release{false};
  std::atomic<bool> late_ran{false};
  system.Post(*counter, [&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  Result<int> r = system.AskWithTimeout<int>(
      *counter, [&late_ran] { late_ran.store(true); return 1; }, 10);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  release.store(true);
  system.Kill(*counter);  // drops the queued closure
  system.Shutdown();
  EXPECT_FALSE(late_ran.load());
}

TEST(ActorSystemTest, KillMarksDeadAndDropsMessages) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("victim");
  system.Kill(*counter);
  EXPECT_FALSE(counter->alive());
  EXPECT_FALSE(system.gcs().IsAlive("victim"));
  EXPECT_FALSE(system.Post(*counter, [] {}));
  Result<int> r = system.AskWithTimeout<int>(*counter, [] { return 1; }, 100);
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(ActorSystemTest, StopDrainsMailboxFirst) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("c");
  for (int i = 0; i < 50; ++i) {
    system.Post(*counter, [c = counter.get()] { c->Increment(); });
  }
  system.Stop(*counter);
  EXPECT_EQ(counter->count(), 50);
}

TEST(ActorSystemTest, FindByName) {
  ActorSystem system;
  auto counter = system.Spawn<Counter>("findme");
  EXPECT_EQ(system.Find("findme").get(), counter.get());
  EXPECT_EQ(system.Find("nope"), nullptr);
}

TEST(ActorSystemTest, ShutdownStopsEverything) {
  ActorSystem system;
  system.Spawn<Counter>("a");
  system.Spawn<Counter>("b");
  system.Shutdown();
  EXPECT_EQ(system.live_actor_count(), 0u);
}

TEST(GcsTest, RestartTracking) {
  Gcs gcs;
  gcs.RegisterActor("x", 1);
  EXPECT_TRUE(gcs.IsAlive("x"));
  gcs.MarkDead("x");
  EXPECT_FALSE(gcs.IsAlive("x"));
  gcs.MarkRestarted("x");
  EXPECT_TRUE(gcs.IsAlive("x"));
  EXPECT_EQ(gcs.GetRecord("x")->restarts, 1);
}

TEST(GcsTest, HeartbeatsIdentifyStaleActors) {
  Gcs gcs;
  gcs.RegisterActor("fresh", 1);
  gcs.RegisterActor("stale", 2);
  gcs.Heartbeat("fresh", 1000);
  gcs.Heartbeat("stale", 100);
  auto stale = gcs.StaleActors(/*now_ms=*/1100, /*timeout_ms=*/500);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "stale");
}

TEST(GcsTest, StateBlobsRoundTrip) {
  Gcs gcs;
  gcs.PutState("k", "v1");
  EXPECT_EQ(gcs.GetState("k").value(), "v1");
  gcs.PutState("k", "v2");
  EXPECT_EQ(gcs.GetState("k").value(), "v2");
  EXPECT_EQ(gcs.state_count(), 1u);
  gcs.DeleteState("k");
  EXPECT_FALSE(gcs.GetState("k").has_value());
}

TEST(GcsTest, UnknownActorIsNotAlive) {
  Gcs gcs;
  EXPECT_FALSE(gcs.IsAlive("ghost"));
  EXPECT_FALSE(gcs.GetRecord("ghost").has_value());
}

}  // namespace
}  // namespace msd
