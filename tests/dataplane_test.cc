// Zero-copy data plane: golden equivalence against the scalar reference
// assembly, aliasing/copy-budget guarantees (tokens AND pixels), arena
// on/off byte-identity, and PopSamples regressions.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <unordered_map>
#include <vector>

#include "src/api/session.h"
#include "src/constructor/reference_assembly.h"
#include "src/data/synthetic.h"
#include "src/loader/source_loader.h"
#include "src/mesh/selective_broadcast.h"
#include "tests/batch_identity.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

// A small two-source corpus materialized into the object store, with one
// loader per source and a hand-rolled plan spreading samples over every
// (bucket, microbatch) bin of the mesh.
class DataPlaneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorpusSpec corpus = MakeCoyo700m();
    specs_ = {corpus.sources[0], corpus.sources[1]};
    for (SourceSpec& spec : specs_) {
      spec.num_files = 1;
      spec.rows_per_file = 24;
      ASSERT_TRUE(WriteSourceFiles(store_, spec, /*seed=*/11,
                                   {.target_row_group_bytes = 256 * kKiB})
                      .ok());
    }
  }

  std::unique_ptr<SourceLoader> MakeLoader(size_t source_index, bool arena_decode = true) {
    SourceLoaderConfig config;
    config.loader_id = static_cast<int32_t>(source_index);
    config.spec = specs_[source_index];
    config.files = {SourceFileName(specs_[source_index], 0)};
    config.num_workers = 1;
    config.buffer_low_watermark = 48;  // keep the whole file buffered
    config.arena_decode = arena_decode;
    config.name_override = std::string(arena_decode ? "arena/" : "legacy/") +
                           config.spec.name + "#" + std::to_string(config.loader_id);
    auto loader = std::make_unique<SourceLoader>(config, &store_, &memory_);
    EXPECT_TRUE(loader->Open().ok());
    return loader;
  }

  // Round-robins every buffered sample of every loader over the plan's
  // (bucket, microbatch) bins.
  LoadingPlan MakePlan(const std::vector<SourceLoader*>& loaders, int32_t num_buckets,
                       int32_t num_microbatches) {
    LoadingPlan plan;
    plan.step = 0;
    plan.axis = Axis::kDP;
    plan.num_buckets = num_buckets;
    plan.num_microbatches = num_microbatches;
    int32_t i = 0;
    for (SourceLoader* loader : loaders) {
      for (const SampleMeta& meta : loader->SummaryBuffer().samples) {
        SliceAssignment a;
        a.sample_id = meta.sample_id;
        a.source_id = meta.source_id;
        a.loader_id = loader->config().loader_id;
        a.bucket = i % num_buckets;
        a.microbatch = (i / num_buckets) % num_microbatches;
        a.total_tokens = meta.TotalTokens();
        a.image_tokens = meta.image_tokens;
        a.cost = a.total_tokens;
        plan.assignments.push_back(a);
        ++i;
      }
    }
    std::stable_sort(plan.assignments.begin(), plan.assignments.end(),
                     [](const SliceAssignment& x, const SliceAssignment& y) {
                       return std::make_pair(x.bucket, x.microbatch) <
                              std::make_pair(y.bucket, y.microbatch);
                     });
    return plan;
  }

  // Pops the samples one constructor's owned buckets need, one slice per
  // loader (what the prefetch pipeline's producer does per step).
  std::vector<SampleSlice> PopFor(const LoadingPlan& plan,
                                  const std::vector<int32_t>& owned,
                                  const std::vector<SourceLoader*>& loaders) {
    std::vector<SampleSlice> slices;
    for (SourceLoader* loader : loaders) {
      std::vector<uint64_t> ids;
      for (const SliceAssignment& a : plan.assignments) {
        bool mine = std::find(owned.begin(), owned.end(), a.bucket) != owned.end();
        if (mine && a.loader_id == loader->config().loader_id) {
          ids.push_back(a.sample_id);
        }
      }
      if (ids.empty()) {
        continue;
      }
      Result<SampleSlice> slice = loader->PopSamples(plan.step, ids);
      EXPECT_TRUE(slice.ok()) << slice.status().ToString();
      slices.push_back(std::move(slice.value()));
    }
    return slices;
  }

  std::vector<SourceSpec> specs_;
  MemoryAccountant memory_;
  ObjectStore store_{&memory_};
};

using testing::ExpectBatchesIdentical;

TEST_F(DataPlaneTest, GoldenEquivalenceOnCpPpMesh) {
  ParallelismSpec spec{.dp = 2, .pp = 2, .cp = 2, .tp = 1};
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, 2);
  auto l0 = MakeLoader(0);
  auto l1 = MakeLoader(1);
  std::vector<SourceLoader*> loaders = {l0.get(), l1.get()};
  LoadingPlan plan = MakePlan(loaders, tree.NumBuckets(Axis::kDP), 2);

  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    DataConstructorConfig config;
    config.constructor_id = dp;
    config.max_seq_len = 512;
    DataConstructor dc(config, &tree, &memory_);
    ReferenceDataPlane reference(config, &tree);

    std::vector<SampleSlice> slices = PopFor(plan, dc.OwnedBuckets(plan), loaders);
    ASSERT_FALSE(slices.empty());
    // The reference plane deep-copies out of the shared slices, so both
    // planes can consume the same pop.
    ASSERT_TRUE(reference.BuildStep(plan, slices).ok());

    ResetSampleCopyCount();
    ASSERT_TRUE(dc.BuildStep(plan, std::move(slices)).ok());

    for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
      if (CoordOfRank(spec, rank).dp != dp) {
        continue;
      }
      Result<RankBatch> got = dc.GetBatch(rank, 0);
      Result<RankBatch> want = reference.GetBatch(rank, 0);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(want.ok());
      ExpectBatchesIdentical(got.value(), want.value());
    }
    // The zero-copy plane never copied a Sample between pop and get-batch.
    EXPECT_EQ(SampleCopyCount(), 0);
  }
}

TEST_F(DataPlaneTest, TpReplicasAliasOneBuffer) {
  ParallelismSpec spec{.dp = 1, .pp = 1, .cp = 1, .tp = 2};
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, 2);
  auto loader = MakeLoader(0);
  std::vector<SourceLoader*> loaders = {loader.get()};
  LoadingPlan plan = MakePlan(loaders, tree.NumBuckets(Axis::kDP), 2);

  DataConstructor dc({}, &tree, &memory_);
  ASSERT_TRUE(dc.BuildStep(plan, PopFor(plan, dc.OwnedBuckets(plan), loaders)).ok());
  RankBatch tp0 = dc.GetBatch(0, 0).value();
  RankBatch tp1 = dc.GetBatch(1, 0).value();
  ASSERT_FALSE(tp0.microbatches.empty());
  ASSERT_FALSE(tp0.microbatches[0].sequences.empty());
  const PackedSequence& s0 = tp0.microbatches[0].sequences[0];
  const PackedSequence& s1 = tp1.microbatches[0].sequences[0];
  EXPECT_EQ(s0.tokens, s1.tokens);
  // Not merely equal content: the replicas share the frozen step buffer.
  EXPECT_TRUE(s0.tokens.AliasesStorageOf(s1.tokens));
  EXPECT_TRUE(s0.position_ids.AliasesStorageOf(s1.position_ids));
}

TEST_F(DataPlaneTest, RepeatFetchesShareZigZagSlices) {
  ParallelismSpec spec{.dp = 1, .pp = 1, .cp = 2, .tp = 1};
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, 2);
  auto loader = MakeLoader(0);
  std::vector<SourceLoader*> loaders = {loader.get()};
  LoadingPlan plan = MakePlan(loaders, tree.NumBuckets(Axis::kDP), 2);

  DataConstructor dc({}, &tree, &memory_);
  ASSERT_TRUE(dc.BuildStep(plan, PopFor(plan, dc.OwnedBuckets(plan), loaders)).ok());
  // Zig-zag CP slices are materialized once per coordinate; a re-fetch for
  // the same rank aliases the cached slice instead of re-copying.
  RankBatch first = dc.GetBatch(0, 0).value();
  RankBatch again = dc.GetBatch(0, 0).value();
  const PackedSequence& a = first.microbatches[0].sequences[0];
  const PackedSequence& b = again.microbatches[0].sequences[0];
  EXPECT_TRUE(a.tokens.AliasesStorageOf(b.tokens));
}

TEST_F(DataPlaneTest, PopPreservesBufferOrder) {
  auto loader = MakeLoader(0);
  std::vector<SampleMeta> before = loader->SummaryBuffer().samples;
  ASSERT_GE(before.size(), 8u);
  // Pop a scattered subset, requested in REVERSE buffer order.
  std::vector<uint64_t> ids = {before[6].sample_id, before[3].sample_id,
                               before[0].sample_id};
  Result<SampleSlice> slice = loader->PopSamples(0, ids);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->samples.size(), 3u);
  // Popped samples come out in buffer order, not request order.
  EXPECT_EQ(slice->samples[0]->meta.sample_id, before[0].sample_id);
  EXPECT_EQ(slice->samples[1]->meta.sample_id, before[3].sample_id);
  EXPECT_EQ(slice->samples[2]->meta.sample_id, before[6].sample_id);
  // Remaining samples keep their relative order.
  std::vector<uint64_t> expected;
  for (const SampleMeta& m : before) {
    if (m.sample_id != ids[0] && m.sample_id != ids[1] && m.sample_id != ids[2]) {
      expected.push_back(m.sample_id);
    }
  }
  std::vector<SampleMeta> after = loader->SummaryBuffer().samples;
  ASSERT_GE(after.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(after[i].sample_id, expected[i]);
  }
}

TEST_F(DataPlaneTest, PopDuplicateIdsRejectedAndBufferIntact) {
  auto loader = MakeLoader(0);
  size_t buffered = loader->buffered_samples();
  uint64_t id = loader->SummaryBuffer().samples[0].sample_id;
  EXPECT_EQ(loader->PopSamples(0, {id, id}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(loader->buffered_samples(), buffered);  // nothing was consumed
}

TEST_F(DataPlaneTest, SnapshotRestoreAfterPartialConsumption) {
  auto loader = MakeLoader(0);
  std::vector<SampleMeta> initial = loader->SummaryBuffer().samples;
  // Partial consumption: a strict subset, out of buffer order.
  ASSERT_TRUE(loader
                  ->PopSamples(0, {initial[5].sample_id, initial[1].sample_id,
                                   initial[2].sample_id})
                  .ok());
  LoaderSnapshot snap = loader->Snapshot();
  EXPECT_EQ(snap.consumed_ids.size(), 3u);
  std::vector<SampleMeta> at_snapshot = loader->SummaryBuffer().samples;

  // More consumption after the snapshot must not leak into the restore.
  ASSERT_TRUE(loader->PopSamples(1, {at_snapshot[0].sample_id}).ok());

  auto restored = MakeLoader(0);
  ASSERT_TRUE(restored->Restore(snap).ok());
  std::vector<SampleMeta> after = restored->SummaryBuffer().samples;
  ASSERT_GE(after.size(), at_snapshot.size());
  for (size_t i = 0; i < at_snapshot.size(); ++i) {
    EXPECT_EQ(after[i].sample_id, at_snapshot[i].sample_id);
  }
  // Deterministic-refill dedup: consumed ids never reappear.
  for (const SampleMeta& m : after) {
    EXPECT_NE(m.sample_id, initial[5].sample_id);
    EXPECT_NE(m.sample_id, initial[1].sample_id);
    EXPECT_NE(m.sample_id, initial[2].sample_id);
  }
}

// ---- Multimodal pixel path ------------------------------------------------
// The corpus above is coyo700m-like (image-text sources), so the golden
// equivalence suite already exercises pixels; these tests pin the aliasing
// and allocator guarantees of the payload plane specifically.

// Finds the first sequence with a non-empty pixel segment in a batch.
const PixelView* FirstPixelSegment(const RankBatch& batch) {
  for (const Microbatch& mb : batch.microbatches) {
    for (const PackedSequence& seq : mb.sequences) {
      for (const PixelView& v : seq.pixel_segments) {
        if (!v.empty()) {
          return &v;
        }
      }
    }
  }
  return nullptr;
}

TEST_F(DataPlaneTest, PixelViewsAliasOneBufferAcrossTpCpAndRefetch) {
  ParallelismSpec spec{.dp = 1, .pp = 1, .cp = 2, .tp = 2};
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, 2);
  auto loader = MakeLoader(0);
  std::vector<SourceLoader*> loaders = {loader.get()};
  LoadingPlan plan = MakePlan(loaders, tree.NumBuckets(Axis::kDP), 2);

  DataConstructor dc({}, &tree, &memory_);
  std::vector<SampleSlice> slices = PopFor(plan, dc.OwnedBuckets(plan), loaders);
  // Retain the loaders' sample payloads so we can prove end-to-end aliasing:
  // the views served in rank batches must be windows of the very buffers the
  // loader's decode froze (no re-materialization anywhere between).
  std::unordered_map<uint64_t, std::shared_ptr<Sample>> by_id;
  for (const SampleSlice& slice : slices) {
    for (const std::shared_ptr<Sample>& s : slice.samples) {
      by_id.emplace(s->meta.sample_id, s);
    }
  }
  ASSERT_TRUE(dc.BuildStep(plan, std::move(slices)).ok());

  RankBatch cp0tp0 = dc.GetBatch(0, 0).value();  // cp=0 tp=0
  RankBatch cp0tp1 = dc.GetBatch(1, 0).value();  // cp=0 tp=1
  RankBatch cp1tp0 = dc.GetBatch(2, 0).value();  // cp=1 tp=0
  RankBatch again = dc.GetBatch(0, 0).value();

  const PixelView* px = FirstPixelSegment(cp0tp0);
  ASSERT_NE(px, nullptr) << "image corpus must yield pixel payloads";
  // Locate the matching segment on the other ranks (same microbatch order).
  const PixelView* px_tp1 = FirstPixelSegment(cp0tp1);
  const PixelView* px_cp1 = FirstPixelSegment(cp1tp0);
  const PixelView* px_again = FirstPixelSegment(again);
  ASSERT_NE(px_tp1, nullptr);
  ASSERT_NE(px_cp1, nullptr);
  ASSERT_NE(px_again, nullptr);
  // One frozen buffer serves every coordinate: TP replicas, both CP
  // coordinates (pixels ride whole; CP slices the token stream), refetches.
  EXPECT_TRUE(px->AliasesStorageOf(*px_tp1));
  EXPECT_TRUE(px->AliasesStorageOf(*px_cp1));
  EXPECT_TRUE(px->AliasesStorageOf(*px_again));

  // And that buffer IS the loader's decode output, not a constructor copy.
  bool aliases_loader_buffer = false;
  for (const auto& [id, sample] : by_id) {
    if (!sample->pixels.empty() && px->AliasesStorageOf(sample->pixels)) {
      aliases_loader_buffer = true;
      break;
    }
  }
  EXPECT_TRUE(aliases_loader_buffer)
      << "served pixel views must alias the loader-frozen buffers";
}

TEST_F(DataPlaneTest, ArenaOnOffByteIdenticalIncludingPixels) {
  ParallelismSpec spec{.dp = 1, .pp = 1, .cp = 2, .tp = 1};
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, 2);
  auto arena_loader = MakeLoader(0, /*arena_decode=*/true);
  auto legacy_loader = MakeLoader(0, /*arena_decode=*/false);
  std::vector<SourceLoader*> arena_loaders = {arena_loader.get()};
  std::vector<SourceLoader*> legacy_loaders = {legacy_loader.get()};
  LoadingPlan plan = MakePlan(arena_loaders, tree.NumBuckets(Axis::kDP), 2);

  DataConstructor on({}, &tree, &memory_);
  DataConstructor off({}, &tree, &memory_);
  ASSERT_TRUE(on.BuildStep(plan, PopFor(plan, on.OwnedBuckets(plan), arena_loaders)).ok());
  ASSERT_TRUE(off.BuildStep(plan, PopFor(plan, off.OwnedBuckets(plan), legacy_loaders)).ok());
  for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
    RankBatch got = on.GetBatch(rank, 0).value();
    RankBatch want = off.GetBatch(rank, 0).value();
    ExpectBatchesIdentical(got, want);
  }
}

TEST_F(DataPlaneTest, ArenaDecodeSharesSlabStorageAcrossRows) {
  // Text rows are small enough that one MSDF row group holds many of them;
  // with one worker shard every row of a group must then alias ONE frozen
  // token slab (the whole point of the arena: O(1) buffers per group).
  CorpusSpec text = MakeTextCorpus(13, 1);
  SourceSpec spec = text.sources[0];
  spec.num_files = 1;
  spec.rows_per_file = 16;
  ASSERT_TRUE(
      WriteSourceFiles(store_, spec, /*seed=*/11, {.target_row_group_bytes = 256 * kKiB}).ok());
  SourceLoaderConfig config;
  config.loader_id = 77;
  config.spec = spec;
  config.files = {SourceFileName(spec, 0)};
  config.num_workers = 1;
  config.buffer_low_watermark = 32;
  auto loader = std::make_unique<SourceLoader>(config, &store_, &memory_);
  ASSERT_TRUE(loader->Open().ok());

  std::vector<uint64_t> ids;
  for (const SampleMeta& meta : loader->SummaryBuffer().samples) {
    ids.push_back(meta.sample_id);
  }
  ASSERT_GE(ids.size(), 8u);
  Result<SampleSlice> slice = loader->PopSamples(0, ids);
  ASSERT_TRUE(slice.ok());
  const std::vector<std::shared_ptr<Sample>>& samples = slice->samples;
  size_t sharing = 0;
  for (size_t i = 1; i < samples.size(); ++i) {
    if (samples[i]->tokens.AliasesStorageOf(samples[0]->tokens)) {
      ++sharing;
    }
  }
  // All 16 rows fit one group at this row size; everything shares the slab.
  EXPECT_GE(sharing, samples.size() / 2)
      << "arena decode must carve per-row views out of shared group slabs";
}

// Session-level: the multimodal stream (tokens + pixels) survives a durable
// checkpoint and a fresh-process resume byte-identically.
TEST(DataPlanePixelResumeTest, PixelStreamSurvivesCheckpointResume) {
  std::string dir = testing::ScratchDir("pixel_resume");
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 1, .pp = 1, .cp = 2, .tp = 2};
  options.num_microbatches = 2;
  options.samples_per_step = 8;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 64;
  options.loader_workers = 1;
  options.prefetch_depth = 2;

  auto StreamStep = [](Session& session) {
    const int32_t world = session.tree().spec().WorldSize();
    std::vector<RankBatch> batches(static_cast<size_t>(world));
    for (int32_t rank = 0; rank < world; ++rank) {
      Result<RankBatch> batch = session.client(rank).value()->NextBatch();
      EXPECT_TRUE(batch.ok()) << batch.status().ToString();
      batches[static_cast<size_t>(rank)] = std::move(batch.value());
    }
    return batches;
  };

  {
    auto session = Session::Create(options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (int s = 0; s < 3; ++s) {
      StreamStep(**session);
    }
    ASSERT_TRUE((*session)->Checkpoint(dir).ok());
  }  // process "dies"

  // Uninterrupted reference run: skip the pre-checkpoint steps.
  auto reference = Session::Create(options);
  ASSERT_TRUE(reference.ok());
  for (int s = 0; s < 3; ++s) {
    StreamStep(**reference);
  }

  Session::Options resumed_options = options;
  resumed_options.resume_dir = dir;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  int64_t pixels_seen = 0;
  for (int s = 0; s < 2; ++s) {
    std::vector<RankBatch> got = StreamStep(**resumed);
    std::vector<RankBatch> want = StreamStep(**reference);
    ASSERT_EQ(got.size(), want.size());
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
      for (const Microbatch& mb : got[rank].microbatches) {
        for (const PackedSequence& seq : mb.sequences) {
          pixels_seen += seq.PixelCount();
        }
      }
    }
  }
  EXPECT_GT(pixels_seen, 0) << "the image corpus must stream pixel payloads";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(StageShippedBytesTest, CountsTargetsPerStage) {
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh({.dp = 1, .pp = 1, .cp = 2, .tp = 2});
  BroadcastPlan plan = MakeSelectiveBroadcastPlan(tree, {Axis::kCP, Axis::kTP});
  // 1 fetching rank; stage CP re-broadcasts to 1, stage TP to 2.
  EXPECT_EQ(SynchronizedClients(plan), 1u);
  EXPECT_EQ(StageShippedBytes(plan, 100), (std::vector<int64_t>{100, 200}));
  EXPECT_EQ(TotalShippedBytes(plan, 100), 400);
}

}  // namespace
}  // namespace msd
