#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"
#include "src/plan/balance.h"

namespace msd {
namespace {

std::vector<double> RandomCosts(size_t n, double skew_sigma, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> costs(n);
  for (double& c : costs) {
    c = rng.LogNormal(0.0, skew_sigma);
  }
  return costs;
}

TEST(BalanceMethodTest, NamesRoundTripThroughParser) {
  for (BalanceMethod m : {BalanceMethod::kGreedy, BalanceMethod::kKarmarkarKarp,
                          BalanceMethod::kInterleave, BalanceMethod::kZigZag,
                          BalanceMethod::kVShape}) {
    Result<BalanceMethod> parsed = ParseBalanceMethod(BalanceMethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), m);
  }
  EXPECT_FALSE(ParseBalanceMethod("nonsense").ok());
  EXPECT_EQ(ParseBalanceMethod("kk").value(), BalanceMethod::kKarmarkarKarp);
}

TEST(BalanceTest, AssignmentCoversAllItemsAllMethods) {
  std::vector<double> costs = RandomCosts(200, 1.0, 1);
  for (BalanceMethod m : {BalanceMethod::kGreedy, BalanceMethod::kKarmarkarKarp,
                          BalanceMethod::kInterleave, BalanceMethod::kZigZag,
                          BalanceMethod::kVShape}) {
    auto assignment = AssignToBins(costs, 8, m);
    ASSERT_EQ(assignment.size(), costs.size());
    for (int32_t bin : assignment) {
      EXPECT_GE(bin, 0);
      EXPECT_LT(bin, 8);
    }
    auto loads = BinLoads(costs, assignment, 8);
    double total = std::accumulate(loads.begin(), loads.end(), 0.0);
    double expected = std::accumulate(costs.begin(), costs.end(), 0.0);
    EXPECT_NEAR(total, expected, 1e-9);  // mass conservation
  }
}

TEST(BalanceTest, SingleBinTakesEverything) {
  std::vector<double> costs = {1.0, 2.0, 3.0};
  for (BalanceMethod m : {BalanceMethod::kGreedy, BalanceMethod::kKarmarkarKarp,
                          BalanceMethod::kInterleave}) {
    auto assignment = AssignToBins(costs, 1, m);
    for (int32_t bin : assignment) {
      EXPECT_EQ(bin, 0);
    }
  }
}

TEST(BalanceTest, EmptyInputYieldsEmptyAssignment) {
  EXPECT_TRUE(AssignToBins({}, 4, BalanceMethod::kGreedy).empty());
  EXPECT_TRUE(AssignToBins({}, 4, BalanceMethod::kKarmarkarKarp).empty());
}

TEST(BalanceTest, GreedyBeatsRoundRobinOnSkewedCosts) {
  std::vector<double> costs = RandomCosts(128, 1.5, 3);
  auto greedy = AssignToBins(costs, 8, BalanceMethod::kGreedy);
  // Unsorted round-robin strawman.
  std::vector<int32_t> round_robin(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    round_robin[i] = static_cast<int32_t>(i % 8);
  }
  EXPECT_LT(Imbalance(BinLoads(costs, greedy, 8)),
            Imbalance(BinLoads(costs, round_robin, 8)));
}

TEST(BalanceTest, KarmarkarKarpCompetitiveWithGreedy) {
  // KK should be at least roughly as good as greedy on most inputs.
  int kk_wins_or_ties = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    std::vector<double> costs = RandomCosts(64, 1.2, seed);
    double g = Imbalance(BinLoads(costs, AssignToBins(costs, 4, BalanceMethod::kGreedy), 4));
    double k = Imbalance(
        BinLoads(costs, AssignToBins(costs, 4, BalanceMethod::kKarmarkarKarp), 4));
    if (k <= g * 1.05) {
      ++kk_wins_or_ties;
    }
  }
  EXPECT_GE(kk_wins_or_ties, 15);
}

TEST(BalanceTest, KarmarkarKarpTwoWayClassic) {
  // The classic LDM walkthrough set {8,7,6,5,4}: repeated differencing leaves
  // a final difference of 2 (the optimum is 0 — KK is a heuristic, and 2 is
  // the canonical textbook result for this instance).
  std::vector<double> costs = {8, 7, 6, 5, 4};
  auto assignment = AssignToBins(costs, 2, BalanceMethod::kKarmarkarKarp);
  auto loads = BinLoads(costs, assignment, 2);
  EXPECT_DOUBLE_EQ(std::abs(loads[0] - loads[1]), 2.0);
}

TEST(BalanceTest, InterleaveSpreadsSortedCosts) {
  // With n*k identical-count bins, serpentine gives near-equal loads for a
  // linear cost ramp.
  std::vector<double> costs(32);
  std::iota(costs.begin(), costs.end(), 1.0);
  auto loads = BinLoads(costs, AssignToBins(costs, 4, BalanceMethod::kInterleave), 4);
  EXPECT_LT(Imbalance(loads), 1.05);
}

TEST(BalanceTest, VShapePairsHeavyAndLight) {
  std::vector<double> costs(16);
  std::iota(costs.begin(), costs.end(), 1.0);
  auto loads = BinLoads(costs, AssignToBins(costs, 4, BalanceMethod::kVShape), 4);
  EXPECT_LT(Imbalance(loads), 1.30);
}

TEST(BalanceTest, ZigZagIsStrictRoundRobinBySortedCost) {
  std::vector<double> costs = {10, 1, 8, 3};
  auto assignment = AssignToBins(costs, 2, BalanceMethod::kZigZag);
  // Sorted desc: 10, 8, 3, 1 -> bins 0, 1, 0, 1.
  EXPECT_EQ(assignment[0], 0);  // cost 10
  EXPECT_EQ(assignment[2], 1);  // cost 8
  EXPECT_EQ(assignment[3], 0);  // cost 3
  EXPECT_EQ(assignment[1], 1);  // cost 1
}

TEST(ImbalanceMetricsTest, PerfectBalanceIsOne) {
  EXPECT_DOUBLE_EQ(Imbalance({5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(MaxMinRatio({5.0, 5.0}), 1.0);
}

TEST(ImbalanceMetricsTest, RatiosComputed) {
  EXPECT_DOUBLE_EQ(Imbalance({9.0, 3.0}), 1.5);       // 9 / 6
  EXPECT_DOUBLE_EQ(MaxMinRatio({9.0, 3.0}), 3.0);
  EXPECT_TRUE(std::isinf(MaxMinRatio({1.0, 0.0})));
  EXPECT_DOUBLE_EQ(MaxMinRatio({0.0, 0.0}), 1.0);
}

// Property sweep: greedy imbalance stays small when items are plentiful
// relative to bins, across skews and bin counts.
struct SweepParam {
  size_t items;
  int32_t bins;
  double sigma;
};

class GreedySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GreedySweepTest, ImbalanceBounded) {
  SweepParam p = GetParam();
  std::vector<double> costs = RandomCosts(p.items, p.sigma, 99);
  auto loads = BinLoads(costs, AssignToBins(costs, p.bins, BalanceMethod::kGreedy), p.bins);
  // LPT guarantee: makespan <= (4/3 - 1/(3k)) * OPT, and OPT >= max(mean
  // load, heaviest single item) — the heavy-tail case is governed by the
  // largest item, not the mean.
  double mean = std::accumulate(costs.begin(), costs.end(), 0.0) / p.bins;
  double heaviest = *std::max_element(costs.begin(), costs.end());
  double opt_lower_bound = std::max(mean, heaviest);
  double max_load = *std::max_element(loads.begin(), loads.end());
  EXPECT_LE(max_load, (4.0 / 3.0) * opt_lower_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedySweepTest,
    ::testing::Values(SweepParam{64, 4, 0.5}, SweepParam{64, 4, 2.0},
                      SweepParam{256, 8, 1.0}, SweepParam{256, 16, 1.5},
                      SweepParam{1024, 32, 1.0}, SweepParam{1024, 8, 3.0}));

}  // namespace
}  // namespace msd
