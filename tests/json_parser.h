// Shared test helper: a minimal JSON parser — enough to VALIDATE renderer
// output (metrics/trace/bundle JSON) instead of grepping for substrings.
// Supports the full value grammar; \uXXXX escapes are consumed but collapsed
// (none of our emitters produce them).
#ifndef TESTS_JSON_PARSER_H_
#define TESTS_JSON_PARSER_H_

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace msd {
namespace testing {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it != object.end() ? &it->second : nullptr;
  }
  double Number(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == kNumber ? v->number : -1.0e300;
  }
  std::string String(const std::string& key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == kString ? v->string : "";
  }
};

class JsonParser {
 public:
  static bool Parse(const std::string& text, JsonValue* out) {
    JsonParser p(text);
    if (!p.ParseValue(out)) {
      return false;
    }
    p.SkipWs();
    return p.pos_ == text.size();  // no trailing garbage
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      return false;
    }
    pos_ += static_cast<size_t>(end - start);
    out->kind = JsonValue::kNumber;
    out->number = v;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
          out->push_back('?');
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->array.push_back(std::move(v));
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) {
        return false;
      }
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(v));
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testing
}  // namespace msd

#endif  // TESTS_JSON_PARSER_H_
