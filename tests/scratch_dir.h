// Shared test helper: fresh per-call scratch directories under the system
// temp root, unique across processes (pid) and within one (counter).
#ifndef TESTS_SCRATCH_DIR_H_
#define TESTS_SCRATCH_DIR_H_

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

namespace msd {
namespace testing {

inline std::string ScratchDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("msd_" + tag + "_" + std::to_string(::getpid()) + "_" +
                      std::to_string(counter.fetch_add(1))))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace testing
}  // namespace msd

#endif  // TESTS_SCRATCH_DIR_H_
