#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/mpmc_queue.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"

namespace msd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such file");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such file");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(stat.mean(), 5.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(RngTest, LogNormalPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.4);
  EXPECT_NEAR(static_cast<double>(counts[3]) / counts[0], 6.0, 0.8);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.Zipf(10, 1.2)];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(CategoricalTableTest, MatchesDirectSampling) {
  std::vector<double> weights = {2.0, 1.0, 1.0};
  CategoricalTable table(weights);
  Rng rng(23);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 12000; ++i) {
    ++counts[table.Sample(rng)];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / 12000.0, 0.5, 0.03);
}

TEST(CategoricalTableTest, ResetChangesDistribution) {
  CategoricalTable table({1.0, 0.0});
  Rng rng(29);
  table.Reset({0.0, 1.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Sample(rng), 1u);
  }
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat stat;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    stat.Add(v);
  }
  EXPECT_EQ(stat.count(), 4);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stat.min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max(), 4.0);
  EXPECT_NEAR(stat.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.sum(), 10.0);
}

TEST(RunningStatTest, EmptyIsSafe) {
  RunningStat stat;
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(Pow2HistogramTest, BucketBoundaries) {
  Pow2Histogram h(16, 128);  // buckets: 16, 32, 64, 128
  ASSERT_EQ(h.bounds().size(), 4u);
  h.Add(16);   // first bucket
  h.Add(17);   // second
  h.Add(128);  // last
  h.Add(999);  // clamped to last
  auto cf = h.CountFractions();
  EXPECT_DOUBLE_EQ(cf[0], 0.25);
  EXPECT_DOUBLE_EQ(cf[1], 0.25);
  EXPECT_DOUBLE_EQ(cf[3], 0.5);
}

TEST(Pow2HistogramTest, WeightFractionsUseWeights) {
  Pow2Histogram h(16, 64);
  h.Add(10, 1.0);
  h.Add(60, 9.0);
  auto wf = h.WeightFractions();
  EXPECT_DOUBLE_EQ(wf[0], 0.1);
  EXPECT_DOUBLE_EQ(wf[2], 0.9);
}

TEST(EmpiricalCdfTest, QuantilesInterpolate) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100.0);
  EXPECT_NEAR(cdf.Quantile(0.5), 50.5, 0.01);
}

TEST(EmpiricalCdfTest, CurveIsMonotonic) {
  EmpiricalCdf cdf;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    cdf.Add(rng.NextDouble());
  }
  auto curve = cdf.Curve(11);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LT(curve[i - 1].second, curve[i].second);
  }
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kGiB), "3.00 GiB");
  EXPECT_EQ(FormatBytes(2 * kTiB), "2.00 TiB");
}

TEST(UnitsTest, FormatSimTime) {
  EXPECT_EQ(FormatSimTime(500), "500 us");
  EXPECT_EQ(FormatSimTime(2 * kMillisecond), "2.0 ms");
  EXPECT_EQ(FormatSimTime(3 * kSecond), "3.00 s");
}

TEST(UnitsTest, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(ToSeconds(FromSeconds(1.5)), 1.5);
}

TEST(MpmcQueueTest, FifoOrder) {
  MpmcQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(MpmcQueueTest, TryPushRespectsCapacity) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(MpmcQueueTest, CloseDrainsThenFails) {
  MpmcQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_EQ(q.Pop().value(), 7);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, ConcurrentProducersConsumers) {
  MpmcQueue<int> q(64);
  constexpr int kPerProducer = 1000;
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) {
        q.Push(i);
      }
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&q, &sum] {
      while (auto v = q.Pop()) {
        sum += *v;
      }
    });
  }
  for (int p = 0; p < 4; ++p) {
    threads[static_cast<size_t>(p)].join();
  }
  q.Close();
  for (size_t c = 4; c < threads.size(); ++c) {
    threads[c].join();
  }
  EXPECT_EQ(sum.load(), 4LL * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) {
    f.wait();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {}).wait();
  pool.Shutdown();
  pool.Shutdown();
}

TEST(FormatRowTest, JoinsWithPipes) {
  EXPECT_EQ(FormatRow({1.0, 2.5}, 1), "1.0 | 2.5");
}

}  // namespace
}  // namespace msd
