// The telemetry plane (src/telemetry/) end to end:
//  - MetricsRegistry: instrument identity (one counter per name+tenant),
//    histogram bucketing, collector add/remove, and the Prometheus/JSON
//    renderers (validated with a real JSON parse, not substring luck);
//  - StepTracer: bounded ring semantics (oldest dropped, snapshot oldest
//    first), ScopedSpan null-tracer tolerance, and Chrome trace-event output
//    that actually parses, with per-tenant pid attribution and process_name
//    metadata;
//  - logging satellites: SetLogSink capture and MSD_LOG_WARN_EVERY_N
//    rate-limiting (1st, n+1th, 2n+1th ... emit);
//  - Session integration: an owned session exports cache/scheduler/pipeline
//    series and step/io spans, telemetry-off streams byte-identically with no
//    registry at all;
//  - DataService: MetricsSnapshot() is a consistent cut under concurrent
//    multi-tenant streaming (slices sum to aggregates EXACTLY, invariants
//    hold per slice), equals tenant_stats() once quiescent, the periodic
//    scrape hook delivers and stops, and a faulty tenant's retries show up in
//    the dumped trace attributed to that tenant's pid — and nobody else's.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/common/logging.h"
#include "src/service/data_service.h"
#include "src/service/shared_plane.h"
#include "src/telemetry/bridge.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "tests/batch_identity.h"
#include "tests/json_parser.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

namespace fs = std::filesystem;
using testing::ExpectBatchesIdentical;
using testing::ScratchDir;

using testing::JsonParser;
using testing::JsonValue;

// ---------------------------------------------------------------------------
// Shared fixtures: same session/plane shapes as tests/service_test.cc.
// ---------------------------------------------------------------------------

Session::Options TenantSessionOptions(CorpusSpec corpus) {
  Session::Options options;
  options.corpus = std::move(corpus);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;  // several groups per file
  return options;
}

SharedIoPlaneConfig TestPlaneConfig() {
  SharedIoPlaneConfig config;
  config.cache_bytes = 64 * kMiB;
  config.storage_get_latency = 200;  // 0.2 ms: remote, but test-fast
  return config;
}

std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

// Thread-safe streaming body: no gtest assertions off the main thread.
bool StreamStepsQuietly(Session* session, int64_t steps) {
  const int32_t world = session->tree().spec().WorldSize();
  for (int64_t s = 0; s < steps; ++s) {
    for (int32_t rank = 0; rank < world; ++rank) {
      Result<RankBatch> batch = session->client(rank).value()->NextBatch();
      if (!batch.ok()) {
        return false;
      }
    }
  }
  return true;
}

const MetricPoint* FindPoint(const TelemetrySnapshot& snap, const std::string& name,
                             IoTenantId tenant) {
  for (const MetricPoint& p : snap.points) {
    if (p.name == name && p.tenant == tenant) {
      return &p;
    }
  }
  return nullptr;
}

// Sum of a counter series over every tenant-labelled point (the aggregate,
// kMetricNoTenant, excluded).
double SumTenantPoints(const TelemetrySnapshot& snap, const std::string& name) {
  double sum = 0.0;
  for (const MetricPoint& p : snap.points) {
    if (p.name == name && p.tenant != kMetricNoTenant) {
      sum += p.value;
    }
  }
  return sum;
}

// ---------------------------------------------------------------------------
// MetricsRegistry: instruments, collectors, renderers.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsAreSharedByNameAndTenant) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("msd_test_total");
  Counter* b = registry.GetCounter("msd_test_total");
  EXPECT_EQ(a, b) << "same name+tenant must return the same instrument";
  Counter* t3 = registry.GetCounter("msd_test_total", 3);
  EXPECT_NE(a, t3) << "a tenant label is a distinct series";
  a->Increment(5);
  a->Increment();
  t3->Increment(2);

  Gauge* g = registry.GetGauge("msd_test_depth");
  g->Set(7.5);
  EXPECT_EQ(registry.GetGauge("msd_test_depth"), g);

  TelemetrySnapshot snap = registry.Snapshot();
  EXPECT_GE(snap.uptime_us, 0);
  const MetricPoint* agg = FindPoint(snap, "msd_test_total", kMetricNoTenant);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(agg->value, 6.0);
  const MetricPoint* slice = FindPoint(snap, "msd_test_total", 3);
  ASSERT_NE(slice, nullptr);
  EXPECT_DOUBLE_EQ(slice->value, 2.0);
  const MetricPoint* depth = FindPoint(snap, "msd_test_depth", kMetricNoTenant);
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(depth->value, 7.5);
}

TEST(MetricsRegistryTest, HistogramBucketsObserveWithInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("msd_test_ms", {1.0, 2.0, 4.0});
  // Re-fetching ignores the bounds argument and returns the same instrument.
  EXPECT_EQ(registry.GetHistogram("msd_test_ms", {99.0}), h);
  h->Observe(0.5);    // <= 1 -> bucket 0
  h->Observe(2.0);    // == bound -> bucket 1 (inclusive upper)
  h->Observe(3.0);    // bucket 2
  h->Observe(100.0);  // overflow bucket
  TelemetrySnapshot snap = registry.Snapshot();
  const MetricPoint* p = FindPoint(snap, "msd_test_ms", kMetricNoTenant);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, MetricKind::kHistogram);
  EXPECT_EQ(p->bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(p->buckets, (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(p->count, 4);
  EXPECT_DOUBLE_EQ(p->sum, 105.5);
}

TEST(MetricsRegistryTest, CollectorsAppendUntilRemoved) {
  MetricsRegistry registry;
  const int64_t handle = registry.AddCollector([](std::vector<MetricPoint>* out) {
    MetricPoint p;
    p.name = "msd_test_bridged_total";
    p.kind = MetricKind::kCounter;
    p.value = 42.0;
    out->push_back(std::move(p));
  });
  EXPECT_NE(FindPoint(registry.Snapshot(), "msd_test_bridged_total", kMetricNoTenant), nullptr);
  registry.RemoveCollector(handle);
  EXPECT_EQ(FindPoint(registry.Snapshot(), "msd_test_bridged_total", kMetricNoTenant), nullptr);
}

TEST(MetricsRegistryTest, PrometheusRenderingIsExact) {
  MetricsRegistry registry;
  registry.GetCounter("msd_test_total")->Increment(3);
  registry.GetCounter("msd_test_total", 2)->Increment(4);
  Histogram* h = registry.GetHistogram("msd_test_ms", {1.0, 4.0}, 7);
  h->Observe(0.5);
  h->Observe(2.0);
  h->Observe(9.0);
  const std::string text = RenderPrometheus(registry.Snapshot());
  // One TYPE header per series name, not per labelled point.
  EXPECT_EQ(text.find("# TYPE msd_test_total counter"),
            text.rfind("# TYPE msd_test_total counter"));
  EXPECT_NE(text.find("msd_test_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("msd_test_total{tenant=\"2\"} 4\n"), std::string::npos);
  // Histogram: cumulative le-buckets ending at +Inf, then _sum and _count,
  // tenant label composed with le.
  EXPECT_NE(text.find("# TYPE msd_test_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("msd_test_ms_bucket{tenant=\"7\",le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("msd_test_ms_bucket{tenant=\"7\",le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("msd_test_ms_bucket{tenant=\"7\",le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("msd_test_ms_sum{tenant=\"7\"} 11.5\n"), std::string::npos);
  EXPECT_NE(text.find("msd_test_ms_count{tenant=\"7\"} 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonRenderingParses) {
  MetricsRegistry registry;
  registry.GetCounter("msd_test_total", 2)->Increment(7);
  registry.GetGauge("msd_test_depth")->Set(1.25);
  registry.GetHistogram("msd_test_ms", {1.0, 4.0})->Observe(2.0);
  JsonValue root;
  ASSERT_TRUE(JsonParser::Parse(RenderJson(registry.Snapshot()), &root));
  ASSERT_EQ(root.kind, JsonValue::kObject);
  EXPECT_GE(root.Number("uptime_us"), 0.0);
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->kind, JsonValue::kArray);
  ASSERT_EQ(metrics->array.size(), 3u);
  bool saw_counter = false;
  bool saw_hist = false;
  for (const JsonValue& m : metrics->array) {
    if (m.String("name") == "msd_test_total") {
      saw_counter = true;
      EXPECT_EQ(m.String("kind"), "counter");
      EXPECT_DOUBLE_EQ(m.Number("tenant"), 2.0);
      EXPECT_DOUBLE_EQ(m.Number("value"), 7.0);
    }
    if (m.String("name") == "msd_test_ms") {
      saw_hist = true;
      EXPECT_EQ(m.String("kind"), "histogram");
      const JsonValue* buckets = m.Find("buckets");
      ASSERT_NE(buckets, nullptr);
      EXPECT_EQ(buckets->array.size(), 3u);  // 2 bounds + overflow
      EXPECT_DOUBLE_EQ(m.Number("count"), 1.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

// ---------------------------------------------------------------------------
// StepTracer: ring semantics and Chrome trace output.
// ---------------------------------------------------------------------------

TEST(StepTracerTest, RingDropsOldestAndSnapshotsOldestFirst) {
  StepTracer tracer(4);
  static const char* kNames[] = {"s0", "s1", "s2", "s3", "s4", "s5"};
  for (int i = 0; i < 6; ++i) {
    TraceSpan span;
    span.name = kNames[i];
    span.cat = "test";
    span.ts_us = i;
    tracer.Record(span);
  }
  EXPECT_EQ(tracer.recorded(), 6);
  EXPECT_EQ(tracer.dropped(), 2);
  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_STREQ(spans[i].name, kNames[i + 2]) << "ring must keep the newest, oldest first";
  }
}

TEST(StepTracerTest, ScopedSpanToleratesNullTracerAndRecordsOtherwise) {
  {
    ScopedSpan span(nullptr, "noop", "test", kDefaultIoTenant, 1);
    span.set_ok(false);  // must be a no-op, not a crash
  }
  StepTracer tracer(8);
  {
    ScopedSpan span(&tracer, "io.retry", "io", /*tenant=*/5, /*step=*/-1, /*rank=*/3,
                    /*attempt=*/2);
    span.set_ok(false);
  }
  std::vector<TraceSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "io.retry");
  EXPECT_EQ(spans[0].tenant, 5);
  EXPECT_EQ(spans[0].rank, 3);
  EXPECT_EQ(spans[0].attempt, 2);
  EXPECT_FALSE(spans[0].ok);
  EXPECT_GE(spans[0].dur_us, 0);
  EXPECT_GT(spans[0].lane, 0);
}

TEST(StepTracerTest, ChromeTraceIsValidJsonWithTenantPids) {
  StepTracer tracer(16);
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(&tracer, "step.plan", "step", /*tenant=*/1, /*step=*/i);
    (void)span;
  }
  {
    ScopedSpan span(&tracer, "io.get", "io", /*tenant=*/2);
    (void)span;
  }
  JsonValue root;
  ASSERT_TRUE(JsonParser::Parse(tracer.RenderChromeTrace(), &root));
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  std::set<double> metadata_pids;
  int x_events = 0;
  for (const JsonValue& e : events->array) {
    const std::string ph = e.String("ph");
    if (ph == "M") {
      EXPECT_EQ(e.String("name"), "process_name");
      metadata_pids.insert(e.Number("pid"));
      continue;
    }
    ASSERT_EQ(ph, "X") << "only complete events and metadata are emitted";
    ++x_events;
    EXPECT_GE(e.Number("ts"), 0.0);
    EXPECT_GE(e.Number("dur"), 0.0);
    const JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    // pid IS the tenant: that is the attribution contract.
    EXPECT_EQ(e.Number("pid"), args->Number("tenant"));
  }
  EXPECT_EQ(x_events, 4);
  EXPECT_EQ(metadata_pids, (std::set<double>{1.0, 2.0}));
}

// ---------------------------------------------------------------------------
// Logging satellites: sink capture + per-site rate limiting.
// ---------------------------------------------------------------------------

struct CapturedLine {
  LogLevel level;
  std::string message;
};

std::vector<CapturedLine> CaptureWarnings(const std::function<void()>& body) {
  std::mutex mu;
  std::vector<CapturedLine> lines;
  SetLogSink([&mu, &lines](LogLevel level, const char* file, int line, const char* message) {
    (void)file;
    (void)line;
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back({level, message});
  });
  body();
  SetLogSink(nullptr);  // restore stderr
  return lines;
}

TEST(LoggingTest, SinkCapturesFormattedLines) {
  std::vector<CapturedLine> lines = CaptureWarnings([] {
    MSD_LOG_WARN("retry %d of %s", 2, "corpus/file-0001");
  });
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].level, LogLevel::kWarn);
  EXPECT_EQ(lines[0].message, "retry 2 of corpus/file-0001");
}

TEST(LoggingTest, WarnEveryNEmitsFirstThenEveryNth) {
  std::vector<CapturedLine> lines = CaptureWarnings([] {
    for (int i = 0; i < 9; ++i) {
      MSD_LOG_WARN_EVERY_N(4, "hit %d", i);
    }
  });
  // Hits 1, 5, 9 emit: the 1st and every 4th after it.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].message, "hit 0");
  EXPECT_EQ(lines[1].message, "hit 4");
  EXPECT_EQ(lines[2].message, "hit 8");
}

TEST(LoggingTest, SuppressedLinesAreCountedAndSurfacedThroughTheBridge) {
  const int64_t before = SuppressedLogLines();
  std::vector<CapturedLine> lines = CaptureWarnings([] {
    for (int i = 0; i < 20; ++i) {
      MSD_LOG_WARN_EVERY_N(10, "suppressed-bridge-probe %d", i);
    }
  });
  // Hits 1 and 11 emit; the other 18 must be COUNTED, not vanish.
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(SuppressedLogLines() - before, 18);

  // ...and the registry export carries the aggregate as a counter point.
  std::vector<MetricPoint> points;
  AppendLoggingMetrics(&points);
  const MetricPoint* suppressed = nullptr;
  for (const MetricPoint& p : points) {
    if (p.name == "msd_log_suppressed_total") {
      suppressed = &p;
    }
  }
  ASSERT_NE(suppressed, nullptr);
  EXPECT_EQ(suppressed->kind, MetricKind::kCounter);
  EXPECT_EQ(suppressed->tenant, kMetricNoTenant);
  EXPECT_GE(suppressed->value, 18.0);

  // The per-site breakdown names this call site with its suppressed count.
  bool found_site = false;
  for (const SuppressedLogSite& site : SuppressedLogSites()) {
    if (site.file != nullptr && std::string(site.file).find("telemetry_test") != std::string::npos &&
        site.suppressed >= 18) {
      found_site = true;
    }
  }
  EXPECT_TRUE(found_site);
}

TEST(LoggingTest, LogRingBoundsRetentionAndTapsEmittedLines) {
  LogRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    ring.Append("line " + std::to_string(i));
  }
  EXPECT_EQ(ring.appended(), 6);
  EXPECT_EQ(ring.dropped(), 2);
  std::vector<std::string> tail = ring.Tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front(), "line 2") << "oldest retained first";
  EXPECT_EQ(tail.back(), "line 5");

  // AppendFormatted renders the same "[L file:line] msg" shape bundles show.
  LogRing formatted(4);
  formatted.AppendFormatted(LogLevel::kWarn, "loader.cc", 42, "slow source 7");
  std::vector<std::string> rendered = formatted.Tail();
  ASSERT_EQ(rendered.size(), 1u);
  EXPECT_EQ(rendered[0], "[W loader.cc:42] slow source 7");

  // An attached ring taps every emitted line — but not suppressed ones.
  LogRing tap(8);
  AttachLogRing(&tap);
  CaptureWarnings([] {
    for (int i = 0; i < 5; ++i) {
      MSD_LOG_WARN_EVERY_N(10, "tap-probe %d", i);
    }
  });
  DetachLogRing(&tap);
  std::vector<std::string> tapped = tap.Tail();
  ASSERT_EQ(tapped.size(), 1u) << "only the 1st of 5 rate-limited hits emits";
  EXPECT_NE(tapped[0].find("tap-probe 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Session integration: an owned session exports its whole stack.
// ---------------------------------------------------------------------------

TEST(SessionTelemetryTest, OwnedSessionExportsMetricsAndTrace) {
  Session::Options options = TenantSessionOptions(MakeCoyo700m());
  options.block_cache_bytes = 32 * kMiB;
  options.storage_get_latency = 200;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  for (int64_t s = 0; s < 2; ++s) {
    StreamStep(**session);
  }

  ASSERT_NE((*session)->metrics(), nullptr);
  ASSERT_NE((*session)->tracer(), nullptr);
  TelemetrySnapshot snap = (*session)->metrics()->Snapshot();

  // The pipeline series reflect the two consumed steps (the producer may be
  // ahead by prefetch_depth, never behind).
  const MetricPoint* produced =
      FindPoint(snap, "msd_pipeline_steps_produced_total", kMetricNoTenant);
  ASSERT_NE(produced, nullptr);
  EXPECT_GE(produced->value, 2.0);

  // Bridged cache series form a consistent cut: lookups == hits + misses.
  const MetricPoint* lookups = FindPoint(snap, "msd_cache_lookups_total", kMetricNoTenant);
  const MetricPoint* hits = FindPoint(snap, "msd_cache_hits_total", kMetricNoTenant);
  const MetricPoint* misses = FindPoint(snap, "msd_cache_misses_total", kMetricNoTenant);
  ASSERT_NE(lookups, nullptr);
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_GT(lookups->value, 0.0);
  EXPECT_DOUBLE_EQ(lookups->value, hits->value + misses->value);

  // Producer-path latency histograms observed one sample per produced step.
  const MetricPoint* produce_ms = FindPoint(snap, "msd_step_produce_ms", kMetricNoTenant);
  ASSERT_NE(produce_ms, nullptr);
  EXPECT_EQ(produce_ms->kind, MetricKind::kHistogram);
  EXPECT_GE(produce_ms->count, 2);

  // Storage series exist and the renderers accept the snapshot.
  EXPECT_NE(FindPoint(snap, "msd_storage_gets_total", kMetricNoTenant), nullptr);
  const std::string text = RenderPrometheus(snap);
  EXPECT_NE(text.find("# TYPE msd_pipeline_steps_produced_total counter"), std::string::npos);
  JsonValue rendered;
  EXPECT_TRUE(JsonParser::Parse(RenderJson(snap), &rendered));

  // The trace ring saw the producer and io paths; the dump round-trips
  // through disk as valid Chrome trace JSON.
  const std::string dir = ScratchDir("telemetry_trace");
  fs::create_directories(dir);
  const std::string path = dir + "/trace.json";
  ASSERT_TRUE((*session)->DumpTrace(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  ASSERT_TRUE(JsonParser::Parse(buffer.str(), &root));
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> names;
  for (const JsonValue& e : events->array) {
    if (e.String("ph") == "X") {
      names.insert(e.String("name"));
    }
  }
  EXPECT_TRUE(names.count("step.plan")) << "producer planning span missing";
  EXPECT_TRUE(names.count("step.pop")) << "sample-pop span missing";
  EXPECT_TRUE(names.count("step.build")) << "constructor-build span missing";
  EXPECT_TRUE(names.count("io.get")) << "backing Get span missing";
  fs::remove_all(dir);
}

TEST(SessionTelemetryTest, TelemetryOffStreamsIdenticallyWithNoRegistry) {
  // Negative trace ring is rejected up front.
  Session::Options bad = TenantSessionOptions(MakeCoyo700m());
  bad.trace_ring_spans = -1;
  EXPECT_FALSE(Session::Create(bad).ok());

  Session::Options on = TenantSessionOptions(MakeCoyo700m());
  on.block_cache_bytes = 32 * kMiB;
  Session::Options off = on;
  off.telemetry_enabled = false;
  auto with = Session::Create(on);
  auto without = Session::Create(off);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  ASSERT_TRUE(without.ok()) << without.status().ToString();

  EXPECT_EQ((*without)->metrics(), nullptr);
  EXPECT_EQ((*without)->tracer(), nullptr);
  EXPECT_FALSE((*without)->DumpTrace("/tmp/never-written.json").ok());

  // Telemetry must be a pure observer: the byte streams are identical.
  for (int64_t s = 0; s < 2; ++s) {
    std::vector<RankBatch> a = StreamStep(**with);
    std::vector<RankBatch> b = StreamStep(**without);
    ASSERT_EQ(a.size(), b.size());
    for (size_t rank = 0; rank < a.size(); ++rank) {
      ExpectBatchesIdentical(a[rank], b[rank]);
    }
  }
  // And metrics-only mode (ring = 0) keeps the registry without a tracer.
  Session::Options metrics_only = TenantSessionOptions(MakeCoyo700m());
  metrics_only.trace_ring_spans = 0;
  auto mo = Session::Create(metrics_only);
  ASSERT_TRUE(mo.ok()) << mo.status().ToString();
  EXPECT_NE((*mo)->metrics(), nullptr);
  EXPECT_EQ((*mo)->tracer(), nullptr);
}

// ---------------------------------------------------------------------------
// DataService: consistent snapshots under fire, scrape hook, fault traces.
// ---------------------------------------------------------------------------

TEST(ServiceTelemetryTest, MetricsSnapshotIsConsistentUnderConcurrentStreaming) {
  DataService service(TestPlaneConfig());
  DataService::TenantConfig alpha;
  alpha.session = TenantSessionOptions(MakeCoyo700m());
  DataService::TenantConfig beta;
  beta.session = TenantSessionOptions(MakeCoyo700m());
  ASSERT_TRUE(service.RegisterTenant("alpha", alpha).ok());
  ASSERT_TRUE(service.RegisterTenant("beta", beta).ok());

  std::atomic<int> done{0};
  std::atomic<bool> stream_failed{false};
  std::vector<std::thread> streams;
  for (const std::string name : {"alpha", "beta"}) {
    streams.emplace_back([&service, &done, &stream_failed, name] {
      if (!StreamStepsQuietly(service.session(name), 4)) {
        stream_failed.store(true);
      }
      done.fetch_add(1);
    });
  }

  // Hammer MetricsSnapshot() while both tenants stream. Every cut must be
  // internally consistent — a torn read of any counter pair fails here.
  int iterations = 0;
  while (done.load() < 2) {
    DataService::ServiceSnapshot snap = service.MetricsSnapshot();
    ++iterations;
    int64_t cache_lookups = 0;
    int64_t io_requests = 0;
    int64_t io_issued = 0;
    int64_t resident = 0;
    for (const auto& [name, slice] : snap.tenants) {
      // Cache slices are taken under the all-shard lock: exact, not
      // approximate.
      ASSERT_EQ(slice.cache.lookups, slice.cache.hits + slice.cache.misses)
          << "tenant " << name << " cache slice tore at iteration " << iterations;
      // A scheduler request is categorized (hit/coalesced/issued) a moment
      // after it is counted, so mid-flight the parts can lag the total —
      // but never exceed it.
      ASSERT_GE(slice.scheduler.requests,
                slice.scheduler.cache_hits + slice.scheduler.coalesced +
                    slice.scheduler.issued_gets)
          << "tenant " << name << " scheduler slice tore at iteration " << iterations;
      cache_lookups += slice.cache.lookups;
      io_requests += slice.scheduler.requests;
      io_issued += slice.scheduler.issued_gets;
      resident += slice.cache.resident_bytes;
    }
    // The slices come from the SAME locked pass as the aggregates, so they
    // sum EXACTLY — this is the property a per-subsystem stats() loop over
    // tenants cannot give you.
    ASSERT_EQ(cache_lookups, snap.cache.lookups)
        << "tenant cache slices do not sum to the aggregate at iteration " << iterations;
    ASSERT_EQ(resident, snap.cache.resident_bytes);
    ASSERT_EQ(io_requests, snap.scheduler.requests)
        << "tenant scheduler slices do not sum to the aggregate at iteration " << iterations;
    ASSERT_EQ(io_issued, snap.scheduler.issued_gets);
    // Same property on the rendered series: per-tenant points sum to the
    // unlabelled aggregate point inside one registry snapshot.
    const MetricPoint* agg = FindPoint(snap.telemetry, "msd_io_requests_total", kMetricNoTenant);
    ASSERT_NE(agg, nullptr);
    ASSERT_DOUBLE_EQ(SumTenantPoints(snap.telemetry, "msd_io_requests_total"), agg->value);
  }
  for (std::thread& t : streams) {
    t.join();
  }
  ASSERT_FALSE(stream_failed.load());
  EXPECT_GT(iterations, 0);

  // Quiesce: the producers keep prefetching briefly after the consumers stop;
  // wait until two successive cuts agree, then the snapshot's slices must
  // equal tenant_stats() field for field.
  DataService::ServiceSnapshot settled = service.MetricsSnapshot();
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    DataService::ServiceSnapshot next = service.MetricsSnapshot();
    if (next.scheduler.requests == settled.scheduler.requests &&
        next.cache.lookups == settled.cache.lookups) {
      settled = std::move(next);
      break;
    }
    settled = std::move(next);
  }
  for (const std::string name : {"alpha", "beta"}) {
    DataService::TenantStats direct = service.tenant_stats(name).value();
    auto it = settled.tenants.find(name);
    ASSERT_NE(it, settled.tenants.end());
    EXPECT_EQ(it->second.id, direct.id);
    EXPECT_EQ(it->second.cache.lookups, direct.cache.lookups);
    EXPECT_EQ(it->second.cache.hits, direct.cache.hits);
    EXPECT_EQ(it->second.cache.resident_bytes, direct.cache.resident_bytes);
    EXPECT_EQ(it->second.scheduler.requests, direct.scheduler.requests);
    EXPECT_EQ(it->second.scheduler.issued_gets, direct.scheduler.issued_gets);
    EXPECT_GT(direct.scheduler.requests, 0);
  }
  EXPECT_GT(settled.backing_gets, 0);
}

TEST(ServiceTelemetryTest, ScrapeHookDeliversSnapshotsUntilStopped) {
  DataService service(TestPlaneConfig());
  DataService::TenantConfig cfg;
  cfg.session = TenantSessionOptions(MakeCoyo700m());
  ASSERT_TRUE(service.RegisterTenant("job", cfg).ok());

  EXPECT_FALSE(service.StartScrape(0, [](const DataService::ServiceSnapshot&) {}).ok());
  EXPECT_FALSE(service.StartScrape(10, nullptr).ok());

  std::mutex mu;
  std::condition_variable cv;
  int delivered = 0;
  ASSERT_TRUE(service
                  .StartScrape(5,
                               [&](const DataService::ServiceSnapshot& snap) {
                                 EXPECT_EQ(snap.tenants.size(), 1u);
                                 std::lock_guard<std::mutex> lock(mu);
                                 ++delivered;
                                 cv.notify_all();
                               })
                  .ok());
  // A second concurrent scrape is rejected.
  EXPECT_FALSE(service.StartScrape(5, [](const DataService::ServiceSnapshot&) {}).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return delivered >= 3; }));
  }
  service.StopScrape();
  const int at_stop = [&] {
    std::lock_guard<std::mutex> lock(mu);
    return delivered;
  }();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(delivered, at_stop) << "scrape kept firing after StopScrape";
  }
  // Stopped state restarts cleanly.
  ASSERT_TRUE(service.StartScrape(5, [](const DataService::ServiceSnapshot&) {}).ok());
  service.StopScrape();
}

TEST(ServiceTelemetryTest, FaultyTenantRetriesAreAttributedInDumpedTrace) {
  SharedIoPlaneConfig plane = TestPlaneConfig();
  plane.retry.max_attempts = 3;  // ride out fail-first-1
  DataService service(plane);

  DataService::TenantConfig healthy;
  healthy.session = TenantSessionOptions(MakeCoyo700m());
  // Disjoint corpus so the flaky tenant cannot ride the healthy tenant's
  // cached blocks — every range it reads must survive its own first-attempt
  // failure.
  DataService::TenantConfig flaky;
  flaky.session = TenantSessionOptions(MakeTextCorpus(13, 4));
  flaky.storage_faults.fail_first_n = 1;
  ASSERT_TRUE(service.RegisterTenant("healthy", healthy).ok());
  ASSERT_TRUE(service.RegisterTenant("flaky", flaky).ok());
  const IoTenantId healthy_id = service.tenant_stats("healthy").value().id;
  const IoTenantId flaky_id = service.tenant_stats("flaky").value().id;

  for (int64_t s = 0; s < 2; ++s) {
    StreamStep(*service.session("healthy"));
    StreamStep(*service.session("flaky"));
  }
  // The chaos actually fired and the retries actually saved the stream.
  DataService::TenantStats fs_stats = service.tenant_stats("flaky").value();
  ASSERT_GT(fs_stats.scheduler.retries, 0);
  EXPECT_EQ(service.tenant_stats("healthy").value().scheduler.retries, 0);

  const std::string dir = ScratchDir("telemetry_fault_trace");
  fs::create_directories(dir);
  const std::string path = dir + "/trace.json";
  ASSERT_TRUE(service.DumpTrace(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  ASSERT_TRUE(JsonParser::Parse(buffer.str(), &root)) << "trace is not valid JSON";
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);

  int retries_seen = 0;
  std::set<double> get_pids;
  std::set<double> named_pids;
  for (const JsonValue& e : events->array) {
    if (e.String("ph") == "M" && e.String("name") == "process_name") {
      named_pids.insert(e.Number("pid"));
      continue;
    }
    if (e.String("ph") != "X") {
      continue;
    }
    const std::string name = e.String("name");
    if (name == "io.get") {
      get_pids.insert(e.Number("pid"));
    }
    if (name == "io.retry") {
      ++retries_seen;
      // Every retry belongs to the tenant whose storage is flaky — chaos
      // attribution never bleeds onto the healthy neighbour.
      EXPECT_EQ(e.Number("pid"), static_cast<double>(flaky_id))
          << "retry span attributed to the wrong tenant";
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_GE(args->Number("attempt"), 1.0);
    }
  }
  EXPECT_GT(retries_seen, 0) << "no retry spans in the trace";
  // Both tenants issued primary Gets, and both pids are named in metadata.
  EXPECT_TRUE(get_pids.count(static_cast<double>(healthy_id)));
  EXPECT_TRUE(get_pids.count(static_cast<double>(flaky_id)));
  EXPECT_TRUE(named_pids.count(static_cast<double>(healthy_id)));
  EXPECT_TRUE(named_pids.count(static_cast<double>(flaky_id)));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace msd
