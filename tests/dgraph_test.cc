#include <gtest/gtest.h>

#include "src/plan/dgraph.h"

namespace msd {
namespace {

// Two loaders / two sources, deterministic token lengths.
std::vector<BufferInfo> MakeBuffers(int per_source = 8) {
  std::vector<BufferInfo> buffers(2);
  uint64_t id = 0;
  for (int32_t s = 0; s < 2; ++s) {
    buffers[s].loader_id = s;
    buffers[s].source_id = s;
    for (int i = 0; i < per_source; ++i) {
      SampleMeta meta;
      meta.sample_id = id++;
      meta.source_id = s;
      meta.text_tokens = 100 * (i + 1);
      meta.image_tokens = s == 0 ? 50 * (i + 1) : 0;
      meta.modality = s == 0 ? Modality::kImageText : Modality::kText;
      buffers[s].samples.push_back(meta);
    }
  }
  return buffers;
}

CostFn TokenCost() {
  return [](const SampleMeta& meta) {
    return CostEntry{static_cast<double>(meta.TotalTokens()), 0.0};
  };
}

TEST(DGraphTest, FromBufferInfosCreatesNodes) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.CandidateNodeIds().size(), 16u);
}

TEST(DGraphTest, SelectorFilters) {
  DGraph g = DGraph::FromBufferInfos(
      MakeBuffers(), [](const SampleMeta& meta) { return meta.image_tokens > 0; });
  EXPECT_EQ(g.node_count(), 8u);  // only source 0 has images
}

TEST(DGraphTest, MixSelectsExactCount) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 2);
  g.Init(&tree);
  StaticMix mix({1.0, 1.0});
  Rng rng(1);
  ASSERT_TRUE(g.Mix(mix, 0, 10, rng).ok());
  EXPECT_EQ(g.CandidateNodeIds().size(), 10u);
}

TEST(DGraphTest, MixTwiceFails) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  StaticMix mix({1.0, 1.0});
  Rng rng(1);
  ASSERT_TRUE(g.Mix(mix, 0, 4, rng).ok());
  EXPECT_EQ(g.Mix(mix, 0, 4, rng).code(), StatusCode::kFailedPrecondition);
}

TEST(DGraphTest, MixScheduleSizeMismatch) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  StaticMix mix({1.0});
  Rng rng(1);
  EXPECT_EQ(g.Mix(mix, 0, 4, rng).code(), StatusCode::kInvalidArgument);
}

TEST(DGraphTest, DistributeRequiresInit) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  EXPECT_EQ(g.Distribute(Axis::kDP).code(), StatusCode::kFailedPrecondition);
}

TEST(DGraphTest, BalanceRequiresDistributeAndCost) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 2);
  g.Init(&tree);
  EXPECT_EQ(g.Balance().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  EXPECT_EQ(g.Balance().code(), StatusCode::kFailedPrecondition);  // no cost yet
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  EXPECT_TRUE(g.Balance().ok());
}

TEST(DGraphTest, BalancedPlanHasLowImbalance) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers(32));
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 4, .pp = 1, .cp = 1, .tp = 1}, 2);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  ASSERT_TRUE(g.Balance({.method = BalanceMethod::kGreedy}).ok());
  LoadingPlan plan = g.Plan(0).value();
  EXPECT_EQ(plan.num_buckets, 4);
  EXPECT_EQ(plan.num_microbatches, 2);
  EXPECT_LT(Imbalance(plan.BucketLoads()), 1.1);
}

TEST(DGraphTest, PlanWithoutBalanceRoundRobins) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 2);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  LoadingPlan plan = g.Plan(5).value();
  EXPECT_EQ(plan.step, 5);
  EXPECT_EQ(plan.assignments.size(), 16u);
  // Round-robin: buckets get equal sample counts.
  std::vector<int> counts(2, 0);
  for (const SliceAssignment& a : plan.assignments) {
    ++counts[static_cast<size_t>(a.bucket)];
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST(DGraphTest, MicrobatchGranularityKeepsChunksTogether) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers(16));
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 2);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  ASSERT_TRUE(g.Balance({.method = BalanceMethod::kGreedy,
                         .granularity = BalanceOptions::Granularity::kMicrobatch})
                  .ok());
  LoadingPlan plan = g.Plan(0).value();
  // 32 samples over 4 slots => consecutive chunks of 8 share a target.
  std::map<std::pair<int32_t, int32_t>, int> slot_counts;
  for (const SliceAssignment& a : plan.assignments) {
    ++slot_counts[{a.bucket, a.microbatch}];
  }
  for (const auto& [slot, count] : slot_counts) {
    EXPECT_EQ(count, 8);
  }
}

TEST(DGraphTest, BroadcastAtExcludesRanks) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 2}, 1);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  g.BroadcastAt(Axis::kTP);
  g.BroadcastAt(Axis::kTP);  // idempotent
  LoadingPlan plan = g.Plan(0).value();
  ASSERT_EQ(plan.broadcast_axes.size(), 1u);
  EXPECT_EQ(plan.fetching_ranks.size(), 2u);  // tp0 of each DP group
}

TEST(DGraphTest, CostRejectsNegative) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  EXPECT_EQ(g.Cost([](const SampleMeta&) { return CostEntry{-1.0, 0.0}; }).code(),
            StatusCode::kInvalidArgument);
}

TEST(DGraphTest, ExcludedSamplesStayOutOfPlan) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 1);
  g.Init(&tree);
  StaticMix mix({1.0, 0.0});  // only source 0
  Rng rng(2);
  ASSERT_TRUE(g.Mix(mix, 0, 6, rng).ok());
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  ASSERT_TRUE(g.Balance().ok());
  LoadingPlan plan = g.Plan(0).value();
  EXPECT_EQ(plan.assignments.size(), 6u);
  for (const SliceAssignment& a : plan.assignments) {
    EXPECT_EQ(a.source_id, 0);
    EXPECT_EQ(a.loader_id, 0);
  }
}

TEST(DGraphTest, CpAxisUsesDpTimesCpBuckets) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers(32));
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 2, .tp = 1}, 1);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kCP).ok());
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  ASSERT_TRUE(g.Balance().ok());
  LoadingPlan plan = g.Plan(0).value();
  EXPECT_EQ(plan.num_buckets, 4);
}

TEST(DGraphTest, GroupSizeReducesBuckets) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers(32));
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 8, .pp = 1, .cp = 1, .tp = 1}, 1);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kDP, 4).ok());
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  ASSERT_TRUE(g.Balance().ok());
  LoadingPlan plan = g.Plan(0).value();
  EXPECT_EQ(plan.num_buckets, 2);
  EXPECT_EQ(plan.group_size, 4);
}

TEST(LoadingPlanTest, SerializationRoundTrip) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers());
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 2}, 2);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  ASSERT_TRUE(g.Balance().ok());
  g.BroadcastAt(Axis::kTP);
  LoadingPlan plan = g.Plan(3).value();
  LoadingPlan sub = plan;
  sub.subplans.clear();
  plan.subplans.emplace("encoder", sub);

  Result<LoadingPlan> parsed = LoadingPlan::Deserialize(plan.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->step, 3);
  EXPECT_EQ(parsed->num_buckets, plan.num_buckets);
  EXPECT_EQ(parsed->assignments.size(), plan.assignments.size());
  EXPECT_EQ(parsed->fetching_ranks, plan.fetching_ranks);
  ASSERT_EQ(parsed->subplans.size(), 1u);
  EXPECT_EQ(parsed->subplans.at("encoder").assignments.size(), sub.assignments.size());
  for (size_t i = 0; i < plan.assignments.size(); ++i) {
    EXPECT_EQ(parsed->assignments[i].sample_id, plan.assignments[i].sample_id);
    EXPECT_EQ(parsed->assignments[i].bucket, plan.assignments[i].bucket);
    EXPECT_DOUBLE_EQ(parsed->assignments[i].cost, plan.assignments[i].cost);
  }
}

TEST(LoadingPlanTest, CorruptBytesRejected) {
  EXPECT_FALSE(LoadingPlan::Deserialize("nonsense").ok());
}

TEST(LoadingPlanTest, LoadMatrixShape) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers(16));
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 4);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  ASSERT_TRUE(g.Balance().ok());
  LoadingPlan plan = g.Plan(0).value();
  auto matrix = plan.LoadMatrix();
  ASSERT_EQ(matrix.size(), 2u);
  ASSERT_EQ(matrix[0].size(), 4u);
  double total = 0.0;
  for (const auto& row : matrix) {
    for (double v : row) {
      total += v;
    }
  }
  double bucket_total = 0.0;
  for (double v : plan.BucketLoads()) {
    bucket_total += v;
  }
  EXPECT_NEAR(total, bucket_total, 1e-6);
}

TEST(DGraphTest, LineageModeRecordsTransitions) {
  DGraph g = DGraph::FromBufferInfos(MakeBuffers(2), nullptr, /*track_lineage=*/true);
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 1);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kDP).ok());
  ASSERT_TRUE(g.Cost(TokenCost()).ok());
  ASSERT_TRUE(g.Balance().ok());
  ASSERT_TRUE(g.Plan(0).ok());
  EXPECT_GT(g.graph().edge_count(), 0u);
  EXPECT_NE(g.ToDot().find("balance"), std::string::npos);
}

}  // namespace
}  // namespace msd
