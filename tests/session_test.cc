// End-to-end integration tests over the public msd::Session API: real
// corpus materialization, actor pipeline, batch delivery, parallelism
// transformations, and failure recovery.
#include <gtest/gtest.h>

#include <set>

#include "src/api/session.h"

namespace msd {
namespace {

Session::Options SmallOptions() {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 2048;
  options.rows_per_file_override = 48;
  options.loader_workers = 1;
  return options;
}

TEST(SessionTest, CreateAndAdvance) {
  auto session = Session::Create(SmallOptions());
  ASSERT_TRUE(session.ok());
  EXPECT_GE((*session)->num_loaders(), 5u);  // at least one per source
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  EXPECT_EQ((*session)->current_step(), 0);
  EXPECT_EQ((*session)->last_stats().samples, 16u);
}

TEST(SessionTest, GetBatchBeforeAdvanceFails) {
  auto session = Session::Create(SmallOptions());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->GetBatch(0).status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionTest, BatchesDeliverRealTokens) {
  auto session = Session::Create(SmallOptions());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  std::set<uint64_t> all_samples;
  for (int32_t rank = 0; rank < 2; ++rank) {
    Result<RankBatch> batch = (*session)->GetBatch(rank);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->microbatches.size(), 2u);
    for (const Microbatch& mb : batch->microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        EXPECT_FALSE(seq.tokens.empty());
        EXPECT_EQ(seq.tokens.size(), seq.position_ids.size());
        for (uint64_t id : seq.sample_ids) {
          all_samples.insert(id);
        }
      }
    }
  }
  EXPECT_EQ(all_samples.size(), 16u);  // whole global batch delivered once
}

TEST(SessionTest, MultipleStepsDeliverFreshSamples) {
  auto session = Session::Create(SmallOptions());
  ASSERT_TRUE(session.ok());
  std::set<uint64_t> seen;
  for (int step = 0; step < 4; ++step) {
    ASSERT_TRUE((*session)->AdvanceStep().ok());
    RankBatch batch = (*session)->GetBatch(0).value();
    for (const Microbatch& mb : batch.microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        for (uint64_t id : seq.sample_ids) {
          EXPECT_TRUE(seen.insert(id).second) << "sample served twice";
        }
      }
    }
  }
}

TEST(SessionTest, HybridBalanceReducesImbalance) {
  Session::Options vanilla = SmallOptions();
  vanilla.strategy = Session::StrategyKind::kVanilla;
  vanilla.spec = {.dp = 4, .pp = 1, .cp = 1, .tp = 1};
  vanilla.samples_per_step = 32;
  Session::Options balanced = vanilla;
  balanced.strategy = Session::StrategyKind::kBackboneBalance;

  auto v = Session::Create(vanilla);
  auto b = Session::Create(balanced);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(b.ok());
  // Average imbalance over several steps: vanilla has no cost annotations, so
  // compare the balanced session against the theoretical 1.0.
  double balanced_total = 0.0;
  for (int step = 0; step < 4; ++step) {
    ASSERT_TRUE((*b)->AdvanceStep().ok());
    balanced_total += (*b)->last_stats().dp_imbalance;
    ASSERT_TRUE((*v)->AdvanceStep().ok());
  }
  EXPECT_LT(balanced_total / 4.0, 1.25);
}

TEST(SessionTest, CpRanksReceiveSlicedSequences) {
  Session::Options options = SmallOptions();
  options.spec = {.dp = 1, .pp = 1, .cp = 2, .tp = 1};
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  RankBatch cp0 = (*session)->GetBatch(0).value();
  RankBatch cp1 = (*session)->GetBatch(1).value();
  ASSERT_FALSE(cp0.microbatches.empty());
  ASSERT_FALSE(cp0.microbatches[0].sequences.empty());
  const PackedSequence& s0 = cp0.microbatches[0].sequences[0];
  const PackedSequence& s1 = cp1.microbatches[0].sequences[0];
  EXPECT_EQ(s0.sample_ids, s1.sample_ids);
  EXPECT_EQ(static_cast<int32_t>(s0.tokens.size() + s1.tokens.size()), s0.padded_to);
}

TEST(SessionTest, PpStageOneGetsMetadataOnly) {
  Session::Options options = SmallOptions();
  options.spec = {.dp = 1, .pp = 2, .cp = 1, .tp = 1};
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  EXPECT_FALSE((*session)->GetBatch(0).value().metadata_only);
  EXPECT_TRUE((*session)->GetBatch(1).value().metadata_only);
}

TEST(SessionTest, HybridStrategyWorksEndToEnd) {
  Session::Options options = SmallOptions();
  options.strategy = Session::StrategyKind::kHybridBalance;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  EXPECT_TRUE((*session)->GetBatch(0).ok());
}

TEST(SessionTest, CurriculumScheduleShiftsSources) {
  Session::Options options = SmallOptions();
  // Stage 0: only source 0; stage >= 2: only source 4.
  options.schedule = std::make_shared<StagedMix>(std::vector<StagedMix::Stage>{
      {0, {1, 0, 0, 0, 0}}, {2, {0, 0, 0, 0, 1}}});
  options.samples_per_step = 8;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());

  auto sources_served = [&]() {
    std::set<int32_t> sources;
    RankBatch batch = (*session)->GetBatch(0).value();
    for (const Microbatch& mb : batch.microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        for (uint64_t id : seq.sample_ids) {
          sources.insert(static_cast<int32_t>(id >> 40));  // generator id scheme
        }
      }
    }
    return sources;
  };
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  std::set<int32_t> early = sources_served();
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  std::set<int32_t> late = sources_served();
  EXPECT_TRUE(early.count(0) > 0 && early.size() <= 2);
  EXPECT_TRUE(late.count(4) > 0);
  EXPECT_EQ(late.count(0), 0u);
}

TEST(SessionTest, StepStatsExposePipelineObservability) {
  auto session = Session::Create(SmallOptions());
  ASSERT_TRUE(session.ok());
  const int kSteps = 3;
  for (int step = 0; step < kSteps; ++step) {
    ASSERT_TRUE((*session)->AdvanceStep().ok());
    const Session::StepStats& stats = (*session)->last_stats();
    EXPECT_EQ(stats.prefetch_depth, 2);  // SmallOptions default
    EXPECT_LE(stats.prefetch_queue_depth, 2u);  // bounded by the depth
    EXPECT_GT(stats.build_ahead_ms, 0.0);       // plan+pop+build was measured
    // Every AdvanceStep wait is classified as exactly one hit or stall.
    EXPECT_EQ(stats.prefetch_hits + stats.prefetch_stalls, step + 1);
  }
  PrefetchPipeline::Stats pipeline = (*session)->pipeline_stats();
  EXPECT_GE(pipeline.steps_produced, kSteps);
  EXPECT_GE(pipeline.steps_retired, kSteps - 1);  // lockstep retires as it goes
}

TEST(SessionTest, SynchronousDepthZeroAlwaysStalls) {
  Session::Options options = SmallOptions();
  options.prefetch_depth = 0;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  for (int step = 0; step < 2; ++step) {
    ASSERT_TRUE((*session)->AdvanceStep().ok());
  }
  // No build-ahead: every step was produced on demand.
  EXPECT_EQ((*session)->last_stats().prefetch_hits, 0);
  EXPECT_EQ((*session)->last_stats().prefetch_stalls, 2);
}

TEST(SessionTest, MemoryAccountedPerCategory) {
  auto session = Session::Create(SmallOptions());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  const MemoryAccountant& memory = (*session)->memory();
  EXPECT_GT(memory.CategoryTotal(MemCategory::kFileSocket), 0);
  EXPECT_GT(memory.CategoryTotal(MemCategory::kFileMetadata), 0);
  EXPECT_GT(memory.CategoryTotal(MemCategory::kWorkerContext), 0);
  EXPECT_GT(memory.CategoryTotal(MemCategory::kBatchBuffer), 0);
}

TEST(SessionTest, FaultRecoveryKeepsDelivering) {
  Session::Options options = SmallOptions();
  options.enable_fault_tolerance = true;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  Result<std::string> promoted = (*session)->KillAndRecoverLoader(0);
  ASSERT_TRUE(promoted.ok());
  EXPECT_NE(promoted->find("shadow_loader/"), std::string::npos);
  // Delivery continues across the failure.
  for (int step = 0; step < 3; ++step) {
    ASSERT_TRUE((*session)->AdvanceStep().ok());
    EXPECT_TRUE((*session)->GetBatch(0).ok());
  }
}

TEST(SessionTest, FaultRecoveryRequiresFtEnabled) {
  auto session = Session::Create(SmallOptions());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->KillAndRecoverLoader(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SessionTest, EmptyCorpusRejected) {
  Session::Options options;
  options.spec = {.dp = 1, .pp = 1, .cp = 1, .tp = 1};
  EXPECT_EQ(Session::Create(options).status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, AutoPartitioningProducedPartitions) {
  auto session = Session::Create(SmallOptions());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->partitions().size(), 5u);
  for (const LoaderPartition& p : (*session)->partitions()) {
    EXPECT_GE(p.num_actors, 1);
    EXPECT_GE(p.workers_per_actor, 1);
  }
}

}  // namespace
}  // namespace msd
