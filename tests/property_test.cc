// Property-style parameterized sweeps over the core invariants:
//  - sequence packing never overflows and never loses samples,
//  - CP slicing covers every token exactly once for any (length, cp, mode),
//  - every balancer conserves mass and respects bin bounds across skews,
//  - MSDF files round-trip arbitrary row content,
//  - plans round-trip serialization for arbitrary mesh shapes,
//  - the watchdog promotes shadows exactly for stale loaders.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "src/constructor/data_constructor.h"
#include "src/data/microbatch.h"
#include "src/ft/watchdog.h"
#include "src/plan/dgraph.h"
#include "src/storage/columnar.h"

namespace msd {
namespace {

// ---------------------------------------------------------------- packing --
struct PackParam {
  int32_t max_seq_len;
  int32_t samples;
  double sigma;  // lognormal length skew
  uint64_t seed;
};

class PackingSweep : public ::testing::TestWithParam<PackParam> {};

TEST_P(PackingSweep, NoOverflowNoLossAndPositions) {
  PackParam p = GetParam();
  Rng rng(p.seed);
  std::vector<SampleMeta> metas;
  for (int32_t i = 0; i < p.samples; ++i) {
    SampleMeta meta;
    meta.sample_id = static_cast<uint64_t>(i + 1);
    meta.text_tokens =
        std::max<int32_t>(1, static_cast<int32_t>(rng.LogNormal(4.0, p.sigma)));
    metas.push_back(meta);
  }
  auto sequences = PackSequences(metas, p.max_seq_len);
  std::set<uint64_t> placed;
  for (const PackedSequence& seq : sequences) {
    EXPECT_LE(seq.total_tokens, p.max_seq_len);
    EXPECT_GT(seq.total_tokens, 0);
    EXPECT_EQ(seq.total_tokens,
              std::accumulate(seq.segment_lengths.begin(), seq.segment_lengths.end(), 0));
    for (uint64_t id : seq.sample_ids) {
      EXPECT_TRUE(placed.insert(id).second) << "sample packed twice";
    }
    auto positions = RopePositions(seq);
    EXPECT_EQ(static_cast<int32_t>(positions.size()), seq.total_tokens);
    // Positions restart at 0 on each segment and never exceed segment length.
    size_t cursor = 0;
    for (int32_t len : seq.segment_lengths) {
      EXPECT_EQ(positions[cursor], 0);
      EXPECT_EQ(positions[cursor + static_cast<size_t>(len) - 1], len - 1);
      cursor += static_cast<size_t>(len);
    }
  }
  EXPECT_EQ(placed.size(), static_cast<size_t>(p.samples));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PackingSweep,
                         ::testing::Values(PackParam{128, 50, 0.5, 1},
                                           PackParam{1024, 200, 1.0, 2},
                                           PackParam{1024, 200, 2.5, 3},
                                           PackParam{4096, 500, 1.5, 4},
                                           PackParam{32768, 100, 3.0, 5},
                                           PackParam{64, 300, 2.0, 6}));

// ------------------------------------------------------------- CP slicing --
struct CpParam {
  int32_t padded_len;
  int32_t cp;
  CpSplitMode mode;
};

class CpSliceSweep : public ::testing::TestWithParam<CpParam> {};

TEST_P(CpSliceSweep, ExactDisjointCoverage) {
  CpParam p = GetParam();
  std::vector<int> owner(static_cast<size_t>(p.padded_len), -1);
  for (int32_t rank = 0; rank < p.cp; ++rank) {
    for (auto [begin, end] : CpSliceRanges(p.padded_len, p.cp, rank, p.mode)) {
      for (int32_t i = begin; i < end; ++i) {
        EXPECT_EQ(owner[static_cast<size_t>(i)], -1) << "token " << i << " double-owned";
        owner[static_cast<size_t>(i)] = rank;
      }
    }
  }
  for (int32_t i = 0; i < p.padded_len; ++i) {
    EXPECT_NE(owner[static_cast<size_t>(i)], -1) << "token " << i << " unowned";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpSliceSweep,
    ::testing::Values(CpParam{160, 4, CpSplitMode::kZigZag},
                      CpParam{160, 4, CpSplitMode::kContiguous},
                      CpParam{1024, 8, CpSplitMode::kZigZag},
                      CpParam{1024, 8, CpSplitMode::kContiguous},
                      CpParam{64, 2, CpSplitMode::kZigZag},
                      CpParam{4096, 16, CpSplitMode::kZigZag},
                      CpParam{12, 2, CpSplitMode::kContiguous}));

// -------------------------------------------------------------- balancers --
struct BalParam {
  BalanceMethod method;
  int32_t bins;
  uint64_t seed;
};

class BalancerSweep : public ::testing::TestWithParam<BalParam> {};

TEST_P(BalancerSweep, MassConservedAndBounded) {
  BalParam p = GetParam();
  Rng rng(p.seed);
  std::vector<double> costs;
  for (int i = 0; i < 333; ++i) {
    costs.push_back(rng.LogNormal(0.0, 1.7));
  }
  auto assignment = AssignToBins(costs, p.bins, p.method);
  auto loads = BinLoads(costs, assignment, p.bins);
  EXPECT_NEAR(std::accumulate(loads.begin(), loads.end(), 0.0),
              std::accumulate(costs.begin(), costs.end(), 0.0), 1e-9);
  // Any sane balancer beats the worst case of one hot bin.
  EXPECT_LT(Imbalance(loads), static_cast<double>(p.bins));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BalancerSweep,
    ::testing::Values(BalParam{BalanceMethod::kGreedy, 7, 11},
                      BalParam{BalanceMethod::kKarmarkarKarp, 7, 11},
                      BalParam{BalanceMethod::kInterleave, 7, 11},
                      BalParam{BalanceMethod::kZigZag, 7, 11},
                      BalParam{BalanceMethod::kVShape, 7, 11},
                      BalParam{BalanceMethod::kGreedy, 64, 13},
                      BalParam{BalanceMethod::kKarmarkarKarp, 64, 13},
                      BalParam{BalanceMethod::kInterleave, 64, 13}));

// ------------------------------------------------------------------- MSDF --
class MsdfRoundTripSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(MsdfRoundTripSweep, ArbitraryRowsSurvive) {
  int64_t group_bytes = GetParam();
  Rng rng(static_cast<uint64_t>(group_bytes));
  Schema schema{{{"blob", FieldType::kBytes}}};
  MsdfWriter writer(schema, {.target_row_group_bytes = group_bytes});
  std::vector<std::string> rows;
  for (int i = 0; i < 100; ++i) {
    std::string row(static_cast<size_t>(rng.UniformInt(0, 200)), '\0');
    for (char& c : row) {
      c = static_cast<char>(rng.NextU32() & 0xFF);  // arbitrary binary content
    }
    rows.push_back(row);
    writer.AppendRow(row);
  }
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f", writer.Finish()).ok());
  MsdfReader reader = MsdfReader::Open(store, "f", &acc, 0).value();
  EXPECT_EQ(reader.info().total_rows, 100);
  size_t next = 0;
  for (size_t g = 0; g < reader.info().row_groups.size(); ++g) {
    Result<std::vector<std::string>> group = reader.ReadRowGroup(g);
    ASSERT_TRUE(group.ok());
    for (const std::string& row : group.value()) {
      ASSERT_LT(next, rows.size());
      EXPECT_EQ(row, rows[next++]);
    }
  }
  EXPECT_EQ(next, rows.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MsdfRoundTripSweep,
                         ::testing::Values(64, 512, 4096, 65536, 16777216));

// ------------------------------------------------------------------ plans --
class PlanRoundTripSweep : public ::testing::TestWithParam<ParallelismSpec> {};

TEST_P(PlanRoundTripSweep, SerializeDeserializeIdentity) {
  ParallelismSpec spec = GetParam();
  auto tree = ClientPlaceTree::FromDeviceMesh(spec, 4);
  std::vector<BufferInfo> buffers(2);
  Rng rng(3);
  uint64_t id = 1;
  for (int32_t s = 0; s < 2; ++s) {
    buffers[s].loader_id = s;
    buffers[s].source_id = s;
    for (int i = 0; i < 24; ++i) {
      SampleMeta meta;
      meta.sample_id = id++;
      meta.source_id = s;
      meta.text_tokens = static_cast<int32_t>(rng.UniformInt(1, 4096));
      buffers[s].samples.push_back(meta);
    }
  }
  DGraph g = DGraph::FromBufferInfos(buffers);
  g.Init(&tree);
  ASSERT_TRUE(g.Distribute(Axis::kCP).ok());
  ASSERT_TRUE(g.Cost([](const SampleMeta& m) {
                 return CostEntry{static_cast<double>(m.TotalTokens()), 0.0};
               }).ok());
  ASSERT_TRUE(g.Balance().ok());
  g.BroadcastAt(Axis::kTP);
  LoadingPlan plan = g.Plan(9).value();
  Result<LoadingPlan> parsed = LoadingPlan::Deserialize(plan.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Serialize(), plan.Serialize());  // byte-identical fixpoint
  EXPECT_EQ(parsed->num_buckets, tree.NumBuckets(Axis::kCP));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanRoundTripSweep,
                         ::testing::Values(ParallelismSpec{1, 1, 1, 1},
                                           ParallelismSpec{2, 2, 2, 2},
                                           ParallelismSpec{3, 1, 4, 2},
                                           ParallelismSpec{8, 2, 1, 4}));

// --------------------------------------------------------------- watchdog --
TEST(WatchdogTest, PromotesOnlyStaleLoaders) {
  MemoryAccountant memory;
  ObjectStore store(&memory);
  SourceSpec spec = MakeCoyo700m().sources[0];
  spec.num_files = 1;
  spec.rows_per_file = 16;
  ASSERT_TRUE(WriteSourceFiles(store, spec, 7).ok());

  ActorSystem system;
  auto make = [&](int32_t id, bool shadow) {
    SourceLoaderConfig config;
    config.loader_id = id;
    config.spec = spec;
    config.files = {SourceFileName(spec, 0)};
    config.num_workers = 1;
    config.buffer_low_watermark = 4;
    config.is_shadow = shadow;
    config.name_override = (shadow ? std::string("shadow#") : std::string("primary#")) +
                           std::to_string(id);
    auto loader = system.Spawn<SourceLoader>(config, &store, &memory);
    EXPECT_TRUE(system.Ask<Status>(*loader, [l = loader.get()] { return l->Open(); }).ok());
    return loader;
  };
  auto p0 = make(0, false);
  auto s0 = make(0, true);
  auto p1 = make(1, false);
  auto s1 = make(1, true);

  FaultToleranceManager ft({}, &system);
  ft.RegisterPair(p0.get(), s0.get());
  ft.RegisterPair(p1.get(), s1.get());
  Watchdog watchdog(&system, &ft, /*heartbeat_timeout_ms=*/1000);

  // p0 heartbeats recently; p1 went silent long ago.
  system.gcs().Heartbeat("primary#0", 10'000);
  system.gcs().Heartbeat("primary#1", 1'000);
  // Shadows and other actors heartbeat too, so only primaries can go stale.
  system.gcs().Heartbeat("shadow#0", 10'000);
  system.gcs().Heartbeat("shadow#1", 10'000);

  std::vector<std::string> promoted = watchdog.ScanAndRecover(/*now_ms=*/10'500);
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0], "shadow#1");
  EXPECT_EQ(watchdog.detections(), 1);
  EXPECT_FALSE(system.gcs().IsAlive("primary#1"));
  EXPECT_TRUE(system.gcs().IsAlive("primary#0"));
  // Second scan: nothing new (the dead primary is excluded from staleness).
  EXPECT_TRUE(watchdog.ScanAndRecover(10'600).empty());
}

}  // namespace
}  // namespace msd
