// Shared test helper: full byte-level RankBatch comparison — metadata,
// packing shape, token/position payloads, and per-segment pixel payloads.
// Every suite that asserts stream identity (dataplane, pipeline, io,
// checkpoint, kill -9) uses THIS helper, so a new payload field added to
// PackedSequence only needs one comparison site updated.
#ifndef TESTS_BATCH_IDENTITY_H_
#define TESTS_BATCH_IDENTITY_H_

#include <gtest/gtest.h>

#include "src/constructor/data_constructor.h"

namespace msd {
namespace testing {

inline void ExpectBatchesIdentical(const RankBatch& got, const RankBatch& want) {
  EXPECT_EQ(got.rank, want.rank);
  EXPECT_EQ(got.step, want.step);
  EXPECT_EQ(got.metadata_only, want.metadata_only);
  EXPECT_EQ(got.payload_bytes, want.payload_bytes);
  ASSERT_EQ(got.microbatches.size(), want.microbatches.size());
  for (size_t m = 0; m < got.microbatches.size(); ++m) {
    const Microbatch& gm = got.microbatches[m];
    const Microbatch& wm = want.microbatches[m];
    EXPECT_EQ(gm.microbatch_index, wm.microbatch_index);
    ASSERT_EQ(gm.sequences.size(), wm.sequences.size());
    for (size_t s = 0; s < gm.sequences.size(); ++s) {
      const PackedSequence& gs = gm.sequences[s];
      const PackedSequence& ws = wm.sequences[s];
      EXPECT_EQ(gs.sample_ids, ws.sample_ids);
      EXPECT_EQ(gs.segment_lengths, ws.segment_lengths);
      EXPECT_EQ(gs.total_tokens, ws.total_tokens);
      EXPECT_EQ(gs.padded_to, ws.padded_to);
      EXPECT_EQ(gs.tokens.ToVector(), ws.tokens.ToVector());
      EXPECT_EQ(gs.position_ids.ToVector(), ws.position_ids.ToVector());
      // Pixel payloads (multimodal zero-copy plane) must match byte-for-byte.
      ASSERT_EQ(gs.pixel_segments.size(), ws.pixel_segments.size());
      for (size_t p = 0; p < gs.pixel_segments.size(); ++p) {
        EXPECT_EQ(gs.pixel_segments[p].ToVector(), ws.pixel_segments[p].ToVector());
      }
    }
  }
}

}  // namespace testing
}  // namespace msd

#endif  // TESTS_BATCH_IDENTITY_H_
