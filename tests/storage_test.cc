#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <limits>

#include "src/actor/gcs.h"
#include "src/loader/source_loader.h"
#include "src/plan/dgraph.h"
#include "src/storage/columnar.h"
#include "src/storage/memory_model.h"
#include "src/storage/object_store.h"
#include "src/storage/wire.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir() { return testing::ScratchDir("store"); }

TEST(WireTest, RoundTripAllTypes) {
  WireWriter w;
  w.PutU8(200);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x123456789ABCDEF0ULL);
  w.PutI64(-42);
  w.PutF64(3.25);
  w.PutBytes("hello");
  std::string buf = w.Take();
  WireReader r(buf);
  EXPECT_EQ(r.GetU8(), 200);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEF);
  EXPECT_EQ(r.GetU64(), 0x123456789ABCDEF0ULL);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(r.GetF64(), 3.25);
  EXPECT_EQ(r.GetBytes(), "hello");
  EXPECT_TRUE(r.Ok());
}

TEST(WireTest, TruncationSetsError) {
  WireWriter w;
  w.PutU32(7);
  std::string buf = w.Take();
  WireReader r(buf);
  r.GetU64();  // longer than what was written
  EXPECT_FALSE(r.Ok());
}

TEST(WireTest, OversizedBytesLengthFails) {
  WireWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow, but none do
  std::string buf = w.Take();
  WireReader r(buf);
  r.GetBytes();
  EXPECT_FALSE(r.Ok());
}

TEST(WireTest, GetBytesViewOversizedReturnsEmptyAndFails) {
  WireWriter w;
  w.PutU32(0xFFFFFFFF);  // absurd length prefix
  w.PutU64(7);           // trailing bytes the view must NOT reach into
  std::string buf = w.Take();
  WireReader r(buf);
  std::string_view view = r.GetBytesView();
  EXPECT_TRUE(view.empty());
  EXPECT_FALSE(r.Ok());
  EXPECT_EQ(r.remaining(), 0u);  // a failed reader yields nothing further
  EXPECT_EQ(r.GetU64(), 0u);     // subsequent reads are zeroed, not OOB
}

TEST(WireTest, RemainingTracksPosition) {
  WireWriter w;
  w.PutU32(1);
  w.PutU64(2);
  std::string buf = w.Take();
  WireReader r(buf);
  EXPECT_EQ(r.remaining(), 12u);
  r.GetU32();
  EXPECT_EQ(r.remaining(), 8u);
  r.GetU64();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.Ok());
}

// Every decode path must return Status on truncated or corrupt input —
// never read out of bounds, never let a hostile count drive a huge
// allocation.
TEST(WireDecodeTest, LoadingPlanTruncationFailsAtEveryPrefix) {
  LoadingPlan plan;
  plan.step = 9;
  plan.num_buckets = 2;
  plan.num_microbatches = 2;
  plan.broadcast_axes = {Axis::kTP};
  for (uint64_t id = 1; id <= 8; ++id) {
    SliceAssignment a;
    a.sample_id = id;
    a.bucket = static_cast<int32_t>(id % 2);
    a.microbatch = static_cast<int32_t>(id % 2);
    plan.assignments.push_back(a);
  }
  plan.fetching_ranks = {0, 1, 2, 3};
  plan.subplans["encoder"] = LoadingPlan{};
  std::string bytes = plan.Serialize();
  ASSERT_TRUE(LoadingPlan::Deserialize(bytes).ok());
  for (size_t len = 0; len < bytes.size(); len += 3) {
    Result<LoadingPlan> truncated =
        LoadingPlan::Deserialize(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(truncated.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);
  }
}

TEST(WireDecodeTest, LoadingPlanCorruptCountsFailCleanly) {
  LoadingPlan plan;
  plan.step = 3;
  std::string bytes = plan.Serialize();
  // Offset of the assignment count: step(8) + axis(1) + group(4) +
  // buckets(4) + microbatches(4) + pack-len(4) + mix-phase(4) +
  // axis-count(4, == 0 here).
  const size_t count_offset = 8 + 1 + 4 + 4 + 4 + 4 + 4 + 4;
  std::string corrupt = bytes;
  for (size_t i = 0; i < 4; ++i) {
    corrupt[count_offset + i] = static_cast<char>(0xFF);
  }
  Result<LoadingPlan> decoded = LoadingPlan::Deserialize(corrupt);
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WireDecodeTest, LoaderSnapshotCorruptAndTruncatedInputFails) {
  LoaderSnapshot snap;
  snap.origin_file = 2;
  snap.origin_group = 5;
  snap.consumed_ids = {10, 11, 12};
  std::string bytes = snap.Serialize();
  Result<LoaderSnapshot> ok = LoaderSnapshot::Deserialize(bytes);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->consumed_ids, snap.consumed_ids);
  // Truncate mid-id-list.
  EXPECT_EQ(LoaderSnapshot::Deserialize(std::string_view(bytes).substr(0, bytes.size() - 5))
                .status()
                .code(),
            StatusCode::kDataLoss);
  // Corrupt the id count to an absurd value.
  std::string corrupt = bytes;
  for (size_t i = 0; i < 4; ++i) {
    corrupt[16 + i] = static_cast<char>(0xFF);  // count follows two i64 cursors
  }
  EXPECT_EQ(LoaderSnapshot::Deserialize(corrupt).status().code(), StatusCode::kDataLoss);
}

TEST(WireDecodeTest, SchemaCorruptFieldCountFails) {
  Schema schema{{{"id", FieldType::kInt64}}};
  std::string bytes = schema.Serialize();
  for (size_t i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>(0xFF);
  }
  EXPECT_EQ(Schema::Deserialize(bytes).status().code(), StatusCode::kDataLoss);
}

TEST(MemoryAccountantTest, AddAndSubPerNode) {
  MemoryAccountant acc;
  acc.Add(0, MemCategory::kFileSocket, 100);
  acc.Add(1, MemCategory::kFileSocket, 50);
  acc.Add(0, MemCategory::kBatchBuffer, 25);
  EXPECT_EQ(acc.NodeTotal(0), 125);
  EXPECT_EQ(acc.NodeTotal(1), 50);
  EXPECT_EQ(acc.GrandTotal(), 175);
  EXPECT_EQ(acc.CategoryTotal(MemCategory::kFileSocket), 150);
  acc.Sub(0, MemCategory::kFileSocket, 100);
  EXPECT_EQ(acc.NodeTotal(0), 25);
}

TEST(MemoryAccountantTest, PeakTracksHighWater) {
  MemoryAccountant acc;
  acc.Add(0, MemCategory::kRowGroupBuffer, 1000);
  acc.Sub(0, MemCategory::kRowGroupBuffer, 900);
  acc.Add(0, MemCategory::kRowGroupBuffer, 200);
  EXPECT_EQ(acc.GrandTotal(), 300);
  EXPECT_EQ(acc.PeakGrandTotal(), 1000);
}

TEST(MemoryAccountantTest, MeanPerNode) {
  MemoryAccountant acc;
  acc.Add(0, MemCategory::kFileSocket, 100);
  acc.Add(1, MemCategory::kFileSocket, 300);
  EXPECT_DOUBLE_EQ(acc.MeanPerNode(), 200.0);
}

TEST(MemoryAccountantTest, ReportNamesCategories) {
  MemoryAccountant acc;
  acc.Add(0, MemCategory::kShadowLoader, kMiB);
  std::string report = acc.Report();
  EXPECT_NE(report.find("shadow_loader"), std::string::npos);
}

TEST(MemChargeTest, RaiiReleasesOnDestruction) {
  MemoryAccountant acc;
  {
    MemCharge charge(&acc, 0, MemCategory::kWorkerContext, 500);
    EXPECT_EQ(acc.GrandTotal(), 500);
  }
  EXPECT_EQ(acc.GrandTotal(), 0);
}

TEST(MemChargeTest, MoveTransfersOwnership) {
  MemoryAccountant acc;
  MemCharge a(&acc, 0, MemCategory::kWorkerContext, 500);
  MemCharge b = std::move(a);
  EXPECT_EQ(acc.GrandTotal(), 500);
  b.Release();
  EXPECT_EQ(acc.GrandTotal(), 0);
}

TEST(MemChargeTest, MoveAssignReleasesOld) {
  MemoryAccountant acc;
  MemCharge a(&acc, 0, MemCategory::kWorkerContext, 500);
  MemCharge b(&acc, 0, MemCategory::kWorkerContext, 300);
  b = std::move(a);
  EXPECT_EQ(acc.GrandTotal(), 500);
}

TEST(ObjectStoreTest, PutGetDeleteList) {
  ObjectStore store;
  EXPECT_TRUE(store.Put("a/1", "xx").ok());
  EXPECT_TRUE(store.Put("a/2", "yyy").ok());
  EXPECT_TRUE(store.Put("b/1", "z").ok());
  EXPECT_TRUE(store.Exists("a/1"));
  EXPECT_EQ(store.List("a/").size(), 2u);
  EXPECT_EQ(store.TotalBytes(), 6);
  EXPECT_TRUE(store.Delete("a/1").ok());
  EXPECT_FALSE(store.Exists("a/1"));
  EXPECT_EQ(store.Delete("a/1").code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, OpenChargesSocketBuffers) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f", "data").ok());
  {
    Result<FileHandle> handle = store.Open("f", 3);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(acc.NodeTotal(3), kSocketBufferBytes);
    EXPECT_EQ(acc.CategoryTotal(MemCategory::kFileSocket), kSocketBufferBytes);
  }
  EXPECT_EQ(acc.GrandTotal(), 0);
}

TEST(ObjectStoreTest, OpenMissingFails) {
  ObjectStore store;
  EXPECT_EQ(store.Open("ghost", 0).status().code(), StatusCode::kNotFound);
}

TEST(FileHandleTest, RangeReads) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("f", "0123456789").ok());
  FileHandle handle = store.Open("f", 0).value();
  EXPECT_EQ(handle.Read(2, 3).value(), "234");
  EXPECT_EQ(handle.Read(0, 10).value(), "0123456789");
  EXPECT_EQ(handle.Read(5, 6).status().code(), StatusCode::kOutOfRange);
}

TEST(ObjectStoreTest, RangedGetsAreOverflowSafe) {
  // A corrupt MSDF footer can carry row-group offsets near INT64_MAX; the
  // bounds check must reject them without computing offset + length.
  ObjectStore store;
  ASSERT_TRUE(store.Put("f", "0123456789").ok());
  EXPECT_EQ(store.Get("f", 2, 3).value(), "234");
  constexpr int64_t kHuge = std::numeric_limits<int64_t>::max() - 1;
  EXPECT_EQ(store.Get("f", kHuge, 100).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store.Get("f", 2, kHuge).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store.Get("f", -1, 2).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store.Get("f", 2, -2).status().code(), StatusCode::kOutOfRange);
  FileHandle handle = store.Open("f", 0).value();
  EXPECT_EQ(handle.Read(kHuge, 100).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(handle.Read(2, kHuge).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(store.SizeOf("f").value(), 10);
  EXPECT_EQ(store.SizeOf("ghost").status().code(), StatusCode::kNotFound);
}

TEST(ObjectStoreDiskTest, BlobsSurviveTheStoreInstance) {
  std::string dir = ScratchDir();
  {
    ObjectStore store(dir);
    ASSERT_TRUE(store.disk_backed());
    ASSERT_TRUE(store.Put("ckpt/a", "alpha").ok());
    ASSERT_TRUE(store.Put("ckpt/b", "beta").ok());
    ASSERT_TRUE(store.Put("top", "gamma").ok());
  }
  // A brand-new instance (a restarted process) sees everything.
  ObjectStore reopened(dir);
  EXPECT_TRUE(reopened.Exists("ckpt/a"));
  EXPECT_EQ(reopened.List("ckpt/"), (std::vector<std::string>{"ckpt/a", "ckpt/b"}));
  EXPECT_EQ(reopened.Open("ckpt/b", 0).value().Contents(), "beta");
  EXPECT_EQ(reopened.TotalBytes(), 14);
  EXPECT_TRUE(reopened.Delete("top").ok());
  EXPECT_FALSE(reopened.Exists("top"));
  fs::remove_all(dir);
}

TEST(ObjectStoreDiskTest, PutIsAtomicAndLeavesNoStagingDebris) {
  std::string dir = ScratchDir();
  ObjectStore store(dir);
  ASSERT_TRUE(store.Put("manifest", std::string(1 << 16, 'x')).ok());
  ASSERT_TRUE(store.Put("manifest", std::string(1 << 16, 'y')).ok());  // overwrite
  EXPECT_EQ(store.Open("manifest", 0).value().Contents()[0], 'y');
  // No temp files remain and none are listed: a reader can only ever see a
  // fully published blob (write-temp-then-rename).
  size_t files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      ++files;
      EXPECT_EQ(entry.path().filename().string().rfind(".staging-", 0), std::string::npos);
    }
  }
  EXPECT_EQ(files, 1u);
  fs::remove_all(dir);
}

TEST(ObjectStoreDiskTest, EscapingNamesAreRejected) {
  std::string dir = ScratchDir();
  ObjectStore store(dir);
  EXPECT_EQ(store.Put("../evil", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Put("/abs", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Put("a/../b", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Put(".staging-sneaky", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(store.Put("fine/name-1", "x").ok());
  fs::remove_all(dir);
}

TEST(GcsDurabilityTest, StateWritesThroughToAttachedStoreAtomically) {
  std::string dir = ScratchDir();
  ObjectStore durable(dir);
  {
    Gcs gcs;
    gcs.AttachDurableStore(&durable);
    gcs.PutState("ft/loader_snapshot/3", "snapshot-bytes");
    EXPECT_EQ(durable.Open("gcs/ft/loader_snapshot/3", 0).value().Contents(),
              "snapshot-bytes");
  }
  // A fresh Gcs (restarted coordinator) reads back through the store.
  ObjectStore reopened(dir);
  Gcs recovered;
  recovered.AttachDurableStore(&reopened);
  ASSERT_TRUE(recovered.GetState("ft/loader_snapshot/3").has_value());
  EXPECT_EQ(*recovered.GetState("ft/loader_snapshot/3"), "snapshot-bytes");
  EXPECT_FALSE(recovered.GetState("ft/loader_snapshot/9").has_value());
  fs::remove_all(dir);
}

TEST(SchemaTest, RoundTrip) {
  Schema schema{{{"id", FieldType::kInt64}, {"blob", FieldType::kBytes}}};
  Result<Schema> parsed = Schema::Deserialize(schema.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), schema);
}

class MsdfTest : public ::testing::Test {
 protected:
  Schema schema_{{{"row", FieldType::kBytes}}};

  std::string WriteFile(int rows, int64_t group_bytes) {
    MsdfWriter writer(schema_, {.target_row_group_bytes = group_bytes});
    for (int i = 0; i < rows; ++i) {
      writer.AppendRow("row-" + std::to_string(i));
    }
    return writer.Finish();
  }
};

TEST_F(MsdfTest, FooterDescribesFile) {
  std::string file = WriteFile(100, 64);
  Result<MsdfFileInfo> info = ReadMsdfFooter(file);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->total_rows, 100);
  EXPECT_GT(info->row_groups.size(), 1u);
  EXPECT_EQ(info->schema, schema_);
  int64_t rows = 0;
  for (const RowGroupMeta& g : info->row_groups) {
    rows += g.row_count;
  }
  EXPECT_EQ(rows, 100);
}

TEST_F(MsdfTest, SingleGroupWhenLarge) {
  std::string file = WriteFile(10, kMiB);
  Result<MsdfFileInfo> info = ReadMsdfFooter(file);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->row_groups.size(), 1u);
}

TEST_F(MsdfTest, ReaderReturnsRowsInOrder) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f.msdf", WriteFile(50, 128)).ok());
  Result<MsdfReader> reader = MsdfReader::Open(store, "f.msdf", &acc, 0);
  ASSERT_TRUE(reader.ok());
  int next = 0;
  for (size_t g = 0; g < reader->info().row_groups.size(); ++g) {
    auto rows = reader->ReadRowGroup(g);
    ASSERT_TRUE(rows.ok());
    for (const std::string& row : rows.value()) {
      EXPECT_EQ(row, "row-" + std::to_string(next++));
    }
  }
  EXPECT_EQ(next, 50);
}

TEST_F(MsdfTest, ReaderChargesMetadataAndBuffer) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f.msdf", WriteFile(50, 128)).ok());
  {
    MsdfReader reader = MsdfReader::Open(store, "f.msdf", &acc, 0).value();
    EXPECT_GT(acc.CategoryTotal(MemCategory::kFileMetadata), 0);
    EXPECT_EQ(acc.CategoryTotal(MemCategory::kRowGroupBuffer), 0);
    ASSERT_TRUE(reader.ReadRowGroup(0).ok());
    EXPECT_GT(acc.CategoryTotal(MemCategory::kRowGroupBuffer), 0);
    EXPECT_GT(reader.ResidentBytes(), kSocketBufferBytes);
    reader.ReleaseBuffer();
    EXPECT_EQ(acc.CategoryTotal(MemCategory::kRowGroupBuffer), 0);
  }
  EXPECT_EQ(acc.GrandTotal(), 0);
}

TEST_F(MsdfTest, ReadingNewGroupReplacesBufferCharge) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f.msdf", WriteFile(100, 64)).ok());
  MsdfReader reader = MsdfReader::Open(store, "f.msdf", &acc, 0).value();
  ASSERT_GE(reader.info().row_groups.size(), 2u);
  ASSERT_TRUE(reader.ReadRowGroup(0).ok());
  int64_t after_first = acc.CategoryTotal(MemCategory::kRowGroupBuffer);
  ASSERT_TRUE(reader.ReadRowGroup(1).ok());
  int64_t after_second = acc.CategoryTotal(MemCategory::kRowGroupBuffer);
  // One buffer resident at a time: totals stay within one group's size.
  EXPECT_EQ(after_second, reader.info().row_groups[1].bytes);
  EXPECT_EQ(after_first, reader.info().row_groups[0].bytes);
}

TEST_F(MsdfTest, CorruptFilesAreRejected) {
  EXPECT_FALSE(ReadMsdfFooter("short").ok());
  std::string file = WriteFile(10, kMiB);
  file[0] ^= 0x1;  // break head magic
  EXPECT_FALSE(ReadMsdfFooter(file).ok());
  std::string file2 = WriteFile(10, kMiB);
  file2[file2.size() - 1] ^= 0x1;  // break tail magic
  EXPECT_FALSE(ReadMsdfFooter(file2).ok());
}

TEST_F(MsdfTest, OutOfRangeGroupFails) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f.msdf", WriteFile(10, kMiB)).ok());
  MsdfReader reader = MsdfReader::Open(store, "f.msdf", &acc, 0).value();
  EXPECT_EQ(reader.ReadRowGroup(99).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace msd
