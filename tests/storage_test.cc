#include <gtest/gtest.h>

#include "src/storage/columnar.h"
#include "src/storage/memory_model.h"
#include "src/storage/object_store.h"
#include "src/storage/wire.h"

namespace msd {
namespace {

TEST(WireTest, RoundTripAllTypes) {
  WireWriter w;
  w.PutU8(200);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x123456789ABCDEF0ULL);
  w.PutI64(-42);
  w.PutF64(3.25);
  w.PutBytes("hello");
  std::string buf = w.Take();
  WireReader r(buf);
  EXPECT_EQ(r.GetU8(), 200);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEF);
  EXPECT_EQ(r.GetU64(), 0x123456789ABCDEF0ULL);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(r.GetF64(), 3.25);
  EXPECT_EQ(r.GetBytes(), "hello");
  EXPECT_TRUE(r.Ok());
}

TEST(WireTest, TruncationSetsError) {
  WireWriter w;
  w.PutU32(7);
  std::string buf = w.Take();
  WireReader r(buf);
  r.GetU64();  // longer than what was written
  EXPECT_FALSE(r.Ok());
}

TEST(WireTest, OversizedBytesLengthFails) {
  WireWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow, but none do
  std::string buf = w.Take();
  WireReader r(buf);
  r.GetBytes();
  EXPECT_FALSE(r.Ok());
}

TEST(MemoryAccountantTest, AddAndSubPerNode) {
  MemoryAccountant acc;
  acc.Add(0, MemCategory::kFileSocket, 100);
  acc.Add(1, MemCategory::kFileSocket, 50);
  acc.Add(0, MemCategory::kBatchBuffer, 25);
  EXPECT_EQ(acc.NodeTotal(0), 125);
  EXPECT_EQ(acc.NodeTotal(1), 50);
  EXPECT_EQ(acc.GrandTotal(), 175);
  EXPECT_EQ(acc.CategoryTotal(MemCategory::kFileSocket), 150);
  acc.Sub(0, MemCategory::kFileSocket, 100);
  EXPECT_EQ(acc.NodeTotal(0), 25);
}

TEST(MemoryAccountantTest, PeakTracksHighWater) {
  MemoryAccountant acc;
  acc.Add(0, MemCategory::kRowGroupBuffer, 1000);
  acc.Sub(0, MemCategory::kRowGroupBuffer, 900);
  acc.Add(0, MemCategory::kRowGroupBuffer, 200);
  EXPECT_EQ(acc.GrandTotal(), 300);
  EXPECT_EQ(acc.PeakGrandTotal(), 1000);
}

TEST(MemoryAccountantTest, MeanPerNode) {
  MemoryAccountant acc;
  acc.Add(0, MemCategory::kFileSocket, 100);
  acc.Add(1, MemCategory::kFileSocket, 300);
  EXPECT_DOUBLE_EQ(acc.MeanPerNode(), 200.0);
}

TEST(MemoryAccountantTest, ReportNamesCategories) {
  MemoryAccountant acc;
  acc.Add(0, MemCategory::kShadowLoader, kMiB);
  std::string report = acc.Report();
  EXPECT_NE(report.find("shadow_loader"), std::string::npos);
}

TEST(MemChargeTest, RaiiReleasesOnDestruction) {
  MemoryAccountant acc;
  {
    MemCharge charge(&acc, 0, MemCategory::kWorkerContext, 500);
    EXPECT_EQ(acc.GrandTotal(), 500);
  }
  EXPECT_EQ(acc.GrandTotal(), 0);
}

TEST(MemChargeTest, MoveTransfersOwnership) {
  MemoryAccountant acc;
  MemCharge a(&acc, 0, MemCategory::kWorkerContext, 500);
  MemCharge b = std::move(a);
  EXPECT_EQ(acc.GrandTotal(), 500);
  b.Release();
  EXPECT_EQ(acc.GrandTotal(), 0);
}

TEST(MemChargeTest, MoveAssignReleasesOld) {
  MemoryAccountant acc;
  MemCharge a(&acc, 0, MemCategory::kWorkerContext, 500);
  MemCharge b(&acc, 0, MemCategory::kWorkerContext, 300);
  b = std::move(a);
  EXPECT_EQ(acc.GrandTotal(), 500);
}

TEST(ObjectStoreTest, PutGetDeleteList) {
  ObjectStore store;
  EXPECT_TRUE(store.Put("a/1", "xx").ok());
  EXPECT_TRUE(store.Put("a/2", "yyy").ok());
  EXPECT_TRUE(store.Put("b/1", "z").ok());
  EXPECT_TRUE(store.Exists("a/1"));
  EXPECT_EQ(store.List("a/").size(), 2u);
  EXPECT_EQ(store.TotalBytes(), 6);
  EXPECT_TRUE(store.Delete("a/1").ok());
  EXPECT_FALSE(store.Exists("a/1"));
  EXPECT_EQ(store.Delete("a/1").code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, OpenChargesSocketBuffers) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f", "data").ok());
  {
    Result<FileHandle> handle = store.Open("f", 3);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(acc.NodeTotal(3), kSocketBufferBytes);
    EXPECT_EQ(acc.CategoryTotal(MemCategory::kFileSocket), kSocketBufferBytes);
  }
  EXPECT_EQ(acc.GrandTotal(), 0);
}

TEST(ObjectStoreTest, OpenMissingFails) {
  ObjectStore store;
  EXPECT_EQ(store.Open("ghost", 0).status().code(), StatusCode::kNotFound);
}

TEST(FileHandleTest, RangeReads) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("f", "0123456789").ok());
  FileHandle handle = store.Open("f", 0).value();
  EXPECT_EQ(handle.Read(2, 3).value(), "234");
  EXPECT_EQ(handle.Read(0, 10).value(), "0123456789");
  EXPECT_EQ(handle.Read(5, 6).status().code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, RoundTrip) {
  Schema schema{{{"id", FieldType::kInt64}, {"blob", FieldType::kBytes}}};
  Result<Schema> parsed = Schema::Deserialize(schema.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), schema);
}

class MsdfTest : public ::testing::Test {
 protected:
  Schema schema_{{{"row", FieldType::kBytes}}};

  std::string WriteFile(int rows, int64_t group_bytes) {
    MsdfWriter writer(schema_, {.target_row_group_bytes = group_bytes});
    for (int i = 0; i < rows; ++i) {
      writer.AppendRow("row-" + std::to_string(i));
    }
    return writer.Finish();
  }
};

TEST_F(MsdfTest, FooterDescribesFile) {
  std::string file = WriteFile(100, 64);
  Result<MsdfFileInfo> info = ReadMsdfFooter(file);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->total_rows, 100);
  EXPECT_GT(info->row_groups.size(), 1u);
  EXPECT_EQ(info->schema, schema_);
  int64_t rows = 0;
  for (const RowGroupMeta& g : info->row_groups) {
    rows += g.row_count;
  }
  EXPECT_EQ(rows, 100);
}

TEST_F(MsdfTest, SingleGroupWhenLarge) {
  std::string file = WriteFile(10, kMiB);
  Result<MsdfFileInfo> info = ReadMsdfFooter(file);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->row_groups.size(), 1u);
}

TEST_F(MsdfTest, ReaderReturnsRowsInOrder) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f.msdf", WriteFile(50, 128)).ok());
  Result<MsdfReader> reader = MsdfReader::Open(store, "f.msdf", &acc, 0);
  ASSERT_TRUE(reader.ok());
  int next = 0;
  for (size_t g = 0; g < reader->info().row_groups.size(); ++g) {
    auto rows = reader->ReadRowGroup(g);
    ASSERT_TRUE(rows.ok());
    for (const std::string& row : rows.value()) {
      EXPECT_EQ(row, "row-" + std::to_string(next++));
    }
  }
  EXPECT_EQ(next, 50);
}

TEST_F(MsdfTest, ReaderChargesMetadataAndBuffer) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f.msdf", WriteFile(50, 128)).ok());
  {
    MsdfReader reader = MsdfReader::Open(store, "f.msdf", &acc, 0).value();
    EXPECT_GT(acc.CategoryTotal(MemCategory::kFileMetadata), 0);
    EXPECT_EQ(acc.CategoryTotal(MemCategory::kRowGroupBuffer), 0);
    ASSERT_TRUE(reader.ReadRowGroup(0).ok());
    EXPECT_GT(acc.CategoryTotal(MemCategory::kRowGroupBuffer), 0);
    EXPECT_GT(reader.ResidentBytes(), kSocketBufferBytes);
    reader.ReleaseBuffer();
    EXPECT_EQ(acc.CategoryTotal(MemCategory::kRowGroupBuffer), 0);
  }
  EXPECT_EQ(acc.GrandTotal(), 0);
}

TEST_F(MsdfTest, ReadingNewGroupReplacesBufferCharge) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f.msdf", WriteFile(100, 64)).ok());
  MsdfReader reader = MsdfReader::Open(store, "f.msdf", &acc, 0).value();
  ASSERT_GE(reader.info().row_groups.size(), 2u);
  ASSERT_TRUE(reader.ReadRowGroup(0).ok());
  int64_t after_first = acc.CategoryTotal(MemCategory::kRowGroupBuffer);
  ASSERT_TRUE(reader.ReadRowGroup(1).ok());
  int64_t after_second = acc.CategoryTotal(MemCategory::kRowGroupBuffer);
  // One buffer resident at a time: totals stay within one group's size.
  EXPECT_EQ(after_second, reader.info().row_groups[1].bytes);
  EXPECT_EQ(after_first, reader.info().row_groups[0].bytes);
}

TEST_F(MsdfTest, CorruptFilesAreRejected) {
  EXPECT_FALSE(ReadMsdfFooter("short").ok());
  std::string file = WriteFile(10, kMiB);
  file[0] ^= 0x1;  // break head magic
  EXPECT_FALSE(ReadMsdfFooter(file).ok());
  std::string file2 = WriteFile(10, kMiB);
  file2[file2.size() - 1] ^= 0x1;  // break tail magic
  EXPECT_FALSE(ReadMsdfFooter(file2).ok());
}

TEST_F(MsdfTest, OutOfRangeGroupFails) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  ASSERT_TRUE(store.Put("f.msdf", WriteFile(10, kMiB)).ok());
  MsdfReader reader = MsdfReader::Open(store, "f.msdf", &acc, 0).value();
  EXPECT_EQ(reader.ReadRowGroup(99).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace msd
