#include <gtest/gtest.h>

#include "src/planner/autoscaler.h"

namespace msd {
namespace {

std::vector<SourceCostProfile> MakeProfiles(std::vector<double> costs) {
  std::vector<SourceCostProfile> profiles;
  for (size_t i = 0; i < costs.size(); ++i) {
    profiles.push_back({static_cast<int32_t>(i), costs[i], 0});
  }
  return profiles;
}

TEST(AutoPartitionTest, OnePartitionPerSource) {
  auto partitions =
      AutoPartitionSources(MakeProfiles({100, 10, 1, 50}), ClusterResources{}, {});
  EXPECT_EQ(partitions.size(), 4u);
  std::set<int32_t> ids;
  for (const LoaderPartition& p : partitions) {
    ids.insert(p.source_id);
    EXPECT_GE(p.num_actors, 1);
    EXPECT_GE(p.workers_per_actor, 1);
  }
  EXPECT_EQ(ids.size(), 4u);
}

TEST(AutoPartitionTest, ExpensiveSourcesGetMoreWorkers) {
  ClusterResources resources;
  resources.total_workers = 256;
  auto partitions =
      AutoPartitionSources(MakeProfiles({1000, 900, 10, 8}), resources, {.num_clusters = 2});
  int32_t expensive = 0;
  int32_t cheap = 0;
  for (const LoaderPartition& p : partitions) {
    if (p.source_id <= 1) {
      expensive += p.TotalWorkers();
    } else {
      cheap += p.TotalWorkers();
    }
  }
  EXPECT_GT(expensive, cheap);
}

TEST(AutoPartitionTest, WactorBoundSplitsIntoActors) {
  ClusterResources resources;
  resources.total_workers = 1000;
  PartitionBounds bounds;
  bounds.wactor = 4;
  bounds.wsrc = 32;
  auto partitions =
      AutoPartitionSources(MakeProfiles({1000, 1}), resources, bounds);
  const LoaderPartition& heavy = partitions[0];  // sorted by cost desc
  EXPECT_EQ(heavy.source_id, 0);
  EXPECT_LE(heavy.workers_per_actor, 4);
  EXPECT_GT(heavy.num_actors, 1);
  EXPECT_LE(heavy.TotalWorkers(), 32 + 4);  // wsrc cap (actor rounding slack)
}

TEST(AutoPartitionTest, WorkerBudgetShrinksAllocations) {
  ClusterResources tight;
  tight.total_workers = 8;
  tight.constructor_workers = 2;
  tight.planner_workers = 1;
  auto partitions = AutoPartitionSources(MakeProfiles({100, 80, 60, 40}), tight, {});
  EXPECT_LE(TotalWorkers(partitions), 16);  // shrunk near the available budget
}

TEST(AutoPartitionTest, MemoryConstraintAddsActors) {
  ClusterResources resources;
  resources.node_memory_budget = 1000;
  std::vector<SourceCostProfile> profiles = MakeProfiles({10});
  profiles[0].memory_bytes = 10000;  // 10x the per-node budget
  auto partitions = AutoPartitionSources(profiles, resources, {});
  EXPECT_GE(partitions[0].num_actors, 10);
}

TEST(AutoPartitionTest, ClustersAssignedByCostRank) {
  auto partitions = AutoPartitionSources(MakeProfiles({100, 90, 2, 1}), ClusterResources{},
                                         {.num_clusters = 2});
  EXPECT_EQ(partitions[0].cluster, 0);
  EXPECT_EQ(partitions[1].cluster, 0);
  EXPECT_EQ(partitions[2].cluster, 1);
  EXPECT_EQ(partitions[3].cluster, 1);
}

TEST(MixtureScalerTest, ScaleUpAfterConsecutiveIntervals) {
  ScalerOptions options;
  options.consecutive = 3;
  options.actor_budget = 10;
  options.max_actors = 8;
  MixtureDrivenScaler scaler({1, 1}, options);
  // Source 0 jumps to 90% demand: desired ~9 actors (clamped to 8).
  std::vector<ScalingDecision> d1 = scaler.Observe({0.9, 0.1});
  std::vector<ScalingDecision> d2 = scaler.Observe({0.9, 0.1});
  EXPECT_TRUE(d1.empty());
  EXPECT_TRUE(d2.empty());
  std::vector<ScalingDecision> d3 = scaler.Observe({0.9, 0.1});
  ASSERT_FALSE(d3.empty());
  EXPECT_EQ(d3[0].source_id, 0);
  EXPECT_GT(d3[0].delta_actors, 0);
  EXPECT_GT(scaler.actor_counts()[0], 1);
}

TEST(MixtureScalerTest, ReclaimOnDecliningDemand) {
  ScalerOptions options;
  options.consecutive = 2;
  options.actor_budget = 10;
  MixtureDrivenScaler scaler({8, 1}, options);
  scaler.Observe({0.1, 0.9});
  auto decisions = scaler.Observe({0.1, 0.9});
  bool reclaimed = false;
  for (const ScalingDecision& d : decisions) {
    if (d.source_id == 0 && d.delta_actors < 0) {
      reclaimed = true;
    }
  }
  EXPECT_TRUE(reclaimed);
  EXPECT_LT(scaler.actor_counts()[0], 8);
}

TEST(MixtureScalerTest, StableDemandNoChurn) {
  ScalerOptions options;
  options.consecutive = 2;
  options.actor_budget = 4;
  MixtureDrivenScaler scaler({2, 2}, options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(scaler.Observe({0.5, 0.5}).empty());
  }
  EXPECT_EQ(scaler.total_rescales(), 0);
}

TEST(MixtureScalerTest, EmaSmoothsSpikes) {
  ScalerOptions options;
  options.ema_alpha = 0.2;
  options.consecutive = 3;
  options.actor_budget = 10;
  MixtureDrivenScaler scaler({5, 5}, options);
  scaler.Observe({0.5, 0.5});
  // One-interval spike does not move the EMA much...
  scaler.Observe({1.0, 0.0});
  EXPECT_LT(scaler.ema_weights()[0], 0.65);
  // ...and certainly does not trigger scaling.
  EXPECT_EQ(scaler.total_rescales(), 0);
}

TEST(MixtureScalerTest, BoundsRespected) {
  ScalerOptions options;
  options.consecutive = 1;
  options.actor_budget = 100;
  options.min_actors = 2;
  options.max_actors = 6;
  MixtureDrivenScaler scaler({4, 4}, options);
  scaler.Observe({1.0, 0.0001});
  EXPECT_LE(scaler.actor_counts()[0], 6);
  scaler.Observe({1.0, 0.0001});
  EXPECT_GE(scaler.actor_counts()[1], 2);
}

TEST(MixtureScalerTest, WeightsNormalizedInternally) {
  ScalerOptions options;
  options.consecutive = 1;
  options.actor_budget = 10;
  MixtureDrivenScaler scaler({5, 5}, options);
  // Unnormalized weights behave like their normalized form.
  scaler.Observe({900.0, 100.0});
  EXPECT_NEAR(scaler.ema_weights()[0], 0.9, 1e-9);
}

}  // namespace
}  // namespace msd
