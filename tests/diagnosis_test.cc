// The diagnosis plane (src/telemetry/ stage two) end to end:
//  - StallAttribution: a synthetic span ring with known ground truth — the
//    exclusive buckets reproduce it exactly and sum to the step wall time,
//    io spans are clipped to the pop window, foreign tenants are ignored,
//    overlapping snapshots finalize each step once, and the windowed verdict
//    flips io-bound <-> decode-bound when the fixture shifts;
//  - AnomalyDetector: baselines arm after warmup, steady-state noise never
//    fires, K consecutive violations fire exactly once, M consecutive healthy
//    steps clear, unobservable signals are skipped, and the EWMA does not
//    learn from violating observations;
//  - FlightRecorder: bundles land atomically with MANIFEST.json written last,
//    rate-limited dumps are suppressed-and-counted, retention keeps only the
//    newest bundles, and a restarted recorder resumes numbering;
//  - Session integration: the monitor is a pure observer (byte-identical
//    stream with it on vs off), Diagnose() reports a coherent breakdown, a
//    scripted storage brownout is classified io-bound within 5 steps with
//    exactly ONE bundle dumped (valid manifest, parseable Chrome trace), and
//    a fault-free twin fires zero anomalies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/telemetry/anomaly.h"
#include "src/telemetry/attribution.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/health.h"
#include "tests/batch_identity.h"
#include "tests/json_parser.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

namespace fs = std::filesystem;
using testing::ExpectBatchesIdentical;
using testing::JsonParser;
using testing::JsonValue;
using testing::ScratchDir;

// ---------------------------------------------------------------------------
// StallAttribution: synthetic fixtures with known ground truth.
// ---------------------------------------------------------------------------

TraceSpan Span(const char* name, int64_t ts_us, int64_t dur_us, int64_t step,
               IoTenantId tenant = kDefaultIoTenant, int32_t source = -1) {
  TraceSpan s;
  s.name = name;
  s.cat = "step";
  s.ts_us = ts_us;
  s.dur_us = dur_us;
  s.tenant = tenant;
  s.step = step;
  s.source = source;
  return s;
}

// One step with every bucket populated, anchored at `t0` (microseconds):
//   gate 1 ms | plan 2 ms | pop 10 ms (io.get 3 ms + io.retry 2 ms inside,
//   leaving 5 ms of pop_wait) | build 4 ms  ->  wall 17 ms, other 0.
// pop.wait details: source 7 waited 6 ms, source 3 waited 2 ms.
std::vector<TraceSpan> FullStep(int64_t t0, int64_t step) {
  return {
      Span("step.gate", t0, 1000, step),
      Span("step.plan", t0 + 1000, 2000, step),
      Span("step.pop", t0 + 3000, 10000, step),
      Span("pop.wait", t0 + 3000, 6000, step, kDefaultIoTenant, 7),
      Span("pop.wait", t0 + 3000, 2000, step, kDefaultIoTenant, 3),
      Span("io.get", t0 + 4000, 3000, -1),
      Span("io.retry", t0 + 8000, 2000, -1),
      Span("step.build", t0 + 13000, 4000, step),
  };
}

TEST(AttributionTest, ExclusiveBucketsMatchGroundTruthAndSumToWall) {
  StallAttribution attribution({.tenant = kDefaultIoTenant, .window_steps = 4});
  EXPECT_EQ(attribution.Observe(FullStep(0, 0)), 1);

  std::vector<StepBreakdown> history = attribution.History();
  ASSERT_EQ(history.size(), 1u);
  const StepBreakdown& b = history[0];
  EXPECT_EQ(b.step, 0);
  EXPECT_NEAR(b.wall_ms, 17.0, 1e-9);
  EXPECT_NEAR(b.consumer_stall_ms, 1.0, 1e-9);
  EXPECT_NEAR(b.plan_ms, 2.0, 1e-9);
  EXPECT_NEAR(b.io_backing_ms, 3.0, 1e-9);
  EXPECT_NEAR(b.io_retry_ms, 2.0, 1e-9);
  EXPECT_NEAR(b.pop_wait_ms, 5.0, 1e-9);
  EXPECT_NEAR(b.build_ms, 4.0, 1e-9);
  EXPECT_NEAR(b.other_ms, 0.0, 1e-9);
  EXPECT_EQ(b.dominant_source, 7) << "slowest pop.wait source wins";
  EXPECT_NEAR(b.dominant_source_ms, 6.0, 1e-9);

  const double sum = b.consumer_stall_ms + b.plan_ms + b.pop_wait_ms + b.io_backing_ms +
                     b.io_retry_ms + b.build_ms + b.other_ms;
  EXPECT_NEAR(sum, b.wall_ms, 1e-6) << "buckets must be exclusive and exhaustive";

  // The history JSON parses and round-trips the same numbers.
  JsonValue doc;
  ASSERT_TRUE(JsonParser::Parse(attribution.RenderHistoryJson(), &doc));
  const JsonValue* steps = doc.Find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_EQ(steps->array.size(), 1u);
  EXPECT_NEAR(steps->array[0].Number("wall_ms"), 17.0, 1e-6);
  EXPECT_NEAR(steps->array[0].Number("pop_wait_ms"), 5.0, 1e-6);
}

TEST(AttributionTest, IoSpansAreClippedToThePopWindowAndForeignTenantsIgnored) {
  StallAttribution attribution({.tenant = 5, .window_steps = 4});
  // pop is [3000, 13000); one io.get straddles the left edge (only 2 ms
  // inside), a second lies entirely outside, a third belongs to tenant 9.
  std::vector<TraceSpan> spans = {
      Span("step.gate", 0, 1000, 0, 5),
      Span("step.plan", 1000, 2000, 0, 5),
      Span("step.pop", 3000, 10000, 0, 5),
      Span("io.get", 1000, 4000, -1, 5),    // 2 ms clipped in
      Span("io.get", 14000, 3000, -1, 5),   // outside the pop window
      Span("io.get", 4000, 5000, -1, 9),    // foreign tenant
      Span("step.build", 13000, 4000, 0, 5),
  };
  EXPECT_EQ(attribution.Observe(spans), 1);
  std::vector<StepBreakdown> history = attribution.History();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_NEAR(history[0].io_backing_ms, 2.0, 1e-9);
  EXPECT_NEAR(history[0].pop_wait_ms, 8.0, 1e-9);
}

TEST(AttributionTest, OverlappingSnapshotsFinalizeEachStepOnce) {
  StallAttribution attribution({.window_steps = 4});
  std::vector<TraceSpan> spans = FullStep(0, 0);
  EXPECT_EQ(attribution.Observe(spans), 1);
  EXPECT_EQ(attribution.Observe(spans), 0) << "already-finalized steps are skipped";
  std::vector<TraceSpan> more = FullStep(20000, 1);
  more.insert(more.begin(), spans.begin(), spans.end());  // ring still holds step 0
  EXPECT_EQ(attribution.Observe(more), 1);
  EXPECT_EQ(attribution.History().size(), 2u);
  EXPECT_EQ(attribution.last_finalized_step(), 1);
}

TEST(AttributionTest, VerdictFlipsBetweenIoAndDecodeBoundWithTheFixture) {
  StallAttribution attribution({.window_steps = 4, .dominance_threshold = 0.4});
  // Phase 1: io-bound — the whole 10 ms pop is one backing Get.
  int64_t t = 0;
  for (int64_t step = 0; step < 4; ++step, t += 20000) {
    attribution.Observe({
        Span("step.gate", t, 100, step),
        Span("step.plan", t + 100, 400, step),
        Span("step.pop", t + 500, 10000, step),
        Span("io.get", t + 500, 10000, -1),
        Span("step.build", t + 10500, 1000, step),
    });
  }
  BottleneckVerdict verdict = attribution.Verdict();
  EXPECT_EQ(verdict.kind, BottleneckKind::kIoBound);
  EXPECT_GT(verdict.io_fraction, verdict.decode_fraction);
  EXPECT_GE(verdict.confidence, 0.4);
  EXPECT_EQ(verdict.steps_observed, 4);

  // Phase 2: decode-bound — same pop time, no backing I/O at all.
  for (int64_t step = 4; step < 8; ++step, t += 20000) {
    attribution.Observe({
        Span("step.gate", t, 100, step),
        Span("step.plan", t + 100, 400, step),
        Span("step.pop", t + 500, 10000, step),
        Span("pop.wait", t + 500, 10000, step, kDefaultIoTenant, 2),
        Span("step.build", t + 10500, 1000, step),
    });
  }
  verdict = attribution.Verdict();
  EXPECT_EQ(verdict.kind, BottleneckKind::kDecodeBound);
  EXPECT_GT(verdict.decode_fraction, verdict.io_fraction);
  EXPECT_EQ(verdict.dominant_source, 2);
  EXPECT_EQ(verdict.last_step, 7);
}

TEST(AttributionTest, ConsumerGateDominanceAndHealthyBelowThreshold) {
  // Consumer-bound: the producer spends most of its wall gated on the window.
  StallAttribution gated({.window_steps = 2});
  for (int64_t step = 0; step < 2; ++step) {
    const int64_t t = step * 20000;
    gated.Observe({
        Span("step.gate", t, 8000, step),
        Span("step.plan", t + 8000, 500, step),
        Span("step.pop", t + 8500, 1000, step),
        Span("step.build", t + 9500, 500, step),
    });
  }
  EXPECT_EQ(gated.Verdict().kind, BottleneckKind::kConsumerBound);

  // Healthy: no family reaches the 0.4 dominance threshold.
  StallAttribution balanced({.window_steps = 2});
  for (int64_t step = 0; step < 2; ++step) {
    const int64_t t = step * 20000;
    balanced.Observe({
        Span("step.gate", t, 3000, step),
        Span("step.plan", t + 3000, 1000, step),
        Span("step.pop", t + 4000, 3000, step),
        Span("io.get", t + 4000, 1000, -1),
        Span("step.build", t + 7000, 3000, step),
    });
  }
  const BottleneckVerdict healthy = balanced.Verdict();
  EXPECT_EQ(healthy.kind, BottleneckKind::kHealthy);
  EXPECT_GT(healthy.confidence, 0.0);
}

// ---------------------------------------------------------------------------
// AnomalyDetector: warmup, hysteresis, clearing.
// ---------------------------------------------------------------------------

SloPolicy FastPolicy() {
  SloPolicy policy;
  policy.warmup_steps = 4;
  policy.trigger_after = 2;
  policy.clear_after = 3;
  return policy;
}

SloSample HealthySample() {
  SloSample s;
  s.step_ms = 100.0;
  s.tokens_per_sec = 1000.0;
  s.cache_hit_rate = 0.9;
  s.retry_rate = 0.0;
  return s;
}

TEST(AnomalyTest, WarmupArmsWithoutFiringAndSteadyNoiseStaysQuiet) {
  AnomalyDetector detector(FastPolicy());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(detector.OnStep(HealthySample()), 0) << "warmup must never fire";
  }
  for (const AnomalyState& s : detector.States()) {
    EXPECT_TRUE(s.armed) << s.signal;
    EXPECT_FALSE(s.alarmed) << s.signal;
  }
  // +-10% jitter around the baseline: armed but quiet.
  for (int i = 0; i < 50; ++i) {
    SloSample s = HealthySample();
    const double jitter = (i % 2 == 0) ? 1.1 : 0.9;
    s.step_ms *= jitter;
    s.tokens_per_sec *= jitter;
    EXPECT_EQ(detector.OnStep(s), 0);
  }
  EXPECT_EQ(detector.active(), 0);
  EXPECT_EQ(detector.triggers(), 0);
}

TEST(AnomalyTest, FiresAfterKConsecutiveViolationsOnceAndClearsAfterM) {
  AnomalyDetector detector(FastPolicy());
  for (int i = 0; i < 4; ++i) {
    detector.OnStep(HealthySample());
  }
  SloSample slow = HealthySample();
  slow.step_ms = 1000.0;  // 10x baseline, factor is 3
  EXPECT_EQ(detector.OnStep(slow), 0) << "one violation is below trigger_after=2";
  EXPECT_EQ(detector.OnStep(slow), 1) << "second consecutive violation fires";
  EXPECT_EQ(detector.OnStep(slow), 0) << "an already-alarmed signal does not re-fire";
  EXPECT_EQ(detector.active(), 1);
  EXPECT_EQ(detector.triggers(), 1);

  // A single healthy step resets the violation streak but not the alarm...
  EXPECT_EQ(detector.OnStep(HealthySample()), 0);
  EXPECT_EQ(detector.active(), 1);
  // ...and clear_after=3 consecutive healthy steps clear it.
  detector.OnStep(HealthySample());
  detector.OnStep(HealthySample());
  EXPECT_EQ(detector.active(), 0);
  EXPECT_EQ(detector.triggers(), 1) << "clearing is not a trigger";

  // The interrupted violation streak never fired: consecutive means consecutive.
  detector.OnStep(slow);
  detector.OnStep(HealthySample());
  detector.OnStep(slow);
  EXPECT_EQ(detector.active(), 0);
}

TEST(AnomalyTest, BaselineLearnsOnlyFromHealthyObservations) {
  AnomalyDetector detector(FastPolicy());
  for (int i = 0; i < 4; ++i) {
    detector.OnStep(HealthySample());
  }
  // A sustained 10x regression must not drag its own baseline up and
  // silence itself: it stays alarmed for arbitrarily long.
  SloSample slow = HealthySample();
  slow.step_ms = 1000.0;
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    fired += detector.OnStep(slow);
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(detector.active(), 1) << "EWMA absorbed the violation — baseline leaked";
}

TEST(AnomalyTest, UnobservableSignalsAreSkippedAndDistinctSignalsFire) {
  AnomalyDetector detector(FastPolicy());
  for (int i = 0; i < 4; ++i) {
    detector.OnStep(HealthySample());
  }
  // Hit-rate/retry-rate unobservable (-1): neither violates nor heals.
  SloSample partial;
  partial.step_ms = 100.0;
  partial.tokens_per_sec = 1000.0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(detector.OnStep(partial), 0);
  }
  // Throughput collapse + hit-rate collapse: two distinct signals fire.
  SloSample bad = HealthySample();
  bad.tokens_per_sec = 10.0;  // < 0.3x baseline
  bad.cache_hit_rate = 0.1;   // > 0.3 absolute drop
  EXPECT_EQ(detector.OnStep(bad), 0);
  EXPECT_EQ(detector.OnStep(bad), 2) << "throughput and hit-rate fire together";
  EXPECT_EQ(detector.active(), 2);

  // RenderJson parses and reports the alarmed pair.
  JsonValue doc;
  ASSERT_TRUE(JsonParser::Parse(detector.RenderJson(), &doc));
  EXPECT_EQ(doc.Number("active"), 2.0);
  const JsonValue* signals = doc.Find("signals");
  ASSERT_NE(signals, nullptr);
  EXPECT_EQ(signals->array.size(), 4u);
}

// ---------------------------------------------------------------------------
// FlightRecorder: atomic bundles, rate limit, retention, resume.
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, DumpWritesManifestAndArtifactsAtomically) {
  const std::string dir = ScratchDir("recorder_dump");
  FlightRecorder recorder({.dir = dir, .keep_bundles = 4, .min_interval_ms = 0});
  Result<std::string> path = recorder.Dump(
      "anomaly step_latency_ms at step 7",
      {{"trace.json", "{\"traceEvents\":[]}"}, {"log_tail.txt", "w line\n"}});
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path.value(), (fs::path(dir) / "bundle-0").string());
  EXPECT_EQ(recorder.bundles_written(), 1);

  std::ifstream manifest_in(fs::path(path.value()) / "MANIFEST.json");
  std::stringstream manifest;
  manifest << manifest_in.rdbuf();
  JsonValue doc;
  ASSERT_TRUE(JsonParser::Parse(manifest.str(), &doc));
  EXPECT_EQ(doc.Number("seq"), 0.0);
  EXPECT_EQ(doc.String("reason"), "anomaly step_latency_ms at step 7");
  const JsonValue* files = doc.Find("files");
  ASSERT_NE(files, nullptr);
  ASSERT_EQ(files->array.size(), 2u);
  EXPECT_EQ(files->array[0].string, "trace.json");

  std::ifstream trace_in(fs::path(path.value()) / "trace.json");
  std::stringstream trace;
  trace << trace_in.rdbuf();
  EXPECT_EQ(trace.str(), "{\"traceEvents\":[]}");
  EXPECT_FALSE(fs::exists(fs::path(dir) / "bundle-0.tmp")) << "staging must be renamed away";
  fs::remove_all(dir);
}

TEST(FlightRecorderTest, RateLimitSuppressesAndCounts) {
  const std::string dir = ScratchDir("recorder_rate");
  FlightRecorder recorder({.dir = dir, .keep_bundles = 4, .min_interval_ms = 60000});
  ASSERT_TRUE(recorder.Dump("first", {{"a.txt", "a"}}).ok());
  Result<std::string> second = recorder.Dump("second", {{"a.txt", "a"}});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().empty()) << "rate-limited dump returns an empty path";
  EXPECT_EQ(recorder.bundles_written(), 1);
  EXPECT_EQ(recorder.suppressed(), 1);
  fs::remove_all(dir);
}

TEST(FlightRecorderTest, RetentionKeepsNewestAndRestartResumesNumbering) {
  const std::string dir = ScratchDir("recorder_keep");
  {
    FlightRecorder recorder({.dir = dir, .keep_bundles = 2, .min_interval_ms = 0});
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(recorder.Dump("r" + std::to_string(i), {{"a.txt", "a"}}).ok());
    }
  }
  EXPECT_FALSE(fs::exists(fs::path(dir) / "bundle-0"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "bundle-1"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "bundle-2"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "bundle-3"));

  // A restarted process must not overwrite surviving evidence.
  FlightRecorder resumed({.dir = dir, .keep_bundles = 2, .min_interval_ms = 0});
  Result<std::string> next = resumed.Dump("after restart", {{"a.txt", "a"}});
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), (fs::path(dir) / "bundle-4").string());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Session integration: pure observer, Diagnose, brownout classification.
// ---------------------------------------------------------------------------

Session::Options HealthSessionOptions() {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;
  options.block_cache_bytes = 32 * kMiB;
  options.storage_get_latency = 100;  // 0.1 ms: remote, but test-fast
  return options;
}

std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

TEST(SessionHealthTest, RejectsMonitorWithoutItsPrerequisites) {
  Session::Options no_telemetry = HealthSessionOptions();
  no_telemetry.telemetry_enabled = false;
  no_telemetry.health.enabled = true;
  EXPECT_FALSE(Session::Create(no_telemetry).ok());

  Session::Options no_tracer = HealthSessionOptions();
  no_tracer.trace_ring_spans = 0;
  no_tracer.health.enabled = true;
  EXPECT_FALSE(Session::Create(no_tracer).ok());

  Session::Options synchronous = HealthSessionOptions();
  synchronous.prefetch_depth = 0;
  synchronous.health.enabled = true;
  EXPECT_FALSE(Session::Create(synchronous).ok());
}

TEST(SessionHealthTest, MonitorIsAPureObserverByteIdenticalStreams) {
  Session::Options with_monitor = HealthSessionOptions();
  with_monitor.health.enabled = true;
  Session::Options without_monitor = HealthSessionOptions();
  auto on = Session::Create(with_monitor);
  auto off = Session::Create(without_monitor);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  ASSERT_NE((*on)->health(), nullptr);
  EXPECT_EQ((*off)->health(), nullptr);

  for (int64_t s = 0; s < 4; ++s) {
    std::vector<RankBatch> a = StreamStep(**on);
    std::vector<RankBatch> b = StreamStep(**off);
    ASSERT_EQ(a.size(), b.size());
    for (size_t rank = 0; rank < a.size(); ++rank) {
      ExpectBatchesIdentical(a[rank], b[rank]);
    }
  }

  // Diagnose reports a coherent breakdown of the produced steps.
  HealthReport report = (*on)->health()->Diagnose();
  EXPECT_GE(report.verdict.steps_observed, 1);
  ASSERT_FALSE(report.recent.empty());
  for (const StepBreakdown& b : report.recent) {
    const double sum = b.consumer_stall_ms + b.plan_ms + b.pop_wait_ms + b.io_backing_ms +
                       b.io_retry_ms + b.build_ms + b.other_ms;
    EXPECT_NEAR(sum, b.wall_ms, 1e-6) << "step " << b.step;
  }
  EXPECT_EQ(report.hard_events, 0);
  EXPECT_EQ(report.bundles_written, 0) << "healthy run must not dump bundles";

  // The exported gauges exist on the session registry.
  TelemetrySnapshot snap = (*on)->metrics()->Snapshot();
  bool saw_verdict = false;
  for (const MetricPoint& p : snap.points) {
    if (p.name == "msd_health_verdict") {
      saw_verdict = true;
    }
  }
  EXPECT_TRUE(saw_verdict);
}

TEST(SessionHealthTest, BrownoutIsClassifiedIoBoundWithExactlyOneBundle) {
  const std::string dir = ScratchDir("health_brownout");
  Session::Options options = HealthSessionOptions();
  options.health.enabled = true;
  options.health.recorder_dir = dir;
  options.health.slo.warmup_steps = 4;
  options.health.slo.trigger_after = 2;
  options.health.slo.clear_after = 64;  // stays alarmed for the whole test
  options.health.recorder_min_interval_ms = 60000;  // one bundle, full stop
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_NE((*session)->remote_store(), nullptr);

  // Healthy phase: warm the baselines past the warmup window.
  for (int64_t s = 0; s < 8; ++s) {
    StreamStep(**session);
  }
  HealthReport before = (*session)->health()->Diagnose();
  EXPECT_EQ(before.triggers_total, 0) << "fault-free phase must not trigger";
  EXPECT_EQ(before.bundles_written, 0);

  // Scripted brownout: the backing store's RPC floor jumps from 0.1 ms to a
  // floor sized off the MEASURED healthy baseline the detector just learned —
  // one Get at 4x the baseline step latency guarantees the violation margin
  // (latency_factor defaults to 3) whatever the box speed, so the test holds
  // on a loaded CI runner and under sanitizer slowdown alike.  The
  // paper-scale 5 ms -> 25 ms drill lives in bench --diagnosis-smoke.
  double baseline_step_ms = 0.0;
  for (const AnomalyState& s : before.anomalies) {
    if (std::string(s.signal) == "step_latency_ms") {
      baseline_step_ms = s.baseline;
    }
  }
  const int64_t brownout_us =
      std::max<int64_t>(100000, static_cast<int64_t>(baseline_step_ms * 1000.0 * 4.0));
  (*session)->remote_store()->set_get_latency(brownout_us);
  int64_t steps_to_verdict = -1;
  for (int64_t s = 0; s < 5; ++s) {
    StreamStep(**session);
    if ((*session)->health()->Diagnose().verdict.kind == BottleneckKind::kIoBound) {
      steps_to_verdict = s + 1;
      break;
    }
  }
  EXPECT_GE(steps_to_verdict, 1) << "brownout was never classified io-bound within 5 steps";

  // Keep streaming a few steps: the anomaly fires once, dumps ONE bundle.
  for (int64_t s = 0; s < 4; ++s) {
    StreamStep(**session);
  }
  HealthReport after = (*session)->health()->Diagnose();
  EXPECT_EQ(after.verdict.kind, BottleneckKind::kIoBound);
  EXPECT_GE(after.triggers_total, 1);
  EXPECT_EQ(after.bundles_written, 1) << "one incident, one bundle";

  // The bundle is complete: manifest parses, trace parses, verdict parses.
  std::vector<fs::path> bundles;
  for (const auto& entry : fs::directory_iterator(dir)) {
    bundles.push_back(entry.path());
  }
  ASSERT_EQ(bundles.size(), 1u);
  for (const char* name : {"MANIFEST.json", "trace.json", "metrics.json",
                           "attribution.json", "verdict.json"}) {
    std::ifstream in(bundles[0] / name);
    ASSERT_TRUE(in.is_open()) << name;
    std::stringstream content;
    content << in.rdbuf();
    JsonValue doc;
    EXPECT_TRUE(JsonParser::Parse(content.str(), &doc)) << name << " is not valid JSON";
  }
  fs::remove_all(dir);
}

TEST(SessionHealthTest, SetSloPolicyRetunesWithoutRewarming) {
  Session::Options options = HealthSessionOptions();
  options.health.enabled = true;
  options.health.slo.warmup_steps = 2;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  for (int64_t s = 0; s < 4; ++s) {
    StreamStep(**session);
  }
  SloPolicy loose = options.health.slo;
  loose.latency_factor = 100.0;  // effectively disables the latency signal
  (*session)->health()->SetSloPolicy(loose);
  HealthReport report = (*session)->health()->Diagnose();
  for (const AnomalyState& s : report.anomalies) {
    if (std::string(s.signal) == "step_latency_ms") {
      EXPECT_TRUE(s.armed) << "baselines survive a policy swap";
    }
  }
}

}  // namespace
}  // namespace msd
