// The ROADMAP's kill -9 integration test, now real: a fork/exec child process
// streams batches with periodic auto-checkpointing, the parent SIGKILLs it
// mid-stream (no destructors, no flush — the real crash), and a fresh session
// resumes from the last published generation byte-identically to an
// uninterrupted run at the same step numbers (tokens, positions, AND pixels).
//
// Two gtest cases cooperate:
//   - Kill9Child.StreamUntilKilled is the child payload. It only runs when
//     MSD_KILL9_DIR is set (the parent execs this binary with
//     --gtest_filter=Kill9Child.* and that env var); in a normal ctest run it
//     skips.
//   - Kill9IntegrationTest.ResumesByteIdenticallyAfterSigkill is the driver.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/plan/mixture_schedule.h"
#include "tests/batch_identity.h"
#include "tests/scratch_dir.h"

extern char** environ;

namespace msd {
namespace {

namespace fs = std::filesystem;

// Shared job shape: small image corpus so pixel payloads are in the stream,
// plus a 3-phase mixture curriculum with multi-scale batching — the SIGKILL
// can land mid-phase, and the resume must pick the curriculum (and the
// per-step scale picks) back up byte-identically from the planner checkpoint.
Session::Options JobOptions() {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 1, .pp = 1, .cp = 2, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 8;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 128;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  MixtureSchedule::Options curriculum;
  curriculum.phases = {
      {.first_step = 0, .weights = {4.0, 1.0, 1.0, 1.0, 1.0}, .temperature = 1.0},
      {.first_step = 2, .weights = {1.0, 1.0, 1.0, 1.0, 1.0}, .temperature = 2.0},
      {.first_step = 5, .weights = {0.5, 0.5, 2.0, 2.0, 4.0}, .temperature = 0.5},
  };
  curriculum.scale_set = {512, 1024};
  options.mixture_schedule = std::make_shared<MixtureSchedule>(curriculum);
  return options;
}

std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

using testing::ExpectBatchesIdentical;

// ---- Child payload ---------------------------------------------------------

TEST(Kill9Child, StreamUntilKilled) {
  const char* dir = std::getenv("MSD_KILL9_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "child payload; only runs under the kill -9 driver";
  }
  Session::Options options = JobOptions();
  options.auto_checkpoint_dir = std::string(dir) + "/ckpt";
  options.auto_checkpoint_every = 2;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  std::string progress_path = std::string(dir) + "/progress";
  // Stream "forever"; the parent SIGKILLs us mid-loop. Progress is appended
  // and flushed after each fully consumed step so the driver knows when the
  // stream is comfortably past a published checkpoint.
  for (int64_t step = 0; step < 100000; ++step) {
    StreamStep(**session);
    std::ofstream progress(progress_path, std::ios::app);
    progress << step << "\n";
    progress.flush();
  }
}

// ---- Driver ----------------------------------------------------------------

TEST(Kill9IntegrationTest, ResumesByteIdenticallyAfterSigkill) {
  std::string dir = testing::ScratchDir("kill9");
  fs::create_directories(dir);
  std::string ckpt_dir = dir + "/ckpt";

  // Locate this test binary (Linux) and fork/exec the child payload.
  std::string self = fs::read_symlink("/proc/self/exe").string();
  std::string filter = "--gtest_filter=Kill9Child.StreamUntilKilled";
  std::string env_var = "MSD_KILL9_DIR=" + dir;
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: exec a fresh copy of this binary immediately (no gtest state,
    // no inherited actor threads — a brand-new process).
    std::vector<char*> argv = {self.data(), filter.data(), nullptr};
    std::vector<char*> envp;
    for (char** e = environ; *e != nullptr; ++e) {
      envp.push_back(*e);
    }
    envp.push_back(env_var.data());
    envp.push_back(nullptr);
    execve(self.c_str(), argv.data(), envp.data());
    _exit(127);  // exec failed
  }

  // Wait until the child has streamed well past a published checkpoint:
  // LATEST exists and at least 6 steps were fully consumed. The deadline is
  // generous: under sanitizers on a loaded single-core box the child's
  // session startup alone can take tens of seconds.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(300);
  int64_t steps_done = 0;
  bool ready = false;
  while (std::chrono::steady_clock::now() < deadline) {
    steps_done = 0;
    std::ifstream progress(dir + "/progress");
    std::string line;
    while (std::getline(progress, line)) {
      ++steps_done;
    }
    if (steps_done >= 6 && fs::exists(ckpt_dir + "/LATEST")) {
      ready = true;
      break;
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, WNOHANG), 0)
        << "child exited prematurely (status " << status << ")";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!ready) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    FAIL() << "child never reached a published checkpoint (steps=" << steps_done << ")";
  }

  // The kill: no shutdown path runs in the child.
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Resume in a fresh session from whatever generation survived, and compare
  // against an uninterrupted run at the same step numbers.
  Session::Options resumed_options = JobOptions();
  resumed_options.resume_dir = ckpt_dir;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  int64_t first_step = (*resumed)->client(0).value()->next_step();
  ASSERT_GE(first_step, 1) << "resume must continue mid-stream, not restart";
  ASSERT_LE(first_step, steps_done + 1)
      << "resume must not skip past the last step the child consumed";

  auto reference = Session::Create(JobOptions());
  ASSERT_TRUE(reference.ok());
  for (int64_t s = 0; s < first_step; ++s) {
    StreamStep(**reference);  // advance to the resume frontier
  }
  int64_t pixels_seen = 0;
  for (int s = 0; s < 3; ++s) {
    std::vector<RankBatch> got = StreamStep(**resumed);
    std::vector<RankBatch> want = StreamStep(**reference);
    ASSERT_EQ(got.size(), want.size());
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
      for (const Microbatch& mb : got[rank].microbatches) {
        for (const PackedSequence& seq : mb.sequences) {
          pixels_seen += seq.PixelCount();
        }
      }
    }
  }
  EXPECT_GT(pixels_seen, 0) << "the multimodal stream must carry pixels across the kill";

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace msd
