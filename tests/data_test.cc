#include <gtest/gtest.h>

#include <numeric>

#include "src/data/microbatch.h"
#include "src/data/sample.h"
#include "src/data/source_spec.h"
#include "src/data/synthetic.h"
#include "src/data/tokenizer.h"
#include "src/data/transform.h"

namespace msd {
namespace {

TEST(SampleTest, MetaRoundTrip) {
  SampleMeta meta;
  meta.sample_id = 12345;
  meta.source_id = 7;
  meta.modality = Modality::kImageText;
  meta.text_tokens = 64;
  meta.image_tokens = 2048;
  meta.raw_bytes = 99999;
  SampleMeta parsed;
  ASSERT_TRUE(DeserializeSampleMeta(SerializeSampleMeta(meta), &parsed));
  EXPECT_EQ(parsed, meta);
}

TEST(SampleTest, FullSampleRoundTrip) {
  Sample sample;
  sample.meta.sample_id = 1;
  sample.meta.text_tokens = 3;
  sample.raw_text = "a b c";
  sample.raw_image = std::string(16, '\x7f');
  sample.tokens = {10, 20, 30};
  sample.pixels = {0.5f, 0.25f};
  Sample parsed;
  ASSERT_TRUE(DeserializeSample(SerializeSample(sample), &parsed));
  EXPECT_EQ(parsed.meta, sample.meta);
  EXPECT_EQ(parsed.raw_text, sample.raw_text);
  EXPECT_EQ(parsed.raw_image, sample.raw_image);
  EXPECT_EQ(parsed.tokens, sample.tokens);
  EXPECT_EQ(parsed.pixels, sample.pixels);
}

TEST(SampleTest, TotalTokensSumsModalities) {
  SampleMeta meta;
  meta.text_tokens = 10;
  meta.image_tokens = 90;
  EXPECT_EQ(meta.TotalTokens(), 100);
}

TEST(SampleTest, CorruptBytesRejected) {
  Sample parsed;
  EXPECT_FALSE(DeserializeSample("garbage", &parsed));
}

TEST(TokenizerTest, CountsWhitespaceWords) {
  Tokenizer tok;
  EXPECT_EQ(tok.Encode("one two three").size(), 3u);
  EXPECT_TRUE(tok.Encode("").empty());
  EXPECT_TRUE(tok.Encode("   ").empty());
}

TEST(TokenizerTest, DeterministicIds) {
  Tokenizer tok;
  auto a = tok.Encode("data model data");
  auto b = tok.Encode("data model data");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[0], a[2]);
  EXPECT_NE(a[0], a[1]);
}

TEST(TokenizerTest, LongWordsSplitIntoPieces) {
  Tokenizer tok;
  std::string long_word(30, 'x');
  EXPECT_EQ(tok.Encode(long_word).size(), 3u);  // 30 chars / 12-char pieces
}

TEST(TokenizerTest, IdsWithinVocab) {
  Tokenizer tok(1000);
  for (int32_t id : tok.Encode("a few distinct words here")) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 1000);
  }
}

TEST(GenerateTextTest, ProducesExactTokenCount) {
  Tokenizer tok;
  for (int32_t want : {0, 1, 7, 64, 500}) {
    std::string text = GenerateText(42, want);
    EXPECT_EQ(tok.Encode(text).size(), static_cast<size_t>(want));
  }
}

TEST(SourceSpecTest, DrawStaysWithinConfiguredBuckets) {
  SourceSpec spec;
  spec.source_id = 0;
  spec.modality = Modality::kImageText;
  spec.text_bucket_weights = std::vector<double>(12, 1.0);
  spec.image_bucket_weights = std::vector<double>(6, 1.0);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    SampleMeta meta = spec.DrawMeta(rng, static_cast<uint64_t>(i));
    EXPECT_GE(meta.text_tokens, 1);
    EXPECT_LE(meta.text_tokens, TextBucketBounds().back());
    EXPECT_GE(meta.image_tokens, 1);
    EXPECT_LE(meta.image_tokens, ImageBucketBounds().back());
    EXPECT_GT(meta.raw_bytes, 0);
  }
}

TEST(SourceSpecTest, PureTextHasNoImageTokens) {
  SourceSpec spec;
  spec.modality = Modality::kText;
  spec.text_bucket_weights = std::vector<double>(12, 1.0);
  Rng rng(2);
  SampleMeta meta = spec.DrawMeta(rng, 0);
  EXPECT_EQ(meta.image_tokens, 0);
  EXPECT_GT(meta.text_tokens, 0);
}

TEST(CorpusTest, Coyo700mShape) {
  CorpusSpec corpus = MakeCoyo700m();
  EXPECT_EQ(corpus.sources.size(), 5u);
  EXPECT_EQ(corpus.name, "coyo700m");
  for (const SourceSpec& src : corpus.sources) {
    EXPECT_EQ(src.modality, Modality::kImageText);
    EXPECT_EQ(src.text_bucket_weights.size(), 12u);
    EXPECT_EQ(src.image_bucket_weights.size(), 6u);
  }
}

TEST(CorpusTest, NavitDataShape) {
  CorpusSpec corpus = MakeNavitData();
  EXPECT_EQ(corpus.sources.size(), 306u);
  // Modality mix: mostly image-text, some pure text, a few video/audio.
  int text = 0;
  int heavy = 0;
  for (const SourceSpec& src : corpus.sources) {
    if (src.modality == Modality::kText) {
      ++text;
    }
    if (src.modality == Modality::kVideo || src.modality == Modality::kAudio) {
      ++heavy;
    }
  }
  EXPECT_GT(text, 10);
  EXPECT_GT(heavy, 5);
}

TEST(CorpusTest, CoyoTextIsShortNavitTextIsLong) {
  // The headline Fig. 2 contrast: coyo700m text skews very short, navit long.
  Rng rng(3);
  auto mean_text = [&rng](const CorpusSpec& corpus) {
    double total = 0.0;
    int n = 0;
    for (const SourceSpec& src : corpus.sources) {
      for (int i = 0; i < 200; ++i) {
        total += src.DrawMeta(rng, 0).text_tokens;
        ++n;
      }
    }
    return total / n;
  };
  double coyo = mean_text(MakeCoyo700m());
  double navit = mean_text(MakeNavitData(11, 50));
  EXPECT_LT(coyo, 150.0);
  EXPECT_GT(navit, 500.0);
}

TEST(CorpusTest, CoyoShortSampleDominance) {
  // 98.23% of coyo text samples are <= 64 tokens (Sec. 2.3); the >64 tail
  // contributes ~9.3% of text tokens.
  CorpusSpec corpus = MakeCoyo700m();
  Rng rng(5);
  int short_count = 0;
  int total = 0;
  double short_tokens = 0.0;
  double long_tokens = 0.0;
  for (const SourceSpec& src : corpus.sources) {
    for (int i = 0; i < 2000; ++i) {
      int32_t t = src.DrawMeta(rng, 0).text_tokens;
      if (t <= 64) {
        ++short_count;
        short_tokens += t;
      } else {
        long_tokens += t;
      }
      ++total;
    }
  }
  double fraction = static_cast<double>(short_count) / total;
  EXPECT_GT(fraction, 0.96);
  EXPECT_LT(fraction, 0.995);
  double tail_token_share = long_tokens / (short_tokens + long_tokens);
  EXPECT_GT(tail_token_share, 0.04);
  EXPECT_LT(tail_token_share, 0.20);
}

TEST(CorpusTest, UniformWeightsSumToOne) {
  CorpusSpec corpus = MakeCoyo700m();
  auto w = corpus.UniformWeights();
  EXPECT_EQ(w.size(), 5u);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
}

TEST(TransformCostTest, PaperCostRatios) {
  // Sec. 1: audio = 4x image per output token; image = 300x text.
  TransformCostParams params;
  EXPECT_DOUBLE_EQ(params.image_us_per_token / params.text_us_per_token, 300.0);
  EXPECT_DOUBLE_EQ(params.audio_us_per_token / params.image_us_per_token, 4.0);
}

TEST(TransformCostTest, LatencyScalesWithTokensAndMultiplier) {
  SampleMeta meta;
  meta.modality = Modality::kImageText;
  meta.text_tokens = 100;
  meta.image_tokens = 1000;
  SimTime base = SampleTransformLatency(meta, 1.0);
  SimTime doubled = SampleTransformLatency(meta, 2.0);
  EXPECT_EQ(doubled, 2 * base);
  meta.image_tokens = 2000;
  EXPECT_GT(SampleTransformLatency(meta, 1.0), base);
}

TEST(TransformCostTest, AudioCostsMoreThanImageThanText) {
  SampleMeta meta;
  meta.text_tokens = 0;
  meta.image_tokens = 1000;
  meta.modality = Modality::kImageText;
  SimTime image = SampleTransformLatency(meta, 1.0);
  meta.modality = Modality::kAudio;
  SimTime audio = SampleTransformLatency(meta, 1.0);
  meta.modality = Modality::kText;
  meta.text_tokens = 1000;
  meta.image_tokens = 0;
  SimTime text = SampleTransformLatency(meta, 1.0);
  EXPECT_GT(audio, image);
  EXPECT_GT(image, text);
}

TEST(TransformTest, TokenizeFillsTokens) {
  auto tokenizer = std::make_shared<Tokenizer>();
  TextTokenize transform(tokenizer);
  Sample sample;
  sample.meta.text_tokens = 5;
  sample.raw_text = GenerateText(1, 5);
  Result<SimTime> cost = transform.Apply(sample);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(sample.tokens.size(), 5u);
  EXPECT_GT(cost.value(), 0);
}

TEST(TransformTest, ImageDecodeFillsPixels) {
  ImageDecode decode;
  Sample sample;
  sample.meta.modality = Modality::kImageText;
  sample.meta.image_tokens = 128;
  sample.raw_image = std::string(64, '\x55');
  Result<SimTime> cost = decode.Apply(sample);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(sample.pixels.size(), 128u);
  for (float p : sample.pixels) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(TransformTest, ImageDecodeWithoutBytesFails) {
  ImageDecode decode;
  Sample sample;
  sample.meta.image_tokens = 10;
  EXPECT_EQ(decode.Apply(sample).status().code(), StatusCode::kFailedPrecondition);
}

TEST(TransformTest, CropLimitsPatches) {
  CropToPatches crop(100);
  Sample sample;
  sample.meta.image_tokens = 500;
  PixelView full(std::vector<float>(500, 0.5f));
  sample.pixels = full;
  ASSERT_TRUE(crop.Apply(sample).ok());
  EXPECT_EQ(sample.meta.image_tokens, 100);
  EXPECT_EQ(sample.pixels.size(), 100u);
  // Cropping re-slices the frozen buffer instead of reallocating.
  EXPECT_TRUE(sample.pixels.AliasesStorageOf(full));
}

TEST(TransformTest, DefaultPipelineByModality) {
  auto tokenizer = std::make_shared<Tokenizer>();
  EXPECT_EQ(TransformPipeline::Default(Modality::kText, tokenizer).size(), 1u);
  EXPECT_EQ(TransformPipeline::Default(Modality::kImageText, tokenizer).size(), 2u);
}

TEST(SyntheticTest, WriteAndReadBackSource) {
  MemoryAccountant acc;
  ObjectStore store(&acc);
  SourceSpec spec = MakeCoyo700m().sources[0];
  spec.num_files = 2;
  spec.rows_per_file = 20;
  ASSERT_TRUE(WriteSourceFiles(store, spec, 7).ok());
  EXPECT_EQ(store.List(spec.name).size(), 2u);
  MsdfReader reader = MsdfReader::Open(store, SourceFileName(spec, 0), &acc, 0).value();
  EXPECT_EQ(reader.info().total_rows, 20);
  auto rows = reader.ReadRowGroup(0);
  ASSERT_TRUE(rows.ok());
  Sample sample;
  ASSERT_TRUE(DeserializeSample(rows->front(), &sample));
  EXPECT_EQ(sample.meta.source_id, spec.source_id);
  EXPECT_FALSE(sample.raw_text.empty());
}

TEST(SyntheticTest, SampleIdsUniqueAcrossSources) {
  CorpusSpec corpus = MakeCoyo700m();
  Rng rng(9);
  std::vector<SampleMeta> a = DrawMetas(corpus.sources[0], rng, 10, 0);
  std::vector<SampleMeta> b = DrawMetas(corpus.sources[1], rng, 10, 0);
  // Generator namespaces ids by source via the high bits in WriteSourceFiles;
  // DrawMetas uses caller-provided ids, so ids here are caller-controlled.
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(b.size(), 10u);
}

TEST(SyntheticTest, WriteCorpusCountsRows) {
  ObjectStore store;
  CorpusSpec corpus = MakeCoyo700m();
  for (SourceSpec& src : corpus.sources) {
    src.num_files = 1;
    src.rows_per_file = 8;
  }
  Result<int64_t> rows = WriteCorpus(store, corpus, 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 40);
}

TEST(PackingTest, RespectsMaxSeqLen) {
  std::vector<SampleMeta> metas;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    SampleMeta meta;
    meta.sample_id = static_cast<uint64_t>(i);
    meta.text_tokens = static_cast<int32_t>(rng.UniformInt(1, 900));
    metas.push_back(meta);
  }
  auto sequences = PackSequences(metas, 1024);
  size_t placed = 0;
  for (const PackedSequence& seq : sequences) {
    EXPECT_LE(seq.total_tokens, 1024);
    EXPECT_EQ(seq.total_tokens,
              std::accumulate(seq.segment_lengths.begin(), seq.segment_lengths.end(), 0));
    placed += seq.sample_ids.size();
  }
  EXPECT_EQ(placed, 100u);
}

TEST(PackingTest, OverlongSampleTruncated) {
  SampleMeta meta;
  meta.sample_id = 1;
  meta.text_tokens = 5000;
  auto sequences = PackSequences({meta}, 1024);
  ASSERT_EQ(sequences.size(), 1u);
  EXPECT_EQ(sequences[0].total_tokens, 1024);
}

TEST(PackingTest, PacksDenselyVersusOnePerSequence) {
  std::vector<SampleMeta> metas;
  for (int i = 0; i < 64; ++i) {
    SampleMeta meta;
    meta.sample_id = static_cast<uint64_t>(i);
    meta.text_tokens = 100;
    metas.push_back(meta);
  }
  auto sequences = PackSequences(metas, 1000);  // 10 per sequence fits
  EXPECT_LE(sequences.size(), 7u);
}

TEST(PackingTest, ZeroTokenSamplesSkipped) {
  SampleMeta meta;
  meta.sample_id = 1;
  meta.text_tokens = 0;
  EXPECT_TRUE(PackSequences({meta}, 128).empty());
}

TEST(RopeTest, PositionsRestartPerSegment) {
  PackedSequence seq;
  seq.segment_lengths = {3, 2};
  seq.total_tokens = 5;
  auto pos = RopePositions(seq);
  EXPECT_EQ(pos, (std::vector<int32_t>{0, 1, 2, 0, 1}));
}

TEST(FillPackedTest, InterleavesTextAndImageTokens) {
  Sample sample;
  sample.meta.sample_id = 1;
  sample.meta.text_tokens = 2;
  sample.meta.image_tokens = 3;
  sample.tokens = {100, 200};
  PackedSequence seq;
  seq.sample_ids = {1};
  seq.segment_lengths = {5};
  seq.total_tokens = 5;
  ASSERT_TRUE(FillPackedTokens(seq, {sample}).ok());
  ASSERT_EQ(seq.tokens.size(), 5u);
  EXPECT_EQ(seq.tokens[0], 100);
  EXPECT_EQ(seq.tokens[1], 200);
  EXPECT_EQ(seq.tokens[2], -1);  // image patch sentinel
  EXPECT_EQ(seq.position_ids.size(), 5u);
}

TEST(FillPackedTest, WrongOrderRejected) {
  Sample sample;
  sample.meta.sample_id = 2;
  PackedSequence seq;
  seq.sample_ids = {1};
  seq.segment_lengths = {1};
  seq.total_tokens = 1;
  EXPECT_FALSE(FillPackedTokens(seq, {sample}).ok());
}

TEST(PaddingTest, PadsToBatchMax) {
  Microbatch mb;
  PackedSequence a;
  a.segment_lengths = {10};
  a.total_tokens = 10;
  a.tokens = std::vector<int32_t>(10, 1);
  a.position_ids = std::vector<int32_t>(10, 0);
  PackedSequence b;
  b.segment_lengths = {4};
  b.total_tokens = 4;
  b.tokens = std::vector<int32_t>(4, 2);
  b.position_ids = std::vector<int32_t>(4, 0);
  mb.sequences = {a, b};
  PadMicrobatch(mb);
  EXPECT_EQ(mb.sequences[0].padded_to, 10);
  EXPECT_EQ(mb.sequences[1].padded_to, 10);
  EXPECT_EQ(mb.sequences[1].tokens.size(), 10u);
  EXPECT_EQ(mb.sequences[1].PaddingTokens(), 6);
  EXPECT_EQ(mb.TotalPaddingTokens(), 6);
  EXPECT_EQ(mb.TotalTokens(), 14);
}

TEST(PaddingTest, ExplicitTarget) {
  Microbatch mb;
  PackedSequence a;
  a.segment_lengths = {3};
  a.total_tokens = 3;
  mb.sequences = {a};
  PadMicrobatch(mb, 16);
  EXPECT_EQ(mb.sequences[0].padded_to, 16);
}

}  // namespace
}  // namespace msd
