// Tests for the Sec. 6 deployment features: transformation reordering
// (deferred image decode) and elastic resharding.
#include <gtest/gtest.h>

#include "src/api/session.h"

namespace msd {
namespace {

class DeferredDecodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = MakeCoyo700m().sources[0];
    spec_.num_files = 1;
    spec_.rows_per_file = 24;
    ASSERT_TRUE(WriteSourceFiles(store_, spec_, 7).ok());
  }

  SourceLoaderConfig LoaderConfig(bool defer) {
    SourceLoaderConfig config;
    config.loader_id = 0;
    config.spec = spec_;
    config.files = {SourceFileName(spec_, 0)};
    config.num_workers = 1;
    config.buffer_low_watermark = 8;
    config.defer_image_decode = defer;
    return config;
  }

  SourceSpec spec_;
  MemoryAccountant memory_;
  ObjectStore store_{&memory_};
};

TEST_F(DeferredDecodeTest, LoaderShipsCompressedBytes) {
  SourceLoader loader(LoaderConfig(/*defer=*/true), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  BufferInfo info = loader.SummaryBuffer();
  Result<SampleSlice> slice = loader.PopSamples(0, {info.samples[0].sample_id});
  ASSERT_TRUE(slice.ok());
  const Sample& s = *slice->samples[0];
  EXPECT_FALSE(s.tokens.empty());   // tokenization still ran in the loader
  EXPECT_TRUE(s.pixels.empty());    // decode deferred
  EXPECT_FALSE(s.raw_image.empty());
}

TEST_F(DeferredDecodeTest, DeferredSliceIsSmallerThanDecoded) {
  SourceLoader deferred(LoaderConfig(true), &store_, &memory_);
  SourceLoaderConfig eager_config = LoaderConfig(false);
  eager_config.name_override = "source_loader/eager#0";
  SourceLoader eager(eager_config, &store_, &memory_);
  ASSERT_TRUE(deferred.Open().ok());
  ASSERT_TRUE(eager.Open().ok());
  uint64_t id = deferred.SummaryBuffer().samples[0].sample_id;
  int64_t deferred_bytes = deferred.PopSamples(0, {id})->samples[0]->PayloadBytes();
  int64_t eager_bytes = eager.PopSamples(0, {id})->samples[0]->PayloadBytes();
  EXPECT_LT(deferred_bytes, eager_bytes);  // the point of reordering (Sec. 6.2)
}

TEST_F(DeferredDecodeTest, ConstructorDecodesDeferredImages) {
  SourceLoader loader(LoaderConfig(true), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  BufferInfo info = loader.SummaryBuffer();

  LoadingPlan plan;
  plan.step = 0;
  plan.axis = Axis::kDP;
  plan.num_buckets = 1;
  plan.num_microbatches = 1;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    SliceAssignment a;
    a.sample_id = info.samples[static_cast<size_t>(i)].sample_id;
    a.loader_id = 0;
    a.bucket = 0;
    a.microbatch = 0;
    a.total_tokens = info.samples[static_cast<size_t>(i)].TotalTokens();
    plan.assignments.push_back(a);
    ids.push_back(a.sample_id);
  }
  Result<SampleSlice> slice = loader.PopSamples(0, ids);
  ASSERT_TRUE(slice.ok());

  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 1, .pp = 1, .cp = 1, .tp = 1}, 1);
  DataConstructor dc({}, &tree, &memory_);
  ASSERT_TRUE(dc.BuildStep(plan, {std::move(slice.value())}).ok());
  RankBatch batch = dc.GetBatch(0, 0).value();
  ASSERT_FALSE(batch.microbatches.empty());
  EXPECT_FALSE(batch.microbatches[0].sequences.empty());  // assembly succeeded
}

TEST(SessionReorderTest, EndToEndWithDeferredDecode) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.samples_per_step = 12;
  options.rows_per_file_override = 48;
  options.defer_image_decode = true;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  RankBatch batch = (*session)->GetBatch(0).value();
  EXPECT_FALSE(batch.microbatches.empty());
}

TEST(SessionReshardTest, CpReshardTakesEffectNextStep) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.samples_per_step = 12;
  options.rows_per_file_override = 64;
  options.max_seq_len = 1024;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  RankBatch before = (*session)->GetBatch(0).value();
  const PackedSequence& full = before.microbatches[0].sequences[0];
  EXPECT_EQ(static_cast<int32_t>(full.tokens.size()), full.padded_to);

  // Grow CP 1 -> 2 (e.g. the job was resharded for longer contexts).
  ASSERT_TRUE((*session)->Reshard({.dp = 2, .pp = 1, .cp = 2, .tp = 1}).ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  RankBatch cp0 = (*session)->GetBatch(0).value();
  RankBatch cp1 = (*session)->GetBatch(1).value();  // now (dp0, cp1)
  const PackedSequence& half0 = cp0.microbatches[0].sequences[0];
  const PackedSequence& half1 = cp1.microbatches[0].sequences[0];
  EXPECT_EQ(half0.sample_ids, half1.sample_ids);
  EXPECT_EQ(static_cast<int32_t>(half0.tokens.size() + half1.tokens.size()),
            half0.padded_to);
}

TEST(SessionReshardTest, DpChangeRejected) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.rows_per_file_override = 32;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->Reshard({.dp = 4, .pp = 1, .cp = 1, .tp = 1}).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionReshardTest, OldStepsDroppedAfterReshard) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 1, .pp = 1, .cp = 1, .tp = 1};
  options.samples_per_step = 8;
  options.rows_per_file_override = 48;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  ASSERT_TRUE((*session)->Reshard({.dp = 1, .pp = 2, .cp = 1, .tp = 1}).ok());
  // The pre-reshard step's resident data was dropped with the old topology.
  EXPECT_FALSE((*session)->GetBatch(0).ok());
  ASSERT_TRUE((*session)->AdvanceStep().ok());
  EXPECT_TRUE((*session)->GetBatch(0).ok());
  EXPECT_TRUE((*session)->GetBatch(1).value().metadata_only);  // new PP stage
}

}  // namespace
}  // namespace msd
