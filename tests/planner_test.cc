#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/planner/planner.h"
#include "src/planner/strategies.h"

namespace msd {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = MakeCoyo700m();
    for (SourceSpec& src : corpus_.sources) {
      src.num_files = 1;
      src.rows_per_file = 64;
    }
    ASSERT_TRUE(WriteCorpus(store_, corpus_, 7).ok());
    tree_ = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 2}, 2);
    for (size_t s = 0; s < corpus_.sources.size(); ++s) {
      SourceLoaderConfig config;
      config.loader_id = static_cast<int32_t>(s);
      config.spec = corpus_.sources[s];
      config.files = {SourceFileName(corpus_.sources[s], 0)};
      config.num_workers = 1;
      config.buffer_low_watermark = 32;
      auto loader = system_.Spawn<SourceLoader>(config, &store_, &memory_);
      Status open = system_.Ask<Status>(*loader, [l = loader.get()] { return l->Open(); });
      ASSERT_TRUE(open.ok());
      loaders_.push_back(loader);
    }
  }

  StrategyOptions DefaultOptions() {
    StrategyOptions so;
    so.samples_per_step = 16;
    so.schedule = std::make_shared<StaticMix>(corpus_.UniformWeights());
    return so;
  }

  std::shared_ptr<Planner> MakePlanner(Strategy strategy, PlannerConfig config = {}) {
    auto planner = system_.Spawn<Planner>(config, &system_, &tree_, std::move(strategy),
                                          &memory_);
    std::vector<SourceLoader*> raw;
    for (auto& l : loaders_) {
      raw.push_back(l.get());
    }
    planner->SetLoaders(raw);
    return planner;
  }

  CorpusSpec corpus_;
  MemoryAccountant memory_;
  ObjectStore store_{&memory_};
  ActorSystem system_;
  ClientPlaceTree tree_;
  std::vector<std::shared_ptr<SourceLoader>> loaders_;
};

TEST_F(PlannerTest, GeneratesAndCachesPlans) {
  auto planner = MakePlanner(MakeLlmBalanceStrategy(DefaultOptions(),
                                                    BackboneCostFn(Llama12B())));
  Result<LoadingPlan> p1 = planner->GetPlan(0);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->assignments.size(), 16u);
  EXPECT_EQ(planner->plans_generated(), 1);
  Result<LoadingPlan> again = planner->GetPlan(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(planner->plans_generated(), 1);  // cache hit
}

TEST_F(PlannerTest, PlansAreJournaledToGcs) {
  auto planner = MakePlanner(MakeVanillaStrategy(DefaultOptions()));
  ASSERT_TRUE(planner->GetPlan(5).ok());
  auto blob = system_.gcs().GetState(Planner::PlanJournalKey(5));
  ASSERT_TRUE(blob.has_value());
  Result<LoadingPlan> parsed = LoadingPlan::Deserialize(*blob);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->step, 5);
}

TEST_F(PlannerTest, ReplayModeServesJournaledPlansOnly) {
  auto live = MakePlanner(MakeVanillaStrategy(DefaultOptions()));
  ASSERT_TRUE(live->PrecomputePlans(0, 3).ok());

  PlannerConfig replay_config;
  replay_config.name = "planner-replay";
  replay_config.replay_mode = true;
  // Fresh planner, same GCS: serves journaled plans without re-planning.
  auto replay = system_.Spawn<Planner>(replay_config, &system_, &tree_,
                                       MakeVanillaStrategy(DefaultOptions()), &memory_);
  Result<LoadingPlan> plan = replay->GetPlan(1);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->step, 1);
  EXPECT_EQ(replay->plans_generated(), 0);  // never re-planned
}

TEST_F(PlannerTest, ReplayModeMissesUnplannedSteps) {
  PlannerConfig config;
  config.replay_mode = true;
  auto planner = MakePlanner(MakeVanillaStrategy(DefaultOptions()), config);
  EXPECT_EQ(planner->GetPlan(42).status().code(), StatusCode::kNotFound);
}

TEST_F(PlannerTest, DeadLoaderDetectedDuringGather) {
  auto planner = MakePlanner(MakeVanillaStrategy(DefaultOptions()));
  system_.Kill(*loaders_[2]);
  Result<LoadingPlan> plan = planner->GetPlan(0);
  EXPECT_EQ(plan.status().code(), StatusCode::kUnavailable);
  ASSERT_EQ(planner->last_failed_loaders().size(), 1u);
  EXPECT_EQ(planner->last_failed_loaders()[0], loaders_[2]->name());
}

TEST_F(PlannerTest, BalancedStrategyBeatsVanilla) {
  auto vanilla = MakePlanner(MakeVanillaStrategy(DefaultOptions()));
  LoadingPlan vanilla_plan = vanilla->GetPlan(0).value();
  // Vanilla has no cost annotations; recompute loads by token count.
  auto token_load = [](const LoadingPlan& plan) {
    std::vector<double> loads(static_cast<size_t>(plan.num_buckets), 0.0);
    for (const SliceAssignment& a : plan.assignments) {
      loads[static_cast<size_t>(a.bucket)] +=
          BackboneSampleFlops(Llama12B(), SampleMeta{.text_tokens = a.total_tokens});
    }
    return loads;
  };
  PlannerConfig balanced_config;
  balanced_config.name = "planner-balanced";
  auto balanced_planner = system_.Spawn<Planner>(
      balanced_config, &system_, &tree_,
      MakeLlmBalanceStrategy(DefaultOptions(), BackboneCostFn(Llama12B())), &memory_);
  std::vector<SourceLoader*> raw;
  for (auto& l : loaders_) {
    raw.push_back(l.get());
  }
  balanced_planner->SetLoaders(raw);
  LoadingPlan balanced_plan = balanced_planner->GetPlan(0).value();
  EXPECT_LE(Imbalance(token_load(balanced_plan)), Imbalance(token_load(vanilla_plan)));
}

TEST_F(PlannerTest, HybridStrategyAttachesEncoderSubplan) {
  auto planner = MakePlanner(MakeVlmHybridStrategy(
      DefaultOptions(), BackboneCostFn(Llama12B()), EncoderCostFn(ViT1B())));
  LoadingPlan plan = planner->GetPlan(0).value();
  ASSERT_EQ(plan.subplans.count("encoder"), 1u);
  const LoadingPlan& encoder = plan.subplans.at("encoder");
  EXPECT_EQ(encoder.axis, Axis::kWorld);
  EXPECT_EQ(encoder.num_buckets, tree_.spec().WorldSize());
  // Encoder subplan covers exactly the sampled image-bearing samples.
  EXPECT_LE(encoder.assignments.size(), plan.assignments.size());
  EXPECT_GT(encoder.assignments.size(), 0u);
}

TEST_F(PlannerTest, PhaseTimingsPopulated) {
  auto planner = MakePlanner(MakeLlmBalanceStrategy(DefaultOptions(),
                                                    BackboneCostFn(Llama12B())));
  ASSERT_TRUE(planner->GetPlan(0).ok());
  Planner::PhaseTimings timings = planner->last_timings();
  EXPECT_GE(timings.gather_ms, 0.0);
  EXPECT_GT(timings.compute_ms, 0.0);
}

TEST_F(PlannerTest, BroadcastTpShrinksFetchingSet) {
  StrategyOptions so = DefaultOptions();
  so.broadcast_tp = true;
  auto planner = MakePlanner(MakeLlmBalanceStrategy(so, BackboneCostFn(Llama12B())));
  LoadingPlan plan = planner->GetPlan(0).value();
  EXPECT_EQ(plan.fetching_ranks.size(), 2u);  // world=4, tp=2 -> 2 fetchers
}

}  // namespace
}  // namespace msd
