#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/plan/balance.h"
#include "src/trainsim/loss_sim.h"
#include "src/trainsim/train_step.h"

namespace msd {
namespace {

// Builds a plan with the given per-(bucket, mb) token placement.
LoadingPlan MakePlan(int32_t buckets, int32_t microbatches,
                     const std::vector<std::vector<int32_t>>& tokens_per_slot,
                     int32_t image_fraction_pct = 0) {
  LoadingPlan plan;
  plan.num_buckets = buckets;
  plan.num_microbatches = microbatches;
  uint64_t id = 1;
  for (int32_t b = 0; b < buckets; ++b) {
    for (int32_t m = 0; m < microbatches; ++m) {
      SliceAssignment a;
      a.sample_id = id++;
      a.bucket = b;
      a.microbatch = m;
      a.total_tokens = tokens_per_slot[static_cast<size_t>(b)][static_cast<size_t>(m)];
      a.image_tokens = a.total_tokens * image_fraction_pct / 100;
      plan.assignments.push_back(a);
    }
  }
  return plan;
}

TrainSimConfig BaseConfig(ParallelismSpec spec) {
  TrainSimConfig config;
  config.backbone = Llama12B();
  config.spec = spec;
  return config;
}

TEST(TrainStepTest, BalancedPlanFasterThanImbalanced) {
  TrainSimConfig config = BaseConfig({.dp = 2, .pp = 1, .cp = 1, .tp = 1});
  TrainStepSimulator sim(config);
  LoadingPlan balanced = MakePlan(2, 2, {{1000, 1000}, {1000, 1000}});
  LoadingPlan skewed = MakePlan(2, 2, {{1900, 1900}, {100, 100}});
  IterationBreakdown fast = sim.SimulateStep(balanced);
  IterationBreakdown slow = sim.SimulateStep(skewed);
  EXPECT_LT(fast.total, slow.total);
  EXPECT_NEAR(fast.max_min_dp_ratio, 1.0, 1e-9);
  EXPECT_GT(slow.max_min_dp_ratio, 2.0);
}

TEST(TrainStepTest, PipelineBubblesPenalizeMicrobatchSkew) {
  // Same total tokens per DP rank, but one microbatch dominates: the
  // (pp-1)*max_mb bubble term grows.
  TrainSimConfig config = BaseConfig({.dp = 1, .pp = 4, .cp = 1, .tp = 1});
  TrainStepSimulator sim(config);
  LoadingPlan even = MakePlan(1, 4, {{1000, 1000, 1000, 1000}});
  LoadingPlan spiky = MakePlan(1, 4, {{2500, 500, 500, 500}});
  EXPECT_LT(sim.SimulateStep(even).total, sim.SimulateStep(spiky).total);
}

TEST(TrainStepTest, MoreShardsFasterCompute) {
  LoadingPlan plan = MakePlan(1, 2, {{2000, 2000}});
  TrainStepSimulator small(BaseConfig({.dp = 1, .pp = 1, .cp = 1, .tp = 1}));
  TrainStepSimulator big(BaseConfig({.dp = 1, .pp = 1, .cp = 2, .tp = 2}));
  EXPECT_GT(small.SimulateStep(plan).total, big.SimulateStep(plan).total);
}

TEST(TrainStepTest, EncoderPhaseAddsTime) {
  LoadingPlan plan = MakePlan(2, 2, {{1000, 1000}, {1000, 1000}}, /*image pct=*/50);
  TrainSimConfig no_encoder = BaseConfig({.dp = 2, .pp = 1, .cp = 1, .tp = 1});
  TrainSimConfig with_encoder = no_encoder;
  with_encoder.has_encoder = true;
  with_encoder.encoder = ViT1B();
  IterationBreakdown plain = TrainStepSimulator(no_encoder).SimulateStep(plan);
  IterationBreakdown vlm = TrainStepSimulator(with_encoder).SimulateStep(plan);
  EXPECT_EQ(plain.encoder_time, 0);
  EXPECT_GT(vlm.encoder_time, 0);
  EXPECT_GT(vlm.a2a_time, 0);
  EXPECT_GT(vlm.total, plain.total);
}

TEST(TrainStepTest, EncoderSubplanBalancesEncoderPhase) {
  // An "encoder" subplan spreading images evenly beats the default
  // colocated round-robin placement when images are skewed.
  TrainSimConfig config = BaseConfig({.dp = 2, .pp = 1, .cp = 1, .tp = 1});
  config.has_encoder = true;
  config.encoder = ViT2B();
  TrainStepSimulator sim(config);

  LoadingPlan plan;
  plan.num_buckets = 2;
  plan.num_microbatches = 1;
  // Bucket 0 holds all heavy images.
  for (int i = 0; i < 8; ++i) {
    SliceAssignment a;
    a.sample_id = static_cast<uint64_t>(i + 1);
    a.bucket = i < 4 ? 0 : 1;
    a.microbatch = 0;
    a.total_tokens = 4096;
    a.image_tokens = i < 4 ? 4000 : 10;
    plan.assignments.push_back(a);
  }
  IterationBreakdown unbalanced = sim.SimulateStep(plan);

  LoadingPlan with_subplan = plan;
  LoadingPlan encoder;
  encoder.axis = Axis::kWorld;
  encoder.num_buckets = 2;
  encoder.num_microbatches = 1;
  for (int i = 0; i < 8; ++i) {
    SliceAssignment a = plan.assignments[static_cast<size_t>(i)];
    a.bucket = i % 2;  // interleave heavy images across ranks
    encoder.assignments.push_back(a);
  }
  with_subplan.subplans.emplace("encoder", encoder);
  IterationBreakdown balanced = sim.SimulateStep(with_subplan);
  EXPECT_LT(balanced.encoder_time, unbalanced.encoder_time);
  EXPECT_LT(balanced.encoder_imbalance, unbalanced.encoder_imbalance);
}

TEST(TrainStepTest, LayerOverrideShrinksCompute) {
  LoadingPlan plan = MakePlan(1, 1, {{4000}});
  TrainSimConfig full = BaseConfig({.dp = 1, .pp = 1, .cp = 1, .tp = 1});
  TrainSimConfig truncated = full;
  truncated.backbone_layers_override = 8;
  EXPECT_GT(TrainStepSimulator(full).SimulateStep(plan).total,
            TrainStepSimulator(truncated).SimulateStep(plan).total);
}

TEST(TrainStepTest, TokensPerSecondPositive) {
  LoadingPlan plan = MakePlan(1, 1, {{4000}});
  IterationBreakdown r =
      TrainStepSimulator(BaseConfig({.dp = 1, .pp = 1, .cp = 1, .tp = 1})).SimulateStep(plan);
  EXPECT_EQ(r.total_tokens, 4000);
  EXPECT_GT(r.TokensPerSecond(), 0.0);
}

TEST(TrainStepTest, PeakMicrobatchTokens) {
  LoadingPlan plan = MakePlan(2, 2, {{100, 900}, {400, 400}});
  TrainStepSimulator sim(BaseConfig({.dp = 2, .pp = 1, .cp = 1, .tp = 1}));
  EXPECT_EQ(sim.PeakMicrobatchTokens(plan), 900);
}

TEST(TrainStepTest, CpAxisBucketsFoldIntoDp) {
  // axis=CP plans have dp*cp buckets; simulation folds them into DP groups.
  LoadingPlan plan;
  plan.axis = Axis::kCP;
  plan.num_buckets = 4;  // dp=2, cp=2
  plan.num_microbatches = 1;
  for (int b = 0; b < 4; ++b) {
    SliceAssignment a;
    a.sample_id = static_cast<uint64_t>(b + 1);
    a.bucket = b;
    a.microbatch = 0;
    a.total_tokens = 1000;
    plan.assignments.push_back(a);
  }
  TrainStepSimulator sim(BaseConfig({.dp = 2, .pp = 1, .cp = 2, .tp = 1}));
  IterationBreakdown r = sim.SimulateStep(plan);
  EXPECT_NEAR(r.max_min_dp_ratio, 1.0, 1e-9);
}

TEST(LossSimTest, LossDecreasesOverTraining) {
  LossSimulator sim;
  LossTrace trace = sim.Run(50, 1, false, false);
  ASSERT_EQ(trace.loss.size(), 50u);
  EXPECT_GT(trace.loss.front(), trace.FinalLoss());
  EXPECT_GT(trace.FinalLoss(), 0.0);
}

TEST(LossSimTest, SameSeedSameTrace) {
  LossSimulator sim;
  LossTrace a = sim.Run(30, 7, false, false);
  LossTrace b = sim.Run(30, 7, false, false);
  EXPECT_DOUBLE_EQ(LossTrace::MaxDeviation(a, b), 0.0);
}

TEST(LossSimTest, BalancerWithoutCpTracksBaselineTightly) {
  // Fig. 18a: without CP the balanced loss tightly mirrors the baseline.
  LossSimulator sim;
  LossTrace base = sim.Run(50, 3, false, false);
  LossTrace balanced = sim.Run(50, 3, true, false);
  EXPECT_LT(LossTrace::MaxDeviation(base, balanced), 0.01);
}

TEST(LossSimTest, BalancerWithCpAddsBoundedFluctuation) {
  // Fig. 18b: with CP the deviation is visible but bounded; still converges.
  LossSimulator sim;
  LossTrace base = sim.Run(50, 3, false, false);
  LossTrace balanced_cp = sim.Run(50, 3, true, true);
  double dev = LossTrace::MaxDeviation(base, balanced_cp);
  EXPECT_GT(dev, 0.005);
  EXPECT_LT(dev, 0.3);
  EXPECT_NEAR(balanced_cp.FinalLoss(), base.FinalLoss(), 0.3);
}

TEST(LossSimTest, ConvergenceUnaffectedByBalancer) {
  LossSimulator sim;
  double base_final = sim.Run(200, 5, false, false).FinalLoss();
  double cp_final = sim.Run(200, 5, true, true).FinalLoss();
  EXPECT_NEAR(base_final, cp_final, 0.25);
}

}  // namespace
}  // namespace msd
