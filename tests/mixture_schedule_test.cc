// Dynamic mixture schedules (src/plan/mixture_schedule.h), proved three ways:
//  - unit coverage of the schedule itself: phase lookup, temperature-scaled
//    weights, the seeded multi-scale pick, override commit/serialize/restore,
//    and the structural fingerprint's stability across override commits;
//  - session-level coverage: option validation, the UpdateMixture plan-cursor
//    guard, curriculum plans matching the scalar ReferenceDataPlane, override
//    checkpointing, mid-phase resume (same mesh and a changed DP degree), and
//    the quarantine x phase-boundary interaction;
//  - a randomized scenario sweep: 50 seeded scenarios (random phases,
//    temperatures, scale sets, overrides) each crossed with an interruption —
//    none, checkpoint+resume, a CP reshard, a loader kill, or a 5% storage
//    fault schedule — and every scenario must stream byte-identical to its
//    undisturbed twin and to the reference oracle. A failure names its seed;
//    re-run one scenario with
//      ./msd_tests --gtest_filter='Sweep/MixtureSweepTest.*/<seed>'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/constructor/reference_assembly.h"
#include "src/plan/mixture_schedule.h"
#include "tests/batch_identity.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

using testing::ExpectBatchesIdentical;

// ---------------------------------------------------------------------------
// Shared helpers (same idioms as checkpoint_test / pipeline_test).
// ---------------------------------------------------------------------------

// Pulls one step's batch for every rank through the streaming clients.
std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

// Advances the synchronous shim one step and fetches every rank's batch.
std::vector<RankBatch> ShimStep(Session& session) {
  EXPECT_TRUE(session.AdvanceStep().ok());
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.GetBatch(rank);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

void ExpectStepsIdentical(Session& got, Session& want, int64_t steps) {
  const int32_t world = got.tree().spec().WorldSize();
  ASSERT_EQ(world, want.tree().spec().WorldSize());
  for (int64_t s = 0; s < steps; ++s) {
    std::vector<RankBatch> g = StreamStep(got);
    std::vector<RankBatch> w = StreamStep(want);
    for (int32_t rank = 0; rank < world; ++rank) {
      ExpectBatchesIdentical(g[static_cast<size_t>(rank)], w[static_cast<size_t>(rank)]);
    }
  }
}

// Replays a captured step through the frozen scalar reference plane and
// checks every rank's streamed batch against it. `max_decode_patches` must
// mirror the session's bound (bound_pixel_decode ? max_seq_len : 0) — the
// decode bound is byte-affecting, so the oracle has to apply it too.
void ExpectMatchesReference(const PrefetchPipeline::Capture& capture,
                            const ParallelismSpec& spec, int32_t num_microbatches,
                            int32_t max_seq_len, int32_t max_decode_patches,
                            const std::vector<RankBatch>& streamed) {
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, num_microbatches);
  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    DataConstructorConfig config;
    config.constructor_id = dp;
    config.max_seq_len = max_seq_len;
    config.max_decode_patches = max_decode_patches;
    ReferenceDataPlane reference(config, &tree);
    ASSERT_TRUE(reference
                    .BuildStep(capture.plan,
                               capture.slices_per_constructor[static_cast<size_t>(dp)])
                    .ok());
    for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
      if (CoordOfRank(spec, rank).dp != dp) {
        continue;
      }
      Result<RankBatch> want = reference.GetBatch(rank, capture.plan.step);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)], want.value());
    }
  }
}

// Sorted sample ids the plan assigns (the step's content, placement-free).
std::vector<uint64_t> PlanSampleIds(const LoadingPlan& plan) {
  std::vector<uint64_t> ids;
  ids.reserve(plan.assignments.size());
  for (const SliceAssignment& a : plan.assignments) {
    ids.push_back(a.sample_id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// A 3-phase curriculum over the 5 coyo700m sources: captions-heavy warmup,
// balanced middle, long-tail-sharpened tail. Boundaries land early so short
// test runs cross them.
MixtureSchedule::Options ThreePhaseCurriculum() {
  MixtureSchedule::Options options;
  options.phases = {
      {.first_step = 0, .weights = {4.0, 1.0, 1.0, 1.0, 1.0}, .temperature = 1.0},
      {.first_step = 2, .weights = {1.0, 1.0, 1.0, 1.0, 1.0}, .temperature = 2.0},
      {.first_step = 4, .weights = {0.5, 0.5, 2.0, 2.0, 4.0}, .temperature = 0.5},
  };
  return options;
}

Session::Options MixtureBaseOptions(int32_t prefetch_depth = 2) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 2, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 12;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = prefetch_depth;
  options.mixture_schedule = std::make_shared<MixtureSchedule>(ThreePhaseCurriculum());
  return options;
}

// ---------------------------------------------------------------------------
// Unit coverage: the schedule object itself.
// ---------------------------------------------------------------------------

TEST(MixtureScheduleTest, PhaseLookupFollowsBoundaries) {
  MixtureSchedule schedule(ThreePhaseCurriculum());
  EXPECT_EQ(schedule.num_phases(), 3u);
  EXPECT_EQ(schedule.num_sources(), 5u);
  EXPECT_EQ(schedule.PhaseIndexAt(0), 0);
  EXPECT_EQ(schedule.PhaseIndexAt(1), 0);
  EXPECT_EQ(schedule.PhaseIndexAt(2), 1);
  EXPECT_EQ(schedule.PhaseIndexAt(3), 1);
  EXPECT_EQ(schedule.PhaseIndexAt(4), 2);
  EXPECT_EQ(schedule.PhaseIndexAt(10000), 2);
  EXPECT_EQ(schedule.PhaseRemainingAt(0), 2);
  EXPECT_EQ(schedule.PhaseRemainingAt(3), 1);
  EXPECT_EQ(schedule.PhaseRemainingAt(4), -1);  // final phase, unbounded
  EXPECT_EQ(schedule.PhaseAt(2).temperature, 2.0);
}

TEST(MixtureScheduleTest, TemperatureScalesAndNormalizesWeights) {
  MixtureSchedule::Options options;
  options.phases = {
      {.first_step = 0, .weights = {4.0, 1.0}, .temperature = 2.0},
  };
  MixtureSchedule schedule(options);
  // w^(1/2) -> {2, 1}, normalized -> {2/3, 1/3}.
  std::vector<double> w = schedule.WeightsAt(0);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(w[1], 1.0 / 3.0, 1e-12);
}

TEST(MixtureScheduleTest, TemperatureNeverResurrectsZeroWeights) {
  MixtureSchedule::Options options;
  options.phases = {
      {.first_step = 0, .weights = {1.0, 0.0, 3.0}, .temperature = 5.0},
  };
  MixtureSchedule schedule(options);
  std::vector<double> w = schedule.WeightsAt(7);
  EXPECT_EQ(w[1], 0.0);
  EXPECT_GT(w[0], 0.0);
  EXPECT_GT(w[2], 0.0);
}

TEST(MixtureScheduleTest, ScaleAtIsDeterministicBoundedAndPinnable) {
  MixtureSchedule::Options options = ThreePhaseCurriculum();
  options.scale_set = {256, 512, 1024};
  options.scale_seed = 0xABCDEF;
  options.phases[1].scale_index = 0;  // phase 1 pinned to 256
  MixtureSchedule a(options);
  MixtureSchedule b(options);
  for (int64_t step = 0; step < 64; ++step) {
    int32_t scale = a.ScaleAt(step);
    // Same structure, same seed: the pick is a pure function of the step.
    EXPECT_EQ(scale, b.ScaleAt(step));
    EXPECT_TRUE(scale == 256 || scale == 512 || scale == 1024);
    if (step >= 2 && step < 4) {
      EXPECT_EQ(scale, 256);  // the pinned phase overrides the seeded pick
    }
  }
  // No scale set: plans carry 0 and constructors use their configured cap.
  MixtureSchedule flat(ThreePhaseCurriculum());
  EXPECT_EQ(flat.ScaleAt(0), 0);
  // A different seed must actually change the sequence somewhere.
  options.scale_seed = 0xFEDCBA;
  MixtureSchedule reseeded(options);
  bool diverged = false;
  for (int64_t step = 4; step < 64 && !diverged; ++step) {
    diverged = reseeded.ScaleAt(step) != a.ScaleAt(step);
  }
  EXPECT_TRUE(diverged);
}

TEST(MixtureScheduleTest, OverridesReplaceBaseWeightsStepwise) {
  MixtureSchedule schedule(ThreePhaseCurriculum());
  ASSERT_TRUE(schedule.CommitOverride(3, {1.0, 0.0, 0.0, 0.0, 0.0}).ok());
  // Before the effective step: untouched phase weights.
  EXPECT_GT(schedule.WeightsAt(2)[1], 0.0);
  // From the effective step on: the override, with the phase's temperature
  // still applied (here T=2 on a one-hot is still one-hot after normalizing).
  std::vector<double> at3 = schedule.WeightsAt(3);
  EXPECT_NEAR(at3[0], 1.0, 1e-12);
  EXPECT_EQ(at3[1], 0.0);
  // A later override supersedes the earlier one from its own step onward.
  ASSERT_TRUE(schedule.CommitOverride(5, {0.0, 1.0, 0.0, 0.0, 0.0}).ok());
  EXPECT_NEAR(schedule.WeightsAt(4)[0], 1.0, 1e-12);
  EXPECT_NEAR(schedule.WeightsAt(5)[1], 1.0, 1e-12);
  EXPECT_NEAR(schedule.WeightsAt(9000)[1], 1.0, 1e-12);
}

TEST(MixtureScheduleTest, OverrideValidationRejectsBadWeights) {
  MixtureSchedule schedule(ThreePhaseCurriculum());
  EXPECT_FALSE(schedule.CommitOverride(-1, {1, 1, 1, 1, 1}).ok());
  EXPECT_FALSE(schedule.CommitOverride(0, {1, 1, 1}).ok());          // arity
  EXPECT_FALSE(schedule.CommitOverride(0, {1, 1, 1, 1, -0.5}).ok()); // negative
  EXPECT_FALSE(schedule.CommitOverride(0, {0, 0, 0, 0, 0}).ok());    // zero sum
  EXPECT_TRUE(schedule.OverridesSnapshot().empty());  // nothing leaked in
}

TEST(MixtureScheduleTest, OverridesSerializeRestoreByteIdentically) {
  MixtureSchedule a(ThreePhaseCurriculum());
  ASSERT_TRUE(a.CommitOverride(3, {1.0, 2.0, 3.0, 4.0, 5.0}).ok());
  ASSERT_TRUE(a.CommitOverride(9, {5.0, 4.0, 3.0, 2.0, 1.0}).ok());
  MixtureSchedule b(ThreePhaseCurriculum());
  ASSERT_TRUE(b.RestoreOverrides(a.SerializeOverrides()).ok());
  EXPECT_EQ(a.OverridesSnapshot(), b.OverridesSnapshot());
  for (int64_t step = 0; step < 16; ++step) {
    EXPECT_EQ(a.WeightsAt(step), b.WeightsAt(step)) << "step " << step;
  }
  // Corrupt blob: loud DataLoss, no partial state installed.
  MixtureSchedule c(ThreePhaseCurriculum());
  EXPECT_FALSE(c.RestoreOverrides("garbage").ok());
}

TEST(MixtureScheduleTest, StructuralFingerprintIgnoresOverrides) {
  MixtureSchedule::Options options = ThreePhaseCurriculum();
  options.scale_set = {512, 1024};
  MixtureSchedule schedule(options);
  const uint64_t before = schedule.StructuralFingerprint();
  ASSERT_TRUE(schedule.CommitOverride(4, {1, 1, 1, 1, 1}).ok());
  // Overrides are runtime planner state, not job identity: a resume with
  // overrides in flight must still pass the fingerprint check.
  EXPECT_EQ(schedule.StructuralFingerprint(), before);
  // But every structural knob must move it.
  options.scale_seed ^= 1;
  EXPECT_NE(MixtureSchedule(options).StructuralFingerprint(), before);
  options.scale_seed ^= 1;
  options.scale_set = {512};
  EXPECT_NE(MixtureSchedule(options).StructuralFingerprint(), before);
  options.scale_set = {512, 1024};
  options.phases[1].temperature = 3.0;
  EXPECT_NE(MixtureSchedule(options).StructuralFingerprint(), before);
}

// ---------------------------------------------------------------------------
// Session-level coverage: validation, the plan-cursor guard, curriculum
// streaming vs the oracle, and override checkpointing.
// ---------------------------------------------------------------------------

TEST(MixtureSessionTest, CreateValidatesScheduleOptions) {
  // Setting both schedule kinds is ambiguous.
  Session::Options both = MixtureBaseOptions();
  both.schedule = std::make_shared<StaticMix>(std::vector<double>(5, 1.0));
  EXPECT_FALSE(Session::Create(both).ok());
  // Arity must match the corpus (coyo700m has 5 sources).
  Session::Options arity = MixtureBaseOptions();
  MixtureSchedule::Options three;
  three.phases = {{.first_step = 0, .weights = {1.0, 1.0, 1.0}}};
  arity.mixture_schedule = std::make_shared<MixtureSchedule>(three);
  EXPECT_FALSE(Session::Create(arity).ok());
  // Scale entries must fit the packing bound.
  Session::Options oversized = MixtureBaseOptions();
  MixtureSchedule::Options big = ThreePhaseCurriculum();
  big.scale_set = {2048};  // > max_seq_len 1024
  oversized.mixture_schedule = std::make_shared<MixtureSchedule>(big);
  EXPECT_FALSE(Session::Create(oversized).ok());
}

TEST(MixtureSessionTest, UpdateMixtureRequiresScheduleAndUnplannedStep) {
  Session::Options plain = MixtureBaseOptions();
  plain.mixture_schedule = nullptr;
  auto no_schedule = Session::Create(plain);
  ASSERT_TRUE(no_schedule.ok());
  EXPECT_FALSE((*no_schedule)->UpdateMixture(-1, {1, 1, 1, 1, 1}).ok());

  auto session = Session::Create(MixtureBaseOptions());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StreamStep(**session);
  // Step 0 is long planned (and consumed): re-weighting it would fork the
  // already-issued stream.
  EXPECT_FALSE((*session)->UpdateMixture(0, {1, 1, 1, 1, 1}).ok());
  // -1 = the next unplanned step: always safe.
  EXPECT_TRUE((*session)->UpdateMixture(-1, {1, 1, 1, 1, 1}).ok());
}

TEST(MixtureSessionTest, CurriculumMatchesOracleAndExportsStatus) {
  Session::Options options = MixtureBaseOptions();
  MixtureSchedule::Options curriculum = ThreePhaseCurriculum();
  curriculum.scale_set = {256, 512, 1024};
  options.mixture_schedule = std::make_shared<MixtureSchedule>(curriculum);
  options.bound_pixel_decode = true;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  MixtureSchedule oracle_view(curriculum);
  for (int64_t step = 0; step < 6; ++step) {
    Result<PrefetchPipeline::Capture> capture = (*session)->CaptureStep(step);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    // The planner stamps the schedule's phase and seeded scale pick verbatim.
    EXPECT_EQ(capture->plan.mix_phase, oracle_view.PhaseIndexAt(step));
    EXPECT_EQ(capture->plan.pack_max_seq_len, oracle_view.ScaleAt(step));
    std::vector<RankBatch> streamed = StreamStep(**session);
    ExpectMatchesReference(capture.value(), options.spec, options.num_microbatches,
                           options.max_seq_len, /*max_decode_patches=*/options.max_seq_len,
                           streamed);
  }
  Planner::MixtureStatus mix = (*session)->LastMixtureStatus();
  EXPECT_GE(mix.step, 5);
  EXPECT_EQ(mix.effective_weights.size(), 5u);
  // The telemetry collector exports the same view as gauges.
  ASSERT_NE((*session)->metrics(), nullptr);
  TelemetrySnapshot snap = (*session)->metrics()->Snapshot();
  bool saw_phase = false, saw_scale = false, saw_weight = false;
  for (const MetricPoint& p : snap.points) {
    saw_phase |= p.name == "msd_mixture_phase";
    saw_scale |= p.name == "msd_mixture_scale";
    saw_weight |= p.name == "msd_mixture_effective_weight_s0";
  }
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_scale);
  EXPECT_TRUE(saw_weight);
}

TEST(MixtureSessionTest, ScheduleOffPlansCarryNoScaleStamp) {
  Session::Options options = MixtureBaseOptions();
  options.mixture_schedule = nullptr;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  Result<PrefetchPipeline::Capture> capture = (*session)->CaptureStep(0);
  ASSERT_TRUE(capture.ok());
  EXPECT_EQ(capture->plan.pack_max_seq_len, 0);
  EXPECT_EQ(capture->plan.mix_phase, -1);
  EXPECT_EQ((*session)->LastMixtureStatus().step, -1);
}

// ---------------------------------------------------------------------------
// Mid-phase resume: the checkpoint plane commits the schedule position and
// the override map, and the resumed stream continues byte-identically.
// ---------------------------------------------------------------------------

class MixtureResumeTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::ScratchDir("mixture_resume"); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(MixtureResumeTest, ResumeMidPhaseWithOverrideIsByteIdentical) {
  const int64_t kCheckpointAt = 3;  // inside phase 1 (steps 2..3)
  auto uninterrupted = Session::Create(MixtureBaseOptions());
  ASSERT_TRUE(uninterrupted.ok());
  // The override lands at step 6 — planned only after the resume, so the
  // resumed planner must replay it from the restored override map.
  ASSERT_TRUE((*uninterrupted)->UpdateMixture(6, {1.0, 0.0, 0.0, 1.0, 2.0}).ok());
  {
    auto session = Session::Create(MixtureBaseOptions());
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->UpdateMixture(6, {1.0, 0.0, 0.0, 1.0, 2.0}).ok());
    ExpectStepsIdentical(**session, **uninterrupted, kCheckpointAt);
    ASSERT_TRUE((*session)->Checkpoint(dir_).ok());
  }  // session destroyed: only the on-disk checkpoint survives

  Session::Options resumed_options = MixtureBaseOptions();
  resumed_options.resume_dir = dir_;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Steps 3..7 cross the phase-2 boundary (step 4) AND the override (step 6).
  ExpectStepsIdentical(**resumed, **uninterrupted, 5);
}

TEST_F(MixtureResumeTest, DpChangeResumeReplansCurriculumSamples) {
  const int64_t kCheckpointAt = 3;
  const ParallelismSpec new_mesh{.dp = 1, .pp = 1, .cp = 2, .tp = 1};  // dp 2 -> 1
  auto uninterrupted = Session::Create(MixtureBaseOptions());
  ASSERT_TRUE(uninterrupted.ok());
  {
    auto session = Session::Create(MixtureBaseOptions());
    ASSERT_TRUE(session.ok());
    ExpectStepsIdentical(**session, **uninterrupted, kCheckpointAt);
    ASSERT_TRUE((*session)->Checkpoint(dir_).ok());
  }

  Session::Options resumed_options = MixtureBaseOptions();
  resumed_options.spec = new_mesh;
  resumed_options.resume_dir = dir_;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  MixtureSchedule oracle_view(ThreePhaseCurriculum());
  // Steps 3..5 replan from the commit frontier under the new DP degree while
  // the curriculum crosses into phase 2: same samples drawn from the same
  // phase weights, placement re-derived, batches validated against the
  // oracle on the new mesh.
  for (int64_t s = kCheckpointAt; s < kCheckpointAt + 3; ++s) {
    Result<PrefetchPipeline::Capture> got_capture = (*resumed)->CaptureStep(s);
    Result<PrefetchPipeline::Capture> want_capture = (*uninterrupted)->CaptureStep(s);
    ASSERT_TRUE(got_capture.ok()) << got_capture.status().ToString();
    ASSERT_TRUE(want_capture.ok());
    EXPECT_EQ(PlanSampleIds(got_capture->plan), PlanSampleIds(want_capture->plan));
    EXPECT_EQ(got_capture->plan.mix_phase, oracle_view.PhaseIndexAt(s));
    EXPECT_EQ(got_capture->plan.num_buckets, new_mesh.dp);
    std::vector<RankBatch> got = StreamStep(**resumed);
    StreamStep(**uninterrupted);  // keep the reference stream step-aligned
    ExpectMatchesReference(got_capture.value(), new_mesh, 2, 1024,
                           /*max_decode_patches=*/0, got);
  }
}

// ---------------------------------------------------------------------------
// Quarantine x phase boundary: a source browning out at the exact step a
// curriculum phase flips must degrade deterministically — the quarantine
// masking and the new phase's weights renormalize together, and the planner
// RNG rollback keeps a failed strategy round from skewing later draws.
// ---------------------------------------------------------------------------

// One scripted run: brownout one source so quarantine triggers at step 2 —
// the same step phase 1 begins. Depth 0 keeps every script point
// step-aligned, so the run is a pure function of the options.
std::vector<RankBatch> RunQuarantineAtPhaseBoundary(std::map<int32_t, int64_t>* mid,
                                                    std::vector<double>* weights_mid) {
  Session::Options options = MixtureBaseOptions(/*prefetch_depth=*/0);
  // One file per source caps the autoscaler at one loader actor per source,
  // so quarantining the loader IS quarantining the source — the masked
  // effective weight below must drop to zero, not to the surviving actor's.
  for (SourceSpec& src : options.corpus.sources) {
    src.num_files = 1;
  }
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.samples_per_step = 16;
  options.row_group_bytes = 8 * kKiB;
  options.block_cache_bytes = 64 * kMiB;
  options.storage_faults.install = true;  // healthy until the script says not
  options.storage_faults.match_substr = "coyo700m/part-1/";
  options.io_retry.max_attempts = 2;
  options.io_retry.backoff_base_us = 100;
  options.quarantine_after_failures = 2;
  options.quarantine_probe_interval = 4;
  MixtureSchedule::Options curriculum;
  curriculum.phases = {
      {.first_step = 0, .weights = {1.0, 1.0, 1.0, 1.0, 1.0}, .temperature = 1.0},
      // Phase 1 starts at step 3 — the same step the quarantine lands (the
      // brownout starts at step 2; the loader's buffered metadata carries one
      // more gather, and the second consecutive failure trips the threshold
      // at 3) — and leans INTO the browning-out source, so the masking must
      // fight the curriculum and still come out deterministic.
      {.first_step = 3, .weights = {0.5, 4.0, 0.5, 0.5, 0.5}, .temperature = 0.5},
  };
  curriculum.scale_set = {512, 1024};
  options.mixture_schedule = std::make_shared<MixtureSchedule>(curriculum);
  auto session = Session::Create(options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  std::vector<RankBatch> collected;
  auto stream = [&](int64_t steps) {
    for (int64_t s = 0; s < steps; ++s) {
      std::vector<RankBatch> batches = ShimStep(**session);
      collected.insert(collected.end(), batches.begin(), batches.end());
    }
  };
  stream(2);  // steps 0-1: healthy, phase 0
  EXPECT_TRUE((*session)->QuarantinedLoaders().empty());
  (*session)->fault_store()->set_brownout(true);
  stream(2);  // steps 2-3: quarantine and phase flip land together at step 3
  *mid = (*session)->QuarantinedLoaders();
  EXPECT_FALSE(mid->empty());
  *weights_mid = (*session)->LastMixtureStatus().effective_weights;
  (*session)->fault_store()->set_brownout(false);
  stream(5);  // steps 4-8: probe re-admits, phase-1 weights fully restored
  EXPECT_TRUE((*session)->QuarantinedLoaders().empty());
  return collected;
}

TEST(MixtureQuarantineTest, QuarantineAtPhaseBoundaryIsDeterministic) {
  std::map<int32_t, int64_t> first_mid, second_mid;
  std::vector<double> first_weights, second_weights;
  std::vector<RankBatch> first = RunQuarantineAtPhaseBoundary(&first_mid, &first_weights);
  std::vector<RankBatch> second = RunQuarantineAtPhaseBoundary(&second_mid, &second_weights);
  // Same script, same seeds: the quarantine decision, the masked effective
  // weights, and every served batch replay identically.
  EXPECT_EQ(first_mid, second_mid);
  EXPECT_EQ(first_weights, second_weights);
  // The status view shows the mask: the browned-out source (part-1 = source
  // index 1) has its effective weight zeroed even though phase 1 leans into
  // it, while the survivors keep positive renormalized shares.
  ASSERT_EQ(first_weights.size(), 5u);
  EXPECT_EQ(first_weights[1], 0.0);
  EXPECT_GT(first_weights[0], 0.0);
  EXPECT_GT(first_weights[4], 0.0);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectBatchesIdentical(first[i], second[i]);
  }
}

// ---------------------------------------------------------------------------
// The randomized scenario sweep: 50 seeded (schedule x interruption)
// combinations, each byte-compared against its undisturbed twin and the
// reference oracle. Coverage no hand-picked matrix reaches: random phase
// boundaries landing on interruption steps, temperature extremes under
// faults, pinned scales across reshards, overrides straddling checkpoints.
// ---------------------------------------------------------------------------

enum class Interrupt {
  kNone = 0,
  kCheckpointResume = 1,
  kReshard = 2,
  kLoaderKill = 3,
  kStorageFaults = 4,
};

struct SweepScenario {
  uint64_t seed = 0;
  MixtureSchedule::Options schedule;
  Interrupt interrupt = Interrupt::kNone;
  int64_t interrupt_step = 2;
  bool bound_decode = false;
  bool defer_decode = false;
  bool with_override = false;
  std::vector<double> override_weights;
};

constexpr int64_t kSweepSteps = 7;
constexpr int64_t kOverrideStep = 5;

// Everything about a scenario derives from its seed — the failure message
// names the seed, so one gtest_filter re-runs the exact schedule.
SweepScenario MakeScenario(uint64_t seed) {
  std::mt19937_64 gen(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  std::uniform_real_distribution<double> weight_dist(0.2, 2.0);
  static const double kTemps[] = {0.5, 1.0, 2.0};
  SweepScenario sc;
  sc.seed = seed;
  sc.interrupt = static_cast<Interrupt>(seed % 5);
  sc.interrupt_step = 2 + static_cast<int64_t>(gen() % 3);  // 2..4
  const size_t num_phases = 1 + gen() % 3;
  std::vector<int64_t> firsts = {0};
  while (firsts.size() < num_phases) {
    int64_t f = 1 + static_cast<int64_t>(gen() % 5);  // boundaries in 1..5
    if (std::find(firsts.begin(), firsts.end(), f) == firsts.end()) {
      firsts.push_back(f);
    }
  }
  std::sort(firsts.begin(), firsts.end());
  for (int64_t first : firsts) {
    MixturePhase phase;
    phase.first_step = first;
    for (int s = 0; s < 5; ++s) {
      phase.weights.push_back(weight_dist(gen));
    }
    phase.temperature = kTemps[gen() % 3];
    sc.schedule.phases.push_back(std::move(phase));
  }
  if (gen() % 3 != 0) {  // two thirds of scenarios run multi-scale
    for (int32_t candidate : {256, 512, 1024}) {
      if (gen() % 2 == 0) {
        sc.schedule.scale_set.push_back(candidate);
      }
    }
    if (sc.schedule.scale_set.empty()) {
      sc.schedule.scale_set.push_back(512);
    }
    sc.schedule.scale_seed = 0x5ca1ab1eULL ^ seed;
    for (MixturePhase& phase : sc.schedule.phases) {
      if (gen() % 4 == 0) {  // occasional per-phase pin
        phase.scale_index = static_cast<int32_t>(gen() % sc.schedule.scale_set.size());
      }
    }
  }
  sc.bound_decode = gen() % 2 == 1;
  sc.defer_decode = gen() % 2 == 1;
  sc.with_override = gen() % 2 == 1;
  if (sc.with_override) {
    for (int s = 0; s < 5; ++s) {
      sc.override_weights.push_back(weight_dist(gen));
    }
  }
  return sc;
}

// `chaos` builds the interrupted session's options; the twin always gets the
// clean variant. Only byte-neutral knobs may differ between the two (cache,
// faults, retries) — byte-affecting ones (schedule, bound, defer, FT) match.
Session::Options ScenarioOptions(const SweepScenario& sc, bool chaos) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 2, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 8;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 64;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;
  options.seed = 2026 + sc.seed;
  options.mixture_schedule = std::make_shared<MixtureSchedule>(sc.schedule);
  options.bound_pixel_decode = sc.bound_decode;
  options.defer_image_decode = sc.defer_decode;
  if (sc.interrupt == Interrupt::kLoaderKill) {
    options.enable_fault_tolerance = true;  // both sides; only one gets killed
  }
  if (chaos && sc.interrupt == Interrupt::kStorageFaults) {
    // The canonical absorbable chaos mix (tests/chaos_test.cc): ~5% transient
    // failures with a retry budget sized to ride them out, plus produce-round
    // retries for the rare burst that outlives it. No corruption here: the
    // sweep's randomized read patterns can land a bit-flip on a startup
    // schema read, which no retry can absorb — chaos_test owns that axis.
    options.block_cache_bytes = 64 * kMiB;
    options.storage_faults.seed = 0xC4405;
    options.storage_faults.unavailable_p = 0.05;
    options.storage_faults.deadline_p = 0.02;
    options.io_retry.max_attempts = 5;
    options.io_retry.backoff_base_us = 100;
    options.io_retry.backoff_max_us = 2000;
    options.produce_retry_attempts = 4;
  }
  return options;
}

class MixtureSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixtureSweepTest, ScenarioStreamsByteIdenticalAndMatchesOracle) {
  const uint64_t seed = GetParam();
  const SweepScenario sc = MakeScenario(seed);
  SCOPED_TRACE("repro: ./msd_tests --gtest_filter='Sweep/MixtureSweepTest."
               "ScenarioStreamsByteIdenticalAndMatchesOracle/" +
               std::to_string(seed) + "'");
  auto interrupted = Session::Create(ScenarioOptions(sc, /*chaos=*/true));
  ASSERT_TRUE(interrupted.ok()) << interrupted.status().ToString();
  auto twin = Session::Create(ScenarioOptions(sc, /*chaos=*/false));
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  if (sc.with_override) {
    // Committed before any step is consumed, effective past every possible
    // interruption point — the override must survive whatever happens.
    ASSERT_TRUE((*interrupted)->UpdateMixture(kOverrideStep, sc.override_weights).ok());
    ASSERT_TRUE((*twin)->UpdateMixture(kOverrideStep, sc.override_weights).ok());
  }
  MixtureSchedule oracle_view(sc.schedule);
  ParallelismSpec mesh = ScenarioOptions(sc, false).spec;
  const int32_t decode_bound = sc.bound_decode ? 1024 : 0;
  bool resharded = false;
  std::string ckpt_dir;
  for (int64_t step = 0; step < kSweepSteps; ++step) {
    if (step == sc.interrupt_step) {
      switch (sc.interrupt) {
        case Interrupt::kNone:
        case Interrupt::kStorageFaults:  // the fault schedule runs throughout
          break;
        case Interrupt::kCheckpointResume: {
          ckpt_dir = testing::ScratchDir("mix_sweep");
          ASSERT_TRUE((*interrupted)->Checkpoint(ckpt_dir).ok());
          interrupted.value().reset();  // only the on-disk checkpoint survives
          Session::Options resumed = ScenarioOptions(sc, /*chaos=*/true);
          resumed.resume_dir = ckpt_dir;
          interrupted = Session::Create(std::move(resumed));
          ASSERT_TRUE(interrupted.ok()) << interrupted.status().ToString();
          break;
        }
        case Interrupt::kReshard: {
          const ParallelismSpec after{.dp = 2, .pp = 1, .cp = 1, .tp = 1};
          ASSERT_TRUE((*interrupted)->Reshard(after).ok());
          mesh = after;
          resharded = true;
          break;
        }
        case Interrupt::kLoaderKill: {
          const size_t victim = static_cast<size_t>(seed % (*interrupted)->num_loaders());
          Result<std::string> promoted = (*interrupted)->KillAndRecoverLoader(victim);
          ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
          break;
        }
      }
    }
    Result<PrefetchPipeline::Capture> capture = (*interrupted)->CaptureStep(step);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    Result<PrefetchPipeline::Capture> twin_capture = (*twin)->CaptureStep(step);
    ASSERT_TRUE(twin_capture.ok());
    // Plan stamps are a pure function of the schedule, whatever happened.
    EXPECT_EQ(capture->plan.mix_phase, oracle_view.PhaseIndexAt(step));
    EXPECT_EQ(capture->plan.pack_max_seq_len, oracle_view.ScaleAt(step));
    // Content identity holds across meshes: mixing precedes bucketing.
    EXPECT_EQ(PlanSampleIds(capture->plan), PlanSampleIds(twin_capture->plan));
    std::vector<RankBatch> streamed = StreamStep(**interrupted);
    std::vector<RankBatch> twin_streamed = StreamStep(**twin);
    if (!resharded) {
      // Same mesh: full byte identity with the undisturbed twin.
      ASSERT_EQ(streamed.size(), twin_streamed.size());
      for (size_t rank = 0; rank < streamed.size(); ++rank) {
        ExpectBatchesIdentical(streamed[rank], twin_streamed[rank]);
      }
    }
    // Always: byte identity with the scalar oracle on the live mesh (after a
    // reshard this is what pins down the rebuilt placement).
    ExpectMatchesReference(capture.value(), mesh, 2, 1024, decode_bound, streamed);
  }
  Planner::MixtureStatus mix = (*interrupted)->LastMixtureStatus();
  EXPECT_GE(mix.step, kSweepSteps - 1);
  EXPECT_EQ(mix.effective_weights.size(), 5u);
  if (!ckpt_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir, ec);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MixtureSweepTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace msd
