// Durable checkpoint & elastic resume (src/checkpoint/):
//  - a run that checkpoints at step K, destroys the Session, and resumes on
//    the same mesh (even with a different prefetch depth) serves batches
//    byte-identical to an uninterrupted run;
//  - resuming on a resharded mesh (cp changed, dp unchanged) matches an
//    uninterrupted run that called Reshard() at K — the journaled in-flight
//    plans are replayed against the new mesh;
//  - resuming with a different DP degree deterministically replans from the
//    commit frontier: same per-step sample sets, batches validated against
//    the scalar ReferenceDataPlane on the new mesh;
//  - a crash injected between blob staging and manifest publish resumes
//    from the previous checkpoint;
//  - writer/reader round-trip, checksum verification, and fingerprint
//    validation fail loudly instead of corrupting the stream.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/checkpoint/checkpoint.h"
#include "src/constructor/reference_assembly.h"
#include "tests/batch_identity.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory for one test's checkpoints; removed on teardown.
class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = testing::ScratchDir("ckpt"); }
  // Runs after the test body's sessions are destroyed; the non-throwing
  // overload tolerates any leftover write race.
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
    fs::remove_all(dir_ + "-gcs", ec);
  }

  std::string dir_;
};

Session::Options BaseOptions(int32_t prefetch_depth = 2) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 2, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 12;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = prefetch_depth;
  return options;
}

using testing::ExpectBatchesIdentical;

// Pulls one step's batch for every rank through the streaming clients.
std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

void ExpectStepsIdentical(Session& got, Session& want, int64_t steps) {
  const int32_t world = got.tree().spec().WorldSize();
  ASSERT_EQ(world, want.tree().spec().WorldSize());
  for (int64_t s = 0; s < steps; ++s) {
    std::vector<RankBatch> g = StreamStep(got);
    std::vector<RankBatch> w = StreamStep(want);
    for (int32_t rank = 0; rank < world; ++rank) {
      ExpectBatchesIdentical(g[static_cast<size_t>(rank)], w[static_cast<size_t>(rank)]);
    }
  }
}

// Replays a captured step through the frozen scalar reference plane and
// checks every rank's streamed batch against it.
void ExpectMatchesReference(const PrefetchPipeline::Capture& capture,
                            const ParallelismSpec& spec, int32_t num_microbatches,
                            int32_t max_seq_len, const std::vector<RankBatch>& streamed) {
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, num_microbatches);
  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    DataConstructorConfig config;
    config.constructor_id = dp;
    config.max_seq_len = max_seq_len;
    ReferenceDataPlane reference(config, &tree);
    ASSERT_TRUE(reference
                    .BuildStep(capture.plan,
                               capture.slices_per_constructor[static_cast<size_t>(dp)])
                    .ok());
    for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
      if (CoordOfRank(spec, rank).dp != dp) {
        continue;
      }
      Result<RankBatch> want = reference.GetBatch(rank, capture.plan.step);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)], want.value());
    }
  }
}

// Sorted sample ids the plan assigns (the step's content, placement-free).
std::vector<uint64_t> PlanSampleIds(const LoadingPlan& plan) {
  std::vector<uint64_t> ids;
  ids.reserve(plan.assignments.size());
  for (const SliceAssignment& a : plan.assignments) {
    ids.push_back(a.sample_id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST_F(CheckpointTest, WriterReaderRoundTripAndCrashInjection) {
  ObjectStore store;  // in-memory: the codec itself is backend-agnostic
  CheckpointState state;
  state.commit_step = 7;
  state.produce_frontier = 9;
  state.mesh = {.dp = 2, .pp = 1, .cp = 2, .tp = 1};
  state.prefetch_depth = 2;
  state.cursors = {7, 7, 8, 7, 7, 7, 7, 7};
  state.planner_at_commit.rng_state = 0x1234;
  state.planner_at_commit.next_unplanned = 7;
  state.planner_at_commit.plans_generated = 7;
  state.planner_at_frontier.rng_state = 0x5678;
  state.planner_at_frontier.next_unplanned = 9;
  state.planner_at_frontier.plans_generated = 9;
  state.planner_at_frontier.quarantined = {{1, 8}};
  state.planner_at_frontier.gather_failures = {{2, 1}};
  state.loader_snapshots[0] = "snapshot-zero";
  state.loader_snapshots[3] = "snapshot-three";
  state.plan_journal[7] = "plan-seven";
  state.plan_journal[8] = "plan-eight";
  state.fault_tolerance = true;
  state.ft_snapshots_taken = 2;
  state.ft_promotions = 1;
  state.fingerprint.corpus_hash = 0xABCD;
  state.fingerprint.seed = 42;

  CheckpointWriter writer(&store);
  Result<std::string> id = writer.Write(state);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(CheckpointReader::LatestId(store).value(), id.value());

  Result<CheckpointState> loaded = CheckpointReader::Load(store);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->commit_step, 7);
  EXPECT_EQ(loaded->produce_frontier, 9);
  EXPECT_EQ(loaded->mesh, state.mesh);
  EXPECT_EQ(loaded->cursors, state.cursors);
  EXPECT_EQ(loaded->planner_at_commit.rng_state, 0x1234u);
  EXPECT_EQ(loaded->planner_at_frontier.next_unplanned, 9);
  EXPECT_EQ(loaded->planner_at_frontier.quarantined, state.planner_at_frontier.quarantined);
  EXPECT_EQ(loaded->planner_at_frontier.gather_failures,
            state.planner_at_frontier.gather_failures);
  EXPECT_TRUE(loaded->planner_at_commit.quarantined.empty());
  EXPECT_EQ(loaded->loader_snapshots, state.loader_snapshots);
  EXPECT_EQ(loaded->plan_journal, state.plan_journal);
  EXPECT_TRUE(loaded->fault_tolerance);
  EXPECT_EQ(loaded->ft_promotions, 1);
  EXPECT_EQ(loaded->fingerprint, state.fingerprint);

  // Crash injection: a second checkpoint stages everything but never flips
  // LATEST — readers keep seeing the first one.
  state.commit_step = 20;
  CheckpointWriter crashing(&store, {.abort_before_publish = true});
  ASSERT_TRUE(crashing.Write(state).ok());
  Result<CheckpointState> after_crash = CheckpointReader::Load(store);
  ASSERT_TRUE(after_crash.ok());
  EXPECT_EQ(after_crash->commit_step, 7);
}

TEST_F(CheckpointTest, CorruptBlobAndManifestAreRejected) {
  ObjectStore store;
  CheckpointState state;
  state.commit_step = 3;
  state.produce_frontier = 3;
  state.loader_snapshots[1] = "loader-one-bytes";
  CheckpointWriter writer(&store);
  std::string id = writer.Write(state).value();

  // Flip a byte in a component blob: the checksum catches it.
  ASSERT_TRUE(store.Put(id + "/loader/1", "loader-one-bytEs").ok());
  EXPECT_EQ(CheckpointReader::Load(store).status().code(), StatusCode::kDataLoss);

  // Restore the blob, then flip one bit mid-manifest: the manifest's own
  // trailing checksum catches it before any field is trusted.
  ASSERT_TRUE(store.Put(id + "/loader/1", "loader-one-bytes").ok());
  std::string manifest = store.Open(id + "/manifest", 0).value().Contents();
  manifest[manifest.size() / 2] ^= 0x10;
  ASSERT_TRUE(store.Put(id + "/manifest", manifest).ok());
  EXPECT_EQ(CheckpointReader::Load(store).status().code(), StatusCode::kDataLoss);

  // Truncate the manifest: decode fails cleanly.
  ASSERT_TRUE(store.Put(id + "/manifest", "short").ok());
  EXPECT_EQ(CheckpointReader::Load(store).status().code(), StatusCode::kDataLoss);

  // No LATEST at all: NotFound, not a crash.
  ObjectStore empty;
  EXPECT_EQ(CheckpointReader::Load(empty).status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, SameMeshResumeIsByteIdenticalEvenWithNewDepth) {
  const int64_t kCheckpointAt = 3;
  const int64_t kResumedSteps = 3;
  auto uninterrupted = Session::Create(BaseOptions());
  ASSERT_TRUE(uninterrupted.ok());
  {
    auto session = Session::Create(BaseOptions());
    ASSERT_TRUE(session.ok());
    ExpectStepsIdentical(**session, **uninterrupted, kCheckpointAt);
    Result<std::string> id = (*session)->Checkpoint(dir_);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }  // Session destroyed: only the on-disk checkpoint survives.

  Session::Options resumed_options = BaseOptions(/*prefetch_depth=*/3);  // elastic depth
  resumed_options.resume_dir = dir_;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (int64_t s = kCheckpointAt; s < kCheckpointAt + kResumedSteps; ++s) {
    Result<PrefetchPipeline::Capture> capture = (*resumed)->CaptureStep(s);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    std::vector<RankBatch> got = StreamStep(**resumed);
    std::vector<RankBatch> want = StreamStep(**uninterrupted);
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
    }
    ExpectMatchesReference(capture.value(), BaseOptions().spec, /*num_microbatches=*/2,
                           /*max_seq_len=*/1024, got);
  }
}

TEST_F(CheckpointTest, FluentResumeFromMatchesOptionsPath) {
  {
    auto session = Session::Create(BaseOptions());
    ASSERT_TRUE(session.ok());
    StreamStep(**session);
    ASSERT_TRUE((*session)->Checkpoint(dir_).ok());
  }
  auto resumed = SessionBuilder()
                     .WithCorpus(MakeCoyo700m())
                     .WithMesh(BaseOptions().spec)
                     .WithMicrobatches(2)
                     .WithSamplesPerStep(12)
                     .WithMaxSeqLen(1024)
                     .WithRowsPerFile(96)
                     .WithLoaderWorkers(1)
                     .WithPrefetchDepth(2)
                     .ResumeFrom(dir_)
                     .Build();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ((*resumed)->current_step(), 0);  // shim cursor sits at the frontier
  Result<RankBatch> batch = (*resumed)->client(0).value()->NextBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->step, 1);  // continues, does not restart
}

TEST_F(CheckpointTest, ReshardedResumeMatchesUninterruptedReshard) {
  const int64_t kCheckpointAt = 2;
  const int64_t kResumedSteps = 3;
  const ParallelismSpec new_mesh{.dp = 2, .pp = 1, .cp = 1, .tp = 1};  // cp 2 -> 1

  auto uninterrupted = Session::Create(BaseOptions());
  ASSERT_TRUE(uninterrupted.ok());
  {
    auto session = Session::Create(BaseOptions());
    ASSERT_TRUE(session.ok());
    ExpectStepsIdentical(**session, **uninterrupted, kCheckpointAt);
    ASSERT_TRUE((*session)->Checkpoint(dir_).ok());
  }
  // The uninterrupted job reshards in place at K; the dead job's checkpoint
  // is resumed straight onto the new mesh. The journaled in-flight plans are
  // replayed against it, so both must serve the same bytes.
  ASSERT_TRUE((*uninterrupted)->Reshard(new_mesh).ok());

  Session::Options resumed_options = BaseOptions();
  resumed_options.spec = new_mesh;
  resumed_options.resume_dir = dir_;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (int64_t s = kCheckpointAt; s < kCheckpointAt + kResumedSteps; ++s) {
    Result<PrefetchPipeline::Capture> capture = (*resumed)->CaptureStep(s);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    std::vector<RankBatch> got = StreamStep(**resumed);
    std::vector<RankBatch> want = StreamStep(**uninterrupted);
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
    }
    ExpectMatchesReference(capture.value(), new_mesh, 2, 1024, got);
  }
}

TEST_F(CheckpointTest, DpChangeResumeReplansSameSamplesOnNewMesh) {
  const int64_t kCheckpointAt = 2;
  const int64_t kResumedSteps = 2;
  const ParallelismSpec new_mesh{.dp = 1, .pp = 1, .cp = 2, .tp = 1};  // dp 2 -> 1

  auto uninterrupted = Session::Create(BaseOptions());
  ASSERT_TRUE(uninterrupted.ok());
  {
    auto session = Session::Create(BaseOptions());
    ASSERT_TRUE(session.ok());
    ExpectStepsIdentical(**session, **uninterrupted, kCheckpointAt);
    ASSERT_TRUE((*session)->Checkpoint(dir_).ok());
  }

  Session::Options resumed_options = BaseOptions();
  resumed_options.spec = new_mesh;
  resumed_options.resume_dir = dir_;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (int64_t s = kCheckpointAt; s < kCheckpointAt + kResumedSteps; ++s) {
    Result<PrefetchPipeline::Capture> got_capture = (*resumed)->CaptureStep(s);
    Result<PrefetchPipeline::Capture> want_capture = (*uninterrupted)->CaptureStep(s);
    ASSERT_TRUE(got_capture.ok()) << got_capture.status().ToString();
    ASSERT_TRUE(want_capture.ok());
    // Source mixing precedes bucketing, so the replanned step draws the very
    // same samples — only their placement follows the new DP degree.
    EXPECT_EQ(PlanSampleIds(got_capture->plan), PlanSampleIds(want_capture->plan));
    EXPECT_EQ(got_capture->plan.num_buckets, new_mesh.dp);
    std::vector<RankBatch> got = StreamStep(**resumed);
    StreamStep(**uninterrupted);  // keep the reference stream step-aligned
    ExpectMatchesReference(got_capture.value(), new_mesh, 2, 1024, got);
  }
}

TEST_F(CheckpointTest, CrashBeforePublishResumesFromPreviousCheckpoint) {
  const int64_t kFirstCheckpoint = 2;
  const int64_t kSecondCheckpoint = 4;
  {
    auto session = Session::Create(BaseOptions());
    ASSERT_TRUE(session.ok());
    for (int64_t s = 0; s < kFirstCheckpoint; ++s) {
      StreamStep(**session);
    }
    ASSERT_TRUE((*session)->Checkpoint(dir_).ok());
    for (int64_t s = kFirstCheckpoint; s < kSecondCheckpoint; ++s) {
      StreamStep(**session);
    }
    // The "crash": every blob of the second checkpoint is staged, but the
    // process dies before the manifest pointer flip.
    CheckpointWriter::Options crash;
    crash.abort_before_publish = true;
    ASSERT_TRUE((*session)->Checkpoint(dir_, crash).ok());
  }

  // A fresh reference run fast-forwarded to the *first* checkpoint's step.
  auto reference = Session::Create(BaseOptions());
  ASSERT_TRUE(reference.ok());
  for (int64_t s = 0; s < kFirstCheckpoint; ++s) {
    StreamStep(**reference);
  }
  Session::Options resumed_options = BaseOptions();
  resumed_options.resume_dir = dir_;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectStepsIdentical(**resumed, **reference, 2);
}

TEST_F(CheckpointTest, ResumeUnderFaultToleranceSurvivesLoaderKill) {
  Session::Options options = BaseOptions();
  options.enable_fault_tolerance = true;
  options.loader_snapshot_interval = 2;
  options.gcs_spill_dir = dir_ + "-gcs";  // journal write-through to disk
  auto uninterrupted = Session::Create(options);
  ASSERT_TRUE(uninterrupted.ok());
  {
    auto session = Session::Create(options);
    ASSERT_TRUE(session.ok());
    ExpectStepsIdentical(**session, **uninterrupted, 2);
    ASSERT_TRUE((*session)->Checkpoint(dir_).ok());
  }
  Session::Options resumed_options = options;
  resumed_options.resume_dir = dir_;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectStepsIdentical(**resumed, **uninterrupted, 1);
  // The restored shadows mirror the rewound primaries, so failover after a
  // resume still serves the identical stream.
  Result<std::string> resumed_promoted = (*resumed)->KillAndRecoverLoader(0);
  Result<std::string> reference_promoted = (*uninterrupted)->KillAndRecoverLoader(0);
  ASSERT_TRUE(resumed_promoted.ok()) << resumed_promoted.status().ToString();
  ASSERT_TRUE(reference_promoted.ok());
  ExpectStepsIdentical(**resumed, **uninterrupted, 2);
  // The durable GCS spill carried plan-journal and loader-snapshot writes to
  // disk atomically (no half-written or staging files).
  ObjectStore spill(dir_ + "-gcs");
  EXPECT_FALSE(spill.List("gcs/planner/plan/").empty());
  EXPECT_FALSE(spill.List("gcs/ft/loader_snapshot/").empty());
}

TEST_F(CheckpointTest, DisabledJournalLeansOutTheProducerAndRejectsCheckpoint) {
  Session::Options options = BaseOptions();
  options.enable_checkpoint_journal = false;  // lean producer: no rewind asks
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  StreamStep(**session);
  EXPECT_EQ((*session)->Checkpoint(dir_).status().code(),
            StatusCode::kFailedPrecondition);
}

// Distinct "ckpt-<seq>-s<step>" generation prefixes currently in the store.
std::vector<std::string> Generations(const ObjectStore& store) {
  std::vector<std::string> generations;
  for (const std::string& name : store.List("ckpt-")) {
    size_t slash = name.find('/');
    if (slash == std::string::npos) {
      continue;
    }
    std::string gen = name.substr(0, slash);
    if (std::find(generations.begin(), generations.end(), gen) == generations.end()) {
      generations.push_back(std::move(gen));
    }
  }
  return generations;
}

TEST_F(CheckpointTest, RetentionKeepsNewestGenerationsAndSparesLatest) {
  ObjectStore store;
  CheckpointState state;
  state.loader_snapshots[0] = "snapshot";
  CheckpointWriter::Options keep2;
  keep2.keep_generations = 2;
  CheckpointWriter writer(&store, keep2);
  for (int64_t step = 1; step <= 4; ++step) {
    state.commit_step = step;
    ASSERT_TRUE(writer.Write(state).ok());
  }
  // Only the two newest generations survive, and LATEST still loads.
  EXPECT_EQ(Generations(store).size(), 2u);
  Result<CheckpointState> loaded = CheckpointReader::Load(store);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->commit_step, 4);
}

TEST_F(CheckpointTest, RetentionNeverRunsOnAbortedPublishAndSparesLatest) {
  ObjectStore store;
  CheckpointState state;
  state.commit_step = 1;
  CheckpointWriter published(&store);
  ASSERT_TRUE(published.Write(state).ok());  // gen 1, LATEST -> 1

  // A crash-injected write with aggressive retention must not GC: the flip
  // never happened, so deleting would orphan the only good checkpoint.
  CheckpointWriter::Options crash_keep1;
  crash_keep1.abort_before_publish = true;
  crash_keep1.keep_generations = 1;
  state.commit_step = 2;
  ASSERT_TRUE(CheckpointWriter(&store, crash_keep1).Write(state).ok());
  EXPECT_EQ(Generations(store).size(), 2u);  // staged orphan + good gen
  ASSERT_TRUE(CheckpointReader::Load(store).ok());
  EXPECT_EQ(CheckpointReader::Load(store)->commit_step, 1);

  // The next successful publish GCs both the orphan and the old generation,
  // keeping exactly what LATEST names.
  CheckpointWriter::Options keep1;
  keep1.keep_generations = 1;
  state.commit_step = 3;
  Result<std::string> id = CheckpointWriter(&store, keep1).Write(state);
  ASSERT_TRUE(id.ok());
  std::vector<std::string> generations = Generations(store);
  ASSERT_EQ(generations.size(), 1u);
  EXPECT_EQ(generations[0], id.value());
  EXPECT_EQ(CheckpointReader::Load(store)->commit_step, 3);
}

TEST_F(CheckpointTest, AutoCheckpointResumesFromLatestGenerationAfterKill) {
  const int64_t kSteps = 6;
  const int64_t kReferenceSteps = kSteps + 6;  // covers resumed re-serves
  Session::Options options = BaseOptions();
  options.auto_checkpoint_dir = dir_;
  options.auto_checkpoint_every = 2;
  options.checkpoint_keep_generations = 2;
  const int32_t world = options.spec.WorldSize();

  // Reference: an uninterrupted run of the same stream, batches kept per
  // (step, rank) so resumed ranks can be checked wherever their cursor lands.
  auto reference = Session::Create(BaseOptions());
  ASSERT_TRUE(reference.ok());
  std::vector<std::vector<RankBatch>> want;
  for (int64_t s = 0; s < kReferenceSteps; ++s) {
    want.push_back(StreamStep(**reference));
  }

  {
    auto session = Session::Create(options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (int64_t s = 0; s < kSteps; ++s) {
      StreamStep(**session);
    }
  }  // mid-stream kill: no explicit Checkpoint() call anywhere

  // The periodic save published at least one generation, retention kept at
  // most the configured two, and the newest loads cleanly.
  ObjectStore ckpt_store(dir_);
  std::vector<std::string> generations = Generations(ckpt_store);
  ASSERT_FALSE(generations.empty());
  EXPECT_LE(generations.size(), 2u);
  Result<CheckpointState> latest = CheckpointReader::Load(ckpt_store);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();

  // Resume from the latest auto-saved generation; every rank continues from
  // its saved cursor and the re-served stream matches the reference bytes.
  // Drain step-by-step ACROSS ranks: a single rank pulled kSteps ahead of
  // parked neighbours would pin the retire floor and exhaust the bounded
  // prefetch window — a consumer-side deadlock, not a pipeline bug.
  Session::Options resumed_options = options;
  resumed_options.resume_dir = dir_;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  std::vector<DataClient*> clients;
  for (int32_t rank = 0; rank < world; ++rank) {
    clients.push_back((*resumed)->client(rank).value());
    ASSERT_GE(clients.back()->next_step(), latest->commit_step);
  }
  bool drained = false;
  while (!drained) {
    drained = true;
    for (int32_t rank = 0; rank < world; ++rank) {
      if (clients[static_cast<size_t>(rank)]->next_step() > kSteps) {
        continue;
      }
      drained = false;
      Result<RankBatch> got = clients[static_cast<size_t>(rank)]->NextBatch();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_LT(got->step, kReferenceSteps);
      ExpectBatchesIdentical(got.value(),
                             want[static_cast<size_t>(got->step)][static_cast<size_t>(rank)]);
    }
  }
}

TEST_F(CheckpointTest, AutoCheckpointRejectsUnsupportedConfigurations) {
  Session::Options missing_interval = BaseOptions();
  missing_interval.auto_checkpoint_dir = dir_;
  EXPECT_EQ(Session::Create(std::move(missing_interval)).status().code(),
            StatusCode::kInvalidArgument);

  Session::Options no_journal = BaseOptions();
  no_journal.auto_checkpoint_dir = dir_;
  no_journal.auto_checkpoint_every = 2;
  no_journal.enable_checkpoint_journal = false;
  EXPECT_EQ(Session::Create(std::move(no_journal)).status().code(),
            StatusCode::kInvalidArgument);

  Session::Options synchronous = BaseOptions(/*prefetch_depth=*/0);
  synchronous.auto_checkpoint_dir = dir_;
  synchronous.auto_checkpoint_every = 2;
  EXPECT_EQ(Session::Create(std::move(synchronous)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, ResumeRejectsMismatchedOptions) {
  {
    auto session = Session::Create(BaseOptions());
    ASSERT_TRUE(session.ok());
    StreamStep(**session);
    ASSERT_TRUE((*session)->Checkpoint(dir_).ok());
  }
  Session::Options wrong = BaseOptions();
  wrong.samples_per_step = 20;  // stream-shaping option changed
  wrong.resume_dir = dir_;
  EXPECT_EQ(Session::Create(std::move(wrong)).status().code(),
            StatusCode::kFailedPrecondition);

  Session::Options missing = BaseOptions();
  missing.resume_dir = dir_ + "/nonexistent";
  EXPECT_EQ(Session::Create(std::move(missing)).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace msd
