// Storage chaos plane, end to end: a seeded fault schedule (transient
// Unavailable / DeadlineExceeded, bit-flip corruption, scripted brownouts)
// drives the full Session stack — fault(latency(base)) store, IoScheduler
// retries, loader sticky-refill errors, planner quarantine, produce retries,
// watchdog promotion — and the stream must come out byte-identical to an
// undisturbed run. Determinism is the whole point: every scenario here either
// compares against a fault-free twin or replays itself and compares run one
// against run two.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "tests/batch_identity.h"
#include "tests/scratch_dir.h"

// Sanitizer instrumentation slows every operation by an order of magnitude;
// the silent-hang detection thresholds below must scale with it, or healthy
// (merely instrumented) loaders blow the RPC deadline and get promoted
// spuriously until the standby set runs dry. The wedged loader never answers
// at all, so detection works at any threshold — only false positives scale.
#if defined(__SANITIZE_THREAD__)
#define MSD_CHAOS_SLOWDOWN 40
#elif defined(__SANITIZE_ADDRESS__)
#define MSD_CHAOS_SLOWDOWN 8
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MSD_CHAOS_SLOWDOWN 40
#elif __has_feature(address_sanitizer)
#define MSD_CHAOS_SLOWDOWN 8
#endif
#endif
#ifndef MSD_CHAOS_SLOWDOWN
#define MSD_CHAOS_SLOWDOWN 1
#endif

namespace msd {
namespace {

using testing::ExpectBatchesIdentical;

Session::Options BaseOptions(int32_t prefetch_depth = 2) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = prefetch_depth;
  options.row_group_bytes = 8 * kKiB;  // several groups per file
  return options;
}

// The canonical chaos mix: simulated remote latency plus a seeded schedule of
// transient failures and rare corruption, with a retry budget sized to absorb
// all of it. Fault-free twins use BaseOptions() — same plan RNG, no chaos.
Session::Options ChaosOptions(int32_t prefetch_depth = 2) {
  Session::Options options = BaseOptions(prefetch_depth);
  options.block_cache_bytes = 64 * kMiB;
  options.read_ahead_groups = 2;
  options.storage_get_latency = 200;  // 0.2 ms: remote, but test-fast
  options.storage_faults.seed = 0xC4405;
  options.storage_faults.unavailable_p = 0.05;
  options.storage_faults.deadline_p = 0.02;
  options.storage_faults.corrupt_p = 0.01;
  options.io_retry.max_attempts = 5;
  options.io_retry.backoff_base_us = 100;  // test-fast backoff
  options.io_retry.backoff_max_us = 2000;
  options.produce_retry_attempts = 4;  // rides out a rare double-corruption
  return options;
}

// Pulls one step's batch for every rank through the streaming clients.
std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

void ExpectStepIdentical(Session& chaos, Session& calm) {
  std::vector<RankBatch> got = StreamStep(chaos);
  std::vector<RankBatch> want = StreamStep(calm);
  ASSERT_EQ(got.size(), want.size());
  for (size_t rank = 0; rank < got.size(); ++rank) {
    ExpectBatchesIdentical(got[rank], want[rank]);
  }
}

// Advances the synchronous shim one step and fetches every rank's batch.
std::vector<RankBatch> ShimStep(Session& session) {
  EXPECT_TRUE(session.AdvanceStep().ok());
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.GetBatch(rank);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

// ---------------------------------------------------------------------------
// Scenario 1: faults the retry budget can absorb are invisible in the bytes.
// ---------------------------------------------------------------------------

TEST(ChaosTest, RecoverableChaosStaysByteIdentical) {
  auto calm = Session::Create(BaseOptions());
  auto chaos = Session::Create(ChaosOptions());
  ASSERT_TRUE(calm.ok());
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  // Pile a loader kill on top of the fault schedule: recovery paths compose.
  Session::Options ft_options = ChaosOptions();
  ft_options.enable_fault_tolerance = true;
  auto chaos_ft = Session::Create(ft_options);
  ASSERT_TRUE(chaos_ft.ok()) << chaos_ft.status().ToString();

  for (int64_t step = 0; step < 2; ++step) {
    std::vector<RankBatch> want = StreamStep(**calm);
    std::vector<RankBatch> got = StreamStep(**chaos);
    std::vector<RankBatch> got_ft = StreamStep(**chaos_ft);
    for (size_t rank = 0; rank < want.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
      ExpectBatchesIdentical(got_ft[rank], want[rank]);
    }
  }
  // Mid-stream escalation: a scoped brownout (next 3 Gets fail) plus an
  // explicit loader kill on the FT session. Both are within budget; the
  // stream must not fork.
  ASSERT_NE((*chaos)->fault_store(), nullptr);
  (*chaos)->fault_store()->BrownoutNextGets(3);
  ASSERT_TRUE((*chaos_ft)->KillAndRecoverLoader(0).ok());
  for (int64_t step = 2; step < 5; ++step) {
    std::vector<RankBatch> want = StreamStep(**calm);
    std::vector<RankBatch> got = StreamStep(**chaos);
    std::vector<RankBatch> got_ft = StreamStep(**chaos_ft);
    for (size_t rank = 0; rank < want.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
      ExpectBatchesIdentical(got_ft[rank], want[rank]);
    }
  }

  // The chaos actually happened, and the retry machinery actually absorbed
  // it — this test must never pass vacuously on a healthy store.
  Session::IoStats io = (*chaos)->io_stats();
  EXPECT_GT(io.faults_injected, 0);
  EXPECT_GT(io.scheduler.retries, 0);
  EXPECT_GT(io.scheduler.retry_successes, 0);
  EXPECT_GT(io.brownout_failures, 0);
  // Nothing escalated past the I/O layer: no quarantine, no failed steps.
  EXPECT_TRUE((*chaos)->QuarantinedLoaders().empty());
  EXPECT_EQ(io.sources_quarantined, 0);
}

// ---------------------------------------------------------------------------
// Scenario 2: faults the retry budget cannot absorb quarantine the source —
// deterministically, twice over — and heal back in after the brownout lifts.
// ---------------------------------------------------------------------------

// One full scripted run: healthy steps, a brownout of one source that outlives
// the retry budget (quarantine), then the brownout lifts (re-admission at the
// next probe boundary). Depth 0 keeps every script point step-aligned, so the
// whole scenario is a pure function of the options — run it twice and the
// batches must match byte for byte.
std::vector<RankBatch> RunScriptedBrownout(std::map<int32_t, int64_t>* quarantined_mid) {
  Session::Options options = BaseOptions(/*prefetch_depth=*/0);
  options.block_cache_bytes = 64 * kMiB;
  options.storage_faults.install = true;  // healthy until the script says not
  options.storage_faults.match_substr = "coyo700m/part-1/";
  options.io_retry.max_attempts = 2;
  options.io_retry.backoff_base_us = 100;
  options.quarantine_after_failures = 2;
  options.quarantine_probe_interval = 4;
  auto session = Session::Create(options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  std::vector<RankBatch> collected;
  auto stream = [&](int64_t steps) {
    for (int64_t s = 0; s < steps; ++s) {
      std::vector<RankBatch> batches = ShimStep(**session);
      collected.insert(collected.end(), batches.begin(), batches.end());
    }
  };
  stream(2);  // steps 0-1: healthy
  EXPECT_TRUE((*session)->QuarantinedLoaders().empty());

  // Brownout one source's files indefinitely: refills fail past the retry
  // budget, two failed gathers in a row quarantine the loader, and the
  // mixture renormalizes over the survivors. The stream stays alive.
  (*session)->fault_store()->set_brownout(true);
  stream(2);  // steps 2-3: quarantine kicks in at step 2, degraded but serving
  *quarantined_mid = (*session)->QuarantinedLoaders();
  EXPECT_FALSE(quarantined_mid->empty());
  EXPECT_GT((*session)->io_stats().brownout_failures, 0);

  // Lift the brownout: the probe at the next boundary (quarantined_step + 4)
  // gathers a healthy answer and re-admits the source.
  (*session)->fault_store()->set_brownout(false);
  stream(5);  // steps 4-8: probe fires by step 6, mixture restored
  EXPECT_TRUE((*session)->QuarantinedLoaders().empty());
  return collected;
}

TEST(ChaosTest, PersistentFaultsTriggerDeterministicQuarantine) {
  std::map<int32_t, int64_t> first_mid;
  std::map<int32_t, int64_t> second_mid;
  std::vector<RankBatch> first = RunScriptedBrownout(&first_mid);
  std::vector<RankBatch> second = RunScriptedBrownout(&second_mid);
  // Same script, same seeds: the quarantine decision (who, at which step) and
  // every served batch replay identically.
  EXPECT_EQ(first_mid, second_mid);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectBatchesIdentical(first[i], second[i]);
  }
}

// ---------------------------------------------------------------------------
// Scenario 3: a checkpoint taken mid-chaos resumes byte-identically — the
// retry burst leaves no trace in the durable position.
// ---------------------------------------------------------------------------

TEST(ChaosTest, CheckpointResumeStraddlesRetryBurstByteIdentically) {
  const std::string dir = testing::ScratchDir("chaos_resume");
  auto calm = Session::Create(BaseOptions());
  ASSERT_TRUE(calm.ok());
  {
    auto session = Session::Create(ChaosOptions());
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (int64_t s = 0; s < 2; ++s) {
      ExpectStepIdentical(**session, **calm);
    }
    // The checkpoint commits while the schedule is still rolling faults; the
    // retries it absorbed must not leak into the persisted cursors.
    EXPECT_GT((*session)->io_stats().faults_injected, 0);
    Result<std::string> id = (*session)->Checkpoint(dir);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }  // chaos session destroyed: only the on-disk checkpoint survives

  Session::Options resumed_options = ChaosOptions();
  resumed_options.resume_dir = dir;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (int64_t s = 0; s < 3; ++s) {
    ExpectStepIdentical(**resumed, **calm);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Scenario 4: a silently hung loader (no crash, no error — just no progress)
// is detected by the heartbeat watchdog mid-stream and its shadow promoted,
// without the consumer seeing a failed step.
// ---------------------------------------------------------------------------

TEST(ChaosTest, WatchdogPromotesSilentlyHungLoaderMidStream) {
  Session::Options options = BaseOptions();
  options.enable_fault_tolerance = true;
  options.watchdog_interval_ms = 20 * MSD_CHAOS_SLOWDOWN;
  options.watchdog_heartbeat_timeout_ms = 250 * MSD_CHAOS_SLOWDOWN;
  // Hung gathers/pops time out instead of blocking production forever.
  options.loader_rpc_timeout_ms = 50 * MSD_CHAOS_SLOWDOWN;
  options.produce_retry_attempts = 12;  // survive gathers until the promotion lands
  auto calm_options = BaseOptions();
  auto calm = Session::Create(calm_options);
  auto session = Session::Create(options);
  ASSERT_TRUE(calm.ok());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ExpectStepIdentical(**session, **calm);

  // Wedge one primary loader's actor thread: it stays registered and alive,
  // it just stops answering. Only the heartbeat watchdog can tell.
  std::atomic<bool> release{false};
  std::shared_ptr<Actor> victim;
  for (const SourceSpec& spec : MakeCoyo700m().sources) {
    for (int32_t id = 0; id < 16 && victim == nullptr; ++id) {
      victim = (*session)->actor_system().Find("source_loader/" + spec.name + "#" +
                                               std::to_string(id));
    }
    if (victim != nullptr) {
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "no primary loader actor found by name";
  (*session)->actor_system().Post(*victim, [&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // The stream rides through: gathers against the wedged loader time out,
  // produce retries keep the step alive, the watchdog notices the stale
  // heartbeat and swaps in the shadow — all behind NextBatch.
  for (int64_t step = 1; step < 4; ++step) {
    ExpectStepIdentical(**session, **calm);
  }
  EXPECT_GE((*session)->io_stats().watchdog_detections, 1);
  EXPECT_FALSE((*session)->actor_system().gcs().IsAlive(victim->name()));
  release.store(true);  // let the wedged thread drain before teardown
}

}  // namespace
}  // namespace msd
