#include <gtest/gtest.h>

#include "src/plan/mix.h"

namespace msd {
namespace {

TEST(StaticMixTest, ConstantWeights) {
  StaticMix mix({1.0, 2.0, 3.0});
  EXPECT_EQ(mix.num_sources(), 3u);
  EXPECT_EQ(mix.WeightsAt(0), mix.WeightsAt(1000));
}

TEST(StagedMixTest, StagesSwitchAtBoundaries) {
  StagedMix mix({{0, {1.0, 0.0}}, {100, {0.5, 0.5}}, {200, {0.0, 1.0}}});
  EXPECT_EQ(mix.WeightsAt(0), (std::vector<double>{1.0, 0.0}));
  EXPECT_EQ(mix.WeightsAt(99), (std::vector<double>{1.0, 0.0}));
  EXPECT_EQ(mix.WeightsAt(100), (std::vector<double>{0.5, 0.5}));
  EXPECT_EQ(mix.WeightsAt(150), (std::vector<double>{0.5, 0.5}));
  EXPECT_EQ(mix.WeightsAt(5000), (std::vector<double>{0.0, 1.0}));
}

TEST(StagedMixTest, UnsortedStagesAreSorted) {
  StagedMix mix({{100, {0.0, 1.0}}, {0, {1.0, 0.0}}});
  EXPECT_EQ(mix.WeightsAt(0), (std::vector<double>{1.0, 0.0}));
  EXPECT_EQ(mix.WeightsAt(100), (std::vector<double>{0.0, 1.0}));
}

TEST(WarmupMixTest, InterpolatesLinearly) {
  WarmupMix mix({1.0, 0.0}, {0.0, 1.0}, 10);
  EXPECT_EQ(mix.WeightsAt(0), (std::vector<double>{1.0, 0.0}));
  auto mid = mix.WeightsAt(5);
  EXPECT_NEAR(mid[0], 0.5, 1e-12);
  EXPECT_NEAR(mid[1], 0.5, 1e-12);
  EXPECT_EQ(mix.WeightsAt(10), (std::vector<double>{0.0, 1.0}));
  EXPECT_EQ(mix.WeightsAt(99), (std::vector<double>{0.0, 1.0}));  // clamped
}

TEST(DynamicMixTest, CallbackDrivesWeights) {
  DynamicMix mix(2, [](int64_t step) {
    return std::vector<double>{1.0, static_cast<double>(step)};
  });
  EXPECT_EQ(mix.WeightsAt(0)[1], 0.0);
  EXPECT_EQ(mix.WeightsAt(7)[1], 7.0);
}

TEST(MixSamplerTest, ProportionsFollowWeights) {
  StaticMix mix({3.0, 1.0});
  MixSampler sampler(&mix);
  Rng rng(1);
  std::vector<int64_t> available = {100000, 100000};
  auto draws = sampler.SampleSources(0, 8000, available, rng);
  ASSERT_TRUE(draws.ok());
  int64_t first = 0;
  for (size_t s : draws.value()) {
    if (s == 0) {
      ++first;
    }
  }
  EXPECT_NEAR(static_cast<double>(first) / 8000.0, 0.75, 0.02);
}

TEST(MixSamplerTest, ExhaustedSourceMasked) {
  StaticMix mix({1.0, 1.0});
  MixSampler sampler(&mix);
  Rng rng(2);
  std::vector<int64_t> available = {3, 100};
  auto draws = sampler.SampleSources(0, 50, available, rng);
  ASSERT_TRUE(draws.ok());
  int64_t first = 0;
  for (size_t s : draws.value()) {
    if (s == 0) {
      ++first;
    }
  }
  EXPECT_EQ(first, 3);  // exactly the available supply
}

TEST(MixSamplerTest, TotalExhaustionFails) {
  StaticMix mix({1.0, 1.0});
  MixSampler sampler(&mix);
  Rng rng(3);
  std::vector<int64_t> available = {2, 2};
  auto draws = sampler.SampleSources(0, 10, available, rng);
  EXPECT_EQ(draws.status().code(), StatusCode::kResourceExhausted);
}

TEST(MixSamplerTest, SizeMismatchRejected) {
  StaticMix mix({1.0, 1.0});
  MixSampler sampler(&mix);
  Rng rng(4);
  std::vector<int64_t> available = {5};
  EXPECT_EQ(sampler.SampleSources(0, 1, available, rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MixSamplerTest, ZeroWeightSourceNeverDrawn) {
  StaticMix mix({1.0, 0.0});
  MixSampler sampler(&mix);
  Rng rng(5);
  std::vector<int64_t> available = {1000, 1000};
  auto draws = sampler.SampleSources(0, 200, available, rng);
  ASSERT_TRUE(draws.ok());
  for (size_t s : draws.value()) {
    EXPECT_EQ(s, 0u);
  }
}

TEST(MixSamplerTest, CurriculumShiftsDrawsOverSteps) {
  StagedMix mix({{0, {1.0, 0.0}}, {10, {0.0, 1.0}}});
  MixSampler sampler(&mix);
  Rng rng(6);
  std::vector<int64_t> available = {1000, 1000};
  auto early = sampler.SampleSources(0, 100, available, rng);
  auto late = sampler.SampleSources(20, 100, available, rng);
  ASSERT_TRUE(early.ok());
  ASSERT_TRUE(late.ok());
  for (size_t s : early.value()) {
    EXPECT_EQ(s, 0u);
  }
  for (size_t s : late.value()) {
    EXPECT_EQ(s, 1u);
  }
}

}  // namespace
}  // namespace msd
