#include <gtest/gtest.h>

#include "src/graph/dataflow_graph.h"

namespace msd {
namespace {

DataflowNode MakeNode(uint64_t sample_id) {
  DataflowNode node;
  node.meta.sample_id = sample_id;
  node.loader_id = 1;
  return node;
}

TEST(DataflowGraphTest, AddNodeAssignsSequentialIds) {
  DataflowGraph g;
  EXPECT_EQ(g.AddNode(MakeNode(10)), 0);
  EXPECT_EQ(g.AddNode(MakeNode(11)), 1);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node(0).meta.sample_id, 10u);
}

TEST(DataflowGraphTest, InPlaceTransitionWithoutLineage) {
  DataflowGraph g(/*track_lineage=*/false);
  int64_t id = g.AddNode(MakeNode(1));
  int64_t next = g.Transition(id, SampleState::kSampled, "mix");
  EXPECT_EQ(next, id);
  EXPECT_EQ(g.node(id).state, SampleState::kSampled);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(DataflowGraphTest, LineageTransitionAppendsNodes) {
  DataflowGraph g(/*track_lineage=*/true);
  int64_t id = g.AddNode(MakeNode(1));
  int64_t sampled = g.Transition(id, SampleState::kSampled, "mix");
  int64_t assigned = g.Transition(sampled, SampleState::kAssigned, "balance");
  EXPECT_NE(sampled, id);
  EXPECT_NE(assigned, sampled);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.node(id).state, SampleState::kInBuffer);  // original untouched
  EXPECT_EQ(g.node(assigned).state, SampleState::kAssigned);
  EXPECT_EQ(g.node(assigned).meta.sample_id, 1u);  // annotations copied
}

TEST(DataflowGraphTest, LineageQueryWalksBackwards) {
  DataflowGraph g(true);
  int64_t a = g.AddNode(MakeNode(1));
  int64_t b = g.Transition(a, SampleState::kSampled, "mix");
  int64_t c = g.Transition(b, SampleState::kPlanned, "plan");
  std::vector<int64_t> lineage = g.Lineage(c);
  ASSERT_EQ(lineage.size(), 2u);
  EXPECT_EQ(lineage[0], b);
  EXPECT_EQ(lineage[1], a);
  EXPECT_TRUE(g.Lineage(a).empty());
}

TEST(DataflowGraphTest, DotExportContainsNodesAndEdges) {
  DataflowGraph g(true);
  int64_t a = g.AddNode(MakeNode(42));
  g.Transition(a, SampleState::kSampled, "mix");
  std::string dot = g.ToDot("test");
  EXPECT_NE(dot.find("digraph test"), std::string::npos);
  EXPECT_NE(dot.find("s42"), std::string::npos);
  EXPECT_NE(dot.find("label=\"mix\""), std::string::npos);
}

TEST(DataflowGraphTest, StateNamesAreStable) {
  EXPECT_STREQ(SampleStateName(SampleState::kInBuffer), "in_buffer");
  EXPECT_STREQ(SampleStateName(SampleState::kSampled), "sampled");
  EXPECT_STREQ(SampleStateName(SampleState::kExcluded), "excluded");
  EXPECT_STREQ(SampleStateName(SampleState::kAssigned), "assigned");
  EXPECT_STREQ(SampleStateName(SampleState::kPlanned), "planned");
}

}  // namespace
}  // namespace msd
