#include <gtest/gtest.h>

#include "src/sim/event_queue.h"
#include "src/sim/network.h"

namespace msd {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 30);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimestampsRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  q.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1, [&] {
    ++fired;
    q.ScheduleAfter(5, [&] { ++fired; });
  });
  EXPECT_EQ(q.Run(), 6);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(100, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(50), 50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, ClockNeverGoesBackward) {
  EventQueue q;
  q.ScheduleAt(10, [] {});
  q.Run();
  EXPECT_EQ(q.now(), 10);
  q.ScheduleAfter(0, [] {});
  q.Run();
  EXPECT_EQ(q.now(), 10);
}

TEST(NetworkModelTest, TransferTimeScalesWithBytes) {
  NetworkModel net;
  EXPECT_EQ(net.TransferTime(0), 0);
  SimTime t1 = net.TransferTime(kGiB);
  SimTime t2 = net.TransferTime(2 * kGiB);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
              static_cast<double>(t1) * 0.01 + 2);
}

TEST(NetworkModelTest, ServiceTimeGrowsWithConnections) {
  NetworkModel net;
  EXPECT_LT(net.ServiceTime(0), net.ServiceTime(10000));
  EXPECT_LE(net.ServiceTime(100), net.ServiceTime(1000));
}

TEST(NetworkModelTest, UtilizationLinearInArrivals) {
  NetworkModel net;
  double u1 = net.Utilization(1000.0, 100);
  double u2 = net.Utilization(2000.0, 100);
  EXPECT_NEAR(u2, 2.0 * u1, 1e-9);
}

TEST(NetworkModelTest, LatencyDivergesNearSaturation) {
  NetworkModel net;
  // Find an arrival rate that gives utilization ~0.5 and another ~0.95.
  double service_sec = ToSeconds(net.ServiceTime(1000));
  SimTime low = net.RequestLatency(0.5 / service_sec, 1000, 0);
  SimTime high = net.RequestLatency(0.95 / service_sec, 1000, 0);
  EXPECT_GT(high, low);
  EXPECT_GT(static_cast<double>(high), 5.0 * service_sec * kSecond);
}

TEST(NetworkModelTest, SaturationReturnsSentinel) {
  NetworkModel net;
  double service_sec = ToSeconds(net.ServiceTime(1000));
  SimTime sat = net.RequestLatency(2.0 / service_sec, 1000, 0, 42 * kSecond);
  EXPECT_EQ(sat, 42 * kSecond);
}

TEST(NetworkModelTest, MoreConnectionsSaturateEarlier) {
  NetworkModel net;
  // At a fixed arrival rate, a heavily-connected endpoint collapses while a
  // lightly-connected one still answers (the Fig. 20 mechanism).
  double rate = 0.9 / ToSeconds(net.ServiceTime(0));
  SimTime light = net.RequestLatency(rate, 0, 0, 3600 * kSecond);
  SimTime heavy = net.RequestLatency(rate, 1'000'000, 0, 3600 * kSecond);
  EXPECT_LT(light, 3600 * kSecond);
  EXPECT_EQ(heavy, 3600 * kSecond);
}

TEST(NetworkModelTest, ConnectionSetupLinear) {
  NetworkModel net;
  EXPECT_EQ(net.ConnectionSetupTime(0), 0);
  EXPECT_EQ(net.ConnectionSetupTime(10), 10 * net.params().connection_setup_cost);
}

}  // namespace
}  // namespace msd
