// Multi-tenant dataloader service (src/service/):
//  - Cross-tenant dedup: two jobs on the same corpus share one cached copy
//    and coalesce in-flight Gets, so co-hosting costs fewer backing Gets than
//    two isolated planes — while each tenant's byte stream stays identical to
//    its solo twin.
//  - Fault isolation: a brownouted tenant rides its private scheduler route;
//    the healthy neighbour sees zero failed Gets and identical bytes.
//  - Quota isolation: an over-budget tenant evicts only its OWN cache
//    entries, never a neighbour's.
//  - Fair share: the SFQ dispatcher interleaves tenants' backing Gets by
//    weight, deterministically.
//  - Teardown: removing a tenant mid-stream drains its in-flight reads and
//    leaves the survivors' streams untouched.
//  - Stats: cache/scheduler snapshots are consistent cuts (cross-counter
//    invariants hold exactly) even under concurrent multi-tenant hammering.
//  - GCS namespacing: co-hosted sessions journal durable state under
//    disjoint "gcs/<tenant>/" prefixes of the shared store.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/service/data_service.h"
#include "src/service/shared_plane.h"
#include "tests/batch_identity.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

namespace fs = std::filesystem;
using testing::ExpectBatchesIdentical;

Session::Options TenantSessionOptions(CorpusSpec corpus) {
  Session::Options options;
  options.corpus = std::move(corpus);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;  // several groups per file
  return options;
}

SharedIoPlaneConfig TestPlaneConfig() {
  SharedIoPlaneConfig config;
  config.cache_bytes = 64 * kMiB;
  config.storage_get_latency = 200;  // 0.2 ms: remote, but test-fast
  return config;
}

std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

void ExpectStepIdentical(Session& tenant, Session& solo) {
  std::vector<RankBatch> got = StreamStep(tenant);
  std::vector<RankBatch> want = StreamStep(solo);
  ASSERT_EQ(got.size(), want.size());
  for (size_t rank = 0; rank < got.size(); ++rank) {
    ExpectBatchesIdentical(got[rank], want[rank]);
  }
}

// ---------------------------------------------------------------------------
// Cross-tenant dedup: co-hosting shares cached blocks and backing Gets.
// ---------------------------------------------------------------------------

TEST(ServiceTest, CrossTenantDedupSharesBackingGetsAndStaysByteIdentical) {
  constexpr int64_t kSteps = 3;
  // Solo baseline: ONE owned cached session over the same corpus — what one
  // isolated plane pays for this workload.
  int64_t solo_gets = 0;
  {
    Session::Options solo_options = TenantSessionOptions(MakeCoyo700m());
    solo_options.block_cache_bytes = 64 * kMiB;
    solo_options.storage_get_latency = 200;
    auto solo = Session::Create(solo_options);
    ASSERT_TRUE(solo.ok()) << solo.status().ToString();
    for (int64_t s = 0; s < kSteps; ++s) {
      StreamStep(**solo);
    }
    solo_gets = (*solo)->io_stats().storage_gets;
    ASSERT_GT(solo_gets, 0);
  }

  DataService service(TestPlaneConfig());
  DataService::TenantConfig a;
  a.session = TenantSessionOptions(MakeCoyo700m());
  DataService::TenantConfig b;
  b.session = TenantSessionOptions(MakeCoyo700m());
  ASSERT_TRUE(service.RegisterTenant("job-a", a).ok());
  ASSERT_TRUE(service.RegisterTenant("job-b", b).ok());

  // Byte-identity: each tenant's stream equals the un-cohosted twin's.
  auto solo_a = Session::Create(TenantSessionOptions(MakeCoyo700m()));
  auto solo_b = Session::Create(TenantSessionOptions(MakeCoyo700m()));
  ASSERT_TRUE(solo_a.ok() && solo_b.ok());
  for (int64_t s = 0; s < kSteps; ++s) {
    ExpectStepIdentical(*service.session("job-a"), **solo_a);
    ExpectStepIdentical(*service.session("job-b"), **solo_b);
  }

  // Two co-hosted tenants must cost less than two isolated planes — the same
  // hot row groups are fetched once and shared.
  const int64_t cohosted_gets = service.backing_gets();
  EXPECT_LT(cohosted_gets, 2 * solo_gets)
      << "co-hosting did not dedup any backing Gets";
  // And the sharing is visible in the attribution: hits on blocks the other
  // tenant paid for.
  EXPECT_GT(service.plane()->cache_stats().cross_tenant_hits, 0);
  // Per-tenant scheduler views carry the traffic split; both tenants issued
  // requests and the aggregate equals the sum over tenants (no double count,
  // nothing dropped).
  DataService::TenantStats sa = service.tenant_stats("job-a").value();
  DataService::TenantStats sb = service.tenant_stats("job-b").value();
  EXPECT_GT(sa.scheduler.requests, 0);
  EXPECT_GT(sb.scheduler.requests, 0);
  EXPECT_EQ(sa.scheduler.requests + sb.scheduler.requests,
            service.plane()->scheduler_stats().requests);
}

// ---------------------------------------------------------------------------
// Fault isolation: one tenant's brownout never touches its neighbour.
// ---------------------------------------------------------------------------

TEST(ServiceTest, BrownoutTenantNeverPerturbsHealthyNeighbor) {
  SharedIoPlaneConfig plane = TestPlaneConfig();
  plane.retry.max_attempts = 6;
  plane.retry.backoff_base_us = 100;  // test-fast backoff
  plane.retry.backoff_max_us = 2000;

  DataService service(plane);
  DataService::TenantConfig healthy;
  healthy.session = TenantSessionOptions(MakeCoyo700m());
  DataService::TenantConfig shaky;
  shaky.session = TenantSessionOptions(MakeTextCorpus(/*seed=*/13, /*num_sources=*/4));
  shaky.storage_faults.install = true;  // private route, brownouts scripted below
  ASSERT_TRUE(service.RegisterTenant("healthy", healthy).ok());
  ASSERT_TRUE(service.RegisterTenant("shaky", shaky).ok());

  auto solo = Session::Create(TenantSessionOptions(MakeCoyo700m()));
  ASSERT_TRUE(solo.ok());

  Session* shaky_session = service.session("shaky");
  FaultInjectingStore* faults = shaky_session->fault_store();
  ASSERT_NE(faults, nullptr);

  for (int64_t s = 0; s < 4; ++s) {
    // A fresh burst of failures into the shaky tenant's route every step;
    // the retry budget rides each one out.
    faults->BrownoutNextGets(3);
    ExpectStepIdentical(*service.session("healthy"), **solo);
    std::vector<RankBatch> shaky_batches = StreamStep(*shaky_session);
    EXPECT_FALSE(shaky_batches.empty());
  }
  EXPECT_GT(faults->brownout_failures(), 0) << "the brownout never engaged";

  // The shaky tenant needed (and got) retries; the healthy tenant saw NONE of
  // them — not one failed or retried Get on its route.
  DataService::TenantStats shaky_stats = service.tenant_stats("shaky").value();
  DataService::TenantStats healthy_stats = service.tenant_stats("healthy").value();
  EXPECT_GT(shaky_stats.scheduler.retries, 0);
  EXPECT_GT(shaky_stats.scheduler.retry_successes, 0);
  EXPECT_EQ(shaky_stats.scheduler.failed_gets, 0);  // budget absorbed all of it
  EXPECT_EQ(healthy_stats.scheduler.retries, 0);
  EXPECT_EQ(healthy_stats.scheduler.failed_gets, 0);
}

// ---------------------------------------------------------------------------
// Quota isolation: budget pressure evicts the owner's entries only.
// ---------------------------------------------------------------------------

TEST(ServiceTest, QuotaEvictsOwnEntriesOnly) {
  BlockCache::Config config;
  config.capacity_bytes = 4096;
  config.shards = 1;
  BlockCache cache(config);
  constexpr IoTenantId kBudgeted = 1;
  constexpr IoTenantId kNeighbor = 2;
  cache.RegisterTenant(kBudgeted, 128);  // room for two 64-byte blocks
  auto block = [](char fill) { return std::make_shared<const std::string>(std::string(64, fill)); };

  // The neighbour's blocks go in first — they sit at the LRU end, exactly
  // where owner-blind eviction would pick victims.
  BlockKey n1{"n", 0, 64}, n2{"n", 64, 64};
  cache.Insert(n1, block('x'), kNeighbor);
  cache.Insert(n2, block('y'), kNeighbor);
  BlockKey b1{"b", 0, 64}, b2{"b", 64, 64}, b3{"b", 128, 64};
  cache.Insert(b1, block('a'), kBudgeted);
  cache.Insert(b2, block('b'), kBudgeted);
  cache.Insert(b3, block('c'), kBudgeted);  // 192 > 128: must shed its own

  // The budgeted tenant lost its own oldest block...
  EXPECT_EQ(cache.PeekResident(b1), nullptr);
  ASSERT_NE(cache.PeekResident(b2), nullptr);
  ASSERT_NE(cache.PeekResident(b3), nullptr);
  // ...and the neighbour (and the shard, at 4096 capacity) lost nothing.
  ASSERT_NE(cache.PeekResident(n1), nullptr);
  ASSERT_NE(cache.PeekResident(n2), nullptr);
  BlockCache::Stats budgeted = cache.tenant_stats(kBudgeted);
  BlockCache::Stats neighbor = cache.tenant_stats(kNeighbor);
  EXPECT_EQ(budgeted.evictions, 1);
  EXPECT_LE(budgeted.resident_bytes, 128);
  EXPECT_EQ(neighbor.evictions, 0);
  EXPECT_EQ(neighbor.resident_bytes, 128);

  // RemoveTenant releases exactly the owner's bytes and leaves the rest.
  EXPECT_EQ(cache.RemoveTenant(kBudgeted), 128);
  ASSERT_NE(cache.PeekResident(n1), nullptr);
  EXPECT_EQ(cache.stats().resident_bytes, 128);
}

// ---------------------------------------------------------------------------
// Fair share: dispatch interleaves tenants by weight, deterministically.
// ---------------------------------------------------------------------------

// Records Get order; blocks Gets of "blocker" until released, so tenant
// queues can build behind the single in-flight slot.
class RecordingStore final : public ObjectStore {
 public:
  Result<std::string> Get(const std::string& name, int64_t /*offset*/,
                          int64_t length) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      order_.push_back(name);
      while (name == "blocker" && !released_) {
        cv_.wait(lock);
      }
    }
    return std::string(static_cast<size_t>(length), 'd');
  }
  Result<int64_t> SizeOf(const std::string&) const override { return int64_t{1 << 20}; }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }
  std::vector<std::string> order() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::vector<std::string> order_;
  bool released_ = false;
};

TEST(ServiceTest, FairShareDispatchFollowsWeights) {
  RecordingStore store;
  BlockCache cache(BlockCache::Config{});
  IoScheduler::Config config;
  config.threads = 2;
  config.max_inflight = 1;  // serialize dispatch: order is the schedule
  IoScheduler io(&store, &cache, config);
  constexpr IoTenantId kHeavy = 1;  // weight 2: two Get slots per...
  constexpr IoTenantId kLight = 2;  // ...one of weight 1
  io.RegisterTenant(kHeavy, {.weight = 2.0});
  io.RegisterTenant(kLight, {.weight = 1.0});

  // Occupy the single slot, then queue 6 Gets per tenant behind it.
  auto blocker = io.Fetch("blocker", 0, 8);
  std::vector<std::shared_future<IoScheduler::BlockResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(io.Fetch("h" + std::to_string(i), 0, 8, false, kHeavy));
    futures.push_back(io.Fetch("l" + std::to_string(i), 0, 8, false, kLight));
  }
  store.Release();
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().ok());
  }
  ASSERT_TRUE(blocker.get().ok());

  // SFQ with weights 2:1 and lowest-id tie-break dispatches
  // H L H H L H H L H ... — verify the 2:1 split over the first 9.
  std::vector<std::string> order = store.order();
  ASSERT_EQ(order.size(), 13u);  // blocker + 12
  int heavy_first9 = 0;
  for (size_t i = 1; i <= 9; ++i) {
    heavy_first9 += order[i][0] == 'h' ? 1 : 0;
  }
  EXPECT_EQ(heavy_first9, 6) << "weighted interleave broke";
  EXPECT_EQ(order[1][0], 'h');  // tie at vtime 0 breaks to the lower id
  EXPECT_EQ(io.tenant_stats(kHeavy).issued_gets, 6);
  EXPECT_EQ(io.tenant_stats(kLight).issued_gets, 6);
}

// ---------------------------------------------------------------------------
// Teardown: removing a tenant drains it and leaves survivors untouched.
// ---------------------------------------------------------------------------

TEST(ServiceTest, RemoveTenantMidStreamLeavesSurvivorByteIdentical) {
  DataService service(TestPlaneConfig());
  DataService::TenantConfig a;
  a.session = TenantSessionOptions(MakeCoyo700m());
  DataService::TenantConfig b;
  b.session = TenantSessionOptions(MakeCoyo700m());
  ASSERT_TRUE(service.RegisterTenant("departing", a).ok());
  ASSERT_TRUE(service.RegisterTenant("survivor", b).ok());

  auto solo = Session::Create(TenantSessionOptions(MakeCoyo700m()));
  ASSERT_TRUE(solo.ok());

  ExpectStepIdentical(*service.session("survivor"), **solo);
  StreamStep(*service.session("departing"));
  // Tear the departing tenant down while the survivor is mid-stream. The
  // drain contract: after this returns, no read of the departed tenant is
  // queued, running, or hedged (ASan/TSan runs verify nothing dangles).
  ASSERT_TRUE(service.RemoveTenant("departing").ok());
  EXPECT_EQ(service.session("departing"), nullptr);
  EXPECT_FALSE(service.RemoveTenant("departing").ok());  // idempotence: NotFound

  for (int64_t s = 0; s < 2; ++s) {
    ExpectStepIdentical(*service.session("survivor"), **solo);
  }
  EXPECT_EQ(service.tenant_names(), std::vector<std::string>{"survivor"});
}

// ---------------------------------------------------------------------------
// Stats: snapshots are consistent cuts under concurrent tenants.
// ---------------------------------------------------------------------------

TEST(ServiceTest, StatsSnapshotsAreConsistentUnderConcurrentTenants) {
  BlockCache::Config config;
  config.capacity_bytes = 64 * kKiB;
  config.shards = 4;
  BlockCache cache(config);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, &stop, t] {
      const IoTenantId tenant = 1 + (t % 2);
      auto bytes = std::make_shared<const std::string>(std::string(512, 'w'));
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        BlockKey key{"obj-" + std::to_string(t), (i % 64) * 512, 512};
        if (i % 3 == 0) {
          cache.Insert(key, bytes, tenant);
        } else {
          cache.Lookup(key, tenant);
        }
      }
    });
  }
  // Every snapshot taken mid-hammer must be a consistent cut: the all-shard
  // lock makes lookups == hits + misses hold EXACTLY, not approximately.
  for (int i = 0; i < 200; ++i) {
    BlockCache::Stats s = cache.stats();
    ASSERT_EQ(s.lookups, s.hits + s.misses)
        << "aggregate snapshot tore at iteration " << i;
    BlockCache::Stats t1 = cache.tenant_stats(1);
    ASSERT_EQ(t1.lookups, t1.hits + t1.misses)
        << "tenant snapshot tore at iteration " << i;
  }
  stop.store(true);
  for (std::thread& w : workers) {
    w.join();
  }
  // And the tenant views partition the aggregate exactly once quiescent.
  BlockCache::Stats total = cache.stats();
  BlockCache::Stats t1 = cache.tenant_stats(1);
  BlockCache::Stats t2 = cache.tenant_stats(2);
  EXPECT_EQ(total.lookups, t1.lookups + t2.lookups);
  EXPECT_EQ(total.insertions, t1.insertions + t2.insertions);
  EXPECT_EQ(total.resident_bytes, t1.resident_bytes + t2.resident_bytes);
}

// ---------------------------------------------------------------------------
// GCS namespacing: durable state of co-hosted tenants never crosses.
// ---------------------------------------------------------------------------

TEST(ServiceTest, GcsNamespaceIsolatesDurableState) {
  const std::string dir = testing::ScratchDir("service_gcs");
  {
    SharedIoPlaneConfig plane = TestPlaneConfig();
    plane.durable_gcs_dir = dir;
    DataService service(plane);
    DataService::TenantConfig a;
    a.session = TenantSessionOptions(MakeCoyo700m());
    DataService::TenantConfig b;
    b.session = TenantSessionOptions(MakeCoyo700m());
    ASSERT_TRUE(service.RegisterTenant("alpha", a).ok());
    ASSERT_TRUE(service.RegisterTenant("beta", b).ok());

    // Each session attached the SHARED durable store under its own prefix.
    Gcs& gcs_a = service.session("alpha")->actor_system().gcs();
    Gcs& gcs_b = service.session("beta")->actor_system().gcs();
    EXPECT_EQ(gcs_a.durable_prefix(), "gcs/alpha/");
    EXPECT_EQ(gcs_b.durable_prefix(), "gcs/beta/");

    // Same key, different tenants: lands twice, namespaced, no collision.
    gcs_a.PutState("cursor", "alpha-state");
    gcs_b.PutState("cursor", "beta-state");
    ObjectStore* store = service.plane()->gcs_store();
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->Exists("gcs/alpha/cursor"));
    EXPECT_TRUE(store->Exists("gcs/beta/cursor"));
    EXPECT_EQ(gcs_a.GetState("cursor").value(), "alpha-state");
    EXPECT_EQ(gcs_b.GetState("cursor").value(), "beta-state");
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Validation: misconfigured tenants are rejected before they can interfere.
// ---------------------------------------------------------------------------

TEST(ServiceTest, RejectsPrivatePlaneOptionsAndConflictingCorpora) {
  DataService service(TestPlaneConfig());

  // A tenant may not stand up a private I/O stack under the shared plane.
  DataService::TenantConfig private_cache;
  private_cache.session = TenantSessionOptions(MakeCoyo700m());
  private_cache.session.block_cache_bytes = 1 * kMiB;
  EXPECT_EQ(service.RegisterTenant("bad", private_cache).code(),
            StatusCode::kInvalidArgument);

  DataService::TenantConfig ok;
  ok.session = TenantSessionOptions(MakeCoyo700m());
  ASSERT_TRUE(service.RegisterTenant("first", ok).ok());

  // Names key tenants: no duplicates.
  DataService::TenantConfig dup;
  dup.session = TenantSessionOptions(MakeCoyo700m());
  EXPECT_EQ(service.RegisterTenant("first", dup).code(), StatusCode::kAlreadyExists);

  // Same source names with a different seed would silently serve the first
  // tenant's bytes to the second — rejected at materialization.
  DataService::TenantConfig conflicting;
  conflicting.session = TenantSessionOptions(MakeCoyo700m());
  conflicting.session.seed = 999;
  EXPECT_EQ(service.RegisterTenant("second", conflicting).code(),
            StatusCode::kInvalidArgument);

  // Invalid quotas never make it onto the plane.
  DataService::TenantConfig bad_weight;
  bad_weight.session = TenantSessionOptions(MakeTextCorpus(13, 2));
  bad_weight.quota.weight = 0.0;
  EXPECT_EQ(service.RegisterTenant("weightless", bad_weight).code(),
            StatusCode::kInvalidArgument);
  // A failed registration leaves no residue: the name is reusable.
  bad_weight.quota.weight = 1.0;
  EXPECT_TRUE(service.RegisterTenant("weightless", bad_weight).ok());
}

// ---------------------------------------------------------------------------
// Diagnosis surface: per-tenant Diagnose/SetSloPolicy, plane-default health
// adoption, the shared flight recorder, and the health-carrying snapshot.
// ---------------------------------------------------------------------------

TEST(ServiceTest, DiagnosePerTenantWithPlaneDefaultHealthAndSharedRecorder) {
  const std::string dir = testing::ScratchDir("service_recorder");
  SharedIoPlaneConfig config = TestPlaneConfig();
  config.health.enabled = true;
  config.health.recorder_dir = dir;
  DataService service(config);
  ASSERT_NE(service.recorder(), nullptr) << "recorder_dir stands up the plane recorder";

  DataService::TenantConfig alpha;
  alpha.session = TenantSessionOptions(MakeCoyo700m());
  ASSERT_TRUE(service.RegisterTenant("alpha", alpha).ok());
  DataService::TenantConfig beta;
  beta.session = TenantSessionOptions(MakeTextCorpus(13, 2));
  ASSERT_TRUE(service.RegisterTenant("beta", beta).ok());

  // Both tenants adopted the plane default monitor and share ONE recorder:
  // a plane-wide incident yields one bundle, not one per symptom per tenant.
  for (const char* name : {"alpha", "beta"}) {
    Session* session = service.session(name);
    ASSERT_NE(session, nullptr);
    ASSERT_NE(session->health(), nullptr) << name;
    EXPECT_EQ(session->health()->recorder(), service.recorder()) << name;
  }

  for (int64_t s = 0; s < 4; ++s) {
    StreamStep(*service.session("alpha"));
  }
  Result<HealthReport> report = service.Diagnose("alpha");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report.value().verdict.steps_observed, 1);
  for (const StepBreakdown& b : report.value().recent) {
    const double sum = b.consumer_stall_ms + b.plan_ms + b.pop_wait_ms + b.io_backing_ms +
                       b.io_retry_ms + b.build_ms + b.other_ms;
    EXPECT_NEAR(sum, b.wall_ms, 1e-6) << "step " << b.step;
  }
  EXPECT_EQ(service.Diagnose("ghost").status().code(), StatusCode::kNotFound);

  SloPolicy loose;
  loose.latency_factor = 50.0;
  EXPECT_TRUE(service.SetSloPolicy("alpha", loose).ok());
  EXPECT_EQ(service.SetSloPolicy("ghost", loose).code(), StatusCode::kNotFound);

  // The scrape-facing snapshot carries each monitored tenant's report.
  DataService::ServiceSnapshot snap = service.MetricsSnapshot();
  EXPECT_EQ(snap.health.count("alpha"), 1u);
  EXPECT_EQ(snap.health.count("beta"), 1u);
  fs::remove_all(dir);
}

TEST(ServiceTest, DiagnoseOnAMonitorlessTenantIsFailedPrecondition) {
  DataService service(TestPlaneConfig());  // no plane-default health
  DataService::TenantConfig plain;
  plain.session = TenantSessionOptions(MakeCoyo700m());
  ASSERT_TRUE(service.RegisterTenant("plain", plain).ok());
  EXPECT_EQ(service.Diagnose("plain").status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.SetSloPolicy("plain", SloPolicy{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(service.MetricsSnapshot().health.empty());
}

// ---------------------------------------------------------------------------
// Scrape lifecycle vs tenant churn: a scrape tick must never observe a
// half-removed (or half-registered) tenant.
// ---------------------------------------------------------------------------

TEST(ServiceTest, ScrapeHammerNeverObservesHalfRemovedTenant) {
  SharedIoPlaneConfig config = TestPlaneConfig();
  config.health.enabled = true;  // scrape ticks call Diagnose() per tenant
  DataService service(config);

  DataService::TenantConfig anchor;
  anchor.session = TenantSessionOptions(MakeCoyo700m());
  ASSERT_TRUE(service.RegisterTenant("anchor", anchor).ok());

  // The callback runs on the scrape thread: record violations, assert later.
  std::atomic<int64_t> ticks{0};
  std::atomic<int64_t> violations{0};
  Status started = service.StartScrape(1, [&](DataService::ServiceSnapshot snap) {
    ticks.fetch_add(1);
    // Every tenant slice is a FULLY registered tenant: it has a live health
    // report (the plane default guarantees a monitor) and a plane id. A
    // half-removed tenant would surface as a slice with no report, or a
    // report for a name with no slice.
    if (snap.tenants.count("anchor") == 0) {
      violations.fetch_add(1);
    }
    for (const auto& [name, stats] : snap.tenants) {
      if (snap.health.count(name) == 0) {
        violations.fetch_add(1);
      }
    }
    for (const auto& [name, report] : snap.health) {
      if (snap.tenants.count(name) == 0) {
        violations.fetch_add(1);
      }
    }
  });
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_EQ(service.StartScrape(1, [](DataService::ServiceSnapshot) {}).code(),
            StatusCode::kFailedPrecondition)
      << "second scrape must be rejected while one runs";

  // Hammer: register/stream/remove a flapping tenant while the 1 ms scrape
  // snapshots concurrently; the anchor keeps streaming throughout.
  for (int cycle = 0; cycle < 3; ++cycle) {
    DataService::TenantConfig flapper;
    flapper.session = TenantSessionOptions(MakeTextCorpus(17, 2));
    Status registered = service.RegisterTenant("flapper", flapper);
    ASSERT_TRUE(registered.ok()) << "cycle " << cycle << ": " << registered.ToString();
    StreamStep(*service.session("flapper"));
    StreamStep(*service.session("anchor"));
    ASSERT_TRUE(service.RemoveTenant("flapper").ok());
  }
  service.StopScrape();
  const int64_t ticks_at_stop = ticks.load();
  EXPECT_GT(ticks_at_stop, 0) << "the 1 ms scrape never fired during the hammer";
  EXPECT_EQ(violations.load(), 0);

  // StopScrape means stopped: no tick arrives afterwards, and the teardown
  // path (dtor -> StopScrape again) is a no-op on the already-stopped state.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ticks.load(), ticks_at_stop);
}

}  // namespace
}  // namespace msd
