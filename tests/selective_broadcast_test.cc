#include <gtest/gtest.h>

#include <set>

#include "src/mesh/selective_broadcast.h"

namespace msd {
namespace {

// Every rank must end up with data exactly once: either as a fetcher or as a
// target of exactly one broadcast group.
void CheckCoverage(const ParallelismSpec& spec, const BroadcastPlan& plan) {
  std::set<int32_t> covered(plan.fetching_ranks.begin(), plan.fetching_ranks.end());
  EXPECT_EQ(covered.size(), plan.fetching_ranks.size());
  for (const auto& stage : plan.stages) {
    for (const BroadcastGroup& group : stage) {
      // Roots must already hold the data when their stage runs.
      EXPECT_TRUE(covered.count(group.root) > 0)
          << "root " << group.root << " broadcasts before receiving";
      for (int32_t t : group.targets) {
        EXPECT_TRUE(covered.insert(t).second) << "rank " << t << " covered twice";
      }
    }
  }
  EXPECT_EQ(covered.size(), static_cast<size_t>(spec.WorldSize()));
}

TEST(SelectiveBroadcastTest, TpOnly) {
  ParallelismSpec spec{.dp = 2, .pp = 1, .cp = 1, .tp = 4};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  BroadcastPlan plan = MakeSelectiveBroadcastPlan(tree, {Axis::kTP});
  EXPECT_EQ(plan.fetching_ranks.size(), 2u);  // one per DP group
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].size(), 2u);  // one TP group per DP group
  for (const BroadcastGroup& g : plan.stages[0]) {
    EXPECT_EQ(g.targets.size(), 3u);  // tp 1..3
  }
  CheckCoverage(spec, plan);
}

TEST(SelectiveBroadcastTest, CpThenTpStages) {
  ParallelismSpec spec{.dp = 2, .pp = 1, .cp = 2, .tp = 2};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  BroadcastPlan plan = MakeSelectiveBroadcastPlan(tree, {Axis::kCP, Axis::kTP});
  // Only (cp0, tp0) of each DP group fetches: 2 clients instead of 8.
  EXPECT_EQ(plan.fetching_ranks.size(), 2u);
  ASSERT_EQ(plan.stages.size(), 2u);
  // Stage 0 (CP): 2 groups (one per DP), each root sends to its cp1/tp0 peer.
  EXPECT_EQ(plan.stages[0].size(), 2u);
  for (const BroadcastGroup& g : plan.stages[0]) {
    EXPECT_EQ(g.targets.size(), 1u);
  }
  // Stage 1 (TP): 4 groups (per dp x cp), each reaching the tp1 rank.
  EXPECT_EQ(plan.stages[1].size(), 4u);
  CheckCoverage(spec, plan);
}

TEST(SelectiveBroadcastTest, FullFourAxisMesh) {
  ParallelismSpec spec{.dp = 3, .pp = 2, .cp = 2, .tp = 2};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  BroadcastPlan plan = MakeSelectiveBroadcastPlan(tree, {Axis::kPP, Axis::kCP, Axis::kTP});
  EXPECT_EQ(plan.fetching_ranks.size(), 3u);  // one per DP group
  CheckCoverage(spec, plan);
  // Synchronized clients shrink 8x vs. per-rank fetching.
  EXPECT_EQ(SynchronizedClients(plan) * 8, static_cast<size_t>(spec.WorldSize()));
}

TEST(SelectiveBroadcastTest, NoAxesMeansEveryoneFetches) {
  ParallelismSpec spec{.dp = 2, .pp = 2, .cp = 1, .tp = 1};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  BroadcastPlan plan = MakeSelectiveBroadcastPlan(tree, {});
  EXPECT_EQ(plan.fetching_ranks.size(), 4u);
  EXPECT_TRUE(plan.stages.empty());
}

TEST(SelectiveBroadcastTest, DegenerateAxisProducesNoGroups) {
  // tp == 1: a TP broadcast stage has nothing to do.
  ParallelismSpec spec{.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  BroadcastPlan plan = MakeSelectiveBroadcastPlan(tree, {Axis::kTP});
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_TRUE(plan.stages[0].empty());
  CheckCoverage(spec, plan);
}

class BroadcastSweep : public ::testing::TestWithParam<ParallelismSpec> {};

TEST_P(BroadcastSweep, CoverageAcrossMeshes) {
  ParallelismSpec spec = GetParam();
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  for (const std::vector<Axis>& axes :
       {std::vector<Axis>{Axis::kTP}, std::vector<Axis>{Axis::kCP, Axis::kTP},
        std::vector<Axis>{Axis::kPP, Axis::kCP, Axis::kTP}}) {
    BroadcastPlan plan = MakeSelectiveBroadcastPlan(tree, axes);
    CheckCoverage(spec, plan);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BroadcastSweep,
                         ::testing::Values(ParallelismSpec{1, 1, 1, 1},
                                           ParallelismSpec{4, 2, 2, 4},
                                           ParallelismSpec{2, 3, 4, 2},
                                           ParallelismSpec{9, 4, 4, 4}));

}  // namespace
}  // namespace msd
