// Remote-storage I/O subsystem (src/io/):
//  - BlockCache LRU/eviction/spill behaviour and checksum verification — a
//    corrupted cached block is detected and re-fetched, never served;
//  - IoScheduler request coalescing: concurrent readers of one block cost
//    exactly one backing Get;
//  - LatencyInjectingStore charges per-Get latency (remote semantics);
//  - MsdfReader ranged/cached modes return the same rows as the whole-blob
//    reader;
//  - Session-level byte-identity: cache + read-ahead + injected latency —
//    including eviction-thrashing tiny budgets and the disk spill tier —
//    serve exactly the bytes an uncached session serves (checked against
//    ReferenceDataPlane), and checkpoint resume re-warms the read-ahead.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/constructor/reference_assembly.h"
#include "src/data/synthetic.h"
#include "src/io/block_cache.h"
#include "src/io/fault_injecting_store.h"
#include "src/io/io_scheduler.h"
#include "src/io/latency_store.h"
#include "tests/batch_identity.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const std::string> Block(char fill, size_t n) {
  return std::make_shared<const std::string>(std::string(n, fill));
}

TEST(BlockCacheTest, LruEvictionAndStats) {
  BlockCache::Config config;
  config.capacity_bytes = 64;
  config.shards = 1;
  BlockCache cache(config);
  BlockKey a{"f", 0, 32};
  BlockKey b{"f", 32, 32};
  BlockKey c{"f", 64, 32};
  cache.Insert(a, Block('a', 32));
  cache.Insert(b, Block('b', 32));
  ASSERT_NE(cache.Lookup(a), nullptr);  // touches a: b becomes LRU
  cache.Insert(c, Block('c', 32));      // 96 > 64: evicts b
  EXPECT_EQ(cache.Lookup(b), nullptr);
  ASSERT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(*cache.Lookup(c), std::string(32, 'c'));
  BlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_GE(stats.hits, 3);
  EXPECT_EQ(stats.resident_bytes, 64);
}

TEST(BlockCacheTest, SpillTierRoundTrip) {
  const std::string dir = testing::ScratchDir("spill");
  ObjectStore spill(dir);
  BlockCache::Config config;
  config.capacity_bytes = 48;
  config.shards = 1;
  config.spill = &spill;
  BlockCache cache(config);
  BlockKey a{"f", 0, 32};
  BlockKey b{"f", 32, 32};
  cache.Insert(a, Block('a', 32));
  cache.Insert(b, Block('b', 32));  // 64 > 48: a spills to disk
  EXPECT_EQ(cache.stats().spill_writes, 1);
  // The spilled block comes back checksum-verified and is promoted.
  std::shared_ptr<const std::string> restored = cache.Lookup(a);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(*restored, std::string(32, 'a'));
  EXPECT_EQ(cache.stats().spill_hits, 1);
  // The promotion displaced b in turn; it round-trips from the tier too.
  ASSERT_NE(cache.Lookup(b), nullptr);
  EXPECT_EQ(cache.stats().spill_hits, 2);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(BlockCacheTest, CorruptedResidentBlockReadsAsMiss) {
  BlockCache::Config config;
  config.capacity_bytes = 1024;
  config.shards = 1;
  BlockCache cache(config);
  BlockKey key{"f", 0, 64};
  cache.Insert(key, Block('x', 64));
  ASSERT_TRUE(cache.CorruptResidentBlockForTest(key));
  EXPECT_EQ(cache.Lookup(key), nullptr);  // detected, dropped, miss
  EXPECT_EQ(cache.stats().corruptions, 1);
  // A fresh insert (the re-fetch) serves clean bytes again.
  cache.Insert(key, Block('x', 64));
  ASSERT_NE(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stats().corruptions, 1);
}

TEST(LatencyStoreTest, ChargesPerGetLatency) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(1024, 'x')).ok());
  RemoteStorageParams params;
  params.get_latency = 5 * kMillisecond;
  params.bandwidth_bytes_per_sec = 0;  // isolate the latency term
  LatencyInjectingStore remote(&base, params);
  auto t0 = std::chrono::steady_clock::now();
  Result<std::string> bytes = remote.Get("f", 0, 512);
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), 512u);
  EXPECT_GE(elapsed_ms, 4.5);
  EXPECT_EQ(remote.gets(), 1);
  EXPECT_EQ(remote.bytes_served(), 512);
  // Metadata ops are free: no Get charged.
  EXPECT_EQ(remote.SizeOf("f").value(), 1024);
  EXPECT_TRUE(remote.Exists("f"));
  EXPECT_EQ(remote.gets(), 1);
}

TEST(IoSchedulerTest, ConcurrentRequestsCoalesceToOneBackingGet) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(4096, 'q')).ok());
  RemoteStorageParams params;
  params.get_latency = 20 * kMillisecond;  // wide in-flight window
  params.bandwidth_bytes_per_sec = 0;
  LatencyInjectingStore remote(&base, params);
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&remote, &cache, IoScheduler::Config{});
  // Second request lands while the first's Get is sleeping: it must join the
  // in-flight read, not issue its own.
  auto first = io.Fetch("f", 0, 4096);
  auto second = io.Fetch("f", 0, 4096);
  ASSERT_TRUE(first.get().ok());
  ASSERT_TRUE(second.get().ok());
  EXPECT_EQ(*first.get().value(), *second.get().value());
  EXPECT_EQ(remote.gets(), 1);  // exactly one backing Get
  IoScheduler::Stats stats = io.stats();
  EXPECT_EQ(stats.issued_gets, 1);
  EXPECT_EQ(stats.coalesced, 1);
  // A third request after completion is a pure cache hit.
  ASSERT_TRUE(io.ReadBlock("f", 0, 4096).ok());
  EXPECT_EQ(remote.gets(), 1);
  EXPECT_GE(io.stats().cache_hits, 1);
}

TEST(IoSchedulerTest, CorruptedCachedBlockIsDetectedAndRefetched) {
  ObjectStore base;
  const std::string payload(256, 'p');
  ASSERT_TRUE(base.Put("f", payload).ok());
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&base, &cache, IoScheduler::Config{});
  IoScheduler::BlockResult first = io.ReadBlock("f", 0, 256);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(cache.CorruptResidentBlockForTest(BlockKey{"f", 0, 256}));
  // The checksum catches the flip; the scheduler re-fetches authoritative
  // bytes instead of serving poison.
  IoScheduler::BlockResult second = io.ReadBlock("f", 0, 256);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second.value(), payload);
  EXPECT_EQ(cache.stats().corruptions, 1);
  EXPECT_EQ(io.stats().issued_gets, 2);
}

// ---------------------------------------------------------------------------
// Chaos plane: deterministic fault injection + retry/hedge error paths.
// ---------------------------------------------------------------------------

// Minimal test decorator: forwards the read-path virtuals to `base`. Only the
// members the IoScheduler/MsdfReader path touches are forwarded; the rest are
// unused in these tests.
class ForwardingStore : public ObjectStore {
 public:
  explicit ForwardingStore(ObjectStore* base) : base_(base) {}
  Result<std::string> Get(const std::string& name, int64_t offset,
                          int64_t length) const override {
    return base_->Get(name, offset, length);
  }
  Result<int64_t> SizeOf(const std::string& name) const override {
    return base_->SizeOf(name);
  }
  bool Exists(const std::string& name) const override { return base_->Exists(name); }
  Result<FileHandle> Open(const std::string& name,
                          MemoryAccountant::NodeId node) const override {
    return base_->Open(name, node);
  }

 protected:
  ObjectStore* base_;
};

TEST(FaultStoreTest, DeterministicScheduleReplaysIdentically) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("data/f0", std::string(8192, 'a')).ok());
  FaultSchedule schedule;
  schedule.seed = 42;
  schedule.unavailable_p = 0.3;
  schedule.deadline_p = 0.2;
  auto verdicts = [&] {
    FaultInjectingStore store(&base, schedule);
    std::vector<StatusCode> codes;
    for (int64_t offset = 0; offset < 8192; offset += 1024) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        codes.push_back(store.Get("data/f0", offset, 1024).status().code());
      }
    }
    return codes;
  };
  std::vector<StatusCode> first = verdicts();
  EXPECT_EQ(first, verdicts());  // same seed, same sequence => same faults
  // The schedule actually fired a mix of verdicts, not all-pass/all-fail.
  int faults = 0;
  for (StatusCode code : first) {
    faults += code != StatusCode::kOk ? 1 : 0;
  }
  EXPECT_GT(faults, 0);
  EXPECT_LT(faults, static_cast<int>(first.size()));
}

TEST(FaultStoreTest, FailFirstNHealsPerRangeAndTargetingScopesFaults) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("flaky/f", std::string(4096, 'x')).ok());
  ASSERT_TRUE(base.Put("healthy/f", std::string(4096, 'y')).ok());
  FaultSchedule schedule;
  schedule.fail_first_n = 2;
  schedule.match_substr = "flaky";
  FaultInjectingStore store(&base, schedule);
  // First two attempts on the range fail, the third succeeds.
  EXPECT_EQ(store.Get("flaky/f", 0, 4096).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.Get("flaky/f", 0, 4096).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store.Get("flaky/f", 0, 4096).ok());
  // A different range of the same object counts its own attempts.
  EXPECT_EQ(store.Get("flaky/f", 0, 2048).status().code(), StatusCode::kUnavailable);
  // Non-matching names are never faulted; metadata ops are never faulted.
  EXPECT_TRUE(store.Get("healthy/f", 0, 4096).ok());
  EXPECT_TRUE(store.SizeOf("flaky/f").ok());
  EXPECT_EQ(store.faults_injected(), 3);
}

TEST(FaultStoreTest, BrownoutFailsMatchingGetsUntilLifted) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(1024, 'z')).ok());
  FaultSchedule schedule;
  schedule.install = true;  // no probabilistic faults; scripted only
  ASSERT_TRUE(schedule.enabled());
  FaultInjectingStore store(&base, schedule);
  EXPECT_TRUE(store.Get("f", 0, 1024).ok());
  store.set_brownout(true);
  EXPECT_EQ(store.Get("f", 0, 1024).status().code(), StatusCode::kUnavailable);
  store.set_brownout(false);
  EXPECT_TRUE(store.Get("f", 0, 1024).ok());
  store.BrownoutNextGets(2);
  EXPECT_FALSE(store.Get("f", 0, 1024).ok());
  EXPECT_FALSE(store.Get("f", 0, 512).ok());
  EXPECT_TRUE(store.Get("f", 0, 1024).ok());  // budget exhausted: healed
  EXPECT_EQ(store.brownout_failures(), 3);
}

TEST(FaultStoreTest, CorruptionFlipsExactlyOneBitDeterministically) {
  ObjectStore base;
  const std::string truth(2048, 'm');
  ASSERT_TRUE(base.Put("f", truth).ok());
  FaultSchedule schedule;
  schedule.seed = 7;
  schedule.corrupt_p = 1.0;
  auto corrupt_read = [&] {
    FaultInjectingStore store(&base, schedule);
    Result<std::string> bytes = store.Get("f", 0, 2048);
    EXPECT_TRUE(bytes.ok());
    EXPECT_EQ(store.corruptions_injected(), 1);
    return bytes.value();
  };
  std::string got = corrupt_read();
  EXPECT_EQ(got, corrupt_read());  // same seed => same flipped bit
  int bit_diffs = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    bit_diffs += __builtin_popcount(
        static_cast<unsigned char>(truth[i]) ^ static_cast<unsigned char>(got[i]));
  }
  EXPECT_EQ(bit_diffs, 1);
}

TEST(IoSchedulerTest, FailedGetIsNeverCachedAndNextFetchReissues) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(4096, 'x')).ok());
  FaultSchedule schedule;
  schedule.fail_first_n = 1;
  FaultInjectingStore flaky(&base, schedule);
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&flaky, &cache, IoScheduler::Config{});  // no retries
  IoScheduler::BlockResult first = io.ReadBlock("f", 0, 4096);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  // Error-path hygiene: the failure was not cached, and the in-flight entry
  // was erased before the waiter observed the error — so the next Fetch
  // re-issues a fresh backing Get instead of joining a dead future.
  EXPECT_EQ(cache.Lookup(BlockKey{"f", 0, 4096}), nullptr);
  EXPECT_EQ(io.stats().failed_gets, 1);
  IoScheduler::BlockResult second = io.ReadBlock("f", 0, 4096);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second.value(), std::string(4096, 'x'));
  EXPECT_EQ(io.stats().issued_gets, 2);
}

TEST(IoSchedulerTest, WaitersCoalescedOntoFailedGetSeeErrorThenRecover) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("flaky/f", std::string(4096, 'x')).ok());
  ASSERT_TRUE(base.Put("plug/f", std::string(4096, 'p')).ok());
  RemoteStorageParams params;
  params.get_latency = 20 * kMillisecond;
  params.bandwidth_bytes_per_sec = 0;
  LatencyInjectingStore remote(&base, params);
  FaultSchedule schedule;
  schedule.fail_first_n = 1;
  schedule.match_substr = "flaky";
  FaultInjectingStore flaky(&remote, schedule);
  BlockCache cache(BlockCache::Config{});
  IoScheduler::Config config;
  config.threads = 1;  // single worker: the plug read serializes the rest
  IoScheduler io(&flaky, &cache, config);
  // Occupy the only worker, then register two fetches for the failing block:
  // the second must coalesce onto the first while both are still queued.
  auto plug = io.Fetch("plug/f", 0, 4096);
  auto f1 = io.Fetch("flaky/f", 0, 4096);
  auto f2 = io.Fetch("flaky/f", 0, 4096);
  EXPECT_FALSE(f1.get().ok());
  EXPECT_FALSE(f2.get().ok());  // both waiters see the same error
  ASSERT_TRUE(plug.get().ok());
  IoScheduler::Stats stats = io.stats();
  EXPECT_EQ(stats.coalesced, 1);
  EXPECT_EQ(stats.failed_gets, 1);
  EXPECT_EQ(stats.issued_gets, 2);  // plug + the failed flaky read
  // The failed key was fully cleaned up: a retried fetch re-issues and heals.
  IoScheduler::BlockResult healed = io.ReadBlock("flaky/f", 0, 4096);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(io.stats().issued_gets, 3);
}

TEST(IoSchedulerTest, TransientFailuresRetriedWithinBudget) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(4096, 'r')).ok());
  FaultSchedule schedule;
  schedule.fail_first_n = 2;
  schedule.match_substr = "f";  // scope faults to the real object, not "missing"
  FaultInjectingStore flaky(&base, schedule);
  BlockCache cache(BlockCache::Config{});
  IoScheduler::Config config;
  config.retry.max_attempts = 4;
  config.retry.backoff_base_us = 100;  // test-fast
  IoScheduler io(&flaky, &cache, config);
  IoScheduler::BlockResult result = io.ReadBlock("f", 0, 4096);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value(), std::string(4096, 'r'));
  IoScheduler::Stats stats = io.stats();
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.retry_successes, 1);
  EXPECT_EQ(stats.retries_exhausted, 0);
  EXPECT_EQ(stats.failed_gets, 0);
  EXPECT_EQ(flaky.gets(), 3);            // two failed attempts + the rescue
  EXPECT_EQ(flaky.faults_injected(), 2);
  // Permanent errors are not retried: NotFound fails on the first attempt.
  IoScheduler::BlockResult missing = io.ReadBlock("missing", 0, 64);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(io.stats().retries, 2);
}

TEST(IoSchedulerTest, RetryBudgetExhaustionSurfacesTransientError) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(1024, 'e')).ok());
  FaultSchedule schedule;
  schedule.fail_first_n = 5;
  FaultInjectingStore flaky(&base, schedule);
  BlockCache cache(BlockCache::Config{});
  IoScheduler::Config config;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_us = 100;
  IoScheduler io(&flaky, &cache, config);
  IoScheduler::BlockResult result = io.ReadBlock("f", 0, 1024);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  IoScheduler::Stats stats = io.stats();
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.retries_exhausted, 1);
  EXPECT_EQ(stats.failed_gets, 1);
  EXPECT_EQ(stats.retry_successes, 0);
  // Attempt counting is per range and monotonic: the next fetch's budget
  // (attempts 4..6) crosses the fail-first-5 threshold and heals.
  IoScheduler::BlockResult healed = io.ReadBlock("f", 0, 1024);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(io.stats().retry_successes, 1);
}

TEST(IoSchedulerTest, InvalidateDropsCachedBlockAndReissues) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(512, 'v')).ok());
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&base, &cache, IoScheduler::Config{});
  ASSERT_TRUE(io.ReadBlock("f", 0, 512).ok());
  EXPECT_EQ(io.stats().issued_gets, 1);
  io.Invalidate("f", 0, 512);
  EXPECT_EQ(io.stats().invalidations, 1);
  EXPECT_EQ(cache.Lookup(BlockKey{"f", 0, 512}), nullptr);
  ASSERT_TRUE(io.ReadBlock("f", 0, 512).ok());
  EXPECT_EQ(io.stats().issued_gets, 2);  // went back to storage
}

// Stalls the first Get of `target` (and only that one call) so a hedged
// duplicate — the second call — can win the race deterministically.
class StallFirstGetStore final : public ForwardingStore {
 public:
  StallFirstGetStore(ObjectStore* base, std::string target, int64_t stall_ms)
      : ForwardingStore(base), target_(std::move(target)), stall_ms_(stall_ms) {}
  Result<std::string> Get(const std::string& name, int64_t offset,
                          int64_t length) const override {
    if (name == target_ && !stalled_.exchange(true)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms_));
    }
    return base_->Get(name, offset, length);
  }

 private:
  std::string target_;
  int64_t stall_ms_;
  mutable std::atomic<bool> stalled_{false};
};

TEST(IoSchedulerTest, HedgedReadWinsOverStalledPrimary) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("warm", std::string(16 * 1024, 'w')).ok());
  ASSERT_TRUE(base.Put("slow", std::string(4096, 's')).ok());
  StallFirstGetStore store(&base, "slow", /*stall_ms=*/400);
  BlockCache cache(BlockCache::Config{});
  IoScheduler::Config config;
  config.hedge.enabled = true;
  config.hedge.quantile = 0.5;
  config.hedge.min_delay_us = 1000;
  config.hedge.min_samples = 4;
  IoScheduler io(&store, &cache, config);
  // Warm the latency ring with fast primaries so the hedge timer arms.
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(io.ReadBlock("warm", i * 4096, 4096).ok());
  }
  // The primary Get stalls 400 ms; the hedge fires after ~the observed
  // quantile (microseconds) and its duplicate Get returns immediately.
  IoScheduler::BlockResult result = io.ReadBlock("slow", 0, 4096);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value(), std::string(4096, 's'));
  IoScheduler::Stats stats = io.stats();
  EXPECT_EQ(stats.hedges_launched, 1);
  EXPECT_EQ(stats.hedges_won, 1);
  // The stalled primary eventually returns and is abandoned, not double-
  // cached; poll briefly since it resolves on its own schedule.
  for (int i = 0; i < 100 && io.stats().abandoned_reads == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(io.stats().abandoned_reads, 1);
}

// Corrupts the first Get of one exact (offset, length) range, once — aimed at
// a known row group so the footer reads pass through clean.
class CorruptOnceStore final : public ForwardingStore {
 public:
  CorruptOnceStore(ObjectStore* base, int64_t offset, int64_t length)
      : ForwardingStore(base), offset_(offset), length_(length) {}
  Result<std::string> Get(const std::string& name, int64_t offset,
                          int64_t length) const override {
    Result<std::string> bytes = base_->Get(name, offset, length);
    if (bytes.ok() && offset == offset_ && length == length_ && !corrupted_.exchange(true)) {
      std::string poisoned = std::move(bytes.value());
      poisoned[poisoned.size() / 2] ^= 0x20;
      return poisoned;
    }
    return bytes;
  }

 private:
  int64_t offset_;
  int64_t length_;
  mutable std::atomic<bool> corrupted_{false};
};

TEST(MsdfReaderTest, StoreCorruptionIsDetectedInvalidatedAndRefetched) {
  ObjectStore store;
  MemoryAccountant memory;
  SourceSpec spec = MakeCoyo700m().sources[0];
  spec.num_files = 1;
  spec.rows_per_file = 48;
  ASSERT_TRUE(
      WriteSourceFiles(store, spec, /*seed=*/7, {.target_row_group_bytes = 8 * kKiB}).ok());
  const std::string name = SourceFileName(spec, 0);
  MsdfReader whole = MsdfReader::Open(store, name, &memory, 0).value();
  const RowGroupMeta& g0 = whole.info().row_groups.at(0);

  CorruptOnceStore corrupting(&store, g0.offset, g0.bytes);
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&corrupting, &cache, IoScheduler::Config{});
  MsdfReader cached = MsdfReader::OpenCached(&io, name, &memory, 0).value();
  const int64_t footer_gets = io.stats().issued_gets;  // tail + footer body
  // Group 0's first fetch arrives poisoned and is cached poisoned (the cache
  // checksums what it was given). The row-group checksum catches it, the
  // reader invalidates the cache entry, and the refetch serves clean bytes —
  // the poison is never surfaced.
  Result<std::vector<std::string>> rows = cached.ReadRowGroup(0);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value(), whole.ReadRowGroup(0).value());
  EXPECT_EQ(io.stats().invalidations, 1);
  EXPECT_EQ(io.stats().issued_gets, footer_gets + 2);  // poisoned fetch + clean refetch
}

TEST(MsdfReaderTest, RangedAndCachedModesMatchWholeBlobReader) {
  ObjectStore store;
  MemoryAccountant memory;
  SourceSpec spec = MakeCoyo700m().sources[0];
  spec.num_files = 1;
  spec.rows_per_file = 48;
  ASSERT_TRUE(
      WriteSourceFiles(store, spec, /*seed=*/7, {.target_row_group_bytes = 8 * kKiB}).ok());
  const std::string name = SourceFileName(spec, 0);

  MsdfReader whole = MsdfReader::Open(store, name, &memory, 0).value();
  MsdfReader ranged = MsdfReader::OpenRanged(store, name, &memory, 0).value();
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&store, &cache, IoScheduler::Config{});
  MsdfReader cached = MsdfReader::OpenCached(&io, name, &memory, 0).value();

  ASSERT_GT(whole.info().row_groups.size(), 1u);  // the test must span groups
  ASSERT_EQ(ranged.info().row_groups.size(), whole.info().row_groups.size());
  ASSERT_EQ(cached.info().row_groups.size(), whole.info().row_groups.size());
  for (size_t g = 0; g < whole.info().row_groups.size(); ++g) {
    std::vector<std::string> want = whole.ReadRowGroup(g).value();
    EXPECT_EQ(ranged.ReadRowGroup(g).value(), want);
    EXPECT_EQ(cached.ReadRowGroup(g).value(), want);
  }
  // The cached reader populated the shared cache: footer + every group.
  EXPECT_GE(cache.stats().insertions,
            static_cast<int64_t>(whole.info().row_groups.size()));
}

// ---------------------------------------------------------------------------
// Session-level: the cache must be invisible in the bytes.
// ---------------------------------------------------------------------------

Session::Options IoOptions() {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 2, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;  // several groups per file
  return options;
}

using testing::ExpectBatchesIdentical;

std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

void ExpectMatchesReference(const PrefetchPipeline::Capture& capture,
                            const ParallelismSpec& spec, int32_t num_microbatches,
                            int32_t max_seq_len, const std::vector<RankBatch>& streamed) {
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, num_microbatches);
  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    DataConstructorConfig config;
    config.constructor_id = dp;
    config.max_seq_len = max_seq_len;
    ReferenceDataPlane reference(config, &tree);
    ASSERT_TRUE(reference
                    .BuildStep(capture.plan,
                               capture.slices_per_constructor[static_cast<size_t>(dp)])
                    .ok());
    for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
      if (CoordOfRank(spec, rank).dp != dp) {
        continue;
      }
      Result<RankBatch> want = reference.GetBatch(rank, capture.plan.step);
      ASSERT_TRUE(want.ok());
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)], want.value());
    }
  }
}

// Streams `steps` from both sessions, asserting byte-identity per rank and,
// for the cached session, equivalence to the scalar reference plane.
void ExpectCachedMatchesPlain(Session& cached, Session& plain, int64_t steps) {
  const ParallelismSpec spec = cached.tree().spec();
  for (int64_t s = 0; s < steps; ++s) {
    const int64_t step = cached.client(0).value()->next_step();
    Result<PrefetchPipeline::Capture> capture = cached.CaptureStep(step);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    std::vector<RankBatch> got = StreamStep(cached);
    std::vector<RankBatch> want = StreamStep(plain);
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
    }
    ExpectMatchesReference(capture.value(), spec, 2, 1024, got);
  }
}

TEST(IoSessionTest, CacheAndReadAheadServeByteIdenticalBatches) {
  auto plain = Session::Create(IoOptions());
  Session::Options cached_options = IoOptions();
  cached_options.block_cache_bytes = 64 * kMiB;
  cached_options.read_ahead_groups = 4;
  cached_options.storage_get_latency = 500;  // 0.5 ms: remote, but test-fast
  auto cached = Session::Create(cached_options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  for (int64_t step = 0; step < 3; ++step) {
    Result<PrefetchPipeline::Capture> capture = (*cached)->CaptureStep(step);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    std::vector<RankBatch> got = StreamStep(**cached);
    std::vector<RankBatch> want = StreamStep(**plain);
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
    }
    ExpectMatchesReference(capture.value(), IoOptions().spec, 2, 1024, got);
  }
  // The io layer actually ran: counters surface through io_stats and
  // StepStats alike.
  Session::IoStats io = (*cached)->io_stats();
  EXPECT_TRUE(io.enabled);
  EXPECT_GT(io.cache.lookups, 0);
  EXPECT_GT(io.scheduler.prefetch_issues, 0);
  EXPECT_GT(io.storage_gets, 0);
  Result<Session::StepStats> stats = (*cached)->StepStatsFor(3);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->cache_hits + stats->cache_misses, 0);
  EXPECT_GT(stats->readahead_issued, 0);
  EXPECT_GT(stats->storage_gets, 0);
  // The plain session reports a disabled subsystem, not garbage.
  EXPECT_FALSE((*plain)->io_stats().enabled);
}

TEST(IoSessionTest, TinyBudgetEvictionThrashStaysByteIdentical) {
  auto plain = Session::Create(IoOptions());
  Session::Options cached_options = IoOptions();
  cached_options.block_cache_bytes = 32 * kKiB;  // far below the working set
  cached_options.read_ahead_groups = 4;
  auto cached = Session::Create(cached_options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ExpectCachedMatchesPlain(**cached, **plain, 4);
  EXPECT_GT((*cached)->io_stats().cache.evictions, 0);
}

TEST(IoSessionTest, SpillTierStaysByteIdentical) {
  const std::string dir = testing::ScratchDir("spill_session");
  {
    auto plain = Session::Create(IoOptions());
    Session::Options cached_options = IoOptions();
    cached_options.block_cache_bytes = 32 * kKiB;
    cached_options.read_ahead_groups = 2;
    cached_options.cache_spill_dir = dir;
    auto cached = Session::Create(cached_options);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectCachedMatchesPlain(**cached, **plain, 3);
    EXPECT_GT((*cached)->io_stats().cache.spill_writes, 0);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(IoSessionTest, ShadowLoadersShareBackingGets) {
  // FT shadows read exactly the blocks their primaries read; through the
  // shared cache that must not double the backing Gets.
  Session::Options options = IoOptions();
  options.enable_fault_tolerance = true;
  options.block_cache_bytes = 64 * kMiB;
  options.read_ahead_groups = 2;
  options.storage_get_latency = 200;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StreamStep(**session);
  Session::IoStats io = (*session)->io_stats();
  EXPECT_GT(io.scheduler.cache_hits + io.scheduler.coalesced, 0);
  EXPECT_LT(io.scheduler.issued_gets, io.scheduler.requests);
}

TEST(IoSessionTest, ResumeRewarmsReadAheadAndStaysByteIdentical) {
  const std::string dir = testing::ScratchDir("io_resume");
  Session::Options cached_options = IoOptions();
  cached_options.block_cache_bytes = 64 * kMiB;
  cached_options.read_ahead_groups = 4;
  cached_options.storage_get_latency = 200;
  auto uninterrupted = Session::Create(cached_options);
  ASSERT_TRUE(uninterrupted.ok());
  {
    auto session = Session::Create(cached_options);
    ASSERT_TRUE(session.ok());
    for (int64_t s = 0; s < 2; ++s) {
      std::vector<RankBatch> got = StreamStep(**session);
      std::vector<RankBatch> want = StreamStep(**uninterrupted);
      for (size_t rank = 0; rank < got.size(); ++rank) {
        ExpectBatchesIdentical(got[rank], want[rank]);
      }
    }
    ASSERT_TRUE((*session)->Checkpoint(dir).ok());
  }  // process dies; the resumed one starts cache-cold

  Session::Options resumed_options = cached_options;
  resumed_options.resume_dir = dir;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (int64_t s = 0; s < 2; ++s) {
    std::vector<RankBatch> got = StreamStep(**resumed);
    std::vector<RankBatch> want = StreamStep(**uninterrupted);
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
    }
  }
  // Restore() re-warmed the window from the restored cursors.
  EXPECT_GT((*resumed)->io_stats().scheduler.prefetch_issues, 0);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(IoSessionTest, InvalidIoOptionsAreRejected) {
  Session::Options no_cache = IoOptions();
  no_cache.read_ahead_groups = 2;  // read-ahead without a cache
  EXPECT_EQ(Session::Create(std::move(no_cache)).status().code(),
            StatusCode::kInvalidArgument);
  Session::Options spill_only = IoOptions();
  spill_only.cache_spill_dir = "/tmp/never-used";
  EXPECT_EQ(Session::Create(std::move(spill_only)).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace msd
