// Remote-storage I/O subsystem (src/io/):
//  - BlockCache LRU/eviction/spill behaviour and checksum verification — a
//    corrupted cached block is detected and re-fetched, never served;
//  - IoScheduler request coalescing: concurrent readers of one block cost
//    exactly one backing Get;
//  - LatencyInjectingStore charges per-Get latency (remote semantics);
//  - MsdfReader ranged/cached modes return the same rows as the whole-blob
//    reader;
//  - Session-level byte-identity: cache + read-ahead + injected latency —
//    including eviction-thrashing tiny budgets and the disk spill tier —
//    serve exactly the bytes an uncached session serves (checked against
//    ReferenceDataPlane), and checkpoint resume re-warms the read-ahead.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/constructor/reference_assembly.h"
#include "src/data/synthetic.h"
#include "src/io/block_cache.h"
#include "src/io/io_scheduler.h"
#include "src/io/latency_store.h"
#include "tests/batch_identity.h"
#include "tests/scratch_dir.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const std::string> Block(char fill, size_t n) {
  return std::make_shared<const std::string>(std::string(n, fill));
}

TEST(BlockCacheTest, LruEvictionAndStats) {
  BlockCache::Config config;
  config.capacity_bytes = 64;
  config.shards = 1;
  BlockCache cache(config);
  BlockKey a{"f", 0, 32};
  BlockKey b{"f", 32, 32};
  BlockKey c{"f", 64, 32};
  cache.Insert(a, Block('a', 32));
  cache.Insert(b, Block('b', 32));
  ASSERT_NE(cache.Lookup(a), nullptr);  // touches a: b becomes LRU
  cache.Insert(c, Block('c', 32));      // 96 > 64: evicts b
  EXPECT_EQ(cache.Lookup(b), nullptr);
  ASSERT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(*cache.Lookup(c), std::string(32, 'c'));
  BlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_GE(stats.hits, 3);
  EXPECT_EQ(stats.resident_bytes, 64);
}

TEST(BlockCacheTest, SpillTierRoundTrip) {
  const std::string dir = testing::ScratchDir("spill");
  ObjectStore spill(dir);
  BlockCache::Config config;
  config.capacity_bytes = 48;
  config.shards = 1;
  config.spill = &spill;
  BlockCache cache(config);
  BlockKey a{"f", 0, 32};
  BlockKey b{"f", 32, 32};
  cache.Insert(a, Block('a', 32));
  cache.Insert(b, Block('b', 32));  // 64 > 48: a spills to disk
  EXPECT_EQ(cache.stats().spill_writes, 1);
  // The spilled block comes back checksum-verified and is promoted.
  std::shared_ptr<const std::string> restored = cache.Lookup(a);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(*restored, std::string(32, 'a'));
  EXPECT_EQ(cache.stats().spill_hits, 1);
  // The promotion displaced b in turn; it round-trips from the tier too.
  ASSERT_NE(cache.Lookup(b), nullptr);
  EXPECT_EQ(cache.stats().spill_hits, 2);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(BlockCacheTest, CorruptedResidentBlockReadsAsMiss) {
  BlockCache::Config config;
  config.capacity_bytes = 1024;
  config.shards = 1;
  BlockCache cache(config);
  BlockKey key{"f", 0, 64};
  cache.Insert(key, Block('x', 64));
  ASSERT_TRUE(cache.CorruptResidentBlockForTest(key));
  EXPECT_EQ(cache.Lookup(key), nullptr);  // detected, dropped, miss
  EXPECT_EQ(cache.stats().corruptions, 1);
  // A fresh insert (the re-fetch) serves clean bytes again.
  cache.Insert(key, Block('x', 64));
  ASSERT_NE(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.stats().corruptions, 1);
}

TEST(LatencyStoreTest, ChargesPerGetLatency) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(1024, 'x')).ok());
  RemoteStorageParams params;
  params.get_latency = 5 * kMillisecond;
  params.bandwidth_bytes_per_sec = 0;  // isolate the latency term
  LatencyInjectingStore remote(&base, params);
  auto t0 = std::chrono::steady_clock::now();
  Result<std::string> bytes = remote.Get("f", 0, 512);
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), 512u);
  EXPECT_GE(elapsed_ms, 4.5);
  EXPECT_EQ(remote.gets(), 1);
  EXPECT_EQ(remote.bytes_served(), 512);
  // Metadata ops are free: no Get charged.
  EXPECT_EQ(remote.SizeOf("f").value(), 1024);
  EXPECT_TRUE(remote.Exists("f"));
  EXPECT_EQ(remote.gets(), 1);
}

TEST(IoSchedulerTest, ConcurrentRequestsCoalesceToOneBackingGet) {
  ObjectStore base;
  ASSERT_TRUE(base.Put("f", std::string(4096, 'q')).ok());
  RemoteStorageParams params;
  params.get_latency = 20 * kMillisecond;  // wide in-flight window
  params.bandwidth_bytes_per_sec = 0;
  LatencyInjectingStore remote(&base, params);
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&remote, &cache, IoScheduler::Config{});
  // Second request lands while the first's Get is sleeping: it must join the
  // in-flight read, not issue its own.
  auto first = io.Fetch("f", 0, 4096);
  auto second = io.Fetch("f", 0, 4096);
  ASSERT_TRUE(first.get().ok());
  ASSERT_TRUE(second.get().ok());
  EXPECT_EQ(*first.get().value(), *second.get().value());
  EXPECT_EQ(remote.gets(), 1);  // exactly one backing Get
  IoScheduler::Stats stats = io.stats();
  EXPECT_EQ(stats.issued_gets, 1);
  EXPECT_EQ(stats.coalesced, 1);
  // A third request after completion is a pure cache hit.
  ASSERT_TRUE(io.ReadBlock("f", 0, 4096).ok());
  EXPECT_EQ(remote.gets(), 1);
  EXPECT_GE(io.stats().cache_hits, 1);
}

TEST(IoSchedulerTest, CorruptedCachedBlockIsDetectedAndRefetched) {
  ObjectStore base;
  const std::string payload(256, 'p');
  ASSERT_TRUE(base.Put("f", payload).ok());
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&base, &cache, IoScheduler::Config{});
  IoScheduler::BlockResult first = io.ReadBlock("f", 0, 256);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(cache.CorruptResidentBlockForTest(BlockKey{"f", 0, 256}));
  // The checksum catches the flip; the scheduler re-fetches authoritative
  // bytes instead of serving poison.
  IoScheduler::BlockResult second = io.ReadBlock("f", 0, 256);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second.value(), payload);
  EXPECT_EQ(cache.stats().corruptions, 1);
  EXPECT_EQ(io.stats().issued_gets, 2);
}

TEST(MsdfReaderTest, RangedAndCachedModesMatchWholeBlobReader) {
  ObjectStore store;
  MemoryAccountant memory;
  SourceSpec spec = MakeCoyo700m().sources[0];
  spec.num_files = 1;
  spec.rows_per_file = 48;
  ASSERT_TRUE(
      WriteSourceFiles(store, spec, /*seed=*/7, {.target_row_group_bytes = 8 * kKiB}).ok());
  const std::string name = SourceFileName(spec, 0);

  MsdfReader whole = MsdfReader::Open(store, name, &memory, 0).value();
  MsdfReader ranged = MsdfReader::OpenRanged(store, name, &memory, 0).value();
  BlockCache cache(BlockCache::Config{});
  IoScheduler io(&store, &cache, IoScheduler::Config{});
  MsdfReader cached = MsdfReader::OpenCached(&io, name, &memory, 0).value();

  ASSERT_GT(whole.info().row_groups.size(), 1u);  // the test must span groups
  ASSERT_EQ(ranged.info().row_groups.size(), whole.info().row_groups.size());
  ASSERT_EQ(cached.info().row_groups.size(), whole.info().row_groups.size());
  for (size_t g = 0; g < whole.info().row_groups.size(); ++g) {
    std::vector<std::string> want = whole.ReadRowGroup(g).value();
    EXPECT_EQ(ranged.ReadRowGroup(g).value(), want);
    EXPECT_EQ(cached.ReadRowGroup(g).value(), want);
  }
  // The cached reader populated the shared cache: footer + every group.
  EXPECT_GE(cache.stats().insertions,
            static_cast<int64_t>(whole.info().row_groups.size()));
}

// ---------------------------------------------------------------------------
// Session-level: the cache must be invisible in the bytes.
// ---------------------------------------------------------------------------

Session::Options IoOptions() {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 2, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;  // several groups per file
  return options;
}

using testing::ExpectBatchesIdentical;

std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

void ExpectMatchesReference(const PrefetchPipeline::Capture& capture,
                            const ParallelismSpec& spec, int32_t num_microbatches,
                            int32_t max_seq_len, const std::vector<RankBatch>& streamed) {
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, num_microbatches);
  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    DataConstructorConfig config;
    config.constructor_id = dp;
    config.max_seq_len = max_seq_len;
    ReferenceDataPlane reference(config, &tree);
    ASSERT_TRUE(reference
                    .BuildStep(capture.plan,
                               capture.slices_per_constructor[static_cast<size_t>(dp)])
                    .ok());
    for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
      if (CoordOfRank(spec, rank).dp != dp) {
        continue;
      }
      Result<RankBatch> want = reference.GetBatch(rank, capture.plan.step);
      ASSERT_TRUE(want.ok());
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)], want.value());
    }
  }
}

// Streams `steps` from both sessions, asserting byte-identity per rank and,
// for the cached session, equivalence to the scalar reference plane.
void ExpectCachedMatchesPlain(Session& cached, Session& plain, int64_t steps) {
  const ParallelismSpec spec = cached.tree().spec();
  for (int64_t s = 0; s < steps; ++s) {
    const int64_t step = cached.client(0).value()->next_step();
    Result<PrefetchPipeline::Capture> capture = cached.CaptureStep(step);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    std::vector<RankBatch> got = StreamStep(cached);
    std::vector<RankBatch> want = StreamStep(plain);
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
    }
    ExpectMatchesReference(capture.value(), spec, 2, 1024, got);
  }
}

TEST(IoSessionTest, CacheAndReadAheadServeByteIdenticalBatches) {
  auto plain = Session::Create(IoOptions());
  Session::Options cached_options = IoOptions();
  cached_options.block_cache_bytes = 64 * kMiB;
  cached_options.read_ahead_groups = 4;
  cached_options.storage_get_latency = 500;  // 0.5 ms: remote, but test-fast
  auto cached = Session::Create(cached_options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  for (int64_t step = 0; step < 3; ++step) {
    Result<PrefetchPipeline::Capture> capture = (*cached)->CaptureStep(step);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    std::vector<RankBatch> got = StreamStep(**cached);
    std::vector<RankBatch> want = StreamStep(**plain);
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
    }
    ExpectMatchesReference(capture.value(), IoOptions().spec, 2, 1024, got);
  }
  // The io layer actually ran: counters surface through io_stats and
  // StepStats alike.
  Session::IoStats io = (*cached)->io_stats();
  EXPECT_TRUE(io.enabled);
  EXPECT_GT(io.cache.lookups, 0);
  EXPECT_GT(io.scheduler.prefetch_issues, 0);
  EXPECT_GT(io.storage_gets, 0);
  Result<Session::StepStats> stats = (*cached)->StepStatsFor(3);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->cache_hits + stats->cache_misses, 0);
  EXPECT_GT(stats->readahead_issued, 0);
  EXPECT_GT(stats->storage_gets, 0);
  // The plain session reports a disabled subsystem, not garbage.
  EXPECT_FALSE((*plain)->io_stats().enabled);
}

TEST(IoSessionTest, TinyBudgetEvictionThrashStaysByteIdentical) {
  auto plain = Session::Create(IoOptions());
  Session::Options cached_options = IoOptions();
  cached_options.block_cache_bytes = 32 * kKiB;  // far below the working set
  cached_options.read_ahead_groups = 4;
  auto cached = Session::Create(cached_options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ExpectCachedMatchesPlain(**cached, **plain, 4);
  EXPECT_GT((*cached)->io_stats().cache.evictions, 0);
}

TEST(IoSessionTest, SpillTierStaysByteIdentical) {
  const std::string dir = testing::ScratchDir("spill_session");
  {
    auto plain = Session::Create(IoOptions());
    Session::Options cached_options = IoOptions();
    cached_options.block_cache_bytes = 32 * kKiB;
    cached_options.read_ahead_groups = 2;
    cached_options.cache_spill_dir = dir;
    auto cached = Session::Create(cached_options);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    ExpectCachedMatchesPlain(**cached, **plain, 3);
    EXPECT_GT((*cached)->io_stats().cache.spill_writes, 0);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(IoSessionTest, ShadowLoadersShareBackingGets) {
  // FT shadows read exactly the blocks their primaries read; through the
  // shared cache that must not double the backing Gets.
  Session::Options options = IoOptions();
  options.enable_fault_tolerance = true;
  options.block_cache_bytes = 64 * kMiB;
  options.read_ahead_groups = 2;
  options.storage_get_latency = 200;
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  StreamStep(**session);
  Session::IoStats io = (*session)->io_stats();
  EXPECT_GT(io.scheduler.cache_hits + io.scheduler.coalesced, 0);
  EXPECT_LT(io.scheduler.issued_gets, io.scheduler.requests);
}

TEST(IoSessionTest, ResumeRewarmsReadAheadAndStaysByteIdentical) {
  const std::string dir = testing::ScratchDir("io_resume");
  Session::Options cached_options = IoOptions();
  cached_options.block_cache_bytes = 64 * kMiB;
  cached_options.read_ahead_groups = 4;
  cached_options.storage_get_latency = 200;
  auto uninterrupted = Session::Create(cached_options);
  ASSERT_TRUE(uninterrupted.ok());
  {
    auto session = Session::Create(cached_options);
    ASSERT_TRUE(session.ok());
    for (int64_t s = 0; s < 2; ++s) {
      std::vector<RankBatch> got = StreamStep(**session);
      std::vector<RankBatch> want = StreamStep(**uninterrupted);
      for (size_t rank = 0; rank < got.size(); ++rank) {
        ExpectBatchesIdentical(got[rank], want[rank]);
      }
    }
    ASSERT_TRUE((*session)->Checkpoint(dir).ok());
  }  // process dies; the resumed one starts cache-cold

  Session::Options resumed_options = cached_options;
  resumed_options.resume_dir = dir;
  auto resumed = Session::Create(resumed_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  for (int64_t s = 0; s < 2; ++s) {
    std::vector<RankBatch> got = StreamStep(**resumed);
    std::vector<RankBatch> want = StreamStep(**uninterrupted);
    for (size_t rank = 0; rank < got.size(); ++rank) {
      ExpectBatchesIdentical(got[rank], want[rank]);
    }
  }
  // Restore() re-warmed the window from the restored cursors.
  EXPECT_GT((*resumed)->io_stats().scheduler.prefetch_issues, 0);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(IoSessionTest, InvalidIoOptionsAreRejected) {
  Session::Options no_cache = IoOptions();
  no_cache.read_ahead_groups = 2;  // read-ahead without a cache
  EXPECT_EQ(Session::Create(std::move(no_cache)).status().code(),
            StatusCode::kInvalidArgument);
  Session::Options spill_only = IoOptions();
  spill_only.cache_spill_dir = "/tmp/never-used";
  EXPECT_EQ(Session::Create(std::move(spill_only)).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace msd
