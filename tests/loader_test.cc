#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/loader/source_loader.h"

namespace msd {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = MakeCoyo700m().sources[0];
    spec_.num_files = 2;
    spec_.rows_per_file = 24;
    ASSERT_TRUE(WriteSourceFiles(store_, spec_, /*seed=*/7,
                                 {.target_row_group_bytes = 256 * kKiB})
                    .ok());
  }

  SourceLoaderConfig MakeConfig(int32_t loader_id = 0) {
    SourceLoaderConfig config;
    config.loader_id = loader_id;
    config.spec = spec_;
    config.files = {SourceFileName(spec_, 0), SourceFileName(spec_, 1)};
    config.num_workers = 2;
    config.buffer_low_watermark = 16;
    return config;
  }

  MemoryAccountant memory_;
  ObjectStore store_{&memory_};
  SourceSpec spec_;
};

TEST_F(LoaderTest, OpenFillsBufferToWatermark) {
  SourceLoader loader(MakeConfig(), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  EXPECT_GE(loader.buffered_samples(), 16u);
  EXPECT_GT(loader.total_transform_cost(), 0);
}

TEST_F(LoaderTest, OpenWithoutFilesFails) {
  SourceLoaderConfig config = MakeConfig();
  config.files.clear();
  SourceLoader loader(config, &store_, &memory_);
  EXPECT_EQ(loader.Open().code(), StatusCode::kInvalidArgument);
}

TEST_F(LoaderTest, SummaryBufferReportsMetadata) {
  SourceLoader loader(MakeConfig(3), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  BufferInfo info = loader.SummaryBuffer();
  EXPECT_EQ(info.loader_id, 3);
  EXPECT_EQ(info.source_id, spec_.source_id);
  EXPECT_EQ(info.samples.size(), loader.buffered_samples());
  for (const SampleMeta& meta : info.samples) {
    EXPECT_GT(meta.TotalTokens(), 0);
  }
}

TEST_F(LoaderTest, PopReturnsRequestedTransformedSamples) {
  SourceLoader loader(MakeConfig(), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  BufferInfo info = loader.SummaryBuffer();
  std::vector<uint64_t> ids = {info.samples[0].sample_id, info.samples[3].sample_id};
  Result<SampleSlice> slice = loader.PopSamples(0, ids);
  ASSERT_TRUE(slice.ok());
  EXPECT_TRUE(slice->end_of_stream);
  ASSERT_EQ(slice->samples.size(), 2u);
  for (const std::shared_ptr<Sample>& s : slice->samples) {
    EXPECT_FALSE(s->tokens.empty());           // tokenized
    if (s->meta.image_tokens > 0) {
      EXPECT_FALSE(s->pixels.empty());         // decoded
    }
  }
  EXPECT_EQ(loader.samples_served(), 2);
}

TEST_F(LoaderTest, PopUnknownIdFails) {
  SourceLoader loader(MakeConfig(), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  Result<SampleSlice> slice = loader.PopSamples(0, {0xDEAD});
  EXPECT_EQ(slice.status().code(), StatusCode::kNotFound);
}

TEST_F(LoaderTest, PopDuplicateIdsRejected) {
  SourceLoader loader(MakeConfig(), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  uint64_t id = loader.SummaryBuffer().samples[0].sample_id;
  EXPECT_EQ(loader.PopSamples(0, {id, id}).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LoaderTest, BufferRefillsAfterPop) {
  SourceLoader loader(MakeConfig(), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  BufferInfo info = loader.SummaryBuffer();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(info.samples[static_cast<size_t>(i)].sample_id);
  }
  ASSERT_TRUE(loader.PopSamples(0, ids).ok());
  EXPECT_GE(loader.buffered_samples(), 16u);  // refilled to watermark
}

TEST_F(LoaderTest, DrainsToExhaustion) {
  SourceLoader loader(MakeConfig(), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  int64_t total = 0;
  while (loader.buffered_samples() > 0) {
    BufferInfo info = loader.SummaryBuffer();
    std::vector<uint64_t> ids;
    for (const SampleMeta& meta : info.samples) {
      ids.push_back(meta.sample_id);
    }
    ASSERT_TRUE(loader.PopSamples(0, ids).ok());
    total += static_cast<int64_t>(ids.size());
  }
  EXPECT_EQ(total, 48);  // 2 files x 24 rows
}

TEST_F(LoaderTest, WorkerMemoryCharged) {
  int64_t before = memory_.CategoryTotal(MemCategory::kWorkerContext);
  {
    SourceLoader loader(MakeConfig(), &store_, &memory_);
    EXPECT_EQ(memory_.CategoryTotal(MemCategory::kWorkerContext) - before,
              SourceLoader::WorkerMemoryBytes(2));
  }
  EXPECT_EQ(memory_.CategoryTotal(MemCategory::kWorkerContext), before);
}

TEST_F(LoaderTest, ShadowChargesShadowCategory) {
  SourceLoaderConfig config = MakeConfig();
  config.is_shadow = true;
  SourceLoader loader(config, &store_, &memory_);
  EXPECT_EQ(memory_.CategoryTotal(MemCategory::kShadowLoader),
            SourceLoader::WorkerMemoryBytes(2));
  EXPECT_EQ(memory_.CategoryTotal(MemCategory::kWorkerContext), 0);
  EXPECT_NE(loader.name().find("shadow_loader/"), std::string::npos);
}

TEST_F(LoaderTest, SnapshotRestoreReproducesBuffer) {
  SourceLoader loader(MakeConfig(), &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  // Consume a few samples, snapshot, consume more, then restore.
  BufferInfo before = loader.SummaryBuffer();
  ASSERT_TRUE(loader
                  .PopSamples(0, {before.samples[0].sample_id, before.samples[1].sample_id})
                  .ok());
  LoaderSnapshot snap = loader.Snapshot();
  BufferInfo at_snapshot = loader.SummaryBuffer();

  ASSERT_TRUE(loader.PopSamples(1, {at_snapshot.samples[0].sample_id}).ok());

  SourceLoader restored(MakeConfig(), &store_, &memory_);
  ASSERT_TRUE(restored.Open().ok());
  ASSERT_TRUE(restored.Restore(snap).ok());
  BufferInfo after = restored.SummaryBuffer();
  ASSERT_GE(after.samples.size(), at_snapshot.samples.size());
  for (size_t i = 0; i < at_snapshot.samples.size(); ++i) {
    EXPECT_EQ(after.samples[i].sample_id, at_snapshot.samples[i].sample_id);
  }
}

TEST_F(LoaderTest, SnapshotSerializationRoundTrip) {
  LoaderSnapshot snap;
  snap.origin_file = 1;
  snap.origin_group = 5;
  snap.consumed_ids = {10, 20, 30};
  Result<LoaderSnapshot> parsed = LoaderSnapshot::Deserialize(snap.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->origin_file, 1);
  EXPECT_EQ(parsed->origin_group, 5);
  EXPECT_EQ(parsed->consumed_ids, snap.consumed_ids);
  EXPECT_FALSE(LoaderSnapshot::Deserialize("junk").ok());
}

TEST_F(LoaderTest, PartialYieldInjection) {
  SourceLoaderConfig config = MakeConfig();
  config.inject_partial_yield = true;
  SourceLoader loader(config, &store_, &memory_);
  ASSERT_TRUE(loader.Open().ok());
  BufferInfo info = loader.SummaryBuffer();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(info.samples[static_cast<size_t>(i)].sample_id);
  }
  Result<SampleSlice> slice = loader.PopSamples(0, ids);
  ASSERT_TRUE(slice.ok());
  EXPECT_FALSE(slice->end_of_stream);          // missing end-of-stream marker
  EXPECT_LT(slice->samples.size(), ids.size());  // truncated payload
}

TEST_F(LoaderTest, FileStateChargesReleasedOnDestruction) {
  int64_t baseline = memory_.GrandTotal();
  {
    SourceLoader loader(MakeConfig(), &store_, &memory_);
    ASSERT_TRUE(loader.Open().ok());
    EXPECT_GT(memory_.CategoryTotal(MemCategory::kFileMetadata), 0);
    EXPECT_GT(memory_.CategoryTotal(MemCategory::kFileSocket), 0);
  }
  EXPECT_EQ(memory_.GrandTotal(), baseline);
}

}  // namespace
}  // namespace msd
