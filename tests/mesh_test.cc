#include <gtest/gtest.h>

#include <set>

#include "src/mesh/client_place_tree.h"
#include "src/mesh/parallelism.h"

namespace msd {
namespace {

TEST(ParallelismSpecTest, WorldSizeAndAxisSizes) {
  ParallelismSpec spec{.dp = 2, .pp = 3, .cp = 4, .tp = 5};
  EXPECT_EQ(spec.WorldSize(), 120);
  EXPECT_EQ(spec.SizeOf(Axis::kDP), 2);
  EXPECT_EQ(spec.SizeOf(Axis::kPP), 3);
  EXPECT_EQ(spec.SizeOf(Axis::kCP), 4);
  EXPECT_EQ(spec.SizeOf(Axis::kTP), 5);
  EXPECT_EQ(spec.SizeOf(Axis::kWorld), 120);
}

TEST(ParallelismSpecTest, AxisNames) {
  EXPECT_STREQ(AxisName(Axis::kDP), "DP");
  EXPECT_STREQ(AxisName(Axis::kWorld), "WORLD");
}

class RankCoordTest : public ::testing::TestWithParam<ParallelismSpec> {};

TEST_P(RankCoordTest, CoordRankRoundTrip) {
  ParallelismSpec spec = GetParam();
  for (int32_t r = 0; r < spec.WorldSize(); ++r) {
    RankCoord c = CoordOfRank(spec, r);
    EXPECT_EQ(RankOfCoord(spec, c), r);
    EXPECT_LT(c.dp, spec.dp);
    EXPECT_LT(c.pp, spec.pp);
    EXPECT_LT(c.cp, spec.cp);
    EXPECT_LT(c.tp, spec.tp);
  }
}

TEST_P(RankCoordTest, TpIsInnermost) {
  ParallelismSpec spec = GetParam();
  if (spec.tp < 2) {
    GTEST_SKIP();
  }
  RankCoord c0 = CoordOfRank(spec, 0);
  RankCoord c1 = CoordOfRank(spec, 1);
  EXPECT_EQ(c0.tp + 1, c1.tp);
  EXPECT_EQ(c0.dp, c1.dp);
}

INSTANTIATE_TEST_SUITE_P(Specs, RankCoordTest,
                         ::testing::Values(ParallelismSpec{1, 1, 1, 1},
                                           ParallelismSpec{2, 1, 1, 1},
                                           ParallelismSpec{2, 2, 2, 2},
                                           ParallelismSpec{9, 8, 1, 4},
                                           ParallelismSpec{9, 4, 4, 4},
                                           ParallelismSpec{3, 5, 2, 7}));

TEST(ClientPlaceTreeTest, BucketCountsPerAxis) {
  ParallelismSpec spec{.dp = 4, .pp = 2, .cp = 3, .tp = 2};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec, 8);
  EXPECT_EQ(tree.NumBuckets(Axis::kDP), 4);
  EXPECT_EQ(tree.NumBuckets(Axis::kCP), 12);  // DP x CP uniform consumers
  EXPECT_EQ(tree.NumBuckets(Axis::kWorld), 48);
  EXPECT_EQ(tree.NumBuckets(Axis::kPP), 4);   // replicated along PP
  EXPECT_EQ(tree.NumBuckets(Axis::kTP), 4);   // replicated along TP
  EXPECT_EQ(tree.num_microbatches(), 8);
}

TEST(ClientPlaceTreeTest, GroupSizeCeils) {
  ParallelismSpec spec{.dp = 10, .pp = 1, .cp = 1, .tp = 1};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  EXPECT_EQ(tree.NumBuckets(Axis::kDP, 3), 4);  // ceil(10/3)
  EXPECT_EQ(tree.NumBuckets(Axis::kDP, 10), 1);
  EXPECT_EQ(tree.NumBuckets(Axis::kDP, 100), 1);
}

TEST(ClientPlaceTreeTest, BucketsPartitionTheWorld) {
  ParallelismSpec spec{.dp = 3, .pp = 2, .cp = 2, .tp = 2};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  for (Axis axis : {Axis::kDP, Axis::kCP, Axis::kWorld}) {
    std::set<int32_t> seen;
    for (int32_t b = 0; b < tree.NumBuckets(axis); ++b) {
      for (int32_t r : tree.BucketRanks(axis, b)) {
        EXPECT_TRUE(seen.insert(r).second) << "rank " << r << " in two buckets";
      }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(spec.WorldSize()));
  }
}

TEST(ClientPlaceTreeTest, CpBucketGroupsDpCpPairs) {
  ParallelismSpec spec{.dp = 2, .pp = 1, .cp = 2, .tp = 2};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  // Bucket 0 = (dp0, cp0): its ranks must share dp=0, cp=0 across tp.
  for (int32_t r : tree.BucketRanks(Axis::kCP, 0)) {
    RankCoord c = CoordOfRank(spec, r);
    EXPECT_EQ(c.dp, 0);
    EXPECT_EQ(c.cp, 0);
  }
  EXPECT_EQ(tree.BucketRanks(Axis::kCP, 0).size(), 2u);  // tp ranks
}

TEST(ClientPlaceTreeTest, BucketOfRankConsistentWithBucketRanks) {
  ParallelismSpec spec{.dp = 2, .pp = 2, .cp = 2, .tp = 1};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  for (Axis axis : {Axis::kDP, Axis::kCP, Axis::kWorld}) {
    for (int32_t r = 0; r < spec.WorldSize(); ++r) {
      int32_t b = tree.BucketOfRank(axis, r);
      auto ranks = tree.BucketRanks(axis, b);
      EXPECT_NE(std::find(ranks.begin(), ranks.end(), r), ranks.end());
    }
  }
}

TEST(ClientPlaceTreeTest, FetchExclusionsPerAxis) {
  ParallelismSpec spec{.dp = 2, .pp = 2, .cp = 2, .tp = 2};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  // TP broadcast: tp>0 ranks excluded = world/2.
  EXPECT_EQ(tree.FetchExcludedRanks(Axis::kTP).size(),
            static_cast<size_t>(spec.WorldSize() / 2));
  for (int32_t r : tree.FetchExcludedRanks(Axis::kTP)) {
    EXPECT_GT(CoordOfRank(spec, r).tp, 0);
  }
  // No exclusions along DP.
  EXPECT_TRUE(tree.FetchExcludedRanks(Axis::kDP).empty());
}

TEST(ClientPlaceTreeTest, FetchingRanksComposeExclusions) {
  ParallelismSpec spec{.dp = 2, .pp = 2, .cp = 2, .tp = 2};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  auto fetching = tree.FetchingRanks({Axis::kTP, Axis::kCP, Axis::kPP});
  // Only (tp=0, cp=0, pp=0) ranks remain: one per DP group.
  EXPECT_EQ(fetching.size(), 2u);
  for (int32_t r : fetching) {
    RankCoord c = CoordOfRank(spec, r);
    EXPECT_EQ(c.tp, 0);
    EXPECT_EQ(c.cp, 0);
    EXPECT_EQ(c.pp, 0);
  }
}

TEST(ClientPlaceTreeTest, DpOfBucketMapsConsumersToConstructors) {
  ParallelismSpec spec{.dp = 3, .pp = 1, .cp = 2, .tp = 1};
  auto tree = ClientPlaceTree::FromDeviceMesh(spec);
  EXPECT_EQ(tree.DpOfBucket(Axis::kDP, 2), 2);
  EXPECT_EQ(tree.DpOfBucket(Axis::kCP, 0), 0);
  EXPECT_EQ(tree.DpOfBucket(Axis::kCP, 1), 0);
  EXPECT_EQ(tree.DpOfBucket(Axis::kCP, 2), 1);
  EXPECT_EQ(tree.DpOfBucket(Axis::kWorld, spec.WorldSize() - 1), 2);
}

TEST(ClientPlaceTreeTest, RebuildAdoptsNewMesh) {
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1});
  EXPECT_EQ(tree.NumBuckets(Axis::kDP), 2);
  tree.Rebuild({.dp = 8, .pp = 1, .cp = 1, .tp = 1});
  EXPECT_EQ(tree.NumBuckets(Axis::kDP), 8);
  EXPECT_EQ(tree.root().ranks.size(), 8u);
}

TEST(ClientPlaceTreeTest, CustomizeHookSeesRoot) {
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 2, .cp = 1, .tp = 1});
  bool called = false;
  tree.Customize([&called](PlaceNode& root) {
    called = true;
    EXPECT_EQ(root.ranks.size(), 4u);
  });
  EXPECT_TRUE(called);
}

TEST(ClientPlaceTreeTest, ToStringMentionsSpec) {
  auto tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1});
  EXPECT_NE(tree.ToString().find("DP=2"), std::string::npos);
}

}  // namespace
}  // namespace msd
