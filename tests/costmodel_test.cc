#include <gtest/gtest.h>

#include "src/costmodel/flops.h"
#include "src/costmodel/model_config.h"

namespace msd {
namespace {

TEST(ModelConfigTest, Table1Values) {
  EXPECT_EQ(ViT1B().layers, 39);
  EXPECT_EQ(ViT1B().hidden, 1408);
  EXPECT_EQ(ViT2B().layers, 48);
  EXPECT_EQ(ViT2B().hidden, 1664);
  EXPECT_EQ(Llama12B().layers, 45);
  EXPECT_EQ(Llama12B().heads, 36);
  EXPECT_EQ(Llama12B().hidden, 4608);
  EXPECT_EQ(TMoE25B().layers, 42);
  EXPECT_EQ(TMoE25B().moe_topk, 2);
  EXPECT_EQ(Mixtral8x7B().layers, 32);
  EXPECT_EQ(Mixtral8x7B().hidden, 4096);
  EXPECT_EQ(Mixtral8x7B().moe_topk, 2);
}

TEST(ModelConfigTest, TableRenderingIncludesAllModels) {
  std::string table = ModelConfigTable();
  for (const char* name : {"ViT-1B", "ViT-2B", "Llama-12B", "tMoE-25B", "Mixtral-8x7B"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
}

TEST(ModelConfigTest, FfnDefaultsTo4xHidden) {
  ModelConfig c;
  c.hidden = 100;
  EXPECT_EQ(c.EffectiveFfn(), 400);
  c.ffn_hidden = 123;
  EXPECT_EQ(c.EffectiveFfn(), 123);
}

TEST(AttentionFlopsTest, PaperSixteenPercentExample) {
  // Sec. 1: a sequence packed from 30+70-token subsequences costs 16% more
  // attention compute than two 50-token subsequences.
  ModelConfig m = Llama12B();
  double unbalanced = AttentionFlops(m, {30, 70});
  double balanced = AttentionFlops(m, {50, 50});
  EXPECT_NEAR(unbalanced / balanced, 1.16, 1e-9);
}

TEST(AttentionFlopsTest, QuadraticInSegmentLength) {
  ModelConfig m = Llama12B();
  double one = AttentionFlops(m, {1000});
  double two = AttentionFlops(m, {2000});
  EXPECT_NEAR(two / one, 4.0, 1e-9);
}

TEST(AttentionFlopsTest, PackingMasksLimitQuadraticTerm) {
  // Two packed 1k segments cost half the attention of one contiguous 2k.
  ModelConfig m = Llama12B();
  EXPECT_NEAR(AttentionFlops(m, {1000, 1000}) / AttentionFlops(m, {2000}), 0.5, 1e-9);
}

TEST(ForwardFlopsTest, MonotonicInTokens) {
  ModelConfig m = Llama12B();
  EXPECT_LT(ForwardFlopsUniform(m, 1024), ForwardFlopsUniform(m, 2048));
}

TEST(ForwardFlopsTest, MoeActivatesTopkExperts) {
  ModelConfig dense = Mixtral8x7B();
  dense.moe_topk = 0;
  ModelConfig moe = Mixtral8x7B();
  double dense_flops = ForwardFlopsUniform(dense, 4096);
  double moe_flops = ForwardFlopsUniform(moe, 4096);
  EXPECT_GT(moe_flops, dense_flops);  // topk=2 doubles the MLP term
  ModelConfig top4 = moe;
  top4.moe_topk = 4;
  EXPECT_GT(ForwardFlopsUniform(top4, 4096), moe_flops);
}

TEST(ForwardFlopsTest, VocabHeadMatters) {
  ModelConfig with_head = Llama12B();
  ModelConfig no_head = Llama12B();
  no_head.vocab = 0;
  EXPECT_GT(ForwardFlopsUniform(with_head, 1024), ForwardFlopsUniform(no_head, 1024));
}

TEST(ForwardFlopsTest, EmptySegmentsCostNothing) {
  EXPECT_DOUBLE_EQ(ForwardFlops(Llama12B(), {}), 0.0);
  EXPECT_DOUBLE_EQ(ForwardFlops(Llama12B(), {0}), 0.0);
}

TEST(EncoderFlopsTest, ViT2BCostsMoreThanViT1B) {
  EXPECT_GT(EncoderFlops(ViT2B(), 4096), EncoderFlops(ViT1B(), 4096));
}

TEST(EncoderFlopsTest, SuperlinearInPatches) {
  // Attention makes doubling patches more than double cost.
  double one = EncoderFlops(ViT1B(), 8192);
  double two = EncoderFlops(ViT1B(), 16384);
  EXPECT_GT(two / one, 2.0);
}

TEST(BackboneSampleFlopsTest, UsesInterleavedLength) {
  SampleMeta meta;
  meta.text_tokens = 100;
  meta.image_tokens = 900;
  EXPECT_DOUBLE_EQ(BackboneSampleFlops(Llama12B(), meta),
                   ForwardFlopsUniform(Llama12B(), 1000));
}

TEST(FlopsLatencyTest, ScalesInverselyWithDeviceSpeed) {
  DeviceSpec slow{.flops_per_sec = 1e12};
  DeviceSpec fast{.flops_per_sec = 2e12};
  EXPECT_NEAR(static_cast<double>(FlopsLatency(1e12, slow)), kSecond, kSecond * 0.001);
  EXPECT_NEAR(static_cast<double>(FlopsLatency(1e12, fast)), kSecond / 2.0, kSecond * 0.001);
}

// Property sweep: imbalance between packed microbatches measured by the cost
// model matches the analytic quadratic expectation across scales.
class AttentionScaleTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(AttentionScaleTest, SplitIntoEqualHalvesAlwaysCheaper) {
  int32_t len = GetParam();
  ModelConfig m = Llama12B();
  double whole = AttentionFlops(m, {len});
  double halves = AttentionFlops(m, {len / 2, len / 2});
  EXPECT_NEAR(halves / whole, 0.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AttentionScaleTest,
                         ::testing::Values(128, 1024, 4096, 16384, 32768));

}  // namespace
}  // namespace msd
