// src/common/stats.h primitives, pinned down at their edges:
//  - RunningStat: Welford mean/variance vs closed-form, min/max tracking,
//    the empty and single-sample conventions (variance 0, min/max 0 when
//    empty);
//  - Pow2Histogram: bucket bounds construction (min, 2*min, ..., max),
//    below-range and above-range clamping, count vs weight fractions;
//  - EmpiricalCdf: exact quantiles at 0/0.5/1, linear interpolation between
//    order statistics, single-sample degenerate case, Curve endpoints.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/stats.h"

namespace msd {
namespace {

TEST(RunningStatTest, EmptyConventions) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatTest, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.Add(-7.5);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), -7.5);
  EXPECT_EQ(s.variance(), 0.0);  // sample variance needs count >= 2
  EXPECT_DOUBLE_EQ(s.min(), -7.5);
  EXPECT_DOUBLE_EQ(s.max(), -7.5);
}

TEST(RunningStatTest, MatchesClosedFormMoments) {
  // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, m2 = 32, n-1 = 7.
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, MinMaxTrackNegativeStreams) {
  // min_/max_ initialize from the first sample, not from 0 — a stream of
  // negative values must not report max() == 0.
  RunningStat s;
  s.Add(-3.0);
  s.Add(-1.0);
  s.Add(-9.0);
  EXPECT_DOUBLE_EQ(s.min(), -9.0);
  EXPECT_DOUBLE_EQ(s.max(), -1.0);
}

TEST(Pow2HistogramTest, BoundsAreDoublingsPlusMax) {
  // Bounds double from min_value while < max_value, then max_value caps the
  // sequence — even when it is not a power-of-two multiple of min_value.
  Pow2Histogram h(16, 100);
  EXPECT_EQ(h.bounds(), (std::vector<int64_t>{16, 32, 64, 100}));
  Pow2Histogram exact(4, 16);
  EXPECT_EQ(exact.bounds(), (std::vector<int64_t>{4, 8, 16}));
}

TEST(Pow2HistogramTest, ClampsOutOfRangeValues) {
  Pow2Histogram h(16, 64);  // bounds: 16, 32, 64
  h.Add(1);      // below range -> first bucket (value <= 16)
  h.Add(1000);   // above range -> clamped into the last bucket
  h.Add(64);     // inclusive upper bound -> last bucket
  std::vector<double> cf = h.CountFractions();
  ASSERT_EQ(cf.size(), 3u);
  EXPECT_DOUBLE_EQ(cf[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cf[1], 0.0);
  EXPECT_DOUBLE_EQ(cf[2], 2.0 / 3.0);
}

TEST(Pow2HistogramTest, BucketBoundariesAreInclusiveUpper) {
  Pow2Histogram h(16, 64);
  h.Add(16);  // == first bound -> bucket 0
  h.Add(17);  // just past it -> bucket 1
  std::vector<double> cf = h.CountFractions();
  EXPECT_DOUBLE_EQ(cf[0], 0.5);
  EXPECT_DOUBLE_EQ(cf[1], 0.5);
}

TEST(Pow2HistogramTest, WeightFractionsDivergeFromCountFractions) {
  // Two samples, one per bucket: counts split 50/50 but the weight mass
  // (Fig. 2's token-count pies) follows the weights.
  Pow2Histogram h(16, 32);
  h.Add(10, /*weight=*/1.0);
  h.Add(20, /*weight=*/9.0);
  std::vector<double> cf = h.CountFractions();
  std::vector<double> wf = h.WeightFractions();
  EXPECT_DOUBLE_EQ(cf[0], 0.5);
  EXPECT_DOUBLE_EQ(cf[1], 0.5);
  EXPECT_DOUBLE_EQ(wf[0], 0.1);
  EXPECT_DOUBLE_EQ(wf[1], 0.9);
  EXPECT_DOUBLE_EQ(h.total_count(), 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 10.0);
}

TEST(Pow2HistogramTest, EmptyFractionsAreAllZero) {
  Pow2Histogram h(16, 64);
  for (double f : h.CountFractions()) {
    EXPECT_EQ(f, 0.0);
  }
  for (double f : h.WeightFractions()) {
    EXPECT_EQ(f, 0.0);
  }
}

TEST(EmpiricalCdfTest, SingleSampleIsEveryQuantile) {
  EmpiricalCdf cdf;
  cdf.Add(42.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 42.0);
}

TEST(EmpiricalCdfTest, QuantilesInterpolateBetweenOrderStatistics) {
  EmpiricalCdf cdf;
  for (double x : {30.0, 10.0, 20.0, 40.0}) {  // insertion order must not matter
    cdf.Add(x);
  }
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 40.0);
  // pos = q * (n-1): q=0.5 lands exactly on index 1.5 -> midpoint of 20, 30.
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 25.0);
  // q=0.25 -> pos 0.75 -> 10 * 0.25 + 20 * 0.75.
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.25), 17.5);
}

TEST(EmpiricalCdfTest, AddAfterQuantileResorts) {
  // Quantile() lazily sorts; a later Add must invalidate that order.
  EmpiricalCdf cdf;
  cdf.Add(5.0);
  cdf.Add(1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  cdf.Add(0.5);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 5.0);
}

TEST(EmpiricalCdfTest, CurveSpansMinToMax) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(static_cast<double>(i));
  }
  std::vector<std::pair<double, double>> curve = cdf.Curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 100.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);  // monotone in value
  }
}

}  // namespace
}  // namespace msd
