// Streaming API equivalence and pipeline behavior: batches served through
// per-rank DataClients at prefetch depth >= 2 must be byte-identical to the
// deprecated synchronous shim path (AdvanceStep/GetBatch at depth 0) and to
// the scalar ReferenceDataPlane — including across a mid-stream Reshard()
// and a KillAndRecoverLoader() drain. Plus refcounted step retirement,
// async pulls, and backpressure bounds.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "src/api/session.h"
#include "src/constructor/reference_assembly.h"
#include "tests/batch_identity.h"

namespace msd {
namespace {

Session::Options PipelineOptions(int32_t prefetch_depth) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 2, .cp = 2, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = prefetch_depth;
  return options;
}

using testing::ExpectBatchesIdentical;

// Replays a captured step (plan + pop slices) through the frozen scalar
// reference plane and checks every rank's streamed batch against it.
void ExpectMatchesReference(const PrefetchPipeline::Capture& capture,
                            const ParallelismSpec& spec, int32_t num_microbatches,
                            int32_t max_seq_len,
                            const std::vector<RankBatch>& streamed) {
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, num_microbatches);
  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    DataConstructorConfig config;
    config.constructor_id = dp;
    config.max_seq_len = max_seq_len;
    ReferenceDataPlane reference(config, &tree);
    ASSERT_TRUE(
        reference.BuildStep(capture.plan, capture.slices_per_constructor[static_cast<size_t>(dp)])
            .ok());
    for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
      if (CoordOfRank(spec, rank).dp != dp) {
        continue;
      }
      Result<RankBatch> want = reference.GetBatch(rank, capture.plan.step);
      ASSERT_TRUE(want.ok());
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)], want.value());
    }
  }
}

// Pulls one step's batch for every rank through the streaming clients.
std::vector<RankBatch> StreamStep(Session& session) {
  std::vector<RankBatch> batches(static_cast<size_t>(session.tree().spec().WorldSize()));
  for (int32_t rank = 0; rank < session.tree().spec().WorldSize(); ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

// Advances the deprecated lockstep shim one step and fetches every rank.
std::vector<RankBatch> ShimStep(Session& session) {
  EXPECT_TRUE(session.AdvanceStep().ok());
  std::vector<RankBatch> batches(static_cast<size_t>(session.tree().spec().WorldSize()));
  for (int32_t rank = 0; rank < session.tree().spec().WorldSize(); ++rank) {
    Result<RankBatch> batch = session.GetBatch(rank);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

TEST(PipelineEquivalenceTest, StreamingMatchesShimAndReference) {
  auto shim = Session::Create(PipelineOptions(/*prefetch_depth=*/0));
  auto stream = Session::Create(PipelineOptions(/*prefetch_depth=*/2));
  ASSERT_TRUE(shim.ok());
  ASSERT_TRUE(stream.ok());
  const ParallelismSpec spec = PipelineOptions(0).spec;
  for (int64_t step = 0; step < 3; ++step) {
    // Capture before consuming: the step retires once every rank fetched it.
    Result<PrefetchPipeline::Capture> capture = (*stream)->CaptureStep(step);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    std::vector<RankBatch> streamed = StreamStep(**stream);
    std::vector<RankBatch> lockstep = ShimStep(**shim);
    for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)],
                             lockstep[static_cast<size_t>(rank)]);
    }
    ExpectMatchesReference(capture.value(), spec, /*num_microbatches=*/2,
                           /*max_seq_len=*/1024, streamed);
  }
}

TEST(PipelineEquivalenceTest, ReshardMidStreamRebuildsPrefetchedSteps) {
  auto shim = Session::Create(PipelineOptions(0));
  auto stream = Session::Create(PipelineOptions(2));
  ASSERT_TRUE(shim.ok());
  ASSERT_TRUE(stream.ok());
  const ParallelismSpec before = PipelineOptions(0).spec;
  for (int64_t step = 0; step < 2; ++step) {
    std::vector<RankBatch> streamed = StreamStep(**stream);
    std::vector<RankBatch> lockstep = ShimStep(**shim);
    for (int32_t rank = 0; rank < before.WorldSize(); ++rank) {
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)],
                             lockstep[static_cast<size_t>(rank)]);
    }
  }
  // Mid-stream reshard: CP 2 -> 1 (world 8 -> 4). The streaming session has
  // steps 2..3 already prefetched; they must be rebuilt for the new mesh from
  // retained slices, not re-popped or dropped.
  ParallelismSpec after{.dp = 2, .pp = 2, .cp = 1, .tp = 1};
  ASSERT_TRUE((*stream)->Reshard(after).ok());
  ASSERT_TRUE((*shim)->Reshard(after).ok());
  for (int64_t step = 2; step < 4; ++step) {
    Result<PrefetchPipeline::Capture> capture = (*stream)->CaptureStep(step);
    ASSERT_TRUE(capture.ok()) << capture.status().ToString();
    std::vector<RankBatch> streamed = StreamStep(**stream);
    std::vector<RankBatch> lockstep = ShimStep(**shim);
    for (int32_t rank = 0; rank < after.WorldSize(); ++rank) {
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)],
                             lockstep[static_cast<size_t>(rank)]);
    }
    ExpectMatchesReference(capture.value(), after, 2, 1024, streamed);
  }
  // Full sequences are served post-reshard (cp=1: no slicing).
  Result<RankBatch> whole = (*stream)->client(0).value()->NextBatch();
  ASSERT_TRUE(whole.ok());
  const PackedSequence& seq = whole->microbatches[0].sequences[0];
  EXPECT_EQ(static_cast<int32_t>(seq.tokens.size()), seq.padded_to);
}

TEST(PipelineEquivalenceTest, RecoveryDrainKeepsEquivalence) {
  Session::Options shim_options = PipelineOptions(0);
  shim_options.enable_fault_tolerance = true;
  Session::Options stream_options = PipelineOptions(2);
  stream_options.enable_fault_tolerance = true;
  auto shim = Session::Create(shim_options);
  auto stream = Session::Create(stream_options);
  ASSERT_TRUE(shim.ok());
  ASSERT_TRUE(stream.ok());
  const ParallelismSpec spec = shim_options.spec;
  for (int64_t step = 0; step < 2; ++step) {
    StreamStep(**stream);
    ShimStep(**shim);
  }
  // The drain quiesces the producer mid-stream, so the kill cannot race an
  // in-flight pop; the shadow was mirrored for every produced (not just
  // consumed) step, so post-promotion pops match the shim session exactly.
  Result<std::string> stream_promoted = (*stream)->KillAndRecoverLoader(0);
  Result<std::string> shim_promoted = (*shim)->KillAndRecoverLoader(0);
  ASSERT_TRUE(stream_promoted.ok()) << stream_promoted.status().ToString();
  ASSERT_TRUE(shim_promoted.ok());
  EXPECT_NE(stream_promoted->find("shadow_loader/"), std::string::npos);
  for (int64_t step = 2; step < 4; ++step) {
    std::vector<RankBatch> streamed = StreamStep(**stream);
    std::vector<RankBatch> lockstep = ShimStep(**shim);
    for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
      ExpectBatchesIdentical(streamed[static_cast<size_t>(rank)],
                             lockstep[static_cast<size_t>(rank)]);
    }
  }
}

TEST(DataClientTest, RefcountedRetirementReleasesConsumedSteps) {
  Session::Options options = PipelineOptions(2);
  options.spec = {.dp = 1, .pp = 1, .cp = 1, .tp = 1};
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  DataClient* client = (*session)->client(0).value();
  EXPECT_EQ(client->rank(), 0);
  EXPECT_EQ(client->next_step(), 0);
  ASSERT_TRUE(client->NextBatch().ok());  // world=1: step 0 fully fetched
  ASSERT_TRUE(client->NextBatch().ok());
  EXPECT_EQ(client->next_step(), 2);
  PrefetchPipeline::Stats stats = (*session)->pipeline_stats();
  EXPECT_GE(stats.steps_produced, 2);
  EXPECT_GE(stats.steps_retired, 2);  // refcount complete => retired
  EXPECT_LE(stats.queue_depth, 2u);   // bounded by the prefetch depth
  // A retired step's plan/slices are gone; capture must fail loudly.
  EXPECT_EQ((*session)->CaptureStep(0).status().code(), StatusCode::kFailedPrecondition);
}

TEST(DataClientTest, FloorRetiredStepReleasesEagerlyAfterFinalFetch) {
  // Sequential per-rank streaming: the final rank's claim advances the cursor
  // floor and retires the ticket *before* its fetch lands. The post-fetch
  // bookkeeping must still release the step's StepData right after that fetch
  // completes — one step earlier than the resident_steps eviction backstop.
  Session::Options options = PipelineOptions(2);
  options.spec = {.dp = 1, .pp = 2, .cp = 1, .tp = 1};  // world 2
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  for (int64_t step = 0; step < 3; ++step) {
    for (int32_t rank = 0; rank < 2; ++rank) {
      ASSERT_TRUE((*session)->client(rank).value()->NextBatch().ok());
    }
    // Every fully consumed step must already be gone from the constructors
    // (the release lands in the mailbox before this Ask).
    for (const std::vector<int64_t>& resident : (*session)->ConstructorResidentSteps()) {
      for (int64_t s : resident) {
        EXPECT_GT(s, step) << "step " << step << " survived its final fetch";
      }
    }
  }
  EXPECT_GE((*session)->pipeline_stats().steps_released, 3);
}

TEST(DataClientTest, AsyncPullsDeliverInStreamOrder) {
  Session::Options options = PipelineOptions(2);
  options.spec = {.dp = 1, .pp = 1, .cp = 1, .tp = 1};
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  DataClient* client = (*session)->client(0).value();
  std::future<Result<RankBatch>> pending = client->NextBatchAsync();
  Result<RankBatch> first = pending.get();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->step, 0);
  Result<RankBatch> second = client->NextBatch();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->step, 1);
}

TEST(DataClientTest, RankStallHistogramCountsStreamingPulls) {
  Session::Options options = PipelineOptions(2);
  options.spec = {.dp = 1, .pp = 1, .cp = 1, .tp = 1};
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  DataClient* client = (*session)->client(0).value();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->NextBatch().ok());
  }
  Result<Session::StepStats> stats = (*session)->StepStatsFor(client->next_step());
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->rank_stalls.size(), 1u);
  EXPECT_EQ(stats->rank_stalls[0].pulls, 3);
  EXPECT_LE(stats->rank_stalls[0].stalls, 3);
  EXPECT_GE(stats->rank_stalls[0].wait_ms, 0.0);
  // Stalled pulls and hit/stall counters agree in aggregate (the
  // StepStatsFor wait is pure observability and is not counted).
  PrefetchPipeline::Stats pipeline = (*session)->pipeline_stats();
  EXPECT_EQ(pipeline.prefetch_hits + pipeline.prefetch_stalls, 3);
  EXPECT_EQ(stats->rank_stalls[0].stalls, pipeline.prefetch_stalls);
}

TEST(DataClientTest, RankBoundsAreChecked) {
  Session::Options options = PipelineOptions(2);
  options.spec = {.dp = 1, .pp = 1, .cp = 1, .tp = 1};
  auto session = Session::Create(options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->client(99).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*session)->client(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionBuilderTest, FluentPathMatchesOptionsPath) {
  auto built = SessionBuilder()
                   .WithCorpus(MakeCoyo700m())
                   .WithMesh({.dp = 2, .pp = 1, .cp = 1, .tp = 1})
                   .WithMicrobatches(2)
                   .WithSamplesPerStep(16)
                   .WithMaxSeqLen(1024)
                   .WithRowsPerFile(48)
                   .WithLoaderWorkers(1)
                   .WithPrefetchDepth(1)
                   .Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ((*built)->tree().spec().WorldSize(), 2);
  ASSERT_TRUE((*built)->client(0).ok());
  Result<RankBatch> batch = (*built)->client(0).value()->NextBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->microbatches.empty());
}

TEST(SessionBuilderTest, InvalidPrefetchDepthRejected) {
  Session::Options options = PipelineOptions(-1);
  EXPECT_EQ(Session::Create(std::move(options)).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace msd
