#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/ft/fault_tolerance.h"
#include "src/planner/planner.h"
#include "src/planner/strategies.h"

namespace msd {
namespace {

class FtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = MakeCoyo700m().sources[0];
    spec_.num_files = 2;
    spec_.rows_per_file = 48;
    ASSERT_TRUE(WriteSourceFiles(store_, spec_, 7).ok());
  }

  SourceLoaderConfig LoaderConfig(bool shadow) {
    SourceLoaderConfig config;
    config.loader_id = 0;
    config.spec = spec_;
    config.files = {SourceFileName(spec_, 0), SourceFileName(spec_, 1)};
    config.num_workers = 1;
    config.buffer_low_watermark = 24;
    config.is_shadow = shadow;
    return config;
  }

  // A plan popping the first `n` buffered ids from loader 0 at `step`.
  LoadingPlan PlanFor(SourceLoader& loader, int64_t step, int n) {
    LoadingPlan plan;
    plan.step = step;
    plan.num_buckets = 1;
    plan.num_microbatches = 1;
    BufferInfo info = loader.SummaryBuffer();
    for (int i = 0; i < n; ++i) {
      SliceAssignment a;
      a.sample_id = info.samples[static_cast<size_t>(i)].sample_id;
      a.loader_id = 0;
      a.bucket = 0;
      a.microbatch = 0;
      plan.assignments.push_back(a);
    }
    return plan;
  }

  SourceSpec spec_;
  MemoryAccountant memory_;
  ObjectStore store_{&memory_};
  ActorSystem system_;
};

TEST_F(FtTest, ShadowMirrorsPrimaryBuffer) {
  auto primary = system_.Spawn<SourceLoader>(LoaderConfig(false), &store_, &memory_);
  auto shadow = system_.Spawn<SourceLoader>(LoaderConfig(true), &store_, &memory_);
  ASSERT_TRUE(system_.Ask<Status>(*primary, [l = primary.get()] { return l->Open(); }).ok());
  ASSERT_TRUE(system_.Ask<Status>(*shadow, [l = shadow.get()] { return l->Open(); }).ok());

  FaultToleranceManager ft({.loader_snapshot_interval = 2}, &system_);
  ft.RegisterPair(primary.get(), shadow.get());

  for (int64_t step = 0; step < 4; ++step) {
    LoadingPlan plan = PlanFor(*primary, step, 4);
    ASSERT_TRUE(primary->PopSamples(step, {plan.assignments[0].sample_id,
                                           plan.assignments[1].sample_id,
                                           plan.assignments[2].sample_id,
                                           plan.assignments[3].sample_id})
                    .ok());
    ASSERT_TRUE(ft.OnPlanExecuted(plan).ok());
  }
  // Shadow's buffer front must equal the primary's.
  BufferInfo p = primary->SummaryBuffer();
  BufferInfo s = shadow->SummaryBuffer();
  ASSERT_GE(s.samples.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(p.samples[i].sample_id, s.samples[i].sample_id);
  }
  EXPECT_GT(ft.snapshots_taken(), 0);
}

TEST_F(FtTest, PromoteShadowAfterKill) {
  auto primary = system_.Spawn<SourceLoader>(LoaderConfig(false), &store_, &memory_);
  auto shadow = system_.Spawn<SourceLoader>(LoaderConfig(true), &store_, &memory_);
  ASSERT_TRUE(system_.Ask<Status>(*primary, [l = primary.get()] { return l->Open(); }).ok());
  ASSERT_TRUE(system_.Ask<Status>(*shadow, [l = shadow.get()] { return l->Open(); }).ok());
  FaultToleranceManager ft({}, &system_);
  ft.RegisterPair(primary.get(), shadow.get());

  std::string name = primary->name();
  system_.Kill(*primary);
  Result<SourceLoader*> promoted = ft.PromoteShadow(name);
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted.value(), shadow.get());
  EXPECT_EQ(ft.promotions(), 1);
  // The promoted loader serves data immediately (hot standby).
  BufferInfo info = promoted.value()->SummaryBuffer();
  EXPECT_FALSE(info.samples.empty());
  // GCS recorded the restart.
  EXPECT_EQ(system_.gcs().GetRecord(name)->restarts, 1);
}

TEST_F(FtTest, PromoteWithoutShadowFails) {
  auto primary = system_.Spawn<SourceLoader>(LoaderConfig(false), &store_, &memory_);
  FaultToleranceManager ft({}, &system_);
  ft.RegisterPair(primary.get(), nullptr);
  EXPECT_EQ(ft.PromoteShadow(primary->name()).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(ft.PromoteShadow("unknown").status().code(), StatusCode::kNotFound);
}

TEST_F(FtTest, CheckpointRecoveryReplaysJournal) {
  auto primary = system_.Spawn<SourceLoader>(LoaderConfig(false), &store_, &memory_);
  ASSERT_TRUE(system_.Ask<Status>(*primary, [l = primary.get()] { return l->Open(); }).ok());
  FaultToleranceManager ft({.loader_snapshot_interval = 2}, &system_);
  ft.RegisterPair(primary.get(), nullptr);

  // Execute steps 0..4, journaling plans like the Planner would.
  for (int64_t step = 0; step <= 4; ++step) {
    LoadingPlan plan = PlanFor(*primary, step, 3);
    std::vector<uint64_t> ids;
    for (const SliceAssignment& a : plan.assignments) {
      ids.push_back(a.sample_id);
    }
    system_.gcs().PutState(Planner::PlanJournalKey(step), plan.Serialize());
    ASSERT_TRUE(primary->PopSamples(step, ids).ok());
    ASSERT_TRUE(ft.OnPlanExecuted(plan).ok());
  }
  BufferInfo expected = primary->SummaryBuffer();

  // A fresh replacement recovers from snapshot (step 4) + journal replay.
  SourceLoaderConfig fresh_config = LoaderConfig(false);
  fresh_config.name_override = "source_loader/replacement#0";
  auto fresh = system_.Spawn<SourceLoader>(fresh_config, &store_, &memory_);
  ASSERT_TRUE(system_.Ask<Status>(*fresh, [l = fresh.get()] { return l->Open(); }).ok());
  ASSERT_TRUE(ft.RecoverFromCheckpoint(fresh.get(), 0, 4).ok());
  BufferInfo recovered = fresh->SummaryBuffer();
  ASSERT_GE(recovered.samples.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(recovered.samples[i].sample_id, expected.samples[i].sample_id);
  }
}

TEST_F(FtTest, RecoveryWithoutSnapshotFails) {
  auto fresh = system_.Spawn<SourceLoader>(LoaderConfig(false), &store_, &memory_);
  FaultToleranceManager ft({}, &system_);
  EXPECT_EQ(ft.RecoverFromCheckpoint(fresh.get(), 99, 0).code(), StatusCode::kNotFound);
}

TEST_F(FtTest, InjectorTogglesPartialYield) {
  auto loader = system_.Spawn<SourceLoader>(LoaderConfig(false), &store_, &memory_);
  ASSERT_TRUE(system_.Ask<Status>(*loader, [l = loader.get()] { return l->Open(); }).ok());
  FailureInjector injector(&system_);
  injector.InjectPartialYield(loader.get(), true);
  // Drain the injection post, then pop.
  system_.Ask<bool>(*loader, [] { return true; });
  BufferInfo info = loader->SummaryBuffer();
  Result<SampleSlice> slice =
      loader->PopSamples(0, {info.samples[0].sample_id, info.samples[1].sample_id});
  ASSERT_TRUE(slice.ok());
  EXPECT_FALSE(slice->end_of_stream);
}

}  // namespace
}  // namespace msd
