#include <gtest/gtest.h>

#include <set>

#include "src/constructor/data_constructor.h"

namespace msd {
namespace {

// Builds a plan plus matching slices over synthetic samples.
struct Fixture {
  explicit Fixture(ParallelismSpec spec, int32_t num_microbatches = 2,
                   int32_t samples_per_bucket = 6) {
    tree = ClientPlaceTree::FromDeviceMesh(spec, num_microbatches);
    plan.axis = Axis::kDP;
    plan.num_buckets = tree.NumBuckets(Axis::kDP);
    plan.num_microbatches = num_microbatches;
    plan.step = 0;
    uint64_t id = 1;
    SampleSlice slice;
    slice.loader_id = 0;
    for (int32_t b = 0; b < plan.num_buckets; ++b) {
      for (int32_t i = 0; i < samples_per_bucket; ++i) {
        SliceAssignment a;
        a.sample_id = id;
        a.source_id = 0;
        a.loader_id = 0;
        a.bucket = b;
        a.microbatch = i % num_microbatches;
        a.total_tokens = 64 + 32 * i;
        a.cost = a.total_tokens;
        plan.assignments.push_back(a);

        auto sample = std::make_shared<Sample>();
        sample->meta.sample_id = id;
        sample->meta.text_tokens = a.total_tokens;
        sample->tokens =
            std::vector<int32_t>(static_cast<size_t>(a.total_tokens), static_cast<int32_t>(id));
        slice.samples.push_back(std::move(sample));
        ++id;
      }
    }
    slices.push_back(std::move(slice));
  }

  ClientPlaceTree tree;
  LoadingPlan plan;
  std::vector<SampleSlice> slices;
  MemoryAccountant memory;
};

TEST(CpSliceRangesTest, SingleRankTakesAll) {
  auto ranges = CpSliceRanges(100, 1, 0, CpSplitMode::kZigZag);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<int32_t, int32_t>{0, 100}));
}

TEST(CpSliceRangesTest, ContiguousPartitions) {
  std::set<int32_t> covered;
  for (int32_t r = 0; r < 4; ++r) {
    for (auto [b, e] : CpSliceRanges(100, 4, r, CpSplitMode::kContiguous)) {
      for (int32_t i = b; i < e; ++i) {
        EXPECT_TRUE(covered.insert(i).second);
      }
    }
  }
  EXPECT_EQ(covered.size(), 100u);
}

TEST(CpSliceRangesTest, ZigZagCoversDisjointly) {
  // Padded length divisible by 2*cp: exact coverage, two chunks per rank.
  std::set<int32_t> covered;
  for (int32_t r = 0; r < 4; ++r) {
    auto ranges = CpSliceRanges(160, 4, r, CpSplitMode::kZigZag);
    EXPECT_EQ(ranges.size(), 2u);
    for (auto [b, e] : ranges) {
      EXPECT_EQ(e - b, 20);
      for (int32_t i = b; i < e; ++i) {
        EXPECT_TRUE(covered.insert(i).second);
      }
    }
  }
  EXPECT_EQ(covered.size(), 160u);
}

TEST(CpSliceRangesTest, ZigZagPairsEarlyAndLateChunks) {
  auto ranges = CpSliceRanges(160, 4, 0, CpSplitMode::kZigZag);
  // Rank 0 owns chunk 0 (earliest) and chunk 7 (latest): causal balance.
  EXPECT_EQ(ranges[0].first, 0);
  EXPECT_EQ(ranges[1].second, 160);
}

TEST(DataConstructorTest, OwnedBucketsFollowDp) {
  Fixture f({.dp = 3, .pp = 1, .cp = 1, .tp = 1});
  DataConstructorConfig config;
  config.constructor_id = 1;
  DataConstructor dc(config, &f.tree, &f.memory);
  EXPECT_EQ(dc.OwnedBuckets(f.plan), (std::vector<int32_t>{1}));
}

TEST(DataConstructorTest, BuildAndServeBatch) {
  Fixture f({.dp = 2, .pp = 1, .cp = 1, .tp = 1});
  DataConstructorConfig config;
  config.constructor_id = 0;
  config.max_seq_len = 512;
  DataConstructor dc(config, &f.tree, &f.memory);
  ASSERT_TRUE(dc.BuildStep(f.plan, f.slices).ok());
  Result<RankBatch> batch = dc.GetBatch(0, 0);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->metadata_only);
  EXPECT_EQ(batch->microbatches.size(), 2u);
  EXPECT_GT(batch->payload_bytes, 0);
  // All bucket-0 sample ids appear exactly once across microbatches.
  std::set<uint64_t> seen;
  for (const Microbatch& mb : batch->microbatches) {
    for (const PackedSequence& seq : mb.sequences) {
      for (uint64_t id : seq.sample_ids) {
        EXPECT_TRUE(seen.insert(id).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(DataConstructorTest, UnbuiltStepNotFound) {
  Fixture f({.dp = 1, .pp = 1, .cp = 1, .tp = 1});
  DataConstructor dc({}, &f.tree, &f.memory);
  EXPECT_EQ(dc.GetBatch(0, 99).status().code(), StatusCode::kNotFound);
}

TEST(DataConstructorTest, MissingSampleIsDataLoss) {
  Fixture f({.dp = 1, .pp = 1, .cp = 1, .tp = 1});
  f.slices[0].samples.pop_back();
  DataConstructor dc({}, &f.tree, &f.memory);
  EXPECT_EQ(dc.BuildStep(f.plan, f.slices).code(), StatusCode::kDataLoss);
}

TEST(DataConstructorTest, PartialYieldSliceRejected) {
  Fixture f({.dp = 1, .pp = 1, .cp = 1, .tp = 1});
  f.slices[0].end_of_stream = false;
  DataConstructor dc({}, &f.tree, &f.memory);
  EXPECT_EQ(dc.BuildStep(f.plan, f.slices).code(), StatusCode::kDataLoss);
}

TEST(DataConstructorTest, PpStagesGetMetadataOnly) {
  Fixture f({.dp = 1, .pp = 2, .cp = 1, .tp = 1});
  DataConstructor dc({}, &f.tree, &f.memory);
  ASSERT_TRUE(dc.BuildStep(f.plan, f.slices).ok());
  RankBatch pp0 = dc.GetBatch(0, 0).value();
  RankBatch pp1 = dc.GetBatch(1, 0).value();
  EXPECT_FALSE(pp0.metadata_only);
  EXPECT_TRUE(pp1.metadata_only);
  EXPECT_GT(pp0.payload_bytes, 0);
  EXPECT_EQ(pp1.payload_bytes, 0);  // lengths/ids only, no token payloads
  // Metadata view still describes the same sequences.
  ASSERT_EQ(pp1.microbatches.size(), pp0.microbatches.size());
  EXPECT_EQ(pp1.microbatches[0].sequences.size(), pp0.microbatches[0].sequences.size());
}

TEST(DataConstructorTest, CpRanksShareBatchWithSlicedTokens) {
  Fixture f({.dp = 1, .pp = 1, .cp = 2, .tp = 1});
  DataConstructor dc({}, &f.tree, &f.memory);
  ASSERT_TRUE(dc.BuildStep(f.plan, f.slices).ok());
  RankBatch cp0 = dc.GetBatch(0, 0).value();
  RankBatch cp1 = dc.GetBatch(1, 0).value();
  ASSERT_FALSE(cp0.microbatches.empty());
  const PackedSequence& s0 = cp0.microbatches[0].sequences[0];
  const PackedSequence& s1 = cp1.microbatches[0].sequences[0];
  EXPECT_EQ(s0.sample_ids, s1.sample_ids);  // same logical sequence
  EXPECT_EQ(s0.tokens.size(), s1.tokens.size());
  EXPECT_EQ(static_cast<int32_t>(s0.tokens.size() + s1.tokens.size()), s0.padded_to);
}

TEST(DataConstructorTest, TpRanksGetIdenticalViews) {
  Fixture f({.dp = 1, .pp = 1, .cp = 1, .tp = 2});
  DataConstructor dc({}, &f.tree, &f.memory);
  ASSERT_TRUE(dc.BuildStep(f.plan, f.slices).ok());
  RankBatch tp0 = dc.GetBatch(0, 0).value();
  RankBatch tp1 = dc.GetBatch(1, 0).value();
  ASSERT_EQ(tp0.microbatches.size(), tp1.microbatches.size());
  EXPECT_EQ(tp0.microbatches[0].sequences[0].tokens,
            tp1.microbatches[0].sequences[0].tokens);
}

TEST(DataConstructorTest, PaddingAlignedToTwiceCp) {
  Fixture f({.dp = 1, .pp = 1, .cp = 4, .tp = 1});
  DataConstructor dc({}, &f.tree, &f.memory);
  ASSERT_TRUE(dc.BuildStep(f.plan, f.slices).ok());
  RankBatch batch = dc.GetBatch(0, 0).value();
  for (const Microbatch& mb : batch.microbatches) {
    for (const PackedSequence& seq : mb.sequences) {
      EXPECT_EQ(seq.padded_to % 8, 0);  // 2 * cp
    }
  }
}

TEST(DataConstructorTest, BatchBufferChargedAndEvicted) {
  Fixture f({.dp = 1, .pp = 1, .cp = 1, .tp = 1});
  DataConstructorConfig config;
  config.resident_steps = 1;
  DataConstructor dc(config, &f.tree, &f.memory);
  ASSERT_TRUE(dc.BuildStep(f.plan, f.slices).ok());
  int64_t charged = f.memory.CategoryTotal(MemCategory::kBatchBuffer);
  EXPECT_GT(charged, 0);
  // Build step 1 with resident_steps=1: step 0 evicted.
  Fixture g({.dp = 1, .pp = 1, .cp = 1, .tp = 1});
  g.plan.step = 1;
  ASSERT_TRUE(dc.BuildStep(g.plan, g.slices).ok());
  EXPECT_EQ(dc.GetBatch(0, 0).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(dc.GetBatch(0, 1).ok());
}

TEST(DataConstructorTest, ReshardDropsResidentSteps) {
  Fixture f({.dp = 2, .pp = 1, .cp = 1, .tp = 1});
  DataConstructor dc({}, &f.tree, &f.memory);
  ASSERT_TRUE(dc.BuildStep(f.plan, f.slices).ok());
  auto new_tree = ClientPlaceTree::FromDeviceMesh({.dp = 2, .pp = 1, .cp = 2, .tp = 1}, 2);
  dc.Reshard(&new_tree);
  EXPECT_EQ(dc.GetBatch(0, 0).status().code(), StatusCode::kNotFound);
}

TEST(DataConstructorTest, InvalidRankRejected) {
  Fixture f({.dp = 1, .pp = 1, .cp = 1, .tp = 1});
  DataConstructor dc({}, &f.tree, &f.memory);
  ASSERT_TRUE(dc.BuildStep(f.plan, f.slices).ok());
  EXPECT_EQ(dc.GetBatch(99, 0).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace msd
