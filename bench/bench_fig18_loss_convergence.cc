// Fig. 18 reproduction: impact of the balancer on training-loss convergence.
//
// Paper anchors: (a) without CP, the balanced loss tightly tracks the
// baseline (inter-microbatch moves only preserve the global batch);
// (b) with CP, repartitioned sequences perturb distributed reduction order,
// adding minor but bounded fluctuation — convergence is unaffected.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/trainsim/loss_sim.h"

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 18: balancer impact on training loss (50 steps)",
      "(a) no CP: balanced ~= baseline; (b) CP: minor fluctuation, same convergence");

  LossSimulator sim;
  constexpr int64_t kSteps = 50;
  constexpr uint64_t kSeed = 2026;
  LossTrace base = sim.Run(kSteps, kSeed, /*balanced=*/false, /*cp=*/false);
  LossTrace balanced = sim.Run(kSteps, kSeed, /*balanced=*/true, /*cp=*/false);
  LossTrace balanced_cp = sim.Run(kSteps, kSeed, /*balanced=*/true, /*cp=*/true);

  std::printf("\n  %6s %14s %16s %16s\n", "step", "baseline", "balanced(noCP)",
              "balanced(CP)");
  for (int64_t step = 0; step < kSteps; step += 5) {
    std::printf("  %6lld %14.4f %16.4f %16.4f\n", static_cast<long long>(step),
                base.loss[static_cast<size_t>(step)],
                balanced.loss[static_cast<size_t>(step)],
                balanced_cp.loss[static_cast<size_t>(step)]);
  }
  std::printf("\n  max |balanced - baseline| without CP: %.5f (tight tracking)\n",
              LossTrace::MaxDeviation(base, balanced));
  std::printf("  max |balanced - baseline| with CP:    %.5f (minor, bounded)\n",
              LossTrace::MaxDeviation(base, balanced_cp));
  std::printf("  final losses: baseline %.4f | balanced %.4f | balanced+CP %.4f\n",
              base.FinalLoss(), balanced.FinalLoss(), balanced_cp.FinalLoss());
  return 0;
}
