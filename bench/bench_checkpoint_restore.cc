// Durable checkpoint & elastic resume cost (src/checkpoint/): what does it
// cost to make the data-plane position survive the process?
//
// The scenario streams a depth-2 session, then measures
//   - steady-state step time (the baseline everything is relative to),
//   - Checkpoint(dir) latency (pipeline drain + state gather + two-phase
//     commit to disk) and the on-disk checkpoint size,
//   - ResumeFrom(dir) latency (corpus re-materialization + loader rewind +
//     plan-journal replay) split against a cold fresh-session build.
//
// `--smoke` runs a small scenario and exits nonzero if the resumed session's
// batches are not byte-identical to an uninterrupted run — the durability
// path can never silently fork the stream. Wired into ctest.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/session.h"

namespace msd {
namespace {

namespace fs = std::filesystem;

struct Scenario {
  const char* label;
  int num_sources;
  ParallelismSpec spec;
  int64_t samples_per_step;
  int64_t rows_per_file;
  int warm_steps;    // consumed before the checkpoint
  int resume_steps;  // consumed after the resume (and verified in smoke)
};

Session::Options MakeOptions(const Scenario& s) {
  Session::Options options;
  options.corpus = MakeNavitData(/*seed=*/13, s.num_sources);
  options.spec = s.spec;
  options.num_microbatches = 2;
  options.samples_per_step = s.samples_per_step;
  options.max_seq_len = 2048;
  options.rows_per_file_override = s.rows_per_file;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  return options;
}

double Ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

void StreamStep(Session& session) {
  for (int32_t rank = 0; rank < session.tree().spec().WorldSize(); ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    MSD_CHECK(batch.ok());
  }
}

int RunScenario(const Scenario& s, bool smoke) {
  bench::PrintHeader(
      std::string("checkpoint/restore — ") + s.label,
      "job-level differential checkpointing: kill the process, resume the "
      "stream byte-identically from disk");
  std::printf("  sources=%d mesh={dp=%d pp=%d cp=%d tp=%d} samples/step=%lld\n",
              s.num_sources, s.spec.dp, s.spec.pp, s.spec.cp, s.spec.tp,
              static_cast<long long>(s.samples_per_step));

  const std::string dir =
      (fs::temp_directory_path() / ("msd_bench_ckpt_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  int failures = 0;
  {
    // The uninterrupted reference keeps running in parallel with the
    // checkpointed job so smoke can verify byte-identity after the resume.
    auto reference = Session::Create(MakeOptions(s));
    auto session = Session::Create(MakeOptions(s));
    MSD_CHECK(reference.ok() && session.ok());

    auto warm_t0 = std::chrono::steady_clock::now();
    for (int step = 0; step < s.warm_steps; ++step) {
      StreamStep(**session);
    }
    const double step_ms = Ms(warm_t0) / s.warm_steps;
    for (int step = 0; step < s.warm_steps; ++step) {
      StreamStep(**reference);
    }
    bench::PrintRow("steady-state step time", step_ms, "ms");

    auto save_t0 = std::chrono::steady_clock::now();
    Result<std::string> id = (*session)->Checkpoint(dir);
    MSD_CHECK(id.ok());
    const double save_ms = Ms(save_t0);
    const int64_t bytes = ObjectStore(dir).TotalBytes();
    bench::PrintRow("checkpoint save latency", save_ms, "ms");
    std::printf("      (%.2fx a training step)\n", save_ms / step_ms);
    bench::PrintRow("checkpoint size on disk", static_cast<double>(bytes) / 1024.0, "KiB");

    // Kill the session (the "process") before resuming.
    session.value().reset();

    auto cold_t0 = std::chrono::steady_clock::now();
    auto cold = Session::Create(MakeOptions(s));
    MSD_CHECK(cold.ok());
    const double cold_ms = Ms(cold_t0);

    Session::Options resume_options = MakeOptions(s);
    resume_options.resume_dir = dir;
    auto restore_t0 = std::chrono::steady_clock::now();
    auto resumed = Session::Create(std::move(resume_options));
    MSD_CHECK(resumed.ok());
    const double restore_ms = Ms(restore_t0);
    bench::PrintRow("fresh session build (baseline)", cold_ms, "ms");
    bench::PrintRow("resume-from-checkpoint build", restore_ms, "ms");
    std::printf("      (restore overhead %.1f ms, %.2fx a training step)\n",
                restore_ms - cold_ms, (restore_ms - cold_ms) / step_ms);

    // Post-resume stream: verify (smoke) or just time it.
    const int32_t world = s.spec.WorldSize();
    for (int step = 0; step < s.resume_steps; ++step) {
      for (int32_t rank = 0; rank < world; ++rank) {
        Result<RankBatch> got = (*resumed)->client(rank).value()->NextBatch();
        Result<RankBatch> want = (*reference)->client(rank).value()->NextBatch();
        MSD_CHECK(got.ok() && want.ok());
        if (smoke && !bench::BatchesIdentical(got.value(), want.value())) {
          std::printf("  FAIL: resumed step %lld rank %d diverged from the "
                      "uninterrupted run\n",
                      static_cast<long long>(got->step), rank);
          ++failures;
        }
      }
    }
    if (failures == 0) {
      std::printf("  resumed stream byte-identical over %d post-resume steps\n",
                  s.resume_steps);
    }

    // Per-rank stall histogram (pipeline follow-up): who outran build-ahead?
    std::vector<PrefetchPipeline::RankStall> stalls =
        (*resumed)->pipeline_stats().rank_stalls;
    for (size_t rank = 0; rank < stalls.size(); ++rank) {
      std::printf("      rank %2zu: %lld/%lld stalled pulls, %.2f ms waiting\n", rank,
                  static_cast<long long>(stalls[rank].stalls),
                  static_cast<long long>(stalls[rank].pulls), stalls[rank].wait_ms);
    }
  }
  fs::remove_all(dir);
  return failures;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  using msd::Scenario;
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back({"smoke (4 sources, dp=2)", 4,
                         {.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 16, 128, 3, 3});
  } else {
    scenarios.push_back({"steady state (8 sources, dp=2 cp=2)", 8,
                         {.dp = 2, .pp = 1, .cp = 2, .tp = 1}, 24, 256, 8, 4});
  }
  int failures = 0;
  for (const Scenario& s : scenarios) {
    failures += msd::RunScenario(s, smoke);
  }
  if (failures > 0) {
    std::printf("\n%d checkpoint invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall checkpoint invariants held\n");
  return 0;
}
