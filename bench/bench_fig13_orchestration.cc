// Fig. 13 reproduction: end-to-end orchestration throughput across model
// combos, datasets, and context lengths under three strategies:
// Baseline (no scheduling), Backbone balance, and Hybrid balance.
//
// Paper anchors: up to 4.54x throughput (avg ~1.77x over all points); gains
// grow with context length (4k: 1.71x, 8k: 2.63x, 16k: 3.09x avg); coyo700m
// benefits slightly more than navit; larger encoders amplify hybrid gains.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/planner/strategies.h"
#include "src/trainsim/train_step.h"

namespace msd {
namespace {

enum class Mode { kBaseline, kBackbone, kHybrid };

LoadingPlan BuildPlan(const std::vector<BufferInfo>& buffers, const ClientPlaceTree& tree,
                      Mode mode, int64_t samples, const ModelConfig& backbone,
                      const ModelConfig& encoder) {
  StrategyOptions so;
  so.samples_per_step = samples;
  so.schedule = std::make_shared<StaticMix>(std::vector<double>(buffers.size(), 1.0));
  Strategy strategy;
  switch (mode) {
    case Mode::kBaseline:
      strategy = MakeVanillaStrategy(so);
      break;
    case Mode::kBackbone:
      strategy = MakeLlmBalanceStrategy(so, BackboneCostFn(backbone));
      break;
    case Mode::kHybrid:
      strategy = MakeVlmHybridStrategy(so, BackboneCostFn(backbone), EncoderCostFn(encoder));
      break;
  }
  Rng rng(17);
  PlanContext ctx;
  ctx.buffer_infos = &buffers;
  ctx.tree = &tree;
  ctx.step = 0;
  ctx.rng = &rng;
  return strategy(ctx).value();
}

struct Panel {
  const char* backbone_name;
  ModelConfig backbone;
  const char* dataset;
  std::vector<int32_t> contexts;
};

void RunPanel(const Panel& panel) {
  std::printf("\n--- %s, %s ---\n", panel.backbone_name, panel.dataset);
  std::printf("  %-10s %6s  %14s %14s %14s %9s %9s\n", "encoder", "ctx", "baseline tok/s",
              "backbone tok/s", "hybrid tok/s", "bb gain", "hyb gain");
  ParallelismSpec spec{.dp = 8, .pp = 8, .cp = 1, .tp = 2};
  CorpusSpec corpus = std::string(panel.dataset) == "coyo700m" ? MakeCoyo700m()
                                                               : MakeNavitData(11, 64);
  for (const ModelConfig& encoder : {ViT1B(), ViT2B()}) {
    for (int32_t ctx_len : panel.contexts) {
      // The context length caps each sample's interleaved sequence (cropping
      // / truncation at ingest). Longer contexts admit longer whales, which
      // is exactly the in-batch heterogeneity the balancer exploits.
      int64_t samples = 16LL * spec.dp * 8;
      std::vector<BufferInfo> buffers =
          bench::MakeBufferInfos(corpus, samples / static_cast<int64_t>(corpus.sources.size()) + 8,
                                 static_cast<uint64_t>(ctx_len));
      for (BufferInfo& info : buffers) {
        for (SampleMeta& meta : info.samples) {
          int32_t total = meta.TotalTokens();
          if (total > ctx_len) {
            double scale = static_cast<double>(ctx_len) / total;
            meta.text_tokens = static_cast<int32_t>(meta.text_tokens * scale);
            meta.image_tokens = ctx_len - meta.text_tokens;
          }
        }
      }
      ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, 8);
      TrainSimConfig config;
      config.backbone = panel.backbone;
      config.has_encoder = true;
      config.encoder = encoder;
      config.spec = spec;
      TrainStepSimulator sim(config);

      double tput[3] = {0, 0, 0};
      for (Mode mode : {Mode::kBaseline, Mode::kBackbone, Mode::kHybrid}) {
        LoadingPlan plan =
            BuildPlan(buffers, tree, mode, samples, panel.backbone, encoder);
        tput[static_cast<int>(mode)] = sim.SimulateStep(plan).TokensPerSecond();
      }
      std::printf("  %-10s %5dk  %14.0f %14.0f %14.0f %8.2fx %8.2fx\n", encoder.name.c_str(),
                  ctx_len / 1024, tput[0], tput[1], tput[2], tput[1] / tput[0],
                  tput[2] / tput[0]);
    }
  }
}

}  // namespace
}  // namespace msd

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 13: end-to-end orchestration performance (Baseline / Backbone / Hybrid)",
      "up to 4.54x, average ~1.77x; gains grow with context length and encoder size");
  std::printf("\n%s", ModelConfigTable().c_str());
  RunPanel({"Llama-12B", Llama12B(), "navit_data", {4096, 8192}});
  RunPanel({"tMoE-25B", TMoE25B(), "coyo700m", {4096, 8192}});
  RunPanel({"tMoE-25B", TMoE25B(), "navit_data", {4096, 8192}});
  RunPanel({"Mixtral-8x7B", Mixtral8x7B(), "coyo700m", {8192, 16384}});
  return 0;
}
