// Fig. 19 reproduction.
//  (left) Cost-model fidelity: predicted encoder / backbone latency vs a
//         simulated "real" measurement with execution noise over 200 steps.
//  (right) Partition-size (source cluster count G) trade-off: more clusters
//         improve CPU right-sizing but raise rescale frequency; G=4 is the
//         sweet spot for the evaluated workloads.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/data/transform.h"
#include "src/costmodel/flops.h"
#include "src/planner/autoscaler.h"
#include "src/trainsim/cluster.h"

namespace msd {
namespace {

void CostModelFidelity() {
  std::printf("\n(left) cost model vs measured latency, 200 steps\n");
  CorpusSpec corpus = MakeNavitData(11, 32);
  DeviceSpec device;
  Rng rng(5);
  RunningStat enc_err;
  RunningStat bb_err;
  std::printf("  %6s %14s %14s %14s %14s\n", "step", "enc model(ms)", "enc real(ms)",
              "bb model(s)", "bb real(s)");
  for (int step = 0; step < 200; ++step) {
    // One microbatch worth of samples.
    double enc_flops = 0.0;
    double bb_flops = 0.0;
    for (int i = 0; i < 16; ++i) {
      const SourceSpec& src = corpus.sources[rng.NextU32() % corpus.sources.size()];
      SampleMeta meta = src.DrawMeta(rng, 0);
      enc_flops += EncoderFlops(ViT2B(), meta.image_tokens);
      bb_flops += BackboneSampleFlops(Llama12B(), meta);
    }
    double enc_model_ms = enc_flops * kTrainFlopsMultiplier / device.flops_per_sec * 1e3;
    double bb_model_s = bb_flops * kTrainFlopsMultiplier / device.flops_per_sec;
    // "Real" execution: kernel-efficiency noise + slow thermal drift.
    double drift = 1.0 + 0.03 * std::sin(static_cast<double>(step) / 25.0);
    double enc_real_ms = enc_model_ms * drift * (1.0 + rng.Normal(0.0, 0.04));
    double bb_real_s = bb_model_s * drift * (1.0 + rng.Normal(0.0, 0.04));
    enc_err.Add(std::abs(enc_real_ms - enc_model_ms) / enc_real_ms);
    bb_err.Add(std::abs(bb_real_s - bb_model_s) / bb_real_s);
    if (step % 40 == 0) {
      std::printf("  %6d %14.1f %14.1f %14.3f %14.3f\n", step, enc_model_ms, enc_real_ms,
                  bb_model_s, bb_real_s);
    }
  }
  std::printf("  mean absolute prediction error: encoder %.1f%%, backbone %.1f%% "
              "(model closely tracks measurements)\n",
              enc_err.mean() * 100.0, bb_err.mean() * 100.0);
}

void PartitionTradeoff() {
  std::printf("\n(right) source-cluster count G: CPU usage vs rescale frequency\n");
  std::printf("  %6s %12s %18s\n", "G", "CPU cores", "rescales/100 int.");
  CorpusSpec corpus = MakeNavitData(11, 306);
  for (int g : {2, 3, 4, 5, 6}) {
    std::vector<SourceCostProfile> profiles;
    Rng profile_rng(9);
    for (const SourceSpec& src : corpus.sources) {
      RunningStat stat;
      for (int i = 0; i < 8; ++i) {
        stat.Add(static_cast<double>(SampleTransformLatency(
            src.DrawMeta(profile_rng, 0), src.transform_cost_multiplier)));
      }
      profiles.push_back({src.source_id, stat.mean(), 0});
    }
    ClusterResources resources;
    resources.total_workers = 2048;
    auto partitions = AutoPartitionSources(profiles, resources,
                                           {.wsrc = 32, .wactor = 8, .num_clusters = g});
    int64_t cpu = TotalWorkers(partitions);

    // Finer clustering tracks mixture drift at finer granularity. The
    // curriculum shifts weight between latent data domains; with G clusters
    // the scaler manages one allocation per cluster, so coarser clusterings
    // average drift away (fewer rescales) while finer ones chase it.
    constexpr int kDomains = 24;
    Rng drift_rng(31);
    std::vector<double> domain_weight(kDomains, 1.0);
    std::vector<int32_t> actors(static_cast<size_t>(g), 16);
    ScalerOptions options;
    options.consecutive = 2;
    options.actor_budget = 16LL * g;
    options.max_actors = 64;
    MixtureDrivenScaler scaler(actors, options);
    int64_t rescales = 0;
    for (int interval = 0; interval < 100; ++interval) {
      for (double& w : domain_weight) {
        w = std::max(0.05, w * std::exp(drift_rng.Normal(0.0, 0.35)));
      }
      // Each cluster aggregates the domains its sources draw from.
      std::vector<double> cluster_weight(static_cast<size_t>(g), 0.0);
      for (int d = 0; d < kDomains; ++d) {
        cluster_weight[static_cast<size_t>(d % g)] += domain_weight[static_cast<size_t>(d)];
      }
      rescales += static_cast<int64_t>(scaler.Observe(cluster_weight).size());
    }
    std::printf("  %6d %12lld %18lld\n", g, static_cast<long long>(cpu),
                static_cast<long long>(rescales));
  }
  std::printf("  => G=4 balances CPU right-sizing against rescale churn (paper's optimum)\n");
}

}  // namespace
}  // namespace msd

int main() {
  msd::bench::PrintHeader(
      "Fig. 19: cost-model fidelity and clustering-size trade-off",
      "(left) predictions closely track measured encoder/backbone latency; (right) "
      "partition size 4 is the optimal balance for production workloads");
  msd::CostModelFidelity();
  msd::PartitionTradeoff();
  return 0;
}
