// Table 2 reproduction (google-benchmark): wall-clock cost of the cost() and
// balance() orchestration primitives as the training setup scales.
//
// Paper anchors (seconds): cost() 0.004 -> 0.107 and balance() 0.016 -> 0.357
// from the 288-GPU baseline to 1152 GPUs; group size 2 at 1152 GPUs pulls
// balance() back to ~0.195s with unchanged iteration time.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/planner/strategies.h"

namespace msd {
namespace {

struct Case {
  const char* name;
  int64_t batch_per_dp;
  int32_t ctx;
  ParallelismSpec spec;
  int32_t group_size;
};

const Case kCases[] = {
    {"baseline_288", 72, 8192, {.dp = 9, .pp = 8, .cp = 1, .tp = 4}, 1},
    {"bs_144", 144, 8192, {.dp = 9, .pp = 8, .cp = 1, .tp = 4}, 1},
    {"seq_16k", 72, 16384, {.dp = 9, .pp = 8, .cp = 1, .tp = 4}, 1},
    {"cluster_1152", 72, 8192, {.dp = 36, .pp = 8, .cp = 1, .tp = 4}, 1},
    {"group_2_1152", 72, 8192, {.dp = 36, .pp = 8, .cp = 1, .tp = 4}, 2},
};

// Builds the mixed + distributed DGraph a strategy would hold right before
// cost()/balance() run.
DGraph PrepareDGraph(const Case& c, const std::vector<BufferInfo>& buffers,
                     const ClientPlaceTree& tree) {
  DGraph dgraph = DGraph::FromBufferInfos(buffers);
  dgraph.Init(&tree);
  StaticMix mix(std::vector<double>(buffers.size(), 1.0));
  Rng rng(1);
  MSD_CHECK(dgraph.Mix(mix, 0, c.batch_per_dp * c.spec.dp, rng).ok());
  MSD_CHECK(dgraph.Distribute(Axis::kDP, c.group_size).ok());
  return dgraph;
}

void BM_ApiCost(benchmark::State& state) {
  const Case& c = kCases[state.range(0)];
  CorpusSpec corpus = MakeNavitData(11, 306);
  std::vector<BufferInfo> buffers = bench::MakeBufferInfos(
      corpus, c.batch_per_dp * c.spec.dp / 306 + 4, static_cast<uint64_t>(c.ctx));
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(c.spec, 8);
  CostFn fn = BackboneCostFn(Llama12B());
  for (auto _ : state) {
    DGraph dgraph = PrepareDGraph(c, buffers, tree);
    auto t0 = std::chrono::steady_clock::now();
    MSD_CHECK(dgraph.Cost(fn).ok());
    auto t1 = std::chrono::steady_clock::now();
    MSD_CHECK(dgraph.Balance({.method = BalanceMethod::kGreedy}).ok());
    auto t2 = std::chrono::steady_clock::now();
    state.counters["cost_s"] = std::chrono::duration<double>(t1 - t0).count();
    state.counters["balance_s"] = std::chrono::duration<double>(t2 - t1).count();
  }
  state.SetLabel(c.name);
}

BENCHMARK(BM_ApiCost)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::PrintHeader(
      "Table 2: API cost for data orchestration under scaled setups",
      "cost() 0.004s..0.107s, balance() 0.016s..0.357s; group size 2 at 1152 GPUs "
      "roughly halves balance() with unchanged iteration time");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
