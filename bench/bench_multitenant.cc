// Multi-tenant dataloader service (src/service/): does co-hosting N jobs on
// ONE shared I/O plane beat N isolated planes?
//
// Two gates, mirroring the two promises of the service:
//   - cross-job dedup: 4 co-hosted sessions on overlapping corpora must issue
//     >= 1.5x fewer backing Gets than 4 isolated cached sessions — at a
//     QUARTER of the total cache memory — while every tenant's stream stays
//     byte-identical to its solo-run twin;
//   - fair share: with a deliberately scan-heavy tenant (deep read-ahead,
//     weight 0.5, in-flight cap 1) hammering the shared plane, the normal
//     tenants' per-step p99 must stay within 2x of their solo baseline (plus
//     a small absolute floor to absorb scheduler noise on loaded CI hosts).
//
// `--smoke` runs both gates on a small scenario and exits nonzero on any
// violation. Wired into ctest (labels: smoke, service).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/session.h"
#include "src/service/data_service.h"
#include "src/service/shared_plane.h"

namespace msd {
namespace {

struct Scenario {
  const char* label;
  int steps;           // steps streamed per tenant
  int64_t samples_per_step;
  SimTime get_latency;  // per backing Get, both planes
};

Session::Options TenantOptions(const Scenario& s) {
  Session::Options options;
  options.corpus = MakeCoyo700m();
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = s.samples_per_step;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;
  return options;
}

double Ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

double P99(std::vector<double> ms) {
  MSD_CHECK(!ms.empty());
  std::sort(ms.begin(), ms.end());
  const size_t idx = (ms.size() * 99 + 99) / 100 - 1;
  return ms[std::min(idx, ms.size() - 1)];
}

std::vector<RankBatch> StreamStep(Session& session, int* failed_steps) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  bool ok = true;
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    if (!batch.ok()) {
      std::printf("  step failed for rank %d: %s\n", rank, batch.status().ToString().c_str());
      ok = false;
      continue;
    }
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  if (!ok) {
    ++*failed_steps;
  }
  return batches;
}

// ---------------------------------------------------------------------------
// Gate 1 — cross-job dedup: co-hosting shares the hot set.
// ---------------------------------------------------------------------------

int RunDedupGate(const Scenario& s) {
  constexpr int kJobs = 4;
  constexpr int64_t kIsolatedCacheBytes = 64 * kMiB;  // per isolated job
  constexpr int64_t kSharedCacheBytes = 128 * kMiB;   // for ALL tenants together
  bench::PrintHeader(
      std::string("multi-tenant service — cross-job dedup — ") + s.label,
      "N jobs on one shared cache+scheduler beat N isolated processes on "
      "both backing-store traffic and total cache memory");
  std::printf("  jobs=%d steps/job=%d samples/step=%lld get-latency=%lld us\n", kJobs,
              s.steps, static_cast<long long>(s.samples_per_step),
              static_cast<long long>(s.get_latency));

  int failures = 0;
  int failed_steps = 0;

  // Baseline: 4 isolated cached sessions, each with a private 64 MiB cache
  // and a private remote store — what 4 separate dataloader processes pay.
  int64_t isolated_gets = 0;
  {
    auto t0 = std::chrono::steady_clock::now();
    for (int job = 0; job < kJobs; ++job) {
      Session::Options options = TenantOptions(s);
      options.block_cache_bytes = kIsolatedCacheBytes;
      options.storage_get_latency = s.get_latency;
      auto session = Session::Create(options);
      MSD_CHECK(session.ok());
      for (int step = 0; step < s.steps; ++step) {
        StreamStep(**session, &failed_steps);
      }
      isolated_gets += (*session)->io_stats().storage_gets;
    }
    bench::PrintRow("isolated: backing Gets", static_cast<double>(isolated_gets));
    bench::PrintRow("isolated: total cache", static_cast<double>(kJobs) *
                                                 static_cast<double>(kIsolatedCacheBytes) /
                                                 static_cast<double>(kMiB),
                    "MiB");
    bench::PrintRow("isolated: wall", Ms(t0), "ms");
  }

  // Co-hosted: the same 4 jobs as tenants of one DataService, sharing ONE
  // 128 MiB cache (half the isolated total) and one scheduler. The jobs
  // stream concurrently — the production setting — so the sequential scans
  // move in rough lockstep and the shared cache + in-flight coalescing turn
  // three of every four reads into shared ones.
  int64_t cohosted_gets = 0;
  int64_t cross_tenant_hits = 0;
  {
    SharedIoPlaneConfig plane;
    plane.cache_bytes = kSharedCacheBytes;
    plane.storage_get_latency = s.get_latency;
    DataService service(plane);
    for (int job = 0; job < kJobs; ++job) {
      DataService::TenantConfig tenant;
      tenant.session = TenantOptions(s);
      Status registered = service.RegisterTenant("job-" + std::to_string(job), tenant);
      MSD_CHECK(registered.ok());
    }

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<std::vector<RankBatch>>> job_batches(kJobs);  // [job][step][rank]
    std::vector<int> job_failed(kJobs, 0);
    std::vector<std::thread> jobs;
    for (int job = 0; job < kJobs; ++job) {
      jobs.emplace_back([&, job] {
        Session* session = service.session("job-" + std::to_string(job));
        for (int step = 0; step < s.steps; ++step) {
          job_batches[static_cast<size_t>(job)].push_back(
              StreamStep(*session, &job_failed[static_cast<size_t>(job)]));
        }
      });
    }
    for (std::thread& t : jobs) {
      t.join();
    }
    bench::PrintRow("co-hosted: wall", Ms(t0), "ms");
    for (int f : job_failed) {
      failed_steps += f;
    }

    // The solo twin: the same workload with no I/O plane at all. Every
    // tenant must have served byte-identical batches — co-hosting is
    // invisible in the stream.
    auto twin = Session::Create(TenantOptions(s));
    MSD_CHECK(twin.ok());
    for (int step = 0; step < s.steps; ++step) {
      std::vector<RankBatch> want = StreamStep(**twin, &failed_steps);
      for (int job = 0; job < kJobs; ++job) {
        const std::vector<RankBatch>& got =
            job_batches[static_cast<size_t>(job)][static_cast<size_t>(step)];
        for (size_t rank = 0; rank < want.size(); ++rank) {
          if (!bench::BatchesIdentical(got[rank], want[rank])) {
            std::printf("  FAIL: job %d step %d rank %zu diverged from solo twin\n", job,
                        step, rank);
            ++failures;
          }
        }
      }
    }
    cohosted_gets = service.backing_gets();
    IoScheduler::Stats sched = service.plane()->scheduler_stats();
    BlockCache::Stats cache = service.plane()->cache_stats();
    bench::PrintRow("co-hosted: sched requests", static_cast<double>(sched.requests));
    bench::PrintRow("co-hosted: sched cache_hits", static_cast<double>(sched.cache_hits));
    bench::PrintRow("co-hosted: sched coalesced", static_cast<double>(sched.coalesced));
    bench::PrintRow("co-hosted: sched issued", static_cast<double>(sched.issued_gets));
    bench::PrintRow("co-hosted: cache evictions", static_cast<double>(cache.evictions));
    bench::PrintRow("co-hosted: cache resident MiB",
                    static_cast<double>(cache.resident_bytes) / static_cast<double>(kMiB));
    cross_tenant_hits = cache.cross_tenant_hits;
  }

  const double reduction = cohosted_gets > 0
                               ? static_cast<double>(isolated_gets) /
                                     static_cast<double>(cohosted_gets)
                               : 0.0;
  bench::PrintRow("co-hosted: backing Gets", static_cast<double>(cohosted_gets));
  bench::PrintRow("co-hosted: total cache", static_cast<double>(kSharedCacheBytes) /
                                                static_cast<double>(kMiB),
                  "MiB");
  bench::PrintRow("co-hosted: cross-tenant hits", static_cast<double>(cross_tenant_hits));
  bench::PrintRow("backing-Get reduction", reduction, "x");

  if (failed_steps != 0) {
    std::printf("  FAIL: %d step(s) failed\n", failed_steps);
    ++failures;
  }
  if (cross_tenant_hits <= 0) {
    std::printf("  FAIL: no cross-tenant cache hits — nothing was shared\n");
    ++failures;
  }
  if (reduction < 1.5) {
    std::printf("  FAIL: backing-Get reduction %.2fx below the 1.5x gate\n", reduction);
    ++failures;
  }
  if (failures == 0) {
    std::printf("  co-hosting cut backing Gets %.2fx at %.0f%% of the cache memory, "
                "byte-identical on every tenant\n",
                reduction,
                100.0 * static_cast<double>(kSharedCacheBytes) /
                    static_cast<double>(kJobs * kIsolatedCacheBytes));
  }
  return failures;
}

// ---------------------------------------------------------------------------
// Gate 2 — fair share: a scan-heavy tenant cannot starve the others.
// ---------------------------------------------------------------------------

SharedIoPlaneConfig FairSharePlane(const Scenario& s) {
  SharedIoPlaneConfig plane;
  plane.cache_bytes = 32 * kMiB;
  plane.storage_get_latency = s.get_latency;
  plane.max_inflight = 4;  // scarce dispatch slots: contention is real
  return plane;
}

// Streams `steps` steps and records each step's wall time.
std::vector<double> TimedSteps(Session& session, int steps, int* failed_steps) {
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(steps));
  for (int step = 0; step < steps; ++step) {
    auto t0 = std::chrono::steady_clock::now();
    StreamStep(session, failed_steps);
    ms.push_back(Ms(t0));
  }
  return ms;
}

// Runs 3 normal tenants streaming concurrently, optionally alongside a
// scan-heavy 4th; returns the p99 over all normal tenants' step times.
double RunNormalTenants(const Scenario& s, bool with_scanner, int* failed_steps,
                        int64_t* scan_issued) {
  constexpr int kNormalTenants = 3;
  DataService service(FairSharePlane(s));
  for (int t = 0; t < kNormalTenants; ++t) {
    DataService::TenantConfig tenant;
    tenant.session = TenantOptions(s);
    MSD_CHECK(service.RegisterTenant("normal-" + std::to_string(t), tenant).ok());
  }
  if (with_scanner) {
    // The adversary: deep read-ahead over its own (disjoint) corpus, demoted
    // to weight 0.5, one in-flight Get, and a small private cache budget so
    // its scan can neither monopolize dispatch nor evict the others' hot set.
    DataService::TenantConfig scanner;
    scanner.session = TenantOptions(s);
    scanner.session.corpus = MakeTextCorpus(/*seed=*/13, /*num_sources=*/6);
    scanner.session.samples_per_step = s.samples_per_step * 2;
    scanner.session.read_ahead_groups = 16;  // the scan: deep speculative I/O
    scanner.quota.weight = 0.5;
    scanner.quota.max_inflight_gets = 1;
    scanner.quota.cache_bytes = 4 * kMiB;
    MSD_CHECK(service.RegisterTenant("scanner", scanner).ok());
  }

  std::vector<std::vector<double>> normal_ms(kNormalTenants);
  std::vector<int> thread_failed(kNormalTenants + 1, 0);
  std::vector<std::thread> tenants;
  for (int t = 0; t < kNormalTenants; ++t) {
    tenants.emplace_back([&, t] {
      normal_ms[static_cast<size_t>(t)] = TimedSteps(
          *service.session("normal-" + std::to_string(t)), s.steps,
          &thread_failed[static_cast<size_t>(t)]);
    });
  }
  if (with_scanner) {
    tenants.emplace_back([&] {
      TimedSteps(*service.session("scanner"), s.steps, &thread_failed.back());
    });
  }
  for (std::thread& t : tenants) {
    t.join();
  }
  for (int f : thread_failed) {
    *failed_steps += f;
  }
  if (with_scanner) {
    *scan_issued = service.tenant_stats("scanner").value().scheduler.issued_gets;
  }
  std::vector<double> all_normal;
  for (const std::vector<double>& ms : normal_ms) {
    all_normal.insert(all_normal.end(), ms.begin(), ms.end());
  }
  return P99(std::move(all_normal));
}

int RunFairShareGate(const Scenario& s) {
  bench::PrintHeader(
      std::string("multi-tenant service — fair share under a scan-heavy tenant — ") +
          s.label,
      "weighted fair-share Get scheduling keeps a scan-heavy tenant from "
      "starving the others: per-step p99 within 2x of the scan-free baseline");

  int failures = 0;
  int failed_steps = 0;
  int64_t scan_issued = 0;

  // Baseline: the same 3 normal tenants co-hosted WITHOUT the scanner — so
  // the gate isolates the scan tenant's interference, which is exactly what
  // fair-share scheduling governs.
  const double solo_p99 = RunNormalTenants(s, /*with_scanner=*/false, &failed_steps,
                                           &scan_issued);
  bench::PrintRow("baseline per-step p99", solo_p99, "ms");

  const double contended_p99 = RunNormalTenants(s, /*with_scanner=*/true, &failed_steps,
                                                &scan_issued);
  bench::PrintRow("contended per-step p99", contended_p99, "ms");
  bench::PrintRow("scanner issued Gets", static_cast<double>(scan_issued));
  const double ratio = contended_p99 / solo_p99;
  bench::PrintRow("p99 inflation", ratio, "x");

  // 2x is the gate; the absolute floor absorbs thread-scheduling noise when
  // the baseline is only a few milliseconds.
  const double kFloorMs = 100.0;
  const double bound = std::max(2.0 * solo_p99, solo_p99 + kFloorMs);
  if (failed_steps != 0) {
    std::printf("  FAIL: %d step(s) failed under contention\n", failed_steps);
    ++failures;
  }
  if (scan_issued <= 0) {
    std::printf("  FAIL: the scan tenant issued no Gets — nothing contended\n");
    ++failures;
  }
  if (contended_p99 > bound) {
    std::printf("  FAIL: contended p99 %.1f ms exceeds bound %.1f ms (solo %.1f ms)\n",
                contended_p99, bound, solo_p99);
    ++failures;
  }
  if (failures == 0) {
    std::printf("  normal tenants held p99 at %.2fx of solo under a scan-heavy "
                "neighbor\n",
                ratio);
  }
  return failures;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  using msd::Scenario;
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back({"smoke (dp=2, 3 steps/job)", 3, 16, 200});
  } else {
    scenarios.push_back({"steady state (dp=2, 8 steps/job)", 8, 16, 500});
  }
  int failures = 0;
  for (const Scenario& s : scenarios) {
    failures += msd::RunDedupGate(s);
    failures += msd::RunFairShareGate(s);
  }
  if (failures > 0) {
    std::printf("\n%d multi-tenant invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall multi-tenant invariants held\n");
  return 0;
}
