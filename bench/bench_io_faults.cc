// Storage chaos plane (src/io/): is a faulty remote store invisible in the
// delivered bytes?
//
// Two gates, mirroring the two degradation regimes:
//   - retry absorption: a 5%-per-Get transient fault rate on top of 5 ms/Get
//     remote latency must stream byte-identically to the fault-free twin,
//     with zero failed steps and the scheduler's retry counter exactly equal
//     to the store's injected-fault counter (every fault absorbed, none
//     leaked, no retry budget exhausted);
//   - graceful quarantine: a brownout of one source that outlives the retry
//     budget must degrade the mixture deterministically (planner quarantines
//     the source, steps keep flowing) instead of aborting, and lifting the
//     brownout must re-admit the source via the probe path.
//
// `--smoke` runs both gates on a small scenario and exits nonzero on any
// violation. Wired into ctest (labels: smoke, chaos).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/session.h"

namespace msd {
namespace {

struct Scenario {
  const char* label;
  int num_sources;
  int64_t samples_per_step;
  int64_t rows_per_file;
  int64_t row_group_bytes;
  SimTime get_latency;
  double unavailable_p;
  double deadline_p;
  int32_t retry_attempts;
  int steps;
};

Session::Options RetryOptions(const Scenario& s, bool faulty) {
  Session::Options options;
  options.corpus = MakeTextCorpus(/*seed=*/13, s.num_sources);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = s.samples_per_step;
  options.max_seq_len = 2048;
  options.rows_per_file_override = s.rows_per_file;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = s.row_group_bytes;
  options.storage_get_latency = s.get_latency;
  options.block_cache_bytes = 256 * kMiB;
  options.read_ahead_groups = 8;
  if (faulty) {
    options.storage_faults.seed = 0xFA17;
    options.storage_faults.unavailable_p = s.unavailable_p;
    options.storage_faults.deadline_p = s.deadline_p;
    options.io_retry.max_attempts = s.retry_attempts;
    options.io_retry.backoff_base_us = 100;  // bench-fast backoff
    options.io_retry.backoff_max_us = 2000;
  }
  return options;
}

double Ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

int64_t TokensOf(const std::vector<RankBatch>& batches) {
  int64_t tokens = 0;
  for (const RankBatch& batch : batches) {
    if (batch.metadata_only) {
      continue;
    }
    for (const Microbatch& mb : batch.microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        tokens += static_cast<int64_t>(seq.tokens.size());
      }
    }
  }
  return tokens;
}

// Pulls one step for every rank; counts a failed step instead of crashing so
// the gate can report how many steps the fault schedule actually broke.
std::vector<RankBatch> StreamStep(Session& session, int* failed_steps) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  bool ok = true;
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    if (!batch.ok()) {
      std::printf("  step failed for rank %d: %s\n", rank, batch.status().ToString().c_str());
      ok = false;
      continue;
    }
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  if (!ok) {
    ++*failed_steps;
  }
  return batches;
}

int RunRetryAbsorption(const Scenario& s) {
  bench::PrintHeader(
      std::string("storage chaos — retry absorption — ") + s.label,
      "bounded retries with deterministic backoff absorb transient remote "
      "faults; the delivered stream is byte-identical to a fault-free run");
  std::printf("  sources=%d samples/step=%lld get-latency=%lld ms "
              "unavailable_p=%.2f deadline_p=%.2f retry-budget=%d\n",
              s.num_sources, static_cast<long long>(s.samples_per_step),
              static_cast<long long>(s.get_latency / kMillisecond), s.unavailable_p,
              s.deadline_p, s.retry_attempts);

  int failures = 0;
  int failed_steps = 0;
  std::vector<std::vector<RankBatch>> clean_batches;
  std::vector<std::vector<RankBatch>> faulty_batches;
  {
    auto session = Session::Create(RetryOptions(s, /*faulty=*/false));
    MSD_CHECK(session.ok());
    for (int step = 0; step < s.steps; ++step) {
      clean_batches.push_back(StreamStep(**session, &failed_steps));
    }
    MSD_CHECK(failed_steps == 0);
  }
  int64_t faulty_tokens = 0;
  double faulty_elapsed_ms = 0.0;
  Session::IoStats io;
  {
    auto session = Session::Create(RetryOptions(s, /*faulty=*/true));
    MSD_CHECK(session.ok());
    auto t0 = std::chrono::steady_clock::now();
    for (int step = 0; step < s.steps; ++step) {
      faulty_batches.push_back(StreamStep(**session, &failed_steps));
      faulty_tokens += TokensOf(faulty_batches.back());
    }
    faulty_elapsed_ms = Ms(t0);
    io = (*session)->io_stats();
  }

  bench::PrintRow("faulty tokens/s", static_cast<double>(faulty_tokens) /
                                         (faulty_elapsed_ms / 1000.0));
  bench::PrintRow("faults injected", static_cast<double>(io.faults_injected));
  bench::PrintRow("scheduler retries", static_cast<double>(io.scheduler.retries));
  bench::PrintRow("retry successes", static_cast<double>(io.scheduler.retry_successes));
  bench::PrintRow("retries exhausted", static_cast<double>(io.scheduler.retries_exhausted));
  bench::PrintRow("failed steps", static_cast<double>(failed_steps));

  if (failed_steps != 0) {
    std::printf("  FAIL: %d step(s) failed under the fault schedule\n", failed_steps);
    ++failures;
  }
  if (io.faults_injected <= 0) {
    std::printf("  FAIL: schedule injected no faults — the gate tested nothing\n");
    ++failures;
  }
  // Every injected fault fails exactly one backing Get; with the budget never
  // exhausted, each of those is re-issued exactly once more. The counters
  // must agree exactly — a mismatch means a fault leaked past the retry
  // layer or a retry fired for something that was not a fault.
  if (io.scheduler.retries != io.faults_injected) {
    std::printf("  FAIL: retries (%lld) != injected faults (%lld)\n",
                static_cast<long long>(io.scheduler.retries),
                static_cast<long long>(io.faults_injected));
    ++failures;
  }
  if (io.scheduler.retries_exhausted != 0) {
    std::printf("  FAIL: %lld fetch(es) exhausted the retry budget\n",
                static_cast<long long>(io.scheduler.retries_exhausted));
    ++failures;
  }
  for (size_t step = 0; step < clean_batches.size(); ++step) {
    for (size_t rank = 0; rank < clean_batches[step].size(); ++rank) {
      if (!bench::BatchesIdentical(clean_batches[step][rank], faulty_batches[step][rank])) {
        std::printf("  FAIL: step %zu rank %zu diverged under faults\n", step, rank);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("  batches byte-identical with 5%% faults vs fault-free; all "
                "faults absorbed by retries\n");
  }
  return failures;
}

// One shim step for every rank (depth 0: production happens inside
// AdvanceStep, so brownout windows map exactly onto steps).
bool ShimStep(Session& session) {
  Status advanced = session.AdvanceStep();
  if (!advanced.ok()) {
    std::printf("  step failed: %s\n", advanced.ToString().c_str());
    return false;
  }
  const int32_t world = session.tree().spec().WorldSize();
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.GetBatch(rank);
    if (!batch.ok()) {
      std::printf("  batch failed for rank %d: %s\n", rank, batch.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

int RunBrownoutQuarantine(const Scenario& s) {
  bench::PrintHeader(
      std::string("storage chaos — brownout quarantine — ") + s.label,
      "a brownout outliving the retry budget quarantines the source and "
      "degrades the mixture deterministically; lifting it re-admits");

  Session::Options options;
  options.corpus = MakeTextCorpus(/*seed=*/13, s.num_sources);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = s.samples_per_step;
  options.max_seq_len = 2048;
  options.rows_per_file_override = s.rows_per_file;
  options.loader_workers = 1;
  options.prefetch_depth = 0;  // brownout windows align with step boundaries
  options.row_group_bytes = s.row_group_bytes;
  options.block_cache_bytes = 256 * kMiB;
  options.storage_faults.install = true;  // healthy store, scriptable brownout
  options.storage_faults.match_substr = "text/src-1/";
  options.io_retry.max_attempts = s.retry_attempts;
  options.io_retry.backoff_base_us = 100;
  options.io_retry.backoff_max_us = 2000;
  options.quarantine_after_failures = 2;
  options.quarantine_probe_interval = 4;

  auto session = Session::Create(options);
  MSD_CHECK(session.ok());

  int failures = 0;
  int64_t steps_delivered = 0;
  for (int step = 0; step < 2; ++step) {
    failures += ShimStep(**session) ? 0 : 1;
    ++steps_delivered;
  }
  (*session)->fault_store()->set_brownout(true);
  for (int step = 0; step < 2; ++step) {
    // The gate: these steps must keep flowing on the degraded mixture.
    failures += ShimStep(**session) ? 0 : 1;
    ++steps_delivered;
  }
  std::map<int32_t, int64_t> quarantined = (*session)->QuarantinedLoaders();
  Session::IoStats browned = (*session)->io_stats();
  bench::PrintRow("brownout failures", static_cast<double>(browned.brownout_failures));
  bench::PrintRow("sources quarantined", static_cast<double>(quarantined.size()));
  if (quarantined.empty()) {
    std::printf("  FAIL: brownout beyond the retry budget did not quarantine\n");
    ++failures;
  }
  (*session)->fault_store()->set_brownout(false);
  for (int step = 0; step < 5; ++step) {
    failures += ShimStep(**session) ? 0 : 1;
    ++steps_delivered;
  }
  std::map<int32_t, int64_t> after = (*session)->QuarantinedLoaders();
  bench::PrintRow("quarantined after recovery", static_cast<double>(after.size()));
  bench::PrintRow("steps delivered", static_cast<double>(steps_delivered));
  if (!after.empty()) {
    std::printf("  FAIL: probe did not re-admit the recovered source\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("  brownout degraded the mixture (no abort) and the probe "
                "re-admitted the source\n");
  }
  return failures;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  using msd::Scenario;
  using msd::kKiB;
  using msd::kMillisecond;
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back({"smoke (4 sources, dp=2, 5 ms/Get, 5% faults)", 4, 48, 512,
                         4 * kKiB, 5 * kMillisecond, 0.04, 0.01, 6, 6});
  } else {
    scenarios.push_back({"steady state (6 sources, dp=2, 5 ms/Get, 5% faults)", 6, 64, 768,
                         4 * kKiB, 5 * kMillisecond, 0.04, 0.01, 6, 10});
    scenarios.push_back({"fault storm (4 sources, 12% faults)", 4, 48, 512, 4 * kKiB,
                         5 * kMillisecond, 0.10, 0.02, 8, 6});
  }
  int failures = 0;
  for (const Scenario& s : scenarios) {
    failures += msd::RunRetryAbsorption(s);
    failures += msd::RunBrownoutQuarantine(s);
  }
  if (failures > 0) {
    std::printf("\n%d chaos-plane invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall chaos-plane invariants held\n");
  return 0;
}
