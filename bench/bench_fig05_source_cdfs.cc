// Fig. 5 reproduction: CDFs across 100 production-like sources of (a) the
// per-source file-access-state memory and (b) the per-sample transformation
// latency — both heavily skewed, which is what forces worst-case worker
// provisioning in per-rank loaders.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/data/transform.h"
#include "src/storage/object_store.h"

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 5: per-source file-state memory CDF and transformation latency CDF",
      "(a) file access states span ~0-6 GB across sources; (b) transformation latency "
      "is severely skewed (up to ~1000s tails across sources)");

  CorpusSpec corpus = MakeNavitData(11, 100);
  EmpiricalCdf memory_cdf;
  EmpiricalCdf latency_cdf;
  Rng rng(3);
  for (const SourceSpec& src : corpus.sources) {
    // File-access state: socket + footer + one active row-group buffer per
    // file, using production-band row groups (512MB-1GB).
    double row_group = 512.0 * kMiB + rng.NextDouble() * 512.0 * kMiB;
    double per_file = kSocketBufferBytes + 2.0 * kMiB + row_group;
    memory_cdf.Add(per_file * static_cast<double>(src.num_files) / kGiB);

    // Batch transformation latency: 256 samples on one worker.
    double total_us = 0.0;
    for (const SampleMeta& meta : DrawMetas(src, rng, 256)) {
      total_us +=
          static_cast<double>(SampleTransformLatency(meta, src.transform_cost_multiplier));
    }
    latency_cdf.Add(total_us / 1e6);
  }

  std::printf("\n(a) file access state memory per source (GB)\n");
  std::printf("  %6s %10s\n", "cdf", "GB");
  for (auto [value, q] : memory_cdf.Curve(11)) {
    std::printf("  %5.2f  %10.2f\n", q, value);
  }
  std::printf("\n(b) per-source transformation latency for a 256-sample batch (s)\n");
  std::printf("  %6s %10s\n", "cdf", "seconds");
  for (auto [value, q] : latency_cdf.Curve(11)) {
    std::printf("  %5.2f  %10.2f\n", q, value);
  }
  std::printf("\n  latency skew p99/p50: %.1fx\n",
              latency_cdf.Quantile(0.99) / latency_cdf.Quantile(0.5));
  return 0;
}
