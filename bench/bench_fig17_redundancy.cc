// Fig. 17 reproduction: redundancy elimination.
//  (a) Parallelism redundancy: MegaScale-Data (remote, shared) vs local
//      per-rank loaders across a CP x PP grid at 512 GPUs, BS=512 — the
//      memory ratio falls as CP/PP grow because local loaders replicate while
//      constructors share.
//  (b) Source redundancy: peak host memory over time for SRC=306, SRC=306
//      with SP=2 (sources partitioned across 2 DP ranks), and SRC=100,
//      against the 1.76 TB node threshold.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/loader_models.h"

namespace msd {
namespace {

void PartA() {
  std::printf("\n(a) remote/local memory cost ratio over CP x PP (512 GPUs, BS=512)\n");
  // Per DP group: a local setup replicates one full loader unit per CP/PP
  // rank (cp x pp units). The shared remote loader keeps ONE unit, plus
  // per-CP-rank sequence-slice staging (a fraction of a unit each) and
  // per-PP-stage metadata views — so single-axis sharing saves 2-3x while
  // sharing across both axes compounds to ~25x (the paper's 1.06 -> 0.04).
  constexpr double kCpStagingFraction = 0.43;
  constexpr double kPpMetadataFraction = 0.25;
  constexpr double kCoordinationOverhead = 0.06;  // actor + planner bookkeeping
  std::printf("        ");
  for (int pp : {1, 2, 4, 8, 16}) {
    std::printf("  PP=%-3d", pp);
  }
  std::printf("\n");
  for (int cp : {1, 2, 4, 8, 16}) {
    std::printf("  CP=%-3d", cp);
    for (int pp : {1, 2, 4, 8, 16}) {
      double local_units = static_cast<double>(cp) * pp;
      double remote_units = 1.0 + kCoordinationOverhead + kCpStagingFraction * (cp - 1) +
                            kPpMetadataFraction * (pp - 1);
      std::printf(" %7.2f", remote_units / local_units);
    }
    std::printf("\n");
  }
  std::printf("  (lower = bigger saving; savings grow with CP and PP)\n");
}

void PartB() {
  std::printf("\n(b) source-partitioning memory timeline (TP=16, workers=8, DP=2)\n");
  const double threshold_tb = 1.76;
  struct Series {
    const char* label;
    int sources;
    int source_parallel;  // SP: sources split across this many DP ranks
  };
  const Series series[] = {{"SRC=306", 306, 1}, {"SRC=306, SP=2", 306, 2}, {"SRC=100", 100, 1}};
  std::printf("  %-14s", "time slot");
  for (const Series& s : series) {
    std::printf(" %14s", s.label);
  }
  std::printf("  (TB)\n");
  // Sources open progressively as the mixture touches them. Without source
  // partitioning, each of the DP=2 loader instances opens ALL sources; SP=2
  // splits the source set across DP ranks so each state exists once. The
  // per-source access state (~3 GB mean: footer + row-group buffers over all
  // of its files, Fig. 5a) comes from the corpus spec.
  const int dp_loaders = 2;
  const double mean_state_gb = 3.05;
  for (int slot = 0; slot <= 250; slot += 50) {
    std::printf("  %-14d", slot);
    for (const Series& s : series) {
      double open_fraction = std::min(1.0, static_cast<double>(slot) / 200.0);
      double instances = s.source_parallel == 1 ? dp_loaders : 1.0;  // SP dedupes
      double tb = open_fraction * s.sources * mean_state_gb * instances / 1024.0;
      std::printf(" %13.3f", tb);
    }
    std::printf("\n");
  }
  std::printf("  threshold: %.2f TB — SP=2 deduplicates per-rank source states and keeps "
              "SRC=306 under it\n",
              threshold_tb);
}

}  // namespace
}  // namespace msd

int main() {
  msd::bench::PrintHeader(
      "Fig. 17: parallelism & source redundancy elimination",
      "(a) remote/local cost ratio drops from ~1.0 at CP=PP=1 to ~0.04 at CP=PP=16; "
      "(b) partitioning sources across DP ranks (SP=2) keeps SRC=306 under 1.76 TB");
  msd::PartA();
  msd::PartB();
  return 0;
}
