// Fig. 15 reproduction: per-component time breakdown of a MegaScale-Data
// planning round as training configuration knobs scale up. The planner
// phases (buffer gather / compute plan / broadcast plan) are measured as real
// wall time over real DGraph strategies; loader/constructor/communication
// components come from the calibrated analytic models.
//
// Paper anchor: overhead grows gracefully with sources, context, batch size
// and GPU count, and stays far below (i.e. hidden behind) iteration time.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/planner/strategies.h"
#include "src/sim/network.h"
#include "src/trainsim/train_step.h"

namespace msd {
namespace {

struct Scenario {
  const char* label;
  int num_sources;
  int32_t ctx;       // max sequence length
  int64_t batch_per_dp;
  ParallelismSpec spec;
};

void RunScenario(const Scenario& s) {
  CorpusSpec corpus = MakeNavitData(11, s.num_sources);
  int64_t samples = s.batch_per_dp * s.spec.dp;
  std::vector<BufferInfo> buffers = bench::MakeBufferInfos(
      corpus, samples / s.num_sources + 8, static_cast<uint64_t>(s.ctx));
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(s.spec, 8);

  StrategyOptions so;
  so.samples_per_step = samples;
  so.schedule = std::make_shared<StaticMix>(std::vector<double>(corpus.sources.size(), 1.0));
  Strategy strategy =
      MakeVlmHybridStrategy(so, BackboneCostFn(Llama12B()), EncoderCostFn(ViT2B()));
  Rng rng(5);
  PlanContext ctx;
  ctx.buffer_infos = &buffers;
  ctx.tree = &tree;
  ctx.step = 0;
  ctx.rng = &rng;

  // Measured: plan compute (the declarative strategy end to end).
  auto t0 = std::chrono::steady_clock::now();
  LoadingPlan plan = strategy(ctx).value();
  double compute_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Modelled: metadata gather and plan broadcast over the network.
  NetworkModel net;
  int64_t meta_bytes = 0;
  for (const BufferInfo& b : buffers) {
    meta_bytes += static_cast<int64_t>(b.samples.size()) * 32;
  }
  double gather_s = ToSeconds(net.TransferTime(meta_bytes) +
                              net.params().base_latency * static_cast<int64_t>(buffers.size()));
  int64_t plan_bytes = static_cast<int64_t>(plan.Serialize().size());
  double broadcast_s =
      ToSeconds(net.TransferTime(plan_bytes * s.spec.dp) + 2 * net.params().base_latency);

  // Modelled: loader pop + constructor assembly + slice communication.
  double loader_s = static_cast<double>(samples) * 250.0 / 1e6 /
                    static_cast<double>(s.num_sources);  // parallel across loaders
  int64_t payload = samples * static_cast<int64_t>(s.ctx) * 4 / 4;
  double constructor_s = static_cast<double>(samples) * 400.0 / 1e6 / s.spec.dp;
  double comm_s = ToSeconds(net.TransferTime(payload / std::max(1, s.spec.dp)));

  // Context: the training iteration this hides behind.
  TrainSimConfig sim_config;
  sim_config.backbone = Llama12B();
  sim_config.backbone_layers_override = 16;
  sim_config.has_encoder = true;
  sim_config.encoder = ViT2B();
  sim_config.spec = s.spec;
  double iteration_s = ToSeconds(TrainStepSimulator(sim_config).SimulateStep(plan).total);

  double overhead = gather_s + compute_s + broadcast_s + loader_s + constructor_s + comm_s;
  std::printf(
      "  %-26s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f | %8.2f %10.2f\n", s.label, gather_s,
      compute_s, broadcast_s, loader_s, constructor_s, comm_s, overhead, iteration_s);
}

}  // namespace
}  // namespace msd

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 15: time breakdown vs scaling knobs (seconds)",
      "data-pipeline overhead scales gracefully and stays hidden behind iteration time "
      "(gray bar) at every configuration, incl. 1152 GPUs");
  std::printf("  %-26s %9s %9s %9s %9s %9s %9s | %8s %10s\n", "scenario", "gather",
              "plan", "bcast", "loader", "constr", "comm", "overhead", "iteration");
  ParallelismSpec base{.dp = 9, .pp = 4, .cp = 4, .tp = 4};       // 576 GPUs
  ParallelismSpec doubled{.dp = 18, .pp = 4, .cp = 4, .tp = 4};   // 1152 GPUs
  RunScenario({"baseline (576, 8k, 72, 100)", 100, 8192, 72, base});
  RunScenario({"sources 100 -> 300", 300, 8192, 72, base});
  RunScenario({"context 8k -> 32k", 100, 32768, 72, base});
  RunScenario({"batch 72 -> 288", 100, 8192, 288, base});
  RunScenario({"GPUs 576 -> 1152", 100, 8192, 72, doubled});
  return 0;
}
