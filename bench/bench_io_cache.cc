// Remote-storage I/O (src/io/): does the block cache + read-ahead hide
// storage latency?
//
// The scenario makes the object store remote with a LatencyInjectingStore
// (5 ms per Get — HDFS/S3-class), sizes MSDF row groups small enough that
// every step's refills issue real Gets, and streams the same session twice:
//   - uncached: ranged reads, one synchronous 5 ms Get per row group/footer
//     (what the paper's per-source Parquet readers pay), vs
//   - cached+read-ahead: loader reads routed through the shared BlockCache
//     with cursor-driven prefetch, so the Gets overlap transform/build work.
//
// `--smoke` runs a small scenario and exits nonzero if the warm-cache
// configuration is not >= 5x the uncached tokens/s, or if any batch diverges
// byte-wise between the two configurations. Wired into ctest (label: smoke).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/session.h"

namespace msd {
namespace {

struct Scenario {
  const char* label;
  int num_sources;
  ParallelismSpec spec;
  int64_t samples_per_step;
  int64_t rows_per_file;
  int64_t row_group_bytes;
  SimTime get_latency;
  int64_t cache_bytes;
  int32_t read_ahead_groups;
  int warm_steps;   // excluded from the timed window (startup refills)
  int timed_steps;  // measured and identity-checked
};

Session::Options MakeOptions(const Scenario& s, bool cached) {
  Session::Options options;
  // Text corpus: transforms are cheap, so remote-storage latency dominates
  // the uncached read path — the regime the cache exists for. (Image-heavy
  // corpora bottleneck on decode long before the 5 ms Gets.)
  options.corpus = MakeTextCorpus(/*seed=*/13, s.num_sources);
  options.spec = s.spec;
  options.num_microbatches = 2;
  options.samples_per_step = s.samples_per_step;
  options.max_seq_len = 2048;
  options.rows_per_file_override = s.rows_per_file;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = s.row_group_bytes;
  options.storage_get_latency = s.get_latency;
  if (cached) {
    options.block_cache_bytes = s.cache_bytes;
    options.read_ahead_groups = s.read_ahead_groups;
  }
  return options;
}

double Ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

int64_t TokensOf(const std::vector<RankBatch>& batches) {
  int64_t tokens = 0;
  for (const RankBatch& batch : batches) {
    if (batch.metadata_only) {
      continue;
    }
    for (const Microbatch& mb : batch.microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        tokens += static_cast<int64_t>(seq.tokens.size());
      }
    }
  }
  return tokens;
}

std::vector<RankBatch> StreamStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  std::vector<RankBatch> batches(static_cast<size_t>(world));
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    MSD_CHECK(batch.ok());
    batches[static_cast<size_t>(rank)] = std::move(batch.value());
  }
  return batches;
}

// Streams warm+timed steps; returns tokens/s over the timed window and the
// timed batches for the identity check.
double RunConfig(Session& session, const Scenario& s,
                 std::vector<std::vector<RankBatch>>* timed_batches) {
  for (int step = 0; step < s.warm_steps; ++step) {
    StreamStep(session);
  }
  int64_t tokens = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int step = 0; step < s.timed_steps; ++step) {
    std::vector<RankBatch> batches = StreamStep(session);
    tokens += TokensOf(batches);
    timed_batches->push_back(std::move(batches));
  }
  double elapsed_ms = Ms(t0);
  return static_cast<double>(tokens) / (elapsed_ms / 1000.0);
}

int RunScenario(const Scenario& s, bool smoke) {
  bench::PrintHeader(
      std::string("remote-storage io cache — ") + s.label,
      "a shared read-through block cache + locality-aware prefetch hides "
      "remote storage latency behind preprocessing (MegaScale-Omni / "
      "Accelerating Data Loading)");
  std::printf("  sources=%d mesh={dp=%d pp=%d cp=%d tp=%d} samples/step=%lld "
              "row-group=%lld KiB get-latency=%lld ms\n",
              s.num_sources, s.spec.dp, s.spec.pp, s.spec.cp, s.spec.tp,
              static_cast<long long>(s.samples_per_step),
              static_cast<long long>(s.row_group_bytes / kKiB),
              static_cast<long long>(s.get_latency / kMillisecond));

  int failures = 0;
  std::vector<std::vector<RankBatch>> uncached_batches;
  std::vector<std::vector<RankBatch>> cached_batches;
  double uncached_tps = 0.0;
  double cached_tps = 0.0;
  {
    auto session = Session::Create(MakeOptions(s, /*cached=*/false));
    MSD_CHECK(session.ok());
    uncached_tps = RunConfig(**session, s, &uncached_batches);
    Session::IoStats io = (*session)->io_stats();
    bench::PrintRow("uncached tokens/s", uncached_tps);
    bench::PrintRow("uncached backing Gets", static_cast<double>(io.storage_gets));
  }
  {
    auto session = Session::Create(MakeOptions(s, /*cached=*/true));
    MSD_CHECK(session.ok());
    cached_tps = RunConfig(**session, s, &cached_batches);
    Session::IoStats io = (*session)->io_stats();
    bench::PrintRow("warm-cache tokens/s", cached_tps);
    bench::PrintRow("cache hits", static_cast<double>(io.cache.hits));
    bench::PrintRow("cache misses", static_cast<double>(io.cache.misses));
    bench::PrintRow("cache evictions", static_cast<double>(io.cache.evictions));
    bench::PrintRow("coalesced reads", static_cast<double>(io.scheduler.coalesced));
    bench::PrintRow("read-ahead issues", static_cast<double>(io.scheduler.prefetch_issues));
    bench::PrintRow("backing Gets", static_cast<double>(io.storage_gets));
  }

  const double speedup = cached_tps / uncached_tps;
  std::printf("  warm-cache speedup over uncached: %.2fx\n", speedup);

  // Byte-identity: the cache must be invisible in the data.
  for (size_t step = 0; step < uncached_batches.size(); ++step) {
    for (size_t rank = 0; rank < uncached_batches[step].size(); ++rank) {
      if (!bench::BatchesIdentical(uncached_batches[step][rank],
                                   cached_batches[step][rank])) {
        std::printf("  FAIL: step %zu rank %zu diverged with the cache on\n", step, rank);
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::printf("  batches byte-identical with cache+read-ahead on vs off\n");
  }
  if (smoke && speedup < 5.0) {
    std::printf("  FAIL: warm-cache speedup %.2fx below the 5x gate\n", speedup);
    ++failures;
  }
  return failures;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  using msd::Scenario;
  using msd::kKiB;
  using msd::kMiB;
  using msd::kMillisecond;
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back({"smoke (4 sources, dp=2, 5 ms/Get)", 4,
                         {.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 48, 512, 4 * kKiB,
                         5 * kMillisecond, 256 * kMiB, 32, 2, 6});
  } else {
    scenarios.push_back({"steady state (6 sources, dp=2 cp=2, 5 ms/Get)", 6,
                         {.dp = 2, .pp = 1, .cp = 2, .tp = 1}, 64, 768, 4 * kKiB,
                         5 * kMillisecond, 512 * kMiB, 16, 2, 10});
    scenarios.push_back({"tiny cache (eviction pressure, 5 ms/Get)", 4,
                         {.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 48, 512, 4 * kKiB,
                         5 * kMillisecond, 64 * kKiB, 8, 2, 6});
  }
  int failures = 0;
  for (const Scenario& s : scenarios) {
    failures += msd::RunScenario(s, smoke);
  }
  if (failures > 0) {
    std::printf("\n%d io-cache invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall io-cache invariants held\n");
  return 0;
}
