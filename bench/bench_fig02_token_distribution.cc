// Fig. 2 reproduction: skewed text/image token distributions of the
// coyo700m-like and navit_data-like corpora.
//
// Paper anchors: coyo700m text samples concentrate below 64 tokens while the
// >64-token tail contributes ~9% of tokens; navit text spreads to 32k; image
// patch counts skew long in both, with navit's >=16k share ~27%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"

namespace msd {
namespace {

void Report(const CorpusSpec& corpus, int64_t samples_per_source) {
  Pow2Histogram text(16, 32768);
  Pow2Histogram image(1024, 32768);
  Rng rng(2026);
  for (const SourceSpec& src : corpus.sources) {
    for (const SampleMeta& meta : DrawMetas(src, rng, samples_per_source)) {
      if (meta.text_tokens > 0) {
        text.Add(meta.text_tokens, meta.text_tokens);
      }
      if (meta.image_tokens > 0) {
        image.Add(meta.image_tokens, meta.image_tokens);
      }
    }
  }
  std::printf("\n--- %s (%zu sources, %lld samples/source) ---\n", corpus.name.c_str(),
              corpus.sources.size(), static_cast<long long>(samples_per_source));
  std::printf("%s", text.ToTable("text tokens (bar = sample ratio, pie = token ratio)").c_str());
  std::printf("%s", image.ToTable("image tokens").c_str());

  // Headline checks.
  auto text_counts = text.CountFractions();
  auto text_weights = text.WeightFractions();
  double short_samples = text_counts[0] + text_counts[1] + text_counts[2];  // <= 64
  double long_tokens = 0.0;
  for (size_t i = 3; i < text_weights.size(); ++i) {
    long_tokens += text_weights[i];
  }
  std::printf("  => samples with <=64 text tokens: %.2f%%; tokens from >64 tail: %.2f%%\n",
              short_samples * 100.0, long_tokens * 100.0);
}

}  // namespace
}  // namespace msd

int main() {
  msd::bench::PrintHeader(
      "Fig. 2: token distributions (coyo700m vs navit_data)",
      "coyo text overwhelmingly <=64 tokens (bars 36.7/36.1/18.0%), tail holds ~9% of "
      "tokens; navit text spreads 128..32k; image patches skew long");
  msd::Report(msd::MakeCoyo700m(), 20000);
  msd::Report(msd::MakeNavitData(), 400);
  return 0;
}
