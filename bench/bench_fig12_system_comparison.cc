// Fig. 12 reproduction: MegaScale-Data vs torch / tf.data / cachew / ray_data
// / pecan on the Llama-12B + ViT-2B workload at 288 and 576 GPUs (batch size
// 72/GPU; backbone truncated to 8 and 16 layers respectively to fit HBM).
//
// Paper anchors: up to 3.63x (288) / 2.71x (576) faster iterations, fetch
// latency fully overlapped, and up to 4.2x / 14.5x lower loader memory per
// node.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/loader_models.h"
#include "src/planner/strategies.h"
#include "src/trainsim/train_step.h"

namespace msd {
namespace {

struct Trial {
  const char* name;
  ParallelismSpec spec;
  int32_t backbone_layers;
};

LoadingPlan BuildPlan(const std::vector<BufferInfo>& buffers, const ClientPlaceTree& tree,
                      bool hybrid, int64_t samples) {
  StrategyOptions so;
  so.samples_per_step = samples;
  std::vector<double> weights(buffers.size(), 1.0);
  so.schedule = std::make_shared<StaticMix>(weights);
  Strategy strategy =
      hybrid ? MakeVlmHybridStrategy(so, BackboneCostFn(Llama12B()), EncoderCostFn(ViT2B()))
             : MakeVanillaStrategy(so);
  Rng rng(5);
  PlanContext ctx;
  ctx.buffer_infos = &buffers;
  ctx.tree = &tree;
  ctx.step = 0;
  ctx.rng = &rng;
  return strategy(ctx).value();
}

void RunTrial(const Trial& trial) {
  std::printf("\n--- %d GPUs (%s) ---\n", trial.spec.WorldSize(), trial.name);
  // Batch size 72 per GPU: each DP group consumes 72 samples per microbatch.
  const int64_t samples = 72LL * trial.spec.dp * 8;
  CorpusSpec corpus = MakeNavitData(11, 306);
  std::vector<BufferInfo> buffers = bench::MakeBufferInfos(corpus, samples / 306 + 8, 21);
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(trial.spec, 8);

  TrainSimConfig sim_config;
  sim_config.backbone = Llama12B();
  sim_config.backbone_layers_override = trial.backbone_layers;
  sim_config.has_encoder = true;
  sim_config.encoder = ViT2B();
  sim_config.spec = trial.spec;
  TrainStepSimulator sim(sim_config);

  LoadingPlan vanilla = BuildPlan(buffers, tree, /*hybrid=*/false, samples);
  LoadingPlan hybrid = BuildPlan(buffers, tree, /*hybrid=*/true, samples);
  double baseline_iter = ToSeconds(sim.SimulateStep(vanilla).total);
  double msd_iter = ToSeconds(sim.SimulateStep(hybrid).total);

  LoaderWorkloadConfig loader_config;
  loader_config.num_sources = 306;
  loader_config.spec = trial.spec;
  loader_config.cluster.num_gpus = trial.spec.WorldSize();

  std::printf("  %-16s %14s %14s %14s\n", "system", "iter time (s)", "fetch (s)",
              "mem/node");
  double worst_iter = 0.0;
  int64_t worst_mem = 0;
  LoaderSimResult msd_result;
  for (LoaderArch arch : AllLoaderArchs()) {
    bool is_msd = arch == LoaderArch::kMegaScaleData;
    double iter = is_msd ? msd_iter : baseline_iter;
    LoaderSimResult r = SimulateLoaderArch(arch, loader_config, iter);
    std::printf("  %-16s %14.2f %14.2f %14s%s\n", LoaderArchName(arch), iter,
                r.fetch_latency_s, FormatBytes(r.memory_per_node).c_str(),
                r.input_bound ? "  [input-bound]" : "");
    if (is_msd) {
      msd_result = r;
    } else {
      worst_iter = std::max(worst_iter, iter);
      worst_mem = std::max(worst_mem, r.memory_per_node);
    }
  }
  std::printf("  => iteration speedup vs baselines: %.2fx\n", worst_iter / msd_iter);
  std::printf("  => loader memory reduction: %.1fx\n",
              static_cast<double>(worst_mem) / static_cast<double>(msd_result.memory_per_node));
  std::printf("  => MSD fetch (%.2fs) %s training compute (%.2fs)\n",
              msd_result.fetch_latency_s,
              msd_result.fetch_latency_s < msd_iter ? "fully overlapped by" : "EXCEEDS",
              msd_iter);
}

}  // namespace
}  // namespace msd

int main() {
  msd::bench::PrintHeader(
      "Fig. 12: data preprocessing system comparison (Llama-12B + ViT-2B, navit)",
      "3.63x / 2.71x iteration speedup at 288 / 576 GPUs; 4.2x / 14.5x memory "
      "reduction; MSD fetch latency fully overlapped");
  msd::RunTrial({"TP=4 PP=8 DP=9", {.dp = 9, .pp = 8, .cp = 1, .tp = 4}, 8});
  msd::RunTrial({"TP=4 PP=4 CP=4 DP=9", {.dp = 9, .pp = 4, .cp = 4, .tp = 4}, 16});
  return 0;
}
