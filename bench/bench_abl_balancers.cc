// Ablation (beyond the paper's figures): balancing-algorithm quality and
// runtime across workload skews — the design-choice study behind DGraph's
// `balance(method=...)` default.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/plan/balance.h"

namespace msd {
namespace {

std::vector<double> SkewedCosts(size_t n, double sigma, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> costs(n);
  for (double& c : costs) {
    c = rng.LogNormal(0.0, sigma);
  }
  return costs;
}

void BM_Balancer(benchmark::State& state) {
  auto method = static_cast<BalanceMethod>(state.range(0));
  size_t items = static_cast<size_t>(state.range(1));
  double sigma = static_cast<double>(state.range(2)) / 10.0;
  std::vector<double> costs = SkewedCosts(items, sigma, 42);
  int32_t bins = 32;
  double imbalance = 0.0;
  for (auto _ : state) {
    auto assignment = AssignToBins(costs, bins, method);
    benchmark::DoNotOptimize(assignment);
    imbalance = Imbalance(BinLoads(costs, assignment, bins));
  }
  state.counters["imbalance"] = imbalance;
  state.SetLabel(std::string(BalanceMethodName(method)) + "/items=" +
                 std::to_string(items) + "/sigma=" + std::to_string(sigma));
}

BENCHMARK(BM_Balancer)
    ->ArgsProduct({{static_cast<long>(BalanceMethod::kGreedy),
                    static_cast<long>(BalanceMethod::kKarmarkarKarp),
                    static_cast<long>(BalanceMethod::kInterleave),
                    static_cast<long>(BalanceMethod::kZigZag),
                    static_cast<long>(BalanceMethod::kVShape)},
                   {512, 4096},
                   {5, 20}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  msd::bench::PrintHeader(
      "Ablation: balancer quality (imbalance counter) vs runtime",
      "design-choice study: greedy is the latency/quality default; KK best quality at "
      "higher cost; interleave cheap and good under heavy skew");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
