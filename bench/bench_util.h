// Shared helpers for the figure/table reproduction harnesses.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/constructor/data_constructor.h"
#include "src/data/source_spec.h"
#include "src/data/synthetic.h"
#include "src/plan/dgraph.h"

namespace msd {
namespace bench {

inline void PrintHeader(const std::string& title, const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const char* label, double value, const char* unit = "") {
  std::printf("  %-44s %12.3f %s\n", label, value, unit);
}

// Metadata-only buffer infos for cluster-scale planning: one loader per
// source, `samples_per_source` metas each.
inline std::vector<BufferInfo> MakeBufferInfos(const CorpusSpec& corpus,
                                               int64_t samples_per_source, uint64_t seed) {
  std::vector<BufferInfo> buffers;
  buffers.reserve(corpus.sources.size());
  Rng rng(seed);
  uint64_t next_id = 1;
  for (const SourceSpec& src : corpus.sources) {
    BufferInfo info;
    info.loader_id = src.source_id;
    info.source_id = src.source_id;
    info.samples = DrawMetas(src, rng, samples_per_source, next_id);
    next_id += static_cast<uint64_t>(samples_per_source);
    buffers.push_back(std::move(info));
  }
  return buffers;
}

// Deep byte-level equality of two served RankBatches — the invariant gate
// shared by the pipeline and checkpoint benches (divergence => exit nonzero).
inline bool BatchesIdentical(const RankBatch& a, const RankBatch& b) {
  if (a.metadata_only != b.metadata_only || a.payload_bytes != b.payload_bytes ||
      a.microbatches.size() != b.microbatches.size()) {
    return false;
  }
  for (size_t m = 0; m < a.microbatches.size(); ++m) {
    const Microbatch& am = a.microbatches[m];
    const Microbatch& bm = b.microbatches[m];
    if (am.sequences.size() != bm.sequences.size()) {
      return false;
    }
    for (size_t q = 0; q < am.sequences.size(); ++q) {
      const PackedSequence& as = am.sequences[q];
      const PackedSequence& bs = bm.sequences[q];
      if (as.sample_ids != bs.sample_ids || as.total_tokens != bs.total_tokens ||
          as.padded_to != bs.padded_to || !(as.tokens == bs.tokens) ||
          !(as.position_ids == bs.position_ids)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace bench
}  // namespace msd

#endif  // BENCH_BENCH_UTIL_H_
