// Fig. 20 reproduction: scalability of the disaggregated actor architecture.
//
// A direct-transfer baseline (trainer clients fetch straight from Source
// Loaders, bypassing Data Constructors) accumulates client x loader
// connections on every loader endpoint; connection-handling overhead drives
// the endpoints toward saturation: ~10x fetch latency at 2k GPUs and outright
// collapse at 4k. MegaScale-Data fans clients into per-DP-group Data
// Constructors, keeping endpoint connection counts flat.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/network.h"

namespace msd {
namespace {

struct Point {
  double direct_latency_s;
  bool direct_collapsed;
  double msd_latency_s;
};

Point Evaluate(int32_t gpus) {
  NetworkModel net;
  const int32_t tp = 4;
  const int32_t clients = gpus / tp;  // tp>0 ranks are broadcast-excluded
  const int32_t loaders = 64;         // pure-text corpus source loaders
  const int32_t dp = clients;         // pure DP text model
  const int32_t constructors = std::max(1, dp / 8);  // grouped DP service
  const double steps_per_sec = 0.5;
  const int64_t slice_bytes = 44 * kMiB;

  Point p;
  // Direct transfer: every client opens a channel to every loader; each
  // loader endpoint serves `clients` connections and clients x rate requests.
  int64_t direct_connections = clients;
  double direct_arrivals = static_cast<double>(clients) * steps_per_sec;
  SimTime direct = net.RequestLatency(direct_arrivals, direct_connections, slice_bytes);
  p.direct_collapsed = direct >= 3600 * kSecond;
  p.direct_latency_s = ToSeconds(direct);

  // MegaScale-Data: clients talk to their constructor (fan-in ~ clients per
  // constructor); constructors talk to loaders (fan-in = constructors).
  int64_t dc_connections = clients / constructors;
  double dc_arrivals = static_cast<double>(clients) / constructors * steps_per_sec;
  SimTime client_hop = net.RequestLatency(dc_arrivals, dc_connections, slice_bytes);
  double loader_arrivals = static_cast<double>(constructors) * steps_per_sec;
  SimTime loader_hop =
      net.RequestLatency(loader_arrivals, constructors, slice_bytes / loaders);
  p.msd_latency_s = ToSeconds(client_hop + loader_hop);
  return p;
}

}  // namespace
}  // namespace msd

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 20: actor-model scalability (pure-text model, direct transfer vs MSD)",
      "comparable at 1k GPUs; direct transfer ~10x fetch latency at 2k; collapses at "
      "4k; MegaScale-Data sustains throughput via the Data Constructor");
  std::printf("\n  %6s %22s %18s %10s\n", "GPUs", "direct fetch (s)", "MSD fetch (s)",
              "ratio");
  double ratio_1k = 0.0;
  for (int32_t gpus : {1024, 2048, 4096}) {
    Point p = Evaluate(gpus);
    if (p.direct_collapsed) {
      std::printf("  %6d %22s %18.3f %10s\n", gpus, "COLLAPSED (saturated)",
                  p.msd_latency_s, "inf");
    } else {
      double ratio = p.direct_latency_s / p.msd_latency_s;
      if (gpus == 1024) {
        ratio_1k = ratio;
      }
      std::printf("  %6d %22.3f %18.3f %9.1fx\n", gpus, p.direct_latency_s,
                  p.msd_latency_s, ratio);
    }
  }
  std::printf("\n  (at 1k GPUs the two are within %.1fx — the gap opens with scale)\n",
              ratio_1k);
  return 0;
}
