// Fig. 3 reproduction: computational imbalance across microbatches in an
// 8-GPU VLM trial (encoder EDP=8; backbone DP=4 x TP=2; 4 microbatches).
//
// Paper anchors: without scheduling, max/min FLOPs ratios reach ~3.2x for
// image work across encoder ranks and ~6.9x for token work across DP ranks.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/costmodel/flops.h"
#include "src/plan/balance.h"

namespace msd {
namespace {

constexpr int kEdp = 8;
constexpr int kDp = 4;
constexpr int kMb = 4;
constexpr int kSamplesPerMb = 12;

void PrintHeatmap(const char* title, const std::vector<std::vector<double>>& grid,
                  double scale) {
  std::printf("\n%s (units: %g FLOPs)\n          ", title, scale);
  for (size_t mb = 0; mb < grid[0].size(); ++mb) {
    std::printf("   MB#%zu", mb);
  }
  std::printf("\n");
  for (size_t r = 0; r < grid.size(); ++r) {
    std::printf("  rank %2zu ", r);
    for (double v : grid[r]) {
      std::printf(" %6.1f", v / scale);
    }
    std::printf("\n");
  }
  std::vector<double> flat;
  for (const auto& row : grid) {
    for (double v : row) {
      flat.push_back(v);
    }
  }
  std::printf("  max/min ratio: %.2fx\n", MaxMinRatio(flat));
}

}  // namespace
}  // namespace msd

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 3: FLOPs imbalance heatmaps (8-GPU VLM trial, EDP=8, DP=4 TP=2)",
      "image FLOPs max/min ~= 3.2x across encoder ranks; token FLOPs max/min ~= 6.9x "
      "across DP ranks");

  CorpusSpec corpus = MakeNavitData(11, 32);
  ModelConfig encoder = ViT2B();
  ModelConfig backbone = Llama12B();

  // Draw the step's samples and deal them round-robin (arrival order), the
  // unscheduled behaviour of a data-parallel loader.
  Rng rng(7);
  std::vector<SampleMeta> batch;
  for (int i = 0; i < kDp * kMb * kSamplesPerMb; ++i) {
    const SourceSpec& src = corpus.sources[rng.NextU32() % corpus.sources.size()];
    batch.push_back(src.DrawMeta(rng, static_cast<uint64_t>(i)));
  }

  // Token FLOPs per (DP rank, microbatch).
  std::vector<std::vector<double>> token_grid(kDp, std::vector<double>(kMb, 0.0));
  // Image FLOPs per (EDP rank, microbatch): EDP=8 spreads the microbatch's
  // images across all GPUs in arrival order. The trial crops images to the
  // standard 8k-patch training cap (CropToPatches), as in production
  // pretraining; backbone tokens stay uncapped.
  std::vector<std::vector<double>> image_grid(kEdp, std::vector<double>(kMb, 0.0));
  int image_counter = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    int dp = static_cast<int>(i) % kDp;
    int mb = (static_cast<int>(i) / kDp) % kMb;
    token_grid[dp][mb] += BackboneSampleFlops(backbone, batch[i]);
    if (batch[i].image_tokens > 0) {
      int edp = image_counter++ % kEdp;
      int32_t patches = std::min(batch[i].image_tokens, 4096);
      image_grid[edp][mb] += EncoderFlops(encoder, patches);
    }
  }
  PrintHeatmap("(a) image FLOPs across encoder DP ranks", image_grid, 1e7 * 1e6);
  PrintHeatmap("(b) token FLOPs across backbone DP ranks", token_grid, 1e13);
  return 0;
}
