// Fig. 14 reproduction: the VLM pre-training case study timeline.
// Llama-12B + ViT-2B on navit_data, BS=128, hybrid parallelism
// PP=9 DP=8 CP=2 TP=4 (576 GPUs), with an All-to-All moving encoder features
// into the backbone.
//
// Paper anchors: the baseline suffers encoder-stage imbalance from variable
// image resolutions (37.24s iterations); naive microbatch-level balancing is
// too coarse; MegaScale-Data's hybrid balancer reaches 15.91s (~2.34x).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/planner/strategies.h"
#include "src/trainsim/train_step.h"

namespace msd {
namespace {

enum class Mode { kBaseline, kMicrobatchLevel, kHybrid };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kBaseline:
      return "Baseline (no scheduling)";
    case Mode::kMicrobatchLevel:
      return "Microbatch-level balance (coarse)";
    case Mode::kHybrid:
      return "MegaScale-Data hybrid balance";
  }
  return "?";
}

}  // namespace
}  // namespace msd

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 14: VLM case study timeline (Llama-12B + ViT-2B, navit, PP=9 DP=8 CP=2 TP=4)",
      "baseline 37.24s -> hybrid 15.91s (~2.34x); microbatch-level balancing too coarse");

  ParallelismSpec spec{.dp = 8, .pp = 9, .cp = 2, .tp = 4};
  const int64_t samples = 128LL * spec.dp;
  CorpusSpec corpus = MakeNavitData(11, 306);
  std::vector<BufferInfo> buffers = bench::MakeBufferInfos(corpus, samples / 200 + 8, 31);
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, 8);

  TrainSimConfig config;
  config.backbone = Llama12B();
  config.has_encoder = true;
  config.encoder = ViT2B();
  config.spec = spec;
  TrainStepSimulator sim(config);

  StrategyOptions so;
  so.samples_per_step = samples;
  so.schedule = std::make_shared<StaticMix>(std::vector<double>(corpus.sources.size(), 1.0));

  double baseline_total = 0.0;
  double hybrid_total = 0.0;
  for (Mode mode : {Mode::kBaseline, Mode::kMicrobatchLevel, Mode::kHybrid}) {
    Strategy strategy;
    switch (mode) {
      case Mode::kBaseline:
        strategy = MakeVanillaStrategy(so);
        break;
      case Mode::kMicrobatchLevel: {
        StrategyOptions coarse = so;
        coarse.granularity = BalanceOptions::Granularity::kMicrobatch;
        strategy = MakeLlmBalanceStrategy(coarse, BackboneCostFn(Llama12B()));
        break;
      }
      case Mode::kHybrid:
        strategy =
            MakeVlmHybridStrategy(so, BackboneCostFn(Llama12B()), EncoderCostFn(ViT2B()));
        break;
    }
    Rng rng(9);
    PlanContext ctx;
    ctx.buffer_infos = &buffers;
    ctx.tree = &tree;
    ctx.step = 0;
    ctx.rng = &rng;
    LoadingPlan plan = strategy(ctx).value();
    IterationBreakdown r = sim.SimulateStep(plan);
    std::printf("\n%s\n", ModeName(mode));
    std::printf("  forward ViT (slowest rank): %8.2f s   (encoder max/mean %.2fx)\n",
                ToSeconds(r.encoder_time), r.encoder_imbalance);
    std::printf("  all-to-all:                 %8.2f s\n", ToSeconds(r.a2a_time));
    std::printf("  backbone pipeline:          %8.2f s   (DP max/min %.2fx)\n",
                ToSeconds(r.backbone_time), r.max_min_dp_ratio);
    std::printf("  iteration total:            %8.2f s\n", ToSeconds(r.total));
    if (mode == Mode::kBaseline) {
      baseline_total = ToSeconds(r.total);
    }
    if (mode == Mode::kHybrid) {
      hybrid_total = ToSeconds(r.total);
    }
  }
  std::printf("\n=> end-to-end speedup baseline -> hybrid: %.2fx\n",
              baseline_total / hybrid_total);
  return 0;
}
