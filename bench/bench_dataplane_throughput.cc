// Data-plane throughput: zero-copy loader->constructor->rank-batch pipeline
// versus the scalar reference plane (src/constructor/reference_assembly.h,
// the frozen pre-refactor implementation), over text-heavy AND image-heavy
// corpora.
//
// For each scenario the harness materializes a synthetic corpus, opens one
// Source Loader per source (arena-backed row decode on), builds a plan
// covering every buffered sample, pops the slices once (shared by both
// planes), then repeatedly runs build-step + get-batch for every rank of the
// world and reports:
//   - tokens/sec and payload bytes/sec (tokens + positions + pixels) through
//     each plane (the paper's "data path must never be the bottleneck"
//     quantity),
//   - bytes of token payload materialized per iteration (PayloadPlaneStats),
//   - pixel bytes materialized per iteration — ZERO on the zero-copy plane:
//     pixel views alias the loaders' frozen decode slabs end-to-end,
//   - Sample deep copies per iteration (zero on the zero-copy plane),
//   - staged re-broadcast payload for the mesh (selective broadcasting).
//
// `--smoke` runs the smallest text and image scenarios with 2 iterations and
// exits nonzero if the zero-copy plane ever copies a Sample, materializes a
// pixel byte, diverges from the reference payload accounting, misses the 2x
// payload-bytes/s bar on the image corpus, or (arena on vs off vs reference)
// serves a byte-divergent batch — wired into ctest so the bench can never
// silently rot.
//
// `--telemetry-smoke` is the telemetry-overhead gate (its own ctest entry):
// it streams a full cached Session — the path that carries every span site
// and registry collector — with telemetry on and off in alternating trials,
// and exits nonzero if telemetry-on tokens/s falls below 97% of telemetry-off
// (best of 3 trials each, so a scheduler hiccup cannot fail the gate).
// BENCH_telemetry.json records the ledger numbers.
//
// `--diagnosis-smoke` gates the health monitor the same way (its own ctest
// entry): monitor-on tokens/s >= 97% of monitor-off, byte-identical batches,
// a scripted 5 ms -> 25 ms storage brownout classified io-bound within 5
// steps with exactly one well-formed flight-recorder bundle, and a
// fault-free twin with zero anomalies. BENCH_diagnosis.json is its ledger.
//
// `--mixture-smoke` gates the dynamic mixture schedule plane (its own ctest
// entry): on the long-image coyo700m corpus (patch counts 1k..32k against a
// 512-token pack cap) the metadata-driven decode bound must lift delivered
// payload-bytes/s by >= 1.2x while serving byte-identical batches — the
// bound only skips decode work past the pack cap, never changes delivered
// bytes; and a session carrying a uniform single-phase MixtureSchedule must
// stay within 3% tokens/s of (and byte-identical to) the schedule-free
// default, so curriculum bookkeeping is free when it is not re-weighting.
// BENCH_mixture.json records the ledger numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/session.h"
#include "src/constructor/reference_assembly.h"
#include "src/loader/source_loader.h"
#include "src/mesh/selective_broadcast.h"
#include "src/plan/mixture_schedule.h"

namespace msd {
namespace {

struct Scenario {
  const char* label;
  int num_sources;
  ParallelismSpec spec;
  int32_t max_seq_len;
  int64_t rows_per_file;
  int32_t num_microbatches;
  // Coyo700m-like image-text sources (heavy pixel payloads) instead of the
  // navit mixed corpus.
  bool image_corpus = false;
};

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct PassTotals {
  int64_t tokens = 0;
  int64_t pixels = 0;
  int64_t payload_bytes = 0;
};

struct PlaneResult {
  double tokens_per_sec = 0.0;
  double payload_bytes_per_sec = 0.0;
  int64_t tokens_per_iter = 0;
  int64_t pixels_per_iter = 0;
  int64_t payload_bytes = 0;
  int64_t materialized_per_iter = 0;        // token bytes (freeze + copy-out)
  int64_t pixel_materialized_per_iter = 0;  // pixel bytes (freeze + copy-out)
  int64_t sample_copies_per_iter = 0;
};

// One full pass: build every constructor's step from (a cheap alias copy of)
// its slices, then fetch every rank's batch. Returns tokens, pixels, and
// payload bytes delivered.
template <typename Plane, typename Slices>
PassTotals RunPass(std::vector<std::unique_ptr<Plane>>& planes, const LoadingPlan& plan,
                   const Slices& slices_per_dp, const ParallelismSpec& spec) {
  PassTotals totals;
  for (size_t dp = 0; dp < planes.size(); ++dp) {
    Status built = planes[dp]->BuildStep(plan, slices_per_dp[dp]);
    MSD_CHECK(built.ok());
  }
  for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
    int32_t dp = CoordOfRank(spec, rank).dp;
    Result<RankBatch> batch = planes[static_cast<size_t>(dp)]->GetBatch(rank, plan.step);
    MSD_CHECK(batch.ok());
    totals.payload_bytes += batch->payload_bytes;
    for (const Microbatch& mb : batch->microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        totals.tokens += static_cast<int64_t>(seq.tokens.size());
        totals.pixels += seq.PixelCount();
      }
    }
  }
  return totals;
}

template <typename Plane, typename MakePlane, typename Slices>
PlaneResult MeasurePlane(MakePlane make_plane, const LoadingPlan& plan,
                         const Slices& slices_per_dp, const ParallelismSpec& spec,
                         int iters) {
  std::vector<std::unique_ptr<Plane>> planes;
  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    planes.push_back(make_plane(dp));
  }
  // Warm-up pass (first-touch allocations), then measured passes.
  RunPass(planes, plan, slices_per_dp, spec);
  ResetSampleCopyCount();
  PayloadPlaneStats::Reset();
  auto t0 = std::chrono::steady_clock::now();
  int64_t tokens = 0;
  PassTotals last;
  for (int i = 0; i < iters; ++i) {
    last = RunPass(planes, plan, slices_per_dp, spec);
    tokens += last.tokens;
  }
  double elapsed = Seconds(t0);
  PlaneResult r;
  r.tokens_per_iter = tokens / iters;
  r.pixels_per_iter = last.pixels;
  r.tokens_per_sec = static_cast<double>(tokens) / elapsed;
  r.payload_bytes_per_sec =
      static_cast<double>(last.payload_bytes) * static_cast<double>(iters) / elapsed;
  r.payload_bytes = last.payload_bytes;
  r.materialized_per_iter =
      PayloadPlaneStats::MaterializedBytes(PayloadKind::kTokens).load(std::memory_order_relaxed) /
      iters;
  r.pixel_materialized_per_iter =
      PayloadPlaneStats::MaterializedBytes(PayloadKind::kPixels).load(std::memory_order_relaxed) /
      iters;
  r.sample_copies_per_iter = SampleCopyCount() / iters;
  return r;
}

// The zero-copy constructor consumes its slices; hand it a fresh alias copy
// (shared_ptr bumps, no payload copies) each pass.
struct ZeroCopyAdapter {
  explicit ZeroCopyAdapter(DataConstructorConfig config, const ClientPlaceTree* tree,
                           MemoryAccountant* memory)
      : dc(config, tree, memory) {}
  Status BuildStep(const LoadingPlan& plan, const std::vector<SampleSlice>& slices) {
    return dc.BuildStep(plan, slices);  // vector copy = refcount bumps only
  }
  Result<RankBatch> GetBatch(int32_t rank, int64_t step) { return dc.GetBatch(rank, step); }
  DataConstructor dc;
};

// Opens one loader per source over the already-materialized corpus files.
std::vector<std::unique_ptr<SourceLoader>> OpenLoaders(const CorpusSpec& corpus,
                                                       ObjectStore& store,
                                                       MemoryAccountant& memory,
                                                       int64_t rows_per_file,
                                                       bool arena_decode) {
  std::vector<std::unique_ptr<SourceLoader>> loaders;
  for (const SourceSpec& spec : corpus.sources) {
    SourceLoaderConfig config;
    config.loader_id = spec.source_id;
    config.spec = spec;
    config.spec.num_files = 1;
    config.spec.rows_per_file = rows_per_file;
    config.files = {SourceFileName(spec, 0)};
    config.num_workers = 1;
    config.buffer_low_watermark = static_cast<size_t>(rows_per_file) * 2;
    config.arena_decode = arena_decode;
    // Distinct actor names for the arena-off replica set.
    config.name_override = std::string(arena_decode ? "bench_arena/" : "bench_legacy/") +
                           spec.name + "#" + std::to_string(spec.source_id);
    auto loader = std::make_unique<SourceLoader>(config, &store, &memory);
    MSD_CHECK(loader->Open().ok());
    loaders.push_back(std::move(loader));
  }
  return loaders;
}

// Pops every constructor's slices for `plan` from `loaders`.
std::vector<std::vector<SampleSlice>> PopSlices(
    const LoadingPlan& plan, std::vector<std::unique_ptr<SourceLoader>>& loaders,
    const ClientPlaceTree& tree, MemoryAccountant& memory,
    const DataConstructorConfig& dc_config, int32_t dp_degree, int64_t* popped) {
  std::vector<std::vector<SampleSlice>> slices_per_dp(static_cast<size_t>(dp_degree));
  for (int32_t dp = 0; dp < dp_degree; ++dp) {
    DataConstructorConfig c = dc_config;
    c.constructor_id = dp;
    DataConstructor owned_probe(c, &tree, &memory);
    std::vector<int32_t> owned = owned_probe.OwnedBuckets(plan);
    for (auto& loader : loaders) {
      std::vector<uint64_t> ids;
      for (const SliceAssignment& a : plan.assignments) {
        bool mine = false;
        for (int32_t b : owned) {
          mine = mine || (b == a.bucket);
        }
        if (mine && a.loader_id == loader->config().loader_id) {
          ids.push_back(a.sample_id);
        }
      }
      if (ids.empty()) {
        continue;
      }
      Result<SampleSlice> slice = loader->PopSamples(plan.step, ids);
      MSD_CHECK(slice.ok());
      if (popped != nullptr) {
        *popped += static_cast<int64_t>(slice->samples.size());
      }
      slices_per_dp[static_cast<size_t>(dp)].push_back(std::move(slice.value()));
    }
  }
  return slices_per_dp;
}

// Byte-level batch comparison across planes (tokens, positions, pixels).
int CompareBatches(const RankBatch& got, const RankBatch& want, const char* label) {
  int failures = 0;
  auto fail = [&](const char* what) {
    std::printf("  FAIL [%s]: rank %d diverges on %s\n", label, got.rank, what);
    ++failures;
  };
  if (got.payload_bytes != want.payload_bytes) {
    fail("payload_bytes");
  }
  if (got.microbatches.size() != want.microbatches.size()) {
    fail("microbatch count");
    return failures;
  }
  for (size_t m = 0; m < got.microbatches.size(); ++m) {
    const Microbatch& gm = got.microbatches[m];
    const Microbatch& wm = want.microbatches[m];
    if (gm.sequences.size() != wm.sequences.size()) {
      fail("sequence count");
      return failures;
    }
    for (size_t s = 0; s < gm.sequences.size(); ++s) {
      const PackedSequence& gs = gm.sequences[s];
      const PackedSequence& ws = wm.sequences[s];
      if (gs.sample_ids != ws.sample_ids || gs.tokens.ToVector() != ws.tokens.ToVector() ||
          gs.position_ids.ToVector() != ws.position_ids.ToVector()) {
        fail("token payload");
      }
      if (gs.pixel_segments.size() != ws.pixel_segments.size()) {
        fail("pixel segment count");
        continue;
      }
      for (size_t p = 0; p < gs.pixel_segments.size(); ++p) {
        if (gs.pixel_segments[p].ToVector() != ws.pixel_segments[p].ToVector()) {
          fail("pixel payload");
          break;
        }
      }
    }
  }
  return failures;
}

int RunScenario(const Scenario& s, int iters, bool smoke) {
  bench::PrintHeader(
      std::string("data plane throughput — ") + s.label,
      "the disaggregated loader feeds training without the data path becoming "
      "the bottleneck (zero redundant copies on the hot path)");
  std::printf("  sources=%d mesh={dp=%d pp=%d cp=%d tp=%d} seq_len=%d rows/src=%lld corpus=%s\n",
              s.num_sources, s.spec.dp, s.spec.pp, s.spec.cp, s.spec.tp, s.max_seq_len,
              static_cast<long long>(s.rows_per_file), s.image_corpus ? "image" : "mixed");

  MemoryAccountant memory;
  ObjectStore store(&memory);
  CorpusSpec corpus =
      s.image_corpus ? MakeCoyo700m(11) : MakeNavitData(11, s.num_sources);
  if (s.image_corpus) {
    corpus.sources.resize(static_cast<size_t>(s.num_sources));
  }
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(s.spec, s.num_microbatches);

  // Materialize the corpus files once; every loader set reads the same bytes.
  for (SourceSpec& spec : corpus.sources) {
    spec.num_files = 1;
    spec.rows_per_file = s.rows_per_file;
    Status wrote = WriteSourceFiles(store, spec, 11, {.target_row_group_bytes = 256 * kKiB});
    MSD_CHECK(wrote.ok());
  }
  std::vector<std::unique_ptr<SourceLoader>> loaders =
      OpenLoaders(corpus, store, memory, s.rows_per_file, /*arena_decode=*/true);

  // Plan: round-robin every buffered sample over (bucket, microbatch) bins.
  LoadingPlan plan;
  plan.step = 0;
  plan.axis = Axis::kDP;
  plan.num_buckets = tree.NumBuckets(Axis::kDP);
  plan.num_microbatches = s.num_microbatches;
  int32_t i = 0;
  for (auto& loader : loaders) {
    for (const SampleMeta& meta : loader->SummaryBuffer().samples) {
      SliceAssignment a;
      a.sample_id = meta.sample_id;
      a.source_id = meta.source_id;
      a.loader_id = loader->config().loader_id;
      a.bucket = i % plan.num_buckets;
      a.microbatch = (i / plan.num_buckets) % plan.num_microbatches;
      a.total_tokens = meta.TotalTokens();
      a.image_tokens = meta.image_tokens;
      a.cost = a.total_tokens;
      plan.assignments.push_back(a);
      ++i;
    }
  }

  // Pop every constructor's slices once (timed; both planes then share them).
  DataConstructorConfig dc_config;
  dc_config.max_seq_len = s.max_seq_len;
  auto pop_t0 = std::chrono::steady_clock::now();
  int64_t popped = 0;
  std::vector<std::vector<SampleSlice>> slices_per_dp =
      PopSlices(plan, loaders, tree, memory, dc_config, s.spec.dp, &popped);
  double pop_s = Seconds(pop_t0);
  bench::PrintRow("samples popped (single-pass compaction)", static_cast<double>(popped), "");
  bench::PrintRow("pop wall time", pop_s * 1e3, "ms");

  // Measure both planes over identical inputs.
  PlaneResult zero = MeasurePlane<ZeroCopyAdapter>(
      [&](int32_t dp) {
        DataConstructorConfig c = dc_config;
        c.constructor_id = dp;
        return std::make_unique<ZeroCopyAdapter>(c, &tree, &memory);
      },
      plan, slices_per_dp, s.spec, iters);
  PlaneResult ref = MeasurePlane<ReferenceDataPlane>(
      [&](int32_t dp) {
        DataConstructorConfig c = dc_config;
        c.constructor_id = dp;
        return std::make_unique<ReferenceDataPlane>(c, &tree);
      },
      plan, slices_per_dp, s.spec, iters);

  bench::PrintRow("tokens delivered / iteration", static_cast<double>(zero.tokens_per_iter), "");
  bench::PrintRow("pixels delivered / iteration", static_cast<double>(zero.pixels_per_iter), "");
  bench::PrintRow("zero-copy plane", zero.tokens_per_sec / 1e6, "Mtok/s");
  bench::PrintRow("reference scalar plane", ref.tokens_per_sec / 1e6, "Mtok/s");
  bench::PrintRow("zero-copy payload throughput", zero.payload_bytes_per_sec / 1e6, "MB/s");
  bench::PrintRow("reference payload throughput", ref.payload_bytes_per_sec / 1e6, "MB/s");
  double speedup = zero.tokens_per_sec / ref.tokens_per_sec;
  double bytes_speedup = zero.payload_bytes_per_sec / ref.payload_bytes_per_sec;
  bench::PrintRow("speedup (zero-copy / reference, tokens/s)", speedup, "x");
  bench::PrintRow("speedup (tokens+pixels bytes/s)", bytes_speedup, "x");
  bench::PrintRow("token bytes materialized / iter (zero-copy)",
                  static_cast<double>(zero.materialized_per_iter) / 1e6, "MB");
  bench::PrintRow("token bytes materialized / iter (reference)",
                  static_cast<double>(ref.materialized_per_iter) / 1e6, "MB");
  bench::PrintRow("pixel bytes materialized / iter (zero-copy)",
                  static_cast<double>(zero.pixel_materialized_per_iter) / 1e6, "MB");
  bench::PrintRow("pixel bytes materialized / iter (reference)",
                  static_cast<double>(ref.pixel_materialized_per_iter) / 1e6, "MB");
  bench::PrintRow("Sample deep copies / iter (zero-copy)",
                  static_cast<double>(zero.sample_copies_per_iter), "");
  bench::PrintRow("Sample deep copies / iter (reference)",
                  static_cast<double>(ref.sample_copies_per_iter), "");

  // Staged re-broadcast accounting: only the roots fetch; the per-stage wire
  // bytes are what a deployment would move inside fast intra-group links.
  BroadcastPlan bcast = MakeSelectiveBroadcastPlan(tree, {Axis::kCP, Axis::kTP});
  int64_t per_rank = zero.payload_bytes / std::max(1, s.spec.WorldSize());
  bench::PrintRow("synchronized clients (selective bcast)",
                  static_cast<double>(SynchronizedClients(bcast)), "");
  bench::PrintRow("staged re-broadcast payload",
                  static_cast<double>(TotalShippedBytes(bcast, per_rank) -
                                      static_cast<int64_t>(SynchronizedClients(bcast)) *
                                          per_rank) /
                      1e6,
                  "MB");

  int failures = 0;
  if (zero.sample_copies_per_iter != 0) {
    std::printf("  FAIL: zero-copy plane performed %lld Sample deep copies\n",
                static_cast<long long>(zero.sample_copies_per_iter));
    ++failures;
  }
  if (zero.payload_bytes != ref.payload_bytes) {
    std::printf("  FAIL: payload accounting diverged (%lld vs %lld bytes)\n",
                static_cast<long long>(zero.payload_bytes),
                static_cast<long long>(ref.payload_bytes));
    ++failures;
  }
  if (zero.pixel_materialized_per_iter != 0) {
    std::printf("  FAIL: zero-copy plane materialized %lld pixel bytes (must be 0:\n"
                "        pixel views alias the loaders' frozen decode slabs)\n",
                static_cast<long long>(zero.pixel_materialized_per_iter));
    ++failures;
  }
  if (s.image_corpus && bytes_speedup < 2.0) {
    if (smoke) {
      std::printf("  FAIL: payload-bytes/s speedup %.2fx below the 2x acceptance bar\n",
                  bytes_speedup);
      ++failures;
    } else {
      std::printf("  WARN: payload-bytes/s speedup below the 2x acceptance bar\n");
    }
  }
  if (!smoke && speedup < 2.0) {
    std::printf("  WARN: tokens/s speedup below the 2x acceptance bar\n");
  }

  // Arena on/off byte-identity: a second loader set decodes the same corpus
  // with the legacy per-row allocator; every rank's batch must be identical
  // across arena-on, arena-off, and the scalar reference plane.
  {
    std::vector<std::unique_ptr<SourceLoader>> legacy =
        OpenLoaders(corpus, store, memory, s.rows_per_file, /*arena_decode=*/false);
    std::vector<std::vector<SampleSlice>> legacy_slices =
        PopSlices(plan, legacy, tree, memory, dc_config, s.spec.dp, nullptr);
    for (int32_t dp = 0; dp < s.spec.dp; ++dp) {
      DataConstructorConfig c = dc_config;
      c.constructor_id = dp;
      ZeroCopyAdapter on(c, &tree, &memory);
      ZeroCopyAdapter off(c, &tree, &memory);
      ReferenceDataPlane reference(c, &tree);
      MSD_CHECK(on.BuildStep(plan, slices_per_dp[static_cast<size_t>(dp)]).ok());
      MSD_CHECK(off.BuildStep(plan, legacy_slices[static_cast<size_t>(dp)]).ok());
      MSD_CHECK(reference.BuildStep(plan, slices_per_dp[static_cast<size_t>(dp)]).ok());
      for (int32_t rank = 0; rank < s.spec.WorldSize(); ++rank) {
        if (CoordOfRank(s.spec, rank).dp != dp) {
          continue;
        }
        RankBatch got_on = on.GetBatch(rank, plan.step).value();
        RankBatch got_off = off.GetBatch(rank, plan.step).value();
        RankBatch want = reference.GetBatch(rank, plan.step).value();
        failures += CompareBatches(got_on, want, "arena-on vs reference");
        failures += CompareBatches(got_off, want, "arena-off vs reference");
      }
    }
    if (failures == 0) {
      std::printf("  byte-identity held: arena-on == arena-off == reference plane\n");
    }
  }
  return failures;
}

// ---------------------------------------------------------------------------
// Telemetry overhead gate: a full Session stream (prefetch pipeline, block
// cache, scheduler — every span site and collector live) with telemetry on
// must stay within 3% tokens/s of the same stream with telemetry off.
// ---------------------------------------------------------------------------

double StreamSessionTokensPerSec(bool telemetry, int64_t steps) {
  Session::Options options;
  options.corpus = MakeNavitData(11, 2);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;
  options.block_cache_bytes = 32 * kMiB;  // zero-latency store: compute-bound,
  options.telemetry_enabled = telemetry;  // so telemetry cost is maximally visible
  Result<std::unique_ptr<Session>> session = Session::Create(options);
  MSD_CHECK(session.ok());
  const int32_t world = (*session)->tree().spec().WorldSize();
  auto pull_step = [&session, world]() {
    int64_t tokens = 0;
    for (int32_t rank = 0; rank < world; ++rank) {
      Result<RankBatch> batch = (*session)->client(rank).value()->NextBatch();
      MSD_CHECK(batch.ok());
      for (const Microbatch& mb : batch->microbatches) {
        for (const PackedSequence& seq : mb.sequences) {
          tokens += static_cast<int64_t>(seq.tokens.size());
        }
      }
    }
    return tokens;
  };
  pull_step();  // warm-up: cache fill + pipeline spin-up
  auto t0 = std::chrono::steady_clock::now();
  int64_t tokens = 0;
  for (int64_t s = 0; s < steps; ++s) {
    tokens += pull_step();
  }
  return static_cast<double>(tokens) / Seconds(t0);
}

int RunTelemetrySmoke() {
  bench::PrintHeader(
      "telemetry overhead — full session stream, registry + tracer on vs off",
      "observability must be effectively free: spans are one POD copy into a "
      "ring, counters are relaxed atomics, collectors run only at scrape time");
  constexpr int kTrials = 3;
  constexpr int64_t kSteps = 8;
  constexpr double kMinRatio = 0.97;
  double best_on = 0.0;
  double best_off = 0.0;
  // Alternate modes so drift (thermal, cache residency) hits both equally.
  for (int t = 0; t < kTrials; ++t) {
    best_off = std::max(best_off, StreamSessionTokensPerSec(false, kSteps));
    best_on = std::max(best_on, StreamSessionTokensPerSec(true, kSteps));
  }
  const double ratio = best_on / best_off;
  bench::PrintRow("telemetry off (best of 3)", best_off / 1e6, "Mtok/s");
  bench::PrintRow("telemetry on  (best of 3)", best_on / 1e6, "Mtok/s");
  bench::PrintRow("on/off tokens/s ratio", ratio, "x");
  bench::PrintRow("overhead", (1.0 - ratio) * 100.0, "%");
  if (ratio < kMinRatio) {
    std::printf("  FAIL: telemetry costs %.1f%% tokens/s (budget: 3%%)\n",
                (1.0 - ratio) * 100.0);
    return 1;
  }
  std::printf("  telemetry overhead within the 3%% budget\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Diagnosis gate: the health monitor (attribution + anomaly detection +
// flight recorder) must be effectively free on the hot path, a pure observer
// (byte-identical batches), sharp (a scripted storage brownout is classified
// io-bound within 5 steps, one bundle dumped), and quiet (a fault-free run
// fires zero anomalies). BENCH_diagnosis.json records the ledger numbers.
// ---------------------------------------------------------------------------

Session::Options DiagnosisSessionOptions() {
  // The telemetry-gate shape (full cached session, every span site live).
  Session::Options options;
  options.corpus = MakeNavitData(11, 2);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 16;
  options.max_seq_len = 1024;
  options.rows_per_file_override = 96;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;
  options.block_cache_bytes = 32 * kMiB;
  return options;
}

int64_t PullStep(Session& session) {
  const int32_t world = session.tree().spec().WorldSize();
  int64_t tokens = 0;
  for (int32_t rank = 0; rank < world; ++rank) {
    Result<RankBatch> batch = session.client(rank).value()->NextBatch();
    MSD_CHECK(batch.ok());
    for (const Microbatch& mb : batch->microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        tokens += static_cast<int64_t>(seq.tokens.size());
      }
    }
  }
  return tokens;
}

double StreamMonitoredTokensPerSec(bool monitor, int64_t steps) {
  // Zero-latency store: compute-bound, so the monitor's per-step cost
  // (tracer snapshot + attribution + detector) is maximally visible.
  Session::Options options = DiagnosisSessionOptions();
  options.health.enabled = monitor;
  Result<std::unique_ptr<Session>> session = Session::Create(options);
  MSD_CHECK(session.ok());
  PullStep(**session);  // warm-up: cache fill + pipeline spin-up
  auto t0 = std::chrono::steady_clock::now();
  int64_t tokens = 0;
  for (int64_t s = 0; s < steps; ++s) {
    tokens += PullStep(**session);
  }
  return static_cast<double>(tokens) / Seconds(t0);
}

// Lightweight structural validity — the unit suite does the strict parse;
// the gate only guards against a truncated or empty dump.
bool LooksLikeJson(const std::string& text) {
  int64_t depth = 0;
  for (char c : text) {
    depth += (c == '{') - (c == '}');
    if (depth < 0) {
      return false;
    }
  }
  return !text.empty() && text.front() == '{' && depth == 0;
}

int RunDiagnosisSmoke() {
  namespace fs = std::filesystem;
  bench::PrintHeader(
      "diagnosis overhead + brownout drill — health monitor on vs off",
      "stall attribution, SLO anomaly detection, and the flight recorder are "
      "read-side observers: same bytes, <= 3% tokens/s, and a 5 ms -> 25 ms "
      "storage brownout is named io-bound within 5 steps with ONE bundle");
  constexpr int kTrials = 5;
  constexpr int64_t kSteps = 8;
  constexpr double kMinRatio = 0.97;
  int failures = 0;

  // Gate 1: overhead, measured as PAIRED trials. Box-level throughput drifts
  // by far more than the 3% budget between trials, so comparing each on-arm
  // against its back-to-back off-arm (and gating on the best pair) cancels
  // the drift: the monitor can only slow a stream down, so if ANY adjacent
  // pair shows >= 0.97x, the true overhead is within budget.
  double best_ratio = 0.0;
  double best_pair_off = 0.0;
  double best_pair_on = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const double off = StreamMonitoredTokensPerSec(false, kSteps);
    const double on = StreamMonitoredTokensPerSec(true, kSteps);
    if (off > 0.0 && on / off > best_ratio) {
      best_ratio = on / off;
      best_pair_off = off;
      best_pair_on = on;
    }
  }
  bench::PrintRow("monitor off (best pair)", best_pair_off / 1e6, "Mtok/s");
  bench::PrintRow("monitor on  (best pair)", best_pair_on / 1e6, "Mtok/s");
  bench::PrintRow("on/off tokens/s ratio (best of 5 pairs)", best_ratio, "x");
  if (best_ratio < kMinRatio) {
    std::printf("  FAIL: the monitor costs %.1f%% tokens/s (budget: 3%%)\n",
                (1.0 - best_ratio) * 100.0);
    ++failures;
  }

  // Gate 2: pure observer — byte-identical batches, monitor on vs off.
  {
    Session::Options with_monitor = DiagnosisSessionOptions();
    with_monitor.health.enabled = true;
    Result<std::unique_ptr<Session>> on = Session::Create(with_monitor);
    Result<std::unique_ptr<Session>> off = Session::Create(DiagnosisSessionOptions());
    MSD_CHECK(on.ok() && off.ok());
    const int32_t world = (*on)->tree().spec().WorldSize();
    int identity_failures = 0;
    for (int64_t s = 0; s < 4; ++s) {
      for (int32_t rank = 0; rank < world; ++rank) {
        RankBatch got = (*on)->client(rank).value()->NextBatch().value();
        RankBatch want = (*off)->client(rank).value()->NextBatch().value();
        identity_failures += CompareBatches(got, want, "monitor-on vs monitor-off");
      }
    }
    if (identity_failures == 0) {
      std::printf("  byte-identity held: monitor-on == monitor-off\n");
    }
    failures += identity_failures;
  }

  // Gate 3: the brownout drill. A remote store at a 5 ms RPC floor serves a
  // healthy baseline, then the floor jumps to 25 ms mid-stream.
  const fs::path recorder_dir =
      fs::temp_directory_path() / "msd_bench_diagnosis_recorder";
  std::error_code ec;
  fs::remove_all(recorder_dir, ec);
  {
    Session::Options options = DiagnosisSessionOptions();
    options.storage_get_latency = 5000;  // 5 ms per backing Get
    options.health.enabled = true;
    options.health.recorder_dir = recorder_dir.string();
    options.health.recorder_min_interval_ms = 60000;  // one bundle, full stop
    options.health.slo.warmup_steps = 4;
    options.health.slo.trigger_after = 2;
    options.health.slo.clear_after = 64;
    Result<std::unique_ptr<Session>> session = Session::Create(options);
    MSD_CHECK(session.ok());
    for (int64_t s = 0; s < 8; ++s) {
      PullStep(**session);
    }
    MSD_CHECK((*session)->remote_store() != nullptr);
    (*session)->remote_store()->set_get_latency(25000);  // the brownout
    int64_t steps_to_verdict = -1;
    for (int64_t s = 0; s < 5; ++s) {
      PullStep(**session);
      if ((*session)->health()->Diagnose().verdict.kind == BottleneckKind::kIoBound) {
        steps_to_verdict = s + 1;
        break;
      }
    }
    for (int64_t s = 0; s < 3; ++s) {
      PullStep(**session);  // let the anomaly confirm and dump
    }
    HealthReport report = (*session)->health()->Diagnose();
    if (steps_to_verdict < 0) {
      std::printf("  FAIL: brownout never classified io-bound within 5 steps\n");
      ++failures;
    } else {
      bench::PrintRow("steps to io-bound verdict", static_cast<double>(steps_to_verdict),
                      "steps");
      bench::PrintRow("verdict confidence", report.verdict.confidence, "");
    }
    if (report.bundles_written != 1) {
      std::printf("  FAIL: expected exactly 1 bundle, recorder wrote %lld\n",
                  static_cast<long long>(report.bundles_written));
      ++failures;
    } else {
      const fs::path bundle = recorder_dir / "bundle-0";
      for (const char* name : {"MANIFEST.json", "trace.json", "verdict.json"}) {
        std::ifstream in(bundle / name, std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        if (!in.is_open() || !LooksLikeJson(content.str())) {
          std::printf("  FAIL: bundle artifact %s missing or malformed\n", name);
          ++failures;
        }
      }
      if (failures == 0) {
        std::printf("  one bundle dumped, manifest + trace + verdict all well-formed\n");
      }
    }
  }
  fs::remove_all(recorder_dir, ec);

  // Gate 4: the fault-free twin stays silent end to end.
  {
    Session::Options options = DiagnosisSessionOptions();
    options.storage_get_latency = 5000;
    options.health.enabled = true;
    options.health.slo.warmup_steps = 4;
    Result<std::unique_ptr<Session>> session = Session::Create(options);
    MSD_CHECK(session.ok());
    for (int64_t s = 0; s < 12; ++s) {
      PullStep(**session);
    }
    HealthReport report = (*session)->health()->Diagnose();
    if (report.triggers_total != 0 || report.bundles_written != 0) {
      std::printf("  FAIL: fault-free run raised %lld trigger(s), %lld bundle(s)\n",
                  static_cast<long long>(report.triggers_total),
                  static_cast<long long>(report.bundles_written));
      ++failures;
    } else {
      std::printf("  fault-free twin: zero anomalies, zero bundles\n");
    }
  }

  if (failures > 0) {
    std::printf("\n%d diagnosis gate failure(s)\n", failures);
    return 1;
  }
  std::printf("  all diagnosis gates held\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Mixture gate: the dynamic mixture schedule plane must pay its way. The
// decode bound (multi-scale batching's enforcement arm) skips pixel decode
// past the pack cap on the long-image corpus — that must show up as >= 1.2x
// delivered payload-bytes/s with byte-identical batches. And a session that
// carries a MixtureSchedule whose single uniform phase reproduces the
// default static mix must stream byte-identically within 3% tokens/s, so
// curriculum bookkeeping costs nothing when it is not re-weighting.
// ---------------------------------------------------------------------------

Session::Options MixtureImageOptions(bool bound) {
  // coyo700m spreads patch counts across 1k..32k per image; the 512-token
  // pack cap means almost every decoded patch past 512 is thrown away at
  // packing time — exactly the waste the decode bound exists to skip.
  Session::Options options;
  options.corpus = MakeCoyo700m(11);
  options.spec = {.dp = 2, .pp = 1, .cp = 1, .tp = 1};
  options.num_microbatches = 2;
  options.samples_per_step = 96;
  options.max_seq_len = 256;
  options.rows_per_file_override = 120;
  options.loader_workers = 1;
  options.prefetch_depth = 2;
  options.row_group_bytes = 8 * kKiB;
  options.block_cache_bytes = 32 * kMiB;
  // Vanilla strategy: the gate measures the decode bound, not the cost-model
  // balancer — planning must not dominate the produce path.
  options.strategy = Session::StrategyKind::kVanilla;
  // Deferred decode puts ImageDecode on the constructor's serialized produce
  // path (the transformation-reordering deployment shape), so the bound's
  // savings land on the timed critical path instead of being absorbed by
  // parallel loader actors. The bound still reshapes packing (the clamp feeds
  // first-fit-decreasing), so each arm is held byte-identical to the scalar
  // reference plane under the same bound, not to the other arm.
  options.defer_image_decode = true;
  options.bound_pixel_decode = bound;
  return options;
}

double StreamImagePayloadBytesPerSec(bool bound, int64_t steps) {
  Result<std::unique_ptr<Session>> session = Session::Create(MixtureImageOptions(bound));
  MSD_CHECK(session.ok());
  const int32_t world = (*session)->tree().spec().WorldSize();
  auto pull_bytes = [&session, world]() {
    int64_t bytes = 0;
    for (int32_t rank = 0; rank < world; ++rank) {
      Result<RankBatch> batch = (*session)->client(rank).value()->NextBatch();
      MSD_CHECK(batch.ok());
      bytes += batch->payload_bytes;
    }
    return bytes;
  };
  pull_bytes();  // warm-up: cache fill + pipeline spin-up
  auto t0 = std::chrono::steady_clock::now();
  int64_t bytes = 0;
  for (int64_t s = 0; s < steps; ++s) {
    bytes += pull_bytes();
  }
  return static_cast<double>(bytes) / Seconds(t0);
}

Session::Options ScheduledSessionOptions(bool schedule) {
  // The telemetry-gate shape. The uniform phase weights match
  // CorpusSpec::UniformWeights() bit-exactly (1/n each), so the schedule-on
  // stream consumes the identical RNG sequence as the static default and the
  // ratio isolates pure schedule bookkeeping.
  Session::Options options = DiagnosisSessionOptions();
  if (schedule) {
    MixtureSchedule::Options uniform;
    uniform.phases = {{.first_step = 0, .weights = {0.5, 0.5}, .temperature = 1.0}};
    options.mixture_schedule = std::make_shared<MixtureSchedule>(uniform);
  }
  return options;
}

double StreamScheduledTokensPerSec(bool schedule, int64_t steps) {
  Result<std::unique_ptr<Session>> session = Session::Create(ScheduledSessionOptions(schedule));
  MSD_CHECK(session.ok());
  PullStep(**session);  // warm-up: cache fill + pipeline spin-up
  auto t0 = std::chrono::steady_clock::now();
  int64_t tokens = 0;
  for (int64_t s = 0; s < steps; ++s) {
    tokens += PullStep(**session);
  }
  return static_cast<double>(tokens) / Seconds(t0);
}

int RunMixtureSmoke() {
  bench::PrintHeader(
      "mixture schedule + decode bound — curriculum plane on vs off",
      "multi-scale batching's decode bound must convert skipped pixel decode "
      "into delivered throughput, and schedule bookkeeping must be free when "
      "the curriculum matches the static default — byte-identical both ways");
  constexpr int kTrials = 5;
  constexpr int64_t kSteps = 6;
  constexpr double kMinDecodeSpeedup = 1.2;
  constexpr double kMinScheduleRatio = 0.97;
  int failures = 0;

  // Gate 1: decode-bound throughput on the long-image corpus. PAIRED trials:
  // box-level drift between trials swamps the margin over the bar, so each
  // bounded arm is compared against its back-to-back unbounded arm and the
  // gate takes the best pair — within-pair drift is all that is left.
  double decode_speedup = 0.0;
  double best_pair_unbound = 0.0;
  double best_pair_bound = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const double unbound = StreamImagePayloadBytesPerSec(false, kSteps);
    const double bound = StreamImagePayloadBytesPerSec(true, kSteps);
    if (unbound > 0.0 && bound / unbound > decode_speedup) {
      decode_speedup = bound / unbound;
      best_pair_unbound = unbound;
      best_pair_bound = bound;
    }
  }
  bench::PrintRow("unbounded decode (best pair)", best_pair_unbound / 1e6, "MB/s");
  bench::PrintRow("bounded decode  (best pair)", best_pair_bound / 1e6, "MB/s");
  bench::PrintRow("decode-bound payload speedup (best of 5 pairs)", decode_speedup, "x");
  if (decode_speedup < kMinDecodeSpeedup) {
    std::printf("  FAIL: decode bound delivers %.2fx payload-bytes/s (bar: %.1fx)\n",
                decode_speedup, kMinDecodeSpeedup);
    ++failures;
  }

  // Gate 2: the bound changes how much is decoded, never what is served —
  // each arm must serve exactly what the scalar reference plane assembles
  // from the same plan and slices under the same decode bound. (On-vs-off
  // identity is NOT the invariant: the clamp flows into packing metadata, so
  // the two arms legitimately pack differently.)
  for (bool bound : {false, true}) {
    const char* label = bound ? "bounded decode vs reference" : "unbounded decode vs reference";
    Session::Options options = MixtureImageOptions(bound);
    Result<std::unique_ptr<Session>> session = Session::Create(options);
    MSD_CHECK(session.ok());
    const ParallelismSpec& spec = options.spec;
    ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, options.num_microbatches);
    const int32_t world = spec.WorldSize();
    int identity_failures = 0;
    for (int64_t s = 0; s < 3; ++s) {
      Result<PrefetchPipeline::Capture> capture = (*session)->CaptureStep(s);
      MSD_CHECK(capture.ok());
      std::vector<RankBatch> streamed(static_cast<size_t>(world));
      for (int32_t rank = 0; rank < world; ++rank) {
        streamed[static_cast<size_t>(rank)] = (*session)->client(rank).value()->NextBatch().value();
      }
      for (int32_t dp = 0; dp < spec.dp; ++dp) {
        DataConstructorConfig config;
        config.constructor_id = dp;
        config.max_seq_len = options.max_seq_len;
        config.max_decode_patches = bound ? options.max_seq_len : 0;
        ReferenceDataPlane reference(config, &tree);
        MSD_CHECK(reference
                      .BuildStep(capture->plan,
                                 capture->slices_per_constructor[static_cast<size_t>(dp)])
                      .ok());
        for (int32_t rank = 0; rank < world; ++rank) {
          if (CoordOfRank(spec, rank).dp != dp) {
            continue;
          }
          RankBatch want = reference.GetBatch(rank, capture->plan.step).value();
          identity_failures +=
              CompareBatches(streamed[static_cast<size_t>(rank)], want, label);
        }
      }
    }
    if (identity_failures == 0) {
      std::printf("  byte-identity held: %s\n", label);
    }
    failures += identity_failures;
  }

  // Gate 3: schedule bookkeeping overhead, uniform curriculum vs static
  // default (identical streams, so the ratio is pure bookkeeping cost).
  // PAIRED trials, like the diagnosis gate: box-level drift between trials
  // exceeds the 3% budget, and the schedule can only slow a stream down, so
  // if ANY adjacent off/on pair meets the bar the true overhead is in budget.
  double schedule_ratio = 0.0;
  double best_pair_off = 0.0;
  double best_pair_on = 0.0;
  for (int t = 0; t < 5; ++t) {
    const double off = StreamScheduledTokensPerSec(false, 8);
    const double on = StreamScheduledTokensPerSec(true, 8);
    if (off > 0.0 && on / off > schedule_ratio) {
      schedule_ratio = on / off;
      best_pair_off = off;
      best_pair_on = on;
    }
  }
  bench::PrintRow("schedule off (best pair)", best_pair_off / 1e6, "Mtok/s");
  bench::PrintRow("schedule on  (best pair)", best_pair_on / 1e6, "Mtok/s");
  bench::PrintRow("on/off tokens/s ratio (best of 5 pairs)", schedule_ratio, "x");
  if (schedule_ratio < kMinScheduleRatio) {
    std::printf("  FAIL: schedule bookkeeping costs %.1f%% tokens/s (budget: 3%%)\n",
                (1.0 - schedule_ratio) * 100.0);
    ++failures;
  }

  // Gate 4: the uniform curriculum is a true no-op — byte-identical to the
  // schedule-free stream, while the status surface still reports progress.
  {
    Result<std::unique_ptr<Session>> on = Session::Create(ScheduledSessionOptions(true));
    Result<std::unique_ptr<Session>> off = Session::Create(ScheduledSessionOptions(false));
    MSD_CHECK(on.ok() && off.ok());
    const int32_t world = (*on)->tree().spec().WorldSize();
    int identity_failures = 0;
    for (int64_t s = 0; s < 4; ++s) {
      for (int32_t rank = 0; rank < world; ++rank) {
        RankBatch got = (*on)->client(rank).value()->NextBatch().value();
        RankBatch want = (*off)->client(rank).value()->NextBatch().value();
        identity_failures += CompareBatches(got, want, "schedule-on vs schedule-off");
      }
    }
    if (identity_failures == 0) {
      std::printf("  byte-identity held: uniform curriculum == static default\n");
    }
    failures += identity_failures;
    const Planner::MixtureStatus status = (*on)->LastMixtureStatus();
    if (status.step < 0 || status.phase != 0 || status.effective_weights.size() != 2) {
      std::printf("  FAIL: mixture status surface stale (step=%lld phase=%d weights=%zu)\n",
                  static_cast<long long>(status.step), status.phase,
                  status.effective_weights.size());
      ++failures;
    }
  }

  if (failures > 0) {
    std::printf("\n%d mixture gate failure(s)\n", failures);
    return 1;
  }
  std::printf("  all mixture gates held\n");
  return 0;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  bool smoke = false;
  bool telemetry_smoke = false;
  bool diagnosis_smoke = false;
  bool mixture_smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
    telemetry_smoke = telemetry_smoke || std::strcmp(argv[i], "--telemetry-smoke") == 0;
    diagnosis_smoke = diagnosis_smoke || std::strcmp(argv[i], "--diagnosis-smoke") == 0;
    mixture_smoke = mixture_smoke || std::strcmp(argv[i], "--mixture-smoke") == 0;
  }
  if (telemetry_smoke) {
    return msd::RunTelemetrySmoke();
  }
  if (diagnosis_smoke) {
    return msd::RunDiagnosisSmoke();
  }
  if (mixture_smoke) {
    return msd::RunMixtureSmoke();
  }
  using msd::Scenario;
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back({"smoke (2 sources, dp=1)", 2,
                         {.dp = 1, .pp = 1, .cp = 2, .tp = 2}, 1024, 24, 2, false});
    scenarios.push_back({"smoke image (2 sources, dp=1 cp=2 tp=2)", 2,
                         {.dp = 1, .pp = 1, .cp = 2, .tp = 2}, 1024, 24, 2, true});
  } else {
    scenarios.push_back({"small (2 sources, dp=1 cp=1)", 2,
                         {.dp = 1, .pp = 1, .cp = 1, .tp = 1}, 1024, 32, 2, false});
    scenarios.push_back({"medium (4 sources, dp=2 cp=2)", 4,
                         {.dp = 2, .pp = 1, .cp = 2, .tp = 1}, 2048, 32, 2, false});
    scenarios.push_back({"large (8 sources, dp=4 cp=2 pp=2 tp=2)", 8,
                         {.dp = 4, .pp = 2, .cp = 2, .tp = 2}, 4096, 48, 4, false});
    scenarios.push_back({"image-heavy (4 sources, dp=2 cp=2 tp=2)", 4,
                         {.dp = 2, .pp = 1, .cp = 2, .tp = 2}, 2048, 32, 2, true});
  }
  int iters = smoke ? 2 : 20;
  int failures = 0;
  for (const Scenario& s : scenarios) {
    failures += msd::RunScenario(s, iters, smoke);
  }
  if (failures > 0) {
    std::printf("\n%d data-plane invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall data-plane invariants held\n");
  return 0;
}
