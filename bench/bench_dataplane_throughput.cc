// Data-plane throughput: zero-copy loader->constructor->rank-batch pipeline
// versus the scalar reference plane (src/constructor/reference_assembly.h,
// the frozen pre-refactor implementation).
//
// For each scenario the harness materializes a synthetic corpus, opens one
// Source Loader per source, builds a plan covering every buffered sample,
// pops the slices once (shared by both planes), then repeatedly runs
// build-step + get-batch for every rank of the world and reports:
//   - tokens/sec through each plane (the paper's "data path must never be
//     the bottleneck" quantity),
//   - bytes of token payload materialized per iteration (TokenPlaneStats),
//   - Sample deep copies per iteration (zero on the zero-copy plane),
//   - staged re-broadcast payload for the mesh (selective broadcasting).
//
// `--smoke` runs the smallest scenario with 2 iterations and exits nonzero
// if the zero-copy plane ever copies a Sample or diverges from the reference
// payload accounting — wired into ctest so the bench can never silently rot.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/constructor/reference_assembly.h"
#include "src/loader/source_loader.h"
#include "src/mesh/selective_broadcast.h"

namespace msd {
namespace {

struct Scenario {
  const char* label;
  int num_sources;
  ParallelismSpec spec;
  int32_t max_seq_len;
  int64_t rows_per_file;
  int32_t num_microbatches;
};

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct PlaneResult {
  double tokens_per_sec = 0.0;
  int64_t tokens_per_iter = 0;
  int64_t payload_bytes = 0;
  int64_t materialized_per_iter = 0;
  int64_t sample_copies_per_iter = 0;
};

// One full pass: build every constructor's step from (a cheap alias copy of)
// its slices, then fetch every rank's batch. Returns tokens and payload
// bytes delivered.
template <typename Plane, typename Slices>
std::pair<int64_t, int64_t> RunPass(std::vector<std::unique_ptr<Plane>>& planes,
                                    const LoadingPlan& plan, const Slices& slices_per_dp,
                                    const ParallelismSpec& spec) {
  int64_t tokens = 0;
  int64_t payload = 0;
  for (size_t dp = 0; dp < planes.size(); ++dp) {
    Status built = planes[dp]->BuildStep(plan, slices_per_dp[dp]);
    MSD_CHECK(built.ok());
  }
  for (int32_t rank = 0; rank < spec.WorldSize(); ++rank) {
    int32_t dp = CoordOfRank(spec, rank).dp;
    Result<RankBatch> batch = planes[static_cast<size_t>(dp)]->GetBatch(rank, plan.step);
    MSD_CHECK(batch.ok());
    payload += batch->payload_bytes;
    for (const Microbatch& mb : batch->microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        tokens += static_cast<int64_t>(seq.tokens.size());
      }
    }
  }
  return {tokens, payload};
}

template <typename Plane, typename MakePlane, typename Slices>
PlaneResult MeasurePlane(MakePlane make_plane, const LoadingPlan& plan,
                         const Slices& slices_per_dp, const ParallelismSpec& spec,
                         int iters) {
  std::vector<std::unique_ptr<Plane>> planes;
  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    planes.push_back(make_plane(dp));
  }
  // Warm-up pass (first-touch allocations), then measured passes.
  RunPass(planes, plan, slices_per_dp, spec);
  ResetSampleCopyCount();
  TokenPlaneStats::Reset();
  auto t0 = std::chrono::steady_clock::now();
  int64_t tokens = 0;
  int64_t payload = 0;
  for (int i = 0; i < iters; ++i) {
    auto [t, p] = RunPass(planes, plan, slices_per_dp, spec);
    tokens += t;
    payload = p;
  }
  double elapsed = Seconds(t0);
  PlaneResult r;
  r.tokens_per_iter = tokens / iters;
  r.tokens_per_sec = static_cast<double>(tokens) / elapsed;
  r.payload_bytes = payload;
  r.materialized_per_iter =
      TokenPlaneStats::MaterializedBytes().load(std::memory_order_relaxed) / iters;
  r.sample_copies_per_iter = SampleCopyCount() / iters;
  return r;
}

// The zero-copy constructor consumes its slices; hand it a fresh alias copy
// (shared_ptr bumps, no payload copies) each pass.
struct ZeroCopyAdapter {
  explicit ZeroCopyAdapter(DataConstructorConfig config, const ClientPlaceTree* tree,
                           MemoryAccountant* memory)
      : dc(config, tree, memory) {}
  Status BuildStep(const LoadingPlan& plan, const std::vector<SampleSlice>& slices) {
    return dc.BuildStep(plan, slices);  // vector copy = refcount bumps only
  }
  Result<RankBatch> GetBatch(int32_t rank, int64_t step) { return dc.GetBatch(rank, step); }
  DataConstructor dc;
};

int RunScenario(const Scenario& s, int iters, bool smoke) {
  bench::PrintHeader(
      std::string("data plane throughput — ") + s.label,
      "the disaggregated loader feeds training without the data path becoming "
      "the bottleneck (zero redundant copies on the hot path)");
  std::printf("  sources=%d mesh={dp=%d pp=%d cp=%d tp=%d} seq_len=%d rows/src=%lld\n",
              s.num_sources, s.spec.dp, s.spec.pp, s.spec.cp, s.spec.tp, s.max_seq_len,
              static_cast<long long>(s.rows_per_file));

  MemoryAccountant memory;
  ObjectStore store(&memory);
  CorpusSpec corpus = MakeNavitData(11, s.num_sources);
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(s.spec, s.num_microbatches);

  // Materialize + open one loader per source.
  std::vector<std::unique_ptr<SourceLoader>> loaders;
  for (SourceSpec& spec : corpus.sources) {
    spec.num_files = 1;
    spec.rows_per_file = s.rows_per_file;
    Status wrote = WriteSourceFiles(store, spec, 11, {.target_row_group_bytes = 256 * kKiB});
    MSD_CHECK(wrote.ok());
    SourceLoaderConfig config;
    config.loader_id = spec.source_id;
    config.spec = spec;
    config.files = {SourceFileName(spec, 0)};
    config.num_workers = 1;
    config.buffer_low_watermark = static_cast<size_t>(s.rows_per_file) * 2;
    auto loader = std::make_unique<SourceLoader>(config, &store, &memory);
    MSD_CHECK(loader->Open().ok());
    loaders.push_back(std::move(loader));
  }

  // Plan: round-robin every buffered sample over (bucket, microbatch) bins.
  LoadingPlan plan;
  plan.step = 0;
  plan.axis = Axis::kDP;
  plan.num_buckets = tree.NumBuckets(Axis::kDP);
  plan.num_microbatches = s.num_microbatches;
  int32_t i = 0;
  for (auto& loader : loaders) {
    for (const SampleMeta& meta : loader->SummaryBuffer().samples) {
      SliceAssignment a;
      a.sample_id = meta.sample_id;
      a.source_id = meta.source_id;
      a.loader_id = loader->config().loader_id;
      a.bucket = i % plan.num_buckets;
      a.microbatch = (i / plan.num_buckets) % plan.num_microbatches;
      a.total_tokens = meta.TotalTokens();
      a.image_tokens = meta.image_tokens;
      a.cost = a.total_tokens;
      plan.assignments.push_back(a);
      ++i;
    }
  }

  // Pop every constructor's slices once (timed; both planes then share them).
  DataConstructorConfig dc_config;
  dc_config.max_seq_len = s.max_seq_len;
  std::vector<std::vector<SampleSlice>> slices_per_dp(static_cast<size_t>(s.spec.dp));
  auto pop_t0 = std::chrono::steady_clock::now();
  int64_t popped = 0;
  for (int32_t dp = 0; dp < s.spec.dp; ++dp) {
    dc_config.constructor_id = dp;
    DataConstructor owned_probe(dc_config, &tree, &memory);
    std::vector<int32_t> owned = owned_probe.OwnedBuckets(plan);
    for (auto& loader : loaders) {
      std::vector<uint64_t> ids;
      for (const SliceAssignment& a : plan.assignments) {
        bool mine = false;
        for (int32_t b : owned) {
          mine = mine || (b == a.bucket);
        }
        if (mine && a.loader_id == loader->config().loader_id) {
          ids.push_back(a.sample_id);
        }
      }
      if (ids.empty()) {
        continue;
      }
      Result<SampleSlice> slice = loader->PopSamples(plan.step, ids);
      MSD_CHECK(slice.ok());
      popped += static_cast<int64_t>(slice->samples.size());
      slices_per_dp[static_cast<size_t>(dp)].push_back(std::move(slice.value()));
    }
  }
  double pop_s = Seconds(pop_t0);
  bench::PrintRow("samples popped (single-pass compaction)", static_cast<double>(popped), "");
  bench::PrintRow("pop wall time", pop_s * 1e3, "ms");

  // Measure both planes over identical inputs.
  PlaneResult zero = MeasurePlane<ZeroCopyAdapter>(
      [&](int32_t dp) {
        DataConstructorConfig c = dc_config;
        c.constructor_id = dp;
        return std::make_unique<ZeroCopyAdapter>(c, &tree, &memory);
      },
      plan, slices_per_dp, s.spec, iters);
  PlaneResult ref = MeasurePlane<ReferenceDataPlane>(
      [&](int32_t dp) {
        DataConstructorConfig c = dc_config;
        c.constructor_id = dp;
        return std::make_unique<ReferenceDataPlane>(c, &tree);
      },
      plan, slices_per_dp, s.spec, iters);

  bench::PrintRow("tokens delivered / iteration", static_cast<double>(zero.tokens_per_iter), "");
  bench::PrintRow("zero-copy plane", zero.tokens_per_sec / 1e6, "Mtok/s");
  bench::PrintRow("reference scalar plane", ref.tokens_per_sec / 1e6, "Mtok/s");
  double speedup = zero.tokens_per_sec / ref.tokens_per_sec;
  bench::PrintRow("speedup (zero-copy / reference)", speedup, "x");
  bench::PrintRow("bytes materialized / iter (zero-copy)",
                  static_cast<double>(zero.materialized_per_iter) / 1e6, "MB");
  bench::PrintRow("bytes materialized / iter (reference)",
                  static_cast<double>(ref.materialized_per_iter) / 1e6, "MB");
  bench::PrintRow("Sample deep copies / iter (zero-copy)",
                  static_cast<double>(zero.sample_copies_per_iter), "");
  bench::PrintRow("Sample deep copies / iter (reference)",
                  static_cast<double>(ref.sample_copies_per_iter), "");

  // Staged re-broadcast accounting: only the roots fetch; the per-stage wire
  // bytes are what a deployment would move inside fast intra-group links.
  BroadcastPlan bcast = MakeSelectiveBroadcastPlan(tree, {Axis::kCP, Axis::kTP});
  int64_t per_rank = zero.payload_bytes / std::max(1, s.spec.WorldSize());
  bench::PrintRow("synchronized clients (selective bcast)",
                  static_cast<double>(SynchronizedClients(bcast)), "");
  bench::PrintRow("staged re-broadcast payload",
                  static_cast<double>(TotalShippedBytes(bcast, per_rank) -
                                      static_cast<int64_t>(SynchronizedClients(bcast)) *
                                          per_rank) /
                      1e6,
                  "MB");

  int failures = 0;
  if (zero.sample_copies_per_iter != 0) {
    std::printf("  FAIL: zero-copy plane performed %lld Sample deep copies\n",
                static_cast<long long>(zero.sample_copies_per_iter));
    ++failures;
  }
  if (zero.payload_bytes != ref.payload_bytes) {
    std::printf("  FAIL: payload accounting diverged (%lld vs %lld bytes)\n",
                static_cast<long long>(zero.payload_bytes),
                static_cast<long long>(ref.payload_bytes));
    ++failures;
  }
  if (!smoke && speedup < 2.0) {
    std::printf("  WARN: speedup below the 2x acceptance bar\n");
  }
  return failures;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  using msd::Scenario;
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back({"smoke (2 sources, dp=1)", 2,
                         {.dp = 1, .pp = 1, .cp = 2, .tp = 2}, 1024, 24, 2});
  } else {
    scenarios.push_back({"small (2 sources, dp=1 cp=1)", 2,
                         {.dp = 1, .pp = 1, .cp = 1, .tp = 1}, 1024, 32, 2});
    scenarios.push_back({"medium (4 sources, dp=2 cp=2)", 4,
                         {.dp = 2, .pp = 1, .cp = 2, .tp = 1}, 2048, 32, 2});
    scenarios.push_back({"large (8 sources, dp=4 cp=2 pp=2 tp=2)", 8,
                         {.dp = 4, .pp = 2, .cp = 2, .tp = 2}, 4096, 48, 4});
  }
  int iters = smoke ? 2 : 20;
  int failures = 0;
  for (const Scenario& s : scenarios) {
    failures += msd::RunScenario(s, iters, smoke);
  }
  if (failures > 0) {
    std::printf("\n%d data-plane invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall data-plane invariants held\n");
  return 0;
}
