// Ablation (beyond the paper's figures): multi-level source auto-partitioning
// vs naive equal worker split — the preprocessing makespan (slowest source
// pipeline) determines whether the feeding rate can match training.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/data/transform.h"
#include "src/planner/autoscaler.h"

namespace msd {
namespace {

double Makespan(const std::vector<SourceCostProfile>& profiles,
                const std::vector<int32_t>& workers_per_source, double samples_each) {
  double worst = 0.0;
  for (size_t i = 0; i < profiles.size(); ++i) {
    double t = profiles[i].transform_cost * samples_each /
               std::max(1, workers_per_source[i]);
    worst = std::max(worst, t);
  }
  return worst / 1e6;  // seconds
}

}  // namespace
}  // namespace msd

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Ablation: multi-level auto-partitioning vs equal split",
      "sizing workers by per-source transformation cost removes the worst-case "
      "provisioning bottleneck of Sec. 2.3");

  CorpusSpec corpus = MakeNavitData(11, 306);
  std::vector<SourceCostProfile> profiles;
  Rng rng(3);
  for (const SourceSpec& src : corpus.sources) {
    RunningStat stat;
    for (int i = 0; i < 16; ++i) {
      stat.Add(static_cast<double>(
          SampleTransformLatency(src.DrawMeta(rng, 0), src.transform_cost_multiplier)));
    }
    profiles.push_back({src.source_id, stat.mean(), 0});
  }

  std::printf("\n  %-10s %14s %16s %14s\n", "budget", "equal split", "auto-partition",
              "improvement");
  for (int64_t budget : {612, 1224, 2448}) {
    // Equal split: budget / sources workers each.
    std::vector<int32_t> equal(profiles.size(),
                               std::max<int32_t>(1, static_cast<int32_t>(
                                                        budget / static_cast<int64_t>(
                                                                     profiles.size()))));
    ClusterResources resources;
    resources.total_workers = budget;
    auto partitions =
        AutoPartitionSources(profiles, resources, {.wsrc = 64, .wactor = 8, .num_clusters = 4});
    // Align partition order back to source_id order.
    std::vector<int32_t> tuned(profiles.size(), 1);
    for (const LoaderPartition& p : partitions) {
      tuned[static_cast<size_t>(p.source_id)] = p.TotalWorkers();
    }
    double equal_makespan = Makespan(profiles, equal, 64.0);
    double tuned_makespan = Makespan(profiles, tuned, 64.0);
    std::printf("  %-10lld %13.2fs %15.2fs %13.2fx\n", static_cast<long long>(budget),
                equal_makespan, tuned_makespan, equal_makespan / tuned_makespan);
  }
  return 0;
}
