// Pipeline throughput: streaming per-rank DataClients over the prefetch
// pipeline versus the deprecated lockstep shim (AdvanceStep/GetBatch at
// depth 0), end to end through the public Session API.
//
// Each arm runs the same synthetic training loop — every rank fetches its
// batch and burns a fixed per-token "training compute" budget — and reports
// steady-state tokens/s. The lockstep arm serializes production with
// consumption; the pipelined arms (depths 1, 2, 4) overlap plan+pop+build of
// steps N+1..N+depth with the consumption of step N, which is the paper's
// "the data path must never be the bottleneck" property surfaced at the API.
//
// `--smoke` runs a small scenario and exits nonzero if
//   - the pipelined session copies a Sample anywhere on the hot path, or
//   - batches served at depth 2 are not byte-identical to the lockstep shim.
// Wired into ctest so the streaming path can never silently rot.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/session.h"

namespace msd {
namespace {

struct Scenario {
  const char* label;
  int num_sources;
  ParallelismSpec spec;
  int64_t samples_per_step;
  int64_t rows_per_file;
  int steps;
  int compute_reps;  // per-token training-compute burn per batch
};

Session::Options MakeOptions(const Scenario& s, int32_t depth) {
  Session::Options options;
  options.corpus = MakeNavitData(/*seed=*/13, s.num_sources);
  options.spec = s.spec;
  options.num_microbatches = 2;
  options.samples_per_step = s.samples_per_step;
  options.max_seq_len = 2048;
  options.rows_per_file_override = s.rows_per_file;
  options.loader_workers = 1;
  options.prefetch_depth = depth;
  return options;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// The stand-in for the trainer's forward/backward: a multiply-accumulate
// sweep over the batch's token views. Identical in every arm, so arms differ
// only in how production overlaps this consumption.
std::atomic<int64_t> g_compute_sink{0};

int64_t TrainCompute(const RankBatch& batch, int reps) {
  int64_t acc = 0;
  int64_t tokens = 0;
  for (int r = 0; r < reps; ++r) {
    for (const Microbatch& mb : batch.microbatches) {
      for (const PackedSequence& seq : mb.sequences) {
        int64_t local = 0;
        for (int32_t t : seq.tokens) {
          local += t * 31 + 7;
        }
        acc += local;
        if (r == 0) {
          tokens += static_cast<int64_t>(seq.tokens.size());
        }
      }
    }
  }
  g_compute_sink.fetch_add(acc, std::memory_order_relaxed);  // defeat DCE
  return tokens;
}

struct ArmResult {
  double tokens_per_sec = 0.0;
  int64_t tokens_total = 0;
  int64_t sample_copies = 0;
  int64_t hits = 0;
  int64_t stalls = 0;
  // Per-rank stall histogram (count + total wait): localizes which consumer
  // ranks outran the build-ahead window.
  std::vector<PrefetchPipeline::RankStall> rank_stalls;
};

// Lockstep arm: AdvanceStep serializes plan+pop+build with consumption; the
// per-rank fetch+compute still runs data-parallel, as real trainers would.
ArmResult RunLockstep(const Scenario& s) {
  auto session = Session::Create(MakeOptions(s, /*depth=*/0));
  MSD_CHECK(session.ok());
  const int32_t world = s.spec.WorldSize();
  std::vector<int64_t> tokens(static_cast<size_t>(world), 0);
  ResetSampleCopyCount();
  auto t0 = std::chrono::steady_clock::now();
  for (int step = 0; step < s.steps; ++step) {
    MSD_CHECK((*session)->AdvanceStep().ok());
    std::vector<std::thread> ranks;
    for (int32_t rank = 0; rank < world; ++rank) {
      ranks.emplace_back([&, rank] {
        Result<RankBatch> batch = (*session)->GetBatch(rank);
        MSD_CHECK(batch.ok());
        tokens[static_cast<size_t>(rank)] += TrainCompute(batch.value(), s.compute_reps);
      });
    }
    for (std::thread& t : ranks) {
      t.join();
    }
  }
  double elapsed = Seconds(t0);
  ArmResult r;
  for (int64_t t : tokens) {
    r.tokens_total += t;
  }
  r.tokens_per_sec = static_cast<double>(r.tokens_total) / elapsed;
  r.sample_copies = SampleCopyCount();
  PrefetchPipeline::Stats stats = (*session)->pipeline_stats();
  r.hits = stats.prefetch_hits;
  r.stalls = stats.prefetch_stalls;
  return r;
}

// Pipelined arm: one persistent consumer thread per rank streaming through
// its DataClient while the pipeline builds ahead.
ArmResult RunPipelined(const Scenario& s, int32_t depth) {
  auto session = Session::Create(MakeOptions(s, depth));
  MSD_CHECK(session.ok());
  const int32_t world = s.spec.WorldSize();
  std::vector<int64_t> tokens(static_cast<size_t>(world), 0);
  ResetSampleCopyCount();
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> ranks;
  for (int32_t rank = 0; rank < world; ++rank) {
    DataClient* client = (*session)->client(rank).value();
    ranks.emplace_back([&, client, rank] {
      for (int step = 0; step < s.steps; ++step) {
        Result<RankBatch> batch = client->NextBatch();
        MSD_CHECK(batch.ok());
        tokens[static_cast<size_t>(rank)] += TrainCompute(batch.value(), s.compute_reps);
      }
    });
  }
  for (std::thread& t : ranks) {
    t.join();
  }
  double elapsed = Seconds(t0);
  ArmResult r;
  for (int64_t t : tokens) {
    r.tokens_total += t;
  }
  r.tokens_per_sec = static_cast<double>(r.tokens_total) / elapsed;
  r.sample_copies = SampleCopyCount();
  PrefetchPipeline::Stats stats = (*session)->pipeline_stats();
  r.hits = stats.prefetch_hits;
  r.stalls = stats.prefetch_stalls;
  r.rank_stalls = stats.rank_stalls;
  return r;
}

// Byte-identity gate: every batch of a depth-2 streaming session must equal
// the lockstep shim's, step for step, rank for rank.
int CheckEquivalence(const Scenario& s) {
  auto lockstep = Session::Create(MakeOptions(s, 0));
  auto pipelined = Session::Create(MakeOptions(s, 2));
  MSD_CHECK(lockstep.ok() && pipelined.ok());
  int failures = 0;
  for (int step = 0; step < 2; ++step) {
    MSD_CHECK((*lockstep)->AdvanceStep().ok());
    for (int32_t rank = 0; rank < s.spec.WorldSize(); ++rank) {
      Result<RankBatch> want = (*lockstep)->GetBatch(rank);
      Result<RankBatch> got = (*pipelined)->client(rank).value()->NextBatch();
      MSD_CHECK(want.ok() && got.ok());
      if (!bench::BatchesIdentical(got.value(), want.value())) {
        std::printf("  FAIL: step %d rank %d diverged from the lockstep shim\n", step, rank);
        ++failures;
      }
    }
  }
  return failures;
}

int RunScenario(const Scenario& s, bool smoke) {
  bench::PrintHeader(
      std::string("pipeline throughput — ") + s.label,
      "streaming DataClients hide plan+pop+build behind training compute; the "
      "lockstep shim pays it serially every step");
  std::printf("  sources=%d mesh={dp=%d pp=%d cp=%d tp=%d} samples/step=%lld steps=%d\n",
              s.num_sources, s.spec.dp, s.spec.pp, s.spec.cp, s.spec.tp,
              static_cast<long long>(s.samples_per_step), s.steps);

  ArmResult lockstep = RunLockstep(s);
  bench::PrintRow("lockstep shim (depth 0)", lockstep.tokens_per_sec / 1e6, "Mtok/s");

  int failures = 0;
  double depth2_tokens_per_sec = 0.0;
  for (int32_t depth : {1, 2, 4}) {
    ArmResult arm = RunPipelined(s, depth);
    std::string label = "pipelined DataClient (depth " + std::to_string(depth) + ")";
    bench::PrintRow(label.c_str(), arm.tokens_per_sec / 1e6, "Mtok/s");
    std::printf("      speedup %.2fx, %lld hits / %lld stalls\n",
                arm.tokens_per_sec / lockstep.tokens_per_sec,
                static_cast<long long>(arm.hits), static_cast<long long>(arm.stalls));
    // Per-rank stall histogram: stalled/total pulls and cumulative wait.
    for (size_t rank = 0; rank < arm.rank_stalls.size(); ++rank) {
      const PrefetchPipeline::RankStall& rs = arm.rank_stalls[rank];
      std::printf("        rank %2zu: %lld/%lld stalled, %.2f ms waiting\n", rank,
                  static_cast<long long>(rs.stalls), static_cast<long long>(rs.pulls),
                  rs.wait_ms);
    }
    if (depth == 2) {
      depth2_tokens_per_sec = arm.tokens_per_sec;
    }
    if (arm.sample_copies != 0) {
      std::printf("  FAIL: pipelined arm performed %lld Sample deep copies\n",
                  static_cast<long long>(arm.sample_copies));
      ++failures;
    }
  }
  failures += CheckEquivalence(s);
  if (!smoke && depth2_tokens_per_sec <= lockstep.tokens_per_sec) {
    std::printf("  WARN: depth-2 pipeline did not beat the lockstep shim\n");
  }
  return failures;
}

}  // namespace
}  // namespace msd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
  }
  using msd::Scenario;
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios.push_back({"smoke (4 sources, dp=2)", 4,
                         {.dp = 2, .pp = 1, .cp = 1, .tp = 1}, 16, 128, 4, 4});
  } else {
    scenarios.push_back({"steady state (6 sources, dp=2 cp=2)", 6,
                         {.dp = 2, .pp = 1, .cp = 2, .tp = 1}, 24, 512, 16, 16});
  }
  int failures = 0;
  for (const Scenario& s : scenarios) {
    failures += msd::RunScenario(s, smoke);
  }
  if (failures > 0) {
    std::printf("\n%d pipeline invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("\nall pipeline invariants held\n");
  return 0;
}
