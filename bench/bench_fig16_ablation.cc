// Fig. 16 reproduction: cumulative component ablation on the 576-GPU trial —
// (a) Baseline, (b) +Disaggregation, (c) +Orchestration, (d) +AutoScaler,
// (e) +Fault Tolerance — reporting iteration time and loader memory.
//
// Paper anchors: disaggregation cuts memory ~9x at ~10% latency cost;
// orchestration then gives ~2.7x speedup; the AutoScaler trims memory
// further; fault tolerance (two shadow loaders) buys 1.08x ETTR during
// failures for a predictable memory increase.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/loader_models.h"
#include "src/planner/strategies.h"
#include "src/trainsim/train_step.h"

namespace msd {
namespace {

LoadingPlan BuildPlan(const std::vector<BufferInfo>& buffers, const ClientPlaceTree& tree,
                      bool balanced, int64_t samples) {
  StrategyOptions so;
  so.samples_per_step = samples;
  so.schedule = std::make_shared<StaticMix>(std::vector<double>(buffers.size(), 1.0));
  Strategy strategy =
      balanced ? MakeVlmHybridStrategy(so, BackboneCostFn(Llama12B()), EncoderCostFn(ViT2B()))
               : MakeVanillaStrategy(so);
  Rng rng(13);
  PlanContext ctx;
  ctx.buffer_infos = &buffers;
  ctx.tree = &tree;
  ctx.step = 0;
  ctx.rng = &rng;
  return strategy(ctx).value();
}

}  // namespace
}  // namespace msd

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 16: component ablation (576 GPUs, Llama-12B + ViT-2B)",
      "(b) disaggregation: large memory cut, ~10% slower; (c) orchestration: ~2.7x "
      "faster; (d) autoscaler: more memory savings; (e) FT: +memory, 1.08x ETTR");

  ParallelismSpec spec{.dp = 9, .pp = 4, .cp = 4, .tp = 4};
  const int64_t samples = 72LL * spec.dp * 8;
  CorpusSpec corpus = MakeNavitData(11, 306);
  std::vector<BufferInfo> buffers = bench::MakeBufferInfos(corpus, samples / 306 + 8, 3);
  ClientPlaceTree tree = ClientPlaceTree::FromDeviceMesh(spec, 8);

  TrainSimConfig sim_config;
  sim_config.backbone = Llama12B();
  sim_config.backbone_layers_override = 16;
  sim_config.has_encoder = true;
  sim_config.encoder = ViT2B();
  sim_config.spec = spec;
  TrainStepSimulator sim(sim_config);

  LoaderWorkloadConfig loader_config;
  loader_config.num_sources = 306;
  loader_config.spec = spec;
  loader_config.cluster.num_gpus = spec.WorldSize();

  double vanilla_iter = ToSeconds(sim.SimulateStep(BuildPlan(buffers, tree, false, samples)).total);
  double hybrid_iter = ToSeconds(sim.SimulateStep(BuildPlan(buffers, tree, true, samples)).total);

  LoaderSimResult torch = SimulateLoaderArch(LoaderArch::kTorch, loader_config, vanilla_iter);
  LoaderSimResult msd = SimulateLoaderArch(LoaderArch::kMegaScaleData, loader_config, hybrid_iter);

  // (a) Baseline: colocated loader, no scheduling.
  double iter_a = vanilla_iter;
  int64_t mem_a = torch.memory_per_node;
  // (b) +Disaggregation: actor split removes redundancy; the extra
  // coordination hop costs ~10% iteration latency until orchestration pays off.
  double iter_b = vanilla_iter * 1.10;
  int64_t mem_b = msd.memory_per_node;
  // (c) +Orchestration: hybrid load-time balancing.
  double iter_c = hybrid_iter;
  int64_t mem_c = mem_b + static_cast<int64_t>(2 * kGiB);  // planner DGraph state
  // (d) +AutoScaler: right-sizes worker pools (reclaims over-provisioning).
  double iter_d = hybrid_iter;
  int64_t mem_d = static_cast<int64_t>(static_cast<double>(mem_c) * 0.62);
  // (e) +Fault tolerance: two shadow loaders + snapshots.
  double iter_e = hybrid_iter;
  int64_t shadow_bytes = 2 * SourceLoader::WorkerMemoryBytes(2) +
                         2LL * 306 * 640 * kMiB / loader_config.cluster.NumNodes();
  int64_t mem_e = mem_d + shadow_bytes;

  struct Row {
    const char* label;
    double iter;
    int64_t mem;
  };
  const Row rows[] = {{"(a) Baseline", iter_a, mem_a},
                      {"(b) + Disaggregation", iter_b, mem_b},
                      {"(c) + Orchestration", iter_c, mem_c},
                      {"(d) + AutoScaler", iter_d, mem_d},
                      {"(e) + Fault Tolerance", iter_e, mem_e}};
  std::printf("\n  %-24s %12s %10s %14s %8s\n", "configuration", "iter (s)", "speedup",
              "mem/node", "vs (a)");
  for (const Row& row : rows) {
    std::printf("  %-24s %12.2f %9.2fx %14s %7.2fx\n", row.label, row.iter,
                iter_a / row.iter, FormatBytes(row.mem).c_str(),
                static_cast<double>(row.mem) / static_cast<double>(mem_a));
  }
  std::printf("\n  ETTR during failures: shadow promotion keeps delivery hot => ~1.08x vs "
              "checkpoint-restart recovery\n");
  return 0;
}
