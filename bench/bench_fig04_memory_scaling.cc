// Fig. 4 reproduction: orthogonal memory scaling of a conventional colocated
// dataloader along (a) the number of sources and (b) the number of workers —
// with per-source file-access states dominating (>70%) at moderate batch
// sizes.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/loader_models.h"

namespace {

msd::LoaderWorkloadConfig BaseConfig() {
  msd::LoaderWorkloadConfig config;
  config.spec = {.dp = 4, .pp = 1, .cp = 1, .tp = 1};
  config.cluster.num_gpus = 4;
  return config;
}

}  // namespace

int main() {
  using namespace msd;
  bench::PrintHeader(
      "Fig. 4: orthogonal memory scaling (sources x workers), torch-style loader",
      "memory grows linearly along BOTH axes; source-related memory exceeds 70% of the "
      "total at moderate per-DP batch sizes");

  std::printf("\n(a) scale by source count (workers fixed at 4)\n");
  std::printf("  %8s %16s %18s\n", "sources", "mem/node", "source-state %");
  for (int sources : {8, 16, 32, 64, 128, 256, 512}) {
    LoaderWorkloadConfig config = BaseConfig();
    config.num_sources = sources;
    LoaderSimResult with = SimulateLoaderArch(LoaderArch::kTorch, config, 30.0);
    LoaderWorkloadConfig none = config;
    none.num_sources = 0;
    LoaderSimResult without = SimulateLoaderArch(LoaderArch::kTorch, none, 30.0);
    double state_fraction =
        1.0 - static_cast<double>(without.memory_per_node) /
                  static_cast<double>(with.memory_per_node);
    std::printf("  %8d %16s %17.1f%%\n", sources,
                FormatBytes(with.memory_per_node).c_str(), state_fraction * 100.0);
  }

  std::printf("\n(b) scale by worker count (306 sources fixed)\n");
  std::printf("  %8s %16s\n", "workers", "mem/node");
  for (int workers : {1, 2, 4, 8, 16}) {
    LoaderWorkloadConfig config = BaseConfig();
    config.num_sources = 306;
    config.workers_per_rank = workers;
    LoaderSimResult r = SimulateLoaderArch(LoaderArch::kTorch, config, 30.0);
    std::printf("  %8d %16s\n", workers, FormatBytes(r.memory_per_node).c_str());
  }
  return 0;
}
