#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/status.h"

namespace msd {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Pow2Histogram::Pow2Histogram(int64_t min_value, int64_t max_value) {
  MSD_CHECK(min_value > 0 && max_value >= min_value);
  for (int64_t b = min_value; b < max_value; b *= 2) {
    bounds_.push_back(b);
  }
  bounds_.push_back(max_value);
  counts_.assign(bounds_.size(), 0.0);
  weights_.assign(bounds_.size(), 0.0);
}

size_t Pow2Histogram::BucketIndex(int64_t value) const {
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      return i;
    }
  }
  return bounds_.size() - 1;
}

void Pow2Histogram::Add(int64_t value, double weight) {
  size_t idx = BucketIndex(value);
  counts_[idx] += 1.0;
  weights_[idx] += weight;
  total_count_ += 1.0;
  total_weight_ += weight;
}

std::vector<double> Pow2Histogram::CountFractions() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_count_ > 0.0) {
    for (size_t i = 0; i < counts_.size(); ++i) {
      out[i] = counts_[i] / total_count_;
    }
  }
  return out;
}

std::vector<double> Pow2Histogram::WeightFractions() const {
  std::vector<double> out(weights_.size(), 0.0);
  if (total_weight_ > 0.0) {
    for (size_t i = 0; i < weights_.size(); ++i) {
      out[i] = weights_[i] / total_weight_;
    }
  }
  return out;
}

std::string Pow2Histogram::ToTable(const std::string& label) const {
  std::string out = label + "\n";
  auto cf = CountFractions();
  auto wf = WeightFractions();
  char line[160];
  for (size_t i = 0; i < bounds_.size(); ++i) {
    std::snprintf(line, sizeof(line), "  <=%-8lld samples %6.2f%%  tokens %6.2f%%\n",
                  static_cast<long long>(bounds_[i]), cf[i] * 100.0, wf[i] * 100.0);
    out += line;
  }
  return out;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::Quantile(double q) const {
  MSD_CHECK(!values_.empty());
  MSD_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  double pos = q * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::Curve(int points) const {
  MSD_CHECK(points >= 2);
  std::vector<std::pair<double, double>> out;
  out.reserve(static_cast<size_t>(points));
  for (int i = 0; i < points; ++i) {
    double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(Quantile(q), q);
  }
  return out;
}

std::string FormatRow(const std::vector<double>& values, int precision) {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, values[i]);
    if (i > 0) {
      out += " | ";
    }
    out += buf;
  }
  return out;
}

}  // namespace msd
