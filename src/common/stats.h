// Streaming statistics, histograms, and empirical CDFs used by the benches.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msd {

// Welford-style streaming mean/variance/min/max.
class RunningStat {
 public:
  void Add(double x);
  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed power-of-two bucketed histogram (buckets: [1,2), [2,4), ... like Fig. 2's
// sequence-length axis 16, 32, 64, ..., 32k).
class Pow2Histogram {
 public:
  // Buckets cover [min_value, max_value]; values are clamped into range.
  Pow2Histogram(int64_t min_value, int64_t max_value);

  void Add(int64_t value, double weight = 1.0);

  // Bucket upper bounds (inclusive), e.g. 16, 32, 64, ...
  const std::vector<int64_t>& bounds() const { return bounds_; }
  // Fraction of total count per bucket.
  std::vector<double> CountFractions() const;
  // Fraction of total weight per bucket (weight = token counts for Fig. 2 pies).
  std::vector<double> WeightFractions() const;
  double total_count() const { return total_count_; }
  double total_weight() const { return total_weight_; }

  // "bucket<=64: 18.0% samples / 9.3% weight" rows.
  std::string ToTable(const std::string& label) const;

 private:
  size_t BucketIndex(int64_t value) const;

  std::vector<int64_t> bounds_;
  std::vector<double> counts_;
  std::vector<double> weights_;
  double total_count_ = 0.0;
  double total_weight_ = 0.0;
};

// Exact empirical CDF over stored samples (fine for <=1e6 points).
class EmpiricalCdf {
 public:
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;  // a sample after a lazy sort must invalidate the order
  }
  // Quantile in [0,1]; requires at least one sample.
  double Quantile(double q) const;
  size_t size() const { return values_.size(); }
  // Evenly spaced (value, cumulative probability) pairs for printing.
  std::vector<std::pair<double, double>> Curve(int points) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

// Formats a row of doubles with fixed precision, pipe-separated (bench output).
std::string FormatRow(const std::vector<double>& values, int precision = 2);

}  // namespace msd

#endif  // SRC_COMMON_STATS_H_
