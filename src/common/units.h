// Byte/time unit constants and human-readable formatting.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace msd {

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;
inline constexpr int64_t kTiB = 1024 * kGiB;

// Simulated time is expressed in microseconds throughout the repository.
using SimTime = int64_t;
inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// "1.50 GiB", "312.00 MiB", ...
std::string FormatBytes(int64_t bytes);
// "12.34 s", "56.7 ms", "890 us".
std::string FormatSimTime(SimTime t);
// Seconds as a double, for arithmetic on reported values.
inline double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }
inline SimTime FromSeconds(double s) { return static_cast<SimTime>(s * kSecond); }

}  // namespace msd

#endif  // SRC_COMMON_UNITS_H_
