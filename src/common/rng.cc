#include "src/common/rng.h"

#include <algorithm>

namespace msd {

int64_t Rng::Zipf(int64_t n, double s) {
  MSD_CHECK(n > 0);
  // Rejection-free inverse-CDF on the fly; acceptable for small n.
  double norm = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    norm += 1.0 / std::pow(static_cast<double>(k), s);
  }
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= u) {
      return k - 1;
    }
  }
  return n - 1;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MSD_CHECK(w >= 0.0);
    total += w;
  }
  MSD_CHECK(total > 0.0);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= u) {
      return i;
    }
  }
  return weights.size() - 1;
}

CategoricalTable::CategoricalTable(const std::vector<double>& weights) { Reset(weights); }

void CategoricalTable::Reset(const std::vector<double>& weights) {
  cdf_.clear();
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    MSD_CHECK(w >= 0.0);
    acc += w;
    cdf_.push_back(acc);
  }
  MSD_CHECK(acc > 0.0);
  for (double& c : cdf_) {
    c /= acc;
  }
}

size_t CategoricalTable::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace msd
