#include "src/common/units.h"

#include <cstdio>

namespace msd {

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  double b = static_cast<double>(bytes);
  if (bytes >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.2f TiB", b / kTiB);
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string FormatSimTime(SimTime t) {
  char buf[64];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(t) / kSecond);
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", static_cast<double>(t) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace msd
