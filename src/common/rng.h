// Deterministic PCG32 RNG plus the distributions the synthetic workloads need.
//
// All randomness in the repository flows through Rng so experiments are
// reproducible from a single seed (required for differential-checkpoint replay).
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace msd {

// PCG32 (O'Neill 2014): small, fast, statistically strong enough for workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    state_ = 0;
    NextU32();
    state_ += seed;
    NextU32();
  }

  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + 1442695040888963407ULL;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18U) ^ old) >> 27U);
    uint32_t rot = static_cast<uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  uint64_t NextU64() { return (static_cast<uint64_t>(NextU32()) << 32) | NextU32(); }

  // Uniform double in [0, 1).
  double NextDouble() { return NextU32() * (1.0 / 4294967296.0); }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MSD_CHECK(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(NextU64() % range);
  }

  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-12) {
      u1 = 1e-12;
    }
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
  }

  // Log-normal: exp(Normal(mu, sigma)). Models skewed token-length distributions.
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  // Exponential with the given rate (lambda).
  double Exponential(double rate) {
    double u = NextDouble();
    if (u < 1e-12) {
      u = 1e-12;
    }
    return -std::log(u) / rate;
  }

  // Zipf-like rank sampler over [0, n): P(k) ~ 1/(k+1)^s. Uses precomputed CDF
  // when called through ZipfTable; this direct version is O(n) setup-free only
  // for small n so prefer ZipfTable for hot paths.
  int64_t Zipf(int64_t n, double s);

  // Samples an index proportionally to non-negative weights. Requires sum > 0.
  size_t Categorical(const std::vector<double>& weights);

  // Checkpointing: PCG32's full generator state is a single u64, so saving
  // and restoring it replays the exact draw sequence (differential
  // checkpointing and job resume both rely on this).
  uint64_t state() const { return state_; }
  void set_state(uint64_t state) { state_ = state; }

 private:
  uint64_t state_ = 0;
};

// Precomputed categorical/Zipf sampler for repeated draws.
class CategoricalTable {
 public:
  explicit CategoricalTable(const std::vector<double>& weights);

  // Rebuilds the cumulative table in place (used when mixing ratios change).
  void Reset(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace msd

#endif  // SRC_COMMON_RNG_H_
