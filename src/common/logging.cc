#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <utility>

namespace msd {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;
LogSink g_log_sink;  // guarded by g_log_mutex; empty = stderr

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_sink = std::move(sink);
}

void LogV(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_log_sink) {
    g_log_sink(level, file, line, body);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line, body);
}

}  // namespace msd
