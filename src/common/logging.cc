#include "src/common/logging.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <utility>

namespace msd {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;
LogSink g_log_sink;                // guarded by g_log_mutex; empty = stderr
std::vector<LogRing*> g_log_taps;  // guarded by g_log_mutex

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// MSD_LOG_WARN_EVERY_N site registry. Sites are function-local statics —
// process lifetime, registered exactly once — so the registry only ever
// grows and holds raw pointers safely. Its own mutex (not g_log_mutex):
// registration happens on the first hit of a site, possibly while another
// thread is mid-LogV.
std::mutex g_site_mutex;
std::vector<const LogSiteCounter*>& Sites() {
  static std::vector<const LogSiteCounter*>* sites = new std::vector<const LogSiteCounter*>();
  return *sites;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_sink = std::move(sink);
}

void AttachLogRing(LogRing* ring) {
  if (ring == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_taps.push_back(ring);
}

void DetachLogRing(LogRing* ring) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_taps.erase(std::remove(g_log_taps.begin(), g_log_taps.end(), ring), g_log_taps.end());
}

void LogV(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  for (LogRing* tap : g_log_taps) {
    tap->AppendFormatted(level, file, line, body);
  }
  if (g_log_sink) {
    g_log_sink(level, file, line, body);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line, body);
}

LogRing::LogRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

LogRing::~LogRing() {
  // A ring destroyed while still attached would leave a dangling tap; detach
  // defensively (no-op when the owner already did).
  DetachLogRing(this);
}

void LogRing::Append(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(line));
  } else {
    ring_[pos_] = std::move(line);
    pos_ = (pos_ + 1) % capacity_;
  }
  ++appended_;
}

void LogRing::AppendFormatted(LogLevel level, const char* file, int line, const char* message) {
  std::string formatted;
  formatted.reserve(std::strlen(message) + 32);
  formatted += '[';
  formatted += LevelTag(level);
  formatted += ' ';
  formatted += Basename(file);
  formatted += ':';
  formatted += std::to_string(line);
  formatted += "] ";
  formatted += message;
  Append(std::move(formatted));
}

int64_t LogRing::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

int64_t LogRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_ > static_cast<int64_t>(capacity_)
             ? appended_ - static_cast<int64_t>(capacity_)
             : 0;
}

std::vector<std::string> LogRing::Tail() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(ring_.size());
  // Oldest first: once full, pos_ is the oldest entry.
  const size_t start = ring_.size() < capacity_ ? 0 : pos_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

LogSiteCounter::LogSiteCounter(const char* file, int line) : file_(file), line_(line) {
  std::lock_guard<std::mutex> lock(g_site_mutex);
  Sites().push_back(this);
}

int64_t SuppressedLogLines() {
  std::lock_guard<std::mutex> lock(g_site_mutex);
  int64_t total = 0;
  for (const LogSiteCounter* site : Sites()) {
    total += site->suppressed();
  }
  return total;
}

std::vector<SuppressedLogSite> SuppressedLogSites() {
  std::lock_guard<std::mutex> lock(g_site_mutex);
  std::vector<SuppressedLogSite> out;
  out.reserve(Sites().size());
  for (const LogSiteCounter* site : Sites()) {
    SuppressedLogSite s;
    s.file = site->file();
    s.line = site->line();
    s.suppressed = site->suppressed();
    out.push_back(s);
  }
  return out;
}

}  // namespace msd
