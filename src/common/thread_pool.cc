#include "src/common/thread_pool.h"

namespace msd {

ThreadPool::ThreadPool(size_t num_threads) {
  MSD_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  Task t;
  t.fn = std::move(task);
  std::future<void> fut = t.done.get_future();
  bool pushed = queue_.Push(std::move(t));
  MSD_CHECK(pushed);
  return fut;
}

void ThreadPool::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::optional<Task> task = queue_.Pop();
    if (!task.has_value()) {
      return;
    }
    task->fn();
    task->done.set_value();
  }
}

}  // namespace msd
