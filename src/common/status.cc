#include "src/common/status.h"

namespace msd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "FATAL %s:%d: MSD_CHECK(%s) failed\n", file, line, expr);
  std::abort();
}

}  // namespace internal

}  // namespace msd
