// Status / Result<T>: lightweight error propagation without exceptions.
//
// Systems code in this repository returns msd::Status (or msd::Result<T> when a
// value is produced) instead of throwing. Programming errors use MSD_CHECK.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace msd {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnavailable,
  kDeadlineExceeded,
  kDataLoss,
  kInternal,
};

// Human-readable name for a status code, e.g. "NOT_FOUND".
const char* StatusCodeName(StatusCode code);

// Value-type status: an OK singleton or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status DataLoss(std::string m) { return Status(StatusCode::kDataLoss, std::move(m)); }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such source".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    CheckOk();
    return std::get<T>(value_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(value_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(value_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "FATAL: Result accessed with status %s\n",
                   std::get<Status>(value_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

}  // namespace msd

// Fatal assertion for invariants that indicate a programming error.
#define MSD_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::msd::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

// Propagates a non-OK status from the current function.
#define MSD_RETURN_IF_ERROR(expr)      \
  do {                                 \
    ::msd::Status _msd_status = (expr); \
    if (!_msd_status.ok()) {           \
      return _msd_status;              \
    }                                  \
  } while (0)

#endif  // SRC_COMMON_STATUS_H_
