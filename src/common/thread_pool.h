// Fixed-size thread pool for worker-parallel transformations in real mode.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "src/common/mpmc_queue.h"

namespace msd {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; the returned future resolves when the task completes.
  std::future<void> Submit(std::function<void()> task);

  // Blocks until all submitted tasks have completed, then stops the workers.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    std::promise<void> done;
  };

  void WorkerLoop();

  MpmcQueue<Task> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace msd

#endif  // SRC_COMMON_THREAD_POOL_H_
