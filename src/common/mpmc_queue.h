// Bounded blocking multi-producer/multi-consumer queue used by mailboxes,
// prefetch buffers, and worker pools.
#ifndef SRC_COMMON_MPMC_QUEUE_H_
#define SRC_COMMON_MPMC_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "src/common/status.h"

namespace msd {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity = SIZE_MAX) : capacity_(capacity) {
    MSD_CHECK(capacity > 0);
  }

  // Blocks until space is available or the queue is closed.
  // Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Marks the queue closed: pushes fail, pops drain remaining items then fail.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace msd

#endif  // SRC_COMMON_MPMC_QUEUE_H_
