// FNV-1a 64-bit: the repository's integrity hash — checkpoint blob checksums,
// the options fingerprint, and block-cache entry verification all use it.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace msd {

inline uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace msd

#endif  // SRC_COMMON_HASH_H_
