// Minimal leveled logger. Thread-safe; printf-style formatting.
//
// Output goes to stderr by default; SetLogSink redirects every emitted line
// to a callback instead (tests assert on warnings, services forward them to
// their own log plane). Independently of the sink, any number of LogRings can
// be attached as taps (AttachLogRing) — each receives every emitted line, so
// a flight recorder can keep a bounded tail of recent logs without stealing
// the sink from whoever owns it. MSD_LOG_WARN_EVERY_N rate-limits per call
// site so chaos/retry hot paths cannot spam — the 1st, (n+1)th, (2n+1)th ...
// hits emit, the rest are counted per site (SuppressedLogLines /
// SuppressedLogSites) and surfaced as the msd_log_suppressed_total series.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace msd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets the minimum level that will be emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Receives every emitted log line (already level-filtered): the level, the
// call site, and the formatted message body (no trailing newline).
using LogSink = std::function<void(LogLevel level, const char* file, int line,
                                   const char* message)>;

// Installs `sink` as the destination for all subsequent log lines; a null
// sink restores the default stderr writer. The sink runs under the logger's
// mutex — keep it cheap and never log from inside it.
void SetLogSink(LogSink sink);

// Core printf-style log entry point; prefer the MSD_LOG_* macros.
void LogV(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

// ---------------------------------------------------------------------------
// LogRing: a bounded in-memory tail of recent log lines.
//
// The flight recorder (src/telemetry/flight_recorder.h) snapshots one of
// these into every diagnostic bundle: "what was the process saying right
// before the trigger" without always-on verbose logging. Appends overwrite
// the oldest line once `capacity` is reached; Tail() returns the retained
// lines oldest-first. Thread-safe (its own mutex — usable standalone in
// tests, and safe under the logger mutex when attached as a tap).
// ---------------------------------------------------------------------------
class LogRing {
 public:
  explicit LogRing(size_t capacity);
  ~LogRing();

  LogRing(const LogRing&) = delete;
  LogRing& operator=(const LogRing&) = delete;

  // Appends one already-formatted line (no trailing newline).
  void Append(std::string line);
  // Formats "[L file:line] message" like the stderr writer and appends it.
  void AppendFormatted(LogLevel level, const char* file, int line, const char* message);

  size_t capacity() const { return capacity_; }
  // Lines appended since construction (including overwritten ones).
  int64_t appended() const;
  // Lines lost to ring wrap-around.
  int64_t dropped() const;
  // Retained lines, oldest first.
  std::vector<std::string> Tail() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::string> ring_;
  size_t pos_ = 0;        // next write slot once the ring is full
  int64_t appended_ = 0;  // total Append calls
};

// Attaches `ring` as a tap: every subsequently emitted log line (after level
// filtering, regardless of the active sink) is also appended to it. Multiple
// rings may be attached; DetachLogRing removes one. The ring must outlive its
// attachment — detach before destroying it (~LogRing checks).
void AttachLogRing(LogRing* ring);
void DetachLogRing(LogRing* ring);

// ---------------------------------------------------------------------------
// Suppressed-warning accounting for MSD_LOG_WARN_EVERY_N.
//
// Each call site owns a static LogSiteCounter that registers itself once
// (static-init, process lifetime) and counts its suppressed hits on a relaxed
// atomic — the suppression hot path stays lock-free. SuppressedLogLines() is
// the process-wide total the registry exports as msd_log_suppressed_total;
// SuppressedLogSites() breaks it down per site for diagnosis bundles.
// ---------------------------------------------------------------------------
class LogSiteCounter {
 public:
  LogSiteCounter(const char* file, int line);

  void IncrementSuppressed() { suppressed_.fetch_add(1, std::memory_order_relaxed); }
  int64_t suppressed() const { return suppressed_.load(std::memory_order_relaxed); }
  const char* file() const { return file_; }
  int line() const { return line_; }

 private:
  const char* file_;
  int line_;
  std::atomic<int64_t> suppressed_{0};
};

struct SuppressedLogSite {
  const char* file = "";
  int line = 0;
  int64_t suppressed = 0;
};

// Process-wide total of log lines suppressed by MSD_LOG_WARN_EVERY_N.
int64_t SuppressedLogLines();
// Per-site breakdown (only sites that were hit at least once appear).
std::vector<SuppressedLogSite> SuppressedLogSites();

}  // namespace msd

#define MSD_LOG_DEBUG(...) ::msd::LogV(::msd::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_INFO(...) ::msd::LogV(::msd::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_WARN(...) ::msd::LogV(::msd::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_ERROR(...) ::msd::LogV(::msd::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)

// Emits on the 1st and every nth hit of THIS call site (per-site atomic
// counter); everything in between is suppressed — and counted, so the
// suppression is visible (SuppressedLogLines / msd_log_suppressed_total)
// instead of silently hiding repeated failures. For per-occurrence warnings
// on paths that can fire thousands of times under chaos (retry loops,
// unreadable-footer scans).
#define MSD_LOG_WARN_EVERY_N(n, ...)                                                      \
  do {                                                                                    \
    static ::std::atomic<int64_t> msd_warn_every_n_count{0};                              \
    static ::msd::LogSiteCounter msd_warn_every_n_site(__FILE__, __LINE__);               \
    if (msd_warn_every_n_count.fetch_add(1, ::std::memory_order_relaxed) % (n) == 0) {    \
      ::msd::LogV(::msd::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__);               \
    } else {                                                                              \
      msd_warn_every_n_site.IncrementSuppressed();                                        \
    }                                                                                     \
  } while (0)

#endif  // SRC_COMMON_LOGGING_H_
