// Minimal leveled logger. Thread-safe; printf-style formatting.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdarg>

namespace msd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets the minimum level that will be emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Core printf-style log entry point; prefer the MSD_LOG_* macros.
void LogV(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace msd

#define MSD_LOG_DEBUG(...) ::msd::LogV(::msd::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_INFO(...) ::msd::LogV(::msd::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_WARN(...) ::msd::LogV(::msd::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_ERROR(...) ::msd::LogV(::msd::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)

#endif  // SRC_COMMON_LOGGING_H_
