// Minimal leveled logger. Thread-safe; printf-style formatting.
//
// Output goes to stderr by default; SetLogSink redirects every emitted line
// to a callback instead (tests assert on warnings, services forward them to
// their own log plane). MSD_LOG_WARN_EVERY_N rate-limits per call site so
// chaos/retry hot paths cannot spam — the 1st, (n+1)th, (2n+1)th ... hits
// emit, the rest are counted and dropped.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <functional>

namespace msd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets the minimum level that will be emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Receives every emitted log line (already level-filtered): the level, the
// call site, and the formatted message body (no trailing newline).
using LogSink = std::function<void(LogLevel level, const char* file, int line,
                                   const char* message)>;

// Installs `sink` as the destination for all subsequent log lines; a null
// sink restores the default stderr writer. The sink runs under the logger's
// mutex — keep it cheap and never log from inside it.
void SetLogSink(LogSink sink);

// Core printf-style log entry point; prefer the MSD_LOG_* macros.
void LogV(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace msd

#define MSD_LOG_DEBUG(...) ::msd::LogV(::msd::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_INFO(...) ::msd::LogV(::msd::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_WARN(...) ::msd::LogV(::msd::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define MSD_LOG_ERROR(...) ::msd::LogV(::msd::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)

// Emits on the 1st and every nth hit of THIS call site (per-site atomic
// counter); everything in between is suppressed. For per-occurrence warnings
// on paths that can fire thousands of times under chaos (retry loops,
// unreadable-footer scans).
#define MSD_LOG_WARN_EVERY_N(n, ...)                                                      \
  do {                                                                                    \
    static ::std::atomic<int64_t> msd_warn_every_n_count{0};                              \
    if (msd_warn_every_n_count.fetch_add(1, ::std::memory_order_relaxed) % (n) == 0) {    \
      ::msd::LogV(::msd::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__);               \
    }                                                                                     \
  } while (0)

#endif  // SRC_COMMON_LOGGING_H_
