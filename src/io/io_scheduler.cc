#include "src/io/io_scheduler.h"

#include <algorithm>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/telemetry/trace.h"

namespace msd {

namespace {
bool IsRetryable(const Status& status) {
  // Transient transport-level failures only. NotFound is a caller bug and
  // DataLoss means the bytes themselves are wrong — retrying the same range
  // would re-read the same poison.
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}
}  // namespace

IoScheduler::IoScheduler(const ObjectStore* store, BlockCache* cache, Config config)
    : store_(store), cache_(cache), config_(config) {
  MSD_CHECK(store_ != nullptr && cache_ != nullptr);
  MSD_CHECK(config_.threads >= 1);
  MSD_CHECK(config_.max_inflight >= 1);
  MSD_CHECK(config_.retry.max_attempts >= 1);
  MSD_CHECK(config_.retry.jitter_frac >= 0.0 && config_.retry.jitter_frac < 1.0);
  latency_ring_.resize(256, 0);
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  if (config_.hedge.enabled) {
    MSD_CHECK(config_.hedge.quantile > 0.0 && config_.hedge.quantile <= 1.0);
    hedge_pool_ = std::make_unique<ThreadPool>(2);
    hedge_timer_ = std::thread([this] { HedgeTimerLoop(); });
  }
}

IoScheduler::~IoScheduler() {
  // Queued-but-undispatched fetches must not reach the pool after Shutdown
  // (Submit on a closed pool aborts): stop the dispatcher, then fail their
  // promises so waiters unblock instead of hanging on a dead future.
  std::vector<std::shared_ptr<std::promise<BlockResult>>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    for (auto& [id, tenant] : tenants_) {
      for (PendingFetch& pending : tenant.queue) {
        inflight_.erase(pending.route);
        orphans.push_back(std::move(pending.promise));
      }
      tenant.queue.clear();
    }
  }
  for (auto& promise : orphans) {
    promise->set_value(BlockResult(Status::Unavailable("io scheduler shut down")));
  }
  // Primary workers first (they may still register races with the timer),
  // then the timer (it may still submit to the hedge pool), then the hedges.
  pool_->Shutdown();
  if (hedge_timer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(hedge_mu_);
      hedge_stop_ = true;
    }
    hedge_cv_.notify_all();
    hedge_timer_.join();
  }
  if (hedge_pool_ != nullptr) {
    hedge_pool_->Shutdown();
  }
}

IoScheduler::TenantState& IoScheduler::EnsureTenantLocked(IoTenantId tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second.vtime = vclock_;
  }
  return it->second;
}

void IoScheduler::BumpLocked(IoTenantId tenant, int64_t Stats::* field) {
  ++(stats_.*field);
  ++(EnsureTenantLocked(tenant).stats.*field);
}

void IoScheduler::RegisterTenant(IoTenantId tenant, TenantOptions options) {
  MSD_CHECK(options.weight > 0.0);
  MSD_CHECK(options.max_inflight >= 0);
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = EnsureTenantLocked(tenant);
  state.options = options;
  // Re-registration must not let the tenant spend credit banked while idle.
  state.vtime = std::max(state.vtime, vclock_);
}

void IoScheduler::DrainTenant(IoTenantId tenant) {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      return true;
    }
    const TenantState& state = it->second;
    return state.queue.empty() && state.active == 0 && state.hedge_active == 0;
  });
}

void IoScheduler::UnregisterTenant(IoTenantId tenant) {
  DrainTenant(tenant);
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.erase(tenant);
}

const ObjectStore* IoScheduler::store(IoTenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.options.store != nullptr) {
    return it->second.options.store;
  }
  return store_;
}

void IoScheduler::DispatchLocked() {
  if (stopping_) {
    return;
  }
  while (active_gets_ < config_.max_inflight) {
    TenantState* best = nullptr;
    for (auto& [id, state] : tenants_) {
      if (state.queue.empty()) {
        continue;
      }
      if (state.options.max_inflight > 0 && state.active >= state.options.max_inflight) {
        continue;
      }
      if (best == nullptr || state.vtime < best->vtime) {
        best = &state;
      }
    }
    if (best == nullptr) {
      return;
    }
    PendingFetch req = std::move(best->queue.front());
    best->queue.pop_front();
    ++active_gets_;
    ++best->active;
    // SFQ bookkeeping: tag the dispatch with the tenant's start time, then
    // charge the tenant 1/weight of virtual time for the slot.
    vclock_ = best->vtime;
    best->vtime += 1.0 / best->options.weight;
    pool_->Submit([this, req = std::move(req)]() mutable { RunWorker(std::move(req)); });
  }
}

std::shared_future<IoScheduler::BlockResult> IoScheduler::Fetch(const std::string& name,
                                                                int64_t offset, int64_t length,
                                                                bool is_prefetch,
                                                                IoTenantId tenant) {
  const BlockKey key{name, offset, length};
  const std::string flat = FlattenBlockKey(key);
  std::string route;
  {
    std::lock_guard<std::mutex> lock(mu_);
    BumpLocked(tenant, &Stats::requests);
    const TenantState& state = EnsureTenantLocked(tenant);
    route = state.options.store != nullptr ? flat + "@" + std::to_string(tenant) : flat;
    auto it = inflight_.find(route);
    if (it != inflight_.end()) {
      BumpLocked(tenant, &Stats::coalesced);
      if (is_prefetch) {
        BumpLocked(tenant, &Stats::prefetch_issues);
      }
      return it->second;
    }
  }
  // Full cache probe outside mu_: with a spill tier this can touch the disk
  // (read + promotion writes), and holding the scheduler-global lock across
  // that would serialize every concurrent fetch and worker completion.
  if (std::shared_ptr<const std::string> cached = cache_->Lookup(key, tenant)) {
    std::promise<BlockResult> ready;
    ready.set_value(std::move(cached));
    std::lock_guard<std::mutex> lock(mu_);
    BumpLocked(tenant, &Stats::cache_hits);
    return ready.get_future().share();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check both maps: a fetch that completed between the probes above has
  // moved its block from the in-flight map into the cache. The memory-only
  // peek keeps the unlikely re-check off the spill tier's disk.
  auto it = inflight_.find(route);
  if (it != inflight_.end()) {
    BumpLocked(tenant, &Stats::coalesced);
    if (is_prefetch) {
      BumpLocked(tenant, &Stats::prefetch_issues);
    }
    return it->second;
  }
  if (std::shared_ptr<const std::string> cached = cache_->PeekResident(key)) {
    std::promise<BlockResult> ready;
    ready.set_value(std::move(cached));
    BumpLocked(tenant, &Stats::cache_hits);
    return ready.get_future().share();
  }
  if (stopping_) {
    std::promise<BlockResult> dead;
    dead.set_value(BlockResult(Status::Unavailable("io scheduler shut down")));
    return dead.get_future().share();
  }
  if (is_prefetch) {
    BumpLocked(tenant, &Stats::prefetch_issues);
  }
  TenantState& state = EnsureTenantLocked(tenant);
  // A tenant waking from idle joins at the current virtual clock: banked
  // idle time is not spendable credit (that would let a bursty tenant starve
  // the steady ones right after each burst).
  if (state.queue.empty() && state.active == 0) {
    state.vtime = std::max(state.vtime, vclock_);
  }
  auto promise = std::make_shared<std::promise<BlockResult>>();
  std::shared_future<BlockResult> future = promise->get_future().share();
  inflight_.emplace(route, future);
  BumpLocked(tenant, &Stats::issued_gets);
  state.queue.push_back(PendingFetch{
      key, route, promise,
      state.options.store != nullptr ? state.options.store : store_, tenant, is_prefetch});
  DispatchLocked();
  return future;
}

int64_t IoScheduler::BackoffDelayUs(int32_t attempt, Rng& rng) const {
  double delay = static_cast<double>(config_.retry.backoff_base_us);
  for (int32_t i = 0; i < attempt; ++i) {
    delay *= config_.retry.backoff_multiplier;
  }
  delay = std::min(delay, static_cast<double>(config_.retry.backoff_max_us));
  const double jitter = config_.retry.jitter_frac;
  delay *= 1.0 - jitter + 2.0 * jitter * rng.NextDouble();
  return std::max<int64_t>(0, static_cast<int64_t>(delay));
}

void IoScheduler::RecordLatencySample(int64_t us) {
  latency_ring_[latency_pos_] = us;
  latency_pos_ = (latency_pos_ + 1) % latency_ring_.size();
  ++latency_count_;
}

int64_t IoScheduler::HedgeDelayUs() const {
  // mu_ held by the caller.
  if (latency_count_ < config_.hedge.min_samples) {
    return -1;
  }
  const size_t n = std::min<size_t>(static_cast<size_t>(latency_count_), latency_ring_.size());
  std::vector<int64_t> samples(latency_ring_.begin(), latency_ring_.begin() + n);
  size_t rank = static_cast<size_t>(config_.hedge.quantile * static_cast<double>(n));
  rank = std::min(rank, n - 1);
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return std::max(config_.hedge.min_delay_us, samples[rank]);
}

std::shared_ptr<IoScheduler::HedgeRace> IoScheduler::MaybeArmHedge(const PendingFetch& req) {
  if (!config_.hedge.enabled) {
    return nullptr;
  }
  int64_t delay_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delay_us = HedgeDelayUs();
  }
  if (delay_us < 0) {
    return nullptr;
  }
  auto race = std::make_shared<HedgeRace>();
  race->key = req.key;
  race->route = req.route;
  race->promise = req.promise;
  race->store = req.store;
  race->tenant = req.tenant;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(delay_us);
  {
    std::lock_guard<std::mutex> lock(hedge_mu_);
    if (hedge_stop_) {
      return nullptr;
    }
    hedge_queue_.emplace(deadline, race);
  }
  hedge_cv_.notify_one();
  return race;
}

void IoScheduler::HedgeTimerLoop() {
  std::unique_lock<std::mutex> lock(hedge_mu_);
  while (!hedge_stop_) {
    if (hedge_queue_.empty()) {
      hedge_cv_.wait(lock, [&] { return hedge_stop_ || !hedge_queue_.empty(); });
      continue;
    }
    const auto deadline = hedge_queue_.begin()->first;
    if (std::chrono::steady_clock::now() < deadline) {
      hedge_cv_.wait_until(lock, deadline);
      continue;
    }
    std::shared_ptr<HedgeRace> race = hedge_queue_.begin()->second;
    hedge_queue_.erase(hedge_queue_.begin());
    lock.unlock();
    bool launch = false;
    {
      std::lock_guard<std::mutex> rl(race->mu);
      if (!race->cancelled && !race->settled && !race->hedge_launched) {
        race->hedge_launched = true;
        launch = true;
        // Count the hedge into the tenant's in-flight work before race->mu is
        // released, so DrainTenant cannot observe a quiet tenant while a
        // hedge is about to run on its (soon-to-be-freed) private store.
        // Lock order mu_-inside-race->mu is safe: no path acquires a
        // race->mu while holding mu_.
        std::lock_guard<std::mutex> slock(mu_);
        BumpLocked(race->tenant, &Stats::hedges_launched);
        ++EnsureTenantLocked(race->tenant).hedge_active;
      }
    }
    if (launch) {
      hedge_pool_->Submit([this, race] { RunHedge(std::move(race)); });
    }
    lock.lock();
  }
}

void IoScheduler::RunHedge(std::shared_ptr<HedgeRace> race) {
  Result<std::string> bytes = [&] {
    ScopedSpan span(config_.tracer, "io.hedge", "io", race->tenant);
    Result<std::string> r = race->store->Get(race->key.name, race->key.offset, race->key.length);
    span.set_ok(r.ok());
    return r;
  }();
  bool finisher = false;
  {
    std::lock_guard<std::mutex> rl(race->mu);
    race->hedge_done = true;
    if (!race->settled && bytes.ok()) {
      race->settled = true;
      finisher = true;
    }
  }
  race->cv.notify_all();
  if (finisher) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      BumpLocked(race->tenant, &Stats::hedges_won);
    }
    FinishFetch(race->key, race->route, race->tenant, race->promise,
                BlockResult(std::make_shared<const std::string>(std::move(bytes.value()))));
  } else if (bytes.ok()) {
    // The primary settled first; this duplicate read was wasted work.
    std::lock_guard<std::mutex> lock(mu_);
    BumpLocked(race->tenant, &Stats::abandoned_reads);
  }
  // A failed hedge while the primary is still unsettled just leaves the race
  // to the primary (which may be waiting on hedge_done before retrying).
  {
    std::lock_guard<std::mutex> lock(mu_);
    --EnsureTenantLocked(race->tenant).hedge_active;
  }
  drain_cv_.notify_all();
}

void IoScheduler::FinishFetch(const BlockKey& key, const std::string& route, IoTenantId tenant,
                              const std::shared_ptr<std::promise<BlockResult>>& promise,
                              BlockResult result) {
  if (result.ok()) {
    // Insert before clearing the in-flight entry: a concurrent Fetch must
    // always find the block in the cache or the in-flight map. A failed Get
    // is never inserted — the next Fetch of this key re-issues a fresh read.
    cache_->Insert(key, result.value(), tenant);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!result.ok()) {
      BumpLocked(tenant, &Stats::failed_gets);
    }
    inflight_.erase(route);
  }
  promise->set_value(std::move(result));
}

void IoScheduler::RunWorker(PendingFetch req) {
  // The Get slot was acquired at dispatch time and is held across retries
  // and backoff sleeps — a browned-out range keeps its place in line instead
  // of releasing pressure onto the endpoint.
  const int32_t max_attempts = std::max(1, config_.retry.max_attempts);
  // Deterministic jitter: the delay sequence for this key is a pure function
  // of (key, policy seed), independent of thread interleaving.
  Rng jitter(Fnv1a64(req.route, config_.retry.seed));
  BlockResult result = BlockResult(Status::Internal("io worker fell through"));
  bool finished_elsewhere = false;
  for (int32_t attempt = 0; attempt < max_attempts; ++attempt) {
    // Hedging arms once, on the first attempt; retries of a failed primary
    // already have a second chance by definition.
    std::shared_ptr<HedgeRace> race = attempt == 0 ? MaybeArmHedge(req) : nullptr;
    const auto t0 = std::chrono::steady_clock::now();
    Result<std::string> bytes = [&] {
      ScopedSpan span(config_.tracer, attempt == 0 ? "io.get" : "io.retry", "io", req.tenant,
                      /*step=*/-1, /*rank=*/-1, attempt);
      Result<std::string> r = req.store->Get(req.key.name, req.key.offset, req.key.length);
      span.set_ok(r.ok());
      return r;
    }();
    if (race != nullptr) {
      std::unique_lock<std::mutex> rl(race->mu);
      race->cancelled = true;  // the timer must not launch past this point
      if (!bytes.ok() && race->hedge_launched && !race->hedge_done && !race->settled) {
        // The primary failed but a duplicate is still in flight — it may yet
        // rescue this fetch without burning a retry.
        race->cv.wait(rl, [&] { return race->hedge_done; });
      }
      if (race->settled) {
        // The hedge won and already ran the completion path; the primary's
        // result (either way) is abandoned.
        finished_elsewhere = true;
        rl.unlock();
        std::lock_guard<std::mutex> lock(mu_);
        BumpLocked(req.tenant, &Stats::abandoned_reads);
        break;
      }
      if (bytes.ok()) {
        race->settled = true;  // claim the fetch so a late hedge cannot finish it
      }
    }
    if (bytes.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        RecordLatencySample(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
        if (attempt > 0) {
          BumpLocked(req.tenant, &Stats::retry_successes);
        }
      }
      result = BlockResult(std::make_shared<const std::string>(std::move(bytes.value())));
      break;
    }
    if (!IsRetryable(bytes.status())) {
      result = BlockResult(bytes.status());
      break;
    }
    if (attempt + 1 >= max_attempts) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        BumpLocked(req.tenant, &Stats::retries_exhausted);
      }
      result = BlockResult(bytes.status());
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      BumpLocked(req.tenant, &Stats::retries);
    }
    MSD_LOG_WARN_EVERY_N(64, "retrying backing Get %s (attempt %d/%d): %s", req.route.c_str(),
                         attempt + 1, max_attempts, bytes.status().message().c_str());
    std::this_thread::sleep_for(std::chrono::microseconds(BackoffDelayUs(attempt, jitter)));
  }
  if (!finished_elsewhere) {
    FinishFetch(req.key, req.route, req.tenant, req.promise, std::move(result));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_gets_;
    --EnsureTenantLocked(req.tenant).active;
    DispatchLocked();
  }
  drain_cv_.notify_all();
}

IoScheduler::BlockResult IoScheduler::ReadBlock(const std::string& name, int64_t offset,
                                                int64_t length, IoTenantId tenant) {
  return Fetch(name, offset, length, /*is_prefetch=*/false, tenant).get();
}

void IoScheduler::Invalidate(const std::string& name, int64_t offset, int64_t length,
                             IoTenantId tenant) {
  cache_->Erase(BlockKey{name, offset, length});
  std::lock_guard<std::mutex> lock(mu_);
  BumpLocked(tenant, &Stats::invalidations);
}

IoScheduler::Stats IoScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

IoScheduler::Stats IoScheduler::tenant_stats(IoTenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? Stats{} : it->second.stats;
}

void IoScheduler::SnapshotAll(Stats* aggregate, std::map<IoTenantId, Stats>* per_tenant) const {
  // One mutex acquisition for the aggregate AND every slice: the exported
  // snapshot is a consistent cut (slices sum to the aggregate, per-slice
  // invariants hold) even while workers are completing concurrently.
  std::lock_guard<std::mutex> lock(mu_);
  *aggregate = stats_;
  per_tenant->clear();
  for (const auto& [id, state] : tenants_) {
    (*per_tenant)[id] = state.stats;
  }
}

}  // namespace msd
