#include "src/io/io_scheduler.h"

#include <utility>

#include "src/common/logging.h"

namespace msd {

IoScheduler::IoScheduler(const ObjectStore* store, BlockCache* cache, Config config)
    : store_(store), cache_(cache), config_(config) {
  MSD_CHECK(store_ != nullptr && cache_ != nullptr);
  MSD_CHECK(config_.threads >= 1);
  MSD_CHECK(config_.max_inflight >= 1);
  pool_ = std::make_unique<ThreadPool>(config_.threads);
}

IoScheduler::~IoScheduler() { pool_->Shutdown(); }

std::shared_future<IoScheduler::BlockResult> IoScheduler::Fetch(const std::string& name,
                                                                int64_t offset, int64_t length,
                                                                bool is_prefetch) {
  const BlockKey key{name, offset, length};
  const std::string flat = FlattenBlockKey(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    auto it = inflight_.find(flat);
    if (it != inflight_.end()) {
      ++stats_.coalesced;
      if (is_prefetch) {
        ++stats_.prefetch_issues;
      }
      return it->second;
    }
  }
  // Full cache probe outside mu_: with a spill tier this can touch the disk
  // (read + promotion writes), and holding the scheduler-global lock across
  // that would serialize every concurrent fetch and worker completion.
  if (std::shared_ptr<const std::string> cached = cache_->Lookup(key)) {
    std::promise<BlockResult> ready;
    ready.set_value(std::move(cached));
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cache_hits;
    return ready.get_future().share();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check both maps: a fetch that completed between the probes above has
  // moved its block from the in-flight map into the cache. The memory-only
  // peek keeps the unlikely re-check off the spill tier's disk.
  auto it = inflight_.find(flat);
  if (it != inflight_.end()) {
    ++stats_.coalesced;
    if (is_prefetch) {
      ++stats_.prefetch_issues;
    }
    return it->second;
  }
  if (std::shared_ptr<const std::string> cached = cache_->PeekResident(key)) {
    std::promise<BlockResult> ready;
    ready.set_value(std::move(cached));
    ++stats_.cache_hits;
    return ready.get_future().share();
  }
  if (is_prefetch) {
    ++stats_.prefetch_issues;
  }
  auto promise = std::make_shared<std::promise<BlockResult>>();
  std::shared_future<BlockResult> future = promise->get_future().share();
  inflight_.emplace(flat, future);
  ++stats_.issued_gets;
  pool_->Submit([this, key, flat, promise] {
    {
      // Bounded depth: wait for a slot before touching the store.
      std::unique_lock<std::mutex> lock(mu_);
      depth_cv_.wait(lock, [&] { return active_gets_ < config_.max_inflight; });
      ++active_gets_;
    }
    Result<std::string> bytes = store_->Get(key.name, key.offset, key.length);
    BlockResult result =
        bytes.ok()
            ? BlockResult(std::make_shared<const std::string>(std::move(bytes.value())))
            : BlockResult(bytes.status());
    if (result.ok()) {
      // Insert before clearing the in-flight entry: a concurrent Fetch must
      // always find the block in the cache or the in-flight map.
      cache_->Insert(key, result.value());
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_gets_;
      inflight_.erase(flat);
    }
    depth_cv_.notify_one();
    promise->set_value(std::move(result));
  });
  return future;
}

IoScheduler::BlockResult IoScheduler::ReadBlock(const std::string& name, int64_t offset,
                                                int64_t length) {
  return Fetch(name, offset, length).get();
}

IoScheduler::Stats IoScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace msd
