// IoScheduler: the async read engine between the block cache and storage.
//
// Every loader-side byte-range read funnels through here:
//
//   Fetch(name, offset, length)
//     -> BlockCache hit        => ready future, no I/O
//     -> already in flight     => join the existing future (coalescing: N
//                                 concurrent requesters, exactly one Get)
//     -> otherwise             => enqueue a bounded-depth async Get on the
//                                 ThreadPool; the result lands in the cache
//                                 before the future resolves.
//
// Bounded depth: at most `max_inflight` backing Gets run concurrently —
// read-ahead can queue far more than the (simulated) storage endpoint should
// see at once. Completion inserts into the cache first and only then clears
// the in-flight entry, so a concurrent requester always finds the block in
// one of the two maps and a backing read is never duplicated.
#ifndef SRC_IO_IO_SCHEDULER_H_
#define SRC_IO_IO_SCHEDULER_H_

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/thread_pool.h"
#include "src/io/block_cache.h"
#include "src/storage/object_store.h"

namespace msd {

class IoScheduler {
 public:
  struct Config {
    size_t threads = 4;        // pool executing the backing Gets
    int32_t max_inflight = 8;  // concurrent backing Gets (queue depth bound)
  };

  struct Stats {
    int64_t requests = 0;        // Fetch calls
    int64_t cache_hits = 0;      // served straight from the cache
    int64_t coalesced = 0;       // joined an already in-flight read
    int64_t issued_gets = 0;     // backing reads actually issued
    // Prefetch Fetches that issued or joined a backing read (cache hits are
    // excluded: a warm re-issued window performs no I/O and counts nothing).
    int64_t prefetch_issues = 0;
  };

  using BlockResult = Result<std::shared_ptr<const std::string>>;

  // Neither the store nor the cache is owned; both must outlive the scheduler.
  IoScheduler(const ObjectStore* store, BlockCache* cache, Config config);
  ~IoScheduler();  // drains in-flight reads

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Async read of [offset, offset+length) of `name`. `is_prefetch` only tags
  // the stats (read-ahead accounting).
  std::shared_future<BlockResult> Fetch(const std::string& name, int64_t offset,
                                        int64_t length, bool is_prefetch = false);

  // Blocking convenience: Fetch + wait.
  BlockResult ReadBlock(const std::string& name, int64_t offset, int64_t length);

  Stats stats() const;
  BlockCache* cache() { return cache_; }
  const ObjectStore* store() const { return store_; }

 private:
  const ObjectStore* store_;
  BlockCache* cache_;
  Config config_;

  mutable std::mutex mu_;
  std::condition_variable depth_cv_;
  int32_t active_gets_ = 0;
  std::unordered_map<std::string, std::shared_future<BlockResult>> inflight_;
  Stats stats_;
  // Last member: its destructor drains tasks that touch the fields above.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace msd

#endif  // SRC_IO_IO_SCHEDULER_H_
