// IoScheduler: the async read engine between the block cache and storage.
//
// Every loader-side byte-range read funnels through here:
//
//   Fetch(name, offset, length)
//     -> BlockCache hit        => ready future, no I/O
//     -> already in flight     => join the existing future (coalescing: N
//                                 concurrent requesters, exactly one Get)
//     -> otherwise             => enqueue a bounded-depth async Get on the
//                                 ThreadPool; the result lands in the cache
//                                 before the future resolves.
//
// Bounded depth: at most `max_inflight` backing Gets run concurrently —
// read-ahead can queue far more than the (simulated) storage endpoint should
// see at once. Completion inserts into the cache first and only then clears
// the in-flight entry, so a concurrent requester always finds the block in
// one of the two maps and a backing read is never duplicated.
//
// Failure handling (the chaos plane's retry layer):
//  - RetryPolicy: a failed backing Get is retried up to max_attempts times
//    with exponential backoff and deterministic jitter (PCG32 seeded from the
//    block key — no wall-clock randomness, so the retry schedule for a given
//    key replays identically). Only transient codes retry (Unavailable,
//    DeadlineExceeded); NotFound and DataLoss propagate immediately.
//  - HedgePolicy: once enough latency samples exist, a primary Get that
//    outlives the observed latency quantile gets a hedged duplicate on a
//    side pool; first success wins, the loser is abandoned (counted, never
//    cached twice — exactly one finisher resolves the future).
//  - Error-path hygiene: a failed Get is never inserted into the cache, and
//    the in-flight entry is erased before the waiters observe the error, so
//    a subsequent Fetch of the same key re-issues a fresh backing Get.
#ifndef SRC_IO_IO_SCHEDULER_H_
#define SRC_IO_IO_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/io/block_cache.h"
#include "src/storage/object_store.h"

namespace msd {

class IoScheduler {
 public:
  // Bounded retries with exponential backoff + deterministic jitter.
  struct RetryPolicy {
    int32_t max_attempts = 1;       // total tries per backing read; 1 = no retry
    int64_t backoff_base_us = 500;  // delay before the first retry
    double backoff_multiplier = 2.0;
    int64_t backoff_max_us = 50'000;
    // Each delay is scaled by a factor in [1-jitter, 1+jitter] drawn from a
    // PCG32 seeded with hash(block key, seed) — replayable, no wall clock.
    double jitter_frac = 0.25;
    uint64_t seed = 0x10aded;
  };

  // Hedged reads: duplicate a slow primary Get once its elapsed time passes
  // the observed latency quantile (computed over a ring of recent successful
  // primary Gets; inactive until min_samples have been seen).
  struct HedgePolicy {
    bool enabled = false;
    double quantile = 0.95;
    int64_t min_delay_us = 1000;  // floor for the hedge arm delay
    int32_t min_samples = 32;
  };

  struct Config {
    size_t threads = 4;        // pool executing the backing Gets
    int32_t max_inflight = 8;  // concurrent backing Gets (queue depth bound)
    RetryPolicy retry;
    HedgePolicy hedge;
  };

  struct Stats {
    int64_t requests = 0;        // Fetch calls
    int64_t cache_hits = 0;      // served straight from the cache
    int64_t coalesced = 0;       // joined an already in-flight read
    int64_t issued_gets = 0;     // backing reads actually issued
    // Prefetch Fetches that issued or joined a backing read (cache hits are
    // excluded: a warm re-issued window performs no I/O and counts nothing).
    int64_t prefetch_issues = 0;
    // Chaos-plane counters.
    int64_t retries = 0;            // backing Gets re-issued after a transient failure
    int64_t retry_successes = 0;    // fetches rescued by a retry (attempt > 0 succeeded)
    int64_t retries_exhausted = 0;  // fetches that failed after the full retry budget
    int64_t failed_gets = 0;        // fetches whose future resolved with an error
    int64_t hedges_launched = 0;    // duplicate Gets armed by the latency timer
    int64_t hedges_won = 0;         // fetches resolved by the hedge, not the primary
    int64_t abandoned_reads = 0;    // completed Gets whose result was already settled
    int64_t invalidations = 0;      // Invalidate() calls (decode-detected corruption)
  };

  using BlockResult = Result<std::shared_ptr<const std::string>>;

  // Neither the store nor the cache is owned; both must outlive the scheduler.
  IoScheduler(const ObjectStore* store, BlockCache* cache, Config config);
  ~IoScheduler();  // drains in-flight reads

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Async read of [offset, offset+length) of `name`. `is_prefetch` only tags
  // the stats (read-ahead accounting).
  std::shared_future<BlockResult> Fetch(const std::string& name, int64_t offset,
                                        int64_t length, bool is_prefetch = false);

  // Blocking convenience: Fetch + wait.
  BlockResult ReadBlock(const std::string& name, int64_t offset, int64_t length);

  // Drops the block from the cache so the next Fetch goes back to storage.
  // Called by decoders that detect corruption above the cache (the cached
  // copy checksums clean — the poison arrived at Get time).
  void Invalidate(const std::string& name, int64_t offset, int64_t length);

  Stats stats() const;
  BlockCache* cache() { return cache_; }
  const ObjectStore* store() const { return store_; }

 private:
  // Shared state of one primary/hedge race. Exactly one side settles and
  // becomes the finisher (cache insert + in-flight erase + promise); the
  // other side's result is abandoned.
  struct HedgeRace {
    std::mutex mu;
    std::condition_variable cv;
    BlockKey key;
    std::string flat;
    std::shared_ptr<std::promise<BlockResult>> promise;
    bool settled = false;         // a finisher claimed this fetch
    bool cancelled = false;       // primary returned; timer must not launch
    bool hedge_launched = false;  // a duplicate Get is (or was) in flight
    bool hedge_done = false;      // the duplicate Get returned
  };

  void RunWorker(BlockKey key, std::string flat,
                 std::shared_ptr<std::promise<BlockResult>> promise);
  // Completion path of whichever side settled: insert into the cache (success
  // only), erase the in-flight entry, then resolve the promise — in that
  // order, so a concurrent Fetch never misses both maps on success and never
  // joins a dead future on failure.
  void FinishFetch(const BlockKey& key, const std::string& flat,
                   const std::shared_ptr<std::promise<BlockResult>>& promise,
                   BlockResult result);
  // Registers a hedge race with the timer thread if hedging is armed
  // (enabled + enough latency samples). Returns nullptr otherwise.
  std::shared_ptr<HedgeRace> MaybeArmHedge(const BlockKey& key, const std::string& flat,
                                           const std::shared_ptr<std::promise<BlockResult>>& promise);
  void HedgeTimerLoop();
  void RunHedge(std::shared_ptr<HedgeRace> race);
  // Backoff delay for retry `attempt` (0-based), jittered by `rng`.
  int64_t BackoffDelayUs(int32_t attempt, Rng& rng) const;
  // Hedge arm delay from the latency ring, or -1 while not enough samples.
  int64_t HedgeDelayUs() const;
  void RecordLatencySample(int64_t us);

  const ObjectStore* store_;
  BlockCache* cache_;
  Config config_;

  mutable std::mutex mu_;
  std::condition_variable depth_cv_;
  int32_t active_gets_ = 0;
  std::unordered_map<std::string, std::shared_future<BlockResult>> inflight_;
  Stats stats_;
  // Ring of recent successful primary-Get latencies (µs) for the hedge
  // quantile; guarded by mu_.
  std::vector<int64_t> latency_ring_;
  size_t latency_pos_ = 0;
  int64_t latency_count_ = 0;

  // Hedge timer state: pending races keyed by arm deadline.
  std::mutex hedge_mu_;
  std::condition_variable hedge_cv_;
  bool hedge_stop_ = false;
  std::multimap<std::chrono::steady_clock::time_point, std::shared_ptr<HedgeRace>> hedge_queue_;

  // Last members: their destructors drain tasks that touch the fields above.
  // Teardown order (see ~IoScheduler): primary pool, timer thread, hedge pool.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool> hedge_pool_;
  std::thread hedge_timer_;
};

}  // namespace msd

#endif  // SRC_IO_IO_SCHEDULER_H_
