// IoScheduler: the async read engine between the block cache and storage.
//
// Every loader-side byte-range read funnels through here:
//
//   Fetch(name, offset, length, /*is_prefetch=*/…, tenant)
//     -> BlockCache hit        => ready future, no I/O
//     -> already in flight     => join the existing future (coalescing: N
//                                 concurrent requesters, exactly one Get —
//                                 including requesters from OTHER tenants on
//                                 the shared route)
//     -> otherwise             => enqueue on the tenant's queue; the fair-
//                                 share dispatcher issues it as a bounded-
//                                 depth async Get on the ThreadPool, and the
//                                 result lands in the cache before the future
//                                 resolves.
//
// Bounded depth: at most `max_inflight` backing Gets run concurrently —
// read-ahead can queue far more than the (simulated) storage endpoint should
// see at once. Completion inserts into the cache first and only then clears
// the in-flight entry, so a concurrent requester always finds the block in
// one of the two maps and a backing read is never duplicated.
//
// Multi-tenant fair share (src/service/): each tenant owns a FIFO queue and a
// start-time-fair-queueing virtual clock. Dispatch always picks the runnable
// tenant with the smallest vtime and charges it 1/weight per issued Get, so
// over any window tenants receive Get slots proportional to their weights —
// a scan-heavy tenant fills its own queue, not the shared pipe. A tenant may
// route to a private ObjectStore (e.g. a fault-injecting decorator); private
// routes get their own in-flight entries so a healthy tenant never joins a
// doomed Get, while default-route tenants coalesce freely.
//
// Failure handling (the chaos plane's retry layer):
//  - RetryPolicy: a failed backing Get is retried up to max_attempts times
//    with exponential backoff and deterministic jitter (PCG32 seeded from the
//    block key — no wall-clock randomness, so the retry schedule for a given
//    key replays identically). Only transient codes retry (Unavailable,
//    DeadlineExceeded); NotFound and DataLoss propagate immediately.
//  - HedgePolicy: once enough latency samples exist, a primary Get that
//    outlives the observed latency quantile gets a hedged duplicate on a
//    side pool; first success wins, the loser is abandoned (counted, never
//    cached twice — exactly one finisher resolves the future).
//  - Error-path hygiene: a failed Get is never inserted into the cache, and
//    the in-flight entry is erased before the waiters observe the error, so
//    a subsequent Fetch of the same key re-issues a fresh backing Get.
#ifndef SRC_IO_IO_SCHEDULER_H_
#define SRC_IO_IO_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/io/block_cache.h"
#include "src/storage/object_store.h"

namespace msd {

class StepTracer;

class IoScheduler {
 public:
  // Bounded retries with exponential backoff + deterministic jitter.
  struct RetryPolicy {
    int32_t max_attempts = 1;       // total tries per backing read; 1 = no retry
    int64_t backoff_base_us = 500;  // delay before the first retry
    double backoff_multiplier = 2.0;
    int64_t backoff_max_us = 50'000;
    // Each delay is scaled by a factor in [1-jitter, 1+jitter] drawn from a
    // PCG32 seeded with hash(block key, seed) — replayable, no wall clock.
    double jitter_frac = 0.25;
    uint64_t seed = 0x10aded;
  };

  // Hedged reads: duplicate a slow primary Get once its elapsed time passes
  // the observed latency quantile (computed over a ring of recent successful
  // primary Gets; inactive until min_samples have been seen).
  struct HedgePolicy {
    bool enabled = false;
    double quantile = 0.95;
    int64_t min_delay_us = 1000;  // floor for the hedge arm delay
    int32_t min_samples = 32;
  };

  struct Config {
    size_t threads = 4;        // pool executing the backing Gets
    int32_t max_inflight = 8;  // concurrent backing Gets (queue depth bound)
    RetryPolicy retry;
    HedgePolicy hedge;
    // Telemetry (src/telemetry/trace.h): records one io.get / io.retry /
    // io.hedge span per backing Get attempt, tenant-attributed. Not owned;
    // must outlive the scheduler. nullptr = no tracing.
    StepTracer* tracer = nullptr;
  };

  // Per-tenant scheduling knobs (src/service/ control plane). Tenants that
  // never register get the defaults: weight 1, no inflight cap, the shared
  // default store.
  struct TenantOptions {
    // Fair-share weight: each issued Get advances the tenant's virtual clock
    // by 1/weight, so relative Get throughput under contention tracks the
    // weight ratio. Must be > 0.
    double weight = 1.0;
    // Per-tenant cap on concurrently running backing Gets; 0 = only the
    // global max_inflight bounds it.
    int32_t max_inflight = 0;
    // Private backing route (e.g. a per-tenant FaultInjectingStore wrapping
    // the shared base). Not owned; must stay alive until the tenant is
    // drained. nullptr = the shared default store (coalescing route).
    const ObjectStore* store = nullptr;
  };

  struct Stats {
    int64_t requests = 0;        // Fetch calls
    int64_t cache_hits = 0;      // served straight from the cache
    int64_t coalesced = 0;       // joined an already in-flight read
    int64_t issued_gets = 0;     // backing reads actually issued
    // Prefetch Fetches that issued or joined a backing read (cache hits are
    // excluded: a warm re-issued window performs no I/O and counts nothing).
    int64_t prefetch_issues = 0;
    // Chaos-plane counters.
    int64_t retries = 0;            // backing Gets re-issued after a transient failure
    int64_t retry_successes = 0;    // fetches rescued by a retry (attempt > 0 succeeded)
    int64_t retries_exhausted = 0;  // fetches that failed after the full retry budget
    int64_t failed_gets = 0;        // fetches whose future resolved with an error
    int64_t hedges_launched = 0;    // duplicate Gets armed by the latency timer
    int64_t hedges_won = 0;         // fetches resolved by the hedge, not the primary
    int64_t abandoned_reads = 0;    // completed Gets whose result was already settled
    int64_t invalidations = 0;      // Invalidate() calls (decode-detected corruption)
  };

  using BlockResult = Result<std::shared_ptr<const std::string>>;

  // Neither the store nor the cache is owned; both must outlive the scheduler.
  IoScheduler(const ObjectStore* store, BlockCache* cache, Config config);
  // Fails still-queued fetches with Unavailable, then drains the running ones.
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // Async read of [offset, offset+length) of `name` on behalf of `tenant`.
  // `is_prefetch` only tags the stats (read-ahead accounting).
  std::shared_future<BlockResult> Fetch(const std::string& name, int64_t offset,
                                        int64_t length, bool is_prefetch = false,
                                        IoTenantId tenant = kDefaultIoTenant);

  // Blocking convenience: Fetch + wait.
  BlockResult ReadBlock(const std::string& name, int64_t offset, int64_t length,
                        IoTenantId tenant = kDefaultIoTenant);

  // Drops the block from the cache so the next Fetch goes back to storage.
  // Called by decoders that detect corruption above the cache (the cached
  // copy checksums clean — the poison arrived at Get time).
  void Invalidate(const std::string& name, int64_t offset, int64_t length,
                  IoTenantId tenant = kDefaultIoTenant);

  // ---- Tenant lifecycle (src/service/ control plane) ----
  // Installs (or updates) the tenant's scheduling options. Safe while the
  // tenant has traffic in flight; already-running Gets keep their old route.
  void RegisterTenant(IoTenantId tenant, TenantOptions options);
  // Blocks until the tenant has no queued, running, or hedged Gets. Caller
  // contract: no new Fetches are issued for the tenant once this is called
  // (the Session drains its pipeline first), otherwise the wait can livelock.
  void DrainTenant(IoTenantId tenant);
  // DrainTenant + forget the tenant's queue/options/counters. The aggregate
  // stats() keep its history. After this, the tenant's private store may be
  // destroyed.
  void UnregisterTenant(IoTenantId tenant);

  // Consistent aggregate snapshot (single scheduler mutex — invariants like
  // requests == cache_hits + coalesced + issued_gets hold exactly).
  Stats stats() const;
  // Per-tenant view, attributed to the requesting tenant; taken under the
  // same mutex as the aggregate.
  Stats tenant_stats(IoTenantId tenant) const;
  // Aggregate + every tenant slice under ONE mutex acquisition, so the
  // exported snapshot cannot tear: per-slice invariants (requests ==
  // cache_hits + coalesced + issued_gets) hold and the slices sum to the
  // aggregate exactly, even mid-stream.
  void SnapshotAll(Stats* aggregate, std::map<IoTenantId, Stats>* per_tenant) const;
  BlockCache* cache() { return cache_; }
  // The tenant's backing route: its private store if registered, else the
  // shared default store.
  const ObjectStore* store(IoTenantId tenant = kDefaultIoTenant) const;

 private:
  // A Fetch waiting on (or occupying) a backing-Get slot.
  struct PendingFetch {
    BlockKey key;
    // In-flight map key: FlattenBlockKey(key), suffixed "@<tenant>" when the
    // tenant routes to a private store (private routes never coalesce with
    // the shared one — a healthy tenant must not join a doomed Get).
    std::string route;
    std::shared_ptr<std::promise<BlockResult>> promise;
    const ObjectStore* store = nullptr;  // resolved route at enqueue time
    IoTenantId tenant = kDefaultIoTenant;
    bool is_prefetch = false;
  };

  // One tenant's scheduler state: FIFO queue + SFQ virtual clock + counters.
  struct TenantState {
    TenantOptions options;
    std::deque<PendingFetch> queue;
    int32_t active = 0;        // dispatched Gets currently running
    int32_t hedge_active = 0;  // hedged duplicates currently running
    double vtime = 0.0;        // advances 1/weight per dispatched Get
    Stats stats;
  };

  // Shared state of one primary/hedge race. Exactly one side settles and
  // becomes the finisher (cache insert + in-flight erase + promise); the
  // other side's result is abandoned.
  struct HedgeRace {
    std::mutex mu;
    std::condition_variable cv;
    BlockKey key;
    std::string route;
    std::shared_ptr<std::promise<BlockResult>> promise;
    const ObjectStore* store = nullptr;
    IoTenantId tenant = kDefaultIoTenant;
    bool settled = false;         // a finisher claimed this fetch
    bool cancelled = false;       // primary returned; timer must not launch
    bool hedge_launched = false;  // a duplicate Get is (or was) in flight
    bool hedge_done = false;      // the duplicate Get returned
  };

  // Auto-creates the tenant with default options on first contact; a new
  // tenant starts at the current virtual clock so it cannot hoard credit
  // from before it existed. mu_ held.
  TenantState& EnsureTenantLocked(IoTenantId tenant);
  // Bumps an aggregate counter and the tenant's copy together. mu_ held.
  void BumpLocked(IoTenantId tenant, int64_t Stats::* field);
  // Fills free Get slots: repeatedly picks the runnable tenant (non-empty
  // queue, under its own cap) with the smallest vtime — ties break on the
  // lowest tenant id via map order — charges it 1/weight, and submits the
  // worker. mu_ held.
  void DispatchLocked();

  void RunWorker(PendingFetch req);
  // Completion path of whichever side settled: insert into the cache (success
  // only), erase the in-flight entry, then resolve the promise — in that
  // order, so a concurrent Fetch never misses both maps on success and never
  // joins a dead future on failure.
  void FinishFetch(const BlockKey& key, const std::string& route, IoTenantId tenant,
                   const std::shared_ptr<std::promise<BlockResult>>& promise,
                   BlockResult result);
  // Registers a hedge race with the timer thread if hedging is armed
  // (enabled + enough latency samples). Returns nullptr otherwise.
  std::shared_ptr<HedgeRace> MaybeArmHedge(const PendingFetch& req);
  void HedgeTimerLoop();
  void RunHedge(std::shared_ptr<HedgeRace> race);
  // Backoff delay for retry `attempt` (0-based), jittered by `rng`.
  int64_t BackoffDelayUs(int32_t attempt, Rng& rng) const;
  // Hedge arm delay from the latency ring, or -1 while not enough samples.
  int64_t HedgeDelayUs() const;
  void RecordLatencySample(int64_t us);

  const ObjectStore* store_;
  BlockCache* cache_;
  Config config_;

  // Lock order note: mu_ may be taken while holding a HedgeRace::mu (the
  // timer's launch bookkeeping); a HedgeRace::mu is NEVER taken while mu_ is
  // held.
  mutable std::mutex mu_;
  std::condition_variable drain_cv_;  // tenant queues/active/hedges emptied
  int32_t active_gets_ = 0;
  bool stopping_ = false;  // destructor: stop dispatching, fail the queued
  std::unordered_map<std::string, std::shared_future<BlockResult>> inflight_;
  std::map<IoTenantId, TenantState> tenants_;
  double vclock_ = 0.0;  // vtime of the most recently dispatched Get
  Stats stats_;
  // Ring of recent successful primary-Get latencies (µs) for the hedge
  // quantile; guarded by mu_.
  std::vector<int64_t> latency_ring_;
  size_t latency_pos_ = 0;
  int64_t latency_count_ = 0;

  // Hedge timer state: pending races keyed by arm deadline.
  std::mutex hedge_mu_;
  std::condition_variable hedge_cv_;
  bool hedge_stop_ = false;
  std::multimap<std::chrono::steady_clock::time_point, std::shared_ptr<HedgeRace>> hedge_queue_;

  // Last members: their destructors drain tasks that touch the fields above.
  // Teardown order (see ~IoScheduler): primary pool, timer thread, hedge pool.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool> hedge_pool_;
  std::thread hedge_timer_;
};

}  // namespace msd

#endif  // SRC_IO_IO_SCHEDULER_H_
