#include "src/io/block_cache.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace msd {

std::string FlattenBlockKey(const BlockKey& key) {
  return key.name + ":" + std::to_string(key.offset) + "+" + std::to_string(key.length);
}

BlockCache::BlockCache(Config config) : config_(config) {
  MSD_CHECK(config_.capacity_bytes > 0);
  MSD_CHECK(config_.shards >= 1);
  per_shard_budget_ =
      std::max<int64_t>(1, config_.capacity_bytes / static_cast<int64_t>(config_.shards));
  shards_.reserve(static_cast<size_t>(config_.shards));
  for (int32_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BlockCache::Shard& BlockCache::ShardFor(const std::string& flat_key) {
  return *shards_[Fnv1a64(flat_key) % shards_.size()];
}

std::string BlockCache::SpillBlobName(const std::string& flat_key) const {
  // ':' and '+' are path-safe; keep keys under one prefix so the spill store
  // can host other blobs (e.g. a checkpoint) without collisions.
  return "block-spill/" + flat_key;
}

void BlockCache::RegisterTenant(IoTenantId tenant, int64_t capacity_bytes) {
  MSD_CHECK(capacity_bytes >= 0);
  // Slice like the global capacity: the shard hash spreads a tenant's blocks
  // uniformly, so a per-shard share approximates the global budget without a
  // cross-shard accounting lock on the hot path.
  const int64_t slice =
      capacity_bytes > 0
          ? std::max<int64_t>(1, capacity_bytes / static_cast<int64_t>(config_.shards))
          : 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->tenants[tenant].budget = slice;
  }
}

int64_t BlockCache::RemoveTenant(IoTenantId tenant) {
  int64_t released = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->owner != tenant) {
        ++it;
        continue;
      }
      released += static_cast<int64_t>(it->bytes->size());
      it = UnlinkLocked(*shard, it);
    }
    for (auto it = shard->spilled.begin(); it != shard->spilled.end();) {
      it = it->second.owner == tenant ? shard->spilled.erase(it) : std::next(it);
    }
    shard->tenants.erase(tenant);
  }
  return released;
}

// Memory-tier probe shared by Lookup and PeekResident; shard.mu held.
// Returns the bytes, or nullptr after dropping a checksum-corrupt entry.
std::shared_ptr<const std::string> BlockCache::ResidentLocked(Shard& shard,
                                                              const std::string& flat) {
  auto it = shard.index.find(flat);
  if (it == shard.index.end()) {
    return nullptr;
  }
  Entry& entry = *it->second;
  if (Fnv1a64(*entry.bytes) != entry.checksum) {
    // Bit rot (or a hostile test): drop the entry and read as a miss so the
    // caller re-fetches authoritative bytes. Attributed to the owner — it is
    // their copy that rotted, whoever asked.
    ++shard.stats.corruptions;
    ++shard.tenants[entry.owner].stats.corruptions;
    UnlinkLocked(shard, it->second);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return entry.bytes;
}

std::list<BlockCache::Entry>::iterator BlockCache::UnlinkLocked(
    Shard& shard, std::list<Entry>::iterator victim) {
  const int64_t size = static_cast<int64_t>(victim->bytes->size());
  shard.resident_bytes -= size;
  shard.tenants[victim->owner].resident_bytes -= size;
  shard.index.erase(victim->key);
  return shard.lru.erase(victim);
}

std::shared_ptr<const std::string> BlockCache::PeekResident(const BlockKey& key) {
  const std::string flat = FlattenBlockKey(key);
  Shard& shard = ShardFor(flat);
  std::lock_guard<std::mutex> lock(shard.mu);
  return ResidentLocked(shard, flat);
}

std::shared_ptr<const std::string> BlockCache::Lookup(const BlockKey& key, IoTenantId tenant) {
  const std::string flat = FlattenBlockKey(key);
  Shard& shard = ShardFor(flat);
  std::vector<Entry> victims;
  std::shared_ptr<const std::string> result;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    ++shard.stats.lookups;
    ++shard.tenants[tenant].stats.lookups;
    {
      auto owner_it = shard.index.find(flat);
      const IoTenantId owner =
          owner_it != shard.index.end() ? owner_it->second->owner : tenant;
      if (std::shared_ptr<const std::string> resident = ResidentLocked(shard, flat)) {
        ++shard.stats.hits;
        ++shard.tenants[tenant].stats.hits;
        if (owner != tenant) {
          ++shard.stats.cross_tenant_hits;
          ++shard.tenants[tenant].stats.cross_tenant_hits;
        }
        return resident;
      }
    }
    // Second chance: the disk spill tier. The entry is claimed (erased)
    // before the read so the disk I/O can run unlocked; a concurrent Lookup
    // of the same block during that window misses and re-fetches from
    // backing storage — correct, just one wasted Get.
    auto spilled = shard.spilled.find(flat);
    if (spilled != shard.spilled.end() && config_.spill != nullptr) {
      const SpillMeta meta = spilled->second;
      shard.spilled.erase(spilled);
      lock.unlock();
      Result<FileHandle> handle = config_.spill->Open(SpillBlobName(flat), 0);
      std::shared_ptr<const std::string> bytes;
      bool verified = false;
      bool corrupt = false;
      if (handle.ok()) {
        bytes = std::make_shared<const std::string>(handle->Contents());
        verified = bytes->size() == meta.size && Fnv1a64(*bytes) == meta.checksum;
        corrupt = !verified;
      }
      lock.lock();
      if (verified) {
        ++shard.stats.hits;
        ++shard.stats.spill_hits;
        ++shard.tenants[tenant].stats.hits;
        ++shard.tenants[tenant].stats.spill_hits;
        if (meta.owner != tenant) {
          ++shard.stats.cross_tenant_hits;
          ++shard.tenants[tenant].stats.cross_tenant_hits;
        }
        // Promote back into memory (may immediately re-evict others) —
        // unless a racing Insert repopulated the key while the lock was
        // dropped, in which case the resident copy stays authoritative and
        // the verified bytes are simply served. The promoter adopts the
        // block: it is the one paying for the resident copy now.
        if (shard.index.find(flat) == shard.index.end()) {
          shard.lru.push_front(Entry{flat, bytes, meta.checksum, tenant});
          shard.index[flat] = shard.lru.begin();
          shard.resident_bytes += static_cast<int64_t>(bytes->size());
          shard.tenants[tenant].resident_bytes += static_cast<int64_t>(bytes->size());
          victims = EvictLocked(shard);
        }
        result = bytes;
      } else {
        // Unreadable or corrupt spill entry: already forgotten above.
        if (corrupt) {
          ++shard.stats.corruptions;
          ++shard.tenants[meta.owner].stats.corruptions;
        }
        ++shard.stats.misses;
        ++shard.tenants[tenant].stats.misses;
      }
    } else {
      ++shard.stats.misses;
      ++shard.tenants[tenant].stats.misses;
    }
  }
  SpillOutsideLock(shard, std::move(victims));
  return result;
}

void BlockCache::Insert(const BlockKey& key, std::shared_ptr<const std::string> bytes,
                        IoTenantId tenant) {
  MSD_CHECK(bytes != nullptr);
  const std::string flat = FlattenBlockKey(key);
  Shard& shard = ShardFor(flat);
  std::vector<Entry> victims;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(flat);
    if (it != shard.index.end()) {
      UnlinkLocked(shard, it->second);
    }
    shard.spilled.erase(flat);  // the fresh copy supersedes any spilled one
    shard.lru.push_front(Entry{flat, bytes, Fnv1a64(*bytes), tenant});
    shard.index[flat] = shard.lru.begin();
    shard.resident_bytes += static_cast<int64_t>(bytes->size());
    shard.tenants[tenant].resident_bytes += static_cast<int64_t>(bytes->size());
    ++shard.stats.insertions;
    ++shard.tenants[tenant].stats.insertions;
    victims = EvictLocked(shard);
  }
  SpillOutsideLock(shard, std::move(victims));
}

bool BlockCache::Erase(const BlockKey& key) {
  const std::string flat = FlattenBlockKey(key);
  Shard& shard = ShardFor(flat);
  std::lock_guard<std::mutex> lock(shard.mu);
  bool existed = false;
  auto it = shard.index.find(flat);
  if (it != shard.index.end()) {
    UnlinkLocked(shard, it->second);
    existed = true;
  }
  // The spilled blob itself is left behind; dropping the index entry is what
  // makes it unreachable (promotion always verifies against the index).
  existed |= shard.spilled.erase(flat) > 0;
  return existed;
}

std::vector<BlockCache::Entry> BlockCache::EvictLocked(Shard& shard) {
  std::vector<Entry> victims;
  auto evict = [&](std::list<Entry>::iterator victim) {
    ++shard.stats.evictions;
    ++shard.tenants[victim->owner].stats.evictions;
    // Copy (not move) before unlinking: UnlinkLocked still reads the entry's
    // key/owner/bytes for the index erase and the resident accounting.
    if (config_.spill != nullptr) {
      victims.push_back(*victim);
    }
    UnlinkLocked(shard, victim);
  };
  // Per-tenant budget pressure first: an over-budget tenant sheds its OWN
  // least-recent entries, walking the shared LRU from the back. The shard's
  // MRU entry is always spared — a block larger than the whole budget must
  // still be servable once (mirrors the global lru.size() > 1 guard).
  for (auto& [tenant, tshard] : shard.tenants) {
    if (tshard.budget <= 0) {
      continue;
    }
    auto it = shard.lru.end();
    while (tshard.resident_bytes > tshard.budget && it != shard.lru.begin()) {
      --it;
      if (it == shard.lru.begin()) {
        break;
      }
      if (it->owner != tenant) {
        continue;
      }
      evict(it++);
    }
  }
  // Then the shard-wide budget, owner-blind as before.
  while (shard.resident_bytes > per_shard_budget_ && shard.lru.size() > 1) {
    evict(std::prev(shard.lru.end()));
  }
  return victims;
}

void BlockCache::SpillOutsideLock(Shard& shard, std::vector<Entry> victims) {
  // The spill Put fsyncs; doing it under shard.mu would stall every reader
  // of the shard per eviction. Between the eviction and the index write
  // below the block is in neither tier — a concurrent Lookup re-fetches
  // from backing storage, and verify-on-promote catches any racing
  // blob/index divergence as a plain miss.
  for (Entry& victim : victims) {
    if (config_.spill->Put(SpillBlobName(victim.key), *victim.bytes).ok()) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.spilled[victim.key] = SpillMeta{victim.checksum, victim.bytes->size(), victim.owner};
      ++shard.stats.spill_writes;
      ++shard.tenants[victim.owner].stats.spill_writes;
    }
  }
}

BlockCache::Stats BlockCache::stats() const {
  // Lock every shard for the whole aggregation: the snapshot is a consistent
  // cut, so invariants like lookups == hits + misses hold exactly even while
  // concurrent tenants are mutating other shards. Shards are always acquired
  // in index order (here and in tenant_stats), so the all-shard sweeps cannot
  // deadlock each other.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  Stats total;
  for (const auto& shard : shards_) {
    total.lookups += shard->stats.lookups;
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.spill_writes += shard->stats.spill_writes;
    total.spill_hits += shard->stats.spill_hits;
    total.corruptions += shard->stats.corruptions;
    total.cross_tenant_hits += shard->stats.cross_tenant_hits;
    total.resident_bytes += shard->resident_bytes;
  }
  return total;
}

BlockCache::Stats BlockCache::tenant_stats(IoTenantId tenant) const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  Stats total;
  for (const auto& shard : shards_) {
    auto it = shard->tenants.find(tenant);
    if (it == shard->tenants.end()) {
      continue;
    }
    const Stats& s = it->second.stats;
    total.lookups += s.lookups;
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.spill_writes += s.spill_writes;
    total.spill_hits += s.spill_hits;
    total.corruptions += s.corruptions;
    total.cross_tenant_hits += s.cross_tenant_hits;
    total.resident_bytes += it->second.resident_bytes;
  }
  return total;
}

void BlockCache::SnapshotAll(Stats* aggregate, std::map<IoTenantId, Stats>* per_tenant) const {
  // One all-shard locked pass (index order, like stats()/tenant_stats()):
  // every slice and the aggregate describe the same instant, so the exported
  // snapshot can never be torn — per-tenant invariants hold and the tenant
  // slices sum to the aggregate exactly.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mu);
  }
  *aggregate = Stats{};
  per_tenant->clear();
  for (const auto& shard : shards_) {
    aggregate->lookups += shard->stats.lookups;
    aggregate->hits += shard->stats.hits;
    aggregate->misses += shard->stats.misses;
    aggregate->insertions += shard->stats.insertions;
    aggregate->evictions += shard->stats.evictions;
    aggregate->spill_writes += shard->stats.spill_writes;
    aggregate->spill_hits += shard->stats.spill_hits;
    aggregate->corruptions += shard->stats.corruptions;
    aggregate->cross_tenant_hits += shard->stats.cross_tenant_hits;
    aggregate->resident_bytes += shard->resident_bytes;
    for (const auto& [id, tenant_shard] : shard->tenants) {
      Stats& slice = (*per_tenant)[id];
      const Stats& s = tenant_shard.stats;
      slice.lookups += s.lookups;
      slice.hits += s.hits;
      slice.misses += s.misses;
      slice.insertions += s.insertions;
      slice.evictions += s.evictions;
      slice.spill_writes += s.spill_writes;
      slice.spill_hits += s.spill_hits;
      slice.corruptions += s.corruptions;
      slice.cross_tenant_hits += s.cross_tenant_hits;
      slice.resident_bytes += tenant_shard.resident_bytes;
    }
  }
}

bool BlockCache::CorruptResidentBlockForTest(const BlockKey& key) {
  const std::string flat = FlattenBlockKey(key);
  Shard& shard = ShardFor(flat);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(flat);
  if (it == shard.index.end() || it->second->bytes->empty()) {
    return false;
  }
  std::string mutated = *it->second->bytes;
  mutated[mutated.size() / 2] = static_cast<char>(mutated[mutated.size() / 2] ^ 0x40);
  // Swap in the flipped copy but keep the original checksum, so verification
  // must catch it.
  it->second->bytes = std::make_shared<const std::string>(std::move(mutated));
  return true;
}

}  // namespace msd
