// FaultInjectingStore: an ObjectStore decorator that makes storage unreliable.
//
// The failure half of the simulated-remote harness (LatencyInjectingStore is
// the latency half; compose them as fault(latency(base)) so an injected
// timeout still pays the latency of the Get it interrupted). Every data-plane
// Get rolls a deterministic die — a hash chain over (seed, name, offset,
// length, attempt index) — so the same schedule replays identically across
// runs, threads, and process restarts: retry attempt k of a given range
// always sees the same verdict no matter how workers interleave.
//
// Injectable misbehaviours:
//  - transient Unavailable (connection refused: fails before the base Get),
//  - transient DeadlineExceeded (timeout: fails after paying the base Get),
//  - fail-first-N-then-succeed per (name, offset, length) range,
//  - bit-flip corruption of the returned payload (exercises the MSDF
//    row-group checksum + cache-invalidate path), and
//  - brownouts: while engaged, every matching Get fails Unavailable — either
//    scoped to the next N Gets or toggled on/off around a step window.
//
// Metadata ops (Exists, SizeOf, List), Open, and writes are never faulted:
// the retry machinery under test lives in the ranged-read path (IoScheduler),
// and un-faulted metadata keeps corpus setup deterministic.
#ifndef SRC_IO_FAULT_INJECTING_STORE_H_
#define SRC_IO_FAULT_INJECTING_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/object_store.h"

namespace msd {

// Deterministic seeded schedule of storage misbehaviour. Probabilities are
// per-Get and independent; a Get can only suffer one fault (checked in order:
// brownout, fail-first-N, unavailable, deadline, corruption).
struct FaultSchedule {
  uint64_t seed = 0x5eed;
  // Per-Get probability of a transient Unavailable (fails fast, base not hit).
  double unavailable_p = 0.0;
  // Per-Get probability of a DeadlineExceeded after the base Get completes.
  double deadline_p = 0.0;
  // Per-Get probability of flipping one bit of the returned payload.
  double corrupt_p = 0.0;
  // First N Gets of every distinct (name, offset, length) range fail
  // Unavailable, then succeed — the classic fail-N-then-succeed shape that
  // bounded retries must ride out.
  int32_t fail_first_n = 0;
  // When non-empty, only object names containing this substring are eligible
  // for any fault — lets a test target one source's files.
  std::string match_substr;
  // Install the decorator even with every probability at zero, so a harness
  // can script brownouts (set_brownout / BrownoutNextGets) at runtime against
  // an otherwise healthy store.
  bool install = false;

  bool enabled() const {
    return install || unavailable_p > 0.0 || deadline_p > 0.0 || corrupt_p > 0.0 ||
           fail_first_n > 0;
  }
};

// Pure decorator: every virtual member forwards to `base`; the inherited
// in-memory storage of the ObjectStore base subobject is never used.
class FaultInjectingStore final : public ObjectStore {
 public:
  FaultInjectingStore(ObjectStore* base, FaultSchedule schedule);

  Status Put(const std::string& name, std::string bytes) override;
  bool Exists(const std::string& name) const override;
  Status Delete(const std::string& name) override;
  std::vector<std::string> List(const std::string& prefix = "") const override;
  int64_t TotalBytes() const override;
  bool disk_backed() const override;
  const std::string& root_dir() const override;
  Result<FileHandle> Open(const std::string& name, MemoryAccountant::NodeId node) const override;
  Result<std::string> Get(const std::string& name, int64_t offset,
                          int64_t length) const override;
  Result<int64_t> SizeOf(const std::string& name) const override;

  const FaultSchedule& schedule() const { return schedule_; }

  // Brownout controls. While engaged, every matching Get fails Unavailable.
  void set_brownout(bool on) { brownout_.store(on, std::memory_order_release); }
  bool brownout() const { return brownout_.load(std::memory_order_acquire); }
  // One-shot scoped brownout: the next `n` matching Gets fail, then service
  // resumes — deterministic under a single-threaded consumer.
  void BrownoutNextGets(int64_t n) { brownout_budget_.store(n, std::memory_order_release); }

  // Observability for the counter-matching assertions in tests/bench.
  int64_t gets() const { return gets_.load(std::memory_order_relaxed); }
  int64_t faults_injected() const { return faults_.load(std::memory_order_relaxed); }
  int64_t corruptions_injected() const { return corruptions_.load(std::memory_order_relaxed); }
  int64_t brownout_failures() const { return brownout_failures_.load(std::memory_order_relaxed); }

 private:
  bool Matches(const std::string& name) const;
  // The deterministic die: uniform [0,1) from the fault hash chain.
  static double Roll(uint64_t seed, const std::string& name, int64_t offset, int64_t length,
                     int64_t attempt, uint64_t salt);

  ObjectStore* base_;
  FaultSchedule schedule_;
  std::atomic<bool> brownout_{false};
  mutable std::atomic<int64_t> brownout_budget_{0};
  // Per-range attempt counters, so retry attempt k of a range rolls a fresh
  // (but replayable) die and fail-first-N can count down.
  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, int64_t> attempts_;
  mutable std::atomic<int64_t> gets_{0};
  mutable std::atomic<int64_t> faults_{0};
  mutable std::atomic<int64_t> corruptions_{0};
  mutable std::atomic<int64_t> brownout_failures_{0};
};

}  // namespace msd

#endif  // SRC_IO_FAULT_INJECTING_STORE_H_
