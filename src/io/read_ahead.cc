#include "src/io/read_ahead.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"

namespace msd {

namespace {

// Non-blocking readiness probe for a shared_future.
template <typename T>
bool Ready(const std::shared_future<T>& f) {
  return f.valid() &&
         f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

}  // namespace

ReadAhead::ReadAhead(IoScheduler* io, int32_t groups_ahead, IoTenantId tenant)
    : io_(io), k_(groups_ahead), tenant_(tenant) {
  MSD_CHECK(io_ != nullptr);
  MSD_CHECK(k_ >= 0);
}

const MsdfFileInfo* ReadAhead::InfoFor(const std::string& name) {
  auto ready = infos_.find(name);
  if (ready != infos_.end()) {
    return &ready->second;
  }
  if (failed_.count(name) > 0) {
    return nullptr;
  }
  auto it = pending_.find(name);
  if (it == pending_.end()) {
    Result<int64_t> size = io_->store(tenant_)->SizeOf(name);
    if (!size.ok() ||
        size.value() < static_cast<int64_t>(sizeof(uint32_t) + kMsdfTailBytes)) {
      failed_.insert(name);
      return nullptr;
    }
    PendingFooter pending;
    pending.file_size = size.value();
    pending.tail = io_->Fetch(name, size.value() - static_cast<int64_t>(kMsdfTailBytes),
                              static_cast<int64_t>(kMsdfTailBytes), /*is_prefetch=*/true,
                              tenant_);
    it = pending_.emplace(name, std::move(pending)).first;
  }
  PendingFooter& pending = it->second;
  if (!pending.body.valid()) {
    if (!Ready(pending.tail)) {
      return nullptr;  // harvest on a later Advance
    }
    const IoScheduler::BlockResult& tail = pending.tail.get();
    Result<uint64_t> footer_offset =
        tail.ok() ? ParseMsdfTail(**tail, static_cast<uint64_t>(pending.file_size))
                  : Result<uint64_t>(tail.status());
    if (!footer_offset.ok()) {
      // Rate-limited: under a storage brownout every file in the read-ahead
      // window fails its footer parse each Advance, which is thousands of
      // identical lines per second at full spam.
      MSD_LOG_WARN_EVERY_N(32, "read-ahead: footer of %s unreadable (%s); prefetch skips this file",
                           name.c_str(), footer_offset.status().ToString().c_str());
      failed_.insert(name);
      pending_.erase(it);
      return nullptr;
    }
    pending.body_offset = static_cast<int64_t>(footer_offset.value());
    pending.body = io_->Fetch(
        name, pending.body_offset,
        pending.file_size - static_cast<int64_t>(kMsdfTailBytes) - pending.body_offset,
        /*is_prefetch=*/true, tenant_);
  }
  if (!Ready(pending.body)) {
    return nullptr;
  }
  const IoScheduler::BlockResult& body = pending.body.get();
  Result<MsdfFileInfo> info =
      body.ok() ? ParseMsdfFooterBody(**body, pending.file_size - pending.body_offset)
                : Result<MsdfFileInfo>(body.status());
  pending_.erase(it);
  if (!info.ok()) {
    failed_.insert(name);
    return nullptr;
  }
  return &infos_.emplace(name, std::move(info.value())).first->second;
}

int64_t ReadAhead::Advance(const std::vector<std::string>& files, int64_t file_index,
                           int64_t group_index) {
  // Drop per-file state the cursor has moved past (it never returns outside
  // a Reset), so retained footers stay bounded by the lookahead window.
  for (int64_t f = pruned_below_; f < file_index && f < static_cast<int64_t>(files.size());
       ++f) {
    infos_.erase(files[static_cast<size_t>(f)]);
    pending_.erase(files[static_cast<size_t>(f)]);
    failed_.erase(files[static_cast<size_t>(f)]);
  }
  pruned_below_ = std::max(pruned_below_, file_index);

  int64_t issued = 0;
  int64_t budget = k_;
  int64_t file = file_index;
  int64_t group = group_index;
  while (budget > 0 && file < static_cast<int64_t>(files.size())) {
    const std::string& name = files[static_cast<size_t>(file)];
    const MsdfFileInfo* info = InfoFor(name);
    if (info == nullptr) {
      // Footer still in flight (its fetches were just issued) or unreadable;
      // either way do not stall the loader here.
      break;
    }
    if (group >= static_cast<int64_t>(info->row_groups.size())) {
      ++file;
      group = 0;
      continue;
    }
    const bool already_issued =
        file < hwm_file_ || (file == hwm_file_ && group <= hwm_group_);
    if (!already_issued) {
      const RowGroupMeta& meta = info->row_groups[static_cast<size_t>(group)];
      io_->Fetch(name, meta.offset, meta.bytes, /*is_prefetch=*/true, tenant_);
      ++issued;
      hwm_file_ = file;
      hwm_group_ = group;
    }
    --budget;  // the lookahead window is consumed either way
    ++group;
  }
  groups_prefetched_ += issued;
  return issued;
}

void ReadAhead::Reset() {
  hwm_file_ = -1;
  hwm_group_ = -1;
  pruned_below_ = 0;
  failed_.clear();  // a transient storage error gets a retry after a rewind
}

}  // namespace msd
