// ReadAhead: cursor-driven row-group prefetch for one SourceLoader.
//
// A loader consumes row groups strictly in (file, group) order, so its cursor
// predicts its next reads exactly. Each time the cursor advances, this policy
// issues async fetches (through the IoScheduler, into the BlockCache) for the
// next K row groups ahead of it — crossing file boundaries by resolving the
// next file's footer through the same cache.
//
// Non-blocking by design: footers that are not yet resident are requested as
// prefetches and harvested on a later Advance() call instead of stalling the
// loader. The loader's own synchronous read of a prefetched block then either
// hits the cache or coalesces onto the in-flight fetch — either way the
// storage round-trip overlaps transform work instead of serializing with it.
//
// Checkpoint resume re-warms the pipeline by calling Advance() from
// SourceLoader::Restore() with the restored cursor before the first refill.
#ifndef SRC_IO_READ_AHEAD_H_
#define SRC_IO_READ_AHEAD_H_

#include <cstdint>
#include <future>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/io/io_scheduler.h"
#include "src/storage/columnar.h"

namespace msd {

class ReadAhead {
 public:
  // Prefetches up to `groups_ahead` row groups past the cursor. `io` is not
  // owned and must outlive this policy. `tenant` routes and attributes every
  // fetch this policy issues (shared multi-tenant I/O plane).
  ReadAhead(IoScheduler* io, int32_t groups_ahead, IoTenantId tenant = kDefaultIoTenant);

  // Called with the loader's cursor: the next (file_index, group_index) it
  // will read. Issues prefetches for that position and the K-1 following
  // groups (skipping positions already issued — consecutive calls each add
  // the newly exposed tail of the window); returns the fetches issued.
  int64_t Advance(const std::vector<std::string>& files, int64_t file_index,
                  int64_t group_index);

  // Forgets the issued-position high-water mark — and any footer-failure
  // blacklist — so the next Advance re-issues from the cursor. Call after a
  // rewind (checkpoint restore): the cursor moves backwards, the old
  // window's blocks may have been evicted, and a transient storage error
  // from the previous life deserves a retry.
  void Reset();

  int64_t groups_prefetched() const { return groups_prefetched_; }

 private:
  // Non-blocking footer resolution state machine. Returns the file's info if
  // resident, nullptr while its tail/body fetches are still in flight (or the
  // file is unreadable — the loader's own open surfaces that error).
  const MsdfFileInfo* InfoFor(const std::string& name);

  struct PendingFooter {
    int64_t file_size = 0;
    std::shared_future<IoScheduler::BlockResult> tail;
    std::shared_future<IoScheduler::BlockResult> body;  // valid once tail parsed
    int64_t body_offset = 0;
  };

  IoScheduler* io_;
  int32_t k_;
  IoTenantId tenant_;
  std::unordered_map<std::string, MsdfFileInfo> infos_;
  std::unordered_map<std::string, PendingFooter> pending_;
  // Files whose footer could not be resolved; skipped (the loader's own open
  // surfaces the real error) until a Reset() grants a retry.
  std::unordered_set<std::string> failed_;
  // Highest (file, group) already issued; positions at or below it are
  // counted against the window but not re-fetched.
  int64_t hwm_file_ = -1;
  int64_t hwm_group_ = -1;
  // Files below this index are behind the cursor: their cached footers (and
  // failure marks) have been dropped — the cursor only moves forward, so
  // retained state would grow with every file ever visited.
  int64_t pruned_below_ = 0;
  int64_t groups_prefetched_ = 0;
};

}  // namespace msd

#endif  // SRC_IO_READ_AHEAD_H_
