#include "src/io/latency_store.h"

#include <chrono>
#include <thread>

#include "src/common/logging.h"

namespace msd {

LatencyInjectingStore::LatencyInjectingStore(ObjectStore* base, RemoteStorageParams params)
    : base_(base), params_(params), get_latency_override_(params.get_latency) {
  MSD_CHECK(base_ != nullptr);
}

void LatencyInjectingStore::ChargeGet(int64_t bytes) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  bytes_served_.fetch_add(bytes, std::memory_order_relaxed);
  SimTime delay = get_latency_override_.load(std::memory_order_relaxed);
  if (params_.bandwidth_bytes_per_sec > 0) {
    delay += FromSeconds(static_cast<double>(bytes) / params_.bandwidth_bytes_per_sec);
  }
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

Status LatencyInjectingStore::Put(const std::string& name, std::string bytes) {
  return base_->Put(name, std::move(bytes));
}

bool LatencyInjectingStore::Exists(const std::string& name) const {
  return base_->Exists(name);
}

Status LatencyInjectingStore::Delete(const std::string& name) { return base_->Delete(name); }

std::vector<std::string> LatencyInjectingStore::List(const std::string& prefix) const {
  return base_->List(prefix);
}

int64_t LatencyInjectingStore::TotalBytes() const { return base_->TotalBytes(); }

bool LatencyInjectingStore::disk_backed() const { return base_->disk_backed(); }

const std::string& LatencyInjectingStore::root_dir() const { return base_->root_dir(); }

Result<FileHandle> LatencyInjectingStore::Open(const std::string& name,
                                               MemoryAccountant::NodeId node) const {
  Result<FileHandle> handle = base_->Open(name, node);
  if (handle.ok()) {
    // Opening a whole blob is one Get of its full payload (the "download the
    // file" cost a ranged reader avoids).
    ChargeGet(handle->size());
  }
  return handle;
}

Result<std::string> LatencyInjectingStore::Get(const std::string& name, int64_t offset,
                                               int64_t length) const {
  Result<std::string> bytes = base_->Get(name, offset, length);
  if (bytes.ok()) {
    ChargeGet(static_cast<int64_t>(bytes->size()));
  }
  return bytes;
}

Result<int64_t> LatencyInjectingStore::SizeOf(const std::string& name) const {
  return base_->SizeOf(name);
}

}  // namespace msd
