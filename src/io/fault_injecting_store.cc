#include "src/io/fault_injecting_store.h"

#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace msd {

FaultInjectingStore::FaultInjectingStore(ObjectStore* base, FaultSchedule schedule)
    : base_(base), schedule_(std::move(schedule)) {
  MSD_CHECK(base_ != nullptr);
  MSD_CHECK(schedule_.unavailable_p >= 0.0 && schedule_.unavailable_p <= 1.0);
  MSD_CHECK(schedule_.deadline_p >= 0.0 && schedule_.deadline_p <= 1.0);
  MSD_CHECK(schedule_.corrupt_p >= 0.0 && schedule_.corrupt_p <= 1.0);
  MSD_CHECK(schedule_.fail_first_n >= 0);
}

Status FaultInjectingStore::Put(const std::string& name, std::string bytes) {
  return base_->Put(name, std::move(bytes));
}

bool FaultInjectingStore::Exists(const std::string& name) const { return base_->Exists(name); }

Status FaultInjectingStore::Delete(const std::string& name) { return base_->Delete(name); }

std::vector<std::string> FaultInjectingStore::List(const std::string& prefix) const {
  return base_->List(prefix);
}

int64_t FaultInjectingStore::TotalBytes() const { return base_->TotalBytes(); }

bool FaultInjectingStore::disk_backed() const { return base_->disk_backed(); }

const std::string& FaultInjectingStore::root_dir() const { return base_->root_dir(); }

Result<FileHandle> FaultInjectingStore::Open(const std::string& name,
                                             MemoryAccountant::NodeId node) const {
  return base_->Open(name, node);
}

Result<int64_t> FaultInjectingStore::SizeOf(const std::string& name) const {
  return base_->SizeOf(name);
}

bool FaultInjectingStore::Matches(const std::string& name) const {
  return schedule_.match_substr.empty() ||
         name.find(schedule_.match_substr) != std::string::npos;
}

double FaultInjectingStore::Roll(uint64_t seed, const std::string& name, int64_t offset,
                                 int64_t length, int64_t attempt, uint64_t salt) {
  // Chain the range identity and attempt index through FNV-1a; fold to a
  // 53-bit mantissa for a uniform double. No wall clock, no shared RNG
  // state: the verdict for (range, attempt) is a pure function of the seed.
  uint64_t h = Fnv1a64(name, seed ^ salt);
  const uint64_t words[3] = {static_cast<uint64_t>(offset), static_cast<uint64_t>(length),
                             static_cast<uint64_t>(attempt)};
  h = Fnv1a64(std::string_view(reinterpret_cast<const char*>(words), sizeof(words)), h);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Result<std::string> FaultInjectingStore::Get(const std::string& name, int64_t offset,
                                             int64_t length) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  if (!Matches(name)) {
    return base_->Get(name, offset, length);
  }

  // Brownouts trump the probabilistic schedule: while engaged, every
  // matching Get is refused before touching the base store.
  if (brownout_.load(std::memory_order_acquire)) {
    brownout_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected brownout: " + name);
  }
  if (brownout_budget_.load(std::memory_order_acquire) > 0 &&
      brownout_budget_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
    brownout_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected brownout: " + name);
  }

  int64_t attempt = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempts_[name + ":" + std::to_string(offset) + "+" + std::to_string(length)]++;
  }

  if (attempt < schedule_.fail_first_n) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected fail-first-" + std::to_string(schedule_.fail_first_n) +
                               " (attempt " + std::to_string(attempt) + "): " + name);
  }
  if (schedule_.unavailable_p > 0.0 &&
      Roll(schedule_.seed, name, offset, length, attempt, /*salt=*/0x1) <
          schedule_.unavailable_p) {
    // Connection refused: fails fast, the base store (and any latency
    // decorator under it) is never reached.
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected unavailable: " + name);
  }

  Result<std::string> bytes = base_->Get(name, offset, length);
  if (!bytes.ok()) {
    return bytes;
  }

  if (schedule_.deadline_p > 0.0 &&
      Roll(schedule_.seed, name, offset, length, attempt, /*salt=*/0x2) < schedule_.deadline_p) {
    // Timeout: the transfer happened (latency was paid) but the response is
    // discarded, exactly like a deadline firing on a slow Get.
    faults_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("injected deadline: " + name);
  }
  if (schedule_.corrupt_p > 0.0 && !bytes->empty() &&
      Roll(schedule_.seed, name, offset, length, attempt, /*salt=*/0x3) < schedule_.corrupt_p) {
    std::string mutated = std::move(bytes.value());
    const uint64_t h = Fnv1a64(name, schedule_.seed ^ static_cast<uint64_t>(attempt));
    const size_t bit = static_cast<size_t>(h % (mutated.size() * 8));
    mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
    corruptions_.fetch_add(1, std::memory_order_relaxed);
    return mutated;
  }
  return bytes;
}

}  // namespace msd
