// LatencyInjectingStore: an ObjectStore decorator that makes storage remote.
//
// MegaScale-Data reads from HDFS/S3-class storage, where every Get pays an
// RPC floor plus payload transfer at endpoint bandwidth. The in-memory
// ObjectStore answers in nanoseconds, which hides exactly the stall the
// src/io/ cache + read-ahead subsystem exists to remove. This decorator
// wraps any ObjectStore and charges each data read (Get, Open) a configurable
// latency + size/bandwidth delay — defaults reuse the sim/network constants —
// so remote-storage behaviour is benchmarkable in-process (bench_io_cache).
//
// Only data-plane reads are charged; metadata ops (Exists, SizeOf, List) and
// writes pass through untouched, so corpus materialization stays fast and the
// Get counters cleanly measure the loader read path.
#ifndef SRC_IO_LATENCY_STORE_H_
#define SRC_IO_LATENCY_STORE_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/sim/network.h"
#include "src/storage/object_store.h"

namespace msd {

struct RemoteStorageParams {
  // Wall-clock delay charged per Get/Open, before transfer. Defaults to the
  // network model's RPC floor.
  SimTime get_latency = NetworkParams().base_latency;
  // Payload transfer rate; <= 0 disables the bandwidth term.
  double bandwidth_bytes_per_sec = NetworkParams().bandwidth_bytes_per_sec;
};

// Pure decorator: every virtual member forwards to `base`; the inherited
// in-memory storage of the ObjectStore base subobject is never used.
class LatencyInjectingStore final : public ObjectStore {
 public:
  LatencyInjectingStore(ObjectStore* base, RemoteStorageParams params);

  Status Put(const std::string& name, std::string bytes) override;
  bool Exists(const std::string& name) const override;
  Status Delete(const std::string& name) override;
  std::vector<std::string> List(const std::string& prefix = "") const override;
  int64_t TotalBytes() const override;
  bool disk_backed() const override;
  const std::string& root_dir() const override;
  Result<FileHandle> Open(const std::string& name, MemoryAccountant::NodeId node) const override;
  Result<std::string> Get(const std::string& name, int64_t offset,
                          int64_t length) const override;
  Result<int64_t> SizeOf(const std::string& name) const override;

  const RemoteStorageParams& params() const { return params_; }
  // Live override of the per-Get RPC floor — benches script mid-stream
  // storage brownouts with it (5 ms -> 25 ms and back). Thread-safe; the
  // bandwidth term is unaffected.
  void set_get_latency(SimTime latency) {
    get_latency_override_.store(latency, std::memory_order_relaxed);
  }
  SimTime get_latency() const {
    return get_latency_override_.load(std::memory_order_relaxed);
  }
  // Backing reads issued (Get + Open) — the dedup assertions in
  // tests/io_test.cc count these.
  int64_t gets() const { return gets_.load(std::memory_order_relaxed); }
  int64_t bytes_served() const { return bytes_served_.load(std::memory_order_relaxed); }

 private:
  // Sleeps get_latency + bytes/bandwidth and bumps the counters.
  void ChargeGet(int64_t bytes) const;

  ObjectStore* base_;
  RemoteStorageParams params_;
  std::atomic<SimTime> get_latency_override_;
  mutable std::atomic<int64_t> gets_{0};
  mutable std::atomic<int64_t> bytes_served_{0};
};

}  // namespace msd

#endif  // SRC_IO_LATENCY_STORE_H_
