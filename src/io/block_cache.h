// BlockCache: a sharded, checksummed LRU over byte-range blocks.
//
// The read-through tier between the loaders and (simulated-)remote storage:
// blocks are keyed by (object, offset, length) — exactly the ranges the MSDF
// readers request (row groups, footers, tails), so a hit returns the same
// bytes a backing Get would, and the data plane stays byte-identical with the
// cache on or off.
//
//  - Sharded: the key hash picks a shard; each shard has its own mutex, LRU
//    list, and slice of the memory budget, so concurrent loaders do not
//    serialize on one lock.
//  - Checksummed: every entry carries its FNV-1a at insert time and is
//    re-verified on hit. A mismatch (bit rot, stray write) drops the entry,
//    counts a corruption, and reads as a miss — the caller re-fetches from
//    backing storage instead of serving poison.
//  - Spill tier (optional): evicted blocks are written to a disk-backed
//    ObjectStore and promoted back on demand, checksum-verified against the
//    in-memory spill index — a second-chance tier bigger than RAM.
//  - Multi-tenant (src/service/): every entry is owned by the tenant that
//    inserted it. A registered per-tenant byte budget adds eviction pressure
//    that only ever selects the over-budget tenant's own entries, so one
//    scan-heavy job cannot flush its neighbours — while Lookup hits stay
//    shared across tenants (cross-job dedup is the whole point of co-hosting).
#ifndef SRC_IO_BLOCK_CACHE_H_
#define SRC_IO_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/storage/object_store.h"

namespace msd {

// Tenant tag threaded through the shared I/O plane (cache entries, scheduler
// queues, loader reads). Tenant 0 is the implicit default for single-job
// sessions — it always exists and has no budget, so legacy call sites that
// never mention tenants keep their exact behaviour.
using IoTenantId = int32_t;
inline constexpr IoTenantId kDefaultIoTenant = 0;

struct BlockKey {
  std::string name;  // object the block belongs to
  int64_t offset = 0;
  int64_t length = 0;
};

class BlockCache {
 public:
  struct Config {
    int64_t capacity_bytes = 256 * kMiB;
    int32_t shards = 8;
    // Evicted blocks spill here when set (disk-backed ObjectStore); nullptr
    // disables the tier. Not owned.
    ObjectStore* spill = nullptr;
  };

  struct Stats {
    int64_t lookups = 0;
    int64_t hits = 0;         // served from memory (includes spill promotions)
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    int64_t spill_writes = 0;  // evictions that landed in the disk tier
    int64_t spill_hits = 0;    // misses rescued by the disk tier
    int64_t corruptions = 0;   // checksum mismatches dropped (memory or spill)
    int64_t resident_bytes = 0;
    // Hits on a block another tenant paid for — the cross-job cache-sharing
    // win the multi-tenant service exists to harvest.
    int64_t cross_tenant_hits = 0;
  };

  explicit BlockCache(Config config);

  // The cached bytes for `key`, or nullptr on miss. Verifies the entry
  // checksum (corrupt entries are dropped and read as a miss) and consults
  // the spill tier before giving up. `tenant` only attributes the stats (and
  // adopts a spill promotion); any tenant hits any tenant's blocks.
  std::shared_ptr<const std::string> Lookup(const BlockKey& key,
                                            IoTenantId tenant = kDefaultIoTenant);

  // Memory-tier-only probe that leaves the hit/miss counters untouched (the
  // checksum is still verified; corruption still counts). The IoScheduler
  // uses it for the re-check under its own mutex, where touching the spill
  // tier's disk would serialize every concurrent fetch.
  std::shared_ptr<const std::string> PeekResident(const BlockKey& key);

  // Inserts (or refreshes) the block owned by `tenant`, evicting LRU entries
  // over the tenant's budget (its own entries only) and the shard budget.
  void Insert(const BlockKey& key, std::shared_ptr<const std::string> bytes,
              IoTenantId tenant = kDefaultIoTenant);

  // Drops the block from every tier (memory and spill index). Returns true if
  // any copy existed. Used by readers that detect payload corruption above
  // the cache (e.g. an MSDF row-group checksum mismatch) to force the next
  // fetch back to authoritative storage.
  bool Erase(const BlockKey& key);

  // ---- Tenant lifecycle (src/service/ control plane) ----
  // Installs (or updates) a per-tenant byte budget, sliced across shards like
  // the global capacity. capacity_bytes = 0 removes the per-tenant pressure
  // (the tenant then competes only under the shard budget).
  void RegisterTenant(IoTenantId tenant, int64_t capacity_bytes);
  // Evicts every block the tenant owns (memory + spill index, nothing is
  // re-spilled) and forgets its budget and counters. Returns the resident
  // bytes released. The aggregate stats() keep the tenant's history.
  int64_t RemoveTenant(IoTenantId tenant);

  // Consistent aggregate snapshot: all shards are locked together, so cross-
  // counter invariants (lookups == hits + misses) hold exactly even under
  // concurrent multi-tenant readers.
  Stats stats() const;
  // Consistent per-tenant view. Lookup-side counters are attributed to the
  // requesting tenant, insertions to the inserter, evictions and resident
  // bytes to the entry's owner.
  Stats tenant_stats(IoTenantId tenant) const;
  // Aggregate + every tenant slice from ONE all-shard locking pass, so the
  // slices and the aggregate describe the same instant (the telemetry
  // export's torn-snapshot guarantee: per-slice invariants hold AND the
  // slices sum to the aggregate exactly). Tenants appear once they have any
  // attributed activity or budget.
  void SnapshotAll(Stats* aggregate, std::map<IoTenantId, Stats>* per_tenant) const;
  const Config& config() const { return config_; }

  // Test hook: flips one bit of the resident copy of `key` without updating
  // its checksum, so the next Lookup must detect the corruption. Returns
  // false if the block is not resident in memory.
  bool CorruptResidentBlockForTest(const BlockKey& key);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> bytes;
    uint64_t checksum = 0;
    IoTenantId owner = kDefaultIoTenant;
  };
  struct SpillMeta {
    uint64_t checksum = 0;
    uint64_t size = 0;
    IoTenantId owner = kDefaultIoTenant;
  };
  // Per-tenant slice of one shard: budget share, resident accounting, and
  // the tenant-attributed counters behind tenant_stats().
  struct TenantShard {
    int64_t budget = 0;  // 0 = no per-tenant pressure
    int64_t resident_bytes = 0;
    Stats stats;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    // Blocks currently living only in the spill tier.
    std::unordered_map<std::string, SpillMeta> spilled;
    int64_t resident_bytes = 0;
    Stats stats;
    std::map<IoTenantId, TenantShard> tenants;
  };

  Shard& ShardFor(const std::string& flat_key);
  // Memory-tier probe (checksum-verified, corruption dropped); shard.mu held.
  std::shared_ptr<const std::string> ResidentLocked(Shard& shard, const std::string& flat_key);
  // Evicts from the back of `shard` until every over-budget tenant and the
  // shard itself fit their budgets; returns the victims destined for the
  // spill tier. Called with shard.mu held.
  std::vector<Entry> EvictLocked(Shard& shard);
  // Unlinks `victim` from the lru + index and fixes global and per-tenant
  // resident accounting (no eviction counter — callers attribute the drop).
  // Returns the iterator after the erased entry. Called with shard.mu held.
  std::list<Entry>::iterator UnlinkLocked(Shard& shard, std::list<Entry>::iterator victim);
  // Writes the victims to the spill tier and records their metadata. Must
  // be called WITHOUT shard.mu held — the Put fsyncs.
  void SpillOutsideLock(Shard& shard, std::vector<Entry> victims);
  std::string SpillBlobName(const std::string& flat_key) const;

  Config config_;
  int64_t per_shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Canonical flat form of a key ("name:offset+length"), shared by the cache
// and the scheduler's in-flight dedup map.
std::string FlattenBlockKey(const BlockKey& key);

}  // namespace msd

#endif  // SRC_IO_BLOCK_CACHE_H_
