// MultiSource AutoScaler (Sec. 5).
//
// Offline Source Auto-Partitioning: given heterogeneous per-source transform
// costs {P_k} and memory footprints {M_k}, produce per-source loader configs
// (data-parallel actor count x worker-parallel worker count) in three stages:
//   (1) Source Clustering   — sort by cost desc, cut into G clusters;
//   (2) Resource Levels     — size workers per cluster by mean-cost ratios,
//                             bounded by available worker blocks;
//   (3) Config Generation   — apply wsrc/wactor caps and per-node memory
//                             constraints (splitting actors when M_k exceeds
//                             the budget).
//
// Online Mixture-Driven Scaling: track the moving-average sampling weight per
// source; when a source's demand exceeds its allocation for `consecutive`
// intervals, emit scale-up decisions (new actors + live reshard); reclaim idle
// actors symmetrically.
#ifndef SRC_PLANNER_AUTOSCALER_H_
#define SRC_PLANNER_AUTOSCALER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace msd {

struct SourceCostProfile {
  int32_t source_id = 0;
  double transform_cost = 0.0;  // mean per-sample preprocessing cost (us)
  int64_t memory_bytes = 0;     // per-partition file-state footprint M_k
};

struct ClusterResources {
  int64_t total_workers = 64;          // CPU worker budget across the job
  int64_t constructor_workers = 4;     // reserved for Data Constructors
  int64_t planner_workers = 2;         // reserved for the Planner
  int64_t node_memory_budget = 0;      // per-node bytes available to loaders
};

struct PartitionBounds {
  int32_t wsrc = 32;         // per-source worker limit
  int32_t wactor = 8;        // per-actor worker limit
  int32_t num_clusters = 4;  // G
};

struct LoaderPartition {
  int32_t source_id = 0;
  int32_t num_actors = 1;         // loader data parallelism
  int32_t workers_per_actor = 1;  // worker parallelism
  int32_t cluster = 0;            // which cost cluster the source fell into

  int32_t TotalWorkers() const { return num_actors * workers_per_actor; }
};

// Offline stage. Profiles need not be sorted. Returns one partition per source.
std::vector<LoaderPartition> AutoPartitionSources(std::vector<SourceCostProfile> profiles,
                                                  const ClusterResources& resources,
                                                  const PartitionBounds& bounds);

// Sum of workers across partitions.
int64_t TotalWorkers(const std::vector<LoaderPartition>& partitions);

struct ScalerOptions {
  double ema_alpha = 0.3;        // moving-average smoothing
  int32_t consecutive = 3;       // intervals of sustained demand before acting
  int32_t min_actors = 1;
  int32_t max_actors = 16;
  int64_t actor_budget = 64;     // total actors across sources
};

struct ScalingDecision {
  int32_t source_id = 0;
  int32_t delta_actors = 0;  // >0 scale up, <0 reclaim
};

class MixtureDrivenScaler {
 public:
  MixtureDrivenScaler(std::vector<int32_t> initial_actors, ScalerOptions options);

  // Feed one interval's (normalized) mixing weights; returns scaling actions
  // applied this interval (already reflected in actor_counts()).
  std::vector<ScalingDecision> Observe(const std::vector<double>& weights);

  const std::vector<int32_t>& actor_counts() const { return actors_; }
  const std::vector<double>& ema_weights() const { return ema_; }
  int64_t total_rescales() const { return total_rescales_; }

 private:
  int32_t DesiredActors(size_t source) const;

  ScalerOptions options_;
  std::vector<int32_t> actors_;
  std::vector<double> ema_;
  std::vector<int32_t> up_streak_;
  std::vector<int32_t> down_streak_;
  bool first_observation_ = true;
  int64_t total_rescales_ = 0;
};

}  // namespace msd

#endif  // SRC_PLANNER_AUTOSCALER_H_
