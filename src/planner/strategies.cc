#include "src/planner/strategies.h"

#include <unordered_set>

namespace msd {

CostFn BackboneCostFn(const ModelConfig& backbone) {
  ModelConfig config = backbone;
  return [config](const SampleMeta& meta) {
    CostEntry entry;
    entry.load = BackboneSampleFlops(config, meta);
    // Activation memory ~ tokens * hidden * bytes/elem (rough, relative only).
    entry.mem = static_cast<double>(meta.TotalTokens()) * config.hidden * 2.0;
    return entry;
  };
}

CostFn EncoderCostFn(const ModelConfig& encoder) {
  ModelConfig config = encoder;
  return [config](const SampleMeta& meta) {
    CostEntry entry;
    entry.load = EncoderFlops(config, meta.image_tokens);
    entry.mem = static_cast<double>(meta.image_tokens) * config.hidden * 2.0;
    return entry;
  };
}

namespace {

// Shared Extract + Mix prologue.
Status PrepareDGraph(DGraph& dgraph, const StrategyOptions& options, PlanContext& ctx) {
  dgraph.Init(ctx.tree);
  if (options.schedule != nullptr) {
    MSD_RETURN_IF_ERROR(
        dgraph.Mix(*options.schedule, ctx.step, options.samples_per_step, *ctx.rng));
  }
  return Status::Ok();
}

void ApplyBroadcasts(DGraph& dgraph, const StrategyOptions& options) {
  if (options.broadcast_tp) {
    dgraph.BroadcastAt(Axis::kTP);
  }
  if (options.broadcast_cp) {
    dgraph.BroadcastAt(Axis::kCP);
  }
}

}  // namespace

Strategy MakeVanillaStrategy(StrategyOptions options) {
  return [options](PlanContext& ctx) -> Result<LoadingPlan> {
    DGraph dgraph = DGraph::FromBufferInfos(*ctx.buffer_infos);
    MSD_RETURN_IF_ERROR(PrepareDGraph(dgraph, options, ctx));
    MSD_RETURN_IF_ERROR(dgraph.Distribute(Axis::kDP, options.group_size));
    ApplyBroadcasts(dgraph, options);
    return dgraph.Plan(ctx.step);  // no Balance: round-robin placement
  };
}

Strategy MakeLlmBalanceStrategy(StrategyOptions options, CostFn backbone_cost) {
  return [options, backbone_cost](PlanContext& ctx) -> Result<LoadingPlan> {
    DGraph dgraph = DGraph::FromBufferInfos(*ctx.buffer_infos);
    MSD_RETURN_IF_ERROR(PrepareDGraph(dgraph, options, ctx));
    MSD_RETURN_IF_ERROR(dgraph.Distribute(Axis::kDP, options.group_size));
    MSD_RETURN_IF_ERROR(dgraph.Cost(backbone_cost));
    MSD_RETURN_IF_ERROR(
        dgraph.Balance({.method = options.method, .granularity = options.granularity}));
    ApplyBroadcasts(dgraph, options);
    return dgraph.Plan(ctx.step);
  };
}

Strategy MakeVlmHybridStrategy(StrategyOptions options, CostFn backbone_cost,
                               CostFn encoder_cost) {
  return [options, backbone_cost, encoder_cost](PlanContext& ctx) -> Result<LoadingPlan> {
    // Backbone graph over complete (text + image) sequences.
    DGraph dgraph = DGraph::FromBufferInfos(*ctx.buffer_infos);
    MSD_RETURN_IF_ERROR(PrepareDGraph(dgraph, options, ctx));
    MSD_RETURN_IF_ERROR(dgraph.Distribute(Axis::kDP, options.group_size));
    MSD_RETURN_IF_ERROR(dgraph.Cost(backbone_cost));
    MSD_RETURN_IF_ERROR(
        dgraph.Balance({.method = options.method, .granularity = options.granularity}));
    ApplyBroadcasts(dgraph, options);
    Result<LoadingPlan> plan = dgraph.Plan(ctx.step);
    if (!plan.ok()) {
      return plan;
    }

    // Encoder graph from the same shared buffers, image metadata only, and
    // restricted to exactly the samples the backbone mix selected ("data
    // excluded based on the sampling results", Fig. 8). Distributed
    // world-wide: the encoder runs pure data parallelism over all GPUs.
    std::unordered_set<uint64_t> selected;
    selected.reserve(plan->assignments.size());
    for (const SliceAssignment& a : plan->assignments) {
      selected.insert(a.sample_id);
    }
    DGraph encoder_graph =
        DGraph::FromBufferInfos(*ctx.buffer_infos, [&selected](const SampleMeta& meta) {
          return meta.image_tokens > 0 && selected.count(meta.sample_id) > 0;
        });
    encoder_graph.Init(ctx.tree);
    MSD_RETURN_IF_ERROR(encoder_graph.Distribute(Axis::kWorld));
    MSD_RETURN_IF_ERROR(encoder_graph.Cost(encoder_cost));
    // Greedy binpacking: encoder ranks see few images each, so LPT placement
    // (not order-interleaving) minimizes the slowest rank.
    MSD_RETURN_IF_ERROR(encoder_graph.Balance({.method = BalanceMethod::kGreedy}));
    Result<LoadingPlan> encoder_plan = encoder_graph.Plan(ctx.step);
    if (!encoder_plan.ok()) {
      return encoder_plan;
    }
    plan->subplans.emplace("encoder", std::move(encoder_plan.value()));
    return plan;
  };
}

}  // namespace msd
