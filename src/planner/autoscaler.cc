#include "src/planner/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace msd {

std::vector<LoaderPartition> AutoPartitionSources(std::vector<SourceCostProfile> profiles,
                                                  const ClusterResources& resources,
                                                  const PartitionBounds& bounds) {
  MSD_CHECK(!profiles.empty());
  MSD_CHECK(bounds.num_clusters >= 1 && bounds.wactor >= 1 && bounds.wsrc >= 1);

  // Stage 1: sort by transform cost descending, cut into G equal clusters.
  std::sort(profiles.begin(), profiles.end(),
            [](const SourceCostProfile& a, const SourceCostProfile& b) {
              return a.transform_cost > b.transform_cost;
            });
  int32_t g = std::min<int32_t>(bounds.num_clusters, static_cast<int32_t>(profiles.size()));
  size_t per_cluster = (profiles.size() + static_cast<size_t>(g) - 1) / static_cast<size_t>(g);

  std::vector<double> cluster_mean(static_cast<size_t>(g), 0.0);
  std::vector<int32_t> cluster_count(static_cast<size_t>(g), 0);
  for (size_t i = 0; i < profiles.size(); ++i) {
    size_t c = i / per_cluster;
    cluster_mean[c] += profiles[i].transform_cost;
    ++cluster_count[c];
  }
  for (size_t c = 0; c < cluster_mean.size(); ++c) {
    if (cluster_count[c] > 0) {
      cluster_mean[c] /= cluster_count[c];
    }
  }

  // Stage 2: resource levels. Workers per source scale with the cluster's
  // mean cost relative to the cheapest cluster; the grand total is bounded by
  // the worker blocks left after reserving constructor + planner shares.
  double min_mean = cluster_mean.back() > 0.0 ? cluster_mean.back() : 1.0;
  std::vector<int32_t> workers_per_source(static_cast<size_t>(g), 1);
  for (size_t c = 0; c < cluster_mean.size(); ++c) {
    double scale = cluster_mean[c] / min_mean;
    workers_per_source[c] = std::clamp<int32_t>(
        static_cast<int32_t>(std::lround(scale)), 1, bounds.wsrc);
  }
  int64_t available =
      resources.total_workers - resources.constructor_workers - resources.planner_workers;
  available = std::max<int64_t>(available, static_cast<int64_t>(profiles.size()));
  int64_t demanded = 0;
  for (size_t i = 0; i < profiles.size(); ++i) {
    demanded += workers_per_source[i / per_cluster];
  }
  double shrink = demanded > available ? static_cast<double>(available) /
                                             static_cast<double>(demanded)
                                       : 1.0;

  // Stage 3: per-source configs under wactor/wsrc and memory constraints.
  std::vector<LoaderPartition> partitions;
  partitions.reserve(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    size_t c = i / per_cluster;
    int32_t workers = std::max<int32_t>(
        1, static_cast<int32_t>(std::floor(workers_per_source[c] * shrink)));
    workers = std::min(workers, bounds.wsrc);
    LoaderPartition part;
    part.source_id = profiles[i].source_id;
    part.cluster = static_cast<int32_t>(c);
    part.num_actors = (workers + bounds.wactor - 1) / bounds.wactor;
    part.workers_per_actor = (workers + part.num_actors - 1) / part.num_actors;
    // Memory constraint: when one actor's share of the source's file states
    // exceeds the node budget, add actors (each actor holds M_k / num_actors).
    if (resources.node_memory_budget > 0 && profiles[i].memory_bytes > 0) {
      while (profiles[i].memory_bytes / part.num_actors > resources.node_memory_budget &&
             part.num_actors < bounds.wsrc) {
        ++part.num_actors;
      }
    }
    partitions.push_back(part);
  }
  return partitions;
}

int64_t TotalWorkers(const std::vector<LoaderPartition>& partitions) {
  int64_t total = 0;
  for (const LoaderPartition& p : partitions) {
    total += p.TotalWorkers();
  }
  return total;
}

MixtureDrivenScaler::MixtureDrivenScaler(std::vector<int32_t> initial_actors,
                                         ScalerOptions options)
    : options_(options),
      actors_(std::move(initial_actors)),
      ema_(actors_.size(), 0.0),
      up_streak_(actors_.size(), 0),
      down_streak_(actors_.size(), 0) {
  MSD_CHECK(!actors_.empty());
  MSD_CHECK(options_.ema_alpha > 0.0 && options_.ema_alpha <= 1.0);
  MSD_CHECK(options_.consecutive >= 1);
}

int32_t MixtureDrivenScaler::DesiredActors(size_t source) const {
  // Proportional share of the actor budget, clamped to bounds.
  double desired = ema_[source] * static_cast<double>(options_.actor_budget);
  return std::clamp<int32_t>(static_cast<int32_t>(std::lround(desired)), options_.min_actors,
                             options_.max_actors);
}

std::vector<ScalingDecision> MixtureDrivenScaler::Observe(const std::vector<double>& weights) {
  MSD_CHECK(weights.size() == actors_.size());
  double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  MSD_CHECK(sum > 0.0);
  for (size_t s = 0; s < weights.size(); ++s) {
    double normalized = weights[s] / sum;
    ema_[s] = first_observation_
                  ? normalized
                  : options_.ema_alpha * normalized + (1.0 - options_.ema_alpha) * ema_[s];
  }
  first_observation_ = false;

  std::vector<ScalingDecision> decisions;
  for (size_t s = 0; s < actors_.size(); ++s) {
    int32_t desired = DesiredActors(s);
    if (desired > actors_[s]) {
      ++up_streak_[s];
      down_streak_[s] = 0;
      if (up_streak_[s] >= options_.consecutive) {
        decisions.push_back({static_cast<int32_t>(s), desired - actors_[s]});
        actors_[s] = desired;
        up_streak_[s] = 0;
        ++total_rescales_;
      }
    } else if (desired < actors_[s]) {
      ++down_streak_[s];
      up_streak_[s] = 0;
      if (down_streak_[s] >= options_.consecutive) {
        decisions.push_back({static_cast<int32_t>(s), desired - actors_[s]});
        actors_[s] = desired;
        down_streak_[s] = 0;
        ++total_rescales_;
      }
    } else {
      up_streak_[s] = 0;
      down_streak_[s] = 0;
    }
  }
  return decisions;
}

}  // namespace msd
