// Planner: the centralized coordination actor (Sec. 3).
//
// Per planning round it (1) gathers lightweight buffer metadata from every
// Source Loader (with RPC timeouts doubling as failure detection), (2) runs
// the user's declarative strategy over a fresh DGraph, and (3) publishes the
// LoadingPlan — journaling it to the GCS so differential checkpointing can
// replay it after a loader failure. Plans are cached per step; Replay Mode
// (Sec. 9) serves precomputed plans without re-planning.
#ifndef SRC_PLANNER_PLANNER_H_
#define SRC_PLANNER_PLANNER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/actor/actor_system.h"
#include "src/common/rng.h"
#include "src/loader/source_loader.h"
#include "src/mesh/client_place_tree.h"
#include "src/plan/dgraph.h"
#include "src/plan/mixture_schedule.h"

namespace msd {

// Inputs a strategy sees for one planning round.
struct PlanContext {
  const std::vector<BufferInfo>* buffer_infos = nullptr;
  const ClientPlaceTree* tree = nullptr;
  int64_t step = 0;
  Rng* rng = nullptr;
};

// A declarative strategy: composes DGraph primitives into a LoadingPlan.
using Strategy = std::function<Result<LoadingPlan>(PlanContext&)>;

// The planner's replayable state: one PCG32 word plus the monotonic plan
// cursor. Restoring it (plus the loaders' read-state) replays the exact
// RNG-dependent plan history — the heart of job-level checkpoint/resume.
struct PlannerCheckpoint {
  uint64_t rng_state = 0;
  int64_t next_unplanned = 0;
  int64_t plans_generated = 0;
  // Source-quarantine state (see PlannerConfig::quarantine_after_failures):
  // part of the replayable state because it changes how plans are generated —
  // a resumed job must renormalize over the same surviving sources.
  std::map<int32_t, int64_t> quarantined;       // loader_id -> step quarantined at
  std::map<int32_t, int32_t> gather_failures;   // loader_id -> consecutive failures
  // Client-fed mixture re-weighting overrides (effective_step -> weights),
  // snapshotted from the MixtureSchedule: runtime state the schedule cannot
  // be rebuilt with from job options alone, so resume must replay it for the
  // post-resume plans to match the checkpointed job's.
  std::map<int64_t, std::vector<double>> mixture_overrides;
};

struct PlannerConfig {
  std::string name = "planner";  // actor name (unique per ActorSystem)
  int64_t plan_cache_capacity = 16;
  int64_t loader_rpc_timeout_ms = 2000;
  bool replay_mode = false;  // only serve precomputed plans
  uint64_t seed = 2026;
  MemoryAccountant::NodeId node = 0;
  // Graceful degradation: after this many consecutive failed gathers on one
  // loader, quarantine it — contribute an empty buffer summary so the mixture
  // deterministically renormalizes over the surviving sources — instead of
  // failing the whole plan. 0 (default) keeps the legacy behaviour: any
  // failed gather makes GeneratePlan return Unavailable.
  int32_t quarantine_after_failures = 0;
  // While quarantined, re-probe the loader every this many steps; a healthy
  // probe re-admits the source. <= 0 disables re-admission.
  int64_t quarantine_probe_interval = 16;
  // Dynamic mixture schedule (also installed as the strategy's MixSchedule).
  // When set, the planner stamps the schedule's per-step scale pick into
  // every plan (pack_max_seq_len / mix_phase), owns the override commit path,
  // and carries the override map through its checkpoint state. Null = static
  // mixing, plans carry pack_max_seq_len = 0.
  std::shared_ptr<MixtureSchedule> mixture;
};

class Planner : public Actor {
 public:
  Planner(PlannerConfig config, ActorSystem* system, const ClientPlaceTree* tree,
          Strategy strategy, MemoryAccountant* accountant = nullptr);
  ~Planner() override;

  // Loaders the planner coordinates. Raw pointers: the ActorSystem owns them.
  void SetLoaders(std::vector<SourceLoader*> loaders);

  // Returns the plan for `step`, generating (and journaling) it if necessary.
  //
  // Plan-ahead reentrancy: plans are generated exactly once each, in a single
  // monotonic step order, no matter how callers interleave. Asking for a
  // future step generates every intermediate plan first (so the RNG-dependent
  // plan history cannot fork), a repeated ask is a cache hit, and an ask for
  // a step that already fell out of the cache fails loudly (NotFound) instead
  // of silently regenerating a divergent plan. This is what lets the prefetch
  // pipeline plan steps N..N+depth while the trainer consumes step N.
  Result<LoadingPlan> GetPlan(int64_t step);

  // Replay Mode: precompute plans for steps [first, first+count).
  Status PrecomputePlans(int64_t first, int64_t count);

  // Job-level checkpointing (src/checkpoint/): the replayable state as of
  // the last generated plan.
  PlannerCheckpoint CheckpointState() const;
  // Restores the plan cursor and RNG, discarding the cache. `replay_plans`
  // (keyed by step, all < next_unplanned) are installed into the cache and
  // re-journaled to the GCS, so in-flight steps of a resumed job are served
  // from the journal instead of being regenerated — the same plans the
  // checkpointed job produced, rebuilt against whatever mesh is now bound.
  void RestoreCheckpoint(const PlannerCheckpoint& ckpt,
                         std::map<int64_t, LoadingPlan> replay_plans = {});

  // Client-fed re-weighting: commits `weights` into the mixture schedule from
  // `effective_step` onward (-1 = the next unplanned step). Rejects steps the
  // planner has already generated plans for — re-weighting under an issued
  // plan would fork the stream — and FailedPrecondition without a mixture
  // schedule. Call through the actor (Ask), like GetPlan.
  Status CommitMixtureOverride(int64_t effective_step, std::vector<double> weights);

  // Telemetry mirror of the last generated plan's mixture state. Readable
  // from any thread (mutex-guarded copy; collectors must not Ask the actor).
  struct MixtureStatus {
    int64_t step = -1;   // -1 = no plan generated yet (or no schedule)
    int32_t phase = -1;
    int32_t scale = 0;   // pack length stamped into the plan (0 = config)
    // Schedule weights at `step` with quarantined/empty sources masked to 0 —
    // the weights the mix draw actually renormalized over.
    std::vector<double> effective_weights;
  };
  MixtureStatus mixture_status() const;

  // Loader names that failed to answer the last metadata gather.
  const std::vector<std::string>& last_failed_loaders() const { return last_failed_loaders_; }

  // Currently quarantined loaders: loader_id -> step the quarantine started.
  const std::map<int32_t, int64_t>& quarantined_loaders() const { return quarantined_; }
  int64_t quarantine_events() const { return quarantine_events_; }
  int64_t readmission_events() const { return readmission_events_; }

  // GCS key under which the current quarantine set is journaled (written on
  // every quarantine/re-admission transition, for external observability).
  static std::string QuarantineJournalKey();

  // Wall-clock phase timings of the last generated plan (Fig. 15 breakdown).
  struct PhaseTimings {
    double gather_ms = 0.0;
    double compute_ms = 0.0;
    double journal_ms = 0.0;
  };
  PhaseTimings last_timings() const { return last_timings_; }

  int64_t plans_generated() const { return plans_generated_; }

  // GCS key under which the plan for `step` is journaled.
  static std::string PlanJournalKey(int64_t step);

 private:
  Result<LoadingPlan> GeneratePlan(int64_t step);
  void TrimCache();
  // Empty summary standing in for a quarantined loader: keeps the DGraph's
  // source indexing intact while the mixture renormalizes around the source
  // (MixSampler masks zero-availability sources).
  static BufferInfo EmptyInfoFor(const SourceLoader* loader);
  void JournalQuarantine();
  // Stamps the schedule's per-step scale/phase into the plan (and subplans)
  // and refreshes the telemetry mirror. No-op without a mixture schedule.
  void StampMixture(int64_t step, const std::vector<BufferInfo>& buffer_infos,
                    LoadingPlan* plan);

  PlannerConfig config_;
  ActorSystem* system_;
  const ClientPlaceTree* tree_;
  Strategy strategy_;
  MemoryAccountant* accountant_;
  std::vector<SourceLoader*> loaders_;
  Rng rng_;
  std::map<int64_t, LoadingPlan> cache_;
  int64_t next_unplanned_ = 0;  // lowest step never generated (monotonic)
  MemCharge cache_charge_;
  std::vector<std::string> last_failed_loaders_;
  PhaseTimings last_timings_;
  int64_t plans_generated_ = 0;
  // Quarantine state (replayable; see PlannerCheckpoint).
  std::map<int32_t, int64_t> quarantined_;      // loader_id -> step quarantined at
  std::map<int32_t, int32_t> gather_failures_;  // loader_id -> consecutive failures
  int64_t quarantine_events_ = 0;
  int64_t readmission_events_ = 0;
  // Telemetry mirror (see mixture_status()): written by GeneratePlan on the
  // actor thread, read by metrics collectors on scrape threads.
  mutable std::mutex mixture_status_mu_;
  MixtureStatus mixture_status_;
};

}  // namespace msd

#endif  // SRC_PLANNER_PLANNER_H_
