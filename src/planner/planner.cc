#include "src/planner/planner.h"

#include <chrono>

#include "src/common/logging.h"

namespace msd {

namespace {
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

Planner::Planner(PlannerConfig config, ActorSystem* system, const ClientPlaceTree* tree,
                 Strategy strategy, MemoryAccountant* accountant)
    : Actor(config.name),
      config_(config),
      system_(system),
      tree_(tree),
      strategy_(std::move(strategy)),
      accountant_(accountant),
      rng_(config.seed) {
  MSD_CHECK(system_ != nullptr);
  MSD_CHECK(tree_ != nullptr);
  MSD_CHECK(strategy_ != nullptr);
}

Planner::~Planner() = default;

void Planner::SetLoaders(std::vector<SourceLoader*> loaders) { loaders_ = std::move(loaders); }

std::string Planner::PlanJournalKey(int64_t step) {
  return "planner/plan/" + std::to_string(step);
}

Result<LoadingPlan> Planner::GetPlan(int64_t step) {
  auto it = cache_.find(step);
  if (it != cache_.end()) {
    return it->second;
  }
  if (config_.replay_mode) {
    // Replay Mode: consult the journal rather than re-planning.
    std::optional<std::string> blob = system_->gcs().GetState(PlanJournalKey(step));
    if (!blob.has_value()) {
      return Status::NotFound("replay mode: no precomputed plan for step " +
                              std::to_string(step));
    }
    Result<LoadingPlan> plan = LoadingPlan::Deserialize(*blob);
    if (plan.ok()) {
      cache_[step] = plan.value();
      TrimCache();
    }
    return plan;
  }
  if (step < next_unplanned_) {
    // The plan existed once but fell out of the cache. Regenerating it here
    // would fork the RNG-dependent plan history; fail loudly instead (the
    // journal still has it — see Replay Mode).
    return Status::NotFound("plan for step " + std::to_string(step) +
                            " was generated and evicted; monotonic plan history cannot "
                            "be replayed outside replay mode");
  }
  // Plan-ahead: generate every step up to the requested one in order, so the
  // resulting plans are identical no matter which future step was asked for.
  while (next_unplanned_ < step) {
    Result<LoadingPlan> intermediate = GeneratePlan(next_unplanned_);
    if (!intermediate.ok()) {
      return intermediate.status();
    }
    next_unplanned_ += 1;
  }
  Result<LoadingPlan> plan = GeneratePlan(step);
  if (plan.ok()) {
    next_unplanned_ = step + 1;
  }
  return plan;
}

Result<LoadingPlan> Planner::GeneratePlan(int64_t step) {
  // Phase 1: gather buffer metadata from loaders, detecting failures via
  // RPC timeout / dead-actor status.
  auto t0 = std::chrono::steady_clock::now();
  std::vector<BufferInfo> buffer_infos;
  last_failed_loaders_.clear();
  for (SourceLoader* loader : loaders_) {
    Result<BufferInfo> info = system_->AskWithTimeout<BufferInfo>(
        *loader, [loader] { return loader->SummaryBuffer(); }, config_.loader_rpc_timeout_ms);
    if (!info.ok()) {
      last_failed_loaders_.push_back(loader->name());
      continue;
    }
    // A successful gather doubles as a liveness heartbeat (watchdog input).
    system_->gcs().Heartbeat(
        loader->name(),
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    buffer_infos.push_back(std::move(info.value()));
  }
  last_timings_.gather_ms = MsSince(t0);
  if (!last_failed_loaders_.empty()) {
    return Status::Unavailable(std::to_string(last_failed_loaders_.size()) +
                               " loaders unavailable during metadata gather");
  }

  // Phase 2: run the declarative strategy.
  auto t1 = std::chrono::steady_clock::now();
  PlanContext ctx;
  ctx.buffer_infos = &buffer_infos;
  ctx.tree = tree_;
  ctx.step = step;
  ctx.rng = &rng_;
  Result<LoadingPlan> plan = strategy_(ctx);
  last_timings_.compute_ms = MsSince(t1);
  if (!plan.ok()) {
    return plan;
  }

  // Phase 3: journal to the GCS (differential checkpointing input).
  auto t2 = std::chrono::steady_clock::now();
  system_->gcs().PutState(PlanJournalKey(step), plan->Serialize());
  last_timings_.journal_ms = MsSince(t2);

  ++plans_generated_;
  cache_[step] = plan.value();
  TrimCache();
  return plan;
}

PlannerCheckpoint Planner::CheckpointState() const {
  PlannerCheckpoint ckpt;
  ckpt.rng_state = rng_.state();
  ckpt.next_unplanned = next_unplanned_;
  ckpt.plans_generated = plans_generated_;
  return ckpt;
}

void Planner::RestoreCheckpoint(const PlannerCheckpoint& ckpt,
                                std::map<int64_t, LoadingPlan> replay_plans) {
  rng_.set_state(ckpt.rng_state);
  next_unplanned_ = ckpt.next_unplanned;
  plans_generated_ = ckpt.plans_generated;
  cache_ = std::move(replay_plans);
  // The replay window must survive until consumed: TrimCache evicts from the
  // front, which is exactly the steps a resumed pipeline asks for first.
  config_.plan_cache_capacity = std::max<int64_t>(config_.plan_cache_capacity,
                                                  static_cast<int64_t>(cache_.size()) + 2);
  for (const auto& [step, plan] : cache_) {
    MSD_CHECK(step < next_unplanned_);
    system_->gcs().PutState(PlanJournalKey(step), plan.Serialize());
  }
  TrimCache();
}

Status Planner::PrecomputePlans(int64_t first, int64_t count) {
  for (int64_t s = first; s < first + count; ++s) {
    // GetPlan (not GeneratePlan): already-generated steps must be cache hits,
    // or precompute would advance the RNG twice and fork the plan history.
    Result<LoadingPlan> plan = GetPlan(s);
    if (!plan.ok()) {
      return plan.status();
    }
  }
  return Status::Ok();
}

void Planner::TrimCache() {
  while (static_cast<int64_t>(cache_.size()) > config_.plan_cache_capacity) {
    cache_.erase(cache_.begin());
  }
  if (accountant_ != nullptr) {
    int64_t bytes = 0;
    for (const auto& [step, plan] : cache_) {
      bytes += static_cast<int64_t>(plan.assignments.size() * sizeof(SliceAssignment));
    }
    cache_charge_ = MemCharge(accountant_, config_.node, MemCategory::kPlannerState, bytes);
  }
}

}  // namespace msd
