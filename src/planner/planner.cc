#include "src/planner/planner.h"

#include <chrono>

#include "src/common/logging.h"

namespace msd {

namespace {
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

Planner::Planner(PlannerConfig config, ActorSystem* system, const ClientPlaceTree* tree,
                 Strategy strategy, MemoryAccountant* accountant)
    : Actor(config.name),
      config_(config),
      system_(system),
      tree_(tree),
      strategy_(std::move(strategy)),
      accountant_(accountant),
      rng_(config.seed) {
  MSD_CHECK(system_ != nullptr);
  MSD_CHECK(tree_ != nullptr);
  MSD_CHECK(strategy_ != nullptr);
}

Planner::~Planner() = default;

void Planner::SetLoaders(std::vector<SourceLoader*> loaders) { loaders_ = std::move(loaders); }

std::string Planner::PlanJournalKey(int64_t step) {
  return "planner/plan/" + std::to_string(step);
}

std::string Planner::QuarantineJournalKey() { return "planner/quarantine"; }

BufferInfo Planner::EmptyInfoFor(const SourceLoader* loader) {
  BufferInfo info;
  info.loader_id = loader->config().loader_id;
  info.source_id = loader->config().spec.source_id;
  return info;
}

void Planner::JournalQuarantine() {
  std::string blob;
  for (const auto& [loader_id, since_step] : quarantined_) {
    if (!blob.empty()) {
      blob += ",";
    }
    blob += std::to_string(loader_id) + ":" + std::to_string(since_step);
  }
  system_->gcs().PutState(QuarantineJournalKey(), std::move(blob));
}

Result<LoadingPlan> Planner::GetPlan(int64_t step) {
  auto it = cache_.find(step);
  if (it != cache_.end()) {
    return it->second;
  }
  if (config_.replay_mode) {
    // Replay Mode: consult the journal rather than re-planning.
    std::optional<std::string> blob = system_->gcs().GetState(PlanJournalKey(step));
    if (!blob.has_value()) {
      return Status::NotFound("replay mode: no precomputed plan for step " +
                              std::to_string(step));
    }
    Result<LoadingPlan> plan = LoadingPlan::Deserialize(*blob);
    if (plan.ok()) {
      cache_[step] = plan.value();
      TrimCache();
    }
    return plan;
  }
  if (step < next_unplanned_) {
    // The plan existed once but fell out of the cache. Regenerating it here
    // would fork the RNG-dependent plan history; fail loudly instead (the
    // journal still has it — see Replay Mode).
    return Status::NotFound("plan for step " + std::to_string(step) +
                            " was generated and evicted; monotonic plan history cannot "
                            "be replayed outside replay mode");
  }
  // Plan-ahead: generate every step up to the requested one in order, so the
  // resulting plans are identical no matter which future step was asked for.
  while (next_unplanned_ < step) {
    Result<LoadingPlan> intermediate = GeneratePlan(next_unplanned_);
    if (!intermediate.ok()) {
      return intermediate.status();
    }
    next_unplanned_ += 1;
  }
  Result<LoadingPlan> plan = GeneratePlan(step);
  if (plan.ok()) {
    next_unplanned_ = step + 1;
  }
  return plan;
}

Result<LoadingPlan> Planner::GeneratePlan(int64_t step) {
  // Phase 1: gather buffer metadata from loaders, detecting failures via
  // RPC timeout / dead-actor status.
  auto t0 = std::chrono::steady_clock::now();
  std::vector<BufferInfo> buffer_infos;
  last_failed_loaders_.clear();
  bool quarantine_changed = false;
  int32_t transient_failures = 0;
  for (SourceLoader* loader : loaders_) {
    const int32_t loader_id = loader->config().loader_id;
    auto quarantined = quarantined_.find(loader_id);
    const bool in_quarantine = quarantined != quarantined_.end();
    // Re-admission probe: every probe_interval steps a quarantined loader
    // gets one gather attempt; a healthy answer re-admits it. Step-arithmetic
    // (not wall clock) keeps the probe schedule — and hence the plan
    // history — deterministic.
    const bool probing = in_quarantine && config_.quarantine_probe_interval > 0 &&
                         step > quarantined->second &&
                         (step - quarantined->second) % config_.quarantine_probe_interval == 0;
    if (in_quarantine && !probing) {
      buffer_infos.push_back(EmptyInfoFor(loader));
      continue;
    }
    // The gather closure captures only the loader pointer, which the
    // ActorSystem keeps alive until Shutdown — so when the timeout fires
    // first, the late-running closure touches no freed caller state and the
    // abandoned completion is a no-op here (we already counted the failure).
    Result<BufferInfo> info = system_->AskWithTimeout<BufferInfo>(
        *loader, [loader] { return loader->GatherBuffer(); }, config_.loader_rpc_timeout_ms);
    const bool healthy = info.ok() && info->io_healthy;
    if (healthy) {
      gather_failures_.erase(loader_id);
      if (in_quarantine) {
        quarantined_.erase(quarantined);
        quarantine_changed = true;
        ++readmission_events_;
        MSD_LOG_INFO("planner re-admitted loader %s (source %d) at step %lld",
                     loader->name().c_str(), loader->config().spec.source_id,
                     static_cast<long long>(step));
      }
      // A successful gather doubles as a liveness heartbeat (watchdog input).
      system_->gcs().Heartbeat(
          loader->name(),
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
      buffer_infos.push_back(std::move(info.value()));
      continue;
    }
    last_failed_loaders_.push_back(loader->name());
    if (in_quarantine) {
      // Failed probe: stay quarantined, keep serving the renormalized mixture.
      buffer_infos.push_back(EmptyInfoFor(loader));
      continue;
    }
    const int32_t failures = ++gather_failures_[loader_id];
    if (config_.quarantine_after_failures > 0 &&
        failures >= config_.quarantine_after_failures) {
      quarantined_[loader_id] = step;
      gather_failures_.erase(loader_id);
      quarantine_changed = true;
      ++quarantine_events_;
      MSD_LOG_WARN(
          "planner quarantined loader %s (source %d) at step %lld after %d failed gathers",
          loader->name().c_str(), loader->config().spec.source_id,
          static_cast<long long>(step), failures);
      buffer_infos.push_back(EmptyInfoFor(loader));
      continue;
    }
    // Below the quarantine threshold (or quarantine disabled): the failure is
    // transient, so the whole round fails and the caller retries. The RNG has
    // not advanced and nothing was journaled — a retried GeneratePlan(step)
    // starts from identical state, which is what keeps the plan history
    // byte-identical to an undisturbed run once the loader heals.
    ++transient_failures;
  }
  last_timings_.gather_ms = MsSince(t0);
  if (quarantine_changed) {
    JournalQuarantine();
  }
  if (transient_failures > 0) {
    return Status::Unavailable(std::to_string(transient_failures) +
                               " loaders unavailable during metadata gather");
  }

  // Phase 2: run the declarative strategy. The RNG state is snapshotted
  // first and rolled back on failure: a strategy that errors mid-draw (e.g.
  // a schedule phase putting all its weight on a quarantined source →
  // ResourceExhausted after partial Categorical draws) must not advance the
  // committed RNG stream, or the retried/re-admitted plan history would fork
  // from an undisturbed run's.
  auto t1 = std::chrono::steady_clock::now();
  const uint64_t rng_before = rng_.state();
  PlanContext ctx;
  ctx.buffer_infos = &buffer_infos;
  ctx.tree = tree_;
  ctx.step = step;
  ctx.rng = &rng_;
  Result<LoadingPlan> plan = strategy_(ctx);
  last_timings_.compute_ms = MsSince(t1);
  if (!plan.ok()) {
    rng_.set_state(rng_before);
    return plan;
  }
  StampMixture(step, buffer_infos, &plan.value());

  // Phase 3: journal to the GCS (differential checkpointing input).
  auto t2 = std::chrono::steady_clock::now();
  system_->gcs().PutState(PlanJournalKey(step), plan->Serialize());
  last_timings_.journal_ms = MsSince(t2);

  ++plans_generated_;
  cache_[step] = plan.value();
  TrimCache();
  return plan;
}

void Planner::StampMixture(int64_t step, const std::vector<BufferInfo>& buffer_infos,
                           LoadingPlan* plan) {
  if (config_.mixture == nullptr) {
    return;
  }
  const int32_t scale = config_.mixture->ScaleAt(step);
  const int32_t phase = config_.mixture->PhaseIndexAt(step);
  plan->pack_max_seq_len = scale;
  plan->mix_phase = phase;
  for (auto& [name, sub] : plan->subplans) {
    sub.pack_max_seq_len = scale;
    sub.mix_phase = phase;
  }
  // Telemetry mirror: the schedule's weights in buffer order (sorted by
  // source_id — the strategy's schedule index order), masked where the
  // gather offered no samples (quarantined or exhausted sources).
  MixtureStatus status;
  status.step = step;
  status.phase = phase;
  status.scale = scale;
  status.effective_weights = config_.mixture->WeightsAt(step);
  std::map<int32_t, bool> source_empty;
  for (const BufferInfo& info : buffer_infos) {
    source_empty[info.source_id] = info.samples.empty();
  }
  size_t index = 0;
  for (const auto& [source_id, empty] : source_empty) {
    (void)source_id;
    if (index >= status.effective_weights.size()) {
      break;
    }
    if (empty) {
      status.effective_weights[index] = 0.0;
    }
    ++index;
  }
  std::lock_guard<std::mutex> lock(mixture_status_mu_);
  mixture_status_ = std::move(status);
}

Status Planner::CommitMixtureOverride(int64_t effective_step, std::vector<double> weights) {
  if (config_.mixture == nullptr) {
    return Status::FailedPrecondition(
        "mixture overrides need a MixtureSchedule (SessionBuilder::WithMixtureSchedule)");
  }
  const int64_t effective = effective_step < 0 ? next_unplanned_ : effective_step;
  if (effective < next_unplanned_) {
    return Status::InvalidArgument(
        "mixture override at step " + std::to_string(effective) +
        " is already planned (next unplanned step is " + std::to_string(next_unplanned_) +
        "); re-weighting under an issued plan would fork the stream");
  }
  return config_.mixture->CommitOverride(effective, std::move(weights));
}

Planner::MixtureStatus Planner::mixture_status() const {
  std::lock_guard<std::mutex> lock(mixture_status_mu_);
  return mixture_status_;
}

PlannerCheckpoint Planner::CheckpointState() const {
  PlannerCheckpoint ckpt;
  ckpt.rng_state = rng_.state();
  ckpt.next_unplanned = next_unplanned_;
  ckpt.plans_generated = plans_generated_;
  ckpt.quarantined = quarantined_;
  ckpt.gather_failures = gather_failures_;
  if (config_.mixture != nullptr) {
    ckpt.mixture_overrides = config_.mixture->OverridesSnapshot();
  }
  return ckpt;
}

void Planner::RestoreCheckpoint(const PlannerCheckpoint& ckpt,
                                std::map<int64_t, LoadingPlan> replay_plans) {
  rng_.set_state(ckpt.rng_state);
  next_unplanned_ = ckpt.next_unplanned;
  plans_generated_ = ckpt.plans_generated;
  quarantined_ = ckpt.quarantined;
  gather_failures_ = ckpt.gather_failures;
  if (config_.mixture != nullptr) {
    // Overrides are planner state: the schedule object was rebuilt from job
    // options, so the runtime re-weighting history rides in the checkpoint.
    config_.mixture->ReplaceOverrides(ckpt.mixture_overrides);
  }
  JournalQuarantine();
  cache_ = std::move(replay_plans);
  // The replay window must survive until consumed: TrimCache evicts from the
  // front, which is exactly the steps a resumed pipeline asks for first.
  config_.plan_cache_capacity = std::max<int64_t>(config_.plan_cache_capacity,
                                                  static_cast<int64_t>(cache_.size()) + 2);
  for (const auto& [step, plan] : cache_) {
    MSD_CHECK(step < next_unplanned_);
    system_->gcs().PutState(PlanJournalKey(step), plan.Serialize());
  }
  TrimCache();
}

Status Planner::PrecomputePlans(int64_t first, int64_t count) {
  for (int64_t s = first; s < first + count; ++s) {
    // GetPlan (not GeneratePlan): already-generated steps must be cache hits,
    // or precompute would advance the RNG twice and fork the plan history.
    Result<LoadingPlan> plan = GetPlan(s);
    if (!plan.ok()) {
      return plan.status();
    }
  }
  return Status::Ok();
}

void Planner::TrimCache() {
  while (static_cast<int64_t>(cache_.size()) > config_.plan_cache_capacity) {
    cache_.erase(cache_.begin());
  }
  if (accountant_ != nullptr) {
    int64_t bytes = 0;
    for (const auto& [step, plan] : cache_) {
      bytes += static_cast<int64_t>(plan.assignments.size() * sizeof(SliceAssignment));
    }
    cache_charge_ = MemCharge(accountant_, config_.node, MemCategory::kPlannerState, bytes);
  }
}

}  // namespace msd
