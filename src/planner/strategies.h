// Canned declarative strategies mirroring the Fig. 9 use cases:
//  - LlmBalance: unimodal long-short-sequence balancing across DP ranks.
//  - VlmHybridBalance: LlmBalance for the backbone plus a WORLD-distributed
//    encoder subplan balanced on image cost ("Hybrid" in Sec. 7.1).
//  - Vanilla: no balancing (round-robin), the paper's non-scheduling baseline.
#ifndef SRC_PLANNER_STRATEGIES_H_
#define SRC_PLANNER_STRATEGIES_H_

#include <memory>

#include "src/costmodel/flops.h"
#include "src/planner/planner.h"

namespace msd {

struct StrategyOptions {
  // Samples drawn per global step by mix().
  int64_t samples_per_step = 64;
  std::shared_ptr<const MixSchedule> schedule;  // null => take whole buffer
  BalanceMethod method = BalanceMethod::kGreedy;
  BalanceOptions::Granularity granularity = BalanceOptions::Granularity::kSample;
  int32_t group_size = 1;
  bool broadcast_tp = true;
  bool broadcast_cp = false;
};

// Cost functions built from the Sec. 4.2 analytic models.
CostFn BackboneCostFn(const ModelConfig& backbone);
CostFn EncoderCostFn(const ModelConfig& encoder);

// No orchestration: mix (if configured) then round-robin placement.
Strategy MakeVanillaStrategy(StrategyOptions options);

// Fig. 9 left: distribute(DP) -> cost -> balance -> broadcast.
Strategy MakeLlmBalanceStrategy(StrategyOptions options, CostFn backbone_cost);

// Fig. 9 right: LlmBalance for the backbone plus an encoder DGraph built from
// image metadata, distributed WORLD-wide and balanced with the encoder cost;
// the encoder plan is attached as subplan["encoder"].
Strategy MakeVlmHybridStrategy(StrategyOptions options, CostFn backbone_cost,
                               CostFn encoder_cost);

}  // namespace msd

#endif  // SRC_PLANNER_STRATEGIES_H_
