// TrainStepSimulator: analytic iteration-time model for hybrid-parallel
// (VLM) training steps driven by a LoadingPlan.
//
// Per-DP-rank backbone time uses the heterogeneous-microbatch pipeline
// makespan  T_dp = sum_j t_j + (pp - 1) * max_j t_j  where t_j is microbatch
// j's per-stage compute time (FLOPs / (device * tp * cp * pp)). Imbalanced
// microbatches therefore hurt twice: through the sum AND through the bubble
// term — which is exactly why load-time balancing pays off (Sec. 7.3).
// The encoder (if present) runs world-wide data parallel before an
// all-to-all hands features to the backbone (Fig. 14's timeline).
#ifndef SRC_TRAINSIM_TRAIN_STEP_H_
#define SRC_TRAINSIM_TRAIN_STEP_H_

#include <vector>

#include "src/costmodel/flops.h"
#include "src/mesh/client_place_tree.h"
#include "src/plan/dgraph.h"
#include "src/sim/network.h"

namespace msd {

struct TrainSimConfig {
  ModelConfig backbone;
  ParallelismSpec spec;
  DeviceSpec device;
  NetworkParams net;
  bool has_encoder = false;
  ModelConfig encoder;
  // Fig. 12 fits the model into HBM by truncating backbone layers.
  int32_t backbone_layers_override = 0;
};

struct IterationBreakdown {
  SimTime encoder_time = 0;     // slowest encoder rank
  SimTime a2a_time = 0;         // feature exchange encoder -> backbone
  SimTime backbone_time = 0;    // slowest DP rank's pipeline makespan
  SimTime total = 0;
  double max_min_dp_ratio = 1.0;      // backbone DP imbalance
  double encoder_imbalance = 1.0;     // encoder ranks, max/mean
  int64_t total_tokens = 0;           // backbone tokens this step

  double TokensPerSecond() const {
    return total > 0 ? static_cast<double>(total_tokens) / ToSeconds(total) : 0.0;
  }
};

class TrainStepSimulator {
 public:
  explicit TrainStepSimulator(TrainSimConfig config);

  // Simulates one step. `plan` carries backbone cost assignments; if it has
  // an "encoder" subplan and the config has an encoder, the encoder phase and
  // all-to-all are included.
  IterationBreakdown SimulateStep(const LoadingPlan& plan) const;

  // Peak activation tokens on the worst rank (OOM analysis, Sec. 7.3).
  int64_t PeakMicrobatchTokens(const LoadingPlan& plan) const;

  const TrainSimConfig& config() const { return config_; }

 private:
  ModelConfig EffectiveBackbone() const;

  TrainSimConfig config_;
  NetworkModel network_;
};

}  // namespace msd

#endif  // SRC_TRAINSIM_TRAIN_STEP_H_
