#include "src/trainsim/train_step.h"

#include <algorithm>

#include "src/common/status.h"
#include "src/plan/balance.h"

namespace msd {

TrainStepSimulator::TrainStepSimulator(TrainSimConfig config)
    : config_(std::move(config)), network_(config_.net) {
  MSD_CHECK(config_.spec.WorldSize() >= 1);
}

ModelConfig TrainStepSimulator::EffectiveBackbone() const {
  ModelConfig backbone = config_.backbone;
  if (config_.backbone_layers_override > 0) {
    backbone.layers = config_.backbone_layers_override;
  }
  return backbone;
}

IterationBreakdown TrainStepSimulator::SimulateStep(const LoadingPlan& plan) const {
  IterationBreakdown out;
  const ParallelismSpec& spec = config_.spec;
  ModelConfig backbone = EffectiveBackbone();

  // ---- Backbone: per-(dp, microbatch) FLOPs from assignment token counts.
  // Buckets may be finer than DP groups (axis=CP); fold them into DP groups.
  int32_t buckets_per_dp = std::max(1, plan.num_buckets / std::max(1, spec.dp));
  std::vector<std::vector<double>> flops(
      static_cast<size_t>(spec.dp),
      std::vector<double>(static_cast<size_t>(plan.num_microbatches), 0.0));
  int64_t total_image_tokens = 0;
  for (const SliceAssignment& a : plan.assignments) {
    int32_t dp = std::min(a.bucket / buckets_per_dp, spec.dp - 1);
    flops[static_cast<size_t>(dp)][static_cast<size_t>(a.microbatch)] +=
        ForwardFlops(backbone, {a.total_tokens});
    out.total_tokens += a.total_tokens;
    total_image_tokens += a.image_tokens;
  }
  // Per-stage microbatch time; pipeline makespan per DP rank.
  double shards = static_cast<double>(spec.tp) * spec.cp * spec.pp;
  std::vector<double> dp_times;
  dp_times.reserve(static_cast<size_t>(spec.dp));
  for (int32_t dp = 0; dp < spec.dp; ++dp) {
    double sum = 0.0;
    double max_mb = 0.0;
    for (double f : flops[static_cast<size_t>(dp)]) {
      double t = f * kTrainFlopsMultiplier / (config_.device.flops_per_sec * shards);
      sum += t;
      max_mb = std::max(max_mb, t);
    }
    dp_times.push_back(sum + static_cast<double>(spec.pp - 1) * max_mb);
  }
  out.backbone_time = FromSeconds(*std::max_element(dp_times.begin(), dp_times.end()));
  out.max_min_dp_ratio = MaxMinRatio(dp_times);

  // ---- Encoder phase (world-wide data parallel) + all-to-all.
  // Each microbatch's encoder pass must finish (on its slowest rank) before
  // that microbatch enters the backbone, so stragglers accumulate per
  // microbatch: T_enc = sum_mb max_rank t[rank][mb].
  if (config_.has_encoder) {
    int32_t world = spec.WorldSize();
    int32_t mbs = std::max(1, plan.num_microbatches);
    std::vector<std::vector<double>> enc_flops(
        static_cast<size_t>(world), std::vector<double>(static_cast<size_t>(mbs), 0.0));
    auto subplan = plan.subplans.find("encoder");
    if (subplan != plan.subplans.end()) {
      // Balanced: the encoder subplan assigns images to world-rank buckets.
      for (const SliceAssignment& a : subplan->second.assignments) {
        int32_t rank = std::min(a.bucket, world - 1);
        int32_t mb = std::min(a.microbatch, mbs - 1);
        enc_flops[static_cast<size_t>(rank)][static_cast<size_t>(mb)] +=
            EncoderFlops(config_.encoder, a.image_tokens);
      }
    } else {
      // Unbalanced default: images land on the encoder ranks colocated with
      // their bucket, round-robin within the bucket's rank group.
      int32_t ranks_per_bucket = std::max(1, world / std::max(1, plan.num_buckets));
      std::vector<int32_t> cursor(static_cast<size_t>(plan.num_buckets), 0);
      for (const SliceAssignment& a : plan.assignments) {
        if (a.image_tokens == 0) {
          continue;
        }
        int32_t base = a.bucket * ranks_per_bucket;
        int32_t offset = cursor[static_cast<size_t>(a.bucket)]++ % ranks_per_bucket;
        int32_t rank = std::min(base + offset, world - 1);
        int32_t mb = std::min(std::max(a.microbatch, 0), mbs - 1);
        enc_flops[static_cast<size_t>(rank)][static_cast<size_t>(mb)] +=
            EncoderFlops(config_.encoder, a.image_tokens);
      }
    }
    double serial_flops = 0.0;  // sum over mbs of the slowest rank's share
    std::vector<double> rank_totals(static_cast<size_t>(world), 0.0);
    for (int32_t mb = 0; mb < mbs; ++mb) {
      double worst = 0.0;
      for (int32_t r = 0; r < world; ++r) {
        worst = std::max(worst, enc_flops[static_cast<size_t>(r)][static_cast<size_t>(mb)]);
        rank_totals[static_cast<size_t>(r)] +=
            enc_flops[static_cast<size_t>(r)][static_cast<size_t>(mb)];
      }
      serial_flops += worst;
    }
    out.encoder_time =
        FromSeconds(serial_flops * kTrainFlopsMultiplier / config_.device.flops_per_sec);
    out.encoder_imbalance = Imbalance(rank_totals);

    // All-to-all: every rank exchanges its share of encoded features.
    int64_t feature_bytes =
        total_image_tokens * static_cast<int64_t>(config_.encoder.hidden) * 2;
    int64_t per_rank_bytes = feature_bytes / std::max(1, world);
    out.a2a_time = network_.TransferTime(per_rank_bytes) + 2 * config_.net.base_latency;
  }

  out.total = out.encoder_time + out.a2a_time + out.backbone_time;
  return out;
}

int64_t TrainStepSimulator::PeakMicrobatchTokens(const LoadingPlan& plan) const {
  std::vector<int64_t> tokens(
      static_cast<size_t>(plan.num_buckets) * static_cast<size_t>(plan.num_microbatches), 0);
  for (const SliceAssignment& a : plan.assignments) {
    size_t idx = static_cast<size_t>(a.bucket) * static_cast<size_t>(plan.num_microbatches) +
                 static_cast<size_t>(a.microbatch);
    tokens[idx] += a.total_tokens;
  }
  int64_t peak = 0;
  for (int64_t t : tokens) {
    peak = std::max(peak, t);
  }
  return peak;
}

}  // namespace msd
