// Testbed topology constants (Sec. 7.1): nodes of 16 GPUs with 1.8 TB DRAM,
// half of host CPU/memory handed to the sidecar resource pool.
#ifndef SRC_TRAINSIM_CLUSTER_H_
#define SRC_TRAINSIM_CLUSTER_H_

#include <cstdint>

#include "src/common/units.h"

namespace msd {

struct NodeSpec {
  int32_t gpus_per_node = 16;
  int64_t dram_bytes = static_cast<int64_t>(1.8 * kTiB);
  int32_t cpu_cores = 128;
  // Fraction of host CPU/DRAM allocated to the sidecar pool for data work.
  double sidecar_fraction = 0.5;

  int64_t SidecarMemoryBytes() const {
    return static_cast<int64_t>(static_cast<double>(dram_bytes) * sidecar_fraction);
  }
  int32_t SidecarCores() const {
    return static_cast<int32_t>(static_cast<double>(cpu_cores) * sidecar_fraction);
  }
};

struct ClusterSpec {
  NodeSpec node;
  int32_t num_gpus = 288;

  int32_t NumNodes() const {
    return (num_gpus + node.gpus_per_node - 1) / node.gpus_per_node;
  }
  int32_t NodeOfRank(int32_t rank) const { return rank / node.gpus_per_node; }
};

}  // namespace msd

#endif  // SRC_TRAINSIM_CLUSTER_H_
