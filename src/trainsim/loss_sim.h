// Training-loss simulator for the Fig. 18 convergence study.
//
// Loss follows a power law in consumed tokens plus gradient noise. The
// balancer preserves the global batch (inter-microbatch moves only), so the
// balanced trajectory tracks the baseline; enabling CP adds small numerical
// perturbations from the modified sequence partitioning during distributed
// GEMM/summation (Sec. 7.5).
#ifndef SRC_TRAINSIM_LOSS_SIM_H_
#define SRC_TRAINSIM_LOSS_SIM_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace msd {

struct LossSimOptions {
  double initial_loss = 12.0;
  double floor_loss = 1.8;
  double decay_exponent = 0.42;       // loss ~ tokens^-alpha toward the floor
  int64_t tokens_per_step = 1 << 20;
  double gradient_noise = 0.05;       // per-step stochastic term
  double cp_partition_noise = 0.03;   // extra term when balancing under CP
};

struct LossTrace {
  std::vector<double> loss;  // one entry per step
  double FinalLoss() const { return loss.empty() ? 0.0 : loss.back(); }
  // Max |a - b| over the common prefix of two traces.
  static double MaxDeviation(const LossTrace& a, const LossTrace& b);
};

class LossSimulator {
 public:
  explicit LossSimulator(LossSimOptions options = {}) : options_(options) {}

  // Same seed => same data order => same base trajectory. `balanced` with
  // `cp_enabled` adds the partition-noise term; `balanced` alone only
  // re-orders microbatches, which leaves the trajectory unchanged up to
  // rounding (modelled as zero-mean noise scaled far below gradient noise).
  LossTrace Run(int64_t steps, uint64_t seed, bool balanced, bool cp_enabled) const;

 private:
  LossSimOptions options_;
};

}  // namespace msd

#endif  // SRC_TRAINSIM_LOSS_SIM_H_
