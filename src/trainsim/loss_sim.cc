#include "src/trainsim/loss_sim.h"

#include <algorithm>
#include <cmath>

namespace msd {

double LossTrace::MaxDeviation(const LossTrace& a, const LossTrace& b) {
  size_t n = std::min(a.loss.size(), b.loss.size());
  double max_dev = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_dev = std::max(max_dev, std::abs(a.loss[i] - b.loss[i]));
  }
  return max_dev;
}

LossTrace LossSimulator::Run(int64_t steps, uint64_t seed, bool balanced,
                             bool cp_enabled) const {
  // The base gradient-noise stream is seeded identically regardless of the
  // balancer so that "balanced tightly mirrors baseline" is an outcome of the
  // model, not an accident of seeding.
  Rng base_noise(seed);
  Rng partition_noise(seed ^ 0x9E3779B97F4A7C15ULL);
  LossTrace trace;
  trace.loss.reserve(static_cast<size_t>(steps));
  for (int64_t step = 1; step <= steps; ++step) {
    double tokens = static_cast<double>(step) * static_cast<double>(options_.tokens_per_step);
    double progress = std::pow(tokens / static_cast<double>(options_.tokens_per_step),
                               -options_.decay_exponent);
    double mean_loss =
        options_.floor_loss + (options_.initial_loss - options_.floor_loss) * progress;
    double noise = base_noise.Normal(0.0, options_.gradient_noise);
    if (balanced && cp_enabled) {
      // Repartitioned sequences change token placement across CP ranks,
      // perturbing reduction order in distributed GEMMs.
      noise += partition_noise.Normal(0.0, options_.cp_partition_noise);
    } else if (balanced) {
      // Microbatch reordering only: numerically invisible at this scale.
      noise += partition_noise.Normal(0.0, options_.cp_partition_noise * 0.02);
    } else {
      partition_noise.Normal(0.0, 1.0);  // keep streams aligned across modes
    }
    trace.loss.push_back(mean_loss + noise);
  }
  return trace;
}

}  // namespace msd
