#include "src/actor/gcs.h"

#include "src/common/logging.h"
#include "src/storage/object_store.h"

namespace msd {

void Gcs::RegisterActor(const std::string& name, uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  ActorRecord& rec = records_[name];
  rec.id = id;
  rec.alive = true;
}

void Gcs::MarkDead(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(name);
  if (it != records_.end()) {
    it->second.alive = false;
  }
}

void Gcs::MarkRestarted(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ActorRecord& rec = records_[name];
  rec.alive = true;
  ++rec.restarts;
}

bool Gcs::IsAlive(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(name);
  return it != records_.end() && it->second.alive;
}

std::optional<Gcs::ActorRecord> Gcs::GetRecord(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(name);
  if (it == records_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Gcs::Heartbeat(const std::string& name, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_[name].last_heartbeat_ms = now_ms;
}

std::vector<std::string> Gcs::StaleActors(int64_t now_ms, int64_t timeout_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> stale;
  for (const auto& [name, rec] : records_) {
    if (rec.alive && now_ms - rec.last_heartbeat_ms > timeout_ms) {
      stale.push_back(name);
    }
  }
  return stale;
}

void Gcs::PutState(const std::string& key, std::string blob) {
  // Writers serialize on durable_mutex_ for the whole memory+disk commit, so
  // concurrent puts to one key land in the same order in both places (an
  // unordered disk write could persist a stale value and feed it to the next
  // process). Readers only take mutex_ and are never blocked behind disk
  // I/O. The store's own staging keeps the on-disk blob atomic; a failed
  // write degrades durability but never the in-memory view.
  std::lock_guard<std::mutex> write_order(durable_mutex_);
  ObjectStore* durable;
  std::string durable_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    durable = durable_store_;
    if (durable != nullptr) {
      durable_key = durable_prefix_ + key;
      state_[key] = blob;
    } else {
      state_[key] = std::move(blob);
    }
  }
  if (durable != nullptr) {
    Status put = durable->Put(durable_key, std::move(blob));
    if (!put.ok()) {
      // Degraded durability must be observable: a restarted process would
      // find a journal with holes, hours after the writes actually failed.
      MSD_LOG_WARN("durable GCS write-through failed for %s: %s", durable_key.c_str(),
                   put.ToString().c_str());
    }
  }
}

std::optional<std::string> Gcs::GetState(const std::string& key) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = state_.find(key);
    if (it != state_.end()) {
      return it->second;
    }
    if (durable_store_ == nullptr) {
      return std::nullopt;
    }
  }
  // Cache miss with a durable store attached: the disk read and the cache
  // fill happen under the writers' ordering lock, so a concurrent
  // DeleteState cannot be interleaved into re-caching a value it deleted.
  std::lock_guard<std::mutex> write_order(durable_mutex_);
  ObjectStore* durable;
  std::string durable_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = state_.find(key);  // a racing PutState may have filled it
    if (it != state_.end()) {
      return it->second;
    }
    durable = durable_store_;
    if (durable == nullptr) {
      return std::nullopt;
    }
    durable_key = durable_prefix_ + key;
  }
  Result<FileHandle> handle = durable->Open(durable_key, 0);
  if (!handle.ok()) {
    return std::nullopt;
  }
  std::string blob = handle.value().Contents();
  std::lock_guard<std::mutex> lock(mutex_);
  state_.emplace(key, blob);
  return blob;
}

void Gcs::DeleteState(const std::string& key) {
  // Same ordering discipline as PutState — and the durable copy must go too,
  // or GetState's disk fallback would resurrect the deleted value.
  std::lock_guard<std::mutex> write_order(durable_mutex_);
  ObjectStore* durable;
  std::string durable_key;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_.erase(key);
    durable = durable_store_;
    if (durable != nullptr) {
      durable_key = durable_prefix_ + key;
    }
  }
  if (durable != nullptr) {
    durable->Delete(durable_key);
  }
}

size_t Gcs::state_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.size();
}

void Gcs::AttachDurableStore(ObjectStore* store, std::string prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  durable_store_ = store;
  durable_prefix_ = std::move(prefix);
}

}  // namespace msd
