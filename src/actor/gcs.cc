#include "src/actor/gcs.h"

namespace msd {

void Gcs::RegisterActor(const std::string& name, uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  ActorRecord& rec = records_[name];
  rec.id = id;
  rec.alive = true;
}

void Gcs::MarkDead(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(name);
  if (it != records_.end()) {
    it->second.alive = false;
  }
}

void Gcs::MarkRestarted(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  ActorRecord& rec = records_[name];
  rec.alive = true;
  ++rec.restarts;
}

bool Gcs::IsAlive(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(name);
  return it != records_.end() && it->second.alive;
}

std::optional<Gcs::ActorRecord> Gcs::GetRecord(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(name);
  if (it == records_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Gcs::Heartbeat(const std::string& name, int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_[name].last_heartbeat_ms = now_ms;
}

std::vector<std::string> Gcs::StaleActors(int64_t now_ms, int64_t timeout_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> stale;
  for (const auto& [name, rec] : records_) {
    if (rec.alive && now_ms - rec.last_heartbeat_ms > timeout_ms) {
      stale.push_back(name);
    }
  }
  return stale;
}

void Gcs::PutState(const std::string& key, std::string blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_[key] = std::move(blob);
}

std::optional<std::string> Gcs::GetState(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = state_.find(key);
  if (it == state_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Gcs::DeleteState(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_.erase(key);
}

size_t Gcs::state_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_.size();
}

}  // namespace msd
