// Global Control Store: the cluster-wide registry used for fault tolerance.
//
// Mirrors Ray's GCS role in the paper (Sec. 6.1): core coordinators persist
// small state blobs here and are restarted from them; liveness is tracked via
// heartbeats; restart counts feed the fault-tolerance metrics.
#ifndef SRC_ACTOR_GCS_H_
#define SRC_ACTOR_GCS_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace msd {

class ObjectStore;

class Gcs {
 public:
  struct ActorRecord {
    uint64_t id = 0;
    bool alive = false;
    int64_t restarts = 0;
    int64_t last_heartbeat_ms = 0;
  };

  void RegisterActor(const std::string& name, uint64_t id);
  void MarkDead(const std::string& name);
  void MarkRestarted(const std::string& name);
  bool IsAlive(const std::string& name) const;
  std::optional<ActorRecord> GetRecord(const std::string& name) const;

  void Heartbeat(const std::string& name, int64_t now_ms);
  // Names whose last heartbeat is older than `now_ms - timeout_ms`.
  std::vector<std::string> StaleActors(int64_t now_ms, int64_t timeout_ms) const;

  // Durable state blobs (checkpoints, plans). Overwrites prior value.
  void PutState(const std::string& key, std::string blob);
  std::optional<std::string> GetState(const std::string& key) const;
  void DeleteState(const std::string& key);
  size_t state_count() const;

  // Write-through durability: every PutState also lands in `store` under
  // `prefix` + key (ObjectStore::Put is atomic, so a crash mid-write can
  // never leave a half-written snapshot behind), and GetState falls back to
  // the store on a miss — this is how a restarted process sees the journal a
  // dead one left. The store must outlive the Gcs; pass nullptr to detach.
  //
  // Multi-tenant namespacing: co-hosted Sessions sharing one durable store
  // attach with distinct prefixes ("gcs/<tenant>/"), so heartbeat journals,
  // quarantine state, and watchdog snapshots never cross tenants even though
  // they live in the same ObjectStore.
  void AttachDurableStore(ObjectStore* store, std::string prefix = "gcs/");
  const std::string& durable_prefix() const { return durable_prefix_; }

 private:
  mutable std::mutex mutex_;
  // Serializes durable write-through commits (memory + disk in one order)
  // without holding mutex_ across disk I/O. Always acquired before mutex_.
  // Mutable: GetState's fallback read takes it too.
  mutable std::mutex durable_mutex_;
  std::unordered_map<std::string, ActorRecord> records_;
  // Mutable: GetState caches durable-store fallback reads.
  mutable std::unordered_map<std::string, std::string> state_;
  ObjectStore* durable_store_ = nullptr;
  std::string durable_prefix_;
};

}  // namespace msd

#endif  // SRC_ACTOR_GCS_H_
