// In-process actor runtime (the Ray stand-in).
//
// Each actor owns a mailbox drained by a dedicated thread; all of an actor's
// state is touched only from its own thread, so actors need no internal locks.
// Messages are closures posted to the mailbox; request/response ("Ask") is a
// posted closure that fulfils a future, with optional deadline — the same
// building blocks MegaScale-Data's Source Loader / Data Constructor / Planner
// protocol needs, including abrupt-kill semantics for fault-tolerance tests.
#ifndef SRC_ACTOR_ACTOR_H_
#define SRC_ACTOR_ACTOR_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "src/common/mpmc_queue.h"
#include "src/common/status.h"

namespace msd {

class ActorSystem;

// Base class for all actors. Subclasses add state and methods; methods must be
// invoked through ActorSystem::Post/Ask so they run on the actor's own thread.
class Actor {
 public:
  explicit Actor(std::string name) : name_(std::move(name)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const std::string& name() const { return name_; }
  uint64_t id() const { return id_; }
  bool alive() const { return alive_.load(std::memory_order_acquire); }

 private:
  friend class ActorSystem;

  std::string name_;
  uint64_t id_ = 0;
  std::atomic<bool> alive_{false};
  std::unique_ptr<MpmcQueue<std::function<void()>>> mailbox_;
  std::thread pump_;
  // Count of messages dropped because the actor was dead (observability).
  std::atomic<uint64_t> dropped_messages_{0};
};

}  // namespace msd

#endif  // SRC_ACTOR_ACTOR_H_
