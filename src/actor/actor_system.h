// ActorSystem: spawning, message posting, synchronous Ask, and kill.
#ifndef SRC_ACTOR_ACTOR_SYSTEM_H_
#define SRC_ACTOR_ACTOR_SYSTEM_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/actor/actor.h"
#include "src/actor/gcs.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace msd {

class ActorSystem {
 public:
  ActorSystem();
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  // Constructs an actor, registers it with the GCS, and starts its mailbox
  // pump. The system keeps the actor alive until Shutdown.
  template <typename T, typename... Args>
  std::shared_ptr<T> Spawn(Args&&... args) {
    auto actor = std::make_shared<T>(std::forward<Args>(args)...);
    Register(actor);
    return actor;
  }

  // Fire-and-forget message. Returns false if the actor is dead.
  bool Post(Actor& actor, std::function<void()> fn);

  // Runs fn on the actor's thread and waits for the result (no deadline).
  template <typename R>
  R Ask(Actor& actor, std::function<R()> fn) {
    return AskAsync<R>(actor, std::move(fn)).get();
  }

  // Asynchronous Ask: posts fn to the actor and returns a future for its
  // result. Lets callers fan a round of requests out over many actors and
  // gather them (the prefetch pipeline pops every loader concurrently this
  // way). Posting order is preserved per actor, so two AskAsync calls to the
  // same actor from one thread execute in issue order.
  template <typename R>
  std::future<R> AskAsync(Actor& actor, std::function<R()> fn) {
    auto prom = std::make_shared<std::promise<R>>();
    std::future<R> fut = prom->get_future();
    bool posted = Post(actor, [prom, fn = std::move(fn)]() mutable {
      if constexpr (std::is_void_v<R>) {
        fn();
        prom->set_value();
      } else {
        prom->set_value(fn());
      }
    });
    MSD_CHECK(posted && "Ask/AskAsync on dead actor; use AskWithTimeout for fallible calls");
    return fut;
  }

  // Ask with a wall-clock deadline: models RPC timeout detection. Returns
  // DeadlineExceeded if the actor does not answer in time and Unavailable if
  // it is already dead.
  //
  // Abandoned-future contract: when the deadline fires, the posted closure is
  // NOT cancelled — it still runs later on the actor's thread, and its result
  // lands in a promise nobody reads. Callers must therefore pass a closure
  // that owns (or shares) everything it touches for the actor's lifetime:
  //  - capture actor/loader pointers only when the ActorSystem keeps the
  //    target alive until Shutdown (it does — actors are shared_ptr-owned by
  //    the registry, and Kill only closes the mailbox), and
  //  - never capture references to caller stack state — the caller may have
  //    unwound long before the closure runs.
  // With that discipline a late completion is a pure no-op: the closure's
  // side effects are confined to the actor's own state (serialized on its
  // mailbox thread), and the caller already acted on the timeout status.
  // tests/actor_test.cc (AbandonedAskCompletion*) locks this in under ASan.
  template <typename R>
  Result<R> AskWithTimeout(Actor& actor, std::function<R()> fn, int64_t timeout_ms) {
    static_assert(!std::is_void_v<R>, "AskWithTimeout requires a value-returning call");
    auto prom = std::make_shared<std::promise<R>>();
    std::future<R> fut = prom->get_future();
    bool posted = Post(actor, [prom, fn = std::move(fn)]() mutable {
      prom->set_value(fn());
    });
    if (!posted) {
      return Status::Unavailable("actor " + actor.name() + " is dead");
    }
    if (fut.wait_for(std::chrono::milliseconds(timeout_ms)) != std::future_status::ready) {
      return Status::DeadlineExceeded("actor " + actor.name() + " did not respond");
    }
    return fut.get();
  }

  // Abruptly terminates the actor: closes its mailbox (pending messages are
  // dropped) and marks it dead in the GCS. Used by the failure injector.
  void Kill(Actor& actor);

  // Graceful stop: drains the mailbox, then stops.
  void Stop(Actor& actor);

  // Stops all actors and joins their threads.
  void Shutdown();

  Gcs& gcs() { return gcs_; }

  std::shared_ptr<Actor> Find(const std::string& name);
  size_t live_actor_count() const;

 private:
  void Register(std::shared_ptr<Actor> actor);
  void StopLocked(Actor& actor, bool drain);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Actor>> actors_;
  uint64_t next_id_ = 1;
  Gcs gcs_;
  bool shut_down_ = false;
};

}  // namespace msd

#endif  // SRC_ACTOR_ACTOR_SYSTEM_H_
