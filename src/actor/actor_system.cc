#include "src/actor/actor_system.h"

#include "src/common/logging.h"

namespace msd {

ActorSystem::ActorSystem() = default;

ActorSystem::~ActorSystem() { Shutdown(); }

void ActorSystem::Register(std::shared_ptr<Actor> actor) {
  std::lock_guard<std::mutex> lock(mutex_);
  MSD_CHECK(!shut_down_);
  MSD_CHECK(actors_.find(actor->name()) == actors_.end());
  actor->id_ = next_id_++;
  actor->mailbox_ = std::make_unique<MpmcQueue<std::function<void()>>>();
  actor->alive_.store(true, std::memory_order_release);
  Actor* raw = actor.get();
  actor->pump_ = std::thread([raw] {
    while (true) {
      std::optional<std::function<void()>> msg = raw->mailbox_->Pop();
      if (!msg.has_value()) {
        return;
      }
      (*msg)();
    }
  });
  gcs_.RegisterActor(actor->name(), actor->id_);
  actors_[actor->name()] = std::move(actor);
}

bool ActorSystem::Post(Actor& actor, std::function<void()> fn) {
  if (!actor.alive()) {
    actor.dropped_messages_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!actor.mailbox_->Push(std::move(fn))) {
    actor.dropped_messages_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ActorSystem::Kill(Actor& actor) {
  std::lock_guard<std::mutex> lock(mutex_);
  StopLocked(actor, /*drain=*/false);
  gcs_.MarkDead(actor.name());
  MSD_LOG_DEBUG("killed actor %s", actor.name().c_str());
}

void ActorSystem::Stop(Actor& actor) {
  std::lock_guard<std::mutex> lock(mutex_);
  StopLocked(actor, /*drain=*/true);
  gcs_.MarkDead(actor.name());
}

void ActorSystem::StopLocked(Actor& actor, bool drain) {
  if (!actor.alive()) {
    return;
  }
  actor.alive_.store(false, std::memory_order_release);
  if (!drain) {
    // Abrupt kill: discard everything still queued.
    while (actor.mailbox_->TryPop().has_value()) {
    }
  }
  actor.mailbox_->Close();
  if (actor.pump_.joinable()) {
    actor.pump_.join();
  }
}

void ActorSystem::Shutdown() {
  std::unordered_map<std::string, std::shared_ptr<Actor>> actors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) {
      return;
    }
    shut_down_ = true;
    actors = actors_;
  }
  for (auto& [name, actor] : actors) {
    std::lock_guard<std::mutex> lock(mutex_);
    StopLocked(*actor, /*drain=*/true);
    gcs_.MarkDead(name);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  actors_.clear();
}

std::shared_ptr<Actor> ActorSystem::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = actors_.find(name);
  if (it == actors_.end()) {
    return nullptr;
  }
  return it->second;
}

size_t ActorSystem::live_actor_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [name, actor] : actors_) {
    if (actor->alive()) {
      ++n;
    }
  }
  return n;
}

}  // namespace msd
