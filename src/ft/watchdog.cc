#include "src/ft/watchdog.h"

#include "src/common/logging.h"

namespace msd {

std::vector<std::string> Watchdog::ScanAndRecover(int64_t now_ms) {
  std::vector<std::string> promoted;
  for (const std::string& name : system_->gcs().StaleActors(now_ms, timeout_ms_)) {
    // Only primary data-plane loaders are heartbeat-monitored (the planner
    // stamps them on every healthy gather). Control-plane actors and passive
    // shadows never heartbeat, so staleness means nothing for them.
    if (!ft_->IsWatchedPrimary(name)) {
      continue;
    }
    ++detections_;
    Result<SourceLoader*> replacement = ft_->PromoteShadow(name);
    if (replacement.ok()) {
      system_->gcs().MarkDead(name);
      promoted.push_back(replacement.value()->name());
      MSD_LOG_INFO("watchdog: %s stale, promoted %s", name.c_str(),
                   replacement.value()->name().c_str());
    }
  }
  return promoted;
}

}  // namespace msd
