// Watchdog: heartbeat-driven failure detection (Sec. 6.1).
//
// Loaders are heartbeated into the GCS whenever they answer a metadata
// gather (see Planner::GeneratePlan). The watchdog periodically scans for
// actors whose heartbeat went stale — RPC-timeout failures that never
// surfaced an error — and promotes their hot-standby shadows.
#ifndef SRC_FT_WATCHDOG_H_
#define SRC_FT_WATCHDOG_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/actor/actor_system.h"
#include "src/ft/fault_tolerance.h"

namespace msd {

class Watchdog {
 public:
  Watchdog(ActorSystem* system, FaultToleranceManager* ft, int64_t heartbeat_timeout_ms = 5000)
      : system_(system), ft_(ft), timeout_ms_(heartbeat_timeout_ms) {
    MSD_CHECK(system_ != nullptr);
    MSD_CHECK(ft_ != nullptr);
  }

  // Scans the GCS for stale-heartbeat actors at virtual time `now_ms` and
  // promotes shadows for any registered loader pairs among them. Returns the
  // names of the promoted replacements.
  std::vector<std::string> ScanAndRecover(int64_t now_ms);

  // Stale-heartbeat detections so far (includes actors with no registered
  // shadow pair — only pairs get promoted). Readable from any thread.
  int64_t detections() const { return detections_.load(std::memory_order_relaxed); }

  // Counts a hang detected outside the periodic scan — e.g. a pop RPC that
  // outlived its deadline mid-production (see Session::RecoverHungPop). Keeps
  // every silent-loader detection, however observed, in one counter.
  void RecordDetection() { ++detections_; }

 private:
  ActorSystem* system_;
  FaultToleranceManager* ft_;
  int64_t timeout_ms_;
  std::atomic<int64_t> detections_{0};
};

}  // namespace msd

#endif  // SRC_FT_WATCHDOG_H_
