// Watchdog: heartbeat-driven failure detection (Sec. 6.1).
//
// Loaders are heartbeated into the GCS whenever they answer a metadata
// gather (see Planner::GeneratePlan). The watchdog periodically scans for
// actors whose heartbeat went stale — RPC-timeout failures that never
// surfaced an error — and promotes their hot-standby shadows.
#ifndef SRC_FT_WATCHDOG_H_
#define SRC_FT_WATCHDOG_H_

#include <string>
#include <vector>

#include "src/actor/actor_system.h"
#include "src/ft/fault_tolerance.h"

namespace msd {

class Watchdog {
 public:
  Watchdog(ActorSystem* system, FaultToleranceManager* ft, int64_t heartbeat_timeout_ms = 5000)
      : system_(system), ft_(ft), timeout_ms_(heartbeat_timeout_ms) {
    MSD_CHECK(system_ != nullptr);
    MSD_CHECK(ft_ != nullptr);
  }

  // Scans the GCS for stale-heartbeat actors at virtual time `now_ms` and
  // promotes shadows for any registered loader pairs among them. Returns the
  // names of the promoted replacements.
  std::vector<std::string> ScanAndRecover(int64_t now_ms);

  int64_t detections() const { return detections_; }

 private:
  ActorSystem* system_;
  FaultToleranceManager* ft_;
  int64_t timeout_ms_;
  int64_t detections_ = 0;
};

}  // namespace msd

#endif  // SRC_FT_WATCHDOG_H_
