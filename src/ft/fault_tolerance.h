// Fault tolerance (Sec. 6.1): shadow loaders, differential checkpointing, and
// failure detection/recovery.
//
// Recovery paths:
//  - Shadow promotion: every primary Source Loader has a hot-standby shadow
//    that mirrors its pops; on failure the shadow is promoted instantly.
//  - Differential checkpointing: loaders snapshot at a LOW frequency while the
//    Planner journals every plan to the GCS at HIGH frequency; a fresh loader
//    restores the last snapshot and replays the journaled plans to catch up.
#ifndef SRC_FT_FAULT_TOLERANCE_H_
#define SRC_FT_FAULT_TOLERANCE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/actor/actor_system.h"
#include "src/loader/source_loader.h"
#include "src/plan/dgraph.h"

namespace msd {

struct FaultToleranceConfig {
  // Steps between loader snapshots (the paper's "lower frequency").
  int64_t loader_snapshot_interval = 8;
};

class FaultToleranceManager {
 public:
  FaultToleranceManager(FaultToleranceConfig config, ActorSystem* system);

  // Registers a primary loader with its hot-standby shadow. The shadow must
  // be Open()ed and configured identically to the primary.
  void RegisterPair(SourceLoader* primary, SourceLoader* shadow);

  // Post-execution hook: mirrors the plan's pops into every shadow and takes
  // periodic loader snapshots into the GCS.
  Status OnPlanExecuted(const LoadingPlan& plan);

  // Promotes the shadow of `primary_name` (the primary is killed). Returns
  // the new primary. The caller re-registers a replacement shadow later.
  Result<SourceLoader*> PromoteShadow(const std::string& primary_name);

  // True when `name` is a registered primary that still has a standby — the
  // set of actors whose heartbeat staleness the watchdog acts on. Everything
  // else (planner, constructors, passive shadows) never heartbeats, so
  // staleness carries no signal for them.
  bool IsWatchedPrimary(const std::string& name) const {
    return pairs_.find(name) != pairs_.end();
  }

  // Checkpoint recovery: restores `fresh` from the latest snapshot of
  // `loader_id` and replays journaled plans in (snapshot_step, up_to_step].
  Status RecoverFromCheckpoint(SourceLoader* fresh, int32_t loader_id, int64_t up_to_step);

  // Job resume (src/checkpoint/): seeds the GCS with externally restored
  // loader snapshots, making `step` the differential-checkpoint frontier —
  // post-resume recovery replays only plans journaled after it. The old
  // process's snapshots died with its GCS; without this seed the first
  // in-session snapshot would not exist until the next interval boundary.
  void SeedSnapshots(int64_t step, const std::map<int32_t, std::string>& snapshots);

  // Carries the lifetime counters across a job resume (observability only).
  void RestoreCounters(int64_t snapshots_taken, int64_t promotions);

  // GCS keys.
  static std::string SnapshotKey(int32_t loader_id);
  static std::string SnapshotStepKey(int32_t loader_id);

  int64_t snapshots_taken() const { return snapshots_taken_; }
  int64_t promotions() const { return promotions_; }

 private:
  // Sample ids assigned to `loader_id` in `plan`.
  static std::vector<uint64_t> IdsForLoader(const LoadingPlan& plan, int32_t loader_id);

  FaultToleranceConfig config_;
  ActorSystem* system_;
  struct Pair {
    SourceLoader* primary = nullptr;
    SourceLoader* shadow = nullptr;
  };
  std::unordered_map<std::string, Pair> pairs_;       // by primary name
  std::unordered_map<int32_t, SourceLoader*> by_id_;  // loader_id -> primary
  int64_t snapshots_taken_ = 0;
  int64_t promotions_ = 0;
};

// Failure injector: abrupt kills and payload-integrity faults.
class FailureInjector {
 public:
  explicit FailureInjector(ActorSystem* system) : system_(system) {}

  // Abruptly kills the loader (mailbox dropped, GCS marked dead).
  void KillLoader(SourceLoader* loader) { system_->Kill(*loader); }

  // Makes future pops yield partially without an end-of-stream marker.
  void InjectPartialYield(SourceLoader* loader, bool enabled);

 private:
  ActorSystem* system_;
};

}  // namespace msd

#endif  // SRC_FT_FAULT_TOLERANCE_H_
