#include "src/ft/fault_tolerance.h"

#include "src/common/logging.h"
#include "src/planner/planner.h"

namespace msd {

FaultToleranceManager::FaultToleranceManager(FaultToleranceConfig config, ActorSystem* system)
    : config_(config), system_(system) {
  MSD_CHECK(system_ != nullptr);
  MSD_CHECK(config_.loader_snapshot_interval >= 1);
}

void FaultToleranceManager::RegisterPair(SourceLoader* primary, SourceLoader* shadow) {
  MSD_CHECK(primary != nullptr);
  pairs_[primary->name()] = Pair{primary, shadow};
  by_id_[primary->config().loader_id] = primary;
}

std::string FaultToleranceManager::SnapshotKey(int32_t loader_id) {
  return "ft/loader_snapshot/" + std::to_string(loader_id);
}

std::string FaultToleranceManager::SnapshotStepKey(int32_t loader_id) {
  return "ft/loader_snapshot_step/" + std::to_string(loader_id);
}

std::vector<uint64_t> FaultToleranceManager::IdsForLoader(const LoadingPlan& plan,
                                                          int32_t loader_id) {
  std::vector<uint64_t> ids;
  for (const SliceAssignment& a : plan.assignments) {
    if (a.loader_id == loader_id) {
      ids.push_back(a.sample_id);
    }
  }
  return ids;
}

Status FaultToleranceManager::OnPlanExecuted(const LoadingPlan& plan) {
  for (auto& [name, pair] : pairs_) {
    int32_t loader_id = pair.primary->config().loader_id;
    std::vector<uint64_t> ids = IdsForLoader(plan, loader_id);
    if (!ids.empty() && pair.shadow != nullptr && pair.shadow->alive()) {
      // Mirror the pop so the shadow's buffer tracks the primary's exactly.
      Result<bool> mirrored = system_->AskWithTimeout<bool>(
          *pair.shadow,
          [shadow = pair.shadow, step = plan.step, ids] {
            return shadow->PopSamples(step, ids).ok();
          },
          /*timeout_ms=*/5000);
      if (!mirrored.ok() || !mirrored.value()) {
        MSD_LOG_WARN("shadow of %s failed to mirror step %lld", name.c_str(),
                     static_cast<long long>(plan.step));
      }
    }
    // Low-frequency loader snapshot (differential vs. per-step plan journal).
    if (plan.step % config_.loader_snapshot_interval == 0 && pair.primary->alive()) {
      Result<LoaderSnapshot> snap = system_->AskWithTimeout<LoaderSnapshot>(
          *pair.primary, [primary = pair.primary] { return primary->Snapshot(); },
          /*timeout_ms=*/5000);
      if (snap.ok()) {
        system_->gcs().PutState(SnapshotKey(loader_id), snap->Serialize());
        system_->gcs().PutState(SnapshotStepKey(loader_id), std::to_string(plan.step));
        ++snapshots_taken_;
      }
    }
  }
  return Status::Ok();
}

Result<SourceLoader*> FaultToleranceManager::PromoteShadow(const std::string& primary_name) {
  auto it = pairs_.find(primary_name);
  if (it == pairs_.end()) {
    return Status::NotFound("no registered pair for " + primary_name);
  }
  SourceLoader* shadow = it->second.shadow;
  if (shadow == nullptr || !shadow->alive()) {
    return Status::Unavailable("shadow for " + primary_name + " is unavailable");
  }
  int32_t loader_id = it->second.primary->config().loader_id;
  by_id_[loader_id] = shadow;
  system_->gcs().MarkRestarted(primary_name);
  pairs_.erase(it);
  pairs_[shadow->name()] = Pair{shadow, nullptr};
  ++promotions_;
  MSD_LOG_INFO("promoted shadow %s for failed primary %s", shadow->name().c_str(),
               primary_name.c_str());
  return shadow;
}

Status FaultToleranceManager::RecoverFromCheckpoint(SourceLoader* fresh, int32_t loader_id,
                                                    int64_t up_to_step) {
  std::optional<std::string> blob = system_->gcs().GetState(SnapshotKey(loader_id));
  std::optional<std::string> step_blob = system_->gcs().GetState(SnapshotStepKey(loader_id));
  if (!blob.has_value() || !step_blob.has_value()) {
    return Status::NotFound("no snapshot for loader " + std::to_string(loader_id));
  }
  Result<LoaderSnapshot> snap = LoaderSnapshot::Deserialize(*blob);
  if (!snap.ok()) {
    return snap.status();
  }
  int64_t snapshot_step = std::stoll(*step_blob);
  MSD_RETURN_IF_ERROR(fresh->Restore(snap.value()));

  // Deterministic replay: re-apply the journaled pops after the snapshot.
  for (int64_t step = snapshot_step + 1; step <= up_to_step; ++step) {
    std::optional<std::string> plan_blob =
        system_->gcs().GetState(Planner::PlanJournalKey(step));
    if (!plan_blob.has_value()) {
      continue;  // step was never planned (e.g. idle interval)
    }
    Result<LoadingPlan> plan = LoadingPlan::Deserialize(*plan_blob);
    if (!plan.ok()) {
      return plan.status();
    }
    std::vector<uint64_t> ids = IdsForLoader(plan.value(), loader_id);
    if (ids.empty()) {
      continue;
    }
    Result<SampleSlice> replayed = fresh->PopSamples(step, ids);
    if (!replayed.ok()) {
      return Status::DataLoss("replay of step " + std::to_string(step) +
                              " failed: " + replayed.status().ToString());
    }
  }
  by_id_[loader_id] = fresh;
  return Status::Ok();
}

void FaultToleranceManager::SeedSnapshots(int64_t step,
                                          const std::map<int32_t, std::string>& snapshots) {
  for (const auto& [loader_id, bytes] : snapshots) {
    system_->gcs().PutState(SnapshotKey(loader_id), bytes);
    system_->gcs().PutState(SnapshotStepKey(loader_id), std::to_string(step));
  }
}

void FaultToleranceManager::RestoreCounters(int64_t snapshots_taken, int64_t promotions) {
  snapshots_taken_ = snapshots_taken;
  promotions_ = promotions;
}

void FailureInjector::InjectPartialYield(SourceLoader* loader, bool enabled) {
  system_->Post(*loader, [loader, enabled] { loader->set_inject_partial_yield(enabled); });
}

}  // namespace msd
