// Hybrid-parallelism descriptors: axes, specs, and rank coordinates.
#ifndef SRC_MESH_PARALLELISM_H_
#define SRC_MESH_PARALLELISM_H_

#include <cstdint>
#include <string>

namespace msd {

// Distribution axes accepted by DGraph::distribute (Sec. 4.2).
enum class Axis { kDP = 0, kPP = 1, kCP = 2, kTP = 3, kWorld = 4 };

const char* AxisName(Axis axis);

struct ParallelismSpec {
  int32_t dp = 1;
  int32_t pp = 1;
  int32_t cp = 1;
  int32_t tp = 1;

  int32_t WorldSize() const { return dp * pp * cp * tp; }
  int32_t SizeOf(Axis axis) const;
  std::string ToString() const;
  bool operator==(const ParallelismSpec&) const = default;
};

// Position of one GPU rank in the 4D mesh. Axis nesting order from outermost
// to innermost is fixed as DP > PP > CP > TP (matching the deployment in
// Fig. 7 where a Data Constructor serves one DP group).
struct RankCoord {
  int32_t dp = 0;
  int32_t pp = 0;
  int32_t cp = 0;
  int32_t tp = 0;
  bool operator==(const RankCoord&) const = default;
};

RankCoord CoordOfRank(const ParallelismSpec& spec, int32_t rank);
int32_t RankOfCoord(const ParallelismSpec& spec, const RankCoord& coord);

}  // namespace msd

#endif  // SRC_MESH_PARALLELISM_H_
