#include "src/mesh/selective_broadcast.h"

#include <map>

#include "src/common/status.h"

namespace msd {

namespace {

// Group key for a rank at a given broadcast axis, holding all coordinates
// EXCEPT the broadcast axis fixed.
int64_t GroupKey(const ParallelismSpec& spec, const RankCoord& c, Axis axis) {
  int64_t dp = c.dp;
  int64_t pp = axis == Axis::kPP ? 0 : c.pp;
  int64_t cp = axis == Axis::kCP ? 0 : c.cp;
  int64_t tp = axis == Axis::kTP ? 0 : c.tp;
  return ((dp * spec.pp + pp) * spec.cp + cp) * spec.tp + tp;
}

// True if `c` is at coordinate 0 of `axis`.
bool IsAxisRoot(const RankCoord& c, Axis axis) {
  switch (axis) {
    case Axis::kPP:
      return c.pp == 0;
    case Axis::kCP:
      return c.cp == 0;
    case Axis::kTP:
      return c.tp == 0;
    case Axis::kDP:
    case Axis::kWorld:
      return true;
  }
  return true;
}

}  // namespace

BroadcastPlan MakeSelectiveBroadcastPlan(const ClientPlaceTree& tree,
                                         const std::vector<Axis>& axes) {
  const ParallelismSpec& spec = tree.spec();
  for (Axis axis : axes) {
    MSD_CHECK(axis == Axis::kPP || axis == Axis::kCP || axis == Axis::kTP);
  }
  BroadcastPlan plan;
  plan.fetching_ranks = tree.FetchingRanks(axes);

  // Stage k broadcasts along axes[k]. A rank participates as a target of
  // stage k if it is at coordinate 0 for every LATER axis (it will fan out
  // further in subsequent stages) and nonzero at axes[k].
  for (size_t k = 0; k < axes.size(); ++k) {
    Axis axis = axes[k];
    std::map<int64_t, BroadcastGroup> groups;
    for (int32_t r = 0; r < spec.WorldSize(); ++r) {
      RankCoord c = CoordOfRank(spec, r);
      bool later_root = true;
      for (size_t j = k + 1; j < axes.size(); ++j) {
        later_root = later_root && IsAxisRoot(c, axes[j]);
      }
      if (!later_root) {
        continue;  // this rank is reached in a later stage
      }
      int64_t key = GroupKey(spec, c, axis);
      BroadcastGroup& group = groups[key];
      if (IsAxisRoot(c, axis)) {
        group.root = r;
      } else {
        group.targets.push_back(r);
      }
    }
    std::vector<BroadcastGroup> stage;
    for (auto& [key, group] : groups) {
      if (!group.targets.empty()) {
        stage.push_back(std::move(group));
      }
    }
    plan.stages.push_back(std::move(stage));
  }
  return plan;
}

std::vector<int64_t> StageShippedBytes(const BroadcastPlan& plan,
                                       int64_t per_rank_payload_bytes) {
  std::vector<int64_t> bytes;
  bytes.reserve(plan.stages.size());
  for (const std::vector<BroadcastGroup>& stage : plan.stages) {
    int64_t targets = 0;
    for (const BroadcastGroup& group : stage) {
      targets += static_cast<int64_t>(group.targets.size());
    }
    bytes.push_back(targets * per_rank_payload_bytes);
  }
  return bytes;
}

int64_t TotalShippedBytes(const BroadcastPlan& plan, int64_t per_rank_payload_bytes) {
  int64_t total =
      static_cast<int64_t>(plan.fetching_ranks.size()) * per_rank_payload_bytes;
  for (int64_t stage : StageShippedBytes(plan, per_rank_payload_bytes)) {
    total += stage;
  }
  return total;
}

}  // namespace msd
