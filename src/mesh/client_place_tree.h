// ClientPlaceTree (Sec. 4.1): a logical tree over the trainer device mesh.
//
// Levels from root to leaves follow the axis nesting DP > PP > CP > TP. The
// tree answers the questions the orchestration primitives ask:
//  - how many consumer buckets exist at a given axis (distribute),
//  - which global ranks live under a bucket (plan finalization),
//  - which ranks are broadcast targets vs. fetch-excluded (broadcast_at),
// and it is cheap to rebuild when the mesh changes (elastic resharding).
// Users may override construction to implement custom behaviours such as the
// selective broadcasting of Sec. 6.
#ifndef SRC_MESH_CLIENT_PLACE_TREE_H_
#define SRC_MESH_CLIENT_PLACE_TREE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/mesh/parallelism.h"

namespace msd {

struct PlaceNode {
  Axis axis = Axis::kWorld;  // axis of the level this node belongs to
  int32_t index = 0;         // index within its level
  std::vector<int32_t> ranks;  // all global ranks under this node
  std::vector<std::unique_ptr<PlaceNode>> children;
};

class ClientPlaceTree {
 public:
  // Default: a single-GPU mesh. Use FromDeviceMesh or Rebuild for real ones.
  ClientPlaceTree() { Rebuild(ParallelismSpec{}); }

  // Builds the default tree for a mesh. `num_microbatches` is carried along
  // for balance() bin construction.
  static ClientPlaceTree FromDeviceMesh(const ParallelismSpec& spec, int32_t num_microbatches = 1);

  const ParallelismSpec& spec() const { return spec_; }
  int32_t num_microbatches() const { return num_microbatches_; }

  // Number of consumer buckets when distributing along `axis`:
  //  - kDP: dp buckets; kCP: dp*cp ("DP x CP as uniform consumers");
  //  - kWorld: every rank; kPP/kTP degenerate to dp (data is replicated).
  // With group_size > 1, buckets are merged into ceil(n / group_size) groups.
  int32_t NumBuckets(Axis axis, int32_t group_size = 1) const;

  // Global ranks that consume the contents of `bucket` under `axis`.
  std::vector<int32_t> BucketRanks(Axis axis, int32_t bucket, int32_t group_size = 1) const;

  // Bucket that a given rank belongs to under `axis`.
  int32_t BucketOfRank(Axis axis, int32_t rank, int32_t group_size = 1) const;

  // DP group that consumes `bucket` (group_size == 1). Data Constructors are
  // deployed one per DP group (Fig. 7), so this maps buckets to constructors.
  int32_t DpOfBucket(Axis axis, int32_t bucket) const;

  // Ranks excluded from fetching when a broadcast exists along `axis`
  // (e.g. broadcast_at(TP): every rank with tp > 0 stops fetching).
  std::vector<int32_t> FetchExcludedRanks(Axis axis) const;

  // Ranks that still fetch after applying all broadcast exclusions.
  std::vector<int32_t> FetchingRanks(const std::vector<Axis>& broadcast_axes) const;

  const PlaceNode& root() const { return *root_; }
  std::string ToString() const;

  // Rebuild for a changed mesh (elastic resharding, Sec. 6.1). Cheap: O(world).
  void Rebuild(const ParallelismSpec& spec);

  // Override hook: custom tree surgery after default construction (Sec. 4.1
  // "users can override the default construction logic").
  void Customize(const std::function<void(PlaceNode&)>& fn) { fn(*root_); }

 private:
  ParallelismSpec spec_;
  int32_t num_microbatches_ = 1;
  std::unique_ptr<PlaceNode> root_;
};

}  // namespace msd

#endif  // SRC_MESH_CLIENT_PLACE_TREE_H_
