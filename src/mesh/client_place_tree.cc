#include "src/mesh/client_place_tree.h"

#include <cstdio>

#include "src/common/status.h"

namespace msd {

namespace {

// Builds one level of the tree; axes below `level` become descendants.
std::unique_ptr<PlaceNode> BuildNode(const ParallelismSpec& spec, size_t level, int32_t index,
                                     std::vector<int32_t> ranks) {
  static constexpr Axis kLevels[] = {Axis::kDP, Axis::kPP, Axis::kCP, Axis::kTP};
  auto node = std::make_unique<PlaceNode>();
  node->index = index;
  node->ranks = std::move(ranks);
  if (level >= sizeof(kLevels) / sizeof(kLevels[0])) {
    node->axis = Axis::kTP;  // leaf: a single rank
    return node;
  }
  node->axis = kLevels[level];
  int32_t fanout = spec.SizeOf(kLevels[level]);
  MSD_CHECK(node->ranks.size() % static_cast<size_t>(fanout) == 0);
  size_t per_child = node->ranks.size() / static_cast<size_t>(fanout);
  for (int32_t c = 0; c < fanout; ++c) {
    std::vector<int32_t> child_ranks(node->ranks.begin() + static_cast<int64_t>(c * per_child),
                                     node->ranks.begin() +
                                         static_cast<int64_t>((c + 1) * per_child));
    node->children.push_back(BuildNode(spec, level + 1, c, std::move(child_ranks)));
  }
  return node;
}

}  // namespace

ClientPlaceTree ClientPlaceTree::FromDeviceMesh(const ParallelismSpec& spec,
                                                int32_t num_microbatches) {
  MSD_CHECK(spec.dp >= 1 && spec.pp >= 1 && spec.cp >= 1 && spec.tp >= 1);
  MSD_CHECK(num_microbatches >= 1);
  ClientPlaceTree tree;
  tree.num_microbatches_ = num_microbatches;
  tree.Rebuild(spec);
  return tree;
}

void ClientPlaceTree::Rebuild(const ParallelismSpec& spec) {
  spec_ = spec;
  std::vector<int32_t> all_ranks(static_cast<size_t>(spec.WorldSize()));
  for (int32_t r = 0; r < spec.WorldSize(); ++r) {
    all_ranks[static_cast<size_t>(r)] = r;
  }
  root_ = BuildNode(spec, 0, 0, std::move(all_ranks));
}

int32_t ClientPlaceTree::NumBuckets(Axis axis, int32_t group_size) const {
  MSD_CHECK(group_size >= 1);
  int32_t n = 0;
  switch (axis) {
    case Axis::kDP:
      n = spec_.dp;
      break;
    case Axis::kCP:
      // "treats DP x CP GPUs as uniform consumers for hybrid data parallelism".
      n = spec_.dp * spec_.cp;
      break;
    case Axis::kWorld:
      n = spec_.WorldSize();
      break;
    case Axis::kPP:
    case Axis::kTP:
      // Data is replicated along PP/TP; consumers remain the DP groups.
      n = spec_.dp;
      break;
  }
  return (n + group_size - 1) / group_size;
}

std::vector<int32_t> ClientPlaceTree::BucketRanks(Axis axis, int32_t bucket,
                                                  int32_t group_size) const {
  MSD_CHECK(bucket >= 0 && bucket < NumBuckets(axis, group_size));
  std::vector<int32_t> ranks;
  for (int32_t r = 0; r < spec_.WorldSize(); ++r) {
    if (BucketOfRank(axis, r, group_size) == bucket) {
      ranks.push_back(r);
    }
  }
  return ranks;
}

int32_t ClientPlaceTree::BucketOfRank(Axis axis, int32_t rank, int32_t group_size) const {
  RankCoord c = CoordOfRank(spec_, rank);
  int32_t bucket = 0;
  switch (axis) {
    case Axis::kDP:
    case Axis::kPP:
    case Axis::kTP:
      bucket = c.dp;
      break;
    case Axis::kCP:
      bucket = c.dp * spec_.cp + c.cp;
      break;
    case Axis::kWorld:
      bucket = rank;
      break;
  }
  return bucket / group_size;
}

int32_t ClientPlaceTree::DpOfBucket(Axis axis, int32_t bucket) const {
  MSD_CHECK(bucket >= 0 && bucket < NumBuckets(axis, 1));
  switch (axis) {
    case Axis::kDP:
    case Axis::kPP:
    case Axis::kTP:
      return bucket;
    case Axis::kCP:
      return bucket / spec_.cp;
    case Axis::kWorld:
      return CoordOfRank(spec_, bucket).dp;
  }
  return bucket;
}

std::vector<int32_t> ClientPlaceTree::FetchExcludedRanks(Axis axis) const {
  std::vector<int32_t> excluded;
  for (int32_t r = 0; r < spec_.WorldSize(); ++r) {
    RankCoord c = CoordOfRank(spec_, r);
    bool exclude = false;
    switch (axis) {
      case Axis::kTP:
        exclude = c.tp > 0;
        break;
      case Axis::kCP:
        exclude = c.cp > 0;
        break;
      case Axis::kPP:
        // PP stages > 0 receive activations peer-to-peer; they fetch only
        // metadata, not payloads (modelled as exclusion here).
        exclude = c.pp > 0;
        break;
      case Axis::kDP:
      case Axis::kWorld:
        exclude = false;
        break;
    }
    if (exclude) {
      excluded.push_back(r);
    }
  }
  return excluded;
}

std::vector<int32_t> ClientPlaceTree::FetchingRanks(const std::vector<Axis>& broadcast_axes) const {
  std::vector<bool> excluded(static_cast<size_t>(spec_.WorldSize()), false);
  for (Axis axis : broadcast_axes) {
    for (int32_t r : FetchExcludedRanks(axis)) {
      excluded[static_cast<size_t>(r)] = true;
    }
  }
  std::vector<int32_t> fetching;
  for (int32_t r = 0; r < spec_.WorldSize(); ++r) {
    if (!excluded[static_cast<size_t>(r)]) {
      fetching.push_back(r);
    }
  }
  return fetching;
}

namespace {
void AppendNode(const PlaceNode& node, int depth, std::string& out) {
  char line[128];
  std::snprintf(line, sizeof(line), "%*s%s[%d] ranks=%zu\n", depth * 2, "", AxisName(node.axis),
                node.index, node.ranks.size());
  out += line;
  for (const auto& child : node.children) {
    if (child->children.empty()) {
      continue;  // omit leaves: one line per GPU is too noisy
    }
    AppendNode(*child, depth + 1, out);
  }
}
}  // namespace

std::string ClientPlaceTree::ToString() const {
  std::string out = "ClientPlaceTree " + spec_.ToString() + "\n";
  AppendNode(*root_, 1, out);
  return out;
}

}  // namespace msd
