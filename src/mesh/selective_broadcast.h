// Selective broadcasting (Sec. 6 "Deployment"): bottom-up broadcast staging
// over the ClientPlaceTree.
//
// Large clusters suffer from trainer-side client barriers: every fetching
// rank synchronizes with its Data Constructor. Selective broadcasting lets
// only one root per sub-communication group fetch, then re-broadcasts within
// the group (e.g. within CP, then within TP) — trading memory/communication
// inside fast intra-group links for far fewer synchronized clients.
#ifndef SRC_MESH_SELECTIVE_BROADCAST_H_
#define SRC_MESH_SELECTIVE_BROADCAST_H_

#include <cstdint>
#include <vector>

#include "src/mesh/client_place_tree.h"

namespace msd {

struct BroadcastGroup {
  int32_t root = 0;               // rank that already holds the data
  std::vector<int32_t> targets;   // ranks it re-broadcasts to
};

// One stage of re-broadcast per axis, ordered outermost-first: stage k's
// roots are ranks that received data in stage k-1 (or fetched directly).
// Axes must be a subset of {kPP, kCP, kTP}; each may appear once.
struct BroadcastPlan {
  std::vector<int32_t> fetching_ranks;              // ranks that pull from a DC
  std::vector<std::vector<BroadcastGroup>> stages;  // one entry per axis
};

// Computes the staged plan for broadcasting along `axes` (e.g. {kCP, kTP}).
BroadcastPlan MakeSelectiveBroadcastPlan(const ClientPlaceTree& tree,
                                         const std::vector<Axis>& axes);

// Number of clients the Data Constructors must synchronize with under the
// plan — the quantity selective broadcasting shrinks.
inline size_t SynchronizedClients(const BroadcastPlan& plan) {
  return plan.fetching_ranks.size();
}

// Bytes each re-broadcast stage moves across trainer links, given the payload
// one rank's batch carries. With the zero-copy data plane a root's RankBatch
// holds views into the constructor's frozen buffers, so the constructor side
// serves `fetching_ranks` metadata-cost fetches and only these staged bytes
// ever need materializing for the wire (one copy per target, none per alias).
std::vector<int64_t> StageShippedBytes(const BroadcastPlan& plan,
                                       int64_t per_rank_payload_bytes);

// Sum of StageShippedBytes plus the root fetches themselves: total payload
// movement to feed the whole world one step.
int64_t TotalShippedBytes(const BroadcastPlan& plan, int64_t per_rank_payload_bytes);

}  // namespace msd

#endif  // SRC_MESH_SELECTIVE_BROADCAST_H_
