#include "src/mesh/parallelism.h"

#include <cstdio>

#include "src/common/status.h"

namespace msd {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kDP:
      return "DP";
    case Axis::kPP:
      return "PP";
    case Axis::kCP:
      return "CP";
    case Axis::kTP:
      return "TP";
    case Axis::kWorld:
      return "WORLD";
  }
  return "?";
}

int32_t ParallelismSpec::SizeOf(Axis axis) const {
  switch (axis) {
    case Axis::kDP:
      return dp;
    case Axis::kPP:
      return pp;
    case Axis::kCP:
      return cp;
    case Axis::kTP:
      return tp;
    case Axis::kWorld:
      return WorldSize();
  }
  return 1;
}

std::string ParallelismSpec::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "DP=%d PP=%d CP=%d TP=%d (world=%d)", dp, pp, cp, tp,
                WorldSize());
  return buf;
}

RankCoord CoordOfRank(const ParallelismSpec& spec, int32_t rank) {
  MSD_CHECK(rank >= 0 && rank < spec.WorldSize());
  RankCoord c;
  c.tp = rank % spec.tp;
  rank /= spec.tp;
  c.cp = rank % spec.cp;
  rank /= spec.cp;
  c.pp = rank % spec.pp;
  rank /= spec.pp;
  c.dp = rank;
  return c;
}

int32_t RankOfCoord(const ParallelismSpec& spec, const RankCoord& coord) {
  MSD_CHECK(coord.dp >= 0 && coord.dp < spec.dp);
  MSD_CHECK(coord.pp >= 0 && coord.pp < spec.pp);
  MSD_CHECK(coord.cp >= 0 && coord.cp < spec.cp);
  MSD_CHECK(coord.tp >= 0 && coord.tp < spec.tp);
  return ((coord.dp * spec.pp + coord.pp) * spec.cp + coord.cp) * spec.tp + coord.tp;
}

}  // namespace msd
