#include "src/plan/mixture_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/storage/wire.h"

namespace msd {

namespace {

// SplitMix64: one multiply-xorshift cascade per step — enough spread for the
// per-step scale pick, and cheap enough to recompute anywhere (constructors,
// oracle, tests) without threading RNG state around.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void HashMix(uint64_t* h, uint64_t v) {
  // FNV-1a over the value's bytes.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= 1099511628211ULL;
  }
}

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

MixtureSchedule::MixtureSchedule(Options options)
    : phases_(std::move(options.phases)),
      scale_set_(std::move(options.scale_set)),
      scale_seed_(options.scale_seed) {
  MSD_CHECK(!phases_.empty());
  std::sort(phases_.begin(), phases_.end(),
            [](const MixturePhase& a, const MixturePhase& b) {
              return a.first_step < b.first_step;
            });
  MSD_CHECK(phases_.front().first_step == 0);
  for (const MixturePhase& p : phases_) {
    MSD_CHECK(p.weights.size() == phases_.front().weights.size());
    MSD_CHECK(!p.weights.empty());
    MSD_CHECK(p.temperature > 0.0);
    double sum = 0.0;
    for (double w : p.weights) {
      MSD_CHECK(w >= 0.0);
      sum += w;
    }
    MSD_CHECK(sum > 0.0);
    MSD_CHECK(p.scale_index < static_cast<int32_t>(scale_set_.size()));
  }
  for (int32_t scale : scale_set_) {
    MSD_CHECK(scale > 0);
  }
}

const MixturePhase& MixtureSchedule::PhaseAtLocked(int64_t step) const {
  const MixturePhase* active = &phases_.front();
  for (const MixturePhase& p : phases_) {
    if (p.first_step <= step) {
      active = &p;
    } else {
      break;
    }
  }
  return *active;
}

std::vector<double> MixtureSchedule::WeightsAt(int64_t step) const {
  std::lock_guard<std::mutex> lock(mu_);
  const MixturePhase& phase = PhaseAtLocked(step);
  std::vector<double> base = phase.weights;
  // Latest committed override at or before `step` replaces the base weights.
  auto it = overrides_.upper_bound(step);
  if (it != overrides_.begin()) {
    --it;
    base = it->second;
  }
  if (phase.temperature == 1.0) {
    return base;
  }
  // Temperature scaling: w_i^(1/T), normalized. Zero weights stay zero, so
  // temperature never resurrects an excluded source.
  double inv_t = 1.0 / phase.temperature;
  double sum = 0.0;
  for (double& w : base) {
    w = w > 0.0 ? std::pow(w, inv_t) : 0.0;
    sum += w;
  }
  if (sum > 0.0) {
    for (double& w : base) {
      w /= sum;
    }
  }
  return base;
}

size_t MixtureSchedule::num_sources() const { return phases_.front().weights.size(); }

int32_t MixtureSchedule::PhaseIndexAt(int64_t step) const {
  int32_t index = 0;
  for (size_t i = 1; i < phases_.size(); ++i) {
    if (phases_[i].first_step <= step) {
      index = static_cast<int32_t>(i);
    } else {
      break;
    }
  }
  return index;
}

const MixturePhase& MixtureSchedule::PhaseAt(int64_t step) const {
  return phases_[static_cast<size_t>(PhaseIndexAt(step))];
}

int64_t MixtureSchedule::PhaseRemainingAt(int64_t step) const {
  size_t index = static_cast<size_t>(PhaseIndexAt(step));
  if (index + 1 >= phases_.size()) {
    return -1;
  }
  return phases_[index + 1].first_step - step;
}

int32_t MixtureSchedule::ScaleAt(int64_t step) const {
  if (scale_set_.empty()) {
    return 0;
  }
  const MixturePhase& phase = PhaseAt(step);
  if (phase.scale_index >= 0) {
    return scale_set_[static_cast<size_t>(phase.scale_index)];
  }
  uint64_t pick = SplitMix64(scale_seed_ ^ static_cast<uint64_t>(step));
  return scale_set_[pick % scale_set_.size()];
}

Status MixtureSchedule::CommitOverride(int64_t effective_step, std::vector<double> weights) {
  if (effective_step < 0) {
    return Status::InvalidArgument("override effective step must be >= 0");
  }
  if (weights.size() != num_sources()) {
    return Status::InvalidArgument("override covers " + std::to_string(weights.size()) +
                                   " sources, schedule has " + std::to_string(num_sources()));
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("override weights must be non-negative");
    }
    sum += w;
  }
  if (sum <= 0.0) {
    return Status::InvalidArgument("override weights must have a positive sum");
  }
  std::lock_guard<std::mutex> lock(mu_);
  overrides_[effective_step] = std::move(weights);
  return Status::Ok();
}

std::string MixtureSchedule::SerializeOverrides() const {
  std::lock_guard<std::mutex> lock(mu_);
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(overrides_.size()));
  for (const auto& [step, weights] : overrides_) {
    w.PutI64(step);
    w.PutPodArray(weights.data(), weights.size());
  }
  return w.Take();
}

Status MixtureSchedule::RestoreOverrides(std::string_view bytes) {
  WireReader r(bytes);
  uint32_t count = r.GetU32();
  if (!r.Ok() || count > r.remaining()) {
    return Status::DataLoss("corrupt mixture override blob");
  }
  std::map<int64_t, std::vector<double>> restored;
  for (uint32_t i = 0; i < count; ++i) {
    int64_t step = r.GetI64();
    std::vector<double> weights;
    r.GetPodArray(&weights);
    if (!r.Ok()) {
      return Status::DataLoss("corrupt mixture override blob");
    }
    if (weights.size() != num_sources()) {
      return Status::DataLoss("mixture override arity mismatch");
    }
    restored[step] = std::move(weights);
  }
  std::lock_guard<std::mutex> lock(mu_);
  overrides_ = std::move(restored);
  return Status::Ok();
}

std::map<int64_t, std::vector<double>> MixtureSchedule::OverridesSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overrides_;
}

void MixtureSchedule::ReplaceOverrides(std::map<int64_t, std::vector<double>> overrides) {
  std::lock_guard<std::mutex> lock(mu_);
  overrides_ = std::move(overrides);
}

uint64_t MixtureSchedule::StructuralFingerprint() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  HashMix(&h, static_cast<uint64_t>(phases_.size()));
  for (const MixturePhase& p : phases_) {
    HashMix(&h, static_cast<uint64_t>(p.first_step));
    HashMix(&h, DoubleBits(p.temperature));
    HashMix(&h, static_cast<uint64_t>(static_cast<int64_t>(p.scale_index)));
    HashMix(&h, static_cast<uint64_t>(p.weights.size()));
    for (double w : p.weights) {
      HashMix(&h, DoubleBits(w));
    }
  }
  HashMix(&h, static_cast<uint64_t>(scale_set_.size()));
  for (int32_t scale : scale_set_) {
    HashMix(&h, static_cast<uint64_t>(static_cast<int64_t>(scale)));
  }
  HashMix(&h, scale_seed_);
  return h;
}

}  // namespace msd
