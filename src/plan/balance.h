// Load-balancing algorithms used by DGraph::balance (Sec. 4.2): greedy
// binpacking, Karmarkar-Karp multiway differencing, and interleaved
// (serpentine / zig-zag / V-shape) placement.
#ifndef SRC_PLAN_BALANCE_H_
#define SRC_PLAN_BALANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace msd {

enum class BalanceMethod {
  kGreedy = 0,        // sort desc, place into least-loaded bin (LPT)
  kKarmarkarKarp,     // multiway largest-differencing method
  kInterleave,        // serpentine by sorted cost across bins
  kZigZag,            // strict forward/backward round-robin (user strategy)
  kVShape,            // heaviest at edges, lightest in middle (user strategy)
};

const char* BalanceMethodName(BalanceMethod m);
Result<BalanceMethod> ParseBalanceMethod(const std::string& name);

// Assigns each item (by index) to one of `num_bins` bins so bin loads are as
// even as the method achieves. Returns assignment[i] in [0, num_bins).
std::vector<int32_t> AssignToBins(const std::vector<double>& costs, int32_t num_bins,
                                  BalanceMethod method);

// Per-bin total loads for a given assignment.
std::vector<double> BinLoads(const std::vector<double>& costs,
                             const std::vector<int32_t>& assignment, int32_t num_bins);

// max(load) / mean(load): 1.0 is perfectly balanced.
double Imbalance(const std::vector<double>& loads);
// max(load) / min(load): the "3.2x" / "6.9x" ratios of Fig. 3.
double MaxMinRatio(const std::vector<double>& loads);

}  // namespace msd

#endif  // SRC_PLAN_BALANCE_H_
