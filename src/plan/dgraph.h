// DGraph: the declarative data-orchestration API (Sec. 4).
//
// A DGraph is built per planning round from Source Loader buffer metadata and
// a ClientPlaceTree, then programmed with the paper's primitives:
//
//   dgraph = DGraph::FromBufferInfos(buffer_infos, selector);   // Extract
//   dgraph.Init(&tree);
//   dgraph.Mix(schedule, step, n, rng);                          // Orchestrate
//   dgraph.Distribute(Axis::kDP);
//   dgraph.Cost(costfn);
//   dgraph.Balance({.method = BalanceMethod::kGreedy});
//   dgraph.BroadcastAt(Axis::kTP);
//   LoadingPlan plan = dgraph.Plan(step).value();                // Finalize
//
// The emitted LoadingPlan directs Source Loaders (which samples to pop, for
// which consumer bucket/microbatch) and Data Constructors (how to assemble
// and which ranks fetch).
#ifndef SRC_PLAN_DGRAPH_H_
#define SRC_PLAN_DGRAPH_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/graph/dataflow_graph.h"
#include "src/mesh/client_place_tree.h"
#include "src/plan/balance.h"
#include "src/plan/mix.h"

namespace msd {

// Metadata summary of one Source Loader's read buffer (workflow step 4).
struct BufferInfo {
  int32_t loader_id = -1;
  int32_t source_id = -1;
  std::vector<SampleMeta> samples;
  // False when the loader's last buffer refill failed (exhausted retries,
  // brownout, decode loss): the summary may be stale/short, and the planner
  // must treat the gather as failed rather than plan over a forked buffer.
  // In-process health signal only — never serialized.
  bool io_healthy = true;
};

// Output of a registered cost function: compute load and memory footprint.
struct CostEntry {
  double load = 0.0;
  double mem = 0.0;
};
using CostFn = std::function<CostEntry(const SampleMeta&)>;

// Selects which buffered samples a DGraph models (e.g. only image metadata
// for the encoder module's graph).
using MetaSelector = std::function<bool(const SampleMeta&)>;

// One sample's placement in the final plan.
struct SliceAssignment {
  uint64_t sample_id = 0;
  int32_t source_id = -1;
  int32_t loader_id = -1;
  int32_t bucket = -1;      // consumer bucket at the distribute axis
  int32_t microbatch = -1;  // bin within the bucket
  double cost = 0.0;
  int32_t total_tokens = 0;
  int32_t image_tokens = 0;
};

struct LoadingPlan {
  int64_t step = 0;
  Axis axis = Axis::kDP;
  int32_t group_size = 1;
  int32_t num_buckets = 0;
  int32_t num_microbatches = 1;
  // Multi-scale batching (src/plan/mixture_schedule.h): the pack length this
  // step's sequences are packed to, stamped by the Planner from the
  // schedule's per-step scale pick. 0 = no schedule scale — constructors use
  // their configured max_seq_len. Carried in the plan (not recomputed) so
  // checkpoint replay, reshard rebuilds, and the reference oracle all replay
  // the scale scalar-wise without consulting the schedule.
  int32_t pack_max_seq_len = 0;
  // Schedule phase active when this plan was generated (-1 = no schedule);
  // telemetry-only: labels the step trace's mix span and the phase gauge.
  int32_t mix_phase = -1;
  std::vector<Axis> broadcast_axes;
  std::vector<SliceAssignment> assignments;  // sorted by (bucket, microbatch)
  std::vector<int32_t> fetching_ranks;       // ranks that fetch after exclusions
  std::map<std::string, LoadingPlan> subplans;  // per-module plans (e.g. "encoder")

  // Total balanced cost per bucket.
  std::vector<double> BucketLoads() const;
  // Cost per microbatch within one bucket.
  std::vector<double> BinLoads(int32_t bucket) const;
  // Cost per (bucket, microbatch) as a dense matrix [bucket][mb].
  std::vector<std::vector<double>> LoadMatrix() const;
  size_t SampleCount() const { return assignments.size(); }

  std::string Serialize() const;
  static Result<LoadingPlan> Deserialize(std::string_view bytes);
};

struct BalanceOptions {
  BalanceMethod method = BalanceMethod::kGreedy;
  // kSample: the balancer places individual samples (fine-grained, default).
  // kMicrobatch: consecutive sample chunks move as units — the coarse
  // "microbatch-level balancing" the Fig. 14 case study shows is insufficient.
  enum class Granularity { kSample, kMicrobatch } granularity = Granularity::kSample;
};

class DGraph {
 public:
  // Stage Extract: one node per buffered sample accepted by `selector`.
  static DGraph FromBufferInfos(const std::vector<BufferInfo>& buffers,
                                MetaSelector selector = nullptr, bool track_lineage = false);

  // Binds the trainer topology. Must precede Distribute/Plan.
  void Init(const ClientPlaceTree* tree);

  // Scheduled source mixing: draws `sample_count` samples according to the
  // schedule's weights at `step`; unsampled nodes are excluded from this plan.
  Status Mix(const MixSchedule& schedule, int64_t step, int64_t sample_count, Rng& rng);

  // Chooses the consumer axis; creates NumBuckets(axis, group_size) buckets.
  Status Distribute(Axis axis, int32_t group_size = 1);

  // Registers the cost model and annotates every candidate node.
  Status Cost(CostFn fn);

  // Distributes candidate samples into (bucket, microbatch) bins.
  Status Balance(BalanceOptions options = {});

  // Declares a trainer-side broadcast along `axis`; ranks covered by the
  // broadcast are excluded from fetching.
  void BroadcastAt(Axis axis);

  // Stage Finalize: emits the LoadingPlan.
  Result<LoadingPlan> Plan(int64_t step = 0);

  // Introspection.
  const DataflowGraph& graph() const { return graph_; }
  size_t node_count() const { return graph_.node_count(); }
  std::vector<int64_t> CandidateNodeIds() const;  // sampled (or all, pre-mix)
  std::string ToDot() const { return graph_.ToDot(); }

 private:
  DGraph() : graph_(false) {}
  explicit DGraph(bool track_lineage) : graph_(track_lineage) {}

  DataflowGraph graph_;
  const ClientPlaceTree* tree_ = nullptr;
  // Node ids per schedule source index, in buffer order.
  std::vector<std::vector<int64_t>> nodes_by_source_;
  std::vector<int32_t> source_ids_;  // schedule index -> source_id
  bool mixed_ = false;
  bool costed_ = false;
  bool balanced_ = false;
  Axis axis_ = Axis::kDP;
  int32_t group_size_ = 1;
  int32_t num_buckets_ = 0;
  std::vector<Axis> broadcast_axes_;
};

}  // namespace msd

#endif  // SRC_PLAN_DGRAPH_H_
