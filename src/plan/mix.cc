#include "src/plan/mix.h"

#include <algorithm>

namespace msd {

StaticMix::StaticMix(std::vector<double> weights) : weights_(std::move(weights)) {
  MSD_CHECK(!weights_.empty());
  double sum = 0.0;
  for (double w : weights_) {
    MSD_CHECK(w >= 0.0);
    sum += w;
  }
  MSD_CHECK(sum > 0.0);
}

StagedMix::StagedMix(std::vector<Stage> stages) : stages_(std::move(stages)) {
  MSD_CHECK(!stages_.empty());
  std::sort(stages_.begin(), stages_.end(),
            [](const Stage& a, const Stage& b) { return a.first_step < b.first_step; });
  MSD_CHECK(stages_.front().first_step == 0);
  for (const Stage& s : stages_) {
    MSD_CHECK(s.weights.size() == stages_.front().weights.size());
  }
}

std::vector<double> StagedMix::WeightsAt(int64_t step) const {
  const Stage* active = &stages_.front();
  for (const Stage& s : stages_) {
    if (s.first_step <= step) {
      active = &s;
    } else {
      break;
    }
  }
  return active->weights;
}

size_t StagedMix::num_sources() const { return stages_.front().weights.size(); }

WarmupMix::WarmupMix(std::vector<double> start, std::vector<double> end, int64_t warmup_steps)
    : start_(std::move(start)), end_(std::move(end)), warmup_steps_(warmup_steps) {
  MSD_CHECK(start_.size() == end_.size());
  MSD_CHECK(warmup_steps_ > 0);
}

std::vector<double> WarmupMix::WeightsAt(int64_t step) const {
  double t = std::min(1.0, static_cast<double>(step) / static_cast<double>(warmup_steps_));
  std::vector<double> out(start_.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = start_[i] * (1.0 - t) + end_[i] * t;
  }
  return out;
}

Result<std::vector<size_t>> MixSampler::SampleSources(int64_t step, int64_t count,
                                                      const std::vector<int64_t>& available,
                                                      Rng& rng) const {
  std::vector<double> weights = schedule_->WeightsAt(step);
  if (weights.size() != available.size()) {
    return Status::InvalidArgument("schedule covers " + std::to_string(weights.size()) +
                                   " sources, availability lists " +
                                   std::to_string(available.size()));
  }
  std::vector<int64_t> remaining = available;
  std::vector<double> masked = weights;
  for (size_t i = 0; i < masked.size(); ++i) {
    if (remaining[i] <= 0) {
      masked[i] = 0.0;
    }
  }
  std::vector<size_t> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t n = 0; n < count; ++n) {
    double sum = 0.0;
    for (double w : masked) {
      sum += w;
    }
    if (sum <= 0.0) {
      return Status::ResourceExhausted("all sources exhausted after " + std::to_string(n) +
                                       " of " + std::to_string(count) + " draws");
    }
    size_t src = rng.Categorical(masked);
    out.push_back(src);
    if (--remaining[src] <= 0) {
      masked[src] = 0.0;
    }
  }
  return out;
}

}  // namespace msd
