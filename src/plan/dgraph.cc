#include "src/plan/dgraph.h"

#include <algorithm>
#include <map>

#include "src/storage/wire.h"

namespace msd {

std::vector<double> LoadingPlan::BucketLoads() const {
  std::vector<double> loads(static_cast<size_t>(num_buckets), 0.0);
  for (const SliceAssignment& a : assignments) {
    loads[static_cast<size_t>(a.bucket)] += a.cost;
  }
  return loads;
}

std::vector<double> LoadingPlan::BinLoads(int32_t bucket) const {
  std::vector<double> loads(static_cast<size_t>(num_microbatches), 0.0);
  for (const SliceAssignment& a : assignments) {
    if (a.bucket == bucket) {
      loads[static_cast<size_t>(a.microbatch)] += a.cost;
    }
  }
  return loads;
}

std::vector<std::vector<double>> LoadingPlan::LoadMatrix() const {
  std::vector<std::vector<double>> matrix(
      static_cast<size_t>(num_buckets),
      std::vector<double>(static_cast<size_t>(num_microbatches), 0.0));
  for (const SliceAssignment& a : assignments) {
    matrix[static_cast<size_t>(a.bucket)][static_cast<size_t>(a.microbatch)] += a.cost;
  }
  return matrix;
}

// Serialized footprint of one SliceAssignment (see the loop below).
constexpr size_t kWireBytesPerAssignment =
    sizeof(uint64_t) + 4 * sizeof(uint32_t) + sizeof(double) + 2 * sizeof(uint32_t);

std::string LoadingPlan::Serialize() const {
  WireWriter w;
  w.Reserve(64 + broadcast_axes.size() + assignments.size() * kWireBytesPerAssignment +
            fetching_ranks.size() * sizeof(uint32_t));
  w.PutI64(step);
  w.PutU8(static_cast<uint8_t>(axis));
  w.PutU32(static_cast<uint32_t>(group_size));
  w.PutU32(static_cast<uint32_t>(num_buckets));
  w.PutU32(static_cast<uint32_t>(num_microbatches));
  w.PutU32(static_cast<uint32_t>(pack_max_seq_len));
  w.PutU32(static_cast<uint32_t>(mix_phase));
  w.PutU32(static_cast<uint32_t>(broadcast_axes.size()));
  for (Axis a : broadcast_axes) {
    w.PutU8(static_cast<uint8_t>(a));
  }
  w.PutU32(static_cast<uint32_t>(assignments.size()));
  for (const SliceAssignment& a : assignments) {
    w.PutU64(a.sample_id);
    w.PutU32(static_cast<uint32_t>(a.source_id));
    w.PutU32(static_cast<uint32_t>(a.loader_id));
    w.PutU32(static_cast<uint32_t>(a.bucket));
    w.PutU32(static_cast<uint32_t>(a.microbatch));
    w.PutF64(a.cost);
    w.PutU32(static_cast<uint32_t>(a.total_tokens));
    w.PutU32(static_cast<uint32_t>(a.image_tokens));
  }
  w.PutU32(static_cast<uint32_t>(fetching_ranks.size()));
  for (int32_t r : fetching_ranks) {
    w.PutU32(static_cast<uint32_t>(r));
  }
  w.PutU32(static_cast<uint32_t>(subplans.size()));
  for (const auto& [name, sub] : subplans) {
    w.PutBytes(name);
    w.PutBytes(sub.Serialize());
  }
  return w.Take();
}

Result<LoadingPlan> LoadingPlan::Deserialize(std::string_view bytes) {
  WireReader r(bytes);
  LoadingPlan plan;
  plan.step = r.GetI64();
  plan.axis = static_cast<Axis>(r.GetU8());
  plan.group_size = static_cast<int32_t>(r.GetU32());
  plan.num_buckets = static_cast<int32_t>(r.GetU32());
  plan.num_microbatches = static_cast<int32_t>(r.GetU32());
  plan.pack_max_seq_len = static_cast<int32_t>(r.GetU32());
  plan.mix_phase = static_cast<int32_t>(r.GetU32());
  uint32_t n_axes = r.GetU32();
  if (n_axes > r.remaining()) {
    return Status::DataLoss("corrupt LoadingPlan: broadcast-axis count exceeds payload");
  }
  for (uint32_t i = 0; i < n_axes; ++i) {
    plan.broadcast_axes.push_back(static_cast<Axis>(r.GetU8()));
  }
  uint32_t n_assign = r.GetU32();
  // Bound the count against the bytes that could possibly back it before
  // reserving — a corrupt count must fail cleanly, not drive a huge
  // allocation.
  if (static_cast<uint64_t>(n_assign) * kWireBytesPerAssignment > r.remaining()) {
    return Status::DataLoss("corrupt LoadingPlan: assignment count exceeds payload");
  }
  plan.assignments.reserve(n_assign);
  for (uint32_t i = 0; i < n_assign; ++i) {
    SliceAssignment a;
    a.sample_id = r.GetU64();
    a.source_id = static_cast<int32_t>(r.GetU32());
    a.loader_id = static_cast<int32_t>(r.GetU32());
    a.bucket = static_cast<int32_t>(r.GetU32());
    a.microbatch = static_cast<int32_t>(r.GetU32());
    a.cost = r.GetF64();
    a.total_tokens = static_cast<int32_t>(r.GetU32());
    a.image_tokens = static_cast<int32_t>(r.GetU32());
    plan.assignments.push_back(a);
  }
  uint32_t n_ranks = r.GetU32();
  if (static_cast<uint64_t>(n_ranks) * sizeof(uint32_t) > r.remaining()) {
    return Status::DataLoss("corrupt LoadingPlan: fetching-rank count exceeds payload");
  }
  plan.fetching_ranks.reserve(n_ranks);
  for (uint32_t i = 0; i < n_ranks; ++i) {
    plan.fetching_ranks.push_back(static_cast<int32_t>(r.GetU32()));
  }
  uint32_t n_sub = r.GetU32();
  if (n_sub > r.remaining()) {
    return Status::DataLoss("corrupt LoadingPlan: subplan count exceeds payload");
  }
  for (uint32_t i = 0; i < n_sub && r.Ok(); ++i) {
    std::string name = r.GetBytes();
    // Subplans recurse over a borrowed view of the enclosing record.
    Result<LoadingPlan> sub = Deserialize(r.GetBytesView());
    if (!sub.ok()) {
      return sub.status();
    }
    plan.subplans.emplace(std::move(name), std::move(sub.value()));
  }
  if (!r.Ok()) {
    return Status::DataLoss("truncated LoadingPlan");
  }
  return plan;
}

DGraph DGraph::FromBufferInfos(const std::vector<BufferInfo>& buffers, MetaSelector selector,
                               bool track_lineage) {
  DGraph dgraph(track_lineage);
  // Stable source index order: sorted by source_id.
  std::map<int32_t, size_t> index_of_source;
  for (const BufferInfo& buf : buffers) {
    index_of_source.emplace(buf.source_id, 0);
  }
  size_t next = 0;
  for (auto& [source_id, index] : index_of_source) {
    index = next++;
    dgraph.source_ids_.push_back(source_id);
  }
  dgraph.nodes_by_source_.resize(index_of_source.size());
  for (const BufferInfo& buf : buffers) {
    size_t src_index = index_of_source[buf.source_id];
    for (const SampleMeta& meta : buf.samples) {
      if (selector && !selector(meta)) {
        continue;
      }
      DataflowNode node;
      node.meta = meta;
      node.loader_id = buf.loader_id;
      node.state = SampleState::kInBuffer;
      int64_t id = dgraph.graph_.AddNode(std::move(node));
      dgraph.nodes_by_source_[src_index].push_back(id);
    }
  }
  return dgraph;
}

void DGraph::Init(const ClientPlaceTree* tree) {
  MSD_CHECK(tree != nullptr);
  tree_ = tree;
}

std::vector<int64_t> DGraph::CandidateNodeIds() const {
  std::vector<int64_t> out;
  for (const DataflowNode& n : graph_.nodes()) {
    if (mixed_ ? (n.state == SampleState::kSampled || n.state == SampleState::kAssigned ||
                  n.state == SampleState::kPlanned)
               : n.state != SampleState::kExcluded) {
      out.push_back(n.id);
    }
  }
  return out;
}

Status DGraph::Mix(const MixSchedule& schedule, int64_t step, int64_t sample_count, Rng& rng) {
  if (mixed_) {
    return Status::FailedPrecondition("Mix already applied");
  }
  if (schedule.num_sources() != nodes_by_source_.size()) {
    return Status::InvalidArgument(
        "schedule has " + std::to_string(schedule.num_sources()) + " sources, buffer has " +
        std::to_string(nodes_by_source_.size()));
  }
  std::vector<int64_t> available(nodes_by_source_.size());
  for (size_t s = 0; s < nodes_by_source_.size(); ++s) {
    available[s] = static_cast<int64_t>(nodes_by_source_[s].size());
  }
  MixSampler sampler(&schedule);
  Result<std::vector<size_t>> draws = sampler.SampleSources(step, sample_count, available, rng);
  if (!draws.ok()) {
    return draws.status();
  }
  // Pop from each source's buffer in FIFO order, matching loader semantics.
  std::vector<size_t> cursor(nodes_by_source_.size(), 0);
  for (size_t src : draws.value()) {
    int64_t id = nodes_by_source_[src][cursor[src]++];
    graph_.Transition(id, SampleState::kSampled, "mix");
  }
  for (size_t s = 0; s < nodes_by_source_.size(); ++s) {
    for (size_t i = cursor[s]; i < nodes_by_source_[s].size(); ++i) {
      graph_.Transition(nodes_by_source_[s][i], SampleState::kExcluded, "mix");
    }
  }
  mixed_ = true;
  return Status::Ok();
}

Status DGraph::Distribute(Axis axis, int32_t group_size) {
  if (tree_ == nullptr) {
    return Status::FailedPrecondition("Init(tree) must precede Distribute");
  }
  if (group_size < 1) {
    return Status::InvalidArgument("group_size must be >= 1");
  }
  axis_ = axis;
  group_size_ = group_size;
  num_buckets_ = tree_->NumBuckets(axis, group_size);
  return Status::Ok();
}

Status DGraph::Cost(CostFn fn) {
  if (!fn) {
    return Status::InvalidArgument("null cost function");
  }
  for (int64_t id : CandidateNodeIds()) {
    DataflowNode& node = graph_.node(id);
    CostEntry entry = fn(node.meta);
    if (entry.load < 0.0 || entry.mem < 0.0) {
      return Status::InvalidArgument("cost function returned negative cost");
    }
    node.cost_load = entry.load;
    node.cost_mem = entry.mem;
  }
  costed_ = true;
  return Status::Ok();
}

Status DGraph::Balance(BalanceOptions options) {
  if (num_buckets_ == 0) {
    return Status::FailedPrecondition("Distribute must precede Balance");
  }
  if (!costed_) {
    return Status::FailedPrecondition("Cost must precede Balance");
  }
  std::vector<int64_t> candidates = CandidateNodeIds();
  if (candidates.empty()) {
    return Status::FailedPrecondition("no candidate samples to balance");
  }
  int32_t m = tree_->num_microbatches();
  int32_t total_bins = num_buckets_ * m;

  if (options.granularity == BalanceOptions::Granularity::kSample) {
    std::vector<double> costs;
    costs.reserve(candidates.size());
    for (int64_t id : candidates) {
      costs.push_back(graph_.node(id).cost_load);
    }
    std::vector<int32_t> assignment = AssignToBins(costs, total_bins, options.method);
    // Flattened bins interleave buckets first (bin t -> bucket t mod n) so
    // order-sensitive methods (interleave/zigzag/vshape) spread consecutive
    // heavy items across consumers before revisiting a bucket's microbatches.
    for (size_t i = 0; i < candidates.size(); ++i) {
      int64_t id = graph_.Transition(candidates[i], SampleState::kAssigned, "balance");
      DataflowNode& node = graph_.node(id);
      node.bucket = assignment[i] % num_buckets_;
      node.microbatch = assignment[i] / num_buckets_;
    }
  } else {
    // Microbatch granularity: consecutive chunks move as indivisible units.
    size_t chunk_count = static_cast<size_t>(total_bins);
    size_t per_chunk = (candidates.size() + chunk_count - 1) / chunk_count;
    std::vector<double> chunk_costs(chunk_count, 0.0);
    for (size_t i = 0; i < candidates.size(); ++i) {
      chunk_costs[i / per_chunk] += graph_.node(candidates[i]).cost_load;
    }
    std::vector<int32_t> chunk_assignment =
        AssignToBins(chunk_costs, total_bins, options.method);
    for (size_t i = 0; i < candidates.size(); ++i) {
      int32_t target = chunk_assignment[i / per_chunk];
      int64_t id = graph_.Transition(candidates[i], SampleState::kAssigned, "balance");
      DataflowNode& node = graph_.node(id);
      node.bucket = target % num_buckets_;
      node.microbatch = target / num_buckets_;
    }
  }
  balanced_ = true;
  return Status::Ok();
}

void DGraph::BroadcastAt(Axis axis) {
  for (Axis existing : broadcast_axes_) {
    if (existing == axis) {
      return;
    }
  }
  broadcast_axes_.push_back(axis);
}

Result<LoadingPlan> DGraph::Plan(int64_t step) {
  if (tree_ == nullptr) {
    return Status::FailedPrecondition("Init(tree) must precede Plan");
  }
  if (num_buckets_ == 0) {
    return Status::FailedPrecondition("Distribute must precede Plan");
  }
  LoadingPlan plan;
  plan.step = step;
  plan.axis = axis_;
  plan.group_size = group_size_;
  plan.num_buckets = num_buckets_;
  plan.num_microbatches = tree_->num_microbatches();
  plan.broadcast_axes = broadcast_axes_;
  plan.fetching_ranks = tree_->FetchingRanks(broadcast_axes_);

  std::vector<int64_t> candidates = CandidateNodeIds();
  if (!balanced_) {
    // Without Balance, fall back to round-robin placement (the "Vanilla"
    // baseline of Sec. 7.1's orchestration study).
    int32_t m = plan.num_microbatches;
    for (size_t i = 0; i < candidates.size(); ++i) {
      int64_t id = graph_.Transition(candidates[i], SampleState::kAssigned, "round_robin");
      DataflowNode& node = graph_.node(id);
      int32_t target = static_cast<int32_t>(i % static_cast<size_t>(num_buckets_ * m));
      node.bucket = target % num_buckets_;
      node.microbatch = target / num_buckets_;
    }
    candidates = CandidateNodeIds();
  }
  for (int64_t id : candidates) {
    int64_t planned = graph_.Transition(id, SampleState::kPlanned, "plan");
    const DataflowNode& node = graph_.node(planned);
    SliceAssignment a;
    a.sample_id = node.meta.sample_id;
    a.source_id = node.meta.source_id;
    a.loader_id = node.loader_id;
    a.bucket = node.bucket;
    a.microbatch = node.microbatch;
    a.cost = node.cost_load;
    a.total_tokens = node.meta.TotalTokens();
    a.image_tokens = node.meta.image_tokens;
    plan.assignments.push_back(a);
  }
  std::stable_sort(plan.assignments.begin(), plan.assignments.end(),
                   [](const SliceAssignment& x, const SliceAssignment& y) {
                     if (x.bucket != y.bucket) {
                       return x.bucket < y.bucket;
                     }
                     return x.microbatch < y.microbatch;
                   });
  return plan;
}

}  // namespace msd
