// MixSchedule: multisource sampling-weight schedules for DGraph::mix
// (Sec. 4.2) — static ratios, staged curricula, warmup interpolation, and
// dynamic metric-driven adjustment (Sec. 2.1 "loss and entropy").
#ifndef SRC_PLAN_MIX_H_
#define SRC_PLAN_MIX_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace msd {

// Produces per-source sampling weights for a training step. Weights need not
// be normalized; they must be non-negative with a positive sum.
class MixSchedule {
 public:
  virtual ~MixSchedule() = default;
  virtual std::vector<double> WeightsAt(int64_t step) const = 0;
  virtual size_t num_sources() const = 0;
};

// Constant ratios for the whole run.
class StaticMix : public MixSchedule {
 public:
  explicit StaticMix(std::vector<double> weights);
  std::vector<double> WeightsAt(int64_t /*step*/) const override { return weights_; }
  size_t num_sources() const override { return weights_.size(); }

 private:
  std::vector<double> weights_;
};

// Piecewise-constant stages: curriculum learning / staged training (Sec. 2.1).
class StagedMix : public MixSchedule {
 public:
  struct Stage {
    int64_t first_step;  // stage applies from this step (inclusive)
    std::vector<double> weights;
  };
  explicit StagedMix(std::vector<Stage> stages);
  std::vector<double> WeightsAt(int64_t step) const override;
  size_t num_sources() const override;

 private:
  std::vector<Stage> stages_;  // sorted by first_step
};

// Linear interpolation from `start` to `end` weights over `warmup_steps`
// (sequence-length warmup style schedules).
class WarmupMix : public MixSchedule {
 public:
  WarmupMix(std::vector<double> start, std::vector<double> end, int64_t warmup_steps);
  std::vector<double> WeightsAt(int64_t step) const override;
  size_t num_sources() const override { return start_.size(); }

 private:
  std::vector<double> start_;
  std::vector<double> end_;
  int64_t warmup_steps_;
};

// Callback-driven: weights respond to live training metrics (loss, entropy).
class DynamicMix : public MixSchedule {
 public:
  using WeightFn = std::function<std::vector<double>(int64_t step)>;
  DynamicMix(size_t num_sources, WeightFn fn) : num_sources_(num_sources), fn_(std::move(fn)) {}
  std::vector<double> WeightsAt(int64_t step) const override { return fn_(step); }
  size_t num_sources() const override { return num_sources_; }

 private:
  size_t num_sources_;
  WeightFn fn_;
};

// Draws source indices according to a schedule's weights at a step.
class MixSampler {
 public:
  explicit MixSampler(const MixSchedule* schedule) : schedule_(schedule) {}

  // `available[s]` = samples still offered by source s; sources with zero
  // availability are masked out. Returns `count` source indices.
  Result<std::vector<size_t>> SampleSources(int64_t step, int64_t count,
                                            const std::vector<int64_t>& available, Rng& rng) const;

 private:
  const MixSchedule* schedule_;
};

}  // namespace msd

#endif  // SRC_PLAN_MIX_H_
