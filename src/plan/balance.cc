#include "src/plan/balance.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>

namespace msd {

const char* BalanceMethodName(BalanceMethod m) {
  switch (m) {
    case BalanceMethod::kGreedy:
      return "greedy";
    case BalanceMethod::kKarmarkarKarp:
      return "karmarkar-karp";
    case BalanceMethod::kInterleave:
      return "interleave";
    case BalanceMethod::kZigZag:
      return "zigzag";
    case BalanceMethod::kVShape:
      return "vshape";
  }
  return "unknown";
}

Result<BalanceMethod> ParseBalanceMethod(const std::string& name) {
  if (name == "greedy") {
    return BalanceMethod::kGreedy;
  }
  if (name == "karmarkar-karp" || name == "kk") {
    return BalanceMethod::kKarmarkarKarp;
  }
  if (name == "interleave") {
    return BalanceMethod::kInterleave;
  }
  if (name == "zigzag") {
    return BalanceMethod::kZigZag;
  }
  if (name == "vshape") {
    return BalanceMethod::kVShape;
  }
  return Status::InvalidArgument("unknown balance method: " + name);
}

namespace {

std::vector<size_t> SortedIndicesByCostDesc(const std::vector<double>& costs) {
  std::vector<size_t> order(costs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return costs[a] > costs[b]; });
  return order;
}

std::vector<int32_t> GreedyAssign(const std::vector<double>& costs, int32_t num_bins) {
  std::vector<int32_t> assignment(costs.size(), 0);
  // Min-heap of (load, bin).
  using Entry = std::pair<double, int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> bins;
  for (int32_t b = 0; b < num_bins; ++b) {
    bins.emplace(0.0, b);
  }
  for (size_t idx : SortedIndicesByCostDesc(costs)) {
    auto [load, bin] = bins.top();
    bins.pop();
    assignment[idx] = bin;
    bins.emplace(load + costs[idx], bin);
  }
  return assignment;
}

// Multiway Karmarkar-Karp: maintain partial solutions as sorted load vectors;
// repeatedly merge the two solutions with the largest spread, pairing the
// heaviest bins of one with the lightest of the other.
std::vector<int32_t> KarmarkarKarpAssign(const std::vector<double>& costs, int32_t num_bins) {
  struct Partial {
    // Bin loads sorted descending, with the item indices in each bin.
    std::vector<double> loads;
    std::vector<std::vector<size_t>> members;
    double spread() const { return loads.front() - loads.back(); }
  };
  struct SpreadLess {
    bool operator()(const Partial& a, const Partial& b) const { return a.spread() < b.spread(); }
  };

  std::priority_queue<Partial, std::vector<Partial>, SpreadLess> heap;
  for (size_t i = 0; i < costs.size(); ++i) {
    Partial p;
    p.loads.assign(static_cast<size_t>(num_bins), 0.0);
    p.members.assign(static_cast<size_t>(num_bins), {});
    p.loads[0] = costs[i];
    p.members[0].push_back(i);
    heap.push(std::move(p));
  }
  if (heap.empty()) {
    return {};
  }
  while (heap.size() > 1) {
    Partial a = heap.top();
    heap.pop();
    Partial b = heap.top();
    heap.pop();
    // Merge: a's k-th largest bin with b's k-th smallest bin.
    Partial merged;
    merged.loads.assign(static_cast<size_t>(num_bins), 0.0);
    merged.members.assign(static_cast<size_t>(num_bins), {});
    for (int32_t k = 0; k < num_bins; ++k) {
      int32_t bk = num_bins - 1 - k;
      merged.loads[static_cast<size_t>(k)] =
          a.loads[static_cast<size_t>(k)] + b.loads[static_cast<size_t>(bk)];
      merged.members[static_cast<size_t>(k)] = std::move(a.members[static_cast<size_t>(k)]);
      auto& dst = merged.members[static_cast<size_t>(k)];
      auto& src = b.members[static_cast<size_t>(bk)];
      dst.insert(dst.end(), src.begin(), src.end());
    }
    // Re-sort bins descending by load (keep members aligned).
    std::vector<size_t> order(static_cast<size_t>(num_bins));
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t x, size_t y) { return merged.loads[x] > merged.loads[y]; });
    Partial sorted;
    sorted.loads.reserve(static_cast<size_t>(num_bins));
    sorted.members.reserve(static_cast<size_t>(num_bins));
    for (size_t o : order) {
      sorted.loads.push_back(merged.loads[o]);
      sorted.members.push_back(std::move(merged.members[o]));
    }
    heap.push(std::move(sorted));
  }
  const Partial& final_partial = heap.top();
  std::vector<int32_t> assignment(costs.size(), 0);
  for (int32_t b = 0; b < num_bins; ++b) {
    for (size_t idx : final_partial.members[static_cast<size_t>(b)]) {
      assignment[idx] = b;
    }
  }
  return assignment;
}

// Serpentine: items in descending cost order walk bins 0..k-1, k-1..0, ...
std::vector<int32_t> InterleaveAssign(const std::vector<double>& costs, int32_t num_bins) {
  std::vector<int32_t> assignment(costs.size(), 0);
  std::vector<size_t> order = SortedIndicesByCostDesc(costs);
  int32_t pos = 0;
  int32_t dir = 1;
  for (size_t idx : order) {
    assignment[idx] = pos;
    if (num_bins == 1) {
      continue;
    }
    if (pos + dir < 0 || pos + dir >= num_bins) {
      dir = -dir;  // bounce: serpentine revisits the edge bin
    } else {
      pos += dir;
    }
  }
  return assignment;
}

// Strict forward round-robin over sorted costs (no serpentine bounce).
std::vector<int32_t> ZigZagAssign(const std::vector<double>& costs, int32_t num_bins) {
  std::vector<int32_t> assignment(costs.size(), 0);
  std::vector<size_t> order = SortedIndicesByCostDesc(costs);
  for (size_t i = 0; i < order.size(); ++i) {
    assignment[order[i]] = static_cast<int32_t>(i % static_cast<size_t>(num_bins));
  }
  return assignment;
}

// V-shape: alternate heaviest items between the two edge bins moving inward,
// so each bin receives a heavy+light pairing pattern.
std::vector<int32_t> VShapeAssign(const std::vector<double>& costs, int32_t num_bins) {
  std::vector<int32_t> assignment(costs.size(), 0);
  std::vector<size_t> order = SortedIndicesByCostDesc(costs);
  int32_t lo = 0;
  int32_t hi = num_bins - 1;
  bool from_lo = true;
  for (size_t idx : order) {
    if (lo > hi) {
      lo = 0;
      hi = num_bins - 1;
      from_lo = true;
    }
    if (from_lo) {
      assignment[idx] = lo++;
    } else {
      assignment[idx] = hi--;
    }
    from_lo = !from_lo;
  }
  return assignment;
}

}  // namespace

std::vector<int32_t> AssignToBins(const std::vector<double>& costs, int32_t num_bins,
                                  BalanceMethod method) {
  MSD_CHECK(num_bins > 0);
  for (double c : costs) {
    MSD_CHECK(c >= 0.0);
  }
  switch (method) {
    case BalanceMethod::kGreedy:
      return GreedyAssign(costs, num_bins);
    case BalanceMethod::kKarmarkarKarp:
      return KarmarkarKarpAssign(costs, num_bins);
    case BalanceMethod::kInterleave:
      return InterleaveAssign(costs, num_bins);
    case BalanceMethod::kZigZag:
      return ZigZagAssign(costs, num_bins);
    case BalanceMethod::kVShape:
      return VShapeAssign(costs, num_bins);
  }
  return GreedyAssign(costs, num_bins);
}

std::vector<double> BinLoads(const std::vector<double>& costs,
                             const std::vector<int32_t>& assignment, int32_t num_bins) {
  MSD_CHECK(costs.size() == assignment.size());
  std::vector<double> loads(static_cast<size_t>(num_bins), 0.0);
  for (size_t i = 0; i < costs.size(); ++i) {
    MSD_CHECK(assignment[i] >= 0 && assignment[i] < num_bins);
    loads[static_cast<size_t>(assignment[i])] += costs[i];
  }
  return loads;
}

double Imbalance(const std::vector<double>& loads) {
  MSD_CHECK(!loads.empty());
  double max = *std::max_element(loads.begin(), loads.end());
  double mean = std::accumulate(loads.begin(), loads.end(), 0.0) /
                static_cast<double>(loads.size());
  if (mean <= 0.0) {
    return 1.0;
  }
  return max / mean;
}

double MaxMinRatio(const std::vector<double>& loads) {
  MSD_CHECK(!loads.empty());
  double max = *std::max_element(loads.begin(), loads.end());
  double min = *std::min_element(loads.begin(), loads.end());
  if (min <= 0.0) {
    return max > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  }
  return max / min;
}

}  // namespace msd
