// MixtureSchedule: the Planner's first-class, checkpointable mixture state
// (ROADMAP "scenario diversity"; Sec. 2.1 curriculum / temperature sampling).
//
// A deterministic piecewise schedule over steps: curriculum phases carrying
// per-source base weights and a sampling temperature, an optional multi-scale
// set of pack lengths (a per-step seeded scale pick buckets batches by
// resolution), and a client-fed re-weighting hook (overrides committed via
// the Planner actor, serialized into its checkpoint state).
//
// Determinism contract:
//  - WeightsAt(step) is a pure function of (phases, overrides-at-or-before
//    step): the planner RNG consumes it through MixSampler exactly as it
//    consumes a static schedule — one Categorical draw per sample, no extra
//    draws at phase boundaries or on quarantine masking.
//  - ScaleAt(step) is a hash of (scale_seed, step), NOT a planner-RNG draw:
//    multi-scale on/off never perturbs the committed mixing stream.
//  - Overrides are the only mutable state. They commit through the Planner
//    (which validates the effective step against its plan cursor), serialize
//    via SerializeOverrides(), and restore byte-identically on resume.
#ifndef SRC_PLAN_MIXTURE_SCHEDULE_H_
#define SRC_PLAN_MIXTURE_SCHEDULE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/plan/mix.h"

namespace msd {

// One curriculum phase: applies from `first_step` until the next phase.
struct MixturePhase {
  int64_t first_step = 0;
  // Per-source base weights (>= 0, positive sum). Same arity across phases.
  std::vector<double> weights;
  // Temperature-scaled sampling: effective weight w_i^(1/temperature),
  // normalized. 1.0 = proportional; large = uniform-ward; small = sharpened.
  double temperature = 1.0;
  // Pins this phase to one entry of the scale set, or -1 for the seeded
  // per-step pick over the whole set.
  int32_t scale_index = -1;
};

class MixtureSchedule : public MixSchedule {
 public:
  struct Options {
    std::vector<MixturePhase> phases;  // sorted on construction; first at 0
    // Candidate pack lengths for multi-scale batching. Each must be > 0 and
    // <= the session's max_seq_len (the Planner stamps the pick into every
    // LoadingPlan as pack_max_seq_len). Empty = single-scale (plans carry 0,
    // constructors use their configured max_seq_len).
    std::vector<int32_t> scale_set;
    // Seeds the per-step scale pick (independent of the planner seed).
    uint64_t scale_seed = 0x5ca1ab1e;
  };

  explicit MixtureSchedule(Options options);

  // MixSchedule: the phase's (or latest override's) weights at `step`,
  // temperature-scaled and normalized.
  std::vector<double> WeightsAt(int64_t step) const override;
  size_t num_sources() const override;

  // Phase introspection (telemetry gauges + resume-mid-phase tests).
  int32_t PhaseIndexAt(int64_t step) const;
  const MixturePhase& PhaseAt(int64_t step) const;
  // Steps left in the phase active at `step` (including `step` itself);
  // -1 = final phase, unbounded.
  int64_t PhaseRemainingAt(int64_t step) const;
  size_t num_phases() const { return phases_.size(); }

  // The pack length multi-scale batching picks for `step` (0 = no scale set:
  // use the constructor's configured max_seq_len).
  int32_t ScaleAt(int64_t step) const;
  const std::vector<int32_t>& scale_set() const { return scale_set_; }

  // Client-fed re-weighting: from `effective_step` onward the phase's base
  // weights are replaced by `weights` (temperature still applies). Callers
  // must route commits through the Planner actor, which rejects effective
  // steps already planned — committing under an issued plan would fork the
  // stream. Later overrides supersede earlier ones step-wise.
  Status CommitOverride(int64_t effective_step, std::vector<double> weights);

  // Checkpoint plane hooks: overrides are planner state (the structural
  // schedule is rebuilt from job options; overrides arrived at runtime).
  std::string SerializeOverrides() const;
  Status RestoreOverrides(std::string_view bytes);
  std::map<int64_t, std::vector<double>> OverridesSnapshot() const;
  // Wholesale replacement from a restored PlannerCheckpoint (drops overrides
  // committed after the checkpoint was taken — they are not in the stream
  // being resumed).
  void ReplaceOverrides(std::map<int64_t, std::vector<double>> overrides);

  // FNV-1a hash of the static structure (phases, temperatures, scale set,
  // scale seed). Stable across override commits — the checkpoint fingerprint
  // uses this instead of probing WeightsAt, which overrides would perturb.
  uint64_t StructuralFingerprint() const;

 private:
  const MixturePhase& PhaseAtLocked(int64_t step) const;

  std::vector<MixturePhase> phases_;
  std::vector<int32_t> scale_set_;
  uint64_t scale_seed_ = 0;

  mutable std::mutex mu_;
  // effective_step -> base weights; the greatest key <= step wins.
  std::map<int64_t, std::vector<double>> overrides_;
};

}  // namespace msd

#endif  // SRC_PLAN_MIXTURE_SCHEDULE_H_
