#include "src/sim/network.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace msd {

SimTime NetworkModel::TransferTime(int64_t bytes) const {
  MSD_CHECK(bytes >= 0);
  double secs = static_cast<double>(bytes) / params_.bandwidth_bytes_per_sec;
  return static_cast<SimTime>(secs * kSecond);
}

SimTime NetworkModel::ServiceTime(int64_t connections) const {
  MSD_CHECK(connections >= 0);
  double growth =
      1.0 + params_.per_1k_connection_overhead * (static_cast<double>(connections) / 1000.0);
  return static_cast<SimTime>(static_cast<double>(params_.base_service_time) * growth);
}

double NetworkModel::Utilization(double arrivals_per_sec, int64_t connections) const {
  MSD_CHECK(arrivals_per_sec >= 0.0);
  double service_sec = ToSeconds(ServiceTime(connections));
  return arrivals_per_sec * service_sec;
}

SimTime NetworkModel::RequestLatency(double arrivals_per_sec, int64_t connections,
                                     int64_t payload_bytes, SimTime saturated_latency) const {
  // The endpoint is busy for (CPU service + payload transmission) per
  // request; both contribute to utilization.
  double service_sec = ToSeconds(ServiceTime(connections)) + ToSeconds(TransferTime(payload_bytes));
  double rho = arrivals_per_sec * service_sec;
  if (rho >= 1.0) {
    return saturated_latency;
  }
  // M/M/1 sojourn time: W = s / (1 - rho).
  double sojourn_sec = service_sec / (1.0 - rho);
  return FromSeconds(sojourn_sec) + params_.base_latency;
}

SimTime NetworkModel::ConnectionSetupTime(int64_t connections) const {
  MSD_CHECK(connections >= 0);
  return params_.connection_setup_cost * connections;
}

}  // namespace msd
