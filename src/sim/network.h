// Analytic network/connection model.
//
// Reproduces the connection-scalability behaviour behind Fig. 20: an endpoint's
// effective service time grows with the number of concurrent connections it
// terminates (descriptor polling, per-connection buffers, head-of-line
// blocking), and queueing delay follows an M/M/1 curve that diverges as
// utilization approaches 1 ("collapse" in the paper's terms).
#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <cstdint>

#include "src/common/units.h"

namespace msd {

struct NetworkParams {
  // One-way propagation + protocol latency per message.
  SimTime base_latency = 200;  // 200us RPC floor (InfiniBand + software stack)
  // Payload bandwidth per endpoint, bytes per simulated second.
  double bandwidth_bytes_per_sec = 12.0 * kGiB;  // ~100 Gbps effective
  // Base CPU service time an endpoint spends per request (serialization etc.).
  SimTime base_service_time = 50;
  // Fractional service-time growth per 1000 live connections at the endpoint.
  double per_1k_connection_overhead = 0.9;
  // TCP/RPC channel establishment cost per new connection.
  SimTime connection_setup_cost = 500;
};

class NetworkModel {
 public:
  explicit NetworkModel(NetworkParams params = NetworkParams()) : params_(params) {}

  const NetworkParams& params() const { return params_; }

  // Pure payload transfer time at full endpoint bandwidth.
  SimTime TransferTime(int64_t bytes) const;

  // Effective per-request service time at an endpoint holding `connections`
  // live connections.
  SimTime ServiceTime(int64_t connections) const;

  // Endpoint utilization for a given arrival rate (requests per simulated
  // second); >= 1 means the endpoint cannot keep up.
  double Utilization(double arrivals_per_sec, int64_t connections) const;

  // Mean request latency (M/M/1 queueing + transfer + base latency) for an
  // endpoint with the given arrival rate, connection count, and payload size.
  // When utilization >= 1 the model returns `saturated_latency` to signal
  // collapse (callers report this as failure, matching Fig. 20's 4k-GPU point).
  SimTime RequestLatency(double arrivals_per_sec, int64_t connections, int64_t payload_bytes,
                         SimTime saturated_latency = 3600 * kSecond) const;

  // Total one-time cost of establishing `connections` channels.
  SimTime ConnectionSetupTime(int64_t connections) const;

 private:
  NetworkParams params_;
};

}  // namespace msd

#endif  // SRC_SIM_NETWORK_H_
