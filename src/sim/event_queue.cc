#include "src/sim/event_queue.h"

namespace msd {

void EventQueue::ScheduleAt(SimTime at, Event fn) {
  MSD_CHECK(at >= now_);
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::Run() {
  while (!heap_.empty()) {
    // Copy out before pop: the event may schedule more events.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = e.at;
    e.fn();
  }
  return now_;
}

SimTime EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_.top().at <= deadline) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = e.at;
    e.fn();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace msd
