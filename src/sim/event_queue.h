// Discrete-event simulator: a virtual clock plus an ordered event queue.
//
// Cluster-scale experiments run against virtual time so that a 4096-GPU,
// 100-iteration trial completes in milliseconds of wall time. Events scheduled
// at equal timestamps run in insertion order (deterministic).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <functional>
#include <queue>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace msd {

class EventQueue {
 public:
  using Event = std::function<void()>;

  SimTime now() const { return now_; }

  // Schedules fn at absolute virtual time `at` (must be >= now()).
  void ScheduleAt(SimTime at, Event fn);
  // Schedules fn `delay` after the current virtual time.
  void ScheduleAfter(SimTime delay, Event fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  // Runs events until the queue drains. Returns the final virtual time.
  SimTime Run();
  // Runs events with timestamp <= deadline; clock ends at min(deadline, last event).
  SimTime RunUntil(SimTime deadline);

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;
    Event fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace msd

#endif  // SRC_SIM_EVENT_QUEUE_H_
