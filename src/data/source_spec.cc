#include "src/data/source_spec.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace msd {

namespace {

// Draws a bucket index from `weights`, then a value log-uniformly within the
// bucket (lower bound = previous bound + 1).
int32_t DrawFromBuckets(Rng& rng, const std::vector<int32_t>& bounds,
                        const std::vector<double>& weights) {
  MSD_CHECK(bounds.size() == weights.size());
  size_t bucket = rng.Categorical(weights);
  int32_t hi = bounds[bucket];
  int32_t lo = bucket == 0 ? 1 : bounds[bucket - 1] + 1;
  if (lo >= hi) {
    return hi;
  }
  double u = rng.Uniform(std::log(static_cast<double>(lo)), std::log(static_cast<double>(hi)));
  return static_cast<int32_t>(std::lround(std::exp(u)));
}

// Applies multiplicative jitter to bucket weights so the 306 navit sources are
// heterogeneous while keeping the corpus-level mixture on target.
std::vector<double> Jitter(Rng& rng, const std::vector<double>& base, double strength) {
  std::vector<double> out(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    out[i] = base[i] * std::exp(rng.Normal(0.0, strength));
  }
  return out;
}

}  // namespace

std::vector<int32_t> TextBucketBounds() {
  return {16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768};
}

std::vector<int32_t> ImageBucketBounds() { return {1024, 2048, 4096, 8192, 16384, 32768}; }

SampleMeta SourceSpec::DrawMeta(Rng& rng, uint64_t sample_id) const {
  SampleMeta meta;
  meta.sample_id = sample_id;
  meta.source_id = source_id;
  meta.modality = modality;
  if (!text_bucket_weights.empty()) {
    meta.text_tokens = DrawFromBuckets(rng, TextBucketBounds(), text_bucket_weights);
  }
  if (!image_bucket_weights.empty()) {
    meta.image_tokens = DrawFromBuckets(rng, ImageBucketBounds(), image_bucket_weights);
  }
  // Encoded payload: ~4 bytes per text token; images store compressed pixels,
  // ~48 bytes per 16x16 patch at ~25x JPEG compression.
  meta.raw_bytes = static_cast<int64_t>(meta.text_tokens) * 4 +
                   static_cast<int64_t>(meta.image_tokens) * 48;
  return meta;
}

std::vector<double> CorpusSpec::UniformWeights() const {
  return std::vector<double>(sources.size(), 1.0 / static_cast<double>(sources.size()));
}

CorpusSpec MakeCoyo700m(uint64_t seed) {
  // Fig. 2 / Sec. 2.3 (coyo700m): 98.23% of samples hold <=64 text tokens and
  // the >64-token tail (1.77% of samples) accounts for ~9.3% of all text
  // tokens; image patch counts spread across 1k..32k
  // (11.1 / 15.9 / 23.4 / 19.4 / 17.4 / 12.9).
  const std::vector<double> text_w = {36.7, 36.1, 25.4, 1.2, 0.4, 0.15,
                                      0.04, 0.008, 0.002, 0.0, 0.0, 0.0};
  const std::vector<double> image_w = {11.1, 15.9, 23.4, 19.4, 17.4, 12.9};
  Rng rng(seed);
  CorpusSpec corpus;
  corpus.name = "coyo700m";
  for (int i = 0; i < 5; ++i) {
    SourceSpec src;
    src.source_id = i;
    src.name = "coyo700m/part-" + std::to_string(i);
    src.modality = Modality::kImageText;
    src.text_bucket_weights = Jitter(rng, text_w, 0.05);
    src.image_bucket_weights = Jitter(rng, image_w, 0.05);
    src.transform_cost_multiplier = std::exp(rng.Normal(0.0, 0.2));
    src.num_files = 2;
    src.rows_per_file = 512;
    corpus.sources.push_back(std::move(src));
  }
  return corpus;
}

CorpusSpec MakeNavitData(uint64_t seed, int num_sources) {
  // Fig. 2 (navit_data): text lengths spread much wider (<=128 20%, 256 9.9%,
  // 512 12.5%, 1k 19.2%, 2k 14.3%, 4k 9.3%, >=8k 14.8%); images skew long
  // (<=1k 11.5%, 2k 15.1%, 4k 23.6%, 8k 22.5%, >=16k 27.3%).
  const std::vector<double> text_w = {5.0, 5.0, 5.0, 5.0, 9.9, 12.5,
                                      19.2, 14.3, 9.3, 8.0, 4.8, 2.0};
  const std::vector<double> image_w = {11.5, 15.1, 23.6, 22.5, 17.0, 10.3};
  Rng rng(seed);
  CorpusSpec corpus;
  corpus.name = "navit_data";
  corpus.sources.reserve(num_sources);
  for (int i = 0; i < num_sources; ++i) {
    SourceSpec src;
    src.source_id = i;
    src.name = "navit_data/src-" + std::to_string(i);
    // Production mix: mostly image-text, some pure text, a few video/audio —
    // the modality mix drives the Fig. 5b transformation-latency skew.
    double m = rng.NextDouble();
    if (m < 0.70) {
      src.modality = Modality::kImageText;
      src.text_bucket_weights = Jitter(rng, text_w, 0.25);
      src.image_bucket_weights = Jitter(rng, image_w, 0.25);
    } else if (m < 0.88) {
      src.modality = Modality::kText;
      src.text_bucket_weights = Jitter(rng, text_w, 0.25);
    } else if (m < 0.96) {
      src.modality = Modality::kVideo;
      src.text_bucket_weights = Jitter(rng, text_w, 0.25);
      src.image_bucket_weights = Jitter(rng, image_w, 0.25);
    } else {
      src.modality = Modality::kAudio;
      src.text_bucket_weights = Jitter(rng, text_w, 0.25);
      src.image_bucket_weights = Jitter(rng, image_w, 0.25);
    }
    src.transform_cost_multiplier = std::exp(rng.Normal(0.0, 0.6));
    src.num_files = 1 + static_cast<int64_t>(rng.UniformInt(0, 2));
    src.rows_per_file = 256;
    corpus.sources.push_back(std::move(src));
  }
  return corpus;
}

CorpusSpec MakeTextCorpus(uint64_t seed, int num_sources) {
  const std::vector<double> text_w = {5.0, 8.0, 10.0, 12.0, 14.0, 14.0,
                                      12.0, 10.0, 7.0, 4.0, 2.5, 1.5};
  Rng rng(seed);
  CorpusSpec corpus;
  corpus.name = "text_corpus";
  corpus.sources.reserve(num_sources);
  for (int i = 0; i < num_sources; ++i) {
    SourceSpec src;
    src.source_id = i;
    src.name = "text/src-" + std::to_string(i);
    src.modality = Modality::kText;
    src.text_bucket_weights = Jitter(rng, text_w, 0.15);
    src.transform_cost_multiplier = std::exp(rng.Normal(0.0, 0.2));
    corpus.sources.push_back(std::move(src));
  }
  return corpus;
}

}  // namespace msd
