#include "src/data/payload_arena.h"

#include <algorithm>

#include "src/common/status.h"
#include "src/data/sample.h"

namespace msd {

void RowGroupArena::CommitTokens(Sample* sample, size_t begin) {
  MSD_CHECK(!frozen_);
  MSD_CHECK(begin <= tokens_.size());
  token_spans_.push_back({sample, begin, tokens_.size() - begin});
}

float* RowGroupArena::AllocPixels(Sample* sample, size_t count) {
  MSD_CHECK(!frozen_);
  size_t begin = pixels_.size();
  pixels_.resize(begin + count);
  pixel_spans_.push_back({sample, begin, count});
  return pixels_.data() + begin;
}

void RowGroupArena::Freeze() {
  if (frozen_) {
    return;
  }
  frozen_ = true;
  if (!token_spans_.empty()) {
    TokenBuffer slab(std::move(tokens_));
    PayloadPlaneStats::ArenaSlabsFrozen().fetch_add(1, std::memory_order_relaxed);
    for (const Span& span : token_spans_) {
      span.sample->tokens = TokenView(slab, span.offset, span.length);
    }
  }
  if (!pixel_spans_.empty()) {
    PixelBuffer slab(std::move(pixels_));
    PayloadPlaneStats::ArenaSlabsFrozen().fetch_add(1, std::memory_order_relaxed);
    for (const Span& span : pixel_spans_) {
      // A post-decode crop shrinks meta.image_tokens before payloads exist;
      // the view never exceeds what the metadata declares.
      size_t length = std::min(
          span.length, static_cast<size_t>(std::max<int32_t>(span.sample->meta.image_tokens, 0)));
      span.sample->pixels = PixelView(slab, span.offset, length);
    }
  }
  token_spans_.clear();
  pixel_spans_.clear();
}

}  // namespace msd
