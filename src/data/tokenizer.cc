#include "src/data/tokenizer.h"

#include "src/common/rng.h"

namespace msd {

namespace {
// FNV-1a 64-bit.
uint64_t Fnv1a(const char* data, size_t len) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr size_t kMaxWordLen = 12;  // longer words split into sub-word pieces
}  // namespace

int32_t Tokenizer::HashToken(const char* data, size_t len) const {
  return static_cast<int32_t>(Fnv1a(data, len) % static_cast<uint64_t>(vocab_size_));
}

std::vector<int32_t> Tokenizer::Encode(const std::string& text) const {
  std::vector<int32_t> tokens;
  EncodeInto(text, &tokens);
  return tokens;
}

size_t Tokenizer::EncodeInto(const std::string& text, std::vector<int32_t>* out) const {
  size_t before = out->size();
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && text[i] != ' ') {
      ++i;
    }
    size_t len = i - start;
    // Sub-word split for long words, mirroring BPE piece behaviour.
    for (size_t off = 0; off < len; off += kMaxWordLen) {
      size_t piece = std::min(kMaxWordLen, len - off);
      out->push_back(HashToken(text.data() + start + off, piece));
    }
  }
  return out->size() - before;
}

std::string GenerateText(uint64_t seed, int32_t approx_tokens) {
  static const char* kWords[] = {"data",  "model", "scale",  "token", "train", "batch",
                                 "image", "text",  "mix",    "loader", "plan",  "graph",
                                 "source", "actor", "buffer", "shard"};
  constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);
  Rng rng(seed);
  std::string out;
  out.reserve(static_cast<size_t>(approx_tokens) * 6);
  for (int32_t i = 0; i < approx_tokens; ++i) {
    if (i > 0) {
      out += ' ';
    }
    out += kWords[rng.NextU32() % kNumWords];
  }
  return out;
}

}  // namespace msd
