#include "src/data/synthetic.h"

#include "src/data/tokenizer.h"

namespace msd {

Schema SampleSchema() {
  return Schema{{
      {"sample", FieldType::kBytes},
  }};
}

Sample GenerateSample(const SourceSpec& spec, Rng& rng, uint64_t sample_id) {
  Sample sample;
  sample.meta = spec.DrawMeta(rng, sample_id);
  sample.raw_text = GenerateText(sample_id ^ 0xABCD, sample.meta.text_tokens);
  if (sample.meta.image_tokens > 0) {
    // Compressed image payload: raw_bytes sized by the spec's model.
    int64_t image_bytes = static_cast<int64_t>(sample.meta.image_tokens) * 48;
    sample.raw_image.resize(static_cast<size_t>(image_bytes));
    for (auto& c : sample.raw_image) {
      c = static_cast<char>(rng.NextU32() & 0xFF);
    }
  }
  return sample;
}

std::string SourceFileName(const SourceSpec& spec, int64_t file_index) {
  return spec.name + "/file-" + std::to_string(file_index) + ".msdf";
}

Status WriteSourceFiles(ObjectStore& store, const SourceSpec& spec, uint64_t seed,
                        MsdfWriteOptions options) {
  Rng rng(seed ^ (static_cast<uint64_t>(spec.source_id) * 0x9E3779B97F4A7C15ULL));
  uint64_t next_id = static_cast<uint64_t>(spec.source_id) << 40;
  for (int64_t f = 0; f < spec.num_files; ++f) {
    MsdfWriter writer(SampleSchema(), options);
    for (int64_t r = 0; r < spec.rows_per_file; ++r) {
      Sample sample = GenerateSample(spec, rng, next_id++);
      writer.AppendRow(SerializeSample(sample));
    }
    MSD_RETURN_IF_ERROR(store.Put(SourceFileName(spec, f), writer.Finish()));
  }
  return Status::Ok();
}

Result<int64_t> WriteCorpus(ObjectStore& store, const CorpusSpec& corpus, uint64_t seed,
                            MsdfWriteOptions options) {
  int64_t total_rows = 0;
  for (const SourceSpec& spec : corpus.sources) {
    Status s = WriteSourceFiles(store, spec, seed, options);
    if (!s.ok()) {
      return s;
    }
    total_rows += spec.num_files * spec.rows_per_file;
  }
  return total_rows;
}

std::vector<SampleMeta> DrawMetas(const SourceSpec& spec, Rng& rng, int64_t count,
                                  uint64_t first_sample_id) {
  std::vector<SampleMeta> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    out.push_back(spec.DrawMeta(rng, first_sample_id + static_cast<uint64_t>(i)));
  }
  return out;
}

}  // namespace msd
