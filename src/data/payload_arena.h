// Arena-backed row-group decode (the allocator-pressure half of the
// multimodal payload plane).
//
// Without an arena, decoding a row group costs one heap Sample plus one
// freshly frozen buffer per payload per row — thousands of allocations per
// group at production row counts. A RowGroupArena amortizes that to O(1)
// allocations per (row group, worker shard): payload bytes append into
// contiguous typed slabs while workers decode, and Freeze() turns each slab
// into ONE immutable PayloadBuffer, handing every recorded sample an O(1)
// sub-window of it.
//
// Lifetime: the frozen slab is refcounted storage shared by every sample view
// carved from it, so the slab is freed as a unit exactly when the group's
// last surviving sample payload retires (popped slice released, step retired,
// rank batch dropped) — the freeze-once TokenBuffer model, extended to whole
// row groups. The companion trick for the Sample objects themselves lives in
// SourceLoader::LoadNextGroup: one shared block of Samples per group, each
// handed out as an aliasing shared_ptr.
//
// Threading: an arena is single-writer. Loader workers each own one arena per
// row group (shard-private slabs); Freeze() runs on the loader thread after
// the workers join.
#ifndef SRC_DATA_PAYLOAD_ARENA_H_
#define SRC_DATA_PAYLOAD_ARENA_H_

#include <cstdint>
#include <vector>

#include "src/data/payload_buffer.h"

namespace msd {

struct Sample;

// Per-(row group, worker shard) decode arena. Usage:
//
//   RowGroupArena arena;
//   for (each row) {
//     size_t begin = arena.TokenSlabSize();
//     tokenizer.EncodeInto(text, &arena.TokenSlab());   // append in place
//     arena.CommitTokens(&sample, begin);
//     float* px = arena.AllocPixels(&sample, patches);  // write in place
//   }
//   arena.Freeze();  // one buffer per slab; spans become sample views
class RowGroupArena {
 public:
  RowGroupArena() = default;
  RowGroupArena(const RowGroupArena&) = delete;
  RowGroupArena& operator=(const RowGroupArena&) = delete;
  RowGroupArena(RowGroupArena&&) = default;
  RowGroupArena& operator=(RowGroupArena&&) = default;

  // The token slab producers append into (e.g. Tokenizer::EncodeInto). The
  // vector may reallocate while the group decodes, so no pointer into it is
  // stable until Freeze(); spans are recorded as offsets.
  std::vector<int32_t>& TokenSlab() { return tokens_; }
  size_t TokenSlabSize() const { return tokens_.size(); }

  // Records [begin, current-end) of the token slab as `sample`'s token
  // payload, resolved into a view at Freeze().
  void CommitTokens(Sample* sample, size_t begin);

  // Appends `count` uninitialized floats to the pixel slab, records them as
  // `sample`'s pixel payload, and returns the write pointer (valid only until
  // the next arena call).
  float* AllocPixels(Sample* sample, size_t count);

  // Freezes each non-empty slab into one immutable buffer and assigns every
  // recorded span back to its sample as an O(1) view of that buffer. Pixel
  // spans are clamped to meta.image_tokens so a post-decode crop (which only
  // shrinks metadata before payloads exist) stays consistent. Idempotent no
  // further appends are allowed afterwards.
  void Freeze();

  // Observability: payload bytes currently staged in the slabs.
  int64_t StagedBytes() const {
    return static_cast<int64_t>(tokens_.size() * sizeof(int32_t) +
                                pixels_.size() * sizeof(float));
  }

 private:
  struct Span {
    Sample* sample = nullptr;
    size_t offset = 0;
    size_t length = 0;
  };

  std::vector<int32_t> tokens_;
  std::vector<float> pixels_;
  std::vector<Span> token_spans_;
  std::vector<Span> pixel_spans_;
  bool frozen_ = false;
};

}  // namespace msd

#endif  // SRC_DATA_PAYLOAD_ARENA_H_
