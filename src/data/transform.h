// Sample-level transformations and their cost model.
//
// Each transform does real (small) compute on the payload AND reports a
// calibrated virtual-time cost. The cost ratios follow Sec. 1: audio
// processing ≈ 4× image decoding ≈ 300× text tokenization per output token,
// and image cost scales with patch count (variable-resolution heterogeneity).
#ifndef SRC_DATA_TRANSFORM_H_
#define SRC_DATA_TRANSFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/data/payload_arena.h"
#include "src/data/sample.h"
#include "src/data/tokenizer.h"

namespace msd {

struct TransformCostParams {
  double text_us_per_token = 0.2;                      // tokenization
  double image_us_per_token = 0.2 * 300.0;             // 300x text (Sec. 1)
  double audio_us_per_token = 0.2 * 300.0 * 4.0;       // 4x image (Sec. 1)
  double video_us_per_token = 0.2 * 300.0 * 2.0;       // keyframe extraction
};

// Virtual preprocessing latency of one sample on one worker.
SimTime SampleTransformLatency(const SampleMeta& meta, double source_cost_multiplier,
                               const TransformCostParams& params = TransformCostParams());

// Abstract sample transform (Fig. 1 "Sample Transformation" stage).
class SampleTransform {
 public:
  virtual ~SampleTransform() = default;
  virtual std::string name() const = 0;
  // Mutates the sample in place; returns the virtual cost incurred.
  virtual Result<SimTime> Apply(Sample& sample) const = 0;
  // Arena-aware variant: payload-producing stages append into the row-group
  // arena's slabs (frozen into shared buffers by the caller) instead of
  // freezing one private buffer per sample. Defaults to the plain Apply for
  // stages without payload output.
  virtual Result<SimTime> ApplyWithArena(Sample& sample, RowGroupArena* arena) const {
    (void)arena;
    return Apply(sample);
  }
};

// raw_text -> tokens.
class TextTokenize : public SampleTransform {
 public:
  explicit TextTokenize(std::shared_ptr<const Tokenizer> tokenizer,
                        TransformCostParams params = TransformCostParams())
      : tokenizer_(std::move(tokenizer)), params_(params) {}
  std::string name() const override { return "TextTokenize"; }
  Result<SimTime> Apply(Sample& sample) const override;
  Result<SimTime> ApplyWithArena(Sample& sample, RowGroupArena* arena) const override;

 private:
  std::shared_ptr<const Tokenizer> tokenizer_;
  TransformCostParams params_;
};

// raw_image -> pixels (one float per patch embedding slot).
//
// `max_patches` > 0 is the metadata-driven decode bound (multi-scale
// batching): a segment can never consume more than max_seq_len patches, so
// decoding past the bound is pure waste. Samples above the bound have
// meta.image_tokens clamped *before* pixels are produced — packing, cost
// accounting, and the pixel buffer all see only the bounded work, and both
// data planes (zero-copy and reference oracle) clamp identically.
class ImageDecode : public SampleTransform {
 public:
  explicit ImageDecode(TransformCostParams params = TransformCostParams(),
                       int32_t max_patches = 0)
      : params_(params), max_patches_(max_patches) {}
  std::string name() const override { return "ImageDecode"; }
  Result<SimTime> Apply(Sample& sample) const override;
  Result<SimTime> ApplyWithArena(Sample& sample, RowGroupArena* arena) const override;

 private:
  TransformCostParams params_;
  int32_t max_patches_ = 0;  // 0 = unbounded
};

// Crops/pads the decoded image to at most `max_patches` patches.
class CropToPatches : public SampleTransform {
 public:
  explicit CropToPatches(int32_t max_patches) : max_patches_(max_patches) {}
  std::string name() const override { return "CropToPatches"; }
  Result<SimTime> Apply(Sample& sample) const override;

 private:
  int32_t max_patches_;
};

// A pipeline of transforms applied in order.
class TransformPipeline {
 public:
  void Add(std::unique_ptr<SampleTransform> t) { stages_.push_back(std::move(t)); }
  size_t size() const { return stages_.size(); }
  // Applies all stages; returns total virtual cost. With an arena, payload
  // output is staged into its slabs (the caller freezes after the group).
  Result<SimTime> Apply(Sample& sample, RowGroupArena* arena = nullptr) const;
  // Default pipeline for a modality: tokenize (+decode for visual sources).
  // `max_decode_patches` > 0 bounds the decode stage (see ImageDecode).
  static TransformPipeline Default(Modality modality,
                                   std::shared_ptr<const Tokenizer> tokenizer,
                                   int32_t max_decode_patches = 0);

 private:
  std::vector<std::unique_ptr<SampleTransform>> stages_;
};

}  // namespace msd

#endif  // SRC_DATA_TRANSFORM_H_
