#include "src/data/microbatch.h"

#include <algorithm>
#include <numeric>

namespace msd {

int64_t PackedSequence::PixelCount() const {
  int64_t total = 0;
  for (const PixelView& v : pixel_segments) {
    total += static_cast<int64_t>(v.size());
  }
  return total;
}

int64_t Microbatch::TotalTokens() const {
  int64_t total = 0;
  for (const PackedSequence& s : sequences) {
    total += s.total_tokens;
  }
  return total;
}

int64_t Microbatch::TotalPaddingTokens() const {
  int64_t total = 0;
  for (const PackedSequence& s : sequences) {
    total += s.PaddingTokens();
  }
  return total;
}

std::vector<PackedSequence> PackSequences(const std::vector<SampleMeta>& samples,
                                          int32_t max_seq_len) {
  MSD_CHECK(max_seq_len > 0);
  // First-fit-decreasing: sort by total token count descending, place each
  // sample into the first sequence with room, else open a new sequence.
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return samples[a].TotalTokens() > samples[b].TotalTokens();
  });

  std::vector<PackedSequence> sequences;
  for (size_t idx : order) {
    int32_t len = std::min(samples[idx].TotalTokens(), max_seq_len);
    if (len == 0) {
      continue;
    }
    PackedSequence* target = nullptr;
    for (PackedSequence& seq : sequences) {
      if (seq.total_tokens + len <= max_seq_len) {
        target = &seq;
        break;
      }
    }
    if (target == nullptr) {
      sequences.emplace_back();
      target = &sequences.back();
    }
    target->sample_ids.push_back(samples[idx].sample_id);
    target->segment_lengths.push_back(len);
    target->total_tokens += len;
  }
  return sequences;
}

Status FillPackedTokens(PackedSequence& seq, const std::vector<const Sample*>& samples,
                        int32_t pad_to) {
  if (samples.size() != seq.sample_ids.size()) {
    return Status::InvalidArgument("sample count mismatch");
  }
  if (pad_to > 0 && pad_to < seq.total_tokens) {
    return Status::InvalidArgument("pad_to below packed length");
  }
  size_t width = static_cast<size_t>(pad_to > 0 ? pad_to : seq.total_tokens);
  std::vector<int32_t> tokens;
  tokens.reserve(width);
  seq.pixel_segments.clear();
  seq.pixel_segments.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i]->meta.sample_id != seq.sample_ids[i]) {
      return Status::InvalidArgument("sample order mismatch at segment " + std::to_string(i));
    }
    int32_t want = seq.segment_lengths[i];
    const TokenView& toks = samples[i]->tokens;
    // Text tokens first, then a sentinel id per image patch (interleaved
    // stream; patch embeddings are injected model-side).
    int32_t emitted = 0;
    for (int32_t t : toks) {
      if (emitted >= want) {
        break;
      }
      tokens.push_back(t);
      ++emitted;
    }
    int32_t patches = want - emitted;
    while (emitted < want) {
      tokens.push_back(kImagePatchToken);
      ++emitted;
    }
    // The pixels backing this segment's sentinels: an O(1) alias of the
    // sample's frozen decode output, truncated with the segment.
    const PixelView& pixels = samples[i]->pixels;
    seq.pixel_segments.push_back(
        pixels.Slice(0, std::min(static_cast<size_t>(std::max(patches, 0)), pixels.size())));
  }
  std::vector<int32_t> positions = RopePositions(seq);
  tokens.resize(width, kPadToken);
  positions.resize(width, 0);
  seq.tokens = std::move(tokens);
  seq.position_ids = std::move(positions);
  if (pad_to > 0) {
    seq.padded_to = pad_to;
  }
  return Status::Ok();
}

Status FillPackedTokens(PackedSequence& seq, const std::vector<Sample>& samples) {
  std::vector<const Sample*> ptrs;
  ptrs.reserve(samples.size());
  for (const Sample& s : samples) {
    ptrs.push_back(&s);
  }
  return FillPackedTokens(seq, ptrs);
}

std::vector<int32_t> RopePositions(const PackedSequence& seq) {
  std::vector<int32_t> positions;
  positions.reserve(static_cast<size_t>(seq.total_tokens));
  for (int32_t seg_len : seq.segment_lengths) {
    for (int32_t p = 0; p < seg_len; ++p) {
      positions.push_back(p);
    }
  }
  return positions;
}

void PadMicrobatch(Microbatch& mb, int32_t pad_to) {
  int32_t target = pad_to;
  if (target == 0) {
    for (const PackedSequence& s : mb.sequences) {
      target = std::max(target, s.total_tokens);
    }
  }
  for (PackedSequence& s : mb.sequences) {
    MSD_CHECK(s.total_tokens <= target);
    s.padded_to = target;
    // Views are immutable; a width change means re-freezing the payload once.
    if (!s.tokens.empty() && s.tokens.size() != static_cast<size_t>(target)) {
      std::vector<int32_t> tokens = s.tokens.ToVector();
      std::vector<int32_t> positions = s.position_ids.ToVector();
      tokens.resize(static_cast<size_t>(target), kPadToken);
      positions.resize(static_cast<size_t>(target), 0);
      s.tokens = std::move(tokens);
      s.position_ids = std::move(positions);
    }
  }
}

}  // namespace msd
