// Sample types. SampleMeta is the lightweight record the Planner orchestrates
// over (Sec. 3 step 4: "sample indices, source signatures, sequence length");
// Sample carries the heavy payload and only ever lives inside Source Loaders
// and Data Constructors.
#ifndef SRC_DATA_SAMPLE_H_
#define SRC_DATA_SAMPLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/data/payload_buffer.h"

namespace msd {

enum class Modality : uint8_t { kText = 0, kImageText = 1, kVideo = 2, kAudio = 3 };

const char* ModalityName(Modality m);

struct SampleMeta {
  uint64_t sample_id = 0;
  int32_t source_id = 0;
  Modality modality = Modality::kText;
  // Length of the text subsequence in tokens.
  int32_t text_tokens = 0;
  // Number of image patches after encoding (0 for pure text).
  int32_t image_tokens = 0;
  // Encoded on-storage payload size.
  int64_t raw_bytes = 0;

  // Total tokens the LLM backbone sees for this sample (interleaved stream).
  int32_t TotalTokens() const { return text_tokens + image_tokens; }

  bool operator==(const SampleMeta&) const = default;
};

// A fully materialized training sample (real-mode payload). Samples travel
// the hot path (pop -> build -> get-batch) behind `std::shared_ptr`, and both
// heavy payloads are frozen refcounted views (payload_buffer.h) — either a
// private per-sample buffer, or an O(1) window into a shared row-group arena
// slab (payload_arena.h) — so the data plane only ever moves/shares them.
// Copying a Sample is legal but accounted (see SampleCopyCount) so benches
// and tests can prove the hot path is copy-free.
struct Sample {
  SampleMeta meta;
  std::string raw_text;            // pre-tokenization text
  std::string raw_image;           // encoded ("JPEG") image bytes
  TokenView tokens;                // frozen by TextTokenize
  PixelView pixels;                // frozen by ImageDecode (patch embeddings input)

  Sample() = default;
  Sample(const Sample& other);
  Sample& operator=(const Sample& other);
  Sample(Sample&&) = default;
  Sample& operator=(Sample&&) = default;

  int64_t PayloadBytes() const {
    return static_cast<int64_t>(raw_text.size() + raw_image.size() +
                                tokens.size() * sizeof(int32_t) + pixels.size() * sizeof(float));
  }
};

// Process-wide count of Sample copy-constructions/assignments (moves are
// free and uncounted). The zero-copy data plane keeps this at zero between
// PopSamples and GetBatch.
int64_t SampleCopyCount();
void ResetSampleCopyCount();

// Wire encoding for MSDF rows and actor messages.
std::string SerializeSampleMeta(const SampleMeta& meta);
bool DeserializeSampleMeta(std::string_view bytes, SampleMeta* out);
std::string SerializeSample(const Sample& sample);
bool DeserializeSample(std::string_view bytes, Sample* out);

}  // namespace msd

#endif  // SRC_DATA_SAMPLE_H_
