// Synthetic corpus materialization: draws samples from SourceSpecs and writes
// them as MSDF files into an ObjectStore (the HDFS stand-in), or streams
// metadata-only for cluster-scale simulations.
#ifndef SRC_DATA_SYNTHETIC_H_
#define SRC_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/data/sample.h"
#include "src/data/source_spec.h"
#include "src/storage/columnar.h"
#include "src/storage/object_store.h"

namespace msd {

// Schema used for all sample files.
Schema SampleSchema();

// Materializes a full sample (meta + payload) for real-mode pipelines.
Sample GenerateSample(const SourceSpec& spec, Rng& rng, uint64_t sample_id);

// File name for the i-th file of a source.
std::string SourceFileName(const SourceSpec& spec, int64_t file_index);

// Writes spec.num_files MSDF files of spec.rows_per_file samples each.
// Row-group sizing is scaled down (options) so tests stay fast.
Status WriteSourceFiles(ObjectStore& store, const SourceSpec& spec, uint64_t seed,
                        MsdfWriteOptions options = {.target_row_group_bytes = 4 * kMiB});

// Writes every source of the corpus. Returns total rows written.
Result<int64_t> WriteCorpus(ObjectStore& store, const CorpusSpec& corpus, uint64_t seed,
                            MsdfWriteOptions options = {.target_row_group_bytes = 4 * kMiB});

// Metadata-only stream for simulations: draws `count` SampleMetas per spec.
std::vector<SampleMeta> DrawMetas(const SourceSpec& spec, Rng& rng, int64_t count,
                                  uint64_t first_sample_id = 0);

}  // namespace msd

#endif  // SRC_DATA_SYNTHETIC_H_
