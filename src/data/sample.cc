#include "src/data/sample.h"

#include <atomic>

#include "src/storage/wire.h"

namespace msd {

namespace {
std::atomic<int64_t> g_sample_copies{0};
}  // namespace

Sample::Sample(const Sample& other)
    : meta(other.meta),
      raw_text(other.raw_text),
      raw_image(other.raw_image),
      tokens(other.tokens),
      pixels(other.pixels) {
  g_sample_copies.fetch_add(1, std::memory_order_relaxed);
}

Sample& Sample::operator=(const Sample& other) {
  if (this != &other) {
    meta = other.meta;
    raw_text = other.raw_text;
    raw_image = other.raw_image;
    tokens = other.tokens;
    pixels = other.pixels;
    g_sample_copies.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

int64_t SampleCopyCount() { return g_sample_copies.load(std::memory_order_relaxed); }

void ResetSampleCopyCount() { g_sample_copies.store(0, std::memory_order_relaxed); }

const char* ModalityName(Modality m) {
  switch (m) {
    case Modality::kText:
      return "text";
    case Modality::kImageText:
      return "image_text";
    case Modality::kVideo:
      return "video";
    case Modality::kAudio:
      return "audio";
  }
  return "unknown";
}

std::string SerializeSampleMeta(const SampleMeta& meta) {
  WireWriter w;
  w.PutU64(meta.sample_id);
  w.PutU32(static_cast<uint32_t>(meta.source_id));
  w.PutU8(static_cast<uint8_t>(meta.modality));
  w.PutU32(static_cast<uint32_t>(meta.text_tokens));
  w.PutU32(static_cast<uint32_t>(meta.image_tokens));
  w.PutI64(meta.raw_bytes);
  return w.Take();
}

bool DeserializeSampleMeta(std::string_view bytes, SampleMeta* out) {
  WireReader r(bytes);
  out->sample_id = r.GetU64();
  out->source_id = static_cast<int32_t>(r.GetU32());
  out->modality = static_cast<Modality>(r.GetU8());
  out->text_tokens = static_cast<int32_t>(r.GetU32());
  out->image_tokens = static_cast<int32_t>(r.GetU32());
  out->raw_bytes = r.GetI64();
  return r.Ok();
}

std::string SerializeSample(const Sample& sample) {
  WireWriter w;
  w.PutBytes(SerializeSampleMeta(sample.meta));
  w.PutBytes(sample.raw_text);
  w.PutBytes(sample.raw_image);
  // Payload blobs go out as one bulk record each (count + raw bytes), not a
  // per-element loop; the views' backing storage is contiguous by contract.
  w.PutPodArray(sample.tokens.data(), sample.tokens.size());
  w.PutPodArray(sample.pixels.data(), sample.pixels.size());
  return w.Take();
}

bool DeserializeSample(std::string_view bytes, Sample* out) {
  WireReader r(bytes);
  // Parse-only sub-record: borrow the bytes instead of copying them out.
  if (!DeserializeSampleMeta(r.GetBytesView(), &out->meta)) {
    return false;
  }
  out->raw_text = r.GetBytes();
  out->raw_image = r.GetBytes();
  // Bulk-decode both payload blobs (counts bounded against remaining() by
  // the reader, so corrupt rows fail loudly instead of allocating). Freezing
  // only happens when a blob is present: synthetic MSDF rows carry raw
  // payloads and leave tokens/pixels to the transform pipeline, which
  // (in arena mode) freezes whole row groups at a time instead.
  std::vector<int32_t> tokens;
  r.GetPodArray(&tokens);
  std::vector<float> pixels;
  r.GetPodArray(&pixels);
  if (!r.Ok()) {
    return false;
  }
  out->tokens = tokens.empty() ? TokenView() : TokenView(std::move(tokens));
  out->pixels = pixels.empty() ? PixelView() : PixelView(std::move(pixels));
  return true;
}

}  // namespace msd
