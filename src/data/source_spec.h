// SourceSpec: the statistical description of one data source, plus the corpus
// presets (`coyo700m`-like with 5 sources, `navit_data`-like with 306 sources)
// fit to the token-length histograms of Fig. 2.
#ifndef SRC_DATA_SOURCE_SPEC_H_
#define SRC_DATA_SOURCE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/sample.h"

namespace msd {

// Bucket upper bounds (inclusive) of the Fig. 2 histograms.
// Text: 16, 32, ..., 32768 (12 buckets). Image patches: 1k, ..., 32k (6).
std::vector<int32_t> TextBucketBounds();
std::vector<int32_t> ImageBucketBounds();

struct SourceSpec {
  int32_t source_id = 0;
  std::string name;
  Modality modality = Modality::kImageText;
  // Sample-ratio weight per text bucket (see TextBucketBounds). Empty => no text.
  std::vector<double> text_bucket_weights;
  // Sample-ratio weight per image bucket. Empty => pure text source.
  std::vector<double> image_bucket_weights;
  // Per-source preprocessing heterogeneity multiplier (Fig. 5b latency skew).
  double transform_cost_multiplier = 1.0;
  // Storage shape.
  int64_t num_files = 1;
  int64_t rows_per_file = 512;

  // Deterministically draws one sample's metadata from the spec.
  SampleMeta DrawMeta(Rng& rng, uint64_t sample_id) const;
};

struct CorpusSpec {
  std::string name;
  std::vector<SourceSpec> sources;

  // Uniform mixing weights (one per source).
  std::vector<double> UniformWeights() const;
};

// Fig. 2 presets. `seed` controls per-source heterogeneity jitter.
CorpusSpec MakeCoyo700m(uint64_t seed = 7);
CorpusSpec MakeNavitData(uint64_t seed = 11, int num_sources = 306);
// Pure-text corpus used by the Fig. 20 scalability study.
CorpusSpec MakeTextCorpus(uint64_t seed = 13, int num_sources = 32);

}  // namespace msd

#endif  // SRC_DATA_SOURCE_SPEC_H_
